# Empty dependencies file for bench_fig1_2_web_histograms.
# This may be replaced when dependencies are built.
