# Empty dependencies file for bench_fig4_param_types.
# This may be replaced when dependencies are built.
