file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_param_types.dir/bench_fig4_param_types.cpp.o"
  "CMakeFiles/bench_fig4_param_types.dir/bench_fig4_param_types.cpp.o.d"
  "bench_fig4_param_types"
  "bench_fig4_param_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_param_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
