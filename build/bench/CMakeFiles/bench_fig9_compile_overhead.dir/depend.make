# Empty dependencies file for bench_fig9_compile_overhead.
# This may be replaced when dependencies are built.
