# Empty compiler generated dependencies file for bench_fig3_suite_histograms.
# This may be replaced when dependencies are built.
