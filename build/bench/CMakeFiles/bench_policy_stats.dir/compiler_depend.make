# Empty compiler generated dependencies file for bench_policy_stats.
# This may be replaced when dependencies are built.
