file(REMOVE_RECURSE
  "CMakeFiles/bench_policy_stats.dir/bench_policy_stats.cpp.o"
  "CMakeFiles/bench_policy_stats.dir/bench_policy_stats.cpp.o.d"
  "bench_policy_stats"
  "bench_policy_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_policy_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
