# Empty dependencies file for web_session.
# This may be replaced when dependencies are built.
