file(REMOVE_RECURSE
  "CMakeFiles/web_session.dir/web_session.cpp.o"
  "CMakeFiles/web_session.dir/web_session.cpp.o.d"
  "web_session"
  "web_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
