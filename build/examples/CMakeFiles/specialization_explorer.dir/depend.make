# Empty dependencies file for specialization_explorer.
# This may be replaced when dependencies are built.
