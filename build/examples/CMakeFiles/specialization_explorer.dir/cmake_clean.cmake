file(REMOVE_RECURSE
  "CMakeFiles/specialization_explorer.dir/specialization_explorer.cpp.o"
  "CMakeFiles/specialization_explorer.dir/specialization_explorer.cpp.o.d"
  "specialization_explorer"
  "specialization_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specialization_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
