# Empty dependencies file for jitvs.
# This may be replaced when dependencies are built.
