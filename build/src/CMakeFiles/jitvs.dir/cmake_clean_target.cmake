file(REMOVE_RECURSE
  "libjitvs.a"
)
