
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jit/Engine.cpp" "src/CMakeFiles/jitvs.dir/jit/Engine.cpp.o" "gcc" "src/CMakeFiles/jitvs.dir/jit/Engine.cpp.o.d"
  "/root/repo/src/lir/Codegen.cpp" "src/CMakeFiles/jitvs.dir/lir/Codegen.cpp.o" "gcc" "src/CMakeFiles/jitvs.dir/lir/Codegen.cpp.o.d"
  "/root/repo/src/mir/Dominators.cpp" "src/CMakeFiles/jitvs.dir/mir/Dominators.cpp.o" "gcc" "src/CMakeFiles/jitvs.dir/mir/Dominators.cpp.o.d"
  "/root/repo/src/mir/MIR.cpp" "src/CMakeFiles/jitvs.dir/mir/MIR.cpp.o" "gcc" "src/CMakeFiles/jitvs.dir/mir/MIR.cpp.o.d"
  "/root/repo/src/mir/MIRBuilder.cpp" "src/CMakeFiles/jitvs.dir/mir/MIRBuilder.cpp.o" "gcc" "src/CMakeFiles/jitvs.dir/mir/MIRBuilder.cpp.o.d"
  "/root/repo/src/mir/MIRGraph.cpp" "src/CMakeFiles/jitvs.dir/mir/MIRGraph.cpp.o" "gcc" "src/CMakeFiles/jitvs.dir/mir/MIRGraph.cpp.o.d"
  "/root/repo/src/mir/Verifier.cpp" "src/CMakeFiles/jitvs.dir/mir/Verifier.cpp.o" "gcc" "src/CMakeFiles/jitvs.dir/mir/Verifier.cpp.o.d"
  "/root/repo/src/native/Executor.cpp" "src/CMakeFiles/jitvs.dir/native/Executor.cpp.o" "gcc" "src/CMakeFiles/jitvs.dir/native/Executor.cpp.o.d"
  "/root/repo/src/native/NativeCode.cpp" "src/CMakeFiles/jitvs.dir/native/NativeCode.cpp.o" "gcc" "src/CMakeFiles/jitvs.dir/native/NativeCode.cpp.o.d"
  "/root/repo/src/parser/Emitter.cpp" "src/CMakeFiles/jitvs.dir/parser/Emitter.cpp.o" "gcc" "src/CMakeFiles/jitvs.dir/parser/Emitter.cpp.o.d"
  "/root/repo/src/parser/Lexer.cpp" "src/CMakeFiles/jitvs.dir/parser/Lexer.cpp.o" "gcc" "src/CMakeFiles/jitvs.dir/parser/Lexer.cpp.o.d"
  "/root/repo/src/parser/Parser.cpp" "src/CMakeFiles/jitvs.dir/parser/Parser.cpp.o" "gcc" "src/CMakeFiles/jitvs.dir/parser/Parser.cpp.o.d"
  "/root/repo/src/passes/BoundsCheckElim.cpp" "src/CMakeFiles/jitvs.dir/passes/BoundsCheckElim.cpp.o" "gcc" "src/CMakeFiles/jitvs.dir/passes/BoundsCheckElim.cpp.o.d"
  "/root/repo/src/passes/ConstantPropagation.cpp" "src/CMakeFiles/jitvs.dir/passes/ConstantPropagation.cpp.o" "gcc" "src/CMakeFiles/jitvs.dir/passes/ConstantPropagation.cpp.o.d"
  "/root/repo/src/passes/DCE.cpp" "src/CMakeFiles/jitvs.dir/passes/DCE.cpp.o" "gcc" "src/CMakeFiles/jitvs.dir/passes/DCE.cpp.o.d"
  "/root/repo/src/passes/Folding.cpp" "src/CMakeFiles/jitvs.dir/passes/Folding.cpp.o" "gcc" "src/CMakeFiles/jitvs.dir/passes/Folding.cpp.o.d"
  "/root/repo/src/passes/GVN.cpp" "src/CMakeFiles/jitvs.dir/passes/GVN.cpp.o" "gcc" "src/CMakeFiles/jitvs.dir/passes/GVN.cpp.o.d"
  "/root/repo/src/passes/Inliner.cpp" "src/CMakeFiles/jitvs.dir/passes/Inliner.cpp.o" "gcc" "src/CMakeFiles/jitvs.dir/passes/Inliner.cpp.o.d"
  "/root/repo/src/passes/LoopInversion.cpp" "src/CMakeFiles/jitvs.dir/passes/LoopInversion.cpp.o" "gcc" "src/CMakeFiles/jitvs.dir/passes/LoopInversion.cpp.o.d"
  "/root/repo/src/passes/OverflowCheckElim.cpp" "src/CMakeFiles/jitvs.dir/passes/OverflowCheckElim.cpp.o" "gcc" "src/CMakeFiles/jitvs.dir/passes/OverflowCheckElim.cpp.o.d"
  "/root/repo/src/passes/Pipeline.cpp" "src/CMakeFiles/jitvs.dir/passes/Pipeline.cpp.o" "gcc" "src/CMakeFiles/jitvs.dir/passes/Pipeline.cpp.o.d"
  "/root/repo/src/profiling/CallProfiler.cpp" "src/CMakeFiles/jitvs.dir/profiling/CallProfiler.cpp.o" "gcc" "src/CMakeFiles/jitvs.dir/profiling/CallProfiler.cpp.o.d"
  "/root/repo/src/profiling/WebSession.cpp" "src/CMakeFiles/jitvs.dir/profiling/WebSession.cpp.o" "gcc" "src/CMakeFiles/jitvs.dir/profiling/WebSession.cpp.o.d"
  "/root/repo/src/support/Stats.cpp" "src/CMakeFiles/jitvs.dir/support/Stats.cpp.o" "gcc" "src/CMakeFiles/jitvs.dir/support/Stats.cpp.o.d"
  "/root/repo/src/vm/Bytecode.cpp" "src/CMakeFiles/jitvs.dir/vm/Bytecode.cpp.o" "gcc" "src/CMakeFiles/jitvs.dir/vm/Bytecode.cpp.o.d"
  "/root/repo/src/vm/GC.cpp" "src/CMakeFiles/jitvs.dir/vm/GC.cpp.o" "gcc" "src/CMakeFiles/jitvs.dir/vm/GC.cpp.o.d"
  "/root/repo/src/vm/Interpreter.cpp" "src/CMakeFiles/jitvs.dir/vm/Interpreter.cpp.o" "gcc" "src/CMakeFiles/jitvs.dir/vm/Interpreter.cpp.o.d"
  "/root/repo/src/vm/Object.cpp" "src/CMakeFiles/jitvs.dir/vm/Object.cpp.o" "gcc" "src/CMakeFiles/jitvs.dir/vm/Object.cpp.o.d"
  "/root/repo/src/vm/Runtime.cpp" "src/CMakeFiles/jitvs.dir/vm/Runtime.cpp.o" "gcc" "src/CMakeFiles/jitvs.dir/vm/Runtime.cpp.o.d"
  "/root/repo/src/vm/Value.cpp" "src/CMakeFiles/jitvs.dir/vm/Value.cpp.o" "gcc" "src/CMakeFiles/jitvs.dir/vm/Value.cpp.o.d"
  "/root/repo/src/workloads/Kraken.cpp" "src/CMakeFiles/jitvs.dir/workloads/Kraken.cpp.o" "gcc" "src/CMakeFiles/jitvs.dir/workloads/Kraken.cpp.o.d"
  "/root/repo/src/workloads/SunSpider.cpp" "src/CMakeFiles/jitvs.dir/workloads/SunSpider.cpp.o" "gcc" "src/CMakeFiles/jitvs.dir/workloads/SunSpider.cpp.o.d"
  "/root/repo/src/workloads/V8.cpp" "src/CMakeFiles/jitvs.dir/workloads/V8.cpp.o" "gcc" "src/CMakeFiles/jitvs.dir/workloads/V8.cpp.o.d"
  "/root/repo/src/workloads/Workloads.cpp" "src/CMakeFiles/jitvs.dir/workloads/Workloads.cpp.o" "gcc" "src/CMakeFiles/jitvs.dir/workloads/Workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
