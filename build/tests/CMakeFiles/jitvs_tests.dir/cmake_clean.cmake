file(REMOVE_RECURSE
  "CMakeFiles/jitvs_tests.dir/BytecodeTest.cpp.o"
  "CMakeFiles/jitvs_tests.dir/BytecodeTest.cpp.o.d"
  "CMakeFiles/jitvs_tests.dir/CodegenTest.cpp.o"
  "CMakeFiles/jitvs_tests.dir/CodegenTest.cpp.o.d"
  "CMakeFiles/jitvs_tests.dir/EnginePolicyTest.cpp.o"
  "CMakeFiles/jitvs_tests.dir/EnginePolicyTest.cpp.o.d"
  "CMakeFiles/jitvs_tests.dir/InterpreterTest.cpp.o"
  "CMakeFiles/jitvs_tests.dir/InterpreterTest.cpp.o.d"
  "CMakeFiles/jitvs_tests.dir/JitDifferentialTest.cpp.o"
  "CMakeFiles/jitvs_tests.dir/JitDifferentialTest.cpp.o.d"
  "CMakeFiles/jitvs_tests.dir/LexerParserTest.cpp.o"
  "CMakeFiles/jitvs_tests.dir/LexerParserTest.cpp.o.d"
  "CMakeFiles/jitvs_tests.dir/MIRBuilderTest.cpp.o"
  "CMakeFiles/jitvs_tests.dir/MIRBuilderTest.cpp.o.d"
  "CMakeFiles/jitvs_tests.dir/PassesTest.cpp.o"
  "CMakeFiles/jitvs_tests.dir/PassesTest.cpp.o.d"
  "CMakeFiles/jitvs_tests.dir/ProfilingTest.cpp.o"
  "CMakeFiles/jitvs_tests.dir/ProfilingTest.cpp.o.d"
  "CMakeFiles/jitvs_tests.dir/RuntimeEdgeTest.cpp.o"
  "CMakeFiles/jitvs_tests.dir/RuntimeEdgeTest.cpp.o.d"
  "CMakeFiles/jitvs_tests.dir/ValueTest.cpp.o"
  "CMakeFiles/jitvs_tests.dir/ValueTest.cpp.o.d"
  "CMakeFiles/jitvs_tests.dir/VerifierTest.cpp.o"
  "CMakeFiles/jitvs_tests.dir/VerifierTest.cpp.o.d"
  "CMakeFiles/jitvs_tests.dir/WorkloadsTest.cpp.o"
  "CMakeFiles/jitvs_tests.dir/WorkloadsTest.cpp.o.d"
  "jitvs_tests"
  "jitvs_tests.pdb"
  "jitvs_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jitvs_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
