# Empty dependencies file for jitvs_tests.
# This may be replaced when dependencies are built.
