
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/BytecodeTest.cpp" "tests/CMakeFiles/jitvs_tests.dir/BytecodeTest.cpp.o" "gcc" "tests/CMakeFiles/jitvs_tests.dir/BytecodeTest.cpp.o.d"
  "/root/repo/tests/CodegenTest.cpp" "tests/CMakeFiles/jitvs_tests.dir/CodegenTest.cpp.o" "gcc" "tests/CMakeFiles/jitvs_tests.dir/CodegenTest.cpp.o.d"
  "/root/repo/tests/EnginePolicyTest.cpp" "tests/CMakeFiles/jitvs_tests.dir/EnginePolicyTest.cpp.o" "gcc" "tests/CMakeFiles/jitvs_tests.dir/EnginePolicyTest.cpp.o.d"
  "/root/repo/tests/InterpreterTest.cpp" "tests/CMakeFiles/jitvs_tests.dir/InterpreterTest.cpp.o" "gcc" "tests/CMakeFiles/jitvs_tests.dir/InterpreterTest.cpp.o.d"
  "/root/repo/tests/JitDifferentialTest.cpp" "tests/CMakeFiles/jitvs_tests.dir/JitDifferentialTest.cpp.o" "gcc" "tests/CMakeFiles/jitvs_tests.dir/JitDifferentialTest.cpp.o.d"
  "/root/repo/tests/LexerParserTest.cpp" "tests/CMakeFiles/jitvs_tests.dir/LexerParserTest.cpp.o" "gcc" "tests/CMakeFiles/jitvs_tests.dir/LexerParserTest.cpp.o.d"
  "/root/repo/tests/MIRBuilderTest.cpp" "tests/CMakeFiles/jitvs_tests.dir/MIRBuilderTest.cpp.o" "gcc" "tests/CMakeFiles/jitvs_tests.dir/MIRBuilderTest.cpp.o.d"
  "/root/repo/tests/PassesTest.cpp" "tests/CMakeFiles/jitvs_tests.dir/PassesTest.cpp.o" "gcc" "tests/CMakeFiles/jitvs_tests.dir/PassesTest.cpp.o.d"
  "/root/repo/tests/ProfilingTest.cpp" "tests/CMakeFiles/jitvs_tests.dir/ProfilingTest.cpp.o" "gcc" "tests/CMakeFiles/jitvs_tests.dir/ProfilingTest.cpp.o.d"
  "/root/repo/tests/RuntimeEdgeTest.cpp" "tests/CMakeFiles/jitvs_tests.dir/RuntimeEdgeTest.cpp.o" "gcc" "tests/CMakeFiles/jitvs_tests.dir/RuntimeEdgeTest.cpp.o.d"
  "/root/repo/tests/ValueTest.cpp" "tests/CMakeFiles/jitvs_tests.dir/ValueTest.cpp.o" "gcc" "tests/CMakeFiles/jitvs_tests.dir/ValueTest.cpp.o.d"
  "/root/repo/tests/VerifierTest.cpp" "tests/CMakeFiles/jitvs_tests.dir/VerifierTest.cpp.o" "gcc" "tests/CMakeFiles/jitvs_tests.dir/VerifierTest.cpp.o.d"
  "/root/repo/tests/WorkloadsTest.cpp" "tests/CMakeFiles/jitvs_tests.dir/WorkloadsTest.cpp.o" "gcc" "tests/CMakeFiles/jitvs_tests.dir/WorkloadsTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/jitvs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
