//===- bench/bench_fig9_speedup.cpp - Figure 9 (a-b) reproduction ---------===//
///
/// \file
/// Regenerates the paper's headline table: overall runtime speedup (in
/// percent, relative to the baseline IonMonkey-style pipeline) for the
/// ten optimization configurations across the three suites, reported as
/// both the arithmetic mean (Figure 9a) and the geometric mean
/// (Figure 9b) of the per-benchmark speedups. Runs include
/// interpretation, compilation and native execution, as in the paper.
///
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"

using namespace jitvs;
using namespace jitvs::bench;

int main() {
  std::vector<NamedConfig> Named = figure9Configs();
  OptConfig Baseline = OptConfig::baseline();

  std::vector<const OptConfig *> Configs;
  Configs.push_back(&Baseline);
  for (const NamedConfig &NC : Named)
    Configs.push_back(&NC.Config);

  int Reps = repetitions();
  std::printf("Figure 9 (a-b): runtime speedup %% vs baseline pipeline "
              "(median of %d runs)\n\n",
              Reps);

  // Header.
  std::printf("%-14s", "suite");
  for (const NamedConfig &NC : Named)
    std::printf(" %13s", NC.Name);
  std::printf("\n");
  printRule(14 + 14 * Named.size());

  BenchReport Report("fig9_speedup", Reps);
  std::vector<std::string> MeanRows[2];
  for (int SuiteIdx = 0; SuiteIdx != 3; ++SuiteIdx) {
    std::vector<Workload> Works = suiteWorkloads(SuiteNames[SuiteIdx]);
    auto Times = measureMatrix(Works, Configs, Reps);

    for (size_t WI = 0; WI != Works.size(); ++WI) {
      Report.addRow(Works[WI].Name, "baseline", Times[WI][0], "seconds");
      for (size_t CI = 0; CI != Named.size(); ++CI)
        Report.addRow(Works[WI].Name, Named[CI].Name, Times[WI][CI + 1],
                      "seconds");
    }

    // Per-config vectors of per-benchmark speedups.
    std::vector<std::vector<double>> Speedups(Named.size());
    for (size_t WI = 0; WI != Works.size(); ++WI)
      for (size_t CI = 0; CI != Named.size(); ++CI)
        Speedups[CI].push_back(
            speedupPercent(Times[WI][0], Times[WI][CI + 1]));

    std::printf("-- (a) arithmetic mean --\n");
    std::printf("%-14s", SuiteNames[SuiteIdx]);
    for (size_t CI = 0; CI != Named.size(); ++CI)
      std::printf(" %12.2f%%", arithmeticMean(Speedups[CI]));
    std::printf("\n");

    std::printf("-- (b) geometric mean --\n");
    std::printf("%-14s", SuiteNames[SuiteIdx]);
    for (size_t CI = 0; CI != Named.size(); ++CI)
      std::printf(" %12.2f%%", geometricMeanPercent(Speedups[CI]));
    std::printf("\n");

    for (size_t CI = 0; CI != Named.size(); ++CI)
      Report.addMetric(std::string(SuiteNames[SuiteIdx]) + "." +
                           Named[CI].Name + ".mean_speedup_pct",
                       arithmeticMean(Speedups[CI]));

    // Per-benchmark breakdown (the paper aggregates; we also show the
    // underlying rows for inspection).
    std::printf("   per-benchmark speedup under ALL: ");
    for (size_t WI = 0; WI != Works.size(); ++WI)
      std::printf("%s=%.1f%% ", Works[WI].Name,
                  speedupPercent(Times[WI][0], Times[WI][Named.size()]));
    std::printf("\n\n");
  }

  std::printf("Paper reference (Fig. 9a, arithmetic mean, best columns):\n"
              "  SunSpider 1.0: PS=4.81 CP=-1.04 PS+CP+DCE=5.35 best=5.38\n"
              "  V8 v6:         PS=4.00 CP=-0.50 best=4.83\n"
              "  Kraken 1.1:    PS=0.75 CP=-0.08 best=1.25\n"
              "Expected shape: CP alone ~0 or negative; PS positive;\n"
              "PS+CP+DCE among the best; ALL below the best.\n");
  Report.write();
  return 0;
}
