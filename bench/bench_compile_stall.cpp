//===- bench/bench_compile_stall.cpp - Off-thread compile stall -----------===//
///
/// \file
/// Measures the main-thread cost of compilation at dispatch boundaries:
/// the latency distribution (p50/p99) of individual calls in a stream
/// that repeatedly triggers specialization, despecialization and generic
/// recompiles across many functions, compared between the synchronous
/// pipeline (JITVS_COMPILE_THREADS=0) and the background compiler. With
/// workers, the call that used to eat the whole compile keeps
/// interpreting instead, so the tail collapses while total compile work
/// stays the same (it moves off-thread, visible in the compile-seconds
/// vs compile-stall-seconds split).
///
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

using namespace jitvs;
using namespace jitvs::bench;

namespace {

constexpr int NumFuncs = 40;
constexpr int CallsPerRound = 25;
constexpr int Rounds = 3; // Round 0 specializes; round 1+ despecialize.

/// NumFuncs straight-line functions with distinct constants: enough
/// arithmetic to give the compiler real work per trigger, no loops so
/// every compile is call-triggered (loop threshold is parked high).
std::string makeProgram() {
  std::string S;
  for (int F = 0; F != NumFuncs; ++F) {
    S += "function f" + std::to_string(F) + "(x, y) {\n";
    S += "  var a = x * " + std::to_string(F + 3) + " + y;\n";
    for (int I = 0; I != 24; ++I) {
      int K = (F * 31 + I * 7) % 97 + 2;
      S += "  a = a * " + std::to_string(K % 5 + 1) + " + x * " +
           std::to_string(K) + " - y + " + std::to_string(I) + ";\n";
    }
    S += "  return a;\n}\n";
  }
  return S;
}

struct StreamResult {
  std::vector<double> LatenciesNs; ///< One entry per dispatched call.
  double WallSeconds = 0.0;        ///< Whole stream, main thread.
  double StreamStallSeconds = 0.0; ///< Stall during the stream only.
  EngineStats Stats;               ///< After the settle drain.
};

/// Runs the call stream under \p Knobs: every function called
/// CallsPerRound times per round, with the arguments changing between
/// rounds to force despecialize -> recompile traffic.
StreamResult runStream(const std::string &Program, const EngineKnobs &Knobs) {
  StreamResult R;
  Runtime RT;
  Engine E(RT, OptConfig::all(), Knobs);
  RT.evaluate(Program);
  if (RT.hasError()) {
    std::fprintf(stderr, "bench_compile_stall: program failed: %s\n",
                 RT.errorMessage().c_str());
    std::exit(1);
  }

  std::vector<std::string> Names;
  for (int F = 0; F != NumFuncs; ++F)
    Names.push_back("f" + std::to_string(F));

  R.LatenciesNs.reserve(NumFuncs * CallsPerRound * Rounds);
  Timer Wall;
  for (int Round = 0; Round != Rounds; ++Round) {
    std::vector<Value> Args = {Value::int32(Round + 1),
                               Value::int32(Round * 2 + 1)};
    for (int Call = 0; Call != CallsPerRound; ++Call) {
      for (int F = 0; F != NumFuncs; ++F) {
        Timer T;
        RT.callGlobal(Names[F], Args);
        R.LatenciesNs.push_back(T.seconds() * 1e9);
      }
    }
  }
  R.WallSeconds = Wall.seconds();
  if (RT.hasError()) {
    std::fprintf(stderr, "bench_compile_stall: stream failed: %s\n",
                 RT.errorMessage().c_str());
    std::exit(1);
  }
  R.StreamStallSeconds = E.stats().CompileStallSeconds;
  E.drainCompiles(); // Outside the timed stream: settle in-flight work.
  R.Stats = E.stats();
  return R;
}

double percentile(std::vector<double> Xs, double P) {
  if (Xs.empty())
    return 0.0;
  std::sort(Xs.begin(), Xs.end());
  size_t Idx = static_cast<size_t>(P / 100.0 * (Xs.size() - 1) + 0.5);
  return Xs[std::min(Idx, Xs.size() - 1)];
}

} // namespace

int main() {
  int Reps = repetitions();
  std::string Program = makeProgram();

  EngineKnobs Sync;
  Sync.LoopThreshold = 1000000000; // Call-triggered compiles only.
  EngineKnobs Async = Sync;
  Async.CompileThreads =
      std::max(2u, std::min(4u, std::thread::hardware_concurrency() - 1));

  std::string AsyncName = "threads" + std::to_string(Async.CompileThreads);
  struct Column {
    const char *Name;
    const EngineKnobs *Knobs;
  } Columns[] = {{"sync", &Sync}, {AsyncName.c_str(), &Async}};

  std::printf("Compile-stall: per-call dispatch latency, %d funcs x %d "
              "calls x %d rounds (median of %d reps)\n\n",
              NumFuncs, CallsPerRound, Rounds, Reps);
  std::printf("%-12s %10s %10s %12s %12s %12s\n", "config", "p50(ns)",
              "p99(ns)", "stream(ms)", "compile(ms)", "stall(ms)");
  printRule(74);

  BenchReport Report("compile_stall", Reps);
  Report.setMeta("funcs", std::to_string(NumFuncs));
  Report.setMeta("threads", std::to_string(Async.CompileThreads));

  double P99ByCol[2] = {0, 0};
  for (int C = 0; C != 2; ++C) {
    // Interleaving across columns matters less than within: each rep is
    // a fresh Runtime+Engine, and the two columns run identical streams.
    std::vector<double> P50s, P99s, Walls, CompileMs, StallMs;
    for (int R = 0; R < Reps; ++R) {
      StreamResult S = runStream(Program, *Columns[C].Knobs);
      P50s.push_back(percentile(S.LatenciesNs, 50));
      P99s.push_back(percentile(S.LatenciesNs, 99));
      Walls.push_back(S.WallSeconds);
      CompileMs.push_back(S.Stats.CompileSeconds * 1e3);
      StallMs.push_back(S.StreamStallSeconds * 1e3);
    }
    double P50 = median(P50s), P99 = median(P99s);
    P99ByCol[C] = P99;
    std::printf("%-12s %10.0f %10.0f %12.3f %12.3f %12.3f\n",
                Columns[C].Name, P50, P99, median(Walls) * 1e3,
                median(CompileMs), median(StallMs));

    // Latency percentiles are the figure of merit but too jittery to
    // gate on shared runners: report them as descriptive "ns" rows.
    Report.addRow("call-stream", Columns[C].Name, P50, "p50-ns");
    Report.addRow("call-stream", Columns[C].Name, P99, "p99-ns");
    // The coarse totals are the gated rows (unit "seconds").
    Report.addRow("call-stream", Columns[C].Name, median(Walls), "seconds",
                  &Walls);
    Report.addRow("call-stream",
                  std::string(Columns[C].Name) + "-stall",
                  median(StallMs) / 1e3, "seconds");
  }

  double Ratio = P99ByCol[0] > 0 ? P99ByCol[1] / P99ByCol[0] : 0.0;
  std::printf("\nasync p99 / sync p99 = %.3f (lower is better; the "
              "background pipeline hides compile stalls)\n",
              Ratio);
  Report.addMetric("p99_async_over_sync", Ratio);
  Report.write();
  return 0;
}
