//===- bench/bench_fig4_param_types.cpp - Figure 4 ------------------------===//
///
/// \file
/// Regenerates Figure 4: the most common types of parameters of
/// functions called with only one set of arguments, for each suite and
/// for the (synthetic) web session. The paper's point: benchmarks are
/// integer-heavy while the web is dominated by objects and strings —
/// which bounds how much of the specialization benefit transfers.
///
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"
#include "profiling/CallProfiler.h"
#include "profiling/WebSession.h"
#include "vm/Runtime.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace jitvs;
using namespace jitvs::bench;

int main() {
  std::printf("Figure 4: parameter types of monomorphic functions\n\n");

  BenchReport Report("fig4_param_types", 1);
  for (int SuiteIdx = 0; SuiteIdx != 3; ++SuiteIdx) {
    CallProfiler Profiler;
    for (const Workload &W : suiteWorkloads(SuiteNames[SuiteIdx])) {
      Runtime RT;
      Profiler.beginUnit();
      RT.setCallObserver(&Profiler);
      RT.evaluate(W.Source);
      if (RT.hasError()) {
        std::fprintf(stderr, "%s failed: %s\n", W.Name,
                     RT.errorMessage().c_str());
        return 1;
      }
    }
    std::printf("== %s ==\n%s\n", SuiteTitles[SuiteIdx],
                Profiler.monomorphicParamTypes().toTable().c_str());
    Report.addRow(SuiteNames[SuiteIdx], "profile",
                  static_cast<double>(Profiler.numFunctions()), "functions");
  }

  {
    WebSessionModel Model;
    Runtime RT;
    CallProfiler Profiler;
    RT.setCallObserver(&Profiler);
    RT.evaluate(generateWebSessionProgram(Model, /*Seed=*/20130223));
    if (RT.hasError()) {
      std::fprintf(stderr, "web session failed: %s\n",
                   RT.errorMessage().c_str());
      return 1;
    }
    std::printf("== WEB (synthetic session) ==\n%s\n",
                Profiler.monomorphicParamTypes().toTable().c_str());
    Report.addRow("web-session", "profile",
                  static_cast<double>(Profiler.numFunctions()), "functions");
  }

  std::printf("Paper reference: benchmark parameters are 33-49%% integers;\n"
              "on the web integers are only 6.36%%, with objects (35.57%%)\n"
              "and strings (32.95%%) dominating.\n");
  Report.write();
  return 0;
}
