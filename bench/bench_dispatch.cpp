//===- bench/bench_dispatch.cpp - Dispatch-mode throughput ----------------===//
///
/// \file
/// Measures what the native backend's loop overhead costs and what the
/// threaded-dispatch + macro-op-fusion work recovers: each loop kernel
/// runs under four execution modes —
///
///   interp       pure interpreter (no JIT)
///   switch       JIT, portable while+switch dispatch, fusion off
///   goto         JIT, computed-goto threaded dispatch, fusion off
///   goto+fuse    JIT, threaded dispatch plus macro-op fusion
///
/// The paper's speedups (Fig. 9a) come from executing fewer instructions
/// and guards; per-instruction dispatch cost dilutes that win, so the
/// goto and goto+fuse columns are the backend catching up with the
/// "as fast as the hardware allows" north star.
///
/// Env: JITVS_BENCH_REPS (repetitions), JITVS_DISPATCH/JITVS_FUSION are
/// deliberately overridden per column here.
///
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"

#include <cmath>

using namespace jitvs;
using namespace jitvs::bench;

namespace {

struct Mode {
  const char *Name;
  bool Jit;
  DispatchMode Dispatch;
  bool Fusion;
};

const Mode Modes[] = {
    {"interp", false, DispatchMode::Switch, false},
    {"switch", true, DispatchMode::Switch, false},
    {"goto", true, DispatchMode::Goto, false},
    {"goto+fuse", true, DispatchMode::Goto, true},
};
constexpr size_t NumModes = sizeof(Modes) / sizeof(Modes[0]);

/// The pipelined loop kernels: tight arithmetic/compare-branch loops
/// where dispatch overhead dominates, drawn from all three suites.
const char *const KernelNames[] = {
    "bitops-bits-in-byte", // SunSpider
    "bitops-bitwise-and",  // SunSpider
    "math-cordic",         // SunSpider
    "math-partial-sums",   // SunSpider
    "audio-oscillator",    // Kraken
    "imaging-desaturate",  // Kraken
    "navier-stokes-lite",  // V8
    "crypto-lite",         // V8
};

double runMode(const Workload &W, const Mode &M) {
  Runtime RT;
  std::unique_ptr<Engine> E;
  OptConfig Config = OptConfig::all();
  if (M.Jit) {
    E = std::make_unique<Engine>(RT, Config);
    E->setDispatchMode(M.Dispatch);
    E->setFusion(M.Fusion);
  }
  Timer T;
  RT.evaluate(W.Source);
  double Seconds = T.seconds();
  if (RT.hasError()) {
    std::fprintf(stderr, "workload %s failed: %s\n", W.Name,
                 RT.errorMessage().c_str());
    std::exit(1);
  }
  return Seconds;
}

} // namespace

int main() {
  std::vector<Workload> Kernels;
  for (const char *Name : KernelNames)
    if (const Workload *W = findWorkload(Name))
      Kernels.push_back(*W);

  int Reps = repetitions();
  if (!Executor::hasComputedGoto())
    std::printf("note: no computed-goto support in this build; 'goto' "
                "columns run the switch loop.\n");
  std::printf("Dispatch-mode throughput on loop kernels (%d reps, median "
              "ms; speedup vs switch)\n\n", Reps);

  // Interleaved sampling, same protocol as measureMatrix.
  std::vector<std::vector<std::vector<double>>> Samples(
      Kernels.size(), std::vector<std::vector<double>>(NumModes));
  for (int R = 0; R < Reps; ++R)
    for (size_t K = 0; K != Kernels.size(); ++K)
      for (size_t M = 0; M != NumModes; ++M)
        Samples[K][M].push_back(runMode(Kernels[K], Modes[M]));

  std::printf("  %-22s", "kernel");
  for (const Mode &M : Modes)
    std::printf(" %12s", M.Name);
  std::printf(" %10s\n", "fuse-gain");
  printRule(22 + 13 * NumModes + 13);

  // Per-kernel medians; geometric means of the ratios vs the switch
  // column (index 1).
  BenchReport Report("dispatch", Reps);
  Report.setMeta("computed_goto", Executor::hasComputedGoto() ? "1" : "0");
  double GeoGoto = 0.0, GeoFuse = 0.0;
  for (size_t K = 0; K != Kernels.size(); ++K) {
    double Med[NumModes];
    for (size_t M = 0; M != NumModes; ++M) {
      Med[M] = median(Samples[K][M]);
      Report.addRow(Kernels[K].Name, Modes[M].Name, Med[M], "seconds",
                    &Samples[K][M]);
    }
    std::printf("  %-22s", Kernels[K].Name);
    for (size_t M = 0; M != NumModes; ++M)
      std::printf(" %9.2f ms", Med[M] * 1e3);
    std::printf(" %+9.1f%%\n", speedupPercent(Med[1], Med[3]));
    GeoGoto += std::log(Med[1] / Med[2]);
    GeoFuse += std::log(Med[1] / Med[3]);
  }
  GeoGoto = std::exp(GeoGoto / Kernels.size());
  GeoFuse = std::exp(GeoFuse / Kernels.size());

  std::printf("\nGeometric-mean speedup vs switch dispatch: goto %+.1f%%, "
              "goto+fuse %+.1f%%\n",
              (GeoGoto - 1.0) * 100.0, (GeoFuse - 1.0) * 100.0);
  std::printf("Expected shape: goto+fuse > goto > switch on these kernels; "
              "interp trails by an order of magnitude.\n");
  Report.addMetric("geomean_goto_speedup_pct", (GeoGoto - 1.0) * 100.0);
  Report.addMetric("geomean_fuse_speedup_pct", (GeoFuse - 1.0) * 100.0);
  Report.write();
  return GeoFuse > 1.0 ? 0 : 1;
}
