//===- bench/bench_gc.cpp - Generational vs mark-sweep collection ---------===//
///
/// \file
/// Measures what the two-space generational collector buys over the
/// seed's pure mark-sweep heap. Each kernel runs under two configs:
///
///   gen        nursery on (the default): bump allocation, copying
///              minor collections at safepoints, remembered-set scans
///   marksweep  Heap::setNurseryEnabled(false): the pre-generational
///              behavior — every allocation tenures onto the old-space
///              list and majors walk the entire live graph
///
/// Kernels, by what they stress:
///
///   churn           short-lived allocation storm, tiny retained graph:
///                   the generational sweet spot (die-young hypothesis)
///   retained-churn  same storm against a large retained live graph:
///                   majors must traverse the graph, minors must not
///   serve-replay    serve-shaped request loop: per-request young
///                   objects + a bounded long-lived session cache, the
///                   allocation profile of tools/jitvs_serve
///
/// Expected shape: churn kernels >= 1.5x (the acceptance floor for this
/// reproduction), retained-churn the largest win, serve-replay in
/// between. Also reports minor/major collection counts per config so a
/// regression in collection *frequency* is visible even when wall-clock
/// noise hides it.
///
/// Env: JITVS_BENCH_REPS (repetitions), JITVS_NURSERY_KB (nursery
/// size; the gen config uses whatever the environment selects).
///
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"

using namespace jitvs;
using namespace jitvs::bench;

namespace {

// Pure allocation churn: every iteration allocates an object, an array
// and strings that die within a few iterations. The rolling window
// keeps a handful alive across a minor collection so promotion and the
// write barrier stay on the measured path.
const char *const ChurnSrc =
    "function main() {"
    "  var window = [];"
    "  for (var i = 0; i < 8; i = i + 1)"
    "    window.push({ id: 0, pair: [0, 0], tag: 'seed' });"
    "  var t = 0;"
    "  for (var i = 0; i < 400000; i = i + 1) {"
    "    var o = { id: i, pair: [i, i + 1], tag: 'n' + (i % 16) };"
    "    var spill = [o.tag, 'x' + (i % 8)];"
    "    t = t + spill.length;"
    "    window[i % 8] = o;"
    "    t = t + o.pair[0] + window[(i + 4) % 8].id;"
    "  }"
    "  return t;"
    "}"
    "print(main());";

// The same storm with ~60k objects of retained live graph: a mark-sweep
// major pays for the whole graph on every collection, a minor pays only
// for the nursery survivors plus the remembered set.
const char *const RetainedChurnSrc =
    "function main() {"
    "  var retained = [];"
    "  for (var i = 0; i < 20000; i = i + 1)"
    "    retained.push({ id: i, body: [i, i * 2, 'r' + (i % 64)] });"
    "  var t = 0;"
    "  for (var i = 0; i < 400000; i = i + 1) {"
    "    var o = { id: i, pair: [i, i + 1] };"
    "    t = t + o.pair[1] + retained[i % 20000].id;"
    "    if ((i % 1000) == 0) { retained[i % 20000].body = [i, t]; }"
    "  }"
    "  return t;"
    "}"
    "print(main());";

// Serve-shaped replay: each "request" builds a young argument object,
// runs a small compute kernel over it, renders a response string, and
// touches a bounded session cache whose entries live across many
// requests (old objects receiving young stores — remembered-set
// traffic, exactly the jitvs_serve allocation profile).
const char *const ServeReplaySrc =
    "function handle(req, cache) {"
    "  var key = 's' + (req.id % 32);"
    "  var sess = cache[key];"
    "  if (!sess) { sess = { hits: 0, last: '' }; cache[key] = sess; }"
    "  var body = 0;"
    "  for (var i = 0; i < req.work; i = i + 1) { body = body + i * req.id; }"
    "  sess.hits = sess.hits + 1;"
    "  sess.last = 'resp:' + (body % 9973);"
    "  return sess.last;"
    "}"
    "function main() {"
    "  var cache = {};"
    "  var ok = 0;"
    "  for (var r = 0; r < 120000; r = r + 1) {"
    "    var req = { id: r, work: 20 + (r % 10), hdrs: ['h' + (r % 4)] };"
    "    var resp = handle(req, cache);"
    "    if (resp != '') { ok = ok + 1; }"
    "  }"
    "  return ok;"
    "}"
    "print(main());";

const Workload Kernels[] = {
    {"gc", "churn", ChurnSrc},
    {"gc", "retained-churn", RetainedChurnSrc},
    {"gc", "serve-replay", ServeReplaySrc},
};
constexpr size_t NumKernels = sizeof(Kernels) / sizeof(Kernels[0]);

const char *const ConfigNames[] = {"gen", "marksweep"};
constexpr size_t NumConfigs = 2;

struct GCCounts {
  size_t Minors = 0;
  size_t Majors = 0;
};

/// One timed run; also checks that both heap configs observe identical
/// program output (the collector must be invisible to the program).
double runConfig(const Workload &W, bool Generational,
                 std::string &OutputOut, GCCounts &Counts) {
  Runtime RT;
  if (!Generational)
    RT.heap().setNurseryEnabled(false);
  OptConfig Config = OptConfig::all();
  Engine E(RT, Config);
  Timer T;
  RT.evaluate(W.Source);
  double Seconds = T.seconds();
  if (RT.hasError()) {
    std::fprintf(stderr, "workload %s failed: %s\n", W.Name,
                 RT.errorMessage().c_str());
    std::exit(1);
  }
  OutputOut = RT.output();
  Counts.Minors = RT.heap().minorCount();
  Counts.Majors = RT.heap().gcCount();
  return Seconds;
}

} // namespace

int main() {
  int Reps = repetitions();
  std::printf("Generational vs mark-sweep heap (%d reps, median ms; "
              "speedup of gen vs marksweep)\n\n", Reps);

  // Interleaved sampling, same protocol as measureMatrix.
  std::vector<std::vector<std::vector<double>>> Samples(
      NumKernels, std::vector<std::vector<double>>(NumConfigs));
  GCCounts Counts[NumKernels][NumConfigs];
  std::string Expected[NumKernels];
  for (int R = 0; R < Reps; ++R)
    for (size_t K = 0; K != NumKernels; ++K)
      for (size_t C = 0; C != NumConfigs; ++C) {
        std::string Out;
        Samples[K][C].push_back(
            runConfig(Kernels[K], C == 0, Out, Counts[K][C]));
        if (R == 0 && C == 0)
          Expected[K] = Out;
        else if (Out != Expected[K]) {
          std::fprintf(stderr, "bench_gc: %s output diverged under %s\n",
                       Kernels[K].Name, ConfigNames[C]);
          return 1;
        }
      }

  std::printf("  %-16s %12s %12s %9s | %15s %15s\n", "kernel", "gen",
              "marksweep", "speedup", "gen minor/major",
              "ms minor/major");
  printRule(16 + 13 + 13 + 10 + 3 + 16 + 16 + 2);

  BenchReport Report("gc", Reps);
  Report.setMeta("gen_config", "nursery on (default size)");
  Report.setMeta("marksweep_config", "setNurseryEnabled(false)");
  for (size_t K = 0; K != NumKernels; ++K) {
    double Med[NumConfigs];
    for (size_t C = 0; C != NumConfigs; ++C) {
      Med[C] = median(Samples[K][C]);
      Report.addRow(Kernels[K].Name, ConfigNames[C], Med[C], "seconds",
                    &Samples[K][C]);
      Report.addRow(std::string(Kernels[K].Name) + "_minors",
                    ConfigNames[C],
                    static_cast<double>(Counts[K][C].Minors), "count");
      Report.addRow(std::string(Kernels[K].Name) + "_majors",
                    ConfigNames[C],
                    static_cast<double>(Counts[K][C].Majors), "count");
    }
    double Speedup = Med[1] / Med[0];
    std::printf("  %-16s %9.2f ms %9.2f ms %8.2fx | %9zu/%-5zu %9zu/%-5zu\n",
                Kernels[K].Name, Med[0] * 1e3, Med[1] * 1e3, Speedup,
                Counts[K][0].Minors, Counts[K][0].Majors,
                Counts[K][1].Minors, Counts[K][1].Majors);
    Report.addMetric(std::string(Kernels[K].Name) + "_speedup", Speedup);
  }

  std::printf("\nExpected shape: churn >= 1.5x (acceptance floor), "
              "retained-churn the largest win,\nserve-replay in between; "
              "gen majors should be near zero on every kernel.\n");
  Report.write();
  return 0;
}
