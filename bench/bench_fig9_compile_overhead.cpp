//===- bench/bench_fig9_compile_overhead.cpp - Figure 9 (c-d) -------------===//
///
/// \file
/// Regenerates Figure 9 (c-d): the impact of each optimization
/// configuration on total compilation time (analysis, optimization and
/// code generation) relative to the baseline pipeline, in percent.
/// Negative numbers mean the configuration *reduced* compile time — the
/// paper's surprising result, explained by specialization shrinking the
/// graphs the later phases process.
///
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"

using namespace jitvs;
using namespace jitvs::bench;

namespace {

/// Total compile seconds accumulated while running \p W under \p Config.
double compileSeconds(const Workload &W, const OptConfig &Config) {
  EngineStats Stats;
  runOnce(W, &Config, &Stats);
  return Stats.CompileSeconds;
}

} // namespace

int main() {
  std::vector<NamedConfig> Named = figure9Configs();
  OptConfig Baseline = OptConfig::baseline();
  int Reps = repetitions();

  std::printf("Figure 9 (c-d): compilation overhead %% vs baseline "
              "(median of %d runs)\n\n",
              Reps);

  std::printf("%-14s", "suite");
  for (const NamedConfig &NC : Named)
    std::printf(" %13s", NC.Name);
  std::printf("\n");
  printRule(14 + 14 * Named.size());

  BenchReport Report("fig9_compile_overhead", Reps);
  for (int SuiteIdx = 0; SuiteIdx != 3; ++SuiteIdx) {
    std::vector<Workload> Works = suiteWorkloads(SuiteNames[SuiteIdx]);

    // Interleaved sampling of compile-time totals.
    std::vector<std::vector<std::vector<double>>> Samples(
        Works.size(),
        std::vector<std::vector<double>>(Named.size() + 1));
    for (int R = 0; R < Reps; ++R) {
      for (size_t WI = 0; WI != Works.size(); ++WI) {
        Samples[WI][0].push_back(compileSeconds(Works[WI], Baseline));
        for (size_t CI = 0; CI != Named.size(); ++CI)
          Samples[WI][CI + 1].push_back(
              compileSeconds(Works[WI], Named[CI].Config));
      }
    }

    std::vector<std::vector<double>> OverheadPct(Named.size());
    for (size_t WI = 0; WI != Works.size(); ++WI) {
      double Base = median(Samples[WI][0]);
      Report.addRow(Works[WI].Name, "baseline", Base, "compile-seconds");
      for (size_t CI = 0; CI != Named.size(); ++CI) {
        double C = median(Samples[WI][CI + 1]);
        Report.addRow(Works[WI].Name, Named[CI].Name, C, "compile-seconds");
        if (Base > 0.0)
          OverheadPct[CI].push_back((C / Base - 1.0) * 100.0);
      }
    }

    std::printf("-- (c) arithmetic mean --\n");
    std::printf("%-14s", SuiteNames[SuiteIdx]);
    for (size_t CI = 0; CI != Named.size(); ++CI)
      std::printf(" %12.2f%%", arithmeticMean(OverheadPct[CI]));
    std::printf("\n");

    std::printf("-- (d) geometric mean --\n");
    std::printf("%-14s", SuiteNames[SuiteIdx]);
    for (size_t CI = 0; CI != Named.size(); ++CI)
      std::printf(" %12.2f%%", geometricMeanPercent(OverheadPct[CI]));
    std::printf("\n\n");

    for (size_t CI = 0; CI != Named.size(); ++CI)
      Report.addMetric(std::string(SuiteNames[SuiteIdx]) + "." +
                           Named[CI].Name + ".mean_overhead_pct",
                       arithmeticMean(OverheadPct[CI]));
  }

  std::printf("Paper reference (Fig. 9c, SunSpider): PS=-7.2, with most\n"
              "specializing configurations *reducing* compile time; V8 rows\n"
              "slightly positive (1.4..4.3).\n");
  Report.write();
  return 0;
}
