//===- bench/bench_fig1_2_web_histograms.cpp - Figures 1 and 2 ------------===//
///
/// \file
/// Regenerates Figures 1 and 2: the per-function invocation-count and
/// distinct-argument-set histograms of a web browsing session. The
/// paper's data came from instrumenting Firefox over the Alexa top-100;
/// we instrument a synthetic session drawn from the same distributions
/// (see DESIGN.md), then validate the headline fractions the policy is
/// built on: ~49% of functions called once, ~60% always called with the
/// same arguments.
///
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"
#include "profiling/CallProfiler.h"
#include "profiling/WebSession.h"
#include "vm/Runtime.h"

#include <cstdio>

using namespace jitvs;
using namespace jitvs::bench;

int main() {
  WebSessionModel Model;
  std::string Source = generateWebSessionProgram(Model, /*Seed=*/20130223);

  Runtime RT;
  CallProfiler Profiler;
  RT.setCallObserver(&Profiler);
  RT.evaluate(Source);
  if (RT.hasError()) {
    std::fprintf(stderr, "session failed: %s\n", RT.errorMessage().c_str());
    return 1;
  }

  std::printf("Synthetic web session: %zu functions, %llu calls\n\n",
              Profiler.numFunctions(),
              static_cast<unsigned long long>(Profiler.totalCalls()));

  std::printf("Figure 1: %% of functions called n times\n");
  std::printf("%s\n",
              Profiler.callCountHistogram().toTable("calls").c_str());

  std::printf("Figure 2: %% of functions called with n distinct argument "
              "sets\n");
  std::printf("%s\n",
              Profiler.argSetHistogram().toTable("argsets").c_str());

  auto [MostCalledName, MostCalledCount] = Profiler.mostCalled();
  std::printf("Most called function: %s (%llu calls)\n",
              MostCalledName.c_str(),
              static_cast<unsigned long long>(MostCalledCount));

  std::printf("\nSummary vs paper:\n");
  std::printf("  called exactly once:        %6.2f%%  (paper: 48.88%%)\n",
              Profiler.fractionCalledOnce() * 100.0);
  std::printf("  single argument set:        %6.2f%%  (paper: 59.91%%)\n",
              Profiler.fractionSingleArgSet() * 100.0);

  BenchReport Report("fig1_2_web_histograms", 1);
  Report.addRow("web-session", "profile",
                static_cast<double>(Profiler.numFunctions()), "functions");
  Report.addMetric("fraction_called_once_pct",
                   Profiler.fractionCalledOnce() * 100.0);
  Report.addMetric("fraction_single_argset_pct",
                   Profiler.fractionSingleArgSet() * 100.0);
  Report.write();
  return 0;
}
