//===- bench/bench_fig3_suite_histograms.cpp - Figure 3 -------------------===//
///
/// \file
/// Regenerates Figure 3: per-suite invocation histograms. Top: fraction
/// of functions called n times. Bottom: fraction of functions called
/// with n distinct argument sets. These are measured for real by
/// instrumenting the interpreter while running our suite models.
///
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"
#include "profiling/CallProfiler.h"
#include "vm/Runtime.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace jitvs;
using namespace jitvs::bench;

int main() {
  BenchReport Report("fig3_suite_histograms", 1);
  for (int SuiteIdx = 0; SuiteIdx != 3; ++SuiteIdx) {
    CallProfiler Profiler;
    for (const Workload &W : suiteWorkloads(SuiteNames[SuiteIdx])) {
      Runtime RT;
      Profiler.beginUnit();
      RT.setCallObserver(&Profiler);
      RT.evaluate(W.Source);
      if (RT.hasError()) {
        std::fprintf(stderr, "%s failed: %s\n", W.Name,
                     RT.errorMessage().c_str());
        return 1;
      }
    }

    std::printf("== %s: %zu distinct functions, %llu calls ==\n",
                SuiteTitles[SuiteIdx], Profiler.numFunctions(),
                static_cast<unsigned long long>(Profiler.totalCalls()));

    std::printf("(top) %% of functions called n times\n%s\n",
                Profiler.callCountHistogram().toTable("calls").c_str());
    std::printf("(bottom) %% of functions called with n distinct argument "
                "sets\n%s\n",
                Profiler.argSetHistogram().toTable("argsets").c_str());

    auto [CalledName, CalledCount] = Profiler.mostCalled();
    auto [VariedName, VariedCount] = Profiler.mostVaried();
    std::printf("most called: %s (%llu); most varied: %s (%llu arg sets)\n",
                CalledName.c_str(),
                static_cast<unsigned long long>(CalledCount),
                VariedName.c_str(),
                static_cast<unsigned long long>(VariedCount));
    std::printf("called once: %.2f%%; single arg set: %.2f%%\n\n",
                Profiler.fractionCalledOnce() * 100.0,
                Profiler.fractionSingleArgSet() * 100.0);
    Report.addMetric(std::string(SuiteNames[SuiteIdx]) +
                         ".fraction_called_once_pct",
                     Profiler.fractionCalledOnce() * 100.0);
    Report.addMetric(std::string(SuiteNames[SuiteIdx]) +
                         ".fraction_single_argset_pct",
                     Profiler.fractionSingleArgSet() * 100.0);
  }

  std::printf("Paper reference: called-once fractions 21.43%% (SunSpider),\n"
              "4.68%% (V8), 39.79%% (Kraken); single-arg-set fractions\n"
              "38.96%%, 40.62%% and 55.91%%. Expected shape: suites are\n"
              "more varied than the web, yet a large share of functions\n"
              "still sees a single argument set.\n");
  Report.write();
  return 0;
}
