//===- bench/bench_objects.cpp - Shape/IC property-access ablation --------===//
///
/// \file
/// Measures what hidden-class shapes and the inline caches buy on
/// property-heavy code, and what megamorphic sites cost. Each kernel
/// runs under two configs:
///
///   shapes     full JIT, shape recording + ICs on (the default)
///   noshapes   full JIT, JITVS_SHAPES=off equivalent: no IC fast paths,
///              no shape feedback, every property op stays generic
///
/// Kernel ablation by IC site polymorphism:
///
///   mono-read    one hot receiver shape, 16-slot read kernel
///   mono-churn   constructor pattern: shared transition chains + adds
///   poly-read    two receiver shapes through one read site (poly IC)
///   mega-read    eight receiver shapes through one site (megamorphic)
///
/// Expected shape of the result: mono kernels speed up well past 1.5x
/// (slot loads vs generic lookup walking a 16-deep shape chain);
/// megamorphic sites give the win back but must not regress
/// meaningfully, since the IC detects megamorphy and the site stays on
/// the generic path.
///
/// Env: JITVS_BENCH_REPS (repetitions).
///
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"

#include <cmath>

using namespace jitvs;
using namespace jitvs::bench;

namespace {

// Sixteen-slot monomorphic receiver: reads dominate, one store per
// iteration keeps a StoreSlot in the mix.
const char *const MonoReadSrc =
    "function sum16(o) {"
    "  return o.p0 + o.p1 + o.p2 + o.p3 + o.p4 + o.p5 + o.p6 + o.p7 +"
    "         o.p8 + o.p9 + o.p10 + o.p11 + o.p12 + o.p13 + o.p14 + o.p15;"
    "}"
    "function main() {"
    "  var o = {p0:0,p1:1,p2:2,p3:3,p4:4,p5:5,p6:6,p7:7,"
    "           p8:8,p9:9,p10:10,p11:11,p12:12,p13:13,p14:14,p15:15};"
    "  var t = 0;"
    "  for (var i = 0; i < 400000; i = i + 1) {"
    "    o.p15 = i;"
    "    t = t + sum16(o);"
    "  }"
    "  return t;"
    "}"
    "print(main());";

// Constructor pattern: every object replays the same property-add
// sequence, so all allocations share one transition chain and the adds
// compile to AddSlot transitions.
const char *const MonoChurnSrc =
    "function Point(x, y) {"
    "  this.x = x;"
    "  this.y = y;"
    "  this.dx = x + y;"
    "  this.dy = x - y;"
    "}"
    "function main() {"
    "  var t = 0;"
    "  for (var i = 0; i < 300000; i = i + 1) {"
    "    var p = new Point(i, 3);"
    "    t = t + p.x + p.y + p.dx + p.dy;"
    "  }"
    "  return t;"
    "}"
    "print(main());";

// Two layouts through one read site: a shared prefix plus a conditional
// extra property (the common "same constructor, optional field" case).
// The IC goes polymorphic (2 ways); the slots agree, so the JIT emits a
// single 2-shape guard set plus raw slot loads.
const char *const PolyReadSrc =
    "function get(o) {"
    "  return o.q0 + o.q1 + o.q2 + o.q3 + o.q4 + o.q5 + o.q6 + o.q7;"
    "}"
    "function main() {"
    "  var a = {q0:1,q1:2,q2:3,q3:4,q4:5,q5:6,q6:7,q7:8};"
    "  var b = {q0:8,q1:7,q2:6,q3:5,q4:4,q5:3,q6:2,q7:1,extra:9};"
    "  var t = 0;"
    "  for (var i = 0; i < 400000; i = i + 1)"
    "    t = t + get((i % 2) ? a : b);"
    "  return t;"
    "}"
    "print(main());";

// Eight layouts through one site: past MaxICWays, the site goes
// megamorphic and must stay on the generic path without thrashing.
const char *const MegaReadSrc =
    "function get(o) { return o.k; }"
    "function main() {"
    "  var os = [{k:1}, {a:0,k:2}, {b:0,c:0,k:3}, {d:0,e:0,f:0,k:4},"
    "            {g:0,h:0,i:0,j:0,k:5}, {l:0,m:0,n:0,o:0,p:0,k:6},"
    "            {q:0,r:0,s:0,t:0,u:0,v:0,k:7},"
    "            {w:0,x:0,y:0,z:0,a2:0,b2:0,c2:0,k:8}];"
    "  var t = 0;"
    "  for (var i = 0; i < 600000; i = i + 1)"
    "    t = t + get(os[i % 8]);"
    "  return t;"
    "}"
    "print(main());";

const Workload Kernels[] = {
    {"objects", "mono-read", MonoReadSrc},
    {"objects", "mono-churn", MonoChurnSrc},
    {"objects", "poly-read", PolyReadSrc},
    {"objects", "mega-read", MegaReadSrc},
};
constexpr size_t NumKernels = sizeof(Kernels) / sizeof(Kernels[0]);

const char *const ConfigNames[] = {"shapes", "noshapes"};
constexpr size_t NumConfigs = 2;

/// One timed run; checks that both configs observe the same program
/// output (the shape tier must be invisible to the program).
double runConfig(const Workload &W, bool ShapesOn, std::string &OutputOut) {
  Runtime RT;
  RT.setShapesEnabled(ShapesOn);
  OptConfig Config = OptConfig::all();
  Engine E(RT, Config);
  Timer T;
  RT.evaluate(W.Source);
  double Seconds = T.seconds();
  if (RT.hasError()) {
    std::fprintf(stderr, "workload %s failed: %s\n", W.Name,
                 RT.errorMessage().c_str());
    std::exit(1);
  }
  OutputOut = RT.output();
  return Seconds;
}

} // namespace

int main() {
  int Reps = repetitions();
  std::printf("Shape/IC property-access ablation (%d reps, median ms; "
              "speedup of shapes vs noshapes)\n\n", Reps);

  // Interleaved sampling, same protocol as measureMatrix.
  std::vector<std::vector<std::vector<double>>> Samples(
      NumKernels, std::vector<std::vector<double>>(NumConfigs));
  std::string Expected[NumKernels];
  for (int R = 0; R < Reps; ++R)
    for (size_t K = 0; K != NumKernels; ++K)
      for (size_t C = 0; C != NumConfigs; ++C) {
        std::string Out;
        Samples[K][C].push_back(runConfig(Kernels[K], C == 0, Out));
        if (R == 0 && C == 0)
          Expected[K] = Out;
        else if (Out != Expected[K]) {
          std::fprintf(stderr,
                       "bench_objects: %s output diverged under %s\n",
                       Kernels[K].Name, ConfigNames[C]);
          return 1;
        }
      }

  std::printf("  %-12s %12s %12s %10s\n", "kernel", "shapes", "noshapes",
              "speedup");
  printRule(12 + 13 + 13 + 11 + 3);

  BenchReport Report("objects", Reps);
  double MonoSpeedup = 0.0, MegaSpeedup = 0.0;
  for (size_t K = 0; K != NumKernels; ++K) {
    double Med[NumConfigs];
    for (size_t C = 0; C != NumConfigs; ++C) {
      Med[C] = median(Samples[K][C]);
      Report.addRow(Kernels[K].Name, ConfigNames[C], Med[C], "seconds",
                    &Samples[K][C]);
    }
    double Speedup = Med[1] / Med[0];
    std::printf("  %-12s %9.2f ms %9.2f ms %9.2fx\n", Kernels[K].Name,
                Med[0] * 1e3, Med[1] * 1e3, Speedup);
    if (K == 0)
      MonoSpeedup = Speedup;
    if (K == NumKernels - 1)
      MegaSpeedup = Speedup;
    Report.addMetric(std::string(Kernels[K].Name) + "_speedup", Speedup);
  }

  std::printf("\nExpected shape: mono kernels >= 1.5x, poly in between, "
              "mega-read ~1.0x (IC detects megamorphy, site stays "
              "generic).\n");
  Report.write();
  // Gate loosely for shared CI runners: shapes must help the mono read
  // kernel at all and the megamorphic site must not collapse. The 1.5x /
  // <5% acceptance numbers are read off the table on a quiet machine.
  return (MonoSpeedup > 1.0 && MegaSpeedup > 0.5) ? 0 : 1;
}
