//===- bench/bench_policy_stats.cpp - Section 4 policy numbers ------------===//
///
/// \file
/// Regenerates the in-text numbers of Section 4:
///   - specialization policy outcomes per suite: how many functions were
///     specialized, how many were "successful" (never called with
///     different arguments before program end), how many deoptimized
///     (paper: SunSpider 56/18/38, V8 37/11/26, Kraken 38/14/24);
///   - the growth in recompilations caused by specialization (paper:
///     +3.6% SunSpider, +4.35% V8, +7.58% Kraken);
/// plus two ablations called out in DESIGN.md: the specialization-cache
/// behavior and the relaxed bounds-check-elimination aliasing rule.
///
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"

#include "support/Timer.h"

using namespace jitvs;
using namespace jitvs::bench;

int main() {
  OptConfig Base = OptConfig::baseline();
  OptConfig Spec = OptConfig::all();
  BenchReport Report("policy_stats", 1);

  std::printf("Section 4: specialization policy outcomes\n\n");
  std::printf("%-12s %11s %10s %12s %9s %9s\n", "suite", "specialized",
              "successful", "deoptimized", "recomp", "recomp+%");

  for (int SuiteIdx = 0; SuiteIdx != 3; ++SuiteIdx) {
    uint64_t Specialized = 0, Successful = 0, Deoptimized = 0;
    uint64_t RecompBase = 0, RecompSpec = 0;
    uint64_t CompBase = 0, CompSpec = 0;

    for (const Workload &W : suiteWorkloads(SuiteNames[SuiteIdx])) {
      {
        EngineStats S;
        runOnce(W, &Base, &S);
        RecompBase += S.Recompilations;
        CompBase += S.Compilations;
      }
      Runtime RT;
      Engine E(RT, Spec);
      RT.evaluate(W.Source);
      if (RT.hasError()) {
        std::fprintf(stderr, "%s failed: %s\n", W.Name,
                     RT.errorMessage().c_str());
        return 1;
      }
      RecompSpec += E.stats().Recompilations;
      CompSpec += E.stats().Compilations;
      for (const Engine::FunctionReport &R : E.functionReports()) {
        if (!R.WasSpecialized)
          continue;
        ++Specialized;
        if (R.Despecialized)
          ++Deoptimized;
        else
          ++Successful;
      }
    }

    double RecompGrowth =
        CompBase ? (static_cast<double>(CompSpec) / CompBase - 1.0) * 100.0
                 : 0.0;
    std::printf("%-12s %11llu %10llu %12llu %4llu->%-4llu %8.2f%%\n",
                SuiteNames[SuiteIdx],
                static_cast<unsigned long long>(Specialized),
                static_cast<unsigned long long>(Successful),
                static_cast<unsigned long long>(Deoptimized),
                static_cast<unsigned long long>(CompBase),
                static_cast<unsigned long long>(CompSpec), RecompGrowth);
    Report.addRow(SuiteNames[SuiteIdx], "specialized",
                  static_cast<double>(Specialized), "functions");
    Report.addRow(SuiteNames[SuiteIdx], "successful",
                  static_cast<double>(Successful), "functions");
    Report.addRow(SuiteNames[SuiteIdx], "deoptimized",
                  static_cast<double>(Deoptimized), "functions");
    Report.addMetric(std::string(SuiteNames[SuiteIdx]) +
                         ".recomp_growth_pct",
                     RecompGrowth);
  }

  std::printf("\nPaper reference: 56/18/38 (SunSpider), 37/11/26 (V8),\n"
              "38/14/24 (Kraken); recompilation growth 3.6%% / 4.35%% / "
              "7.58%%.\n");
  std::printf("Expected shape: deoptimizations outnumber successful\n"
              "specializations, yet total compilation growth stays "
              "moderate.\n\n");

  // --- Ablation 1: cache effectiveness (same-args reuse), plus the
  // bailout-reason taxonomy (why deopts happened, not just how many). ---
  std::printf("Ablation: specialization cache reuse under ALL\n");
  std::printf("%-12s %12s %12s %14s %9s\n", "suite", "native-calls",
              "cache-hits", "despecialized", "bailouts");
  uint64_t ReasonTotals[3][NumBailoutReasons] = {};
  for (int SuiteIdx = 0; SuiteIdx != 3; ++SuiteIdx) {
    uint64_t Native = 0, Hits = 0, Despec = 0, Bails = 0;
    for (const Workload &W : suiteWorkloads(SuiteNames[SuiteIdx])) {
      EngineStats S;
      runOnce(W, &Spec, &S);
      Native += S.NativeCalls;
      Hits += S.CacheHits;
      Despec += S.Despecializations;
      Bails += S.Bailouts;
      for (size_t R = 0; R != NumBailoutReasons; ++R)
        ReasonTotals[SuiteIdx][R] += S.BailoutsByReason[R];
    }
    std::printf("%-12s %12llu %12llu %14llu %9llu\n", SuiteNames[SuiteIdx],
                static_cast<unsigned long long>(Native),
                static_cast<unsigned long long>(Hits),
                static_cast<unsigned long long>(Despec),
                static_cast<unsigned long long>(Bails));
  }

  std::printf("\nBailout-reason breakdown under ALL (suite totals)\n");
  std::printf("%-12s", "suite");
  for (size_t R = 1; R != NumBailoutReasons; ++R)
    std::printf(" %18s",
                bailoutReasonName(static_cast<BailoutReason>(R)));
  std::printf("\n");
  for (int SuiteIdx = 0; SuiteIdx != 3; ++SuiteIdx) {
    std::printf("%-12s", SuiteNames[SuiteIdx]);
    for (size_t R = 1; R != NumBailoutReasons; ++R)
      std::printf(" %18llu",
                  static_cast<unsigned long long>(
                      ReasonTotals[SuiteIdx][R]));
    std::printf("\n");
  }
  std::printf("Expected shape: type guards and int-overflow dominate;\n"
              "bounds-check bailouts stay rare because indices are\n"
              "induction variables the guards were built for.\n");

  // --- Ablation 1b: cache depth (the paper's future-work heuristic:
  // "we cache only one binary per function... more experiments are
  // necessary to confirm this hypothesis"). Depth N keeps N specialized
  // binaries keyed by argument set before falling back to generic.
  std::printf("\nAblation: specialization cache depth (suite totals under "
              "ALL)\n");
  std::printf("%-12s %7s %12s %12s %14s %10s\n", "suite", "depth",
              "spec-compiles", "cache-hits", "despecialized", "time");
  for (int SuiteIdx = 0; SuiteIdx != 3; ++SuiteIdx) {
    for (uint32_t Depth : {1u, 2u, 4u}) {
      uint64_t SpecCompiles = 0, Hits = 0, Despec = 0;
      double Seconds = 0.0;
      for (const Workload &W : suiteWorkloads(SuiteNames[SuiteIdx])) {
        Runtime RT;
        Engine E(RT, Spec);
        E.setCacheDepth(Depth);
        Timer T;
        RT.evaluate(W.Source);
        Seconds += T.seconds();
        if (RT.hasError()) {
          std::fprintf(stderr, "%s failed: %s\n", W.Name,
                       RT.errorMessage().c_str());
          return 1;
        }
        SpecCompiles += E.stats().SpecializedCompiles;
        Hits += E.stats().CacheHits;
        Despec += E.stats().Despecializations;
      }
      std::printf("%-12s %7u %12llu %12llu %14llu %8.1fms\n",
                  SuiteNames[SuiteIdx], Depth,
                  static_cast<unsigned long long>(SpecCompiles),
                  static_cast<unsigned long long>(Hits),
                  static_cast<unsigned long long>(Despec),
                  Seconds * 1e3);
    }
  }
  std::printf("Expected shape: deeper caches convert despecializations\n"
              "into extra specialized compiles and cache hits; whether\n"
              "that pays off depends on how polymorphic the suite is.\n");

  // --- Ablation 1c: the tiered specialization ladder (DESIGN.md
  // "Specialization tiers") vs the paper's despecialize-to-generic
  // policy: outcome table plus tier-transition counts per suite. ---
  std::printf("\nAblation: tiered ladder vs paper policy (suite totals "
              "under ALL)\n");
  std::printf("%-12s %-7s %11s %12s %14s %8s %8s %8s\n", "suite", "policy",
              "specialized", "deoptimized", "cache-hits", "dem-v2t",
              "dem-gen", "gen-fb");
  for (int SuiteIdx = 0; SuiteIdx != 3; ++SuiteIdx) {
    for (TierPolicy P : {TierPolicy::Paper, TierPolicy::Tiered}) {
      uint64_t Specialized = 0, Deoptimized = 0, Hits = 0;
      uint64_t DemV2T = 0, DemGen = 0, GenFB = 0;
      for (const Workload &W : suiteWorkloads(SuiteNames[SuiteIdx])) {
        Runtime RT;
        Engine E(RT, Spec);
        E.setTierPolicy(P);
        RT.evaluate(W.Source);
        if (RT.hasError()) {
          std::fprintf(stderr, "%s failed: %s\n", W.Name,
                       RT.errorMessage().c_str());
          return 1;
        }
        Hits += E.stats().CacheHits;
        DemV2T += E.stats().TierDemotionsValueToType;
        DemGen += E.stats().TierDemotionsToGeneric;
        GenFB += E.stats().GenericFallbacks;
        for (const Engine::FunctionReport &R : E.functionReports()) {
          if (!R.WasSpecialized)
            continue;
          ++Specialized;
          if (R.Despecialized)
            ++Deoptimized;
        }
      }
      std::printf("%-12s %-7s %11llu %12llu %14llu %8llu %8llu %8llu\n",
                  SuiteNames[SuiteIdx], tierPolicyName(P),
                  static_cast<unsigned long long>(Specialized),
                  static_cast<unsigned long long>(Deoptimized),
                  static_cast<unsigned long long>(Hits),
                  static_cast<unsigned long long>(DemV2T),
                  static_cast<unsigned long long>(DemGen),
                  static_cast<unsigned long long>(GenFB));
    }
  }
  std::printf("Expected shape: under the ladder a \"deoptimized\"\n"
              "function usually keeps a type-tier binary instead of\n"
              "going generic, so cache hits survive despecialization.\n");

  // --- Ablation 2: the paper's conservative BCE aliasing rule. ---
  std::printf("\nAblation: bounds-check elimination aliasing rule "
              "(PS+BCE, median of %d runs)\n",
              repetitions(5));
  OptConfig StrictBce;
  StrictBce.ParameterSpecialization = true;
  StrictBce.BoundsCheckElim = true;
  OptConfig RelaxedBce = StrictBce;
  RelaxedBce.RelaxedBCEAliasing = true;

  std::vector<const OptConfig *> Configs = {&Base, &StrictBce, &RelaxedBce};
  std::printf("%-12s %12s %12s\n", "suite", "strict", "relaxed");
  for (int SuiteIdx = 0; SuiteIdx != 3; ++SuiteIdx) {
    std::vector<Workload> Works = suiteWorkloads(SuiteNames[SuiteIdx]);
    auto Times = measureMatrix(Works, Configs, repetitions(5));
    std::vector<double> StrictPct, RelaxedPct;
    for (size_t WI = 0; WI != Works.size(); ++WI) {
      StrictPct.push_back(speedupPercent(Times[WI][0], Times[WI][1]));
      RelaxedPct.push_back(speedupPercent(Times[WI][0], Times[WI][2]));
    }
    std::printf("%-12s %11.2f%% %11.2f%%\n", SuiteNames[SuiteIdx],
                arithmeticMean(StrictPct), arithmeticMean(RelaxedPct));
  }
  std::printf("Expected shape: the paper's any-store rule leaves little\n"
              "for BCE (it reported no substantial BCE speedup); the\n"
              "relaxed rule recovers some of it on store-heavy kernels.\n");
  Report.write();
  return 0;
}
