//===- bench/BenchUtil.h - Shared benchmark harness helpers -----*- C++ -*-===//
///
/// \file
/// Timing and reporting helpers shared by the figure-reproduction
/// binaries: interleaved repetition with medians (wall-clock noise on a
/// shared machine dwarfs the effects otherwise), speedup computation and
/// simple table printing.
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_BENCH_BENCHUTIL_H
#define JITVS_BENCH_BENCHUTIL_H

#include "jit/Engine.h"
#include "support/Stats.h"
#include "support/Timer.h"
#include "telemetry/Telemetry.h"
#include "vm/Runtime.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

namespace jitvs::bench {

/// Number of repetitions (override with JITVS_BENCH_REPS). The paper ran
/// each benchmark 100 times; the default here keeps the full table
/// reproduction in the tens of seconds.
inline int repetitions(int Default = 7) {
  if (const char *Env = std::getenv("JITVS_BENCH_REPS"))
    return std::max(1, std::atoi(Env));
  return Default;
}

/// One timed execution of a workload under a config (nullptr = pure
/// interpreter). Returns seconds; also surfaces engine stats if asked.
inline double runOnce(const Workload &W, const OptConfig *Config,
                      EngineStats *StatsOut = nullptr) {
  Runtime RT;
  std::unique_ptr<Engine> E;
  if (Config)
    E = std::make_unique<Engine>(RT, *Config);
  Timer T;
  RT.evaluate(W.Source);
  double Seconds = T.seconds();
  if (telemetryEnabled(TelBench)) {
    // One [bench] span per workload run: with JITVS_TRACE set, a bench
    // binary's Chrome trace groups every compile/pass/bailout under the
    // run that caused it.
    TelemetryEvent E;
    E.Kind = TelemetryEventKind::BenchRun;
    E.setFunc(W.Name);
    E.setDetail(Config ? Config->describe() : "interp");
    E.DurNs = static_cast<uint64_t>(Seconds * 1e9);
    telemetry().record(E);
  }
  if (RT.hasError()) {
    std::fprintf(stderr, "workload %s failed: %s\n", W.Name,
                 RT.errorMessage().c_str());
    std::exit(1);
  }
  if (StatsOut && E)
    *StatsOut = E->stats();
  return Seconds;
}

/// Interleaved measurement: for every (workload, config) cell, Reps
/// samples taken round-robin, reduced to the median. Returns
/// Result[workload][config] in seconds.
inline std::vector<std::vector<double>>
measureMatrix(const std::vector<Workload> &Works,
              const std::vector<const OptConfig *> &Configs, int Reps) {
  std::vector<std::vector<std::vector<double>>> Samples(
      Works.size(),
      std::vector<std::vector<double>>(Configs.size()));
  for (int R = 0; R < Reps; ++R)
    for (size_t WI = 0; WI != Works.size(); ++WI)
      for (size_t CI = 0; CI != Configs.size(); ++CI)
        Samples[WI][CI].push_back(runOnce(Works[WI], Configs[CI]));

  std::vector<std::vector<double>> Out(
      Works.size(), std::vector<double>(Configs.size(), 0.0));
  for (size_t WI = 0; WI != Works.size(); ++WI)
    for (size_t CI = 0; CI != Configs.size(); ++CI)
      Out[WI][CI] = median(Samples[WI][CI]);
  return Out;
}

/// Speedup in percent of \p Optimized relative to \p Baseline (positive
/// means faster, as in Figure 9).
inline double speedupPercent(double Baseline, double Optimized) {
  if (Optimized <= 0.0)
    return 0.0;
  return (Baseline / Optimized - 1.0) * 100.0;
}

inline void printRule(size_t Width) {
  for (size_t I = 0; I != Width; ++I)
    std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

} // namespace jitvs::bench

#endif // JITVS_BENCH_BENCHUTIL_H
