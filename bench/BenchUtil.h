//===- bench/BenchUtil.h - Shared benchmark harness helpers -----*- C++ -*-===//
///
/// \file
/// Timing and reporting helpers shared by the figure-reproduction
/// binaries: interleaved repetition with medians (wall-clock noise on a
/// shared machine dwarfs the effects otherwise), speedup computation and
/// simple table printing.
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_BENCH_BENCHUTIL_H
#define JITVS_BENCH_BENCHUTIL_H

#include "jit/Engine.h"
#include "support/Json.h"
#include "support/Stats.h"
#include "support/Timer.h"
#include "telemetry/Metrics.h"
#include "telemetry/Telemetry.h"
#include "vm/Runtime.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

namespace jitvs::bench {

/// Number of repetitions (override with JITVS_BENCH_REPS). The paper ran
/// each benchmark 100 times; the default here keeps the full table
/// reproduction in the tens of seconds.
inline int repetitions(int Default = 7) {
  if (const char *Env = std::getenv("JITVS_BENCH_REPS"))
    return std::max(1, std::atoi(Env));
  return Default;
}

/// One timed execution of a workload under a config (nullptr = pure
/// interpreter). Returns seconds; also surfaces engine stats if asked.
inline double runOnce(const Workload &W, const OptConfig *Config,
                      EngineStats *StatsOut = nullptr) {
  Runtime RT;
  std::unique_ptr<Engine> E;
  if (Config)
    E = std::make_unique<Engine>(RT, *Config);
  Timer T;
  RT.evaluate(W.Source);
  double Seconds = T.seconds();
  if (telemetryEnabled(TelBench)) {
    // One [bench] span per workload run: with JITVS_TRACE set, a bench
    // binary's Chrome trace groups every compile/pass/bailout under the
    // run that caused it.
    TelemetryEvent E;
    E.Kind = TelemetryEventKind::BenchRun;
    E.setFunc(W.Name);
    E.setDetail(Config ? Config->describe() : "interp");
    E.DurNs = static_cast<uint64_t>(Seconds * 1e9);
    telemetry().record(E);
  }
  if (RT.hasError()) {
    std::fprintf(stderr, "workload %s failed: %s\n", W.Name,
                 RT.errorMessage().c_str());
    std::exit(1);
  }
  if (StatsOut && E)
    *StatsOut = E->stats();
  return Seconds;
}

/// Interleaved measurement: for every (workload, config) cell, Reps
/// samples taken round-robin, reduced to the median. Returns
/// Result[workload][config] in seconds.
inline std::vector<std::vector<double>>
measureMatrix(const std::vector<Workload> &Works,
              const std::vector<const OptConfig *> &Configs, int Reps) {
  std::vector<std::vector<std::vector<double>>> Samples(
      Works.size(),
      std::vector<std::vector<double>>(Configs.size()));
  for (int R = 0; R < Reps; ++R)
    for (size_t WI = 0; WI != Works.size(); ++WI)
      for (size_t CI = 0; CI != Configs.size(); ++CI)
        Samples[WI][CI].push_back(runOnce(Works[WI], Configs[CI]));

  std::vector<std::vector<double>> Out(
      Works.size(), std::vector<double>(Configs.size(), 0.0));
  for (size_t WI = 0; WI != Works.size(); ++WI)
    for (size_t CI = 0; CI != Configs.size(); ++CI)
      Out[WI][CI] = median(Samples[WI][CI]);
  return Out;
}

/// Speedup in percent of \p Optimized relative to \p Baseline (positive
/// means faster, as in Figure 9).
inline double speedupPercent(double Baseline, double Optimized) {
  if (Optimized <= 0.0)
    return 0.0;
  return (Baseline / Optimized - 1.0) * 100.0;
}

inline void printRule(size_t Width) {
  for (size_t I = 0; I != Width; ++I)
    std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

/// Machine-readable result sink every bench binary writes alongside its
/// human-readable table. One BenchReport per binary; rows are the cells
/// of whatever matrix the bench measures ((workload, config) -> value),
/// metrics are its scalar summaries (geomeans, totals). write() emits
/// schema-versioned JSON to BENCH_<name>.json — in the current directory
/// or under $JITVS_BENCH_OUT when set — so CI can archive and diff runs
/// without scraping stdout.
class BenchReport {
public:
  /// Schema identifier stamped into every file (bench_diff.py and the
  /// BenchJsonTest validate against it).
  static constexpr const char *Schema = "jitvs-bench-v1";

  BenchReport(std::string BenchName, int Reps)
      : Name(std::move(BenchName)), Reps(Reps) {}

  /// Free-form provenance (tier policy, dispatch mode, thresholds...).
  void setMeta(const std::string &Key, const std::string &V) {
    Meta.emplace_back(Key, V);
  }

  /// One measured cell. \p Unit is conventionally "seconds" for wall
  /// time (bench_diff.py compares only seconds rows); use other units
  /// ("instructions", "ratio", "count") for non-time metrics. \p Samples
  /// optionally preserves the raw repetitions behind a median.
  void addRow(const std::string &Workload, const std::string &Config,
              double V, const std::string &Unit,
              const std::vector<double> *Samples = nullptr) {
    Rows.push_back({Workload, Config, V, Unit,
                    Samples ? *Samples : std::vector<double>()});
  }

  /// A whole-run scalar summary (e.g. "geomean_speedup_pct").
  void addMetric(const std::string &MetricName, double V) {
    Metrics.emplace_back(MetricName, V);
  }

  /// Writes BENCH_<name>.json. \returns false (with a stderr note) on
  /// I/O failure; benches warn but do not fail on it.
  bool write() const {
    std::string Dir = ".";
    if (const char *Env = std::getenv("JITVS_BENCH_OUT"))
      if (*Env)
        Dir = Env;
    std::string Path = Dir + "/BENCH_" + Name + ".json";
    std::ofstream OS(Path);
    if (!OS) {
      std::fprintf(stderr, "bench: cannot write %s\n", Path.c_str());
      return false;
    }
    writeJson(OS);
    OS.flush();
    if (!OS) {
      std::fprintf(stderr, "bench: error writing %s\n", Path.c_str());
      return false;
    }
    std::fprintf(stderr, "bench: wrote %s\n", Path.c_str());
    return true;
  }

  void writeJson(std::ostream &OS) const {
    OS.precision(12);
    OS << "{\"schema\":\"" << Schema << "\",\"bench\":";
    json::writeString(OS, Name);
    OS << ",\"reps\":" << Reps;
    OS << ",\"meta\":{";
    for (size_t I = 0; I != Meta.size(); ++I) {
      if (I)
        OS << ',';
      json::writeString(OS, Meta[I].first);
      OS << ':';
      json::writeString(OS, Meta[I].second);
    }
    OS << "},\"rows\":[";
    for (size_t I = 0; I != Rows.size(); ++I) {
      const Row &R = Rows[I];
      if (I)
        OS << ',';
      OS << "{\"workload\":";
      json::writeString(OS, R.Workload);
      OS << ",\"config\":";
      json::writeString(OS, R.Config);
      OS << ",\"value\":" << R.V << ",\"unit\":";
      json::writeString(OS, R.Unit);
      if (!R.Samples.empty()) {
        OS << ",\"samples\":[";
        for (size_t S = 0; S != R.Samples.size(); ++S) {
          if (S)
            OS << ',';
          OS << R.Samples[S];
        }
        OS << ']';
      }
      OS << '}';
    }
    OS << "],\"metrics\":{";
    for (size_t I = 0; I != Metrics.size(); ++I) {
      if (I)
        OS << ',';
      json::writeString(OS, Metrics[I].first);
      OS << ':' << Metrics[I].second;
    }
    OS << '}';
    // Attach the engine-wide metrics snapshot when the run collected
    // one, so a single artifact carries both the measurements and the
    // phase/function attribution explaining them.
    if (metricsEnabled()) {
      OS << ",\"engineMetrics\":";
      metrics().writeJson(OS);
    }
    OS << "}\n";
  }

private:
  struct Row {
    std::string Workload;
    std::string Config;
    double V;
    std::string Unit;
    std::vector<double> Samples;
  };

  std::string Name;
  int Reps;
  std::vector<std::pair<std::string, std::string>> Meta;
  std::vector<Row> Rows;
  std::vector<std::pair<std::string, double>> Metrics;
};

} // namespace jitvs::bench

#endif // JITVS_BENCH_BENCHUTIL_H
