//===- bench/bench_fig10_code_size.cpp - Figure 10 reproduction -----------===//
///
/// \file
/// Regenerates Figure 10: the size of the native code generated per
/// function, with and without the paper's optimizations. Like the paper,
/// the smallest version each compilation mode produced for a function is
/// counted (recompilations produce several versions), functions are
/// ordered by their baseline size, and the average per-function
/// reduction is reported per suite (paper: SunSpider 16.72%, V8 18.84%,
/// Kraken 15.94%).
///
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"

#include <algorithm>
#include <map>

using namespace jitvs;
using namespace jitvs::bench;

namespace {

/// Per-function code sizes: the paper's static metric (instructions
/// emitted) and the post-fusion dispatched count. Macro-op fusion keeps
/// Code.size() intact (fused pairs retain both slots), so the first
/// column stays comparable with Figure 10 whether or not fusion ran.
struct SizePair {
  size_t Static = SIZE_MAX;     ///< Pre-fusion: the Figure 10 metric.
  size_t Dispatched = SIZE_MAX; ///< Post-fusion dispatched instructions.
};

/// Per-function smallest code size produced while running \p W.
std::map<std::string, SizePair> codeSizes(const Workload &W,
                                          const OptConfig &Config) {
  Runtime RT;
  Engine E(RT, Config);
  RT.evaluate(W.Source);
  std::map<std::string, SizePair> Sizes;
  for (const Engine::FunctionReport &R : E.functionReports()) {
    if (R.MinCodeSize == SIZE_MAX)
      continue;
    std::string Key = std::string(W.Name) + "/" + R.Name;
    SizePair &P = Sizes[Key];
    P.Static = std::min(P.Static, R.MinCodeSize);
    P.Dispatched = std::min(P.Dispatched, R.MinCodeSizePostFusion);
  }
  return Sizes;
}

} // namespace

int main() {
  OptConfig Base = OptConfig::baseline();
  OptConfig Specialized = OptConfig::all();

  std::printf("Figure 10: native code size per function (instructions), "
              "BASE vs SPECIALIZED\n");
  std::printf("Static counts are the paper's metric (fusion-invariant); "
              "'disp' is the\npost-fusion dispatched count for the "
              "specialized binary.\n\n");

  BenchReport Report("fig10_code_size", 1);
  for (int SuiteIdx = 0; SuiteIdx != 3; ++SuiteIdx) {
    std::map<std::string, SizePair> BaseSizes, SpecSizes;
    for (const Workload &W : suiteWorkloads(SuiteNames[SuiteIdx])) {
      for (auto &[K, V] : codeSizes(W, Base))
        BaseSizes[K] = V;
      for (auto &[K, V] : codeSizes(W, Specialized))
        SpecSizes[K] = V;
    }

    // Functions compiled under both modes, ordered by baseline size.
    struct Row {
      std::string Name;
      size_t Base;
      size_t Spec;
      size_t SpecDispatched;
    };
    std::vector<Row> Rows;
    for (auto &[K, BaseSize] : BaseSizes) {
      auto It = SpecSizes.find(K);
      if (It != SpecSizes.end())
        Rows.push_back(
            {K, BaseSize.Static, It->second.Static, It->second.Dispatched});
    }
    std::sort(Rows.begin(), Rows.end(),
              [](const Row &A, const Row &B) { return A.Base < B.Base; });

    double ReductionSum = 0.0;
    std::printf("== %s: %zu compiled functions ==\n",
                SuiteTitles[SuiteIdx], Rows.size());
    std::printf("  %-44s %8s %12s %9s %8s\n", "function", "base",
                "specialized", "change", "disp");
    for (const Row &R : Rows) {
      double Change =
          R.Base ? (1.0 - static_cast<double>(R.Spec) / R.Base) * 100.0
                 : 0.0;
      ReductionSum += Change;
      std::printf("  %-44s %8zu %12zu %8.2f%% %8zu\n", R.Name.c_str(),
                  R.Base, R.Spec, Change, R.SpecDispatched);
      Report.addRow(R.Name, "base", static_cast<double>(R.Base),
                    "instructions");
      Report.addRow(R.Name, "specialized", static_cast<double>(R.Spec),
                    "instructions");
    }
    double AvgReduction = Rows.empty() ? 0.0 : ReductionSum / Rows.size();
    std::printf("  Average reduction (static metric): %.2f%%\n\n",
                AvgReduction);
    Report.addMetric(std::string(SuiteNames[SuiteIdx]) +
                         ".avg_reduction_pct",
                     AvgReduction);
  }

  std::printf("Paper reference: average reductions of 16.72%% (SunSpider),\n"
              "18.84%% (V8) and 15.94%% (Kraken); double-digit shrinkage\n"
              "is the expected shape.\n");
  Report.write();
  return 0;
}
