//===- bench/bench_fig10_code_size.cpp - Figure 10 reproduction -----------===//
///
/// \file
/// Regenerates Figure 10: the size of the native code generated per
/// function, with and without the paper's optimizations. Like the paper,
/// the smallest version each compilation mode produced for a function is
/// counted (recompilations produce several versions), functions are
/// ordered by their baseline size, and the average per-function
/// reduction is reported per suite (paper: SunSpider 16.72%, V8 18.84%,
/// Kraken 15.94%).
///
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"

#include <algorithm>
#include <map>

using namespace jitvs;
using namespace jitvs::bench;

namespace {

/// Per-function smallest code size produced while running \p W.
std::map<std::string, size_t> codeSizes(const Workload &W,
                                        const OptConfig &Config) {
  Runtime RT;
  Engine E(RT, Config);
  RT.evaluate(W.Source);
  std::map<std::string, size_t> Sizes;
  for (const Engine::FunctionReport &R : E.functionReports()) {
    if (R.MinCodeSize == SIZE_MAX)
      continue;
    std::string Key = std::string(W.Name) + "/" + R.Name;
    auto It = Sizes.find(Key);
    if (It == Sizes.end() || R.MinCodeSize < It->second)
      Sizes[Key] = R.MinCodeSize;
  }
  return Sizes;
}

} // namespace

int main() {
  OptConfig Base = OptConfig::baseline();
  OptConfig Specialized = OptConfig::all();

  std::printf("Figure 10: native code size per function (instructions), "
              "BASE vs SPECIALIZED\n\n");

  for (int SuiteIdx = 0; SuiteIdx != 3; ++SuiteIdx) {
    std::map<std::string, size_t> BaseSizes, SpecSizes;
    for (const Workload &W : suiteWorkloads(SuiteNames[SuiteIdx])) {
      for (auto &[K, V] : codeSizes(W, Base))
        BaseSizes[K] = V;
      for (auto &[K, V] : codeSizes(W, Specialized))
        SpecSizes[K] = V;
    }

    // Functions compiled under both modes, ordered by baseline size.
    struct Row {
      std::string Name;
      size_t Base;
      size_t Spec;
    };
    std::vector<Row> Rows;
    for (auto &[K, BaseSize] : BaseSizes) {
      auto It = SpecSizes.find(K);
      if (It != SpecSizes.end())
        Rows.push_back({K, BaseSize, It->second});
    }
    std::sort(Rows.begin(), Rows.end(),
              [](const Row &A, const Row &B) { return A.Base < B.Base; });

    double ReductionSum = 0.0;
    std::printf("== %s: %zu compiled functions ==\n",
                SuiteTitles[SuiteIdx], Rows.size());
    std::printf("  %-44s %8s %12s %9s\n", "function", "base", "specialized",
                "change");
    for (const Row &R : Rows) {
      double Change =
          R.Base ? (1.0 - static_cast<double>(R.Spec) / R.Base) * 100.0
                 : 0.0;
      ReductionSum += Change;
      std::printf("  %-44s %8zu %12zu %8.2f%%\n", R.Name.c_str(), R.Base,
                  R.Spec, Change);
    }
    double AvgReduction = Rows.empty() ? 0.0 : ReductionSum / Rows.size();
    std::printf("  Average reduction: %.2f%%\n\n", AvgReduction);
  }

  std::printf("Paper reference: average reductions of 16.72%% (SunSpider),\n"
              "18.84%% (V8) and 15.94%% (Kraken); double-digit shrinkage\n"
              "is the expected shape.\n");
  return 0;
}
