//===- bench/bench_micro_pipeline.cpp - google-benchmark micro benches ----===//
///
/// \file
/// Micro-benchmarks of the compiler pipeline and the execution tiers:
///   - interpreter vs native-code execution of a hot kernel;
///   - per-pass costs (build, GVN, constant propagation, loop inversion,
///     DCE, bounds-check elimination, code generation);
///   - the paper's "zero overhead by construction" claim for parameter
///     specialization: building a specialized graph costs no more than
///     building a generic one (Section 4, compilation overhead).
///
//===----------------------------------------------------------------------===//

#include "jit/Engine.h"
#include "lir/Codegen.h"
#include "mir/MIRBuilder.h"
#include "passes/Passes.h"
#include "vm/Runtime.h"

#include <benchmark/benchmark.h>

using namespace jitvs;

namespace {

const char *KernelSource =
    "function kernel(a, n) {"
    "  var s = 0;"
    "  for (var i = 0; i < n; i++)"
    "    s = (s + a[i % 16] * i) % 999983;"
    "  return s;"
    "}"
    "var arr = new Array(16);"
    "for (var i = 0; i < 16; i++) arr[i] = i * 3 + 1;";

/// Shared fixture: runtime with the kernel loaded and warmed up.
struct KernelFixture {
  KernelFixture() {
    RT.load(KernelSource);
    RT.run();
    Kernel = nullptr;
    for (size_t I = 0; I != RT.program()->numFunctions(); ++I)
      if (RT.program()->function(static_cast<uint32_t>(I))->Name == "kernel")
        Kernel = RT.program()->function(static_cast<uint32_t>(I));
    // Warm up type feedback.
    Arr = RT.global(RT.program()->globalSlot("arr"));
    for (int I = 0; I < 4; ++I)
      RT.callGlobal("kernel", {Arr, Value::int32(64)});
  }

  Runtime RT;
  FunctionInfo *Kernel = nullptr;
  Value Arr;
};

KernelFixture &fixture() {
  static KernelFixture F;
  return F;
}

void BM_InterpreterKernel(benchmark::State &State) {
  KernelFixture &F = fixture();
  for (auto _ : State) {
    Value R = F.RT.callGlobal("kernel", {F.Arr, Value::int32(512)});
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_InterpreterKernel);

void BM_NativeKernelGeneric(benchmark::State &State) {
  Runtime RT;
  OptConfig C = OptConfig::baseline();
  Engine E(RT, C);
  E.setCallThreshold(1);
  RT.load(KernelSource);
  RT.run();
  Value Arr = RT.global(RT.program()->globalSlot("arr"));
  for (int I = 0; I < 4; ++I)
    RT.callGlobal("kernel", {Arr, Value::int32(64)});
  for (auto _ : State) {
    Value R = RT.callGlobal("kernel", {Arr, Value::int32(512)});
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_NativeKernelGeneric);

void BM_NativeKernelSpecialized(benchmark::State &State) {
  Runtime RT;
  Engine E(RT, OptConfig::all());
  E.setCallThreshold(1);
  RT.load(KernelSource);
  RT.run();
  Value Arr = RT.global(RT.program()->globalSlot("arr"));
  for (int I = 0; I < 4; ++I)
    RT.callGlobal("kernel", {Arr, Value::int32(512)});
  for (auto _ : State) {
    Value R = RT.callGlobal("kernel", {Arr, Value::int32(512)});
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_NativeKernelSpecialized);

// --- Pipeline stage costs ---

void BM_BuildMIRGeneric(benchmark::State &State) {
  KernelFixture &F = fixture();
  for (auto _ : State) {
    BuildOptions Opts;
    auto G = buildMIR(F.Kernel, Opts);
    benchmark::DoNotOptimize(G->numInstructions());
  }
}
BENCHMARK(BM_BuildMIRGeneric);

void BM_BuildMIRSpecialized(benchmark::State &State) {
  KernelFixture &F = fixture();
  for (auto _ : State) {
    BuildOptions Opts;
    Opts.SpecializedArgs =
        std::vector<Value>{F.Arr, Value::int32(512)};
    auto G = buildMIR(F.Kernel, Opts);
    benchmark::DoNotOptimize(G->numInstructions());
  }
}
BENCHMARK(BM_BuildMIRSpecialized);

template <void (*Pass)(MIRGraph &)> void BM_Pass(benchmark::State &State) {
  KernelFixture &F = fixture();
  for (auto _ : State) {
    State.PauseTiming();
    BuildOptions Opts;
    Opts.SpecializedArgs =
        std::vector<Value>{F.Arr, Value::int32(512)};
    auto G = buildMIR(F.Kernel, Opts);
    State.ResumeTiming();
    Pass(*G);
    benchmark::DoNotOptimize(G->numInstructions());
  }
}

void runCP(MIRGraph &G) { runConstantPropagation(G, fixture().RT); }
void runDCEPass(MIRGraph &G) { runDeadCodeElimination(G, fixture().RT); }
void runBCE(MIRGraph &G) { runBoundsCheckElimination(G, false); }

BENCHMARK(BM_Pass<runGVN>)->Name("BM_PassGVN");
BENCHMARK(BM_Pass<runCP>)->Name("BM_PassConstantPropagation");
BENCHMARK(BM_Pass<runLoopInversion>)->Name("BM_PassLoopInversion");
BENCHMARK(BM_Pass<runDCEPass>)->Name("BM_PassDCE");
BENCHMARK(BM_Pass<runBCE>)->Name("BM_PassBoundsCheckElim");

void BM_CodeGeneration(benchmark::State &State) {
  KernelFixture &F = fixture();
  for (auto _ : State) {
    State.PauseTiming();
    BuildOptions Opts;
    auto G = buildMIR(F.Kernel, Opts);
    runGVN(*G);
    State.ResumeTiming();
    auto Code = generateCode(*G);
    benchmark::DoNotOptimize(Code->sizeInInstructions());
  }
}
BENCHMARK(BM_CodeGeneration);

void BM_FullPipelineAll(benchmark::State &State) {
  KernelFixture &F = fixture();
  OptConfig C = OptConfig::all();
  for (auto _ : State) {
    BuildOptions Opts;
    Opts.SpecializedArgs =
        std::vector<Value>{F.Arr, Value::int32(512)};
    auto G = buildMIR(F.Kernel, Opts);
    runClosureInlining(*G, F.RT, C);
    runOptimizationPipeline(*G, F.RT, C);
    auto Code = generateCode(*G);
    benchmark::DoNotOptimize(Code->sizeInInstructions());
  }
}
BENCHMARK(BM_FullPipelineAll);

void BM_ParseAndEmit(benchmark::State &State) {
  for (auto _ : State) {
    Runtime RT;
    bool Ok = RT.load(KernelSource);
    benchmark::DoNotOptimize(Ok);
  }
}
BENCHMARK(BM_ParseAndEmit);

void BM_GCCollection(benchmark::State &State) {
  Runtime RT;
  RT.evaluate("var keep = [];"
              "for (var i = 0; i < 3000; i++) keep.push({k: 'v' + i});");
  for (auto _ : State) {
    RT.heap().collect();
    benchmark::DoNotOptimize(RT.heap().objectCount());
  }
}
BENCHMARK(BM_GCCollection);

} // namespace

#include "../bench/BenchUtil.h"

namespace {

/// Console output as usual, plus a capture of every per-iteration result
/// so the custom main below can emit BENCH_micro_pipeline.json (the
/// BENCHMARK_MAIN macro leaves no hook for that).
class CapturingReporter : public benchmark::ConsoleReporter {
public:
  struct Result {
    std::string Name;
    double SecondsPerIter;
  };
  std::vector<Result> Results;

  void ReportRuns(const std::vector<Run> &Reports) override {
    for (const Run &R : Reports)
      if (R.run_type == Run::RT_Iteration && !R.error_occurred &&
          R.iterations > 0)
        Results.push_back({R.benchmark_name(),
                           R.real_accumulated_time /
                               static_cast<double>(R.iterations)});
    ConsoleReporter::ReportRuns(Reports);
  }
};

} // namespace

int main(int argc, char **argv) {
  char Arg0Default[] = "benchmark";
  char *ArgsDefault = Arg0Default;
  if (!argv) {
    argc = 1;
    argv = &ArgsDefault;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  CapturingReporter Reporter;
  benchmark::RunSpecifiedBenchmarks(&Reporter);
  benchmark::Shutdown();

  jitvs::bench::BenchReport Report("micro_pipeline", 1);
  for (const CapturingReporter::Result &R : Reporter.Results)
    Report.addRow(R.Name, "default", R.SecondsPerIter, "seconds");
  Report.write();
  return 0;
}
