//===- bench/bench_tier_policy.cpp - The specialization-tier ladder -------===//
///
/// \file
/// Quantifies the middle rung of the value -> type -> generic ladder
/// (DESIGN.md "Specialization tiers"):
///
///  1. Static cost: for every hot function of each suite model, compile
///     three binaries from the same warm profile — generic, type-tier
///     (tag guards only) and value-tier (the paper's exact-value
///     specialization) — and compare instruction counts and guard
///     counts. The type tier should sit strictly between the other two
///     on both axes.
///  2. Dynamic behavior: run each suite under the paper policy and the
///     tiered policy, reporting wall-clock, despecializations, cache-hit
///     tier split and per-suite tier-transition counts.
///
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"

#include "mir/Tier.h"
#include "support/Timer.h"
#include "vm/GC.h"

#include <map>

using namespace jitvs;
using namespace jitvs::bench;

namespace {

/// Captures each function's call count and last-seen arguments during a
/// pure-interpreter profiling run. The captured values are GC roots: the
/// later compiles can allocate (string folding) and collect.
class ArgCapture final : public CallObserver, public RootSource {
public:
  struct Rec {
    uint64_t Calls = 0;
    std::vector<Value> Args;
  };

  explicit ArgCapture(Heap &H) : H(H) { H.addRootSource(this); }
  ~ArgCapture() override { H.removeRootSource(this); }

  void recordCall(FunctionInfo *Callee, const Value *Args,
                  size_t NumArgs) override {
    Rec &R = Funcs[Callee];
    ++R.Calls;
    R.Args.assign(Args, Args + NumArgs);
  }

  void traceRoots(GCVisitor &Visitor) override {
    for (auto &[Info, R] : Funcs)
      for (Value &V : R.Args)
        Visitor.visit(V);
  }

  std::map<FunctionInfo *, Rec> Funcs;

private:
  Heap &H;
};

} // namespace

int main() {
  OptConfig Spec = OptConfig::all();

  // --- Part 1: static cost of each tier, per suite. ---
  std::printf("Tier ladder, static cost per suite (hot functions, same "
              "warm profile)\n\n");
  std::printf("%-12s %6s | %9s %9s %9s | %8s %8s %8s\n", "suite", "funcs",
              "gen-instr", "type-instr", "val-instr", "gen-grd",
              "type-grd", "val-grd");

  for (int SuiteIdx = 0; SuiteIdx != 3; ++SuiteIdx) {
    uint64_t Instr[3] = {}, Guards[3] = {};
    uint64_t FuncsCompiled = 0;
    for (const Workload &W : suiteWorkloads(SuiteNames[SuiteIdx])) {
      Runtime RT;
      ArgCapture Cap(RT.heap());
      RT.setCallObserver(&Cap);
      RT.evaluate(W.Source);
      RT.setCallObserver(nullptr);
      if (RT.hasError()) {
        std::fprintf(stderr, "%s failed: %s\n", W.Name,
                     RT.errorMessage().c_str());
        return 1;
      }
      Engine E(RT, Spec);
      for (auto &[Info, R] : Cap.Funcs) {
        if (R.Calls < 8 || R.Args.empty())
          continue;
        NativeCode *Gen = E.compileNow(Info, nullptr);
        std::vector<ParamTier> TypeTiers(R.Args.size(), ParamTier::Type);
        NativeCode *Typ = E.compileNow(Info, &R.Args, &TypeTiers);
        NativeCode *Val = E.compileNow(Info, &R.Args);
        if (!Gen || !Typ || !Val)
          continue;
        Instr[0] += Gen->sizeInInstructions();
        Instr[1] += Typ->sizeInInstructions();
        Instr[2] += Val->sizeInInstructions();
        Guards[0] += Gen->guardCount();
        Guards[1] += Typ->guardCount();
        Guards[2] += Val->guardCount();
        ++FuncsCompiled;
      }
    }
    std::printf("%-12s %6llu | %9llu %9llu %9llu | %8llu %8llu %8llu\n",
                SuiteNames[SuiteIdx],
                static_cast<unsigned long long>(FuncsCompiled),
                static_cast<unsigned long long>(Instr[0]),
                static_cast<unsigned long long>(Instr[1]),
                static_cast<unsigned long long>(Instr[2]),
                static_cast<unsigned long long>(Guards[0]),
                static_cast<unsigned long long>(Guards[1]),
                static_cast<unsigned long long>(Guards[2]));
    bool InstrOrdered = Instr[2] < Instr[1] && Instr[1] < Instr[0];
    bool GuardOrdered = Guards[2] < Guards[1] && Guards[1] < Guards[0];
    std::printf("             ordering value < type < generic: "
                "instructions %s, guards %s\n",
                InstrOrdered ? "yes" : "NO",
                GuardOrdered ? "yes" : "NO");
  }
  std::printf("\nExpected shape: the type tier's dispatch-validated tags\n"
              "drop the per-use unbox guards generic code keeps, but it\n"
              "cannot fold the computations the value tier turns into\n"
              "constants — so it lands strictly between the two on both\n"
              "axes.\n");

  // --- Part 2: dynamic behavior, paper policy vs tiered ladder. ---
  int Reps = repetitions(5);
  BenchReport Report("tier_policy", Reps);
  std::printf("\nDynamic policy comparison (suite totals under ALL, "
              "median of %d runs)\n\n", Reps);
  std::printf("%-12s %-7s %9s %8s %10s %10s %8s %8s %8s\n", "suite",
              "policy", "time", "despec", "hits-val", "hits-type",
              "dem-v2t", "dem-gen", "gen-fb");

  for (int SuiteIdx = 0; SuiteIdx != 3; ++SuiteIdx) {
    std::vector<Workload> Works = suiteWorkloads(SuiteNames[SuiteIdx]);
    for (TierPolicy P : {TierPolicy::Paper, TierPolicy::Tiered}) {
      std::vector<double> Times;
      uint64_t Despec = 0, HitsVal = 0, HitsType = 0;
      uint64_t DemV2T = 0, DemGen = 0, GenFB = 0;
      for (int Rep = 0; Rep != Reps; ++Rep) {
        double Seconds = 0.0;
        Despec = HitsVal = HitsType = DemV2T = DemGen = GenFB = 0;
        for (const Workload &W : Works) {
          Runtime RT;
          Engine E(RT, Spec);
          E.setTierPolicy(P);
          Timer T;
          RT.evaluate(W.Source);
          Seconds += T.seconds();
          if (RT.hasError()) {
            std::fprintf(stderr, "%s failed: %s\n", W.Name,
                         RT.errorMessage().c_str());
            return 1;
          }
          Despec += E.stats().Despecializations;
          HitsVal += E.stats().ValueTierHits;
          HitsType += E.stats().TypeTierHits;
          DemV2T += E.stats().TierDemotionsValueToType;
          DemGen += E.stats().TierDemotionsToGeneric;
          GenFB += E.stats().GenericFallbacks;
        }
        Times.push_back(Seconds);
      }
      Report.addRow(SuiteNames[SuiteIdx], tierPolicyName(P), median(Times),
                    "seconds", &Times);
      Report.addRow(SuiteNames[SuiteIdx],
                    std::string(tierPolicyName(P)) + "/despec",
                    static_cast<double>(Despec), "count");
      std::printf("%-12s %-7s %7.1fms %8llu %10llu %10llu %8llu %8llu "
                  "%8llu\n",
                  SuiteNames[SuiteIdx], tierPolicyName(P),
                  median(Times) * 1e3,
                  static_cast<unsigned long long>(Despec),
                  static_cast<unsigned long long>(HitsVal),
                  static_cast<unsigned long long>(HitsType),
                  static_cast<unsigned long long>(DemV2T),
                  static_cast<unsigned long long>(DemGen),
                  static_cast<unsigned long long>(GenFB));
    }
  }
  std::printf("\nExpected shape: the tiered ladder converts part of the\n"
              "paper's despecialize-to-generic events into value->type\n"
              "demotions whose binaries keep producing type-tier cache\n"
              "hits; generic fallbacks (and thus NeverSpecialize) become\n"
              "rarer than under the paper policy.\n");
  Report.write();
  return 0;
}
