//===- tests/WorkloadsTest.cpp - Suite workloads run identically ----------===//
///
/// \file
/// Every benchmark workload must produce the same checksummed output
/// under the plain interpreter and under every Figure-9 optimization
/// configuration. This is the property the whole evaluation rests on.
///
//===----------------------------------------------------------------------===//

#include "jit/Engine.h"
#include "vm/Runtime.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace jitvs;

namespace {

std::string interpretOutput(const Workload &W) {
  Runtime RT;
  RT.evaluate(W.Source);
  EXPECT_FALSE(RT.hasError()) << W.Name << ": " << RT.errorMessage();
  return RT.output();
}

class WorkloadDifferential
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(WorkloadDifferential, MatchesInterpreter) {
  auto [WorkIdx, CfgIdx] = GetParam();
  const Workload &W = allWorkloads()[WorkIdx];
  std::vector<NamedConfig> Configs = figure9Configs();
  Configs.insert(Configs.begin(), {"baseline", OptConfig::baseline()});
  OptConfig AllOce = OptConfig::all();
  AllOce.OverflowCheckElim = true;
  Configs.push_back({"ALL_OCE", AllOce});
  const NamedConfig &C = Configs[CfgIdx];

  std::string Expected = interpretOutput(W);

  Runtime RT;
  Engine E(RT, C.Config);
  RT.evaluate(W.Source);
  ASSERT_FALSE(RT.hasError())
      << W.Name << " under " << C.Name << ": " << RT.errorMessage();
  EXPECT_EQ(Expected, RT.output()) << W.Name << " under " << C.Name;
}

std::string workloadName(
    const ::testing::TestParamInfo<std::tuple<size_t, size_t>> &Info) {
  auto [WorkIdx, CfgIdx] = Info.param;
  std::vector<NamedConfig> Configs = figure9Configs();
  Configs.insert(Configs.begin(), {"baseline", OptConfig::baseline()});
  OptConfig AllOce = OptConfig::all();
  AllOce.OverflowCheckElim = true;
  Configs.push_back({"ALL_OCE", AllOce});
  std::string Name = allWorkloads()[WorkIdx].Name;
  Name += "_";
  Name += Configs[CfgIdx].Name;
  for (char &C : Name)
    if (C == '-' || C == '+')
      C = '_';
  return Name;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadDifferential,
    ::testing::Combine(
        ::testing::Range<size_t>(0, 23), // == allWorkloads().size()
        ::testing::Range<size_t>(0, 12)),
    workloadName);

TEST(Workloads, RegistryComplete) {
  EXPECT_EQ(allWorkloads().size(), 23u);
  EXPECT_EQ(suiteWorkloads("sunspider").size(), 11u);
  EXPECT_EQ(suiteWorkloads("v8").size(), 6u);
  EXPECT_EQ(suiteWorkloads("kraken").size(), 6u);
  EXPECT_NE(findWorkload("bitops-bits-in-byte"), nullptr);
  EXPECT_EQ(findWorkload("no-such-workload"), nullptr);
}

TEST(Workloads, JitActuallySpecializes) {
  // The headline benchmark must exercise the paper's machinery: with full
  // optimizations the engine should specialize at least one function.
  const Workload *W = findWorkload("bitops-bits-in-byte");
  ASSERT_NE(W, nullptr);
  Runtime RT;
  Engine E(RT, OptConfig::all());
  RT.evaluate(W->Source);
  ASSERT_FALSE(RT.hasError()) << RT.errorMessage();
  EXPECT_GT(E.stats().SpecializedCompiles, 0u);
}

} // namespace
