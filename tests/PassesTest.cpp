//===- tests/PassesTest.cpp - Per-pass unit tests --------------------------===//
///
/// \file
/// White-box tests of the optimization passes on MIR graphs built from
/// real programs: parameter specialization produces constants, constant
/// propagation folds guard chains, loop inversion rotates loops, DCE
/// removes the wrapping conditional and unreachable blocks, BCE obeys
/// the paper's aliasing rule, and closure inlining eliminates calls.
///
//===----------------------------------------------------------------------===//

#include "mir/Dominators.h"
#include "mir/MIRBuilder.h"
#include "mir/Verifier.h"
#include "passes/Passes.h"
#include "vm/Runtime.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

using namespace jitvs;

namespace {

/// Test fixture: loads a program, runs it to gather feedback, and exposes
/// graph-building helpers.
struct PassTester {
  explicit PassTester(const std::string &Source) {
    EXPECT_TRUE(RT.load(Source)) << RT.errorMessage();
    RT.run();
    EXPECT_FALSE(RT.hasError()) << RT.errorMessage();
  }

  FunctionInfo *function(const std::string &Name) {
    for (size_t I = 0; I != RT.program()->numFunctions(); ++I) {
      FunctionInfo *F = RT.program()->function(static_cast<uint32_t>(I));
      if (F->Name == Name)
        return F;
    }
    return nullptr;
  }

  std::unique_ptr<MIRGraph> build(const std::string &Name,
                                  std::vector<Value> SpecArgs = {}) {
    FunctionInfo *F = function(Name);
    EXPECT_NE(F, nullptr) << "no function " << Name;
    BuildOptions Opts;
    if (!SpecArgs.empty())
      Opts.SpecializedArgs = std::move(SpecArgs);
    return buildMIR(F, Opts);
  }

  Runtime RT;
};

size_t countOps(const MIRGraph &G, MirOp Op) {
  size_t N = 0;
  for (const auto &B : G.blocks()) {
    if (B->isDead())
      continue;
    for (const MInstr *I : B->phis())
      if (I->op() == Op)
        ++N;
    for (const MInstr *I : B->instructions())
      if (I->op() == Op)
        ++N;
  }
  return N;
}

TEST(ParameterSpecialization, ParamsBecomeConstants) {
  PassTester T("function f(a, b) { return a + b; }"
               "for (var i = 0; i < 10; i++) f(3, 4);");
  auto Generic = T.build("f");
  EXPECT_EQ(countOps(*Generic, MirOp::Parameter), 2u);

  auto Spec = T.build("f", {Value::int32(3), Value::int32(4)});
  EXPECT_EQ(countOps(*Spec, MirOp::Parameter), 0u);
}

TEST(ParameterSpecialization, MissingArgsAreUndefined) {
  PassTester T("function f(a, b) { return b; }"
               "for (var i = 0; i < 10; i++) f(1);");
  auto Spec = T.build("f", {Value::int32(1)});
  EXPECT_EQ(countOps(*Spec, MirOp::Parameter), 0u);
}

TEST(ConstantPropagation, FoldsSpecializedArithmetic) {
  PassTester T("function f(a, b) { return a * b + a; }"
               "for (var i = 0; i < 10; i++) f(6, 7);");
  auto G = T.build("f", {Value::int32(6), Value::int32(7)});
  runGVN(*G);
  runConstantPropagation(*G, T.RT);
  // Everything folds: no arithmetic remains; the return's operand is the
  // constant 48.
  EXPECT_EQ(countOps(*G, MirOp::MulI) + countOps(*G, MirOp::AddI) +
                countOps(*G, MirOp::GenericBinop),
            0u);
  bool Found48 = false;
  for (const auto &B : G->blocks()) {
    if (B->isDead())
      continue;
    for (const MInstr *I : B->instructions())
      if (I->op() == MirOp::Constant && I->constValue().isInt32() &&
          I->constValue().asInt32() == 48)
        Found48 = true;
  }
  EXPECT_TRUE(Found48);
}

TEST(ConstantPropagation, FoldsTypeGuards) {
  // Figure 7(b): the typeof and unbox guards on constants disappear.
  PassTester T("function f(x) { return typeof x == 'number' ? x + 1 : 0; }"
               "for (var i = 0; i < 10; i++) f(5);");
  auto G = T.build("f", {Value::int32(5)});
  runGVN(*G);
  runConstantPropagation(*G, T.RT);
  EXPECT_EQ(countOps(*G, MirOp::Unbox), 0u);
  EXPECT_EQ(countOps(*G, MirOp::TypeOf), 0u);
}

TEST(ConstantPropagation, DoesNotFoldOverflowingInt32) {
  // Folding AddI to a value outside int32 would break downstream typed
  // consumers; the fold must be skipped (the guard bails at runtime).
  PassTester T("function f(a) { return (a + a) | 0; }"
               "for (var i = 0; i < 10; i++) f(5);");
  auto G = T.build("f", {Value::int32(2000000000)});
  runGVN(*G);
  runConstantPropagation(*G, T.RT);
  // The AddI survives (its folding would produce a double).
  EXPECT_EQ(countOps(*G, MirOp::AddI), 1u);
}

TEST(LoopInversion, RotatesWhileLoop) {
  PassTester T("function f(n) { var s = 0;"
               "  var i = 0;"
               "  while (i < n) { s += i; i++; }"
               "  return s; }"
               "for (var k = 0; k < 10; k++) f(50);");
  auto G = T.build("f");
  runGVN(*G);
  size_t TestsBefore = countOps(*G, MirOp::Test);
  runLoopInversion(*G);
  // Rotation duplicates the loop test: wrapper + latch.
  EXPECT_EQ(countOps(*G, MirOp::Test), TestsBefore + 1);
  // The graph still verifies basic block invariants: every live block has
  // a terminator.
  for (const auto &B : G->blocks()) {
    if (B->isDead())
      continue;
    ASSERT_NE(B->terminator(), nullptr);
    EXPECT_TRUE(B->terminator()->isControl());
  }
}

TEST(LoopInversion, SkipsLoopsWithBreaks) {
  // The exit block has two predecessors (header + break): not rotatable.
  PassTester T("function f(n) { var i = 0;"
               "  while (i < n) { if (i == 3) break; i++; }"
               "  return i; }"
               "for (var k = 0; k < 10; k++) f(50);");
  auto G = T.build("f");
  runGVN(*G);
  size_t TestsBefore = countOps(*G, MirOp::Test);
  runLoopInversion(*G);
  EXPECT_EQ(countOps(*G, MirOp::Test), TestsBefore);
}

TEST(DeadCodeElim, RemovesWrappingConditional) {
  // Under specialization the loop provably runs: after inversion, DCE
  // folds the wrapper (the paper's Section 3.4 observation).
  PassTester T("function f(b, n) { var s = 0;"
               "  for (var i = b; i < n; i++) s += i;"
               "  return s; }"
               "for (var k = 0; k < 10; k++) f(2, 5);");
  auto G = T.build("f", {Value::int32(2), Value::int32(5)});
  runGVN(*G);
  runConstantPropagation(*G, T.RT);
  runLoopInversion(*G);
  size_t BlocksBefore = G->numBlocks();
  runDeadCodeElimination(*G, T.RT);
  // The wrapper's test folds to "enter the loop"; only the latch test
  // remains.
  EXPECT_EQ(countOps(*G, MirOp::Test), 1u);
  EXPECT_LE(G->numBlocks(), BlocksBefore);
}

TEST(DeadCodeElim, RemovesUnreachableBranchesUnderSpecialization) {
  PassTester T("function f(flag) {"
               "  if (flag) return 1;"
               "  var s = 0;"
               "  for (var i = 0; i < 100; i++) s += i;"
               "  return s; }"
               "for (var k = 0; k < 10; k++) f(true);");
  auto G = T.build("f", {Value::boolean(true)});
  runGVN(*G);
  runConstantPropagation(*G, T.RT);
  runDeadCodeElimination(*G, T.RT);
  // The whole loop is gone.
  DominatorTree::build(*G);
  EXPECT_TRUE(findNaturalLoops(*G).empty());
  EXPECT_LE(G->numBlocks(), 3u);
}

TEST(DeadCodeElim, KeepsFunctionEntryBlock) {
  PassTester T("function f(n) { return n + 1; }"
               "for (var k = 0; k < 10; k++) f(1);");
  auto G = T.build("f", {Value::int32(1)});
  runGVN(*G);
  runConstantPropagation(*G, T.RT);
  runDeadCodeElimination(*G, T.RT);
  ASSERT_NE(G->entry(), nullptr);
  EXPECT_FALSE(G->entry()->isDead());
}

TEST(BoundsCheckElim, PaperRuleRejectsStores) {
  // The paper: "if there exists any store instruction in the script...
  // elimination is considered unsafe and is not performed".
  PassTester T("function f(a) {"
               "  for (var i = 0; i < 5; i++) a[i] = a[i] + 1;"
               "  return a; }"
               "var arr = new Array(1, 2, 3, 4, 5);"
               "for (var k = 0; k < 10; k++) f(arr);");
  Value Arr = T.RT.global(T.RT.program()->globalSlot("arr"));
  auto G = T.build("f", {Arr});
  runGVN(*G);
  runConstantPropagation(*G, T.RT);
  size_t Before = countOps(*G, MirOp::BoundsCheck);
  ASSERT_GT(Before, 0u);
  runBoundsCheckElimination(*G, /*RelaxedAliasing=*/false);
  EXPECT_EQ(countOps(*G, MirOp::BoundsCheck), Before); // Unchanged.
}

TEST(BoundsCheckElim, RelaxedRuleEliminatesWithEntryGuard) {
  PassTester T("function f(a) {"
               "  for (var i = 0; i < 5; i++) a[i] = a[i] + 1;"
               "  return a; }"
               "var arr = new Array(1, 2, 3, 4, 5);"
               "for (var k = 0; k < 10; k++) f(arr);");
  Value Arr = T.RT.global(T.RT.program()->globalSlot("arr"));
  auto G = T.build("f", {Arr});
  runGVN(*G);
  runConstantPropagation(*G, T.RT);
  ASSERT_GT(countOps(*G, MirOp::BoundsCheck), 0u);
  runBoundsCheckElimination(*G, /*RelaxedAliasing=*/true);
  EXPECT_EQ(countOps(*G, MirOp::BoundsCheck), 0u);
  // One revalidation guard at the function entry block.
  EXPECT_GE(countOps(*G, MirOp::GuardArrayLength), 1u);
}

TEST(BoundsCheckElim, PureReadLoopEliminates) {
  // No stores at all: even the paper's strict rule permits elimination.
  PassTester T("function f(a) { var s = 0;"
               "  for (var i = 0; i < 5; i++) s += a[i];"
               "  return s; }"
               "var arr = new Array(1, 2, 3, 4, 5);"
               "for (var k = 0; k < 10; k++) f(arr);");
  Value Arr = T.RT.global(T.RT.program()->globalSlot("arr"));
  auto G = T.build("f", {Arr});
  runGVN(*G);
  runConstantPropagation(*G, T.RT);
  ASSERT_GT(countOps(*G, MirOp::BoundsCheck), 0u);
  runBoundsCheckElimination(*G, /*RelaxedAliasing=*/false);
  EXPECT_EQ(countOps(*G, MirOp::BoundsCheck), 0u);
  EXPECT_GE(countOps(*G, MirOp::GuardArrayLength), 1u);
}

TEST(BoundsCheckElim, RespectsLoopBound) {
  // Bound 6 exceeds the array length 5: checks must stay.
  PassTester T("function f(a) { var s = 0;"
               "  for (var i = 0; i < 6; i++) s += a[i];"
               "  return s; }"
               "var arr = new Array(1, 2, 3, 4, 5);"
               "for (var k = 0; k < 3; k++) f(arr);");
  Value Arr = T.RT.global(T.RT.program()->globalSlot("arr"));
  auto G = T.build("f", {Arr});
  runGVN(*G);
  runConstantPropagation(*G, T.RT);
  size_t Before = countOps(*G, MirOp::BoundsCheck);
  runBoundsCheckElimination(*G, /*RelaxedAliasing=*/false);
  EXPECT_EQ(countOps(*G, MirOp::BoundsCheck), Before);
}

TEST(Inliner, InlinesConstantClosure) {
  PassTester T("function inc(x) { return x + 1; }"
               "function apply(f, v) { return f(v); }"
               "for (var k = 0; k < 10; k++) apply(inc, k);");
  Value Inc = T.RT.global(T.RT.program()->globalSlot("inc"));
  auto G = T.build("apply", {Inc, Value::int32(1)});
  OptConfig C = OptConfig::all();
  unsigned N = runClosureInlining(*G, T.RT, C);
  EXPECT_EQ(N, 1u);
  EXPECT_EQ(countOps(*G, MirOp::Call), 0u);
}

TEST(Inliner, InlinedReturnSurvivesPhiPruning) {
  // Regression (fuzzer seed 886): the callee returns a parameter that
  // crosses a loop join unassigned, so SSA construction routes it
  // through a placeholder phi that trivial-phi pruning later removes.
  // The builder's inline return record held a raw pointer to that phi;
  // pruning rewired every *operand* use but not the record, and the
  // inliner wired the caller's result to a def in no block — read as
  // an uninitialized register at runtime. The verifier must find every
  // use reachable after inlining.
  PassTester T("var g = 0;"
               "function callee(a, b) {"
               "  while (g < 0) { a = a + 1; g = g + 1; }"
               "  return b; }"
               "function caller(f, x) { return x + f(1); }"
               "for (var i = 0; i < 10; i++) caller(callee, i);");
  Value Callee = T.RT.global(T.RT.program()->globalSlot("callee"));
  auto G = T.build("caller", {Callee, Value::int32(3)});
  unsigned N = runClosureInlining(*G, T.RT, OptConfig::all());
  EXPECT_EQ(N, 1u);
  EXPECT_EQ(verifyGraph(*G), "");
}

TEST(Inliner, RefusesEnvironmentUsers) {
  PassTester T("function make(k) { return function(x) { return x + k; }; }"
               "function apply(f, v) { return f(v); }"
               "var add3 = make(3);"
               "for (var k = 0; k < 10; k++) apply(add3, k);");
  Value Add3 = T.RT.global(T.RT.program()->globalSlot("add3"));
  auto G = T.build("apply", {Add3, Value::int32(1)});
  OptConfig C = OptConfig::all();
  EXPECT_EQ(runClosureInlining(*G, T.RT, C), 0u);
  EXPECT_EQ(countOps(*G, MirOp::Call), 1u); // Call survives.
}

TEST(Inliner, RefusesNonConstantCallee) {
  PassTester T("function inc(x) { return x + 1; }"
               "function apply(f, v) { return f(v); }"
               "for (var k = 0; k < 10; k++) apply(inc, k);");
  auto G = T.build("apply"); // Generic: callee is a Parameter.
  OptConfig C = OptConfig::all();
  EXPECT_EQ(runClosureInlining(*G, T.RT, C), 0u);
}

TEST(GVN, DeduplicatesCongruentGuards) {
  PassTester T("function f(x) { return x * x + x * x; }"
               "for (var k = 0; k < 10; k++) f(7);");
  auto G = T.build("f");
  size_t UnboxBefore = countOps(*G, MirOp::Unbox);
  size_t MulBefore = countOps(*G, MirOp::MulI);
  runGVN(*G);
  EXPECT_LT(countOps(*G, MirOp::Unbox), UnboxBefore);
  EXPECT_LT(countOps(*G, MirOp::MulI), MulBefore);
}

TEST(Dominators, LoopDetection) {
  PassTester T("function f(n) {"
               "  var s = 0;"
               "  for (var i = 0; i < n; i++)"
               "    for (var j = 0; j < n; j++)"
               "      s += i * j;"
               "  return s; }"
               "f(3);");
  auto G = T.build("f");
  DominatorTree::build(*G);
  std::vector<NaturalLoop> Loops = findNaturalLoops(*G);
  EXPECT_EQ(Loops.size(), 2u);
  // Entry dominates everything reachable from it.
  for (const auto &B : G->blocks()) {
    if (!B->isDead() && B.get() != G->entry()) {
      EXPECT_TRUE(G->entry()->dominates(B.get()));
    }
  }
}

TEST(OverflowCheckElim, RemovesProvablyInRangeChecks) {
  PassTester T("function f(a) { var s = 0;"
               "  for (var i = 0; i < 100; i++) s = i + 1;"
               "  return s; }"
               "for (var k = 0; k < 10; k++) f(1);");
  auto G = T.build("f");
  runGVN(*G);
  unsigned Removed = runOverflowCheckElimination(*G);
  // i is an induction variable in [0, 100]; i + 1 cannot overflow, and
  // the increment i++ itself is bounded too.
  EXPECT_GE(Removed, 1u);
}

TEST(OverflowCheckElim, KeepsUnboundedAccumulators) {
  PassTester T("function f(n) { var s = 0;"
               "  for (var i = 0; i < n; i++) s = s + i;"
               "  return s; }"
               "for (var k = 0; k < 10; k++) f(10);");
  auto G = T.build("f"); // n unknown: no constant bound.
  runGVN(*G);
  size_t CheckedBefore = 0, CheckedAfter = 0;
  for (const auto &B : G->blocks())
    if (!B->isDead())
      for (const MInstr *I : B->instructions())
        if (I->op() == MirOp::AddI && I->AuxB == 0)
          ++CheckedBefore;
  runOverflowCheckElimination(*G);
  for (const auto &B : G->blocks())
    if (!B->isDead())
      for (const MInstr *I : B->instructions())
        if (I->op() == MirOp::AddI && I->AuxB == 0)
          ++CheckedAfter;
  // The accumulator's add must stay checked (its range is unknown).
  EXPECT_GE(CheckedAfter, 1u);
  EXPECT_LE(CheckedAfter, CheckedBefore);
}

TEST(OverflowCheckElim, SpecializationEnablesElimination) {
  // Sol et al.'s point, in the paper's setting: with the bound constant
  // (via parameter specialization) the accumulator pattern's increment
  // becomes provably safe.
  PassTester T("function f(n) { var s = 0;"
               "  for (var i = 0; i < n; i++) s = i * 2 + 1;"
               "  return s; }"
               "for (var k = 0; k < 10; k++) f(1000);");
  auto Generic = T.build("f");
  runGVN(*Generic);
  unsigned GenericRemoved = runOverflowCheckElimination(*Generic);

  auto Spec = T.build("f", {Value::int32(1000)});
  runGVN(*Spec);
  runConstantPropagation(*Spec, T.RT);
  unsigned SpecRemoved = runOverflowCheckElimination(*Spec);
  EXPECT_GT(SpecRemoved, GenericRemoved);
}

TEST(OverflowCheckElim, InnerBranchDoesNotBoundInduction) {
  // Regression: an `if (i < K)` nested inside the loop body compares
  // the induction phi against a constant, but both of its successors
  // stay in the loop — iterations keep running (and incrementing i)
  // after the test fails, so it must NOT be taken as a bound. Only the
  // genuinely loop-controlling test (true stays in, false exits) may
  // bound the phi. Here the loop exit compares against the unknown
  // parameter n, so i has no provable range and i * 1000000 must keep
  // its overflow check.
  PassTester T("function f(n) { var t = 0;"
               "  for (var i = 0; i != n; i = i + 1) {"
               "    if (i < 3) { t = t + 1; }"
               "    t = t + i * 1000000;"
               "  } return t; }"
               "for (var k = 0; k < 10; k++) f(5);");
  auto G = T.build("f");
  runGVN(*G);
  runOverflowCheckElimination(*G);
  size_t CheckedMuls = 0;
  for (const auto &B : G->blocks())
    if (!B->isDead())
      for (const MInstr *I : B->instructions())
        if (I->op() == MirOp::MulI && I->AuxB == 0)
          ++CheckedMuls;
  EXPECT_GE(CheckedMuls, 1u);
}

TEST(GVN, KeepsNaNConstantsApart) {
  // NaN != NaN: two NaN-valued constants are never congruent, even
  // though specialization-cache keying treats them as the same baked
  // value. Merging them would let later folds treat two NaNs as one
  // value in contexts where identity matters.
  double NaNV = std::numeric_limits<double>::quiet_NaN();
  PassTester T("function f(a, b) { return a + b; }"
               "for (var k = 0; k < 10; k++) f(0.5, 0.25);");
  auto G = T.build("f", {Value::makeDouble(NaNV), Value::makeDouble(NaNV)});
  runGVN(*G);
  size_t NaNConsts = 0;
  for (const auto &B : G->blocks())
    if (!B->isDead())
      for (const MInstr *I : B->instructions())
        if (I->op() == MirOp::Constant && I->constValue().isDouble() &&
            std::isnan(I->constValue().asDouble()))
          ++NaNConsts;
  EXPECT_EQ(NaNConsts, 2u);
}

TEST(GVN, KeepsSignedZeroConstantsApart) {
  // +0 and -0 are distinct constants (observable through 1/x); GVN
  // must never merge them. sameSpecializationValue is bitwise on
  // doubles, so this pins that congruence stays bitwise too.
  PassTester T("function f(a, b) { return a + b; }"
               "for (var k = 0; k < 10; k++) f(0.5, 0.25);");
  auto G = T.build("f", {Value::makeDouble(0.0), Value::makeDouble(-0.0)});
  runGVN(*G);
  bool SawPos = false, SawNeg = false;
  for (const auto &B : G->blocks())
    if (!B->isDead())
      for (const MInstr *I : B->instructions())
        if (I->op() == MirOp::Constant && I->constValue().isDouble() &&
            I->constValue().asDouble() == 0.0) {
          if (std::signbit(I->constValue().asDouble()))
            SawNeg = true;
          else
            SawPos = true;
        }
  EXPECT_TRUE(SawPos);
  EXPECT_TRUE(SawNeg);
}

TEST(Figure9Configs, TenConfigsMatchingTheTable) {
  std::vector<NamedConfig> Cs = figure9Configs();
  ASSERT_EQ(Cs.size(), 10u);
  EXPECT_STREQ(Cs[0].Name, "PS");
  EXPECT_STREQ(Cs[1].Name, "CP"); // "the third column": CP alone.
  EXPECT_FALSE(Cs[1].Config.ParameterSpecialization);
  EXPECT_TRUE(Cs[1].Config.ConstantPropagation);
  EXPECT_STREQ(Cs[9].Name, "ALL");
  EXPECT_TRUE(Cs[9].Config.BoundsCheckElim);
  // Every config keeps the baseline GVN on, as in the paper.
  for (const NamedConfig &NC : Cs)
    EXPECT_TRUE(NC.Config.GlobalValueNumbering);
}

} // namespace
