//===- tests/VerifierTest.cpp - Graph invariants across the pipeline ------===//
///
/// \file
/// Property test: for a corpus of programs, the MIR graph must satisfy
/// the verifier's structural invariants after building and after every
/// pass combination of the Figure 9 matrix. This is how pass bugs
/// (desynchronized phis, dangling operands, missing resume points)
/// surface deterministically even in release builds.
///
//===----------------------------------------------------------------------===//

#include "mir/MIRBuilder.h"
#include "mir/Verifier.h"
#include "passes/Passes.h"
#include "vm/Runtime.h"

#include <gtest/gtest.h>

using namespace jitvs;

namespace {

const char *const Corpus[] = {
    // Simple arithmetic.
    "function f(a, b) { return a * b + a / b - a % b; } "
    "for (var i = 1; i < 10; i++) f(i, 3);",
    // Loops with conditionals and breaks.
    "function f(n) { var s = 0; for (var i = 0; i < n; i++) {"
    " if (i % 3 == 0) continue; if (i > 20) break; s += i; } return s; }"
    "for (var i = 0; i < 10; i++) f(30);",
    // Nested loops over arrays.
    "function f(a) { var t = 0; for (var i = 0; i < a.length; i++)"
    " for (var j = 0; j < a.length; j++) t += a[i] * a[j]; return t; }"
    "var arr = [1,2,3,4]; for (var i = 0; i < 10; i++) f(arr);",
    // Closure passed as a parameter (inlining path).
    "function g(x) { return x * 2; }"
    "function f(h, v) { return h(h(v)); }"
    "for (var i = 0; i < 10; i++) f(g, i);",
    // Strings and typeof.
    "function f(s) { var h = 0; for (var i = 0; i < s.length; i++)"
    " h = h * 31 + s.charCodeAt(i); return typeof h == 'number' ? h : 0; }"
    "for (var i = 0; i < 10; i++) f('verify me');",
    // Objects and methods.
    "function P(x, y) { this.x = x; this.y = y; }"
    "function f(p) { return p.x * p.y; }"
    "var p = new P(3, 4); for (var i = 0; i < 10; i++) f(p);",
    // do-while and ternaries.
    "function f(n) { var c = 0; do { c += n > 2 ? 2 : 1; n--; }"
    " while (n > 0); return c; }"
    "for (var i = 0; i < 10; i++) f(9);",
    // Math intrinsics and doubles.
    "function f(x) { return Math.sqrt(x * x + 1.5) + Math.sin(x); }"
    "for (var i = 0; i < 10; i++) f(2.5);",
    // Globals and environments.
    "var total = 0;"
    "function mk(k) { return function(v) { total += v + k; return total; }; }"
    "var add = mk(5); for (var i = 0; i < 10; i++) add(i);",
};

class VerifierSweep
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(VerifierSweep, GraphStaysWellFormed) {
  auto [ProgIdx, CfgIdx] = GetParam();
  const char *Source = Corpus[ProgIdx];

  Runtime RT;
  ASSERT_TRUE(RT.load(Source)) << RT.errorMessage();
  RT.run();
  ASSERT_FALSE(RT.hasError()) << RT.errorMessage();

  std::vector<NamedConfig> Configs = figure9Configs();
  const NamedConfig &NC = Configs[CfgIdx];

  for (size_t FI = 1; FI != RT.program()->numFunctions(); ++FI) {
    FunctionInfo *F = RT.program()->function(static_cast<uint32_t>(FI));

    // Generic build.
    {
      BuildOptions Opts;
      auto G = buildMIR(F, Opts);
      EXPECT_EQ(verifyGraph(*G), "") << F->Name << " generic build";
      runOptimizationPipeline(*G, RT, NC.Config);
      EXPECT_EQ(verifyGraph(*G), "")
          << F->Name << " generic under " << NC.Name;
    }

    // Specialized build with synthetic int arguments.
    {
      BuildOptions Opts;
      std::vector<Value> Args;
      for (uint32_t A = 0; A != F->NumParams; ++A)
        Args.push_back(Value::int32(static_cast<int32_t>(A) + 2));
      Opts.SpecializedArgs = std::move(Args);
      auto G = buildMIR(F, Opts);
      EXPECT_EQ(verifyGraph(*G), "") << F->Name << " specialized build";
      if (NC.Config.ParameterSpecialization)
        runClosureInlining(*G, RT, NC.Config);
      runOptimizationPipeline(*G, RT, NC.Config);
      EXPECT_EQ(verifyGraph(*G), "")
          << F->Name << " specialized under " << NC.Name;
    }

    // OSR build at the first loop head, if any.
    uint32_t LoopHeadPC = ~0u;
    for (uint32_t PC = 0; PC < F->Code.size();
         PC += F->instructionLength(PC))
      if (F->opAt(PC) == Op::LoopHead) {
        LoopHeadPC = PC;
        break;
      }
    if (LoopHeadPC != ~0u) {
      BuildOptions Opts;
      Opts.OsrPc = LoopHeadPC;
      auto G = buildMIR(F, Opts);
      EXPECT_EQ(verifyGraph(*G), "") << F->Name << " OSR build";
      runOptimizationPipeline(*G, RT, NC.Config);
      EXPECT_EQ(verifyGraph(*G), "")
          << F->Name << " OSR under " << NC.Name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, VerifierSweep,
    ::testing::Combine(::testing::Range<size_t>(0, std::size(Corpus)),
                       ::testing::Range<size_t>(0, 10)));

} // namespace
