//===- tests/FuzzTest.cpp - Differential fuzzer unit tests -----------------===//
///
/// \file
/// Unit tests for the fuzz subsystem itself: the program generator is
/// deterministic and produces terminating programs, the config matrix
/// covers the required engine configurations, the differential runner
/// detects real divergence and accepts agreement, and the minimizer
/// shrinks failing programs. A small seeded sweep runs inline as a fast
/// sanity tier below the ctest fuzz_smoke binary run.
///
//===----------------------------------------------------------------------===//

#include "fuzz/DiffRunner.h"
#include "fuzz/Minimizer.h"
#include "fuzz/ProgramGen.h"

#include <gtest/gtest.h>

#include <set>

using namespace jitvs;
using namespace jitvs::fuzz;

namespace {

TEST(FuzzGen, SameSeedSameProgram) {
  for (uint64_t Seed : {1ull, 7ull, 42ull, 1000003ull}) {
    FuzzProgram A = generateProgram(Seed);
    FuzzProgram B = generateProgram(Seed);
    EXPECT_EQ(A.render(), B.render()) << "seed " << Seed;
    EXPECT_GT(A.statementCount(), 0u);
  }
}

TEST(FuzzGen, DifferentSeedsDiffer) {
  // Not a hard guarantee for any two seeds, but across a handful the
  // generator must not collapse to one program.
  std::set<std::string> Sources;
  for (uint64_t Seed = 1; Seed <= 8; ++Seed)
    Sources.insert(generateProgram(Seed).render());
  EXPECT_GT(Sources.size(), 6u);
}

TEST(FuzzGen, ProgramsRunUnderTheInterpreter) {
  // Every generated program terminates and leaves the runtime healthy.
  // (Thrown errors are allowed — they are part of the observable
  // surface — but these seeds happen to run clean.)
  EngineSetup Interp;
  Interp.Name = "interp";
  Interp.UseJit = false;
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    FuzzProgram P = generateProgram(Seed);
    RunOutcome O = runOnce(P.render(), Interp);
    EXPECT_FALSE(O.Output.empty()) << "seed " << Seed
                                   << " printed nothing:\n"
                                   << P.render();
  }
}

TEST(FuzzMatrix, CoversRequiredConfigurations) {
  std::vector<EngineSetup> M = defaultMatrix();
  // ISSUE acceptance: at least 6 engine configs (plus the reference).
  ASSERT_GE(M.size(), 7u);
  EXPECT_FALSE(M[0].UseJit); // Reference first.

  std::set<std::string> Names;
  bool SawTiered = false, SawPaper = false;
  bool SawFusionOff = false, SawFusionOn = false;
  bool SawSwitch = false, SawThreaded = false;
  bool SawBaselineOpt = false, SawFullOpt = false;
  for (const EngineSetup &S : M) {
    EXPECT_TRUE(Names.insert(S.Name).second) << "duplicate " << S.Name;
    if (!S.UseJit)
      continue;
    (S.Knobs.Policy == TierPolicy::Tiered ? SawTiered : SawPaper) = true;
    (S.Knobs.Fusion ? SawFusionOn : SawFusionOff) = true;
    (S.Knobs.Dispatch == DispatchMode::Switch ? SawSwitch : SawThreaded) =
        true;
    (S.Opt.ParameterSpecialization ? SawFullOpt : SawBaselineOpt) = true;
  }
  EXPECT_TRUE(SawTiered && SawPaper);
  EXPECT_TRUE(SawFusionOff && SawFusionOn);
  EXPECT_TRUE(SawSwitch && SawThreaded);
  EXPECT_TRUE(SawBaselineOpt && SawFullOpt);
}

TEST(FuzzDiff, AgreementOnAKnownGoodProgram) {
  DiffResult R = runMatrix("function f(a, b) { return a * b + 1; }"
                           "var s = 0;"
                           "for (var i = 0; i < 50; i = i + 1) {"
                           "  s = (s + f(i, 3)) % 1000003;"
                           "}"
                           "print(s, 1 / s, typeof s);",
                           defaultMatrix());
  EXPECT_FALSE(R.diverged());
}

TEST(FuzzDiff, DetectsOutputDivergence) {
  // Two hand-built setups whose observable behavior genuinely differs:
  // nothing in the real engine diverges by design, so fake it with the
  // same engine but a program reading engine-dependent state is not
  // available either — instead diff two *different sources* is not
  // possible through the API. So assert the mechanics directly on
  // RunOutcome.
  RunOutcome A, B;
  A.Output = "1\n";
  B.Output = "2\n";
  EXPECT_FALSE(A.sameObservable(B));
  B = A;
  EXPECT_TRUE(A.sameObservable(B));
  B.HadError = true;
  B.Error = "boom";
  EXPECT_FALSE(A.sameObservable(B));
  B = A;
  B.Completion = "-0";
  EXPECT_FALSE(A.sameObservable(B));
}

TEST(FuzzDiff, DivergenceReportCarriesSeedAndTelemetry) {
  Divergence D;
  D.ConfigName = "paper-all";
  D.Reference.Output = "1\n";
  D.Actual.Output = "2\n";
  D.Actual.Stats.Compilations = 3;
  std::string Report = describeDivergence(D, 12345, "print(1);");
  EXPECT_NE(Report.find("12345"), std::string::npos);
  EXPECT_NE(Report.find("paper-all"), std::string::npos);
  EXPECT_NE(Report.find("print(1);"), std::string::npos);
  EXPECT_NE(Report.find("--seed"), std::string::npos);
}

TEST(FuzzMinimize, ShrinksToTheFailingStatement) {
  // Oracle: "still fails" iff the magic statement survives. The
  // minimizer must strip every other unit and statement.
  FuzzProgram P;
  P.Units.push_back({"function f0(a) {", {"return a;", "}"}, ""});
  P.Units.push_back(
      {"", {"var x = 1;", "print('MAGIC');", "var y = 2;", "print(y);"}, ""});
  P.Units.push_back({"", {"print('tail');"}, ""});
  size_t Calls = 0;
  FuzzProgram Min = minimize(P, [&](const std::string &Source) {
    ++Calls;
    return Source.find("MAGIC") != std::string::npos;
  });
  EXPECT_GT(Calls, 0u);
  EXPECT_EQ(Min.statementCount(), 1u);
  EXPECT_NE(Min.render().find("MAGIC"), std::string::npos);
  EXPECT_EQ(Min.render().find("tail"), std::string::npos);
}

TEST(FuzzMinimize, KeepsEverythingWhenAllLoadBearing) {
  FuzzProgram P;
  P.Units.push_back({"", {"var x = 1;", "print(x);"}, ""});
  FuzzProgram Min = minimize(P, [](const std::string &Source) {
    // Fails only with both statements present.
    return Source.find("var x") != std::string::npos &&
           Source.find("print(x)") != std::string::npos;
  });
  EXPECT_EQ(Min.statementCount(), 2u);
}

TEST(FuzzSweep, FirstSeedsAgreeAcrossTheMatrix) {
  // A miniature inline sweep (the 2000-program smoke tier runs as the
  // separate fuzz_smoke ctest via the jitvs_fuzz binary).
  std::vector<EngineSetup> M = defaultMatrix();
  for (uint64_t Seed = 1; Seed <= 15; ++Seed) {
    FuzzProgram P = generateProgram(Seed);
    DiffResult R = runMatrix(P.render(), M);
    EXPECT_FALSE(R.diverged())
        << "seed " << Seed << " diverged under "
        << (R.Divergences.empty() ? "?" : R.Divergences[0].ConfigName)
        << "\n"
        << describeDivergence(R.Divergences[0], Seed, P.render());
  }
}

} // namespace
