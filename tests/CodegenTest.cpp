//===- tests/CodegenTest.cpp - Backend unit tests ---------------------------===//
///
/// \file
/// Tests of the lowering / register allocation / native execution layer:
/// spill-code generation under register pressure, snapshot encoding,
/// direct executor runs, OSR entry points, and code-size accounting.
///
//===----------------------------------------------------------------------===//

#include "jit/Engine.h"
#include "lir/Codegen.h"
#include "mir/MIRBuilder.h"
#include "native/Executor.h"
#include "passes/Passes.h"
#include "vm/Runtime.h"

#include <gtest/gtest.h>

using namespace jitvs;

namespace {

struct CodegenTester {
  explicit CodegenTester(const std::string &Source) {
    EXPECT_TRUE(RT.load(Source)) << RT.errorMessage();
    RT.run();
    EXPECT_FALSE(RT.hasError()) << RT.errorMessage();
  }

  FunctionInfo *function(const std::string &Name) {
    for (size_t I = 0; I != RT.program()->numFunctions(); ++I) {
      FunctionInfo *F = RT.program()->function(static_cast<uint32_t>(I));
      if (F->Name == Name)
        return F;
    }
    return nullptr;
  }

  /// Compiles \p Name (generic) and runs the native code directly.
  Value compileAndRun(const std::string &Name, std::vector<Value> Args,
                      CodegenStats *Stats = nullptr) {
    FunctionInfo *F = function(Name);
    EXPECT_NE(F, nullptr);
    BuildOptions Opts;
    auto G = buildMIR(F, Opts);
    runGVN(*G);
    auto Code = generateCode(*G, Stats);
    Executor Exec(RT);
    ExecResult R =
        Exec.run(*Code, Value::undefined(), Args.data(), Args.size(),
                 /*AtOsr=*/false, nullptr, 0, nullptr, nullptr);
    EXPECT_EQ(R.K, ExecResult::Ok);
    return R.Result;
  }

  Runtime RT;
};

TEST(Codegen, SimpleArithmetic) {
  CodegenTester T("function f(a, b) { return a * b + 1; }"
                  "for (var i = 0; i < 5; i++) f(2, 3);");
  Value R = T.compileAndRun("f", {Value::int32(6), Value::int32(7)});
  ASSERT_TRUE(R.isInt32());
  EXPECT_EQ(R.asInt32(), 43);
}

TEST(Codegen, RegisterPressureForcesSpills) {
  // 20+ simultaneously-live values exceed the 13 allocatable registers.
  std::string Body = "function f(x) {\n";
  for (int I = 0; I < 24; ++I)
    Body += "  var v" + std::to_string(I) + " = x + " +
            std::to_string(I) + ";\n";
  Body += "  return 0";
  for (int I = 0; I < 24; ++I)
    Body += " + v" + std::to_string(I);
  Body += ";\n}\nfor (var i = 0; i < 5; i++) f(1);";

  CodegenTester T(Body);
  CodegenStats Stats;
  Value R = T.compileAndRun("f", {Value::int32(100)}, &Stats);
  ASSERT_TRUE(R.isInt32());
  // sum over i of (100 + i) for i in 0..23 = 24*100 + 276.
  EXPECT_EQ(R.asInt32(), 24 * 100 + 276);
  EXPECT_GT(Stats.NumSpills, 0u) << "expected spill code under pressure";
}

TEST(Codegen, SnapshotRoundTripThroughBailout) {
  // Force a bailout deep in a computation with live state on both frame
  // slots and the operand stack; the reconstructed interpreter frame must
  // produce exactly the interpreter's result.
  CodegenTester T(
      "function f(a) { var x = a + 1; var y = x * 2;"
      "  return y + (a * a); }" // a*a overflows for large a.
      "for (var i = 0; i < 5; i++) f(3);");
  FunctionInfo *F = T.function("f");
  BuildOptions Opts;
  auto G = buildMIR(F, Opts);
  runGVN(*G);
  auto Code = generateCode(*G);
  ASSERT_FALSE(Code->Snapshots.empty());
  for (const Snapshot &S : Code->Snapshots) {
    EXPECT_EQ(S.NumFrameSlots, F->NumSlots);
    EXPECT_GE(S.Entries.size(), S.NumFrameSlots);
    for (const SnapshotEntry &E : S.Entries) {
      if (!E.IsConst)
        EXPECT_LT(E.Index, Code->FrameSize);
      else
        EXPECT_LT(E.Index, Code->ConstPool.size());
    }
  }

  Executor Exec(T.RT);
  Value Big = Value::int32(100000);
  ExecResult R = Exec.run(*Code, Value::undefined(), &Big, 1,
                          /*AtOsr=*/false, nullptr, 0, nullptr, nullptr);
  ASSERT_EQ(R.K, ExecResult::Bailout);
  EXPECT_EQ(R.RegsAtBail.size(), Code->FrameSize);
}

TEST(Codegen, OsrEntryPointExists) {
  CodegenTester T("function f(n) { var s = 0;"
                  "  for (var i = 0; i < n; i++) s += i;"
                  "  return s; }"
                  "f(5);");
  FunctionInfo *F = T.function("f");
  // Find the LoopHead offset.
  uint32_t LoopHeadPC = ~0u;
  for (uint32_t PC = 0; PC < F->Code.size();
       PC += F->instructionLength(PC))
    if (F->opAt(PC) == Op::LoopHead)
      LoopHeadPC = PC;
  ASSERT_NE(LoopHeadPC, ~0u);

  BuildOptions Opts;
  Opts.OsrPc = LoopHeadPC;
  auto G = buildMIR(F, Opts);
  ASSERT_NE(G->osrBlock(), nullptr);
  runGVN(*G);
  auto Code = generateCode(*G);
  ASSERT_NE(Code->OsrOffset, ~0u);
  EXPECT_EQ(Code->OsrPc, LoopHeadPC);

  // Enter at the OSR point mid-loop: slots = [n, s, i] with i=3, s=3.
  std::vector<Value> Slots = {Value::int32(5), Value::int32(3),
                              Value::int32(3)};
  Executor Exec(T.RT);
  Value N = Value::int32(5);
  ExecResult R = Exec.run(*Code, Value::undefined(), &N, 1,
                          /*AtOsr=*/true, Slots.data(), Slots.size(),
                          nullptr, nullptr);
  ASSERT_EQ(R.K, ExecResult::Ok);
  // Remaining iterations: i=3,4 add 3+4 to s=3 -> 10.
  EXPECT_EQ(R.Result.asInt32(), 10);
}

TEST(Codegen, SpecializationShrinksCode) {
  CodegenTester T("function f(a, b, n) { var s = 0;"
                  "  for (var i = 0; i < n; i++)"
                  "    s += (a * b + i) | 0;"
                  "  return s; }"
                  "for (var k = 0; k < 6; k++) f(3, 4, 10);");
  FunctionInfo *F = T.function("f");

  BuildOptions GOpts;
  auto GG = buildMIR(F, GOpts);
  runGVN(*GG);
  auto BaseCode = generateCode(*GG);

  BuildOptions SOpts;
  SOpts.SpecializedArgs = std::vector<Value>{
      Value::int32(3), Value::int32(4), Value::int32(10)};
  auto SG = buildMIR(F, SOpts);
  OptConfig C = OptConfig::all();
  runClosureInlining(*SG, T.RT, C);
  runOptimizationPipeline(*SG, T.RT, C);
  auto SpecCode = generateCode(*SG);

  EXPECT_LT(SpecCode->sizeInInstructions(),
            BaseCode->sizeInInstructions());
}

TEST(Codegen, DisassemblerProducesText) {
  CodegenTester T("function f(a) { return a + 1; }"
                  "f(1);");
  FunctionInfo *F = T.function("f");
  BuildOptions Opts;
  auto G = buildMIR(F, Opts);
  auto Code = generateCode(*G);
  std::string Dis = Code->disassemble();
  EXPECT_NE(Dis.find("ret"), std::string::npos);
  EXPECT_NE(Dis.find("native f"), std::string::npos);
}

TEST(Executor, EnvironmentCreationAtEntry) {
  // A JIT-compiled function that creates closures over its parameter.
  Runtime RT;
  Engine E(RT, OptConfig::baseline());
  E.setCallThreshold(3);
  RT.evaluate("function make(k) { return function() { return k; }; }"
              "var fs = [];"
              "for (var i = 0; i < 20; i++) fs.push(make(i));"
              "print(fs[0](), fs[7](), fs[19]());");
  ASSERT_FALSE(RT.hasError()) << RT.errorMessage();
  EXPECT_EQ(RT.output(), "0 7 19\n");
  EXPECT_GT(E.stats().Compilations, 0u);
}

TEST(Executor, MathIntrinsicsMatchBuiltins) {
  Runtime RT;
  Engine E(RT, OptConfig::all());
  E.setCallThreshold(2);
  RT.evaluate(
      "function f(x) { return Math.sqrt(x) + Math.abs(0 - x) +"
      " Math.pow(x, 2) + Math.floor(x / 3); }"
      "var r = 0;"
      "for (var i = 0; i < 20; i++) r = f(9.0);"
      "print(r);");
  ASSERT_FALSE(RT.hasError()) << RT.errorMessage();

  Runtime RT2;
  RT2.evaluate(
      "function f(x) { return Math.sqrt(x) + Math.abs(0 - x) +"
      " Math.pow(x, 2) + Math.floor(x / 3); }"
      "var r = 0;"
      "for (var i = 0; i < 20; i++) r = f(9.0);"
      "print(r);");
  EXPECT_EQ(RT.output(), RT2.output());
}

} // namespace
