//===- tests/TelemetryTest.cpp - Telemetry ring, filters, exporters -------===//
///
/// \file
/// The observability layer: ring-buffer wraparound, category filtering,
/// per-site bailout counters, JSON/Chrome-trace well-formedness, and the
/// end-to-end plumbing (engine -> events, bailout-reason taxonomy,
/// per-function report fields).
///
//===----------------------------------------------------------------------===//

#include "telemetry/Telemetry.h"

#include "jit/Engine.h"
#include "vm/Runtime.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <sstream>

using namespace jitvs;

namespace {

/// Resets the global recorder around each test so telemetry state never
/// leaks into (or out of) the rest of the suite.
class TelemetryTest : public ::testing::Test {
protected:
  void SetUp() override {
    telemetry().configure(0, Telemetry::DefaultCapacity);
    telemetry().setSpewMask(0);
    telemetry().clear();
  }
  void TearDown() override {
    telemetry().configure(0);
    telemetry().setSpewMask(0);
    telemetry().clear();
  }

  static TelemetryEvent bailoutAt(const char *Func, uint64_t NativePc,
                                  BailoutReason Reason) {
    TelemetryEvent E;
    E.Kind = TelemetryEventKind::Bailout;
    E.Reason = Reason;
    E.setFunc(Func);
    E.A = NativePc;
    E.B = NativePc + 100; // Arbitrary bytecode pc.
    return E;
  }
};

// --- A minimal JSON validator (structure only, no object model) ------------

class JsonValidator {
public:
  explicit JsonValidator(const std::string &S) : S(S) {}

  bool valid() {
    skipWs();
    if (!value())
      return false;
    skipWs();
    return P == S.size();
  }

private:
  bool value() {
    if (P >= S.size())
      return false;
    switch (S[P]) {
    case '{':
      return object();
    case '[':
      return array();
    case '"':
      return string();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return number();
    }
  }

  bool object() {
    ++P; // '{'
    skipWs();
    if (P < S.size() && S[P] == '}') {
      ++P;
      return true;
    }
    while (true) {
      skipWs();
      if (!string())
        return false;
      skipWs();
      if (P >= S.size() || S[P] != ':')
        return false;
      ++P;
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (P < S.size() && S[P] == ',') {
        ++P;
        continue;
      }
      break;
    }
    if (P >= S.size() || S[P] != '}')
      return false;
    ++P;
    return true;
  }

  bool array() {
    ++P; // '['
    skipWs();
    if (P < S.size() && S[P] == ']') {
      ++P;
      return true;
    }
    while (true) {
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (P < S.size() && S[P] == ',') {
        ++P;
        continue;
      }
      break;
    }
    if (P >= S.size() || S[P] != ']')
      return false;
    ++P;
    return true;
  }

  bool string() {
    if (P >= S.size() || S[P] != '"')
      return false;
    ++P;
    while (P < S.size() && S[P] != '"') {
      if (static_cast<unsigned char>(S[P]) < 0x20)
        return false; // Unescaped control character.
      if (S[P] == '\\') {
        ++P;
        if (P >= S.size())
          return false;
      }
      ++P;
    }
    if (P >= S.size())
      return false;
    ++P;
    return true;
  }

  bool number() {
    size_t Start = P;
    if (P < S.size() && S[P] == '-')
      ++P;
    while (P < S.size() &&
           (std::isdigit(static_cast<unsigned char>(S[P])) || S[P] == '.' ||
            S[P] == 'e' || S[P] == 'E' || S[P] == '+' || S[P] == '-'))
      ++P;
    return P > Start;
  }

  bool literal(const char *L) {
    size_t N = std::strlen(L);
    if (S.compare(P, N, L) != 0)
      return false;
    P += N;
    return true;
  }

  void skipWs() {
    while (P < S.size() && (S[P] == ' ' || S[P] == '\n' || S[P] == '\t' ||
                            S[P] == '\r'))
      ++P;
  }

  const std::string &S;
  size_t P = 0;
};

// --- Ring buffer ------------------------------------------------------------

TEST_F(TelemetryTest, RecordsNothingWhenDisabled) {
  // SetUp left the mask at 0: one-branch fast path rejects everything.
  EXPECT_FALSE(telemetryEnabled(TelCompile));
  telemetry().record(bailoutAt("f", 1, BailoutReason::IntOverflow));
  EXPECT_EQ(telemetry().size(), 0u);
  EXPECT_TRUE(telemetry().bailoutSites().empty());
}

TEST_F(TelemetryTest, RingWrapsKeepingNewestEvents) {
  telemetry().configure(TelAll, /*Capacity=*/8);
  for (uint64_t I = 0; I != 20; ++I)
    telemetry().record(bailoutAt("f", I, BailoutReason::TypeGuard));

  EXPECT_EQ(telemetry().size(), 8u);
  EXPECT_EQ(telemetry().capacity(), 8u);
  EXPECT_EQ(telemetry().dropped(), 12u);

  // Oldest-first, holding the 8 newest native pcs (12..19).
  std::vector<TelemetryEvent> Events = telemetry().events();
  ASSERT_EQ(Events.size(), 8u);
  for (size_t I = 0; I != 8; ++I)
    EXPECT_EQ(Events[I].A, 12 + I);
}

TEST_F(TelemetryTest, TimestampsAreMonotonic) {
  telemetry().configure(TelAll, 64);
  for (int I = 0; I != 10; ++I)
    telemetry().record(bailoutAt("f", 0, BailoutReason::BoundsCheck));
  std::vector<TelemetryEvent> Events = telemetry().events();
  for (size_t I = 1; I < Events.size(); ++I)
    EXPECT_GE(Events[I].TimeNs, Events[I - 1].TimeNs);
}

TEST_F(TelemetryTest, LongNamesAreTruncatedNotOverflowed) {
  telemetry().configure(TelAll, 8);
  std::string Long(200, 'x');
  TelemetryEvent E = bailoutAt("f", 0, BailoutReason::Unknown);
  E.setFunc(Long);
  E.setDetail(Long);
  telemetry().record(E);
  TelemetryEvent Got = telemetry().events().at(0);
  EXPECT_EQ(std::string(Got.Func), Long.substr(0, sizeof(Got.Func) - 1));
  EXPECT_EQ(std::string(Got.Detail),
            Long.substr(0, sizeof(Got.Detail) - 1));
}

// --- Category filtering -----------------------------------------------------

TEST_F(TelemetryTest, CategoryFilterDropsUnselectedKinds) {
  telemetry().configure(TelBailout, 64);

  TelemetryEvent Compile;
  Compile.Kind = TelemetryEventKind::CompileEnd;
  Compile.setFunc("f");
  telemetry().record(Compile);
  telemetry().record(bailoutAt("f", 3, BailoutReason::IntOverflow));

  std::vector<TelemetryEvent> Events = telemetry().events();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_EQ(Events[0].Kind, TelemetryEventKind::Bailout);
}

TEST_F(TelemetryTest, ParseCategorySpellings) {
  EXPECT_EQ(parseTelemetryCategories(nullptr), 0u);
  EXPECT_EQ(parseTelemetryCategories(""), 0u);
  EXPECT_EQ(parseTelemetryCategories("all"), static_cast<uint32_t>(TelAll));
  EXPECT_EQ(parseTelemetryCategories("compile"),
            static_cast<uint32_t>(TelCompile));
  EXPECT_EQ(parseTelemetryCategories("compile,bailout"),
            static_cast<uint32_t>(TelCompile | TelBailout));
  EXPECT_EQ(parseTelemetryCategories("pass, osr"),
            static_cast<uint32_t>(TelPass | TelOsr));
  // Unknown words are ignored, not errors.
  EXPECT_EQ(parseTelemetryCategories("bogus,cache"),
            static_cast<uint32_t>(TelCache));
}

TEST_F(TelemetryTest, EveryKindMapsToExactlyOneCategory) {
  for (uint8_t K = 0; K <= static_cast<uint8_t>(TelemetryEventKind::BenchRun);
       ++K) {
    uint32_t Cat =
        telemetryEventCategory(static_cast<TelemetryEventKind>(K));
    EXPECT_NE(Cat, 0u);
    EXPECT_EQ(Cat & (Cat - 1), 0u); // Power of two: a single bit.
  }
}

// --- Per-site bailout counters ---------------------------------------------

TEST_F(TelemetryTest, BailoutSitesAggregateByFunctionAndPc) {
  telemetry().configure(TelBailout, 64);
  for (int I = 0; I != 5; ++I)
    telemetry().record(bailoutAt("hot", 7, BailoutReason::IntOverflow));
  telemetry().record(bailoutAt("hot", 7, BailoutReason::NegativeZero));
  telemetry().record(bailoutAt("hot", 9, BailoutReason::TypeGuard));
  telemetry().record(bailoutAt("cold", 7, BailoutReason::TypeGuard));

  std::vector<Telemetry::BailoutSite> Sites = telemetry().bailoutSites();
  ASSERT_EQ(Sites.size(), 3u);
  // Hottest first.
  EXPECT_EQ(Sites[0].Func, "hot");
  EXPECT_EQ(Sites[0].NativePc, 7u);
  EXPECT_EQ(Sites[0].Total, 6u);
  EXPECT_EQ(
      Sites[0].ByReason[static_cast<size_t>(BailoutReason::IntOverflow)],
      5u);
  EXPECT_EQ(
      Sites[0].ByReason[static_cast<size_t>(BailoutReason::NegativeZero)],
      1u);
}

// --- Exporter well-formedness ----------------------------------------------

TEST_F(TelemetryTest, JsonExportIsWellFormed) {
  telemetry().configure(TelAll, 64);
  // A spread of kinds, including strings that need escaping.
  TelemetryEvent E;
  E.Kind = TelemetryEventKind::CompileEnd;
  E.setFunc("weird\"name\\with\tescapes");
  E.setDetail("PS+CP");
  E.DurNs = 1234567;
  E.C = 99;
  telemetry().record(E);
  telemetry().record(bailoutAt("f", 3, BailoutReason::BoundsCheck));
  TelemetryEvent P;
  P.Kind = TelemetryEventKind::Pass;
  P.setFunc("f");
  P.setDetail("GVN");
  P.A = 100;
  P.B = 90;
  telemetry().record(P);

  std::ostringstream OS;
  telemetry().writeJson(OS);
  std::string Json = OS.str();
  EXPECT_TRUE(JsonValidator(Json).valid()) << Json;
  EXPECT_NE(Json.find("\"bailoutSites\""), std::string::npos);
  EXPECT_NE(Json.find("bounds-check"), std::string::npos);
}

TEST_F(TelemetryTest, ChromeTraceIsWellFormedAndCarriesSpans) {
  telemetry().configure(TelAll, 64);
  TelemetryEvent E;
  E.Kind = TelemetryEventKind::CompileEnd;
  E.setFunc("f");
  E.setDetail("PS");
  E.TimeNs = 5'000'000;
  E.DurNs = 2'000'000;
  E.A = 1;
  E.C = 42;
  telemetry().record(E);
  telemetry().record(bailoutAt("f", 3, BailoutReason::TypeGuard));

  std::ostringstream OS;
  telemetry().writeChromeTrace(OS);
  std::string Trace = OS.str();
  EXPECT_TRUE(JsonValidator(Trace).valid()) << Trace;
  EXPECT_NE(Trace.find("\"traceEvents\""), std::string::npos);
  // The compile span: complete event ("X") starting at ts=3000us
  // (stamped at span end 5ms, duration 2ms) lasting 2000us.
  EXPECT_NE(Trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Trace.find("\"ts\":3000.000"), std::string::npos);
  EXPECT_NE(Trace.find("\"dur\":2000.000"), std::string::npos);
  // The bailout: an instant event with its reason in args.
  EXPECT_NE(Trace.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(Trace.find("type-guard"), std::string::npos);
}

TEST_F(TelemetryTest, EmptyExportsAreStillValidJson) {
  telemetry().configure(TelAll, 8);
  std::ostringstream J, C;
  telemetry().writeJson(J);
  telemetry().writeChromeTrace(C);
  EXPECT_TRUE(JsonValidator(J.str()).valid()) << J.str();
  EXPECT_TRUE(JsonValidator(C.str()).valid()) << C.str();
}

// --- End-to-end: engine -> telemetry ---------------------------------------

TEST_F(TelemetryTest, EngineRunEmitsCompilePassAndBailoutEvents) {
  telemetry().configure(TelAll, 4096);

  Runtime RT;
  Engine E(RT, OptConfig::all());
  E.setCallThreshold(3);
  // f compiles hot (specialized on 3), then overflows on a huge operand:
  // a compile, per-pass metrics, and an int-overflow bailout must all
  // surface as events.
  RT.evaluate("function f(a) { return a * a; }"
              "for (var i = 0; i < 10; i++) f(3);"
              "print(f(100000));");
  ASSERT_FALSE(RT.hasError()) << RT.errorMessage();

  bool SawCompileStart = false, SawCompileEnd = false, SawPass = false,
       SawBailout = false;
  for (const TelemetryEvent &Ev : telemetry().events()) {
    switch (Ev.Kind) {
    case TelemetryEventKind::CompileStart:
      SawCompileStart = true;
      break;
    case TelemetryEventKind::CompileEnd:
      if (std::string(Ev.Func) == "f")
        SawCompileEnd = true;
      break;
    case TelemetryEventKind::Pass:
      SawPass = true;
      EXPECT_GT(Ev.B, 0u); // Instructions remain after every pass.
      break;
    case TelemetryEventKind::Bailout:
      SawBailout = true;
      EXPECT_EQ(Ev.Reason, BailoutReason::IntOverflow);
      break;
    default:
      break;
    }
  }
  EXPECT_TRUE(SawCompileStart);
  EXPECT_TRUE(SawCompileEnd);
  EXPECT_TRUE(SawPass);
  EXPECT_TRUE(SawBailout);

  // The taxonomy also lands in the engine's aggregate counters...
  EXPECT_GE(E.stats().Bailouts, 1u);
  EXPECT_EQ(E.stats().BailoutsByReason[static_cast<size_t>(
                BailoutReason::IntOverflow)],
            E.stats().Bailouts);
  // ...and in the per-site table.
  std::vector<Telemetry::BailoutSite> Sites = telemetry().bailoutSites();
  ASSERT_FALSE(Sites.empty());
  EXPECT_EQ(Sites[0].Func, "f");
  EXPECT_GT(Sites[0].ByReason[static_cast<size_t>(
                BailoutReason::IntOverflow)],
            0u);
}

TEST_F(TelemetryTest, StatsReasonCountersSumToTotal) {
  // Telemetry disabled: the per-reason stats must work regardless.
  Runtime RT;
  Engine E(RT, OptConfig::baseline());
  E.setCallThreshold(3);
  E.setBailoutLimit(4);
  // Int feedback then double arguments: type-guard bailouts.
  RT.evaluate("function f(x) { return x + 1; }"
              "for (var i = 0; i < 10; i++) f(1);"
              "var r = 0;"
              "for (var i = 0; i < 20; i++) r = f(0.5);"
              "print(r);");
  ASSERT_FALSE(RT.hasError());
  EXPECT_GE(E.stats().Bailouts, 1u);
  uint64_t Sum = 0;
  for (uint64_t N : E.stats().BailoutsByReason)
    Sum += N;
  EXPECT_EQ(Sum, E.stats().Bailouts);
  EXPECT_EQ(telemetry().size(), 0u); // Disabled: nothing recorded.
}

TEST_F(TelemetryTest, FunctionReportsCarryBailoutsCacheHitsAndCause) {
  Runtime RT;
  Engine E(RT, OptConfig::all());
  E.setCallThreshold(3);
  E.setLoopThreshold(100000); // Keep top-level code interpreted.
  RT.evaluate("function f(x) { return x * 2; }"
              "for (var i = 0; i < 10; i++) f(1);" // Specialize, hit cache.
              "f(2);"                              // Despecialize.
              "print('done');");
  ASSERT_FALSE(RT.hasError());

  const Engine::FunctionReport *F = nullptr;
  for (const Engine::FunctionReport &R : E.functionReports())
    if (R.Name == "f")
      F = &R;
  ASSERT_NE(F, nullptr);
  EXPECT_TRUE(F->WasSpecialized);
  EXPECT_TRUE(F->Despecialized);
  EXPECT_EQ(F->Cause, DespecializeCause::DifferentArgs);
  EXPECT_GT(F->CacheHits, 0u); // Same-args calls after the compile.
  EXPECT_STREQ(despecializeCauseName(F->Cause), "different-args");
}

} // namespace
