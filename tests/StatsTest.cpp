//===- tests/StatsTest.cpp - support/Stats aggregation helpers ------------===//
///
/// \file
/// The aggregates behind every reported table: mean, geometric mean of
/// speedup percentages, and the median used by the interleaved
/// measurement harness.
///
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include <gtest/gtest.h>

using namespace jitvs;

namespace {

TEST(Stats, MedianEmptyIsZero) { EXPECT_EQ(median({}), 0.0); }

TEST(Stats, MedianSingleElement) { EXPECT_EQ(median({42.0}), 42.0); }

TEST(Stats, MedianOddLengthPicksMiddle) {
  EXPECT_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_EQ(median({9.0, -5.0, 7.0, 1.0, 3.0}), 3.0);
}

TEST(Stats, MedianEvenLengthAveragesMiddlePair) {
  EXPECT_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_EQ(median({10.0, 20.0}), 15.0);
}

TEST(Stats, MedianUnsortedDuplicatesAndNegatives) {
  EXPECT_EQ(median({-1.0, -1.0, 5.0}), -1.0);
  EXPECT_EQ(median({2.0, 2.0, 2.0, 2.0}), 2.0);
}

TEST(Stats, ArithmeticMean) {
  EXPECT_EQ(arithmeticMean({}), 0.0);
  EXPECT_DOUBLE_EQ(arithmeticMean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Stats, GeometricMeanPercentRoundTrips) {
  EXPECT_EQ(geometricMeanPercent({}), 0.0);
  // A single entry is its own geomean.
  EXPECT_NEAR(geometricMeanPercent({5.0}), 5.0, 1e-9);
  // +100% and -50% are reciprocal ratios: geomean is 0%.
  EXPECT_NEAR(geometricMeanPercent({100.0, -50.0}), 0.0, 1e-9);
}

} // namespace
