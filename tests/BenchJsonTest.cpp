//===- tests/BenchJsonTest.cpp - BENCH_*.json schema validation -----------===//
///
/// \file
/// Every bench binary writes a BENCH_<name>.json via BenchReport; CI
/// archives and diffs those files, so their shape is load-bearing. These
/// tests pin the jitvs-bench-v1 schema: required top-level keys, row and
/// metric shapes, string escaping, $JITVS_BENCH_OUT routing, and the
/// engineMetrics attachment when the metrics layer is live.
///
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"

#include "support/Json.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

using namespace jitvs;
using namespace jitvs::bench;

namespace {

std::unique_ptr<json::Value> emit(const BenchReport &Report) {
  std::ostringstream SS;
  Report.writeJson(SS);
  std::string Err;
  auto Doc = json::parse(SS.str(), &Err);
  EXPECT_TRUE(Doc) << Err << "\nin: " << SS.str();
  return Doc;
}

TEST(BenchJsonTest, MinimalReportHasAllSchemaKeys) {
  BenchReport Report("unit_test", 3);
  auto Doc = emit(Report);
  ASSERT_TRUE(Doc && Doc->isObject());

  ASSERT_TRUE(Doc->get("schema"));
  EXPECT_EQ(Doc->get("schema")->Str, BenchReport::Schema);
  EXPECT_EQ(Doc->get("schema")->Str, "jitvs-bench-v1");
  ASSERT_TRUE(Doc->get("bench"));
  EXPECT_EQ(Doc->get("bench")->Str, "unit_test");
  ASSERT_TRUE(Doc->get("reps"));
  EXPECT_DOUBLE_EQ(Doc->get("reps")->Num, 3.0);
  // Empty collections still serialize (diff tooling need not branch).
  ASSERT_TRUE(Doc->get("meta") && Doc->get("meta")->isObject());
  ASSERT_TRUE(Doc->get("rows") && Doc->get("rows")->isArray());
  EXPECT_TRUE(Doc->get("rows")->Arr.empty());
  ASSERT_TRUE(Doc->get("metrics") && Doc->get("metrics")->isObject());
}

TEST(BenchJsonTest, RowsMetaAndMetricsRoundTrip) {
  BenchReport Report("unit_test", 5);
  Report.setMeta("policy", "paper \"quoted\"");
  std::vector<double> Samples = {0.001, 0.002, 0.0015};
  Report.addRow("3d-cube", "ALL", 0.0015, "seconds", &Samples);
  Report.addRow("3d-cube", "interp", 0.01, "seconds");
  Report.addRow("crypto-md5", "ALL", 1234, "instructions");
  Report.addMetric("geomean_speedup_pct", 42.5);

  auto Doc = emit(Report);
  ASSERT_TRUE(Doc);

  EXPECT_EQ(Doc->get("meta")->get("policy")->Str, "paper \"quoted\"");

  const json::Value *Rows = Doc->get("rows");
  ASSERT_EQ(Rows->Arr.size(), 3u);
  const json::Value &R0 = Rows->Arr[0];
  EXPECT_EQ(R0.get("workload")->Str, "3d-cube");
  EXPECT_EQ(R0.get("config")->Str, "ALL");
  EXPECT_DOUBLE_EQ(R0.get("value")->Num, 0.0015);
  EXPECT_EQ(R0.get("unit")->Str, "seconds");
  ASSERT_TRUE(R0.get("samples") && R0.get("samples")->isArray());
  ASSERT_EQ(R0.get("samples")->Arr.size(), 3u);
  EXPECT_DOUBLE_EQ(R0.get("samples")->Arr[1].Num, 0.002);
  // Rows without samples omit the key rather than writing [].
  EXPECT_EQ(Rows->Arr[1].get("samples"), nullptr);

  EXPECT_DOUBLE_EQ(Doc->get("metrics")->get("geomean_speedup_pct")->Num,
                   42.5);
}

TEST(BenchJsonTest, EngineMetricsAttachedOnlyWhenEnabled) {
  metrics().enable(false);
  metrics().reset();
  BenchReport Report("unit_test", 1);
  auto Doc = emit(Report);
  ASSERT_TRUE(Doc);
  EXPECT_EQ(Doc->get("engineMetrics"), nullptr);

  metrics().enable();
  if (!metricsEnabled())
    GTEST_SKIP() << "built with JITVS_TELEMETRY_ENABLED=0";
  metrics().addCounter("engine.compilations", 2);
  auto Doc2 = emit(Report);
  metrics().enable(false);
  metrics().reset();
  ASSERT_TRUE(Doc2);
  const json::Value *EM = Doc2->get("engineMetrics");
  ASSERT_TRUE(EM && EM->isObject());
  EXPECT_EQ(EM->get("schema")->Str, Metrics::JsonSchema);
  EXPECT_DOUBLE_EQ(EM->get("counters")->get("engine.compilations")->Num,
                   2.0);
}

TEST(BenchJsonTest, WriteRespectsBenchOutDir) {
  std::string Dir = ::testing::TempDir(); // Ends with '/'.
  ASSERT_EQ(setenv("JITVS_BENCH_OUT", Dir.c_str(), 1), 0);
  BenchReport Report("out_dir_test", 1);
  Report.addRow("w", "c", 1.5, "seconds");
  EXPECT_TRUE(Report.write());
  unsetenv("JITVS_BENCH_OUT");

  std::string Path = Dir + "/BENCH_out_dir_test.json";
  std::string Err;
  auto Doc = json::parseFile(Path, &Err);
  ASSERT_TRUE(Doc) << Err;
  EXPECT_EQ(Doc->get("bench")->Str, "out_dir_test");
  std::remove(Path.c_str());
}

} // namespace
