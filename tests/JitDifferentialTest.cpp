//===- tests/JitDifferentialTest.cpp - Interp vs JIT config equivalence ---===//
///
/// \file
/// The core correctness property of the whole system: for every program
/// and every optimization configuration (the ten Figure-9 configs plus
/// baseline), JIT-compiled execution must produce exactly the output the
/// plain interpreter produces — including programs engineered to trigger
/// specialization-cache hits, despecialization, overflow/bounds/type
/// bailouts and on-stack replacement.
///
//===----------------------------------------------------------------------===//

#include "jit/Engine.h"
#include "vm/Runtime.h"

#include <gtest/gtest.h>

using namespace jitvs;

namespace {

struct TestProgram {
  const char *Name;
  const char *Source;
};

const TestProgram Programs[] = {
    {"paper_map_inc",
     "function inc(x) { return x + 1; }"
     "function map(s, b, n, f) { var i = b;"
     "  while (i < n) { s[i] = f(s[i]); i++; } return s; }"
     "var a = new Array(1, 2, 3, 4, 5);"
     "for (var k = 0; k < 40; k++) { map(a, 2, 5, inc); }"
     "print(a.join(','));"},

    {"hot_int_loop",
     "function sum(n) { var s = 0;"
     "  for (var i = 0; i < n; i++) s += i; return s; }"
     "var t = 0; for (var k = 0; k < 50; k++) t = sum(1000);"
     "print(t);"},

    {"same_args_cache",
     "function f(a, b) { return a * 10 + b; }"
     "var r = 0; for (var i = 0; i < 100; i++) r = f(3, 4);"
     "print(r);"},

    {"despecialization",
     "function g(a) { return a + 7; }"
     "var r = 0;"
     "for (var i = 0; i < 30; i++) r += g(1);" // Specializes on a=1.
     "for (var i = 0; i < 30; i++) r += g(i);" // Forces despecialization.
     "print(r);"},

    {"overflow_bailout",
     "function grow(x) { return x * 3; }"
     "var v = 7;"
     "for (var i = 0; i < 40; i++) { v = grow(v) % 100000007 + 1; }"
     "var big = 2000000000;"
     "print(grow(big));" // Int32 overflow in compiled code.
    },

    {"oob_bailout",
     "function read(a, i) { return a[i]; }"
     "var arr = [10, 20, 30];"
     "var s = 0;"
     "for (var i = 0; i < 60; i++) s += read(arr, i % 3);"
     "print(s, read(arr, 99));" // OOB after hot in-bounds accesses.
    },

    {"type_bailout",
     "function add2(x) { return x + 2; }"
     "var s = 0;"
     "for (var i = 0; i < 50; i++) s += add2(i % 7);"
     "print(s, add2(0.5), add2('s'));"},

    {"osr_long_loop",
     "var s = 0;"
     "for (var i = 0; i < 20000; i++) { s = (s + i) % 1000003; }"
     "print(s);"},

    {"osr_in_function",
     "function work(n) { var acc = 1;"
     "  for (var i = 1; i < n; i++) { acc = (acc * i) % 999983; }"
     "  return acc; }"
     "print(work(30000));"},

    {"closures_hot",
     "function mkcounter() { var n = 0;"
     "  return function() { n = n + 1; return n; }; }"
     "var c = mkcounter(); var last = 0;"
     "for (var i = 0; i < 200; i++) last = c();"
     "print(last);"},

    {"higher_order_inline",
     "function twice(x) { return x * 2; }"
     "function apply3(f, x) { return f(f(f(x))); }"
     "var s = 0;"
     "for (var i = 0; i < 60; i++) s += apply3(twice, 1);"
     "print(s);"},

    {"string_hot",
     "function hash(s) { var h = 0;"
     "  for (var i = 0; i < s.length; i++)"
     "    h = (h * 31 + s.charCodeAt(i)) % 1000000007;"
     "  return h; }"
     "var t = 0;"
     "for (var k = 0; k < 50; k++) t = hash('the quick brown fox');"
     "print(t);"},

    {"doubles_hot",
     "function norm(x, y) { return Math.sqrt(x * x + y * y); }"
     "var s = 0.0;"
     "for (var i = 0; i < 200; i++) s += norm(3.0, 4.0);"
     "print(s);"},

    {"objects_hot",
     "function Point(x, y) { this.x = x; this.y = y; }"
     "function dist2(p) { return p.x * p.x + p.y * p.y; }"
     "var p = new Point(3, 4); var s = 0;"
     "for (var i = 0; i < 80; i++) s += dist2(p);"
     "print(s);"},

    {"nested_loops",
     "function mat(n) { var total = 0;"
     "  for (var i = 0; i < n; i++)"
     "    for (var j = 0; j < n; j++)"
     "      total += i * j; return total; }"
     "var t = 0; for (var k = 0; k < 20; k++) t = mat(30);"
     "print(t);"},

    {"loop_with_break",
     "function find(a, v) { var idx = -1;"
     "  for (var i = 0; i < a.length; i++) {"
     "    if (a[i] == v) { idx = i; break; } } return idx; }"
     "var a = [5, 3, 9, 1, 7]; var s = 0;"
     "for (var k = 0; k < 60; k++) s += find(a, 1);"
     "print(s);"},

    {"zero_iteration_loop",
     "function maybe(n) { var s = 100;"
     "  while (n > 0) { s += n; n--; } return s; }"
     "var t = 0;"
     "for (var k = 0; k < 60; k++) t += maybe(0) + maybe(3);"
     "print(t);"},

    {"recursion_hot",
     "function fib(n) { if (n < 2) return n;"
     "  return fib(n - 1) + fib(n - 2); }"
     "print(fib(18));"},

    {"array_growth",
     "function push7(a) { a[a.length] = 7; return a.length; }"
     "var a = []; var last = 0;"
     "for (var i = 0; i < 80; i++) last = push7(a);"
     "print(last, a[79]);"},

    {"bitops_hot",
     "function bits(x) { var c = 0;"
     "  while (x != 0) { c += x & 1; x = x >>> 1; } return c; }"
     "var s = 0;"
     "for (var i = 0; i < 80; i++) s += bits(0x12345678 | 0);"
     "print(s);"},

    {"typeof_fold",
     "function kind(x) { if (typeof x == 'number') return 1;"
     "  if (typeof x == 'string') return 2; return 3; }"
     "var s = 0;"
     "for (var i = 0; i < 60; i++) s += kind(5) + kind('a') + kind({});"
     "print(s);"},

    {"env_in_jit",
     "function adder(k) { return function(x) { return x + k; }; }"
     "var add9 = adder(9); var s = 0;"
     "for (var i = 0; i < 80; i++) s += add9(i);"
     "print(s);"},

    {"mixed_numeric",
     "function mix(a, b) { return a / b + a * b - a % b; }"
     "var s = 0;"
     "for (var i = 1; i < 100; i++) s += mix(7, 2);"
     "print(s);"},

    {"ternary_and_logic",
     "function pick(a, b) { return (a && b) ? a + b : (a || b) ? 1 : 0; }"
     "var s = 0;"
     "for (var i = 0; i < 60; i++)"
     "  s += pick(1, 2) + pick(0, 5) + pick(0, 0);"
     "print(s);"},

    {"do_while",
     "function count(n) { var c = 0;"
     "  do { c++; n--; } while (n > 0); return c; }"
     "var s = 0; for (var i = 0; i < 60; i++) s += count(10);"
     "print(s);"},

    {"negative_zero_mul",
     "function m(a, b) { return a * b; }"
     "var s = 0; for (var i = 0; i < 60; i++) s = m(3, 5);"
     "print(s, 1 / m(-1, 0));" // -0 must survive specialization.
    },

    {"global_state",
     "var counter = 0;"
     "function bump() { counter = counter + 1; return counter; }"
     "var last = 0;"
     "for (var i = 0; i < 70; i++) last = bump();"
     "print(last, counter);"},
};

std::string runInterpreterOnly(const char *Source) {
  Runtime RT;
  RT.evaluate(Source);
  EXPECT_FALSE(RT.hasError()) << RT.errorMessage();
  return RT.output();
}

std::string runWithConfig(const char *Source, const OptConfig &Config) {
  Runtime RT;
  Engine E(RT, Config);
  E.setCallThreshold(5);
  E.setLoopThreshold(50);
  RT.evaluate(Source);
  EXPECT_FALSE(RT.hasError()) << RT.errorMessage();
  return RT.output();
}

class DifferentialTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(DifferentialTest, MatchesInterpreter) {
  auto [ProgIdx, CfgIdx] = GetParam();
  const TestProgram &P = Programs[ProgIdx];

  std::vector<NamedConfig> Configs = figure9Configs();
  Configs.insert(Configs.begin(), {"baseline", OptConfig::baseline()});
  OptConfig AllOce = OptConfig::all();
  AllOce.OverflowCheckElim = true;
  Configs.push_back({"ALL_OCE", AllOce});
  const NamedConfig &C = Configs[CfgIdx];

  std::string Expected = runInterpreterOnly(P.Source);
  std::string Actual = runWithConfig(P.Source, C.Config);
  EXPECT_EQ(Expected, Actual)
      << "program " << P.Name << " under config " << C.Name;
}

std::string differentialName(
    const ::testing::TestParamInfo<std::tuple<size_t, size_t>> &Info) {
  auto [ProgIdx, CfgIdx] = Info.param;
  std::vector<NamedConfig> Configs = figure9Configs();
  Configs.insert(Configs.begin(), {"baseline", OptConfig::baseline()});
  OptConfig AllOce = OptConfig::all();
  AllOce.OverflowCheckElim = true;
  Configs.push_back({"ALL_OCE", AllOce});
  std::string Cfg = Configs[CfgIdx].Name;
  for (char &C : Cfg)
    if (C == '+')
      C = '_';
  return std::string(Programs[ProgIdx].Name) + "_" + Cfg;
}

INSTANTIATE_TEST_SUITE_P(
    AllProgramsAllConfigs, DifferentialTest,
    ::testing::Combine(
        ::testing::Range<size_t>(0, std::size(Programs)),
        ::testing::Range<size_t>(0, 12)),
    differentialName);

TEST(JitEngine, ActuallyCompiles) {
  Runtime RT;
  Engine E(RT, OptConfig::all());
  E.setCallThreshold(5);
  E.setLoopThreshold(50);
  RT.evaluate(Programs[0].Source);
  ASSERT_FALSE(RT.hasError()) << RT.errorMessage();
  EXPECT_GT(E.stats().Compilations, 0u);
  EXPECT_GT(E.stats().NativeCalls, 0u);
}

TEST(JitEngine, SpecializationCacheHits) {
  Runtime RT;
  Engine E(RT, OptConfig::all());
  E.setCallThreshold(5);
  RT.evaluate("function f(a) { return a + 1; }"
              "var s = 0; for (var i = 0; i < 100; i++) s += f(41);"
              "print(s);");
  ASSERT_FALSE(RT.hasError()) << RT.errorMessage();
  EXPECT_EQ(RT.output(), "4200\n");
  EXPECT_GT(E.stats().CacheHits, 50u);
  EXPECT_EQ(E.stats().Despecializations, 0u);
}

TEST(JitEngine, DespecializesOnDifferentArgs) {
  Runtime RT;
  Engine E(RT, OptConfig::all());
  E.setCallThreshold(5);
  RT.evaluate("function f(a) { return a * 2; }"
              "var s = 0;"
              "for (var i = 0; i < 20; i++) s += f(5);"
              "for (var i = 0; i < 20; i++) s += f(i);"
              "print(s);");
  ASSERT_FALSE(RT.hasError()) << RT.errorMessage();
  EXPECT_EQ(RT.output(), "580\n");
  EXPECT_GE(E.stats().Despecializations, 1u);
  // After despecialization the generic code must keep serving calls.
  EXPECT_GT(E.stats().NativeCalls, 20u);
}

TEST(JitEngine, OsrEnters) {
  Runtime RT;
  Engine E(RT, OptConfig::all());
  E.setLoopThreshold(50);
  RT.evaluate("var s = 0;"
              "for (var i = 0; i < 5000; i++) s += i;"
              "print(s);");
  ASSERT_FALSE(RT.hasError()) << RT.errorMessage();
  EXPECT_EQ(RT.output(), "12497500\n");
  EXPECT_GT(E.stats().OsrEntries, 0u);
}

TEST(JitEngine, BailoutsResumeCorrectly) {
  Runtime RT;
  Engine E(RT, OptConfig::baseline());
  E.setCallThreshold(3);
  // Side effect before the overflowing op: print(a) runs, then a*a
  // overflows in native code; the bailout must not re-run print(a).
  RT.evaluate("function f(a) { print(a); return a * a; }"
              "for (var i = 0; i < 10; i++) f(3);"
              "print(f(100000));");
  ASSERT_FALSE(RT.hasError()) << RT.errorMessage();
  std::string Expected;
  for (int I = 0; I < 10; ++I)
    Expected += "3\n";
  Expected += "100000\n10000000000\n";
  EXPECT_EQ(RT.output(), Expected);
  EXPECT_GE(E.stats().Bailouts, 1u);
}

TEST(JitEngine, GCDuringNativeExecution) {
  Runtime RT;
  // Stress mode requests a minor collection at every allocation; the low
  // old-space threshold then forces majors through promotion pressure.
  RT.heap().setGCStress(true);
  RT.heap().setGCThreshold(128);
  Engine E(RT, OptConfig::all());
  E.setCallThreshold(3);
  E.setLoopThreshold(30);
  RT.evaluate("function build(n) { var a = [];"
              "  for (var i = 0; i < n; i++) a.push('v' + i);"
              "  return a; }"
              "var last;"
              "for (var k = 0; k < 30; k++) last = build(50);"
              "print(last.length, last[49]);");
  ASSERT_FALSE(RT.hasError()) << RT.errorMessage();
  EXPECT_EQ(RT.output(), "50 v49\n");
  EXPECT_GT(RT.heap().minorCount(), 0u);
  EXPECT_GT(RT.heap().gcCount(), 0u);
}

} // namespace
