//===- tests/GCTest.cpp - Generational collector invariants ---------------===//
///
/// \file
/// The generational heap's core safety properties: minor collections
/// promote exactly the reachable nursery residents, every old-to-young
/// edge created through a barriered store site (property, element,
/// environment slot, whole-contents replacement) survives the next
/// minor collection, overflow-tenured objects are pre-remembered, and
/// objects donated from a compile-worker fold heap behave like native
/// old-space objects — including as sources of old-to-young edges.
///
//===----------------------------------------------------------------------===//

#include "jit/Engine.h"
#include "vm/GC.h"
#include "vm/Object.h"
#include "vm/Runtime.h"

#include <cstdlib>
#include <gtest/gtest.h>

using namespace jitvs;

namespace {

/// Single-value root for heap-level tests.
class ValueRoot final : public RootSource {
public:
  explicit ValueRoot(Heap &H) : H(H) { H.addRootSource(this); }
  ~ValueRoot() override { H.removeRootSource(this); }
  void traceRoots(GCVisitor &Visitor) override { Visitor.visit(V); }
  Heap &H;
  Value V;
};

TEST(GCGen, MinorPromotesOnlyReachable) {
  Heap H;
  if (!H.nurseryEnabled())
    GTEST_SKIP() << "nursery disabled via JITVS_NURSERY_KB=0";
  H.setGCThreshold(1u << 30);
  ValueRoot R(H);

  JSArray *Keep = H.allocate<JSArray>();
  R.V = Value::array(Keep);
  Keep->push(Value::string(H.allocate<JSString>("kept")));
  for (int I = 0; I < 50; ++I)
    H.allocate<JSString>("garbage");

  size_t OldBefore = H.objectCount();
  size_t PromotedBefore = H.promotedCount();
  H.minorCollect();

  // The nursery is empty, the array + its string were promoted, and the
  // 50 unreachable strings are gone.
  EXPECT_EQ(H.nurseryCount(), 0u);
  EXPECT_EQ(H.objectCount(), OldBefore + 2);
  EXPECT_EQ(H.promotedCount(), PromotedBefore + 2);
  EXPECT_EQ(R.V.asArray()->getDense(0).asString()->str(), "kept");
}

/// Promotes the rooted value's object into the old generation and
/// returns it re-derived from the (possibly updated) root.
static Value promote(Heap &H, ValueRoot &R) {
  H.minorCollect();
  return R.V;
}

TEST(GCGen, OldToYoungPropertyEdgeSurvivesMinor) {
  Heap H;
  if (!H.nurseryEnabled())
    GTEST_SKIP() << "nursery disabled via JITVS_NURSERY_KB=0";
  H.setGCThreshold(1u << 30);
  ShapeTree T;
  ValueRoot R(H);

  R.V = Value::object(H.allocate<JSObject>(T.root()));
  JSObject *Old = promote(H, R).asObject();
  ASSERT_FALSE(H.inNursery(Old));

  // Store a nursery string into the old object exactly as the
  // interpreter / generic-runtime store sites do: setProperty + barrier.
  Value Young = Value::string(H.allocate<JSString>("prop-edge"));
  ASSERT_TRUE(H.inNursery(Young.asGCThing()));
  Old->setProperty(T, 7, Young);
  H.writeBarrier(Old, Young);

  H.minorCollect();
  EXPECT_EQ(R.V.asObject()->getProperty(7).asString()->str(), "prop-edge");
}

TEST(GCGen, OldToYoungElementEdgeSurvivesMinor) {
  Heap H;
  if (!H.nurseryEnabled())
    GTEST_SKIP() << "nursery disabled via JITVS_NURSERY_KB=0";
  H.setGCThreshold(1u << 30);
  ValueRoot R(H);

  R.V = Value::array(H.allocate<JSArray>());
  JSArray *Old = promote(H, R).asArray();
  ASSERT_FALSE(H.inNursery(Old));

  Value Young = Value::string(H.allocate<JSString>("elem-edge"));
  Old->setElement(3, Young);
  H.writeBarrier(Old, Young);

  H.minorCollect();
  EXPECT_EQ(R.V.asArray()->getDense(3).asString()->str(), "elem-edge");
  EXPECT_TRUE(R.V.asArray()->getDense(0).isUndefined()); // Grown holes.
}

TEST(GCGen, OldToYoungEnvSlotEdgeSurvivesMinor) {
  Heap H;
  if (!H.nurseryEnabled())
    GTEST_SKIP() << "nursery disabled via JITVS_NURSERY_KB=0";
  H.setGCThreshold(1u << 30);
  ValueRoot R(H);

  Environment *Env = H.allocate<Environment>(nullptr, 2);
  R.V = Value::function(H.allocate<JSFunction>(nullptr, Env));
  JSFunction *F = promote(H, R).asFunction();
  Environment *OldEnv = F->environment();
  ASSERT_FALSE(H.inNursery(OldEnv));

  Value Young = Value::string(H.allocate<JSString>("slot-edge"));
  OldEnv->setSlot(1, Young);
  H.writeBarrier(OldEnv, Young);

  H.minorCollect();
  EXPECT_EQ(
      R.V.asFunction()->environment()->getSlot(1).asString()->str(),
      "slot-edge");
}

TEST(GCGen, WriteBarrierAllCoversReplacedElements) {
  Heap H;
  if (!H.nurseryEnabled())
    GTEST_SKIP() << "nursery disabled via JITVS_NURSERY_KB=0";
  H.setGCThreshold(1u << 30);
  ValueRoot R(H);

  R.V = Value::array(H.allocate<JSArray>());
  JSArray *Old = promote(H, R).asArray();

  // Whole-contents replacement (the shift / length-truncation path):
  // the conservative barrier must remember the owner even though the
  // individual stores were never seen.
  std::vector<Value> Els;
  Els.push_back(Value::string(H.allocate<JSString>("replaced")));
  Old->replaceElements(std::move(Els));
  H.writeBarrierAll(Old);

  H.minorCollect();
  EXPECT_EQ(R.V.asArray()->getDense(0).asString()->str(), "replaced");
}

TEST(GCGen, OverflowTenuredObjectIsPreRemembered) {
  Heap H;
  if (!H.nurseryEnabled())
    GTEST_SKIP() << "nursery disabled via JITVS_NURSERY_KB=0";
  H.setGCThreshold(1u << 30);
  ShapeTree T;
  ValueRoot R(H);

  // Allocate the young value first (while the nursery has room), then
  // fill the nursery until an allocation overflow-tenures, and perform
  // a barrier-less initialization store of the still-young value into
  // the tenured object — the overflow path must have pre-remembered it.
  ValueRoot YoungRoot(H);
  YoungRoot.V = Value::string(H.allocate<JSString>("init-store"));
  ASSERT_TRUE(H.inNursery(YoungRoot.V.asGCThing()));
  JSObject *Tenured = nullptr;
  for (size_t I = 0; I < (1u << 20) && !Tenured; ++I) {
    JSObject *O = H.allocate<JSObject>(T.root());
    if (!H.inNursery(O))
      Tenured = O;
  }
  ASSERT_NE(Tenured, nullptr) << "nursery never overflowed";
  R.V = Value::object(Tenured);
  ASSERT_TRUE(H.inNursery(YoungRoot.V.asGCThing()));
  Tenured->setProperty(T, 1, YoungRoot.V); // Deliberately no writeBarrier.

  H.minorCollect();
  EXPECT_EQ(R.V.asObject()->getProperty(1).asString()->str(), "init-store");
}

TEST(GCGen, MinorThenMajorKeepsOnlyRooted) {
  Heap H;
  if (!H.nurseryEnabled())
    GTEST_SKIP() << "nursery disabled via JITVS_NURSERY_KB=0";
  H.setGCThreshold(1u << 30);
  ValueRoot R(H);

  R.V = Value::string(H.allocate<JSString>("survivor"));
  for (int I = 0; I < 20; ++I)
    H.allocate<JSString>("minor-garbage");
  H.minorCollect(); // Unreachable young objects die here...
  for (int I = 0; I < 20; ++I) {
    JSString *S = H.allocate<JSString>("promoted-garbage");
    ValueRoot Tmp(H);
    Tmp.V = Value::string(S);
    H.minorCollect(); // ...these promote (rooted across the minor)...
  }
  H.collect(); // ...and the major reclaims them once unrooted.
  EXPECT_EQ(H.objectCount(), 1u);
  EXPECT_EQ(H.nurseryCount(), 0u);
  EXPECT_EQ(R.V.asString()->str(), "survivor");
}

TEST(GCGen, DonatedChainObjectsAcceptYoungEdges) {
  // A compile-worker fold heap: nursery off, collections off — every
  // allocation is pointer-stable and sits on the old-space list.
  Heap Worker;
  Worker.setGCThreshold(SIZE_MAX);
  Worker.setNurseryEnabled(false);

  ShapeTree T;
  GCObject *Mark = Worker.allocationMark();
  JSObject *Folded = Worker.allocate<JSObject>(T.root());
  Folded->setProperty(T, 0,
                      Value::string(Worker.allocate<JSString>("folded")));
  Heap::DetachedChain Chain = Worker.detachAllocatedSince(Mark);
  ASSERT_EQ(Chain.Count, 2u);

  // Adopt into the main (generational) heap: the donated objects join
  // the old generation directly.
  Heap H;
  if (!H.nurseryEnabled())
    GTEST_SKIP() << "nursery disabled via JITVS_NURSERY_KB=0";
  H.setGCThreshold(1u << 30);
  ValueRoot R(H);
  size_t OldBefore = H.objectCount();
  H.adoptChain(Chain);
  EXPECT_EQ(H.objectCount(), OldBefore + 2);
  EXPECT_FALSE(H.inNursery(Folded));
  R.V = Value::object(Folded);

  // The donated object is now an old-space object of the main heap, so
  // a store of a main-heap nursery value into it is an old-to-young
  // edge that must survive the main heap's minor collection.
  Value Young = Value::string(H.allocate<JSString>("donated-edge"));
  Folded->setProperty(T, 1, Young);
  H.writeBarrier(Folded, Young);

  H.minorCollect();
  JSObject *O = R.V.asObject();
  EXPECT_EQ(O->getProperty(0).asString()->str(), "folded");
  EXPECT_EQ(O->getProperty(1).asString()->str(), "donated-edge");

  // And it dies in a major collection once unrooted, like any native.
  R.V = Value::undefined();
  H.collect();
  EXPECT_EQ(H.objectCount(), OldBefore);
}

TEST(GCGen, StressedScriptStoresSurviveEveryCollection) {
  // End-to-end: under GC stress every allocation safepoint runs a
  // moving minor collection, so each of these property / element /
  // closure-slot stores crosses at least one collection before it is
  // read back. Output equality with the expected text proves every
  // old-to-young edge the interpreter's barriered store sites created
  // was scanned.
  Runtime RT;
  RT.heap().setGCStress(true);
  Value V = RT.evaluate(
      "var objs = new Array();"
      "function mk(i) { var o = {}; o.tag = 'o' + i; return o; }"
      "function cell(v) { return function() { return v; }; }"
      "var fs = new Array();"
      "for (var i = 0; i < 40; i++) {"
      "  objs.push(mk(i));"
      "  objs[i].next = mk(i + 100);"
      "  fs.push(cell('c' + i));"
      "}"
      "var ok = 0;"
      "for (var i = 0; i < 40; i++) {"
      "  if (objs[i].tag == 'o' + i) ok++;"
      "  if (objs[i].next.tag == 'o' + (i + 100)) ok++;"
      "  if (fs[i]() == 'c' + i) ok++;"
      "}"
      "print(ok);");
  EXPECT_FALSE(RT.hasError()) << RT.errorMessage();
  EXPECT_EQ(RT.output(), "120\n");
  if (RT.heap().nurseryEnabled()) {
    EXPECT_GT(RT.heap().minorCount(), 0u);
  }
  (void)V;
}

TEST(GCGen, StressedEngineWithWorkersStaysCorrect) {
  // Background compiles donate fold-heap constants into the main heap
  // and tenure task snapshots with a moving minor collection at every
  // enqueue. Under stress, with drained background workers, the
  // observable output must still match the plain interpreter.
  const char *Src =
      "function hot(o, i) { o.sum = o.sum + i; return o.sum; }"
      "var acc = {}; acc.sum = 0;"
      "var last = 0;"
      "for (var i = 0; i < 200; i++) { last = hot(acc, i); }"
      "print(last);";

  Runtime Ref;
  Ref.evaluate(Src);
  ASSERT_FALSE(Ref.hasError());

  Runtime RT;
  RT.heap().setGCStress(true);
  EngineKnobs K;
  K.CallThreshold = 3;
  K.LoopThreshold = 20;
  K.CompileThreads = 2;
  K.CompileDrain = true;
  Engine E(RT, OptConfig::all(), K);
  RT.evaluate(Src);
  EXPECT_FALSE(RT.hasError()) << RT.errorMessage();
  EXPECT_EQ(RT.output(), Ref.output());
  EXPECT_GT(E.stats().Compilations, 0u);
}

} // namespace
