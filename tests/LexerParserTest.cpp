//===- tests/LexerParserTest.cpp - Front-end unit tests -------------------===//

#include "parser/Lexer.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

using namespace jitvs;

namespace {

std::vector<Token> lexAll(const std::string &Src) {
  Lexer L(Src);
  std::vector<Token> Out;
  while (true) {
    Token T = L.next();
    Out.push_back(T);
    if (T.Kind == TokKind::Eof || T.Kind == TokKind::Error)
      break;
  }
  return Out;
}

TEST(Lexer, Numbers) {
  auto Ts = lexAll("0 42 3.14 1e3 2.5e-2 0xff 0xDEAD");
  ASSERT_EQ(Ts.size(), 8u);
  EXPECT_EQ(Ts[0].NumValue, 0.0);
  EXPECT_TRUE(Ts[0].IsIntLiteral);
  EXPECT_EQ(Ts[1].NumValue, 42.0);
  EXPECT_DOUBLE_EQ(Ts[2].NumValue, 3.14);
  EXPECT_FALSE(Ts[2].IsIntLiteral);
  EXPECT_EQ(Ts[3].NumValue, 1000.0);
  EXPECT_DOUBLE_EQ(Ts[4].NumValue, 0.025);
  EXPECT_EQ(Ts[5].NumValue, 255.0);
  EXPECT_TRUE(Ts[5].IsIntLiteral);
  EXPECT_EQ(Ts[6].NumValue, 57005.0);
}

TEST(Lexer, StringsAndEscapes) {
  auto Ts = lexAll(R"( "a\nb" 'it\'s' "tab\there" )");
  ASSERT_GE(Ts.size(), 3u);
  EXPECT_EQ(Ts[0].Text, "a\nb");
  EXPECT_EQ(Ts[1].Text, "it's");
  EXPECT_EQ(Ts[2].Text, "tab\there");
}

TEST(Lexer, OperatorsMaximalMunch) {
  auto Ts = lexAll(">>> >> > >= >>>= === == = != !== << <= ++ +=");
  std::vector<TokKind> Want = {
      TokKind::UShr, TokKind::Shr,     TokKind::Gt,     TokKind::Ge,
      TokKind::UShrAssign, TokKind::EqEqEq, TokKind::EqEq, TokKind::Assign,
      TokKind::NotEq, TokKind::NotEqEq, TokKind::Shl,    TokKind::Le,
      TokKind::PlusPlus, TokKind::PlusAssign, TokKind::Eof};
  ASSERT_EQ(Ts.size(), Want.size());
  for (size_t I = 0; I != Want.size(); ++I)
    EXPECT_EQ(Ts[I].Kind, Want[I]) << "token " << I;
}

TEST(Lexer, CommentsSkipped) {
  auto Ts = lexAll("a // line comment\n b /* block\n comment */ c");
  ASSERT_EQ(Ts.size(), 4u);
  EXPECT_EQ(Ts[0].Text, "a");
  EXPECT_EQ(Ts[1].Text, "b");
  EXPECT_EQ(Ts[2].Text, "c");
}

TEST(Lexer, Keywords) {
  auto Ts = lexAll("var function typeof new this undefined");
  EXPECT_EQ(Ts[0].Kind, TokKind::KwVar);
  EXPECT_EQ(Ts[1].Kind, TokKind::KwFunction);
  EXPECT_EQ(Ts[2].Kind, TokKind::KwTypeof);
  EXPECT_EQ(Ts[3].Kind, TokKind::KwNew);
  EXPECT_EQ(Ts[4].Kind, TokKind::KwThis);
  EXPECT_EQ(Ts[5].Kind, TokKind::KwUndefined);
}

TEST(Lexer, UnterminatedString) {
  auto Ts = lexAll("'oops");
  EXPECT_EQ(Ts.back().Kind, TokKind::Error);
}

TEST(Parser, Precedence) {
  // 1 + 2 * 3 parses as 1 + (2 * 3).
  ParseResult R = parseProgram("var x = 1 + 2 * 3;");
  ASSERT_TRUE(R.ok()) << R.Error;
  const Stmt &S = *R.Program->Body[0];
  ASSERT_EQ(S.Kind, StmtKind::VarDecl);
  const Expr &E = *S.Inits[0];
  ASSERT_EQ(E.Kind, ExprKind::Binary);
  EXPECT_EQ(E.BOp, BinaryOp::Add);
  EXPECT_EQ(E.B->Kind, ExprKind::Binary);
  EXPECT_EQ(E.B->BOp, BinaryOp::Mul);
}

TEST(Parser, AssociativityOfAssignment) {
  // a = b = 1 parses as a = (b = 1).
  ParseResult R = parseProgram("a = b = 1;");
  ASSERT_TRUE(R.ok()) << R.Error;
  const Expr &E = *R.Program->Body[0]->E;
  ASSERT_EQ(E.Kind, ExprKind::Assign);
  EXPECT_EQ(E.B->Kind, ExprKind::Assign);
}

TEST(Parser, TernaryNesting) {
  ParseResult R = parseProgram("var x = a ? b : c ? d : e;");
  ASSERT_TRUE(R.ok()) << R.Error;
  const Expr &E = *R.Program->Body[0]->Inits[0];
  ASSERT_EQ(E.Kind, ExprKind::Conditional);
  EXPECT_EQ(E.C->Kind, ExprKind::Conditional); // Right-associative.
}

TEST(Parser, MemberCallChains) {
  ParseResult R = parseProgram("a.b.c(1)[2].d();");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Program->Body[0]->E->Kind, ExprKind::Call);
}

TEST(Parser, NewExpression) {
  ParseResult R = parseProgram("var p = new Point(1, 2);");
  ASSERT_TRUE(R.ok()) << R.Error;
  const Expr &E = *R.Program->Body[0]->Inits[0];
  ASSERT_EQ(E.Kind, ExprKind::New);
  EXPECT_EQ(E.Args.size(), 2u);
}

TEST(Parser, ForVariants) {
  EXPECT_TRUE(parseProgram("for (;;) break;").ok());
  EXPECT_TRUE(parseProgram("for (var i = 0; i < 3; i++) ;").ok());
  EXPECT_TRUE(parseProgram("for (i = 0; ; i++) break;").ok());
}

TEST(Parser, FunctionExpressionsAndDeclarations) {
  ParseResult R = parseProgram(
      "function named(a, b) { return a; }"
      "var anon = function(x) { return x; };"
      "var rec = function self(n) { return n; };");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Program->Body.size(), 3u);
}

TEST(Parser, ObjectLiteralKeyForms) {
  ParseResult R =
      parseProgram("var o = {plain: 1, 'quoted': 2, 42: 3};");
  ASSERT_TRUE(R.ok()) << R.Error;
  const Expr &E = *R.Program->Body[0]->Inits[0];
  ASSERT_EQ(E.Kind, ExprKind::ObjectLit);
  ASSERT_EQ(E.Props.size(), 3u);
  EXPECT_EQ(E.Props[0].first, "plain");
  EXPECT_EQ(E.Props[1].first, "quoted");
  EXPECT_EQ(E.Props[2].first, "42");
}

TEST(Parser, ErrorsHavePositions) {
  ParseResult R = parseProgram("var x = ;\n");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("1:"), std::string::npos) << R.Error;
}

TEST(Parser, ErrorOnBadAssignTarget) {
  ParseResult R = parseProgram("1 + 2 = 3;");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("assignment"), std::string::npos) << R.Error;
}

} // namespace
