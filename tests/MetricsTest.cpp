//===- tests/MetricsTest.cpp - Metrics registry, histograms, exporters ----===//
///
/// \file
/// The aggregation half of the observability layer: log-bucket math and
/// percentile interpolation, counter/sum saturation, the disabled-mask
/// no-op guarantee, phase self-time attribution (nested spans must not
/// double count), per-function profile merging, and a JSON snapshot
/// round-trip through the support/Json.h parser.
///
//===----------------------------------------------------------------------===//

#include "telemetry/Metrics.h"

#include "support/Json.h"
#include "vm/Runtime.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace jitvs;

namespace {

/// Resets the global registry around each test so metrics state never
/// leaks into (or out of) the rest of the suite.
class MetricsTest : public ::testing::Test {
protected:
  void SetUp() override {
    metrics().enable(false);
    metrics().reset();
  }
  void TearDown() override {
    metrics().enable(false);
    metrics().reset();
  }
};

// --- LogHistogram bucket math ----------------------------------------------

TEST_F(MetricsTest, HistogramBucketBoundaries) {
  EXPECT_EQ(LogHistogram::bucketFor(0), 0u);
  EXPECT_EQ(LogHistogram::bucketFor(1), 1u);
  EXPECT_EQ(LogHistogram::bucketFor(2), 2u);
  EXPECT_EQ(LogHistogram::bucketFor(3), 2u);
  EXPECT_EQ(LogHistogram::bucketFor(4), 3u);
  EXPECT_EQ(LogHistogram::bucketFor(1023), 10u);
  EXPECT_EQ(LogHistogram::bucketFor(1024), 11u);

  // Every value must land inside its bucket's [lo, hi] range.
  for (uint64_t V : {uint64_t(0), uint64_t(1), uint64_t(7), uint64_t(8),
                     uint64_t(1000), uint64_t(1) << 40, UINT64_MAX}) {
    size_t B = LogHistogram::bucketFor(V);
    if (B >= LogHistogram::NumBuckets)
      B = LogHistogram::NumBuckets - 1;
    EXPECT_GE(V, LogHistogram::bucketLo(B)) << "V=" << V;
    EXPECT_LE(V, LogHistogram::bucketHi(B)) << "V=" << V;
  }

  // Buckets tile the line: hi(B) + 1 == lo(B + 1).
  for (size_t B = 0; B + 2 < LogHistogram::NumBuckets; ++B)
    EXPECT_EQ(LogHistogram::bucketHi(B) + 1, LogHistogram::bucketLo(B + 1));
}

TEST_F(MetricsTest, HistogramSingleValuePercentiles) {
  LogHistogram H;
  H.record(42);
  EXPECT_EQ(H.count(), 1u);
  EXPECT_EQ(H.min(), 42u);
  EXPECT_EQ(H.max(), 42u);
  // Clamping to the observed range makes every percentile exact here.
  for (double P : {0.0, 50.0, 90.0, 99.0, 100.0})
    EXPECT_EQ(H.percentile(P), 42u) << "P=" << P;
}

TEST_F(MetricsTest, HistogramPercentileRanksAndBounds) {
  LogHistogram H;
  EXPECT_EQ(H.percentile(50), 0u); // Empty -> 0.

  for (uint64_t V = 1; V <= 1000; ++V)
    H.record(V);
  EXPECT_EQ(H.count(), 1000u);
  EXPECT_EQ(H.sum(), 500500u);
  EXPECT_EQ(H.percentile(0), 1u);
  EXPECT_EQ(H.percentile(100), 1000u);

  // Log buckets promise values exact to within 2x and monotone in P.
  uint64_t P50 = H.percentile(50), P90 = H.percentile(90),
           P99 = H.percentile(99);
  EXPECT_GE(P50, 250u);
  EXPECT_LE(P50, 1000u);
  EXPECT_GE(P90, 450u);
  EXPECT_LE(P90, 1000u);
  EXPECT_LE(P50, P90);
  EXPECT_LE(P90, P99);
  EXPECT_LE(P99, H.max());
}

TEST_F(MetricsTest, HistogramSumSaturates) {
  LogHistogram H;
  H.record(UINT64_MAX);
  H.record(10);
  EXPECT_EQ(H.sum(), UINT64_MAX); // Pegged, not wrapped.
  EXPECT_EQ(H.count(), 2u);
  EXPECT_EQ(H.max(), UINT64_MAX);
}

// --- Counters, gauges ------------------------------------------------------

TEST_F(MetricsTest, CounterSaturatesInsteadOfWrapping) {
  metrics().addCounter("sat", UINT64_MAX - 2);
  metrics().addCounter("sat", 1);
  EXPECT_EQ(metrics().counter("sat"), UINT64_MAX - 1);
  metrics().addCounter("sat", 100);
  EXPECT_EQ(metrics().counter("sat"), UINT64_MAX);
  metrics().addCounter("sat");
  EXPECT_EQ(metrics().counter("sat"), UINT64_MAX);

  EXPECT_EQ(metrics().counter("never-written"), 0u);
  metrics().setGauge("g", 2.5);
  EXPECT_DOUBLE_EQ(metrics().gauge("g"), 2.5);
  EXPECT_DOUBLE_EQ(metrics().gauge("never-written"), 0.0);
}

// --- The disabled gate -----------------------------------------------------

TEST_F(MetricsTest, DisabledTimerIsANoOp) {
  ASSERT_FALSE(metricsEnabled());
  {
    MetricsPhaseTimer T(Phase::Compile);
    MetricsPhaseTimer U(Phase::Codegen);
  }
  for (size_t I = 0; I != NumPhases; ++I)
    EXPECT_EQ(metrics().phase(static_cast<Phase>(I)).Count, 0u);
  EXPECT_EQ(metrics().totalSelfNs(), 0u);
}

TEST_F(MetricsTest, TimerLatchesEnabledStateAtConstruction) {
  metrics().enable();
  if (!metricsEnabled())
    GTEST_SKIP() << "built with JITVS_TELEMETRY_ENABLED=0";
  metrics().enable(false);
  // Enabling mid-span must not let the destructor pop a frame that was
  // never pushed (that would corrupt the attribution stack).
  {
    MetricsPhaseTimer T(Phase::Compile);
    metrics().enable();
  }
  EXPECT_EQ(metrics().phase(Phase::Compile).Count, 0u);

  // And the converse: a span started enabled completes even if metrics
  // are disabled before it ends.
  {
    MetricsPhaseTimer T(Phase::Compile);
    metrics().enable(false);
  }
  EXPECT_EQ(metrics().phase(Phase::Compile).Count, 1u);
}

TEST_F(MetricsTest, TimerStopEndsSpanEarlyAndOnce) {
  metrics().enable();
  if (!metricsEnabled())
    GTEST_SKIP() << "built with JITVS_TELEMETRY_ENABLED=0";
  {
    MetricsPhaseTimer T(Phase::Bailout);
    T.stop();
    T.stop(); // Second stop (and the destructor) must be no-ops.
    EXPECT_EQ(metrics().phase(Phase::Bailout).Count, 1u);
  }
  EXPECT_EQ(metrics().phase(Phase::Bailout).Count, 1u);
}

// --- Phase self-time attribution -------------------------------------------

TEST_F(MetricsTest, NestedPhasesAttributeSelfTimeExactly) {
  metrics().enable();
  metrics().enterPhase(Phase::Script);
  metrics().enterPhase(Phase::Interpret);
  // Do a little real work so the spans have nonzero width.
  volatile uint64_t Sink = 0;
  for (int I = 0; I != 100000; ++I)
    Sink += static_cast<uint64_t>(I) * 7;
  metrics().exitPhase(Phase::Interpret);
  metrics().exitPhase(Phase::Script);

  const Metrics::PhaseStat &S = metrics().phase(Phase::Script);
  const Metrics::PhaseStat &I = metrics().phase(Phase::Interpret);
  EXPECT_EQ(S.Count, 1u);
  EXPECT_EQ(I.Count, 1u);
  // With a single child the arithmetic is exact, not approximate:
  // script self = script inclusive - interpret inclusive.
  EXPECT_EQ(S.SelfNs + I.TotalNs, S.TotalNs);
  EXPECT_EQ(I.SelfNs, I.TotalNs); // Leaf phase: all time is self.
  EXPECT_LE(I.TotalNs, S.TotalNs);
  EXPECT_EQ(S.SpanNs.count(), 1u);
  EXPECT_EQ(S.SpanNs.max(), S.TotalNs);
}

TEST_F(MetricsTest, UnbalancedExitsAreDropped) {
  metrics().enable();
  metrics().exitPhase(Phase::GC); // Empty stack: must not crash.
  metrics().enterPhase(Phase::Compile);
  metrics().exitPhase(Phase::GC); // Mismatch: dropped, frame consumed.
  EXPECT_EQ(metrics().phase(Phase::GC).Count, 0u);
  EXPECT_EQ(metrics().phase(Phase::Compile).Count, 0u);
}

// --- Per-function profiles -------------------------------------------------

TEST_F(MetricsTest, FunctionProfilesMergeAndSort) {
  metrics().enable();
  metrics().functionTick("hot");
  metrics().functionTick("hot");
  metrics().functionTick("cold");

  Metrics::FunctionMetrics Delta;
  Delta.Compiles = 2;
  Delta.CompileNs = 5000;
  Delta.NativeRuns = 10;
  Delta.Bailouts = 2;
  metrics().mergeFunction("hot", Delta);
  metrics().mergeFunction("hot", Delta);

  const auto &Funcs = metrics().functions();
  ASSERT_TRUE(Funcs.count("hot"));
  EXPECT_EQ(Funcs.at("hot").Ticks, 2u);
  EXPECT_EQ(Funcs.at("hot").Compiles, 4u);
  EXPECT_EQ(Funcs.at("hot").CompileNs, 10000u);
  EXPECT_DOUBLE_EQ(Funcs.at("hot").guardFailRate(), 4.0 / 20.0);
  EXPECT_DOUBLE_EQ(Funcs.at("cold").guardFailRate(), 0.0);

  auto Sorted = metrics().functionsByTicks();
  ASSERT_EQ(Sorted.size(), 2u);
  EXPECT_EQ(Sorted[0].first, "hot");
  EXPECT_EQ(Sorted[1].first, "cold");
}

// --- Snapshot round-trip through the JSON parser ---------------------------

TEST_F(MetricsTest, JsonSnapshotRoundTrips) {
  metrics().enable();
  metrics().addCounter("engine.compilations", 3);
  metrics().setGauge("engine.compile_seconds", 0.25);
  metrics().recordPass("GVN", 1500);
  metrics().enterPhase(Phase::Compile);
  metrics().exitPhase(Phase::Compile);
  metrics().functionTick("f \"quoted\"\n"); // Escaping must survive.
  Metrics::FunctionMetrics Delta;
  Delta.Bailouts = 1;
  metrics().mergeFunction("f \"quoted\"\n", Delta);

  std::ostringstream SS;
  metrics().writeJson(SS);

  std::string Err;
  auto Doc = json::parse(SS.str(), &Err);
  ASSERT_TRUE(Doc) << Err;
  ASSERT_TRUE(Doc->isObject());
  ASSERT_TRUE(Doc->get("schema"));
  EXPECT_EQ(Doc->get("schema")->Str, Metrics::JsonSchema);

  const json::Value *Counters = Doc->get("counters");
  ASSERT_TRUE(Counters && Counters->isObject());
  ASSERT_TRUE(Counters->get("engine.compilations"));
  EXPECT_DOUBLE_EQ(Counters->get("engine.compilations")->Num, 3.0);

  const json::Value *Phases = Doc->get("phases");
  ASSERT_TRUE(Phases && Phases->isArray());
  ASSERT_EQ(Phases->Arr.size(), 1u); // Only non-empty phases appear.
  EXPECT_EQ(Phases->Arr[0].get("phase")->Str, "compile");
  EXPECT_TRUE(Phases->Arr[0].get("spans")->get("p50Ns"));

  const json::Value *Passes = Doc->get("passes");
  ASSERT_TRUE(Passes && Passes->isArray());
  ASSERT_EQ(Passes->Arr.size(), 1u);
  EXPECT_EQ(Passes->Arr[0].get("pass")->Str, "GVN");

  const json::Value *Funcs = Doc->get("functions");
  ASSERT_TRUE(Funcs && Funcs->isArray());
  ASSERT_EQ(Funcs->Arr.size(), 1u);
  EXPECT_EQ(Funcs->Arr[0].get("name")->Str, "f \"quoted\"\n");
  EXPECT_DOUBLE_EQ(Funcs->Arr[0].get("bailouts")->Num, 1.0);
}

TEST_F(MetricsTest, PrometheusExposition) {
  metrics().enable();
  metrics().addCounter("engine.bailouts", 7);
  metrics().enterPhase(Phase::GC);
  metrics().exitPhase(Phase::GC);

  std::ostringstream SS;
  metrics().writePrometheus(SS);
  std::string Out = SS.str();
  EXPECT_NE(Out.find("# TYPE jitvs_counter_total counter"),
            std::string::npos);
  EXPECT_NE(Out.find("jitvs_counter_total{name=\"engine.bailouts\"} 7"),
            std::string::npos);
  EXPECT_NE(Out.find("jitvs_phase_spans_total{phase=\"gc\"} 1"),
            std::string::npos);
  EXPECT_NE(Out.find("quantile=\"0.99\""), std::string::npos);
}

// --- End-to-end: a script run populates the registry -----------------------

TEST_F(MetricsTest, ScriptRunPopulatesPhasesAndTicks) {
  metrics().enable();
  if (!metricsEnabled())
    GTEST_SKIP() << "built with JITVS_TELEMETRY_ENABLED=0";
  Runtime RT;
  RT.evaluate("function f(x) { return x + 1; }"
              "var s = 0; for (var i = 0; i < 10; i++) s = f(s);");
  ASSERT_FALSE(RT.hasError());
  EXPECT_EQ(metrics().phase(Phase::Script).Count, 1u);
  EXPECT_GE(metrics().phase(Phase::Interpret).Count, 1u);
  ASSERT_TRUE(metrics().functions().count("f"));
  EXPECT_EQ(metrics().functions().at("f").Ticks, 10u);
}

} // namespace
