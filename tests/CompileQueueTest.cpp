//===- tests/CompileQueueTest.cpp - Background compiler unit tests --------===//
///
/// \file
/// The off-thread compilation pipeline: queue dedup/coalescing and
/// priority ordering, shutdown with jobs still pending, cross-thread
/// result publication through the atomic Result slot, deferred code
/// reclamation, and the engine-level drain mode that makes background
/// compiles land at the same trigger points as the synchronous pipeline.
///
//===----------------------------------------------------------------------===//

#include "jit/CompileQueue.h"
#include "jit/Engine.h"
#include "native/NativeCode.h"
#include "vm/Runtime.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

using namespace jitvs;

namespace {

std::shared_ptr<CompileTask> makeTask(FunctionInfo *Info, bool IsOsr,
                                      CompilePriority Priority) {
  auto T = std::make_shared<CompileTask>();
  T->Info = Info;
  T->IsOsr = IsOsr;
  T->Priority = Priority;
  return T;
}

/// A gate the test holds closed while it stuffs the queue, so pop order
/// is decided by the priority comparator and not by racing enqueues.
struct Gate {
  std::atomic<bool> Entered{false};
  std::atomic<bool> Open{false};
  void waitEntered() const {
    while (!Entered.load(std::memory_order_acquire))
      std::this_thread::yield();
  }
  void block() {
    Entered.store(true, std::memory_order_release);
    while (!Open.load(std::memory_order_acquire))
      std::this_thread::yield();
  }
};

TEST(CompileQueue, DedupCoalescesAndPromotesPriority) {
  FunctionInfo Gatekeeper, A, B, C;
  Gate G;
  std::vector<FunctionInfo *> Order;
  std::mutex OrderMu;
  CompileQueue Q(/*NumThreads=*/1, /*Bound=*/16,
                 [&](CompileTask &Task, unsigned) {
                   if (Task.Info == &Gatekeeper)
                     G.block();
                   std::lock_guard<std::mutex> Lock(OrderMu);
                   Order.push_back(Task.Info);
                 });

  // Occupy the single worker so everything below stays pending.
  ASSERT_EQ(Q.enqueue(makeTask(&Gatekeeper, false, CompilePriority::Recompile)),
            CompileQueue::EnqueueResult::Queued);
  G.waitEntered();

  EXPECT_EQ(Q.enqueue(makeTask(&A, false, CompilePriority::FirstCompile)),
            CompileQueue::EnqueueResult::Queued);
  EXPECT_EQ(Q.enqueue(makeTask(&B, false, CompilePriority::FirstCompile)),
            CompileQueue::EnqueueResult::Queued);
  // Same key folds into the pending job instead of queueing twice...
  EXPECT_EQ(Q.enqueue(makeTask(&A, false, CompilePriority::FirstCompile)),
            CompileQueue::EnqueueResult::Coalesced);
  // ...and a more urgent duplicate promotes it past earlier arrivals.
  EXPECT_EQ(Q.enqueue(makeTask(&B, false, CompilePriority::Recompile)),
            CompileQueue::EnqueueResult::Coalesced);
  // Entry and OSR jobs for one function are distinct keys.
  EXPECT_EQ(Q.enqueue(makeTask(&A, true, CompilePriority::FirstCompile)),
            CompileQueue::EnqueueResult::Queued);
  EXPECT_EQ(Q.enqueue(makeTask(&C, false, CompilePriority::Recompile)),
            CompileQueue::EnqueueResult::Queued);
  // Coalescing also applies to the job the worker is running right now.
  EXPECT_EQ(Q.enqueue(makeTask(&Gatekeeper, false, CompilePriority::Recompile)),
            CompileQueue::EnqueueResult::Coalesced);
  EXPECT_EQ(Q.depth(), 4u);

  G.Open.store(true, std::memory_order_release);
  Q.drain();

  // Recompiles (B promoted, C) outrank first compiles; FIFO within a
  // priority class (B before C, A-entry before A-OSR).
  std::vector<FunctionInfo *> Expected = {&Gatekeeper, &B, &C, &A, &A};
  EXPECT_EQ(Order, Expected);

  CompileQueue::Counters Counts = Q.counters();
  EXPECT_EQ(Counts.Enqueued, 5u);
  EXPECT_EQ(Counts.Coalesced, 3u);
  EXPECT_EQ(Counts.Compiled, 5u);
  EXPECT_EQ(Counts.RejectedFull, 0u);
}

TEST(CompileQueue, BoundedBacklogRejectsWhenFull) {
  FunctionInfo F[4];
  CompileQueue Q(/*NumThreads=*/0, /*Bound=*/2,
                 [](CompileTask &, unsigned) {});
  EXPECT_EQ(Q.enqueue(makeTask(&F[0], false, CompilePriority::FirstCompile)),
            CompileQueue::EnqueueResult::Queued);
  EXPECT_EQ(Q.enqueue(makeTask(&F[1], false, CompilePriority::FirstCompile)),
            CompileQueue::EnqueueResult::Queued);
  EXPECT_EQ(Q.enqueue(makeTask(&F[2], false, CompilePriority::FirstCompile)),
            CompileQueue::EnqueueResult::Full);
  EXPECT_EQ(Q.counters().RejectedFull, 1u);
  // A duplicate of a pending key still coalesces at the bound.
  EXPECT_EQ(Q.enqueue(makeTask(&F[0], false, CompilePriority::FirstCompile)),
            CompileQueue::EnqueueResult::Coalesced);
}

TEST(CompileQueue, ShutdownDropsPendingJobs) {
  FunctionInfo F[3];
  // No workers: everything enqueued stays pending until shutdown.
  CompileQueue Q(/*NumThreads=*/0, /*Bound=*/16,
                 [](CompileTask &, unsigned) {});
  for (auto &Fi : F)
    ASSERT_EQ(Q.enqueue(makeTask(&Fi, false, CompilePriority::FirstCompile)),
              CompileQueue::EnqueueResult::Queued);
  EXPECT_EQ(Q.depth(), 3u);
  Q.shutdown();
  EXPECT_EQ(Q.depth(), 0u);
  CompileQueue::Counters Counts = Q.counters();
  EXPECT_EQ(Counts.DroppedAtShutdown, 3u);
  EXPECT_EQ(Counts.Compiled, 0u);
  // Idempotent, and a stopped queue accepts nothing.
  Q.shutdown();
  EXPECT_EQ(Q.enqueue(makeTask(&F[0], false, CompilePriority::FirstCompile)),
            CompileQueue::EnqueueResult::Full);
}

TEST(CompileQueue, PublicationIsVisibleThroughAcquireLoad) {
  FunctionInfo FI;
  CompileQueue Q(/*NumThreads=*/1, /*Bound=*/16,
                 [](CompileTask &Task, unsigned WorkerIdx) {
                   EXPECT_EQ(WorkerIdx, 0u);
                   auto Out = std::make_unique<CompileOutcome>();
                   Out->Seconds = 1.25;
                   Out->Specialized = true;
                   Task.Result.store(Out.release(),
                                     std::memory_order_release);
                 });
  auto Task = makeTask(&FI, false, CompilePriority::FirstCompile);
  ASSERT_EQ(Q.enqueue(Task), CompileQueue::EnqueueResult::Queued);

  // Spin exactly the way the engine's pump does: acquire loads until the
  // worker's release store becomes visible. Everything the worker wrote
  // before the store must be visible after it.
  const CompileOutcome *Out;
  while (!(Out = Task->Result.load(std::memory_order_acquire)))
    std::this_thread::yield();
  EXPECT_EQ(Out->Seconds, 1.25);
  EXPECT_TRUE(Out->Specialized);

  while (!Q.hasCompleted())
    std::this_thread::yield();
  auto Done = Q.takeCompleted();
  ASSERT_EQ(Done.size(), 1u);
  EXPECT_EQ(Done[0].get(), Task.get());
  EXPECT_FALSE(Q.hasCompleted());
  EXPECT_TRUE(Q.takeCompleted().empty());
}

TEST(CodeReclaimer, NeverFreesCodeWithLiveReferences) {
  FunctionInfo FI;
  CodeReclaimer R;
  auto Code = std::make_shared<NativeCode>(&FI);
  std::weak_ptr<NativeCode> Watch = Code;
  std::shared_ptr<NativeCode> LiveFrame = Code; // An executing frame.

  R.retire(std::move(Code));
  EXPECT_EQ(R.pending(), 1u);
  // Epochs advance, but the live reference pins the entry indefinitely.
  for (int I = 0; I != 5; ++I)
    R.tick();
  EXPECT_EQ(R.pending(), 1u);
  EXPECT_FALSE(Watch.expired());

  // Retained entries stay visible to the GC root walk.
  size_t Visited = 0;
  R.forEachRetained([&](const NativeCode &C) {
    EXPECT_EQ(C.Info, &FI);
    ++Visited;
  });
  EXPECT_EQ(Visited, 1u);

  // Frame returns; the grace period has long elapsed, so the next epoch
  // tick reclaims it.
  LiveFrame.reset();
  R.tick();
  EXPECT_EQ(R.pending(), 0u);
  EXPECT_TRUE(Watch.expired());
}

TEST(CodeReclaimer, HonorsEpochGracePeriod) {
  FunctionInfo FI;
  CodeReclaimer R;
  R.retire(std::make_shared<NativeCode>(&FI)); // Unreferenced immediately.
  // Freeing still waits two epochs: code retired at this dispatch
  // boundary may be re-entered until the caller crosses the next one.
  R.tick();
  EXPECT_EQ(R.pending(), 1u);
  R.tick();
  EXPECT_EQ(R.pending(), 0u);
}

TEST(AsyncEngine, DrainModeMatchesSynchronousPipeline) {
  const char *Source = "function f(x) { return x * 2 + 1; }"
                       "var s = 0;"
                       "for (var i = 0; i < 100; i++) s = s + f(7);"
                       "f(9);" // Despecialize: different argument.
                       "for (var i = 0; i < 100; i++) s = s + f(9);"
                       "print(s);";

  EngineKnobs Sync;
  Sync.CallThreshold = 10;
  Sync.LoopThreshold = 1000000; // Keep top-level code interpreted.
  EngineKnobs Async = Sync;
  Async.CompileThreads = 2;
  Async.CompileDrain = true;

  Runtime SyncRT;
  Engine SyncE(SyncRT, OptConfig::all(), Sync);
  SyncRT.evaluate(Source);
  ASSERT_FALSE(SyncRT.hasError());

  Runtime AsyncRT;
  Engine AsyncE(AsyncRT, OptConfig::all(), Async);
  EXPECT_EQ(AsyncE.compileThreads(), 2u);
  AsyncRT.evaluate(Source);
  ASSERT_FALSE(AsyncRT.hasError());

  // Drain mode reproduces the synchronous compilation story exactly:
  // same compiles, same specialization decisions, same despecialization.
  EXPECT_EQ(AsyncE.stats().Compilations, SyncE.stats().Compilations);
  EXPECT_EQ(AsyncE.stats().SpecializedCompiles,
            SyncE.stats().SpecializedCompiles);
  EXPECT_EQ(AsyncE.stats().GenericCompiles, SyncE.stats().GenericCompiles);
  EXPECT_EQ(AsyncE.stats().Despecializations,
            SyncE.stats().Despecializations);
  EXPECT_GT(AsyncE.stats().Compilations, 0u);
  // Every drain blocked the main thread, so stall time was recorded and
  // is bounded by total compile time plus scheduling noise.
  EXPECT_GT(AsyncE.stats().CompileStallSeconds, 0.0);
}

TEST(AsyncEngine, FreeRunningCompilePublishesAtDispatchBoundary) {
  EngineKnobs Knobs;
  Knobs.CallThreshold = 5;
  Knobs.LoopThreshold = 1000000;
  Knobs.CompileThreads = 1; // Free-running: no drain.

  Runtime RT;
  Engine E(RT, OptConfig::all(), Knobs);
  RT.evaluate("function f(x) { return x + 1; }"
              "for (var i = 0; i < 20; i++) f(7);");
  ASSERT_FALSE(RT.hasError());

  // The compile was requested (threshold crossed) but may still be in
  // flight; the caller kept interpreting rather than stalling. Every
  // call meanwhile was interpreted or ran an installed body — never
  // blocked on the worker.
  E.drainCompiles(); // Settle, then install at this dispatch boundary.
  EXPECT_EQ(E.pendingCompiles(), 0u);
  EXPECT_EQ(E.stats().Compilations, 1u);
  EXPECT_EQ(E.stats().SpecializedCompiles, 1u);
  EXPECT_EQ(E.stats().NativeCalls + E.stats().InterpretedCalls, 20u);
}

} // namespace
