//===- tests/MIRBuilderTest.cpp - Bytecode -> SSA translation tests -------===//
///
/// \file
/// Shapes of built graphs: entry/OSR anatomy (Figure 6), resume-point
/// state capture, phi placement at merges and loop headers, feedback-
/// driven instruction selection, and inline-mode construction.
///
//===----------------------------------------------------------------------===//

#include "mir/MIRBuilder.h"
#include "mir/Verifier.h"
#include "vm/Runtime.h"

#include <gtest/gtest.h>

using namespace jitvs;

namespace {

struct BuilderTester {
  explicit BuilderTester(const std::string &Source) {
    EXPECT_TRUE(RT.load(Source)) << RT.errorMessage();
    RT.run();
    EXPECT_FALSE(RT.hasError()) << RT.errorMessage();
  }

  FunctionInfo *function(const std::string &Name) {
    for (size_t I = 0; I != RT.program()->numFunctions(); ++I) {
      FunctionInfo *F = RT.program()->function(static_cast<uint32_t>(I));
      if (F->Name == Name)
        return F;
    }
    return nullptr;
  }

  uint32_t firstLoopHead(FunctionInfo *F) {
    for (uint32_t PC = 0; PC < F->Code.size();
         PC += F->instructionLength(PC))
      if (F->opAt(PC) == Op::LoopHead)
        return PC;
    return ~0u;
  }

  Runtime RT;
};

size_t count(const MIRGraph &G, MirOp Op) {
  size_t N = 0;
  for (const auto &B : G.blocks()) {
    if (B->isDead())
      continue;
    for (const MInstr *I : B->phis())
      if (I->op() == Op)
        ++N;
    for (const MInstr *I : B->instructions())
      if (I->op() == Op)
        ++N;
  }
  return N;
}

TEST(MIRBuilder, EntryAnatomyMatchesFigure6) {
  BuilderTester T("function f(a) { return a; } f(1);");
  auto G = buildMIR(T.function("f"), BuildOptions());
  ASSERT_NE(G->entry(), nullptr);
  EXPECT_EQ(G->osrBlock(), nullptr);
  // Entry holds start, parameter defs and the recursion check.
  EXPECT_EQ(count(*G, MirOp::Start), 1u);
  EXPECT_EQ(count(*G, MirOp::Parameter), 1u);
  EXPECT_EQ(count(*G, MirOp::CheckOverRecursed), 1u);
  // The entry block records its frame state for entry guards.
  EXPECT_NE(G->entry()->entryResumePoint(), nullptr);
  EXPECT_EQ(verifyGraph(*G), "");
}

TEST(MIRBuilder, OsrBlockIsASecondRoot) {
  BuilderTester T("function f(n) { var s = 0;"
                  "  for (var i = 0; i < n; i++) s += i;"
                  "  return s; } f(3);");
  FunctionInfo *F = T.function("f");
  BuildOptions Opts;
  Opts.OsrPc = T.firstLoopHead(F);
  ASSERT_NE(*Opts.OsrPc, ~0u);
  auto G = buildMIR(F, Opts);
  ASSERT_NE(G->osrBlock(), nullptr);
  // OSR block: one OsrValue per frame slot, then a goto into the loop.
  EXPECT_EQ(count(*G, MirOp::OsrValue), F->NumSlots);
  ASSERT_NE(G->osrBlock()->entryResumePoint(), nullptr);
  EXPECT_EQ(G->osrBlock()->entryResumePoint()->pc(), *Opts.OsrPc);
  // The loop header now merges three paths: entry, OSR, back edge.
  bool FoundTriplePhi = false;
  for (const auto &B : G->blocks())
    if (!B->isDead())
      for (const MInstr *Phi : B->phis())
        if (Phi->numOperands() == 3)
          FoundTriplePhi = true;
  EXPECT_TRUE(FoundTriplePhi);
  EXPECT_EQ(verifyGraph(*G), "");
}

TEST(MIRBuilder, SpecializedOsrBakesSlotValues) {
  // Figure 7(a): both entry points get constants under specialization.
  BuilderTester T("function f(n) { var s = 0;"
                  "  for (var i = 0; i < n; i++) s += i;"
                  "  return s; } f(10);");
  FunctionInfo *F = T.function("f");
  BuildOptions Opts;
  Opts.OsrPc = T.firstLoopHead(F);
  Opts.SpecializedArgs = std::vector<Value>{Value::int32(10)};
  Opts.OsrSlotValues = {Value::int32(10), Value::int32(3),
                        Value::int32(2)};
  auto G = buildMIR(F, Opts);
  EXPECT_EQ(count(*G, MirOp::OsrValue), 0u);
  EXPECT_EQ(count(*G, MirOp::Parameter), 0u);
  EXPECT_EQ(verifyGraph(*G), "");
}

TEST(MIRBuilder, ResumePointsCaptureOperandStack) {
  // The guard sits mid-expression: its resume point must include the
  // values already pushed for the enclosing expression.
  BuilderTester T("function f(a, b) { return (a + b) * (a - b); }"
                  "for (var i = 0; i < 6; i++) f(9, 4);");
  auto G = buildMIR(T.function("f"), BuildOptions());
  bool SawStackEntry = false;
  for (const auto &B : G->blocks()) {
    if (B->isDead())
      continue;
    for (const MInstr *I : B->instructions()) {
      if (const MResumePoint *RP = I->resumePoint()) {
        EXPECT_EQ(RP->numFrameSlots(), T.function("f")->NumSlots);
        if (RP->numEntries() > RP->numFrameSlots())
          SawStackEntry = true;
      }
    }
  }
  EXPECT_TRUE(SawStackEntry);
}

TEST(MIRBuilder, FeedbackSelectsInt32Arithmetic) {
  BuilderTester T("function f(a, b) { return a + b; }"
                  "for (var i = 0; i < 8; i++) f(1, 2);");
  auto G = buildMIR(T.function("f"), BuildOptions());
  EXPECT_EQ(count(*G, MirOp::AddI), 1u);
  EXPECT_EQ(count(*G, MirOp::GenericBinop), 0u);
}

TEST(MIRBuilder, FeedbackSelectsDoubleArithmetic) {
  BuilderTester T("function f(a, b) { return a + b; }"
                  "for (var i = 0; i < 8; i++) f(1.5, 2.5);");
  auto G = buildMIR(T.function("f"), BuildOptions());
  EXPECT_EQ(count(*G, MirOp::AddD), 1u);
  EXPECT_EQ(count(*G, MirOp::AddI), 0u);
}

TEST(MIRBuilder, OverflowFeedbackAvoidsInt32) {
  BuilderTester T("function f(a, b) { return a * b; }"
                  "f(100000, 100000);" // Overflows during warmup.
                  "for (var i = 0; i < 8; i++) f(2, 3);");
  auto G = buildMIR(T.function("f"), BuildOptions());
  // SawIntOverflow forces the double form despite int32 operands.
  EXPECT_EQ(count(*G, MirOp::MulI), 0u);
  EXPECT_EQ(count(*G, MirOp::MulD), 1u);
}

TEST(MIRBuilder, MixedFeedbackFallsBackToGeneric) {
  BuilderTester T("function f(a, b) { return a + b; }"
                  "f(1, 2); f('x', 'y'); f(1.5, 2);");
  auto G = buildMIR(T.function("f"), BuildOptions());
  EXPECT_EQ(count(*G, MirOp::GenericBinop), 1u);
}

TEST(MIRBuilder, StringConcatSpecializes) {
  BuilderTester T("function f(a, b) { return a + b; }"
                  "for (var i = 0; i < 8; i++) f('x', 'y');");
  auto G = buildMIR(T.function("f"), BuildOptions());
  EXPECT_EQ(count(*G, MirOp::Concat), 1u);
}

TEST(MIRBuilder, ArrayAccessGetsBoundsCheck) {
  BuilderTester T("function f(a, i) { return a[i]; }"
                  "var arr = [1, 2, 3];"
                  "for (var i = 0; i < 8; i++) f(arr, 1);");
  auto G = buildMIR(T.function("f"), BuildOptions());
  EXPECT_EQ(count(*G, MirOp::BoundsCheck), 1u);
  EXPECT_EQ(count(*G, MirOp::LoadElement), 1u);
  EXPECT_EQ(count(*G, MirOp::GenericGetElem), 0u);
}

TEST(MIRBuilder, OobFeedbackForcesGenericElem) {
  BuilderTester T("function f(a, i) { return a[i]; }"
                  "var arr = [1, 2, 3];"
                  "f(arr, 99);" // Out of bounds during warmup.
                  "for (var i = 0; i < 8; i++) f(arr, 1);");
  auto G = buildMIR(T.function("f"), BuildOptions());
  EXPECT_EQ(count(*G, MirOp::GenericGetElem), 1u);
  EXPECT_EQ(count(*G, MirOp::BoundsCheck), 0u);
}

TEST(MIRBuilder, MathIntrinsicsOnConstantReceiver) {
  BuilderTester T("function f(x) { return Math.sin(x) + Math.pow(x, 2); }"
                  "for (var i = 0; i < 8; i++) f(1.5);");
  auto G = buildMIR(T.function("f"), BuildOptions());
  // Math is a global object (not a constant in generic mode), so the
  // intrinsic only fires when Math is loaded as a constant... which
  // requires the receiver to be constant. The method-call IC saw Math's
  // shape at both sites, so the shape-specialized call form is built:
  // GuardShape + LoadSlot(callee) + CallWithThis. The second site cannot
  // reuse the first site's guard: the first call could transition shapes.
  EXPECT_EQ(count(*G, MirOp::CallMethod), 0u);
  EXPECT_EQ(count(*G, MirOp::CallWithThis), 2u);
  EXPECT_EQ(count(*G, MirOp::GuardShape), 2u);
}

TEST(MIRBuilder, CharCodeAtSpecializes) {
  BuilderTester T("function f(s, i) { return s.charCodeAt(i); }"
                  "for (var i = 0; i < 8; i++) f('hello', 1);");
  auto G = buildMIR(T.function("f"), BuildOptions());
  EXPECT_EQ(count(*G, MirOp::CharCodeAt), 1u);
  EXPECT_EQ(count(*G, MirOp::StringLength), 1u);
}

TEST(MIRBuilder, NewArrayLenFastPathNeedsConstantCallee) {
  BuilderTester T("function f(n) { return new Array(n); }"
                  "for (var i = 0; i < 8; i++) f(4);");
  // Generic build: Array is loaded from a mutable global, no fast path.
  auto G = buildMIR(T.function("f"), BuildOptions());
  EXPECT_EQ(count(*G, MirOp::New), 1u);
  EXPECT_EQ(count(*G, MirOp::NewArrayLen), 0u);
}

TEST(MIRBuilder, InlineModeIsGuardFree) {
  BuilderTester T("function callee(x) { return x + 1; }"
                  "for (var i = 0; i < 8; i++) callee(i);");
  FunctionInfo *Callee = T.function("callee");
  ASSERT_TRUE(isInlinableFunction(Callee, 400));

  // Host graph to build into.
  FunctionInfo *Main = T.RT.program()->main();
  MIRGraph Host(Main);
  MInstr *Arg = Host.createConstant(Value::int32(41));
  MBasicBlock *Entry = Host.createBlock();
  Host.setEntry(Entry);
  Entry->append(Arg);

  InlineBuildResult R = buildInlineMIR(Host, Callee, {Arg});
  ASSERT_TRUE(R.Ok);
  ASSERT_NE(R.EntryBlock, nullptr);
  ASSERT_EQ(R.Returns.size(), 1u);
  // Guard-free: no resume points anywhere in the inlined body.
  for (const auto &B : Host.blocks()) {
    if (B->isDead() || B.get() == Entry)
      continue;
    for (const MInstr *I : B->instructions()) {
      EXPECT_EQ(I->resumePoint(), nullptr) << I->toString();
      EXPECT_FALSE(I->isGuard()) << I->toString();
    }
  }
}

TEST(MIRBuilder, InlineRejectsClosures) {
  BuilderTester T("function callee(x) { return function() { return x; }; }"
                  "callee(1);");
  EXPECT_FALSE(isInlinableFunction(T.function("callee"), 400));
}

} // namespace
