//===- tests/ValueTest.cpp - Boxed value semantics -------------------------===//

#include "vm/GC.h"
#include "vm/Object.h"
#include "vm/Runtime.h"
#include "vm/Value.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace jitvs;

namespace {

TEST(Value, NumberCanonicalization) {
  EXPECT_TRUE(Value::number(5.0).isInt32());
  EXPECT_TRUE(Value::number(5.5).isDouble());
  EXPECT_TRUE(Value::number(-0.0).isDouble()); // -0 must stay a double.
  EXPECT_TRUE(Value::number(2147483647.0).isInt32());
  EXPECT_TRUE(Value::number(2147483648.0).isDouble());
  EXPECT_TRUE(Value::number(-2147483648.0).isInt32());
  EXPECT_TRUE(Value::number(-2147483649.0).isDouble());
}

TEST(Value, Truthiness) {
  Heap H;
  ShapeTree T;
  EXPECT_FALSE(Value::undefined().toBoolean());
  EXPECT_FALSE(Value::null().toBoolean());
  EXPECT_FALSE(Value::int32(0).toBoolean());
  EXPECT_FALSE(Value::makeDouble(-0.0).toBoolean());
  EXPECT_FALSE(Value::makeDouble(std::nan("")).toBoolean());
  EXPECT_FALSE(Value::string(H.allocate<JSString>("")).toBoolean());
  EXPECT_TRUE(Value::int32(-1).toBoolean());
  EXPECT_TRUE(Value::string(H.allocate<JSString>("x")).toBoolean());
  EXPECT_TRUE(Value::object(H.allocate<JSObject>(T.root())).toBoolean());
}

TEST(Value, StrictEquality) {
  Heap H;
  ShapeTree T;
  // Cross-tag numeric equality.
  EXPECT_TRUE(Value::int32(3).strictEquals(Value::makeDouble(3.0)));
  EXPECT_FALSE(Value::int32(3).strictEquals(Value::makeDouble(3.5)));
  // NaN != NaN.
  Value NaN = Value::makeDouble(std::nan(""));
  EXPECT_FALSE(NaN.strictEquals(NaN));
  // Strings by content, objects by identity.
  Value S1 = Value::string(H.allocate<JSString>("abc"));
  Value S2 = Value::string(H.allocate<JSString>("abc"));
  EXPECT_TRUE(S1.strictEquals(S2));
  Value O1 = Value::object(H.allocate<JSObject>(T.root()));
  Value O2 = Value::object(H.allocate<JSObject>(T.root()));
  EXPECT_FALSE(O1.strictEquals(O2));
  EXPECT_TRUE(O1.strictEquals(O1));
}

TEST(Value, SpecializationIdentity) {
  Heap H;
  // The cache identity treats NaN as equal to itself (bitwise compare).
  Value NaN = Value::makeDouble(std::nan(""));
  EXPECT_TRUE(NaN.sameSpecializationValue(NaN));
  // But Int32 3 and Double 3.0 are *different* specializations: the
  // compiled constants have different tags.
  EXPECT_FALSE(
      Value::int32(3).sameSpecializationValue(Value::makeDouble(3.0)));
  // Hash agrees with equality.
  Value A = Value::string(H.allocate<JSString>("k"));
  Value B = Value::string(H.allocate<JSString>("k"));
  EXPECT_TRUE(A.sameSpecializationValue(B));
  EXPECT_EQ(A.specializationHash(), B.specializationHash());
}

TEST(Value, DisplayStrings) {
  Heap H;
  ShapeTree T;
  EXPECT_EQ(Value::int32(-7).toDisplayString(), "-7");
  EXPECT_EQ(Value::makeDouble(2.5).toDisplayString(), "2.5");
  EXPECT_EQ(Value::makeDouble(1e21).toDisplayString(), "1e+21");
  EXPECT_EQ(Value::makeDouble(std::nan("")).toDisplayString(), "NaN");
  EXPECT_EQ(Value::makeDouble(INFINITY).toDisplayString(), "Infinity");
  EXPECT_EQ(Value::boolean(true).toDisplayString(), "true");
  EXPECT_EQ(Value::undefined().toDisplayString(), "undefined");
  EXPECT_EQ(Value::object(H.allocate<JSObject>(T.root())).toDisplayString(),
            "[object Object]");
}

TEST(Value, TypeOfStrings) {
  Heap H;
  EXPECT_STREQ(Value::int32(1).typeOfString(), "number");
  EXPECT_STREQ(Value::makeDouble(1.5).typeOfString(), "number");
  EXPECT_STREQ(Value::null().typeOfString(), "object");
  EXPECT_STREQ(Value::undefined().typeOfString(), "undefined");
  EXPECT_STREQ(Value::array(H.allocate<JSArray>()).typeOfString(),
               "object");
}

TEST(Conversions, ToInt32Wrapping) {
  EXPECT_EQ(Runtime::toInt32(0.0), 0);
  EXPECT_EQ(Runtime::toInt32(3.99), 3);
  EXPECT_EQ(Runtime::toInt32(-3.99), -3);
  EXPECT_EQ(Runtime::toInt32(std::nan("")), 0);
  EXPECT_EQ(Runtime::toInt32(INFINITY), 0);
  EXPECT_EQ(Runtime::toInt32(4294967296.0), 0);      // 2^32 wraps to 0.
  EXPECT_EQ(Runtime::toInt32(4294967297.0), 1);
  EXPECT_EQ(Runtime::toInt32(2147483648.0), INT32_MIN);
  EXPECT_EQ(Runtime::toInt32(-2147483649.0), 2147483647);
}

TEST(Conversions, ToNumberOnStrings) {
  Heap H;
  auto Str = [&H](const char *S) {
    return Value::string(H.allocate<JSString>(S));
  };
  EXPECT_EQ(Runtime::toNumber(Str("42")), 42.0);
  EXPECT_EQ(Runtime::toNumber(Str("  3.5  ")), 3.5);
  EXPECT_EQ(Runtime::toNumber(Str("")), 0.0);
  EXPECT_TRUE(std::isnan(Runtime::toNumber(Str("4x"))));
  EXPECT_TRUE(std::isnan(Runtime::toNumber(Value::undefined())));
  EXPECT_EQ(Runtime::toNumber(Value::null()), 0.0);
  EXPECT_EQ(Runtime::toNumber(Value::boolean(true)), 1.0);
}

TEST(GC, SweepFreesGarbage) {
  Heap H;
  H.setGCThreshold(1u << 30); // Manual collections only.
  class Roots final : public RootSource {
  public:
    explicit Roots(Heap &H) : H(H) { H.addRootSource(this); }
    ~Roots() override { H.removeRootSource(this); }
    void traceRoots(GCVisitor &Visitor) override {
      for (Value &V : Keep)
        Visitor.visit(V);
    }
    Heap &H;
    std::vector<Value> Keep;
  } R(H);

  for (int I = 0; I < 100; ++I) {
    Value S = Value::string(H.allocate<JSString>("tmp"));
    if (I % 10 == 0)
      R.Keep.push_back(S);
  }
  // New allocations land in the nursery; objectCount() is old-space only.
  EXPECT_EQ(H.objectCount() + H.nurseryCount(), 100u);
  H.collect();
  EXPECT_EQ(H.objectCount() + H.nurseryCount(), 10u);
  for (const Value &V : R.Keep)
    EXPECT_EQ(V.asString()->str(), "tmp");
}

TEST(GC, TracesThroughChains) {
  Heap H;
  H.setGCThreshold(1u << 30);
  class Roots final : public RootSource {
  public:
    explicit Roots(Heap &H) : H(H) { H.addRootSource(this); }
    ~Roots() override { H.removeRootSource(this); }
    void traceRoots(GCVisitor &Visitor) override { Visitor.visit(Root); }
    Heap &H;
    Value Root;
  } R(H);

  // Object -> array -> string chain, plus an environment chain.
  ShapeTree T;
  JSObject *O = H.allocate<JSObject>(T.root());
  R.Root = Value::object(O);
  JSArray *A = H.allocate<JSArray>();
  O->setProperty(T, 0, Value::array(A));
  A->push(Value::string(H.allocate<JSString>("deep")));
  Environment *Parent = H.allocate<Environment>(nullptr, 1);
  Environment *Child = H.allocate<Environment>(Parent, 1);
  Parent->setSlot(0, Value::string(H.allocate<JSString>("env")));
  JSFunction *F = H.allocate<JSFunction>(nullptr, Child);
  O->setProperty(T, 1, Value::function(F));

  size_t Before = H.objectCount() + H.nurseryCount();
  H.collect();
  // Everything reachable survives (promoted into the old generation).
  // The collection moved the objects, so re-derive every pointer through
  // the updated root instead of the stale pre-collection locals.
  EXPECT_EQ(H.objectCount() + H.nurseryCount(), Before);
  JSObject *Obj = R.Root.asObject();
  EXPECT_EQ(Obj->getProperty(0).asArray()->getDense(0).asString()->str(),
            "deep");
  Environment *Kid = Obj->getProperty(1).asFunction()->environment();
  EXPECT_EQ(Kid->parent()->getSlot(0).asString()->str(), "env");
}

} // namespace
