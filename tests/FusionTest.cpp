//===- tests/FusionTest.cpp - Macro-op fusion unit tests ------------------===//
///
/// \file
/// The post-regalloc peephole (native/Fusion.cpp): golden tests per fused
/// form on hand-built code, the legality rules (jump targets, swapped
/// operands, idempotence), the slot-preserving invariants (code size,
/// guard count, replicated register writes), bailout resume-point
/// reconstruction at fused guards, and a differential sweep of all three
/// workload suites with fusion on/off under both dispatch modes.
///
//===----------------------------------------------------------------------===//

#include "jit/Engine.h"
#include "lir/Codegen.h"
#include "mir/MIRBuilder.h"
#include "native/Executor.h"
#include "native/Fusion.h"
#include "passes/Passes.h"
#include "vm/Runtime.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace jitvs;

namespace {

/// Both dispatch modes, for tests that must hold under each. On a
/// compiler without computed goto the second entry degrades to Switch
/// inside the executor, which is exactly the shipped fallback behavior.
const DispatchMode BothModes[] = {DispatchMode::Switch, DispatchMode::Goto};

/// Executes hand-built \p Code with \p Args under \p Mode. The
/// default-constructed FunctionInfo has no environment slots, so the
/// executor prologue allocates nothing.
ExecResult runCode(const NativeCode &Code, std::vector<Value> Args,
                   DispatchMode Mode) {
  Runtime RT;
  Executor Exec(RT);
  Exec.setDispatchMode(Mode);
  return Exec.run(Code, Value::undefined(), Args.data(), Args.size(),
                  /*AtOsr=*/false, nullptr, 0, nullptr, nullptr);
}

NInstr instr(NOp Op, uint16_t A = 0, uint16_t B = 0, uint16_t C = 0,
             int32_t Imm = 0) {
  NInstr N;
  N.Op = Op;
  N.A = A;
  N.B = B;
  N.C = C;
  N.Imm = Imm;
  return N;
}

//===----------------------------------------------------------------------===//
// Golden peephole tests: one per fused form.
//===----------------------------------------------------------------------===//

TEST(Fusion, CmpBranchGolden) {
  FunctionInfo Info;
  NativeCode Code(&Info);
  // r2 = (p0 < p1); if (r2) return r2 else return r2 — both paths return
  // the flag register, proving the fused handler still materializes it.
  Code.Code = {
      instr(NOp::LoadParam, 0, 0, 0, 0),
      instr(NOp::LoadParam, 1, 0, 0, 1),
      instr(NOp::CmpI, 2, 0, 1, static_cast<int32_t>(Op::Lt)),
      instr(NOp::JTrue, 2, 0, 0, 5),
      instr(NOp::Ret, 2),
      instr(NOp::Ret, 2),
  };

  FusionStats Stats;
  unsigned Fused = fuseMacroOps(Code, &Stats);
  EXPECT_EQ(Fused, 1u);
  EXPECT_EQ(Stats.CmpBranch, 1u);
  EXPECT_EQ(Code.FusedPairs, 1u);
  // Slot-preserving rewrite: both slots still there, fields intact.
  ASSERT_EQ(Code.Code.size(), 6u);
  EXPECT_EQ(Code.Code[2].Op, NOp::BrCmpII);
  EXPECT_EQ(Code.Code[2].B, 0);
  EXPECT_EQ(Code.Code[2].C, 1);
  EXPECT_EQ(Code.Code[2].Imm, static_cast<int32_t>(Op::Lt));
  EXPECT_EQ(Code.Code[3].Op, NOp::FuseData);
  EXPECT_EQ(Code.Code[3].A, 2);
  EXPECT_EQ(Code.Code[3].B, 1) << "JTrue sense";
  EXPECT_EQ(Code.Code[3].Imm, 5);

  for (DispatchMode Mode : BothModes) {
    ExecResult Taken = runCode(Code, {Value::int32(1), Value::int32(2)}, Mode);
    ASSERT_EQ(Taken.K, ExecResult::Ok);
    ASSERT_TRUE(Taken.Result.isBoolean());
    EXPECT_TRUE(Taken.Result.asBoolean());

    ExecResult Fall = runCode(Code, {Value::int32(5), Value::int32(2)}, Mode);
    ASSERT_EQ(Fall.K, ExecResult::Ok);
    ASSERT_TRUE(Fall.Result.isBoolean());
    EXPECT_FALSE(Fall.Result.asBoolean());
  }
}

TEST(Fusion, CmpDoubleBranchGolden) {
  FunctionInfo Info;
  NativeCode Code(&Info);
  // Non-integral literals: Value::number canonicalizes integral doubles
  // to Int32, and CmpD operands must genuinely be doubles.
  uint16_t Ten = Code.addConstant(Value::number(10.5));
  uint16_t One = Code.addConstant(Value::number(1.25));
  // if (p0 >= 10.5) return 10.5 else return 1.0, via JFalse.
  Code.Code = {
      instr(NOp::LoadParam, 0, 0, 0, 0),
      instr(NOp::LoadConst, 1, 0, 0, Ten),
      instr(NOp::CmpD, 2, 0, 1, static_cast<int32_t>(Op::Ge)),
      instr(NOp::JFalse, 2, 0, 0, 6),
      instr(NOp::LoadConst, 3, 0, 0, Ten),
      instr(NOp::Ret, 3),
      instr(NOp::LoadConst, 3, 0, 0, One),
      instr(NOp::Ret, 3),
  };

  unsigned Fused = fuseMacroOps(Code);
  EXPECT_GE(Fused, 1u);
  EXPECT_EQ(Code.Code[2].Op, NOp::BrCmpDD);
  EXPECT_EQ(Code.Code[3].Op, NOp::FuseData);
  EXPECT_EQ(Code.Code[3].B, 0) << "JFalse sense";

  for (DispatchMode Mode : BothModes) {
    ExecResult Hi = runCode(Code, {Value::number(11.5)}, Mode);
    ASSERT_EQ(Hi.K, ExecResult::Ok);
    EXPECT_EQ(Hi.Result.asDouble(), 10.5);
    ExecResult Lo = runCode(Code, {Value::number(3.5)}, Mode);
    ASSERT_EQ(Lo.K, ExecResult::Ok);
    EXPECT_EQ(Lo.Result.asDouble(), 1.25);
  }
}

TEST(Fusion, ConstArithGolden) {
  FunctionInfo Info;
  NativeCode Code(&Info);
  uint16_t Five = Code.addConstant(Value::int32(5));
  // r1 = 5; r2 = p0 + r1; return r1 — returning the constant register
  // proves the fused handler replicates the LoadConst write.
  Code.Code = {
      instr(NOp::LoadParam, 0, 0, 0, 0),
      instr(NOp::LoadConst, 1, 0, 0, Five),
      instr(NOp::AddI, 2, 0, 1, /*snapshot*/ 0),
      instr(NOp::Ret, 1),
  };

  FusionStats Stats;
  unsigned Fused = fuseMacroOps(Code, &Stats);
  EXPECT_EQ(Fused, 1u);
  EXPECT_EQ(Stats.ConstArith, 1u);
  EXPECT_EQ(Code.Code[1].Op, NOp::AddIImm);
  EXPECT_EQ(Code.Code[1].Imm, Five);
  EXPECT_EQ(Code.Code[2].Op, NOp::FuseData);
  EXPECT_EQ(Code.Code[2].A, 2);
  EXPECT_EQ(Code.Code[2].B, 0);
  EXPECT_EQ(Code.Code[2].C, 1);

  for (DispatchMode Mode : BothModes) {
    ExecResult R = runCode(Code, {Value::int32(7)}, Mode);
    ASSERT_EQ(R.K, ExecResult::Ok);
    ASSERT_TRUE(R.Result.isInt32());
    EXPECT_EQ(R.Result.asInt32(), 5) << "constant register write lost";
  }

  // Same pair, but returning the sum.
  Code.Code[3] = instr(NOp::Ret, 2);
  for (DispatchMode Mode : BothModes) {
    ExecResult R = runCode(Code, {Value::int32(7)}, Mode);
    ASSERT_EQ(R.K, ExecResult::Ok);
    EXPECT_EQ(R.Result.asInt32(), 12);
  }
}

TEST(Fusion, CommutativeSwapNormalizesConstant) {
  FunctionInfo Info;
  NativeCode Code(&Info);
  uint16_t Three = Code.addConstant(Value::int32(3));
  // r2 = r1 * p0 with the constant on the LHS: MulI is commutative, so
  // the pass swaps the operands and fuses.
  Code.Code = {
      instr(NOp::LoadParam, 0, 0, 0, 0),
      instr(NOp::LoadConst, 1, 0, 0, Three),
      instr(NOp::MulI, 2, 1, 0, /*snapshot*/ 0),
      instr(NOp::Ret, 2),
  };
  EXPECT_EQ(fuseMacroOps(Code), 1u);
  EXPECT_EQ(Code.Code[1].Op, NOp::MulIImm);
  EXPECT_EQ(Code.Code[2].B, 0) << "operands normalized: lhs = parameter";
  EXPECT_EQ(Code.Code[2].C, 1) << "operands normalized: rhs = constant";
  for (DispatchMode Mode : BothModes) {
    ExecResult R = runCode(Code, {Value::int32(14)}, Mode);
    ASSERT_EQ(R.K, ExecResult::Ok);
    EXPECT_EQ(R.Result.asInt32(), 42);
  }
}

TEST(Fusion, NonCommutativeLhsConstantStaysUnfused) {
  FunctionInfo Info;
  NativeCode Code(&Info);
  uint16_t Hundred = Code.addConstant(Value::int32(100));
  // r2 = r1 - p0 with the constant on the LHS: SubI is not commutative,
  // so no swap is legal and the pair must stay as-is.
  Code.Code = {
      instr(NOp::LoadParam, 0, 0, 0, 0),
      instr(NOp::LoadConst, 1, 0, 0, Hundred),
      instr(NOp::SubI, 2, 1, 0, /*snapshot*/ 0),
      instr(NOp::Ret, 2),
  };
  EXPECT_EQ(fuseMacroOps(Code), 0u);
  EXPECT_EQ(Code.Code[1].Op, NOp::LoadConst);
  EXPECT_EQ(Code.Code[2].Op, NOp::SubI);
  for (DispatchMode Mode : BothModes) {
    ExecResult R = runCode(Code, {Value::int32(30)}, Mode);
    ASSERT_EQ(R.K, ExecResult::Ok);
    EXPECT_EQ(R.Result.asInt32(), 70);
  }
}

TEST(Fusion, GuardTagMovGolden) {
  FunctionInfo Info;
  NativeCode Code(&Info);
  // Checked unbox: guard p0 is int32, move it into r1.
  Code.Code = {
      instr(NOp::LoadParam, 0, 0, 0, 0),
      instr(NOp::GuardTag, 0, static_cast<uint16_t>(ValueTag::Int32), 0,
            /*snapshot*/ 7),
      instr(NOp::Mov, 1, 0, 0, 0),
      instr(NOp::Ret, 1),
  };

  FusionStats Stats;
  EXPECT_EQ(fuseMacroOps(Code, &Stats), 1u);
  EXPECT_EQ(Stats.GuardMov, 1u);
  EXPECT_EQ(Code.Code[1].Op, NOp::GuardTagMov);
  EXPECT_EQ(Code.Code[2].Op, NOp::FuseData);

  for (DispatchMode Mode : BothModes) {
    ExecResult Ok = runCode(Code, {Value::int32(9)}, Mode);
    ASSERT_EQ(Ok.K, ExecResult::Ok);
    EXPECT_EQ(Ok.Result.asInt32(), 9);

    // A double fails the tag guard: the fused op must report the
    // ORIGINAL opcode, the snapshot it carried, and a BailPc equal to
    // the fused slot so per-site counters key the same instruction.
    ExecResult Bail = runCode(Code, {Value::number(2.5)}, Mode);
    ASSERT_EQ(Bail.K, ExecResult::Bailout);
    EXPECT_EQ(Bail.BailOp, NOp::GuardTag);
    EXPECT_EQ(Bail.BailReason, BailoutReason::TypeGuard);
    EXPECT_EQ(Bail.SnapshotId, 7u);
    EXPECT_EQ(Bail.BailPc, 1u);
    EXPECT_EQ(Bail.RegsAtBail.size(), Code.FrameSize);
  }
}

TEST(Fusion, FusedOverflowBailsUnderOriginalOp) {
  FunctionInfo Info;
  NativeCode Code(&Info);
  uint16_t Big = Code.addConstant(Value::int32(2000000000));
  Code.Code = {
      instr(NOp::LoadParam, 0, 0, 0, 0),
      instr(NOp::LoadConst, 1, 0, 0, Big),
      instr(NOp::AddI, 2, 0, 1, /*snapshot*/ 3),
      instr(NOp::Ret, 2),
  };
  ASSERT_EQ(fuseMacroOps(Code), 1u);
  ASSERT_EQ(Code.Code[1].Op, NOp::AddIImm);

  for (DispatchMode Mode : BothModes) {
    ExecResult Ok = runCode(Code, {Value::int32(1)}, Mode);
    ASSERT_EQ(Ok.K, ExecResult::Ok);
    EXPECT_EQ(Ok.Result.asInt32(), 2000000001);

    ExecResult Bail = runCode(Code, {Value::int32(2000000000)}, Mode);
    ASSERT_EQ(Bail.K, ExecResult::Bailout);
    EXPECT_EQ(Bail.BailOp, NOp::AddI) << "feedback must see the original op";
    EXPECT_EQ(Bail.BailReason, BailoutReason::IntOverflow);
    EXPECT_EQ(Bail.SnapshotId, 3u);
    EXPECT_EQ(Bail.BailPc, 1u) << "per-site counters key the fused slot";
  }
}

//===----------------------------------------------------------------------===//
// Legality and invariants.
//===----------------------------------------------------------------------===//

TEST(Fusion, JumpTargetBlocksFusion) {
  FunctionInfo Info;
  NativeCode Code(&Info);
  uint16_t Five = Code.addConstant(Value::int32(5));
  // JTrue can land directly on the AddINoOvf (slot 3): fusing (2,3)
  // would make the branch land mid-pair on a FuseData slot.
  Code.Code = {
      instr(NOp::LoadParam, 0, 0, 0, 0),
      instr(NOp::JTrue, 0, 0, 0, 3),
      instr(NOp::LoadConst, 1, 0, 0, Five),
      instr(NOp::AddINoOvf, 2, 0, 1, 0),
      instr(NOp::Ret, 2),
  };
  EXPECT_EQ(fuseMacroOps(Code), 0u);
  EXPECT_EQ(Code.Code[2].Op, NOp::LoadConst);
  EXPECT_EQ(Code.Code[3].Op, NOp::AddINoOvf);
}

TEST(Fusion, IdempotentAndSizePreserving) {
  FunctionInfo Info;
  NativeCode Code(&Info);
  Code.Code = {
      instr(NOp::LoadParam, 0, 0, 0, 0),
      instr(NOp::LoadParam, 1, 0, 0, 1),
      instr(NOp::CmpI, 2, 0, 1, static_cast<int32_t>(Op::Eq)),
      instr(NOp::JFalse, 2, 0, 0, 5),
      instr(NOp::Ret, 0),
      instr(NOp::Ret, 1),
  };
  size_t SizeBefore = Code.sizeInInstructions();
  ASSERT_EQ(fuseMacroOps(Code), 1u);
  // The Figure-10 metric is invariant; only the dispatched count drops.
  EXPECT_EQ(Code.sizeInInstructions(), SizeBefore);
  EXPECT_EQ(Code.sizeInInstructionsPostFusion(), SizeBefore - 1);
  // Running the pass again finds nothing new and keeps the counters.
  EXPECT_EQ(fuseMacroOps(Code), 0u);
  EXPECT_EQ(Code.FusedPairs, 1u);
  EXPECT_EQ(Code.Code[2].Op, NOp::BrCmpII);
}

TEST(Fusion, GuardCountInvariant) {
  FunctionInfo Info;
  NativeCode Code(&Info);
  uint16_t Two = Code.addConstant(Value::int32(2));
  Code.Code = {
      instr(NOp::LoadParam, 0, 0, 0, 0),
      instr(NOp::GuardTag, 0, static_cast<uint16_t>(ValueTag::Int32), 0, 0),
      instr(NOp::Mov, 1, 0, 0, 0),
      instr(NOp::LoadConst, 2, 0, 0, Two),
      instr(NOp::MulI, 3, 1, 2, 1),
      instr(NOp::Ret, 3),
  };
  size_t GuardsBefore = Code.guardCount();
  EXPECT_EQ(fuseMacroOps(Code), 2u);
  // Guards folded into fused ops still count: tier-cost comparisons
  // rely on this metric staying monotone across compilation modes.
  EXPECT_EQ(Code.guardCount(), GuardsBefore);
}

//===----------------------------------------------------------------------===//
// Through the real pipeline: codegen output, bailout reconstruction.
//===----------------------------------------------------------------------===//

struct PipelineTester {
  explicit PipelineTester(const std::string &Source) {
    RT.evaluate(Source);
    EXPECT_FALSE(RT.hasError()) << RT.errorMessage();
  }

  FunctionInfo *function(const std::string &Name) {
    for (size_t I = 0; I != RT.program()->numFunctions(); ++I) {
      FunctionInfo *F = RT.program()->function(static_cast<uint32_t>(I));
      if (F->Name == Name)
        return F;
    }
    return nullptr;
  }

  std::unique_ptr<NativeCode> compile(const std::string &Name) {
    FunctionInfo *F = function(Name);
    EXPECT_NE(F, nullptr);
    BuildOptions Opts;
    auto G = buildMIR(F, Opts);
    runGVN(*G);
    return generateCode(*G);
  }

  Runtime RT;
};

TEST(Fusion, CodegenOutputFusesAndStillComputes) {
  PipelineTester T("function f(a) { return a * 3 + 7; }"
                   "for (var i = 0; i < 5; i++) f(2);");
  auto Code = T.compile("f");
  size_t SizeBefore = Code->sizeInInstructions();
  unsigned Fused = fuseMacroOps(*Code);
  // Codegen materializes fresh constants adjacent to their (commutative)
  // consumer, so const+arith pairs must appear here.
  EXPECT_GE(Fused, 1u);
  EXPECT_EQ(Code->sizeInInstructions(), SizeBefore);

  for (DispatchMode Mode : BothModes) {
    Executor Exec(T.RT);
    Exec.setDispatchMode(Mode);
    Value Arg = Value::int32(10);
    ExecResult R = Exec.run(*Code, Value::undefined(), &Arg, 1,
                            /*AtOsr=*/false, nullptr, 0, nullptr, nullptr);
    ASSERT_EQ(R.K, ExecResult::Ok);
    EXPECT_EQ(R.Result.asInt32(), 37);
  }
}

TEST(Fusion, BailoutAtFusedGuardReconstructsFrame) {
  // a + <large const> fuses into AddIImm; overflowing it must bail with
  // a live snapshot whose entries all point at valid frame locations.
  PipelineTester T("function f(a) { var x = a + 2000000000; return x - 1; }"
                   "for (var i = 0; i < 5; i++) f(1);");
  auto Code = T.compile("f");
  ASSERT_GE(fuseMacroOps(*Code), 1u);

  for (DispatchMode Mode : BothModes) {
    Executor Exec(T.RT);
    Exec.setDispatchMode(Mode);
    Value Big = Value::int32(2000000000);
    ExecResult R = Exec.run(*Code, Value::undefined(), &Big, 1,
                            /*AtOsr=*/false, nullptr, 0, nullptr, nullptr);
    ASSERT_EQ(R.K, ExecResult::Bailout);
    EXPECT_EQ(R.BailOp, NOp::AddI);
    EXPECT_EQ(R.RegsAtBail.size(), Code->FrameSize);
    // The fused slot owns the bail site, and its snapshot is intact.
    EXPECT_EQ(Code->Code[R.BailPc].Op, NOp::AddIImm);
    ASSERT_LT(R.SnapshotId, Code->Snapshots.size());
    const Snapshot &S = Code->Snapshots[R.SnapshotId];
    for (const SnapshotEntry &E : S.Entries) {
      if (E.IsConst)
        EXPECT_LT(E.Index, Code->ConstPool.size());
      else
        EXPECT_LT(E.Index, Code->FrameSize);
    }
  }
}

TEST(Fusion, EngineLevelBailoutMatchesInterpreter) {
  const char *Source =
      "function f(a) { return a + 1000000000; }"
      "var s = 0;"
      "for (var i = 0; i < 30; i++) s = f(i);"
      "print(s, f(2000000000));"; // Overflows inside the fused add.

  Runtime Interp;
  Interp.evaluate(Source);
  ASSERT_FALSE(Interp.hasError()) << Interp.errorMessage();

  for (DispatchMode Mode : BothModes) {
    Runtime RT;
    Engine E(RT, OptConfig::all());
    E.setCallThreshold(3);
    E.setFusion(true);
    E.setDispatchMode(Mode);
    RT.evaluate(Source);
    ASSERT_FALSE(RT.hasError()) << RT.errorMessage();
    EXPECT_EQ(RT.output(), Interp.output());
    EXPECT_GT(E.stats().FusedOps, 0u) << "fusion never fired";
    EXPECT_GT(E.stats().Bailouts, 0u) << "the overflow never bailed";
  }
}

//===----------------------------------------------------------------------===//
// Differential sweep: every workload, fusion on/off, both dispatch modes.
//===----------------------------------------------------------------------===//

class FusionDifferential : public ::testing::TestWithParam<int> {};

TEST_P(FusionDifferential, SuiteMatchesInterpreter) {
  const char *Suite = SuiteNames[GetParam()];
  for (const Workload &W : suiteWorkloads(Suite)) {
    Runtime Interp;
    Interp.evaluate(W.Source);
    ASSERT_FALSE(Interp.hasError()) << W.Name << ": "
                                    << Interp.errorMessage();
    const std::string Expected = Interp.output();

    struct Config {
      bool Fusion;
      DispatchMode Mode;
      const char *Desc;
    };
    const Config Configs[] = {
        {false, DispatchMode::Switch, "fusion=off dispatch=switch"},
        {true, DispatchMode::Switch, "fusion=on dispatch=switch"},
        {true, DispatchMode::Goto, "fusion=on dispatch=goto"},
    };
    for (const Config &C : Configs) {
      Runtime RT;
      Engine E(RT, OptConfig::all());
      E.setFusion(C.Fusion);
      E.setDispatchMode(C.Mode);
      RT.evaluate(W.Source);
      ASSERT_FALSE(RT.hasError())
          << W.Name << " [" << C.Desc << "]: " << RT.errorMessage();
      EXPECT_EQ(RT.output(), Expected) << W.Name << " [" << C.Desc << "]";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSuites, FusionDifferential,
                         ::testing::Values(0, 1, 2),
                         [](const ::testing::TestParamInfo<int> &I) {
                           return std::string(SuiteNames[I.param]);
                         });

} // namespace
