//===- tests/ProfilingTest.cpp - Section 2 instrumentation tests ----------===//

#include "profiling/CallProfiler.h"
#include "profiling/WebSession.h"
#include "support/Stats.h"
#include "vm/Runtime.h"

#include <gtest/gtest.h>

using namespace jitvs;

namespace {

TEST(CallProfiler, CountsCallsAndArgSets) {
  Runtime RT;
  CallProfiler P;
  RT.setCallObserver(&P);
  RT.evaluate("function once() { return 1; }"
              "function thrice(x) { return x; }"
              "once();"
              "thrice(1); thrice(1); thrice(2);");
  ASSERT_FALSE(RT.hasError());
  EXPECT_EQ(P.numFunctions(), 2u);
  EXPECT_EQ(P.totalCalls(), 4u);
  EXPECT_DOUBLE_EQ(P.fractionCalledOnce(), 0.5);
  EXPECT_DOUBLE_EQ(P.fractionSingleArgSet(), 0.5); // thrice saw {1},{2}.
  auto [Name, Calls] = P.mostCalled();
  EXPECT_EQ(Name, "thrice");
  EXPECT_EQ(Calls, 3u);
}

TEST(CallProfiler, ObjectsCountByIdentity) {
  Runtime RT;
  CallProfiler P;
  RT.setCallObserver(&P);
  RT.evaluate("function f(o) { return o; }"
              "var a = {k: 1};"
              "f(a); f(a);"          // Same identity: one arg set.
              "f({k: 1});");          // Fresh object: a second arg set.
  ASSERT_FALSE(RT.hasError());
  auto [Name, Sets] = P.mostVaried();
  EXPECT_EQ(Name, "f");
  EXPECT_EQ(Sets, 2u);
}

TEST(CallProfiler, StringsCountByContent) {
  Runtime RT;
  CallProfiler P;
  RT.setCallObserver(&P);
  RT.evaluate("function f(s) { return s; }"
              "f('ab'); f('a' + 'b');"); // Distinct objects, same content.
  ASSERT_FALSE(RT.hasError());
  EXPECT_DOUBLE_EQ(P.fractionSingleArgSet(), 1.0);
}

TEST(CallProfiler, HistogramFractionsSumToOne) {
  Runtime RT;
  CallProfiler P;
  RT.setCallObserver(&P);
  RT.evaluate("function a() {} function b() {} function c() {}"
              "a(); b(); b(); for (var i = 0; i < 40; i++) c();");
  ASSERT_FALSE(RT.hasError());
  FractionHistogram H = P.callCountHistogram();
  double Sum = H.TailFraction;
  for (double F : H.Fractions)
    Sum += F;
  EXPECT_NEAR(Sum, 1.0, 1e-9);
  EXPECT_GT(H.TailFraction, 0.0); // c() called 40 times > 30 buckets.
}

TEST(CallProfiler, UnitSeparation) {
  // Two runtimes may reuse heap addresses; units keep them apart.
  CallProfiler P;
  {
    Runtime RT;
    P.beginUnit();
    RT.setCallObserver(&P);
    RT.evaluate("function f() {} f();");
  }
  {
    Runtime RT;
    P.beginUnit();
    RT.setCallObserver(&P);
    RT.evaluate("function g() {} g(); g();");
  }
  EXPECT_EQ(P.numFunctions(), 2u);
  EXPECT_EQ(P.totalCalls(), 3u);
}

TEST(CallProfiler, MonomorphicParamTypes) {
  Runtime RT;
  CallProfiler P;
  RT.setCallObserver(&P);
  RT.evaluate("function fi(x) { return x; }"
              "function fs(x) { return x; }"
              "function poly(x) { return x; }"
              "fi(1); fi(1); fs('a'); fs('a');"
              "poly(1); poly('x');"); // Polymorphic: excluded.
  ASSERT_FALSE(RT.hasError());
  TypeDistribution D = P.monomorphicParamTypes();
  EXPECT_EQ(D.TotalParams, 2u);
  // Categories: index 4 = int, 7 = string.
  EXPECT_DOUBLE_EQ(D.Fractions[4], 0.5);
  EXPECT_DOUBLE_EQ(D.Fractions[7], 0.5);
}

TEST(Zipf, DistributionShape) {
  RNG Rand(7);
  unsigned Ones = 0;
  const unsigned N = 20000;
  for (unsigned I = 0; I != N; ++I)
    if (sampleZipf(Rand, 1.75, 2000) == 1)
      ++Ones;
  double P1 = static_cast<double>(Ones) / N;
  // zeta(1.75, truncated at 2000) puts ~49% of the mass on 1.
  EXPECT_NEAR(P1, 0.49, 0.03);
}

TEST(WebSession, ReproducesPaperHeadlineFractions) {
  WebSessionModel Model;
  Model.NumFunctions = 1200;
  Runtime RT;
  CallProfiler P;
  RT.setCallObserver(&P);
  RT.evaluate(generateWebSessionProgram(Model, 99));
  ASSERT_FALSE(RT.hasError()) << RT.errorMessage();
  // The paper: 48.88% called once; 59.91% single argument set.
  EXPECT_NEAR(P.fractionCalledOnce(), 0.4888, 0.06);
  EXPECT_NEAR(P.fractionSingleArgSet(), 0.5991, 0.06);
}

TEST(WebSession, Deterministic) {
  WebSessionModel Model;
  Model.NumFunctions = 50;
  EXPECT_EQ(generateWebSessionProgram(Model, 5),
            generateWebSessionProgram(Model, 5));
  EXPECT_NE(generateWebSessionProgram(Model, 5),
            generateWebSessionProgram(Model, 6));
}

TEST(Stats, Means) {
  EXPECT_DOUBLE_EQ(arithmeticMean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(arithmeticMean({}), 0.0);
  // Geometric mean of percentages: +10% and -9.0909..% cancel.
  EXPECT_NEAR(geometricMeanPercent({10.0, -100.0 / 11.0}), 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

} // namespace
