//===- tests/RuntimeEdgeTest.cpp - Runtime and language edge cases --------===//
///
/// \file
/// Corner semantics that the optimizer must preserve and the substrate
/// must implement faithfully: JS numeric edge cases (-0, NaN, int32
/// wrapping), string/array builtin behavior at boundaries, closure
/// sharing, deep environment chains, error propagation and the
/// interplay of all of it under the JIT.
///
//===----------------------------------------------------------------------===//

#include "jit/Engine.h"
#include "vm/Runtime.h"

#include <gtest/gtest.h>

using namespace jitvs;

namespace {

std::string interp(const std::string &Source) {
  Runtime RT;
  RT.evaluate(Source);
  EXPECT_FALSE(RT.hasError()) << RT.errorMessage();
  return RT.output();
}

/// Runs under the interpreter and under the full JIT; both must agree,
/// and the function returns the common output.
std::string both(const std::string &Source) {
  std::string A = interp(Source);
  Runtime RT;
  Engine E(RT, OptConfig::all());
  E.setCallThreshold(3);
  E.setLoopThreshold(30);
  RT.evaluate(Source);
  EXPECT_FALSE(RT.hasError()) << RT.errorMessage();
  EXPECT_EQ(A, RT.output());
  return A;
}

TEST(NumericEdge, NegativeZero) {
  EXPECT_EQ(both("print(1 / (0 * -1));"), "-Infinity\n");
  EXPECT_EQ(both("print(1 / (-0.0));"), "-Infinity\n");
  EXPECT_EQ(both("print(-0.0 == 0, -0.0 === 0);"), "true true\n");
  // -0 through a hot multiply.
  EXPECT_EQ(both("function m(a, b) { return a * b; }"
                 "for (var i = 0; i < 20; i++) m(2, 3);"
                 "print(1 / m(-4, 0));"),
            "-Infinity\n");
}

TEST(NumericEdge, MathRoundHalfwayCases) {
  // floor(x + 0.5) is the classic wrong implementation: 0.5 is not
  // representable relative to these inputs, so the addition itself
  // rounds. Math.round must not.
  EXPECT_EQ(both("print(Math.round(0.49999999999999994));"), "0\n");
  // 2^52 + 1: adding 0.5 first would round up to 2^52 + 2 (printed in
  // exponent form, so compare rather than print the value itself).
  EXPECT_EQ(both("print(Math.round(4503599627370497) == 4503599627370497);"),
            "true\n");
  // Halves round toward +Infinity, including negative halves.
  EXPECT_EQ(both("print(Math.round(0.5), Math.round(1.5), Math.round(2.5));"),
            "1 2 3\n");
  EXPECT_EQ(both("print(Math.round(-0.5), Math.round(-1.5),"
                 "      Math.round(-2.5));"),
            "0 -1 -2\n");
  // x in [-0.5, 0) rounds to -0, not +0.
  EXPECT_EQ(both("print(1 / Math.round(-0.5), 1 / Math.round(-0.3));"),
            "-Infinity -Infinity\n");
  EXPECT_EQ(both("print(1 / Math.round(-0.0), 1 / Math.round(0.3));"),
            "-Infinity Infinity\n");
  // Non-finite values pass through.
  EXPECT_EQ(both("print(Math.round(0 / 0), Math.round(1 / 0),"
                 "      Math.round(-1 / 0));"),
            "NaN Infinity -Infinity\n");
  // The same semantics when Math.round sits in a hot loop (the JIT's
  // MathFn path and the constant folder, not just the builtin).
  EXPECT_EQ(both("function r(x) { return Math.round(x); }"
                 "var s = 0;"
                 "for (var i = 0; i < 40; i++) s += r(i + 0.5);"
                 "print(s, r(-2.5), 1 / r(-0.25));"),
            "820 -2 -Infinity\n");
}

TEST(NumericEdge, NaNPropagation) {
  EXPECT_EQ(both("var n = 0 / 0; print(n == n, n != n, n < 1, n >= 1);"),
            "false true false false\n");
  EXPECT_EQ(both("print((undefined + 1) == (undefined + 1));"), "false\n");
}

TEST(NumericEdge, Int32Boundaries) {
  EXPECT_EQ(both("print(2147483647 + 1, -2147483648 - 1);"),
            "2147483648 -2147483649\n");
  EXPECT_EQ(both("print((2147483647 + 1) | 0);"), "-2147483648\n");
  EXPECT_EQ(both("var x = -2147483648; print(-x);"), "2147483648\n");
  EXPECT_EQ(both("print(2147483647 * 2);"), "4294967294\n");
}

TEST(NumericEdge, ModuloSigns) {
  EXPECT_EQ(both("print(7 % 3, -7 % 3, 7 % -3);"), "1 -1 1\n");
  EXPECT_EQ(both("print(5 % 0);"), "NaN\n");
  EXPECT_EQ(both("print(5.5 % 2);"), "1.5\n");
  // Hot modulo that goes negative after warmup (ModI bails).
  EXPECT_EQ(both("function m(a, b) { return a % b; }"
                 "for (var i = 0; i < 20; i++) m(9, 4);"
                 "print(m(-9, 4));"),
            "-1\n");
}

TEST(NumericEdge, ShiftSemantics) {
  EXPECT_EQ(both("print(1 << 32, 1 << 33);"), "1 2\n"); // Count & 31.
  EXPECT_EQ(both("print(-1 >>> 0);"), "4294967295\n");
  EXPECT_EQ(both("print(-16 >> 2, -16 >>> 28);"), "-4 15\n");
}

TEST(NumericEdge, SpecializedOverflowMatchesGeneric) {
  // Warm up on small arguments so the JIT compiles the specialized
  // int32 fast paths (including the fused x + 1 / x - 1 / x * 2
  // immediate forms), then hit the boundaries: every overflow must
  // bail to the generic helpers and promote to double exactly like
  // the interpreter.
  EXPECT_EQ(both("function add(a, b) { return a + b; }"
                 "function inc(x) { return x + 1; }"
                 "function dec(x) { return x - 1; }"
                 "function dbl(x) { return x * 2; }"
                 "for (var i = 0; i < 20; i++) {"
                 "  add(i, i); inc(i); dec(i); dbl(i); }"
                 "print(add(2147483647, 1));"
                 "print(inc(2147483647));"
                 "print(dec(-2147483647 - 1));"
                 "print(dbl(2147483647));"
                 "print(add(-2147483647 - 1, -2147483647 - 1));"),
            "2147483648\n2147483648\n-2147483649\n4294967294\n"
            "-4294967296\n");
  // 46341 * 46341 is the smallest square above INT32_MAX.
  EXPECT_EQ(both("function sq(x) { return x * x; }"
                 "for (var i = 0; i < 20; i++) sq(3);"
                 "print(sq(46340), sq(46341));"),
            "2147395600 2147488281\n");
}

TEST(NumericEdge, ModIntMinByMinusOne) {
  // INT32_MIN % -1 is -0 in JS (where a naive idiv would trap);
  // observable only through 1/x. A zero remainder from a negative
  // dividend is -0 as well.
  EXPECT_EQ(both("print(1 / ((-2147483647 - 1) % -1));"), "-Infinity\n");
  EXPECT_EQ(both("function m(a, b) { return a % b; }"
                 "for (var i = 0; i < 20; i++) m(9, 4);"
                 "print(1 / m(-2147483647 - 1, -1));"
                 "print(1 / m(-4, 4), m(-4, 4) == 0);"),
            "-Infinity\n-Infinity true\n");
}

TEST(NumericEdge, ShiftCountMaskingInHotCode) {
  // The shift count is masked & 31 identically in the constant
  // folder, the interpreter, and native code.
  EXPECT_EQ(both("function sh(a, b) { return a << b; }"
                 "function sr(a, b) { return a >>> b; }"
                 "for (var i = 0; i < 20; i++) { sh(1, 1); sr(64, 2); }"
                 "print(sh(1, 32), sh(1, 33), sh(3, 34));"
                 "print(sr(-1, 32), sr(-1, 36));"),
            "1 2 12\n4294967295 268435455\n");
}

TEST(NumericEdge, UShrAboveIntMaxIsDouble) {
  // x >>> y can exceed INT32_MAX, so the result is uniformly a double
  // in every tier; arithmetic downstream of it must agree everywhere.
  EXPECT_EQ(both("print(-1 >>> 0, (-1 >>> 0) + 1, typeof (-1 >>> 0));"),
            "4294967295 4294967296 number\n");
  EXPECT_EQ(both("function u(x) { return (x >>> 1) + 1; }"
                 "for (var i = 0; i < 20; i++) u(8);"
                 "print(u(-2), u(-2) * 2);"),
            "2147483648 4294967296\n");
}

TEST(NumericEdge, SignedZeroConstantsStayDistinct) {
  // +0 and -0 constants must never merge (GVN) or fold into each
  // other (CP): Infinity + -Infinity would become 2x one of them.
  EXPECT_EQ(both("print(1 / 0.0 + 1 / -0.0);"), "NaN\n");
  EXPECT_EQ(both("function z() { return 1 / 0.0 + 1 / -0.0; }"
                 "for (var i = 0; i < 20; i++) z();"
                 "print(z());"),
            "NaN\n");
}

TEST(OsrEdge, InvertedLoopShimReTestsCondition) {
  // Regression (found by the differential fuzzer, seed 23): OSR can
  // trigger on the header visit where the loop condition is already
  // false — typically an inner loop of a nest whose cumulative trip
  // count crosses the threshold on the exit visit. The inverted
  // loop's OSR shim must re-test the condition instead of jumping
  // unconditionally into the rotated body, or the loop runs one extra
  // iteration.
  const std::string Source =
      "var g = 0.5;"
      "function f(b) {"
      "  for (var i = 0; i < 16; i = i + 1) {"
      "    for (var j = 0; j < 18; j = j + 1) {"
      "      g = g + 65535 * 65535;"
      "    }"
      "  }"
      "  return b;"
      "}"
      "for (var h = 0; h < 22; h = h + 1) { f(0.1); }"
      "print(g);";
  std::string Reference = interp(Source);
  // Loop inversion alone, with a loop threshold that fires OSR inside
  // the nest.
  OptConfig OnlyInversion = OptConfig::baseline();
  OnlyInversion.LoopInversion = true;
  for (const OptConfig &Cfg : {OnlyInversion, OptConfig::all()}) {
    Runtime RT;
    Engine E(RT, Cfg);
    E.setCallThreshold(3);
    E.setLoopThreshold(20);
    RT.evaluate(Source);
    EXPECT_FALSE(RT.hasError()) << RT.errorMessage();
    EXPECT_EQ(Reference, RT.output());
  }
}

TEST(StringEdge, FoldedOutOfRangeAccessesMatchInterpreter) {
  // charCodeAt out of range is NaN: the folder must decline to fold
  // (never manufacture a garbage constant) and specialized code must
  // agree with the interpreter, including for negative indices.
  EXPECT_EQ(both("function cc(s, i) { return s.charCodeAt(i); }"
                 "for (var k = 0; k < 20; k++) cc('abc', 1);"
                 "print(cc('abc', 3), cc('abc', -1), cc('', 0));"),
            "NaN NaN NaN\n");
  // Specialized-on-non-string arguments reaching string intrinsics
  // must deoptimize, not fold through the wrong payload.
  EXPECT_EQ(both("function len(s) { return s.length; }"
                 "for (var k = 0; k < 20; k++) len('xy');"
                 "print(len('hello'));"),
            "5\n");
}

TEST(ArrayEdge, OutOfBoundsReadsMatchInterpreter) {
  EXPECT_EQ(both("function at(a, i) { return a[i]; }"
                 "var xs = [1, 2, 3];"
                 "for (var k = 0; k < 20; k++) at(xs, 1);"
                 "print(at(xs, 3), at(xs, -1), at(xs, 100));"),
            "undefined undefined undefined\n");
}

TEST(ArrayEdge, HugeIndexWriteDoesNotGrowDenseStorage) {
  // Regression: `a[1e9] = x` used to resize the dense backing store to a
  // billion entries. Writes at or past MaxDenseLength are dropped;
  // reads there stay undefined, identically in both tiers.
  EXPECT_EQ(both("var a = [1, 2];"
                 "a[1000000000] = 7;"
                 "a[-5] = 8;"
                 "print(a.length, a[1000000000], a[-5], a[1]);"),
            "2 undefined undefined 2\n");
  // The boundary itself: the last index below the cap grows the array,
  // the first index at the cap does not.
  EXPECT_EQ(both("var a = [];"
                 "a[1048575] = 1;"
                 "var n1 = a.length;"
                 "a[1048576] = 2;"
                 "print(n1, a.length, a[1048575], a[1048576]);"),
            "1048576 1048576 1 undefined\n");
}

TEST(StringEdge, Boundaries) {
  EXPECT_EQ(both("print(''.length, 'a'.charCodeAt(5));"), "0 NaN\n");
  EXPECT_EQ(both("print('abc'.substring(2, 1));"), "b\n"); // Swapped.
  EXPECT_EQ(both("print('abc'.slice(-2));"), "bc\n");
  EXPECT_EQ(both("print('abc'[5]);"), "undefined\n");
  EXPECT_EQ(both("print('a' + 1 + 2, 1 + 2 + 'a');"), "a12 3a\n");
  EXPECT_EQ(both("print('' + undefined, '' + null, '' + true);"),
            "undefined null true\n");
}

TEST(ArrayEdge, HolesAndGrowth) {
  EXPECT_EQ(both("var a = []; a[3] = 1; print(a.length, a[0], a.join());"),
            "4 undefined ,,,1\n");
  EXPECT_EQ(both("var a = [1,2,3]; a.length = 1; print(a.join(), "
                 "a.length);"),
            "1 1\n");
  EXPECT_EQ(both("var a = [1,2,3]; print(a[-1], a[2.5], a[2.0]);"),
            "undefined undefined 3\n");
  EXPECT_EQ(both("var a = new Array(0); print(a.length, a.pop());"),
            "0 undefined\n");
}

TEST(ArrayEdge, NestedArraysPrint) {
  EXPECT_EQ(both("print([[1,2],[3]] + '');"), "1,2,3\n");
  EXPECT_EQ(both("var a = [1, [2, [3, 4]]]; print(a.join('|'));"),
            "1|2,3,4\n");
}

TEST(ObjectEdge, NumericAndStringKeysUnify) {
  EXPECT_EQ(both("var o = {}; o[1] = 'a'; print(o['1']);"), "a\n");
  EXPECT_EQ(both("var o = {}; o['k'] = 1; o.k += 1; print(o['k']);"),
            "2\n");
}

TEST(ClosureEdge, SharedMutableEnvironment) {
  EXPECT_EQ(both("function pair() { var n = 0;"
                 "  return [function() { n += 1; return n; },"
                 "          function() { n += 10; return n; }]; }"
                 "var p = pair(); var q = pair();"
                 "p[0](); p[1](); q[0]();"
                 "print(p[0](), q[1]());"),
            "12 11\n");
}

TEST(ClosureEdge, DeepLexicalChain) {
  EXPECT_EQ(both("function a(x) { return function(y) {"
                 "  return function(z) { return function(w) {"
                 "    return x + y + z + w; }; }; }; }"
                 "var f = a(1)(2)(3); var s = 0;"
                 "for (var i = 0; i < 40; i++) s += f(4);"
                 "print(s);"),
            "400\n");
}

TEST(ClosureEdge, LoopCapturesShareOneVar) {
  // var has function scope: all closures see the final i.
  EXPECT_EQ(both("var fs = [];"
                 "for (var i = 0; i < 3; i++)"
                 "  fs.push(function() { return i; });"
                 "print(fs[0](), fs[1](), fs[2]());"),
            "3 3 3\n");
}

TEST(ThisEdge, MethodsAndPlainCalls) {
  EXPECT_EQ(both("function f() { return typeof this; }"
                 "var o = { m: f };"
                 "print(f(), o.m());"),
            "undefined object\n");
}

TEST(ErrorEdge, PropagatesThroughJitFrames) {
  Runtime RT;
  Engine E(RT, OptConfig::all());
  E.setCallThreshold(3);
  RT.evaluate("function inner(o) { return o.x; }"
              "function outer(o) { return inner(o) + 1; }"
              "for (var i = 0; i < 20; i++) outer({x: 1});"
              "outer(null);"); // Error deep inside compiled frames.
  EXPECT_TRUE(RT.hasError());
  EXPECT_NE(RT.errorMessage().find("property"), std::string::npos);
}

TEST(ErrorEdge, RecursionGuardInNativeCode) {
  Runtime RT;
  Engine E(RT, OptConfig::all());
  E.setCallThreshold(2);
  RT.evaluate("function f(n) { return f(n + 1); }"
              "f(0);");
  EXPECT_TRUE(RT.hasError());
  EXPECT_NE(RT.errorMessage().find("recursion"), std::string::npos);
}

TEST(SortEdge, ComparatorCallsJitCode) {
  EXPECT_EQ(both("function cmp(a, b) { return b - a; }"
                 "for (var i = 0; i < 10; i++) cmp(1, 2);" // Make it hot.
                 "var a = [3, 1, 4, 1, 5, 9, 2, 6];"
                 "a.sort(cmp);"
                 "print(a.join());"),
            "9,6,5,4,3,2,1,1\n");
}

TEST(GCEdge, CollectionsDuringJitWithClosures) {
  Runtime RT;
  // Stress mode requests a minor collection at every allocation; the low
  // old-space threshold then forces majors through promotion pressure.
  RT.heap().setGCStress(true);
  RT.heap().setGCThreshold(64);
  Engine E(RT, OptConfig::all());
  E.setCallThreshold(3);
  E.setLoopThreshold(30);
  RT.evaluate("function mk(tag) { return function(i) {"
              "  return tag + ':' + i; }; }"
              "var out = [];"
              "var junk = [];"
              "for (var r = 0; r < 40; r++) {"
              "  var f = mk('r' + r);"
              "  for (var i = 0; i < 20; i++) {"
              "    junk.push([f(i)]);"
              "    if (i == 19) out.push(f(i));"
              "  }"
              "}"
              "print(out.length, out[0], out[39]);");
  ASSERT_FALSE(RT.hasError()) << RT.errorMessage();
  EXPECT_EQ(RT.output(), "40 r0:19 r39:19\n");
  EXPECT_GT(RT.heap().minorCount(), 0u);
  EXPECT_GT(RT.heap().gcCount(), 0u);
}

TEST(GCEdge, AllocationNeverCollectsMidConstruction) {
  // Regression: Heap::allocate must never run a collection itself, even
  // under stress with an exhausted old-space budget. A collection inside
  // allocate would reclaim (or move) the just-returned, not-yet-rooted
  // object while its caller is still wiring it up. Collections are
  // armed at allocation and served only at safepoint(), where every
  // root source is accurate.
  Heap H;
  if (!H.nurseryEnabled())
    GTEST_SKIP() << "nursery disabled via JITVS_NURSERY_KB=0";
  H.setGCStress(true);
  H.setGCThreshold(1); // Any tenured allocation also requests a major.
  size_t Minors = H.minorCount();
  size_t Majors = H.gcCount();

  // Back-to-back unrooted allocations: the first object is exactly a
  // "partially constructed" value a mid-allocate collection would kill.
  JSString *A = H.allocate<JSString>("first");
  JSArray *Arr = H.allocate<JSArray>();
  Arr->push(Value::string(A));

  EXPECT_EQ(H.minorCount(), Minors);
  EXPECT_EQ(H.gcCount(), Majors);
  EXPECT_TRUE(H.collectionRequested());
  EXPECT_EQ(Arr->getDense(0).asString()->str(), "first");

  // The deferred collection runs at the next safepoint — and only
  // there. (Arr/A are dead at this point; do not touch them after.)
  H.safepoint();
  EXPECT_GT(H.minorCount(), Minors);
}

TEST(OutputEdge, PrintingIsDeterministicAcrossTiers) {
  EXPECT_EQ(both("print(0.1 + 0.2 == 0.3);"), "false\n");
  EXPECT_EQ(both("print(1e100);"), "1e+100\n");
  // Huge integers render with 12 significant digits (our documented
  // formatting, deterministic across interpreter and JIT — not the
  // ECMAScript shortest-round-trip algorithm; see DESIGN.md).
  EXPECT_EQ(both("print(123456789012345678);"), "1.23456789012e+17\n");
}

} // namespace
