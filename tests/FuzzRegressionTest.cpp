//===- tests/FuzzRegressionTest.cpp - Checked-in fuzz corpus ---------------===//
///
/// \file
/// Runs every program in tests/fuzz/corpus/ through the full
/// differential config matrix. Each corpus file is a named, minimized
/// reproducer of a divergence the fuzzer once found (or a hand-written
/// program pinning a class of bugs it is designed to find); all of them
/// must agree across every configuration forever after.
///
//===----------------------------------------------------------------------===//

#include "fuzz/DiffRunner.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace jitvs;
using namespace jitvs::fuzz;

#ifndef JITVS_FUZZ_CORPUS_DIR
#error "JITVS_FUZZ_CORPUS_DIR must be defined by the build"
#endif

namespace {

std::vector<std::filesystem::path> corpusFiles() {
  std::vector<std::filesystem::path> Files;
  for (const auto &Entry :
       std::filesystem::directory_iterator(JITVS_FUZZ_CORPUS_DIR))
    if (Entry.path().extension() == ".js")
      Files.push_back(Entry.path());
  std::sort(Files.begin(), Files.end());
  return Files;
}

std::string readFile(const std::filesystem::path &Path) {
  std::ifstream In(Path);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

TEST(FuzzCorpus, DirectoryIsPopulated) {
  EXPECT_GE(corpusFiles().size(), 8u);
}

TEST(FuzzCorpus, EveryCaseAgreesAcrossTheMatrix) {
  std::vector<EngineSetup> Matrix = defaultMatrix();
  for (const std::filesystem::path &Path : corpusFiles()) {
    std::string Source = readFile(Path);
    ASSERT_FALSE(Source.empty()) << Path;
    DiffResult R = runMatrix(Source, Matrix);
    EXPECT_FALSE(R.diverged())
        << Path.filename() << " diverged:\n"
        << describeDivergence(R.Divergences[0], 0, Source);
  }
}

} // namespace
