//===- tests/BytecodeTest.cpp - Emitter and bytecode metadata tests -------===//

#include "parser/Emitter.h"
#include "vm/Bytecode.h"
#include "vm/GC.h"
#include "vm/Object.h"

#include <gtest/gtest.h>

using namespace jitvs;

namespace {

std::unique_ptr<Program> compile(const std::string &Source, Heap &H) {
  CompileResult R = compileSource(Source, H);
  EXPECT_TRUE(R.ok()) << R.Error;
  return std::move(R.Prog);
}

/// Counts occurrences of \p O in \p F.
size_t countOp(const FunctionInfo &F, Op O) {
  size_t N = 0;
  for (uint32_t PC = 0; PC < F.Code.size(); PC += F.instructionLength(PC))
    if (F.opAt(PC) == O)
      ++N;
  return N;
}

TEST(Emitter, FunctionLayout) {
  Heap H;
  auto P = compile("function f(a, b) { var x = a; var y = b; return x; }",
                   H);
  ASSERT_EQ(P->numFunctions(), 2u);
  const FunctionInfo *F = P->function(1);
  EXPECT_EQ(F->Name, "f");
  EXPECT_EQ(F->NumParams, 2u);
  EXPECT_EQ(F->NumSlots, 4u); // a, b, x, y.
  EXPECT_EQ(F->NumEnvSlots, 0u);
}

TEST(Emitter, CapturedVariablesGoToEnvironment) {
  Heap H;
  auto P = compile("function outer(k) {"
                   "  var kept = k * 2;"
                   "  var plain = 1;"
                   "  return function() { return kept; };"
                   "}",
                   H);
  const FunctionInfo *Outer = P->function(1);
  EXPECT_EQ(Outer->NumEnvSlots, 1u); // Only `kept` is captured.
  EXPECT_TRUE(Outer->UsesEnvironment);
  EXPECT_GT(countOp(*Outer, Op::SetEnvSlot), 0u);
  // `plain` stays a frame slot.
  EXPECT_GT(countOp(*Outer, Op::SetSlot), 0u);
}

TEST(Emitter, CapturedParameterCopied) {
  Heap H;
  auto P = compile("function f(p) { return function() { return p; }; }", H);
  const FunctionInfo *F = P->function(1);
  ASSERT_EQ(F->CapturedParams.size(), 1u);
  EXPECT_EQ(F->CapturedParams[0].first, 0u);  // Parameter slot.
  EXPECT_EQ(F->CapturedParams[0].second, 0u); // Env slot.
}

TEST(Emitter, LoopHeadMarksEveryLoop) {
  Heap H;
  auto P = compile("function f(n) {"
                   "  while (n > 0) n--;"
                   "  do { n++; } while (n < 4);"
                   "  for (var i = 0; i < 3; i++) n += i;"
                   "  return n; }",
                   H);
  EXPECT_EQ(countOp(*P->function(1), Op::LoopHead), 3u);
}

TEST(Emitter, ConstantPoolDeduplicates) {
  Heap H;
  auto P = compile("function f() { return 'dup' + 'dup' + 'dup'; }", H);
  const FunctionInfo *F = P->function(1);
  size_t DupStrings = 0;
  for (const Value &C : F->Constants)
    if (C.isString() && C.asString()->str() == "dup")
      ++DupStrings;
  EXPECT_EQ(DupStrings, 1u);
}

TEST(Emitter, SmallIntsUseImmediates) {
  Heap H;
  auto P = compile("function f() { return 1 + 100 - 7; }", H);
  const FunctionInfo *F = P->function(1);
  EXPECT_EQ(countOp(*F, Op::PushInt8), 3u);
  EXPECT_EQ(countOp(*F, Op::PushConst), 0u);
}

TEST(Emitter, MethodCallsUseCallMethod) {
  Heap H;
  auto P = compile("function f(o, a) { return o.run(1) + a.push(2); }", H);
  const FunctionInfo *F = P->function(1);
  EXPECT_EQ(countOp(*F, Op::CallMethod), 2u);
  EXPECT_EQ(countOp(*F, Op::Call), 0u);
}

TEST(Emitter, GlobalsResolveByName) {
  Heap H;
  auto P = compile("var shared = 1;"
                   "function f() { return shared + other; }", H);
  EXPECT_NE(P->globalSlot("shared"), P->globalSlot("other"));
  // Re-requesting is stable.
  EXPECT_EQ(P->globalSlot("shared"), P->globalSlot("shared"));
}

TEST(Emitter, DisassemblerRoundTrip) {
  Heap H;
  auto P = compile("function f(a) { if (a) return 1; return 2; }", H);
  std::string Dis = P->function(1)->disassemble();
  EXPECT_NE(Dis.find("jumpiffalse"), std::string::npos);
  EXPECT_NE(Dis.find("return"), std::string::npos);
  EXPECT_NE(Dis.find("function f"), std::string::npos);
}

TEST(Bytecode, InstructionLengthsCoverEverything) {
  // Walk a program touching every operand width; lengths must tile the
  // bytecode exactly (the walk below would assert/overrun otherwise).
  Heap H;
  auto P = compile(
      "var g = 0;"
      "function mk() { var c = 0; return function(d) { c += d; return c; };}"
      "function f(o, a, s, n) {"
      "  var acc = n > 128 ? n : -n;"
      "  for (var i = 0; i < n; i++) {"
      "    acc += a[i % 4] + s.charCodeAt(i % s.length) + o.k;"
      "    o.k = acc; a[1] = acc; g = acc;"
      "  }"
      "  var add = mk(); add(acc);"
      "  return typeof acc == 'number' ? [acc, {v: acc}] : null;"
      "}",
      H);
  for (size_t FI = 0; FI != P->numFunctions(); ++FI) {
    const FunctionInfo *F = P->function(static_cast<uint32_t>(FI));
    uint32_t PC = 0;
    while (PC < F->Code.size()) {
      uint32_t Len = F->instructionLength(PC);
      ASSERT_GT(Len, 0u);
      PC += Len;
    }
    EXPECT_EQ(PC, F->Code.size()) << F->Name;
  }
}

TEST(NameTable, InternIsStable) {
  NameTable T;
  uint32_t A = T.intern("alpha");
  uint32_t B = T.intern("beta");
  EXPECT_NE(A, B);
  EXPECT_EQ(T.intern("alpha"), A);
  EXPECT_EQ(T.name(A), "alpha");
  EXPECT_EQ(T.lookup("beta"), B);
  EXPECT_EQ(T.lookup("gamma"), ~0u);
}

} // namespace
