// +0 and -0 constants must never merge (observable via 1/x), and two
// NaN constants must never be treated as equal values by GVN or the
// folder.
function z() { return 1 / 0.0 + 1 / (0 - 0.0 - 0.0 * 1 - (0.0)); }
function nz() { return 1 / 0.0 + 1 / -0.0; }
for (var i = 0; i < 30; i++) { z(); nz(); }
print(nz(), z() == z());
print(1 / 0.0, 1 / -0.0, 1 / 0.0 + 1 / -0.0);
print((0 / 0) == (0 / 0), typeof (0 / 0));
print(1 / (0 * -1), 1 / Math.floor(-0.5));
