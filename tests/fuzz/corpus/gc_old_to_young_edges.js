// Remembered-set coverage across both tiers: a long-lived (promoted)
// object graph keeps receiving freshly allocated (nursery-young)
// values through every barriered store shape — property store on an
// old object, element store into an old array, closure-environment
// slot store — and the values are read back only at the end, after
// enough churn that every one of them has crossed a minor collection.
var hub = { arr: [], map: {}, n: 0 };
function cell(v) { return function () { return v; }; }
var cells = [];
function step(i) {
  hub.arr[i] = { id: i, s: "s" + i };   // old array <- young object
  hub.map["k" + (i % 10)] = "m" + i;     // old object <- young string
  cells.push(cell("c" + i));             // env slot holds young string
  hub.n = hub.n + 1;
  return hub.arr[i].id;
}
var t = 0;
for (var i = 0; i < 60; i++) { t = t + step(i); }
var ok = 0;
for (var j = 0; j < 60; j++) {
  if (hub.arr[j].s == "s" + j) { ok = ok + 1; }
  if (cells[j]() == "c" + j) { ok = ok + 1; }
}
print(t, ok, hub.n, hub.map.k3, hub.map.k9);
