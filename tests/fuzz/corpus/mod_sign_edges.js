// ModI sign edges: negative dividends produce -0 or negative
// remainders; INT32_MIN % -1 is -0 (a naive idiv would trap). The
// native ModI fast path must bail for all of these.
function m(a, b) { return a % b; }
for (var i = 0; i < 30; i++) { m(9, 4); }
print(m(7, 3), m(0 - 7, 3), m(7, 0 - 3), m(0 - 7, 0 - 3));
print(1 / m(0 - 4, 4));
print(1 / m(0 - 2147483647 - 1, 0 - 1));
print(m(5, 0), m(0, 5), 1 / m(0, 5));
