// Whole-contents replacement edges: `a.length = n` and shift() swap in
// a brand-new element vector, so the store of each *young* element was
// never seen by the per-store write barrier — the conservative
// writeBarrierAll on the owner must remember it instead. (The seed's
// length-assignment also clobbered the GC header via whole-object
// assignment; this pins both.) Survivors are read back only after many
// further allocations so a missed edge is observable, not latent.
var a = [];
for (var i = 0; i < 30; i++) { a.push({ id: "v" + i }); }
a.length = 7;
a.shift();
var junk = [];
for (var j = 0; j < 200; j++) { junk.push([j, "pad" + j]); }
var s = "";
for (var k = 0; k < a.length; k++) { s = s + a[k].id + ","; }
print(a.length, s);
