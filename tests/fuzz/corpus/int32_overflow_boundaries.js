// Specialized AddI/SubI/MulI fast paths (and the fused immediate
// forms) must promote to double at the int32 boundaries exactly like
// Runtime::genericAdd/Sub/Mul.
function add(a, b) { return a + b; }
function inc(x) { return x + 1; }
function dec(x) { return x - 1; }
function dbl(x) { return x * 2; }
function sq(x) { return x * x; }
for (var i = 0; i < 30; i++) { add(i, i); inc(i); dec(i); dbl(i); sq(i); }
print(add(2147483647, 1), inc(2147483647));
print(dec(0 - 2147483647 - 1), dbl(2147483647));
print(add(0 - 2147483647 - 1, 0 - 2147483647 - 1));
print(sq(46340), sq(46341));
print((2147483647 + 1) | 0, typeof add(2147483647, 1));
