// Folded string/array loads at out-of-range and negative indices must
// match the interpreter (NaN / undefined), never fold a wrong
// constant; bounds checks on constant indices must survive when the
// index is out of range.
function cc(s, i) { return s.charCodeAt(i); }
function at(a, i) { return a[i]; }
var xs = [1, 2, 3];
for (var k = 0; k < 30; k++) { cc('abc', 1); at(xs, 1); }
print(cc('abc', 3), cc('abc', 0 - 1), cc('', 0));
print('abc'.charCodeAt(99), ''.length, 'abc'[5]);
print(at(xs, 3), at(xs, 0 - 1), at(xs, 100));
print(xs[0 - 1], xs[2.5], xs[2.0], xs[3]);
