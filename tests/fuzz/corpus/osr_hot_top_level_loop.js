// A long top-level loop triggers OSR at the loop head; the
// accumulator pattern crosses int32 products and a double global.
var osr = 0;
var gd = 0.5;
for (var z = 0; z < 600; z = z + 1) {
  osr = (osr + (z * 65535)) % 1000003;
  gd = gd + 0.25;
}
print(osr, gd, typeof osr, typeof gd);
print(1 / osr, osr | 0, gd >>> 1);
