// Shape/IC hazards: a constructor whose conditional add splits its
// instances over two shapes, a call *between* two reads of the same
// receiver that transitions it (the redundant-guard-elimination hazard:
// the second read must re-check the shape), a property added after the
// read site went hot (shape-guard bailout + despecialization), and a
// site driven through six layouts so the IC retires to megamorphic.
function MkP(a, b) { this.x = a; this.y = b; if (a > b) { this.z = (a - b); } }
function read(o) { return o.x + o.y; }
function grow(o, i) { if (i == 7) { o.late = i; } return o.x; }
function readTwice(o, i) { var s = o.x; s = (s + grow(o, i)); return (s + o.late); }
var g = 0;
for (var i = 0; i < 40; i++) {
  var p = new MkP((i % 5), 2);
  g = ((g + read(p) + (readTwice(p, (i % 9)) | 0)) % 1000003);
}
var os = [{x: 1, y: 2}, {y: 1, x: 2}, {x: 3, y: 4, w: 5}, {w: 0, x: 5, y: 6},
          {x: 7, y: 8, u: 9, v: 10}, {q: 0, x: 9, y: 1}];
for (var j = 0; j < 60; j++) { g = ((g + read(os[(j % 6)])) % 1000003); }
print(g, typeof g, 1 / g);
print(os[2].w, os[0].w, os[5].q);
