// Stale-callee hazard: with background compile workers, every enqueue
// tenures the task's value snapshots with a *moving* minor collection,
// so any raw JSFunction* held across the engine's onCall hook dangles.
// The original crash (fuzzer seed 12, paper-all-threads2): a young
// closure becomes hot, its call enqueues a compile, the moved-from
// callee is then dispatched into the interpreter. Closures are
// re-created every outer iteration so the callee is always
// nursery-young when its call count trips the threshold.
function mk(tag) {
  return function (i) { return tag + ":" + (i * 2); };
}
var out = [];
for (var r = 0; r < 12; r++) {
  var f = mk("r" + r);
  var acc = "";
  for (var i = 0; i < 9; i++) { acc = f(i); }
  out.push(acc);
}
print(out.length, out[0], out[11]);
