// Fuzzer seed 886 (minimized). The inlined callee returns a parameter
// that flows unassigned through a loop join: the builder's return
// record pointed at a trivial phi that was later pruned, leaving the
// caller's use wired to a def in no block — an uninitialized register
// at runtime. Under the tiered policy the recompile keeps the closure
// parameter on the value tier, so the inlining (and the bug) survives
// the despecialization that hides it under the paper policy.
function f1(f, b, c) {
  var v0 = b;
  v0 = (v0 + f((3 - 2147483647)));
  print(v0);
}
function f2(a, b, c) {
  while (w2 < 150) { a = (a + (v0 < b)); w2 = w2 + 1; }
  return b;
}
for (var d1 = 0; d1 < 13; d1++) { r1 = ((r1 + f1(f2, d1, d1)) % 1000000007); }
