// Shift counts are masked & 31 in every tier; x >>> y above
// INT32_MAX is uniformly a double and downstream arithmetic agrees.
function sh(a, b) { return a << b; }
function sr(a, b) { return a >>> b; }
function u(x) { return (x >>> 1) + 1; }
for (var i = 0; i < 30; i++) { sh(1, 1); sr(64, 2); u(8); }
print(sh(1, 32), sh(1, 33), sh(3, 34));
print(sr(0 - 1, 32), sr(0 - 1, 36), sr(0 - 1, 0));
print(u(0 - 2), u(0 - 2) * 2, typeof sr(0 - 1, 0));
print((0 - 16) >> 2, (0 - 16) >>> 28);
