// sort() with an allocating comparator: every comparison allocates
// (string concatenation), so under GC stress each comparator call is a
// moving safepoint. The sort's scratch buffers and the not-yet-placed
// elements must all be rooted or the merge reads moved-from shells.
function cmp(x, y) {
  var kx = "" + x.k; var ky = "" + y.k;
  if (kx < ky) { return 0 - 1; }
  if (kx > ky) { return 1; }
  return 0;
}
var a = [];
for (var i = 0; i < 25; i++) { a.push({ k: ((i * 7) % 26), tag: "t" + i }); }
a.sort(cmp);
var s = "";
for (var j = 0; j < a.length; j++) { s = s + a[j].k + "."; }
print(s);
print(a[0].tag, a[24].tag);
