// Fuzzer seed 23 (minimized). The inner loop's cumulative trip count
// crosses the OSR threshold on a header visit where the condition is
// already false; the inverted loop's OSR shim used to jump straight
// into the rotated body, running one extra iteration (one extra
// 65535*65535 added to g1).
var g1 = 3.25;
function f0(a) {
  for (var i0 = 0; i0 < 16; i0++) { for (var i1 = 0; i1 < 18; i1++) { g1 = (g1 + (65535 * 65535)); } }
}
for (var h0 = 0; h0 < 22; h0++) { f0(0.1); }
print(g1);
print(g1 >>> 5);
