// An `if (i < K)` inside the loop body whose false side stays in the
// loop must not be taken as an induction bound: i keeps growing past
// K, so i * 1000000 can overflow and must keep its check even under
// overflow-check elimination.
function f(n) {
  var t = 0;
  for (var i = 0; i != n; i = i + 1) {
    if (i < 3) { t = t + 1; }
    t = t + i * 1000000;
  }
  return t;
}
for (var k = 0; k < 30; k++) { f(5); }
print(f(5));
print(f(3000));
