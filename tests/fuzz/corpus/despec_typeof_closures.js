// Specialization-cache churn: same-args loops populate the cache,
// different-args calls despecialize (paper policy) or demote tiers
// (tiered policy), closures ride in as parameters, and typeof probes
// make the despecialized values observable.
function mk(k) { return function (x) { return x * k; }; }
function apply(f, v) { return f(v) + 1; }
function probe(x) { return typeof x; }
var g = 0;
for (var i = 0; i < 12; i++) { g = (g + apply(mk(3), 7)) % 1000003; }
for (var j = 0; j < 12; j++) { g = (g + apply(mk(j), j)) % 1000003; }
print(g, probe(g), probe(mk(1)), probe('s'), probe(0.5), probe(undefined));
print(apply(mk(46341), 46341));
print(1 / g, g | 0);
