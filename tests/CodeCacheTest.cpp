//===- tests/CodeCacheTest.cpp - Shared SpecSig code cache ----------------===//
///
/// \file
/// The shared specialization code cache (jit/CodeCache.h), unit-level
/// and through the engine: signature keying, byte accounting, the
/// cost-aware-LRU eviction order, oversize rejection, stale-generation
/// drops, the per-function signature cap with its generic-fallback
/// dispatch, despecialization invalidation, and — via drain mode — the
/// invalidation-under-eviction interleaving with a background compiler.
/// Plus the contract that matters most: with the cache off, behavior is
/// the legacy one-binary policy, bit for bit.
///
//===----------------------------------------------------------------------===//

#include "jit/CodeCache.h"
#include "jit/Engine.h"
#include "vm/Runtime.h"

#include <gtest/gtest.h>

using namespace jitvs;

namespace {

/// Distinct map keys for unit-level tests; never dereferenced by the
/// cache.
FunctionInfo *fakeInfo(uintptr_t N) {
  static char Anchor[16];
  return reinterpret_cast<FunctionInfo *>(Anchor + N);
}

std::shared_ptr<NativeCode> fakeCode(size_t Instrs) {
  auto Code = std::make_shared<NativeCode>(nullptr);
  Code->Code.resize(Instrs);
  return Code;
}

SpecSig intSig(int32_t V) {
  Value Arg = Value::int32(V);
  return makeSpecSig(nullptr, &Arg, 1);
}

// --- Unit level -----------------------------------------------------------

TEST(CodeCache, LookupKeysOnSignatureAndGeneration) {
  CodeCache Cache(1 << 20);
  CodeReclaimer Reclaimer;
  auto Code = fakeCode(10);
  ASSERT_TRUE(Cache.insert(fakeInfo(0), /*Generation=*/0, intSig(7), Code,
                           Reclaimer));

  Value Seven = Value::int32(7), Eight = Value::int32(8);
  // Same function, same generation, same value: hit.
  EXPECT_EQ(Cache.lookup(fakeInfo(0), 0, &Seven, 1, Reclaimer), Code);
  // Different value: miss (lookup itself does not count misses).
  EXPECT_EQ(Cache.lookup(fakeInfo(0), 0, &Eight, 1, Reclaimer), nullptr);
  // Different function: miss.
  EXPECT_EQ(Cache.lookup(fakeInfo(1), 0, &Seven, 1, Reclaimer), nullptr);
  EXPECT_EQ(Cache.stats().Hits, 1u);
  EXPECT_EQ(Cache.stats().Misses, 0u);

  // Bumped generation: the stale entry is dropped on contact, through
  // the reclaimer (an in-flight frame may still be running it).
  EXPECT_EQ(Cache.lookup(fakeInfo(0), 1, &Seven, 1, Reclaimer), nullptr);
  EXPECT_EQ(Cache.stats().StaleGenerationDrops, 1u);
  EXPECT_EQ(Cache.size(), 0u);
  EXPECT_EQ(Cache.residentBytes(), 0u);
  EXPECT_EQ(Reclaimer.pending(), 1u);
}

TEST(CodeCache, EvictionPrefersStaleAndLarge) {
  // Budget fits roughly two of the three bodies.
  size_t Small = CodeCache::codeBytes(*fakeCode(8));
  size_t Large = CodeCache::codeBytes(*fakeCode(64));
  CodeCache Cache(Small + Large + Large / 2);
  CodeReclaimer Reclaimer;

  auto Hot = fakeCode(64), Cold = fakeCode(64), Tiny = fakeCode(8);
  ASSERT_TRUE(Cache.insert(fakeInfo(0), 0, intSig(1), Cold, Reclaimer));
  ASSERT_TRUE(Cache.insert(fakeInfo(1), 0, intSig(2), Hot, Reclaimer));
  // Touch Hot so Cold is the stale large entry.
  Value Two = Value::int32(2);
  ASSERT_EQ(Cache.lookup(fakeInfo(1), 0, &Two, 1, Reclaimer), Hot);

  // Inserting Tiny pushes past budget; the victim must be Cold
  // (staleness * bytes beats both the fresher Hot and the tiny entry),
  // and never the just-inserted body.
  ASSERT_TRUE(Cache.insert(fakeInfo(2), 0, intSig(3), Tiny, Reclaimer));
  EXPECT_EQ(Cache.stats().Evictions, 1u);
  Value One = Value::int32(1), Three = Value::int32(3);
  EXPECT_EQ(Cache.lookup(fakeInfo(0), 0, &One, 1, Reclaimer), nullptr);
  EXPECT_EQ(Cache.lookup(fakeInfo(1), 0, &Two, 1, Reclaimer), Hot);
  EXPECT_EQ(Cache.lookup(fakeInfo(2), 0, &Three, 1, Reclaimer), Tiny);
  EXPECT_LE(Cache.residentBytes(), Cache.budgetBytes());
}

TEST(CodeCache, OversizeBodyIsRejectedAndRetired) {
  CodeCache Cache(64); // Smaller than any real body.
  CodeReclaimer Reclaimer;
  EXPECT_FALSE(
      Cache.insert(fakeInfo(0), 0, intSig(1), fakeCode(100), Reclaimer));
  EXPECT_EQ(Cache.stats().RejectedOversize, 1u);
  EXPECT_EQ(Cache.size(), 0u);
  // The caller still runs the body once; it must stay alive (rooted)
  // until dispatch-boundary epochs retire it.
  EXPECT_EQ(Reclaimer.pending(), 1u);
}

TEST(CodeCache, InvalidateDropsAllEntriesOfAFunction) {
  CodeCache Cache(1 << 20);
  CodeReclaimer Reclaimer;
  ASSERT_TRUE(Cache.insert(fakeInfo(0), 0, intSig(1), fakeCode(4), Reclaimer));
  ASSERT_TRUE(Cache.insert(fakeInfo(0), 0, intSig(2), fakeCode(4), Reclaimer));
  ASSERT_TRUE(Cache.insert(fakeInfo(1), 0, intSig(1), fakeCode(4), Reclaimer));
  EXPECT_EQ(Cache.entriesFor(fakeInfo(0)), 2u);

  Cache.invalidate(fakeInfo(0), Reclaimer);
  EXPECT_EQ(Cache.entriesFor(fakeInfo(0)), 0u);
  EXPECT_EQ(Cache.entriesFor(fakeInfo(1)), 1u);
  EXPECT_EQ(Cache.stats().Invalidations, 2u);
  EXPECT_EQ(Reclaimer.pending(), 2u);

  size_t Visited = 0;
  Cache.forEachEntry([&](const CodeCache::Entry &) { ++Visited; });
  EXPECT_EQ(Visited, 1u);
}

// --- Through the engine ---------------------------------------------------

EngineKnobs cacheKnobs(size_t Bytes, uint32_t Threads = 0,
                       bool Drain = false) {
  EngineKnobs Knobs;
  Knobs.CodeCacheBytes = Bytes;
  Knobs.CompileThreads = Threads;
  Knobs.CompileDrain = Drain;
  return Knobs;
}

TEST(CodeCacheEngine, CrossCallReuseOfSpecializedBodies) {
  Runtime RT;
  Engine E(RT, OptConfig::all(), cacheKnobs(1 << 20));
  E.setCallThreshold(4);
  E.setLoopThreshold(100000);
  RT.evaluate("function f(x) { return x * 2 + 1; }"
              "for (var i = 0; i < 40; i++) f(7);");
  ASSERT_FALSE(RT.hasError());
  ASSERT_NE(E.codeCache(), nullptr);
  // One specialized compile, every later call a cache hit.
  EXPECT_EQ(E.codeCache()->stats().Insertions, 1u);
  EXPECT_GT(E.codeCache()->stats().Hits, 30u);
  EXPECT_EQ(E.stats().SpecializedCompiles, 1u);
  // The cache is the entry dispatch: no despecialization happened.
  EXPECT_EQ(E.stats().Despecializations, 0u);
}

TEST(CodeCacheEngine, DistinctValuesCoexistInsteadOfDespecializing) {
  Runtime RT;
  Engine E(RT, OptConfig::all(), cacheKnobs(1 << 20));
  E.setCallThreshold(4);
  E.setLoopThreshold(100000);
  // The legacy policy despecializes f on the first different argument;
  // the cache holds one body per value instead.
  RT.evaluate("function f(x) { return x * 2; }"
              "for (var i = 0; i < 20; i++) f(1);"
              "for (var i = 0; i < 20; i++) f(2);"
              "for (var i = 0; i < 20; i++) f(1);");
  ASSERT_FALSE(RT.hasError());
  EXPECT_EQ(E.codeCache()->stats().Insertions, 2u);
  EXPECT_EQ(E.stats().Despecializations, 0u);
  EXPECT_EQ(E.stats().GenericCompiles, 0u);
  EXPECT_GT(E.codeCache()->stats().Hits, 40u);
}

TEST(CodeCacheEngine, SignatureCapFallsBackToGenericButKeepsEntries) {
  Runtime RT;
  Engine E(RT, OptConfig::all(), cacheKnobs(1 << 20));
  E.setCallThreshold(2);
  E.setLoopThreshold(100000);
  // 16 distinct values > CodeCacheSigLimit (8): the cache fills its 8
  // slots, then the function gets one generic primary; the 8 cached
  // signatures keep serving their values.
  std::string Src = "function f(x) { return x + 1; }\n";
  for (int Round = 0; Round < 3; ++Round)
    for (int V = 0; V < 16; ++V)
      Src += "f(" + std::to_string(V) + ");\n";
  RT.evaluate(Src);
  ASSERT_FALSE(RT.hasError());
  EXPECT_EQ(E.codeCache()->entriesFor(nullptr), 0u); // (API sanity)
  EXPECT_EQ(E.codeCache()->stats().Insertions,
            static_cast<uint64_t>(Engine::CodeCacheSigLimit));
  EXPECT_EQ(E.codeCache()->size(),
            static_cast<size_t>(Engine::CodeCacheSigLimit));
  EXPECT_EQ(E.stats().GenericCompiles, 1u);
  // Rounds 2 and 3 hit the cached signatures for the first 8 values.
  EXPECT_GE(E.codeCache()->stats().Hits, 16u);
}

TEST(CodeCacheEngine, BudgetEvictionStaysWithinBytes) {
  Runtime RT;
  Engine E(RT, OptConfig::all(), cacheKnobs(2048));
  E.setCallThreshold(2);
  E.setLoopThreshold(100000);
  std::string Src;
  // Many hot functions, one value each: the 2KB budget cannot hold all
  // the bodies, so insertion evicts (while each body alone fits).
  for (int F = 0; F < 16; ++F)
    Src += "function g" + std::to_string(F) + "(x) { return x * 3 + " +
           std::to_string(F) + "; }\n";
  for (int Round = 0; Round < 6; ++Round)
    for (int F = 0; F < 16; ++F)
      Src += "g" + std::to_string(F) + "(" + std::to_string(F) + ");\n";
  RT.evaluate(Src);
  ASSERT_FALSE(RT.hasError());
  const CodeCache *Cache = E.codeCache();
  EXPECT_GT(Cache->stats().Evictions, 0u);
  EXPECT_LE(Cache->residentBytes(), Cache->budgetBytes());
  EXPECT_GT(Cache->stats().Hits + Cache->stats().Misses, 0u);
}

TEST(CodeCacheEngine, DespecializationInvalidatesEntries) {
  Runtime RT;
  Engine E(RT, OptConfig::all(), cacheKnobs(1 << 20));
  E.setCallThreshold(2);
  E.setLoopThreshold(100000);
  E.setBailoutLimit(2);
  // f compiles specialized on an int, then a string argument bails out
  // the int-typed body repeatedly until the bailout limit discards it
  // and invalidates the function's cache entries.
  RT.evaluate("function f(x) { return x + 1; }"
              "for (var i = 0; i < 10; i++) f(1);"
              "for (var i = 0; i < 10; i++) f('s');"
              "for (var i = 0; i < 10; i++) f(1);");
  ASSERT_FALSE(RT.hasError());
  EXPECT_GT(E.codeCache()->stats().Insertions, 0u);
  // The int body and the string body both inserted; whatever the exact
  // discard sequence, accounting must balance.
  const CodeCache::Stats &S = E.codeCache()->stats();
  EXPECT_EQ(E.codeCache()->size(),
            static_cast<size_t>(S.Insertions - S.Evictions -
                                S.Invalidations - S.StaleGenerationDrops));
}

TEST(CodeCacheEngine, DrainModeEvictionUnderBackgroundCompiles) {
  // The invalidation-under-eviction interleaving: background compiler,
  // drain mode (deterministic trigger points), tiny budget so installs
  // of freshly compiled cache bodies evict concurrently living ones.
  Runtime RT;
  Engine E(RT, OptConfig::all(),
           cacheKnobs(4096, /*Threads=*/2, /*Drain=*/true));
  E.setCallThreshold(2);
  E.setLoopThreshold(100000);
  std::string Src;
  for (int F = 0; F < 8; ++F)
    Src += "function h" + std::to_string(F) + "(x) { return x * 5 + " +
           std::to_string(F) + "; }\n";
  for (int Round = 0; Round < 8; ++Round)
    for (int F = 0; F < 8; ++F)
      Src += "h" + std::to_string(F) + "(" + std::to_string(Round % 3) +
             ");\n";
  RT.evaluate(Src);
  ASSERT_FALSE(RT.hasError());
  const CodeCache *Cache = E.codeCache();
  EXPECT_LE(Cache->residentBytes(), Cache->budgetBytes());
  EXPECT_GT(Cache->stats().Insertions, 0u);
}

TEST(CodeCacheEngine, DisabledCacheMatchesLegacyPolicy) {
  // Same program, cache off vs on: identical observable output; with
  // the cache off the engine must behave exactly like the legacy
  // one-binary policy (one despecialization, generic recompile).
  const char *Src = "function f(x) { return x * 2; }"
                    "var r = 0;"
                    "for (var i = 0; i < 20; i++) r = r + f(1);"
                    "for (var i = 0; i < 20; i++) r = r + f(2);"
                    "print(r);";
  std::string OutOff, OutOn;
  {
    Runtime RT;
    Engine E(RT, OptConfig::all(), cacheKnobs(0));
    E.setCallThreshold(4);
    RT.evaluate(Src);
    ASSERT_FALSE(RT.hasError());
    EXPECT_EQ(E.codeCache(), nullptr);
    EXPECT_EQ(E.stats().Despecializations, 1u);
    OutOff = RT.output();
  }
  {
    Runtime RT;
    Engine E(RT, OptConfig::all(), cacheKnobs(1 << 20));
    E.setCallThreshold(4);
    RT.evaluate(Src);
    ASSERT_FALSE(RT.hasError());
    EXPECT_EQ(E.stats().Despecializations, 0u);
    OutOn = RT.output();
  }
  EXPECT_EQ(OutOff, OutOn);
}

} // namespace
