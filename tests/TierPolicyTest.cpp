//===- tests/TierPolicyTest.cpp - The specialization-tier ladder ----------===//
///
/// \file
/// The adaptive value -> type -> generic ladder (DESIGN.md
/// "Specialization tiers"): per-parameter demotion on misses, the
/// generic fallback as the only path to NeverSpecialize, the
/// profiler-driven initial tier choice, the cache-hit tier split, and
/// differential runs against the paper policy and the interpreter.
///
//===----------------------------------------------------------------------===//

#include "jit/Engine.h"
#include "profiling/CallProfiler.h"
#include "vm/Bytecode.h"
#include "vm/Runtime.h"

#include <gtest/gtest.h>

using namespace jitvs;

namespace {

/// Engine with thresholds tuned so only user functions JIT (top-level
/// loops stay interpreted and out of the stats).
struct TieredFixture {
  Runtime RT;
  Engine E{RT, OptConfig::all()};

  TieredFixture() {
    E.setTierPolicy(TierPolicy::Tiered);
    E.setCallThreshold(5);
    E.setLoopThreshold(100000);
  }
};

TEST(TierPolicy, DefaultPolicyIsPaper) {
  Runtime RT;
  Engine E(RT, OptConfig::all());
  EXPECT_EQ(E.tierPolicy(), TierPolicy::Paper);
}

TEST(TierPolicy, ValueMismatchDemotesToTypeTier) {
  TieredFixture F;
  F.RT.evaluate("function f(x) { return x * 2; }"
                "for (var i = 0; i < 10; i++) f(1);" // Specialize on 1.
                "f(2);" // Same tag, new value: value -> type.
                "for (var i = 0; i < 50; i++) f(3);" // Hits the type tier.
                "print(f(4));");
  ASSERT_FALSE(F.RT.hasError());
  EXPECT_EQ(F.RT.output(), "8\n");
  EXPECT_EQ(F.E.stats().Despecializations, 1u);
  EXPECT_EQ(F.E.stats().TierDemotionsValueToType, 1u);
  EXPECT_EQ(F.E.stats().TierDemotionsToGeneric, 0u);
  EXPECT_EQ(F.E.stats().GenericFallbacks, 0u);
  // The demotion recompiled specialized (type tier), not generic.
  EXPECT_EQ(F.E.stats().SpecializedCompiles, 2u);
  EXPECT_EQ(F.E.stats().GenericCompiles, 0u);
  EXPECT_GE(F.E.stats().TypeTierHits, 50u);

  bool Saw = false;
  for (const Engine::FunctionReport &R : F.E.functionReports()) {
    if (R.Name != "f")
      continue;
    Saw = true;
    EXPECT_TRUE(R.WasSpecialized);
    EXPECT_TRUE(R.Despecialized);
    EXPECT_EQ(R.Cause, DespecializeCause::ValueMismatch);
    EXPECT_GE(R.TypeTierHits, 50u);
  }
  EXPECT_TRUE(Saw);
}

TEST(TierPolicy, TypeMismatchFallsBackToGeneric) {
  TieredFixture F;
  F.RT.evaluate("function f(x) { return x * 2; }"
                "for (var i = 0; i < 10; i++) f(1);" // Specialize on 1.
                "var r = f(0.5);" // New tag: value -> generic fallback.
                "for (var i = 0; i < 20; i++) f(1);" // Must NOT respecialize.
                "print(r);");
  ASSERT_FALSE(F.RT.hasError());
  EXPECT_EQ(F.RT.output(), "1\n");
  EXPECT_EQ(F.E.stats().Despecializations, 1u);
  EXPECT_EQ(F.E.stats().TierDemotionsToGeneric, 1u);
  EXPECT_EQ(F.E.stats().GenericFallbacks, 1u);
  // NeverSpecialize: the original argument set returns, yet only the one
  // specialized compile ever happened.
  EXPECT_EQ(F.E.stats().SpecializedCompiles, 1u);
  EXPECT_EQ(F.E.stats().GenericCompiles, 1u);
  EXPECT_EQ(F.E.stats().TypeTierHits, 0u);

  for (const Engine::FunctionReport &R : F.E.functionReports())
    if (R.Name == "f")
      EXPECT_EQ(R.Cause, DespecializeCause::TypeMismatch);
}

TEST(TierPolicy, ValueDemotionDoesNotSetNeverSpecialize) {
  TieredFixture F;
  // After the value -> type demotion, every later call carries a fresh
  // value of the same tag. Under the paper policy this function would be
  // generic forever; under the ladder the type-tier binary keeps hitting
  // and no further despecialization happens.
  F.RT.evaluate("function f(x) { return x + 1; }"
                "for (var i = 0; i < 10; i++) f(1);"
                "var s = 0;"
                "for (var i = 0; i < 60; i++) s = s + f(i);"
                "print(s);");
  ASSERT_FALSE(F.RT.hasError());
  EXPECT_EQ(F.RT.output(), "1830\n");
  EXPECT_EQ(F.E.stats().Despecializations, 1u);
  EXPECT_EQ(F.E.stats().GenericFallbacks, 0u);
  EXPECT_EQ(F.E.stats().SpecializedCompiles, 2u);
  EXPECT_GE(F.E.stats().TypeTierHits, 55u);
}

TEST(TierPolicy, FullLadderDescent) {
  TieredFixture F;
  F.RT.evaluate("function f(x) { return x * 2; }"
                "for (var i = 0; i < 10; i++) f(1);" // Value tier.
                "f(2);"   // value -> type.
                "for (var i = 0; i < 10; i++) f(3);"
                "f(0.5);" // type -> generic: ladder exhausted.
                "for (var i = 0; i < 30; i++) f(9);" // Stays generic.
                "print(f(6));");
  ASSERT_FALSE(F.RT.hasError());
  EXPECT_EQ(F.RT.output(), "12\n");
  EXPECT_EQ(F.E.stats().Despecializations, 2u);
  EXPECT_EQ(F.E.stats().TierDemotionsValueToType, 1u);
  EXPECT_EQ(F.E.stats().TierDemotionsToGeneric, 1u);
  EXPECT_EQ(F.E.stats().GenericFallbacks, 1u);
  EXPECT_EQ(F.E.stats().SpecializedCompiles, 2u);

  for (const Engine::FunctionReport &R : F.E.functionReports())
    if (R.Name == "f")
      EXPECT_EQ(R.Cause, DespecializeCause::TypeMismatch);
}

TEST(TierPolicy, HitSplitSumsToCacheHits) {
  TieredFixture F;
  F.RT.evaluate("function f(x) { return x * 2; }"
                "function g(x) { return x + 1; }"
                "for (var i = 0; i < 20; i++) { f(1); g(7); }"
                "f(2);"
                "for (var i = 0; i < 20; i++) f(i);"
                "print('ok');");
  ASSERT_FALSE(F.RT.hasError());
  const EngineStats &S = F.E.stats();
  EXPECT_EQ(S.ValueTierHits + S.TypeTierHits, S.CacheHits);
  EXPECT_GT(S.ValueTierHits, 0u); // g's stable arg set.
  EXPECT_GT(S.TypeTierHits, 0u);  // f after the demotion.
  for (const Engine::FunctionReport &R : F.E.functionReports())
    EXPECT_EQ(R.ValueTierHits + R.TypeTierHits, R.CacheHits);
}

TEST(TierPolicy, PaperModeCountsAllHitsAsValueTier) {
  Runtime RT;
  Engine E(RT, OptConfig::all());
  E.setCallThreshold(5);
  E.setLoopThreshold(100000);
  RT.evaluate("function f(x) { return x + 1; }"
              "for (var i = 0; i < 30; i++) f(1);");
  ASSERT_FALSE(RT.hasError());
  EXPECT_GT(E.stats().CacheHits, 0u);
  EXPECT_EQ(E.stats().TypeTierHits, 0u);
  EXPECT_EQ(E.stats().ValueTierHits, E.stats().CacheHits);
}

// The worked example from DESIGN.md: a higher-order map whose callback
// flips identity every iteration. The paper policy despecializes map to
// generic on the first flip; the ladder demotes only the callback
// parameter to the type tier (both callbacks are Functions) and keeps a
// specialized binary. All policies must agree with the interpreter.
const char *FlippingClosureSrc =
    "function map(f, a) {"
    "  var r = [];"
    "  for (var i = 0; i < a.length; i++) r[i] = f(a[i]);"
    "  return r; }"
    "function inc(x) { return x + 1; }"
    "function dec(x) { return x - 1; }"
    "var a = [];"
    "for (var i = 0; i < 40; i++) a[i] = i;"
    "var s = 0;"
    "for (var t = 0; t < 30; t++) {"
    "  var f; if (t % 2 == 0) f = inc; else f = dec;"
    "  var m = map(f, a);"
    "  s = s + m[t % 40]; }"
    "print(s);";

TEST(TierPolicy, DifferentialFlippingClosure) {
  Runtime Ref; // Pure interpreter.
  Ref.evaluate(FlippingClosureSrc);
  ASSERT_FALSE(Ref.hasError());

  for (TierPolicy P : {TierPolicy::Paper, TierPolicy::Tiered}) {
    Runtime RT;
    Engine E(RT, OptConfig::all());
    E.setTierPolicy(P);
    E.setCallThreshold(5);
    RT.evaluate(FlippingClosureSrc);
    ASSERT_FALSE(RT.hasError()) << tierPolicyName(P);
    EXPECT_EQ(RT.output(), Ref.output()) << tierPolicyName(P);
    if (P == TierPolicy::Tiered) {
      // The callback flip is a value miss on a Function-tagged slot.
      EXPECT_GE(E.stats().TierDemotionsValueToType, 1u);
      EXPECT_EQ(E.stats().GenericFallbacks, 0u);
      EXPECT_GT(E.stats().TypeTierHits, 0u);
    }
  }
}

TEST(TierPolicy, DifferentialTypeFlip) {
  const char *Src = "function f(x) { return x * 3 - 1; }"
                    "var s = 0;"
                    "for (var i = 0; i < 40; i++) s = s + f(i);"
                    "for (var i = 0; i < 40; i++) s = s + f(i + 0.5);"
                    "print(s);";
  Runtime Ref;
  Ref.evaluate(Src);
  ASSERT_FALSE(Ref.hasError());
  for (TierPolicy P : {TierPolicy::Paper, TierPolicy::Tiered}) {
    Runtime RT;
    Engine E(RT, OptConfig::all());
    E.setTierPolicy(P);
    E.setCallThreshold(5);
    E.setLoopThreshold(100000);
    RT.evaluate(Src);
    ASSERT_FALSE(RT.hasError()) << tierPolicyName(P);
    EXPECT_EQ(RT.output(), Ref.output()) << tierPolicyName(P);
  }
}

// --- Profiler-driven initial tier choice ---

TEST(TierPolicy, ProfilerStartsUnstableParamAtTypeTier) {
  Runtime RT;
  CallProfiler Prof;
  RT.setCallObserver(&Prof);
  Engine E(RT, OptConfig::all());
  E.setTierPolicy(TierPolicy::Tiered);
  E.setProfiler(&Prof);
  E.setCallThreshold(32); // Let the profiler see the value churn first.
  E.setLoopThreshold(100000);
  RT.evaluate("function g(x) { return x + 1; }"
              "var s = 0;"
              "for (var i = 0; i < 200; i++) s = g(i);"
              "print(s);");
  ASSERT_FALSE(RT.hasError());
  EXPECT_EQ(RT.output(), "200\n");
  // The profile showed one tag but many values, so the first compile
  // already sits on the type tier: no value baking, no demotions.
  EXPECT_EQ(E.stats().Despecializations, 0u);
  EXPECT_EQ(E.stats().TierDemotionsValueToType, 0u);
  EXPECT_EQ(E.stats().ValueTierHits, 0u);
  EXPECT_GT(E.stats().TypeTierHits, 100u);
}

TEST(TierPolicy, ProfilerKeepsStableParamAtValueTier) {
  Runtime RT;
  CallProfiler Prof;
  RT.setCallObserver(&Prof);
  Engine E(RT, OptConfig::all());
  E.setTierPolicy(TierPolicy::Tiered);
  E.setProfiler(&Prof);
  E.setCallThreshold(32);
  E.setLoopThreshold(100000);
  RT.evaluate("function g(x) { return x + 1; }"
              "var s = 0;"
              "for (var i = 0; i < 200; i++) s = g(5);"
              "print(s);");
  ASSERT_FALSE(RT.hasError());
  EXPECT_EQ(RT.output(), "6\n");
  EXPECT_EQ(E.stats().Despecializations, 0u);
  EXPECT_EQ(E.stats().TypeTierHits, 0u);
  EXPECT_GT(E.stats().ValueTierHits, 100u);
}

TEST(TierPolicy, ProfilerSkipsLadderForMixedTagParam) {
  Runtime RT;
  CallProfiler Prof;
  RT.setCallObserver(&Prof);
  Engine E(RT, OptConfig::all());
  E.setTierPolicy(TierPolicy::Tiered);
  E.setProfiler(&Prof);
  E.setCallThreshold(32);
  E.setLoopThreshold(100000);
  RT.evaluate("function g(x) { return x + 1; }"
              "var s = 0;"
              "for (var i = 0; i < 200; i++) {"
              "  if (i % 2 == 0) s = g(i); else s = g(i + 0.5); }"
              "print(s);");
  ASSERT_FALSE(RT.hasError());
  // Two tags and many values: nothing stable to assume, so the ladder is
  // skipped entirely — one generic compile, no specialization, and
  // crucially no despecialization churn.
  EXPECT_EQ(E.stats().SpecializedCompiles, 0u);
  EXPECT_EQ(E.stats().CacheHits, 0u);
  EXPECT_EQ(E.stats().Despecializations, 0u);
}

// --- CallProfiler::paramStability unit coverage ---

TEST(ParamStability, CountsDistinctValuesAndTagsPerSlot) {
  CallProfiler P;
  FunctionInfo FI;
  FI.Name = "probe";
  Value A[2] = {Value::int32(1), Value::int32(7)};
  P.recordCall(&FI, A, 2);
  Value B[2] = {Value::int32(1), Value::makeDouble(3.25)};
  P.recordCall(&FI, B, 2);
  Value C[2] = {Value::int32(2), Value::makeDouble(3.25)};
  P.recordCall(&FI, C, 2);

  std::vector<ParamStability> S = P.paramStability(&FI);
  ASSERT_EQ(S.size(), 2u);
  EXPECT_EQ(S[0].DistinctValues, 2u);
  EXPECT_EQ(S[0].DistinctTags, 1u);
  EXPECT_EQ(S[1].DistinctValues, 2u);
  EXPECT_EQ(S[1].DistinctTags, 2u);
}

TEST(ParamStability, ValueTrackingSaturatesAtCap) {
  CallProfiler P;
  FunctionInfo FI;
  FI.Name = "probe";
  for (int I = 0; I != 50; ++I) {
    Value V = Value::int32(I);
    P.recordCall(&FI, &V, 1);
  }
  std::vector<ParamStability> S = P.paramStability(&FI);
  ASSERT_EQ(S.size(), 1u);
  // Saturates at cap + 1: "more than the cap", never grows further.
  EXPECT_EQ(S[0].DistinctValues, CallProfiler::MaxTrackedValuesPerParam + 1);
  EXPECT_EQ(S[0].DistinctTags, 1u);
}

TEST(ParamStability, UnseenFunctionYieldsEmpty) {
  CallProfiler P;
  FunctionInfo FI;
  EXPECT_TRUE(P.paramStability(&FI).empty());
}

} // namespace
