//===- tests/ShapeTest.cpp - Shapes, transition tree and IC states --------===//
///
/// \file
/// The hidden-class substrate: transition-tree sharing (same add order
/// => same shape, different order => different shapes), lock-free
/// lookup semantics, JSObject add-vs-overwrite behavior, the inline
/// cache way/megamorphic state machine, and concurrent transition
/// churn (the TSan CI job runs this suite with two compile workers'
/// worth of reader threads against a mutating tree).
///
//===----------------------------------------------------------------------===//

#include "jit/Engine.h"
#include "vm/GC.h"
#include "vm/Object.h"
#include "vm/Runtime.h"
#include "vm/Shape.h"
#include "vm/TypeFeedback.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

using namespace jitvs;

namespace {

TEST(ShapeTree, SameAddOrderSharesShapes) {
  ShapeTree T;
  const Shape *A = T.transition(T.transition(T.root(), 1), 2);
  const Shape *B = T.transition(T.transition(T.root(), 1), 2);
  EXPECT_EQ(A, B);
  EXPECT_EQ(A->numSlots(), 2u);
  EXPECT_EQ(A->lookup(1), 0);
  EXPECT_EQ(A->lookup(2), 1);
  EXPECT_EQ(A->lookup(3), -1);
}

TEST(ShapeTree, DifferentAddOrderDiverges) {
  ShapeTree T;
  const Shape *AB = T.transition(T.transition(T.root(), 1), 2);
  const Shape *BA = T.transition(T.transition(T.root(), 2), 1);
  EXPECT_NE(AB, BA);
  // Same key set, swapped slots.
  EXPECT_EQ(AB->lookup(1), 0);
  EXPECT_EQ(BA->lookup(1), 1);
  // Root + a + ab + b + ba.
  EXPECT_EQ(T.size(), 5u);
}

TEST(ShapeTree, ObjectsTransitionThroughSharedChain) {
  ShapeTree T;
  Heap H;
  JSObject *O1 = H.allocate<JSObject>(T.root());
  JSObject *O2 = H.allocate<JSObject>(T.root());
  O1->setProperty(T, 7, Value::int32(1));
  O2->setProperty(T, 7, Value::int32(2));
  EXPECT_EQ(O1->shape(), O2->shape());

  // Overwriting an existing property is in-place: no transition.
  const Shape *S = O1->shape();
  O1->setProperty(T, 7, Value::int32(9));
  EXPECT_EQ(O1->shape(), S);
  EXPECT_EQ(O1->getProperty(7).asInt32(), 9);

  // A second add diverges only for the object that takes it.
  O1->setProperty(T, 8, Value::int32(3));
  EXPECT_NE(O1->shape(), O2->shape());
  EXPECT_EQ(O1->shape()->parent(), O2->shape());
}

TEST(SiteFeedbackIC, MonoToPolyToMegamorphic) {
  ShapeTree T;
  const Shape *S1 = T.transition(T.root(), 1);
  const Shape *S2 = T.transition(T.root(), 2);
  const Shape *S3 = T.transition(T.root(), 3);

  SiteFeedback FB;
  EXPECT_EQ(FB.findWay(S1), nullptr);
  FB.addWay(S1, nullptr, 0, /*Limit=*/2);
  ASSERT_NE(FB.findWay(S1), nullptr);
  EXPECT_EQ(FB.NumWays, 1u);

  FB.addWay(S2, nullptr, 0, 2);
  EXPECT_EQ(FB.NumWays, 2u);
  EXPECT_FALSE(FB.Megamorphic);

  // A third shape exceeds the 2-way limit: the site retires for good.
  FB.addWay(S3, nullptr, 0, 2);
  EXPECT_TRUE(FB.Megamorphic);
  EXPECT_EQ(FB.findWay(S3), nullptr);
  FB.addWay(S3, nullptr, 0, 2);
  EXPECT_TRUE(FB.Megamorphic);
}

TEST(SiteFeedbackIC, RuntimeClampsWayLimit) {
  Runtime RT;
  RT.setICWays(99);
  EXPECT_EQ(RT.icWays(), SiteFeedback::MaxICWays);
  RT.setICWays(0);
  EXPECT_EQ(RT.icWays(), 1u);
}

// Concurrent transition churn: writers race to create overlapping
// transition chains while readers walk finished shapes lock-free, the
// pattern background compile workers see. Run under TSan in CI.
TEST(ShapeTree, ConcurrentTransitionChurn) {
  ShapeTree T;
  constexpr int Writers = 4, Props = 24;
  std::atomic<const Shape *> Published[Writers] = {};

  std::vector<std::thread> Threads;
  for (int W = 0; W < Writers; ++W)
    Threads.emplace_back([&, W] {
      // All writers build the same chain 0..Props-1 plus one private
      // suffix, hammering the shared prefix transitions.
      const Shape *S = T.root();
      for (uint32_t P = 0; P < Props; ++P) {
        S = T.transition(S, P);
        Published[W].store(S, std::memory_order_release);
      }
      S = T.transition(S, 1000u + static_cast<uint32_t>(W));
      Published[W].store(S, std::memory_order_release);
    });
  // Reader: look up through whatever the writers have published so far.
  std::thread Reader([&] {
    for (int Round = 0; Round < 2000; ++Round)
      for (int W = 0; W < Writers; ++W)
        if (const Shape *S = Published[W].load(std::memory_order_acquire)) {
          int32_t Slot = S->lookup(0);
          ASSERT_TRUE(Slot == 0 || S->propId() == 0);
        }
  });
  for (std::thread &Th : Threads)
    Th.join();
  Reader.join();

  // The shared prefix must have been created exactly once: Props chain
  // shapes + one private suffix per writer + the root.
  EXPECT_EQ(T.size(), static_cast<size_t>(Props + Writers + 1));
  for (int W = 0; W < Writers; ++W) {
    const Shape *S = Published[W].load();
    EXPECT_EQ(S->numSlots(), static_cast<uint32_t>(Props + 1));
    EXPECT_EQ(S->lookup(1000u + static_cast<uint32_t>(W)),
              static_cast<int32_t>(Props));
  }
}

// End-to-end: the shape tier must be observably transparent. Property-
// heavy program with transitions after compilation (shape-guard
// bailouts) agrees between interpreter, JIT, and JIT with shapes off.
TEST(ShapeEndToEnd, ShapeGuardBailoutDespecializes) {
  const char *Source =
      "function get(o) { return o.x + o.y; }"
      "var a = {x: 1, y: 2};"
      "var t = 0;"
      "for (var i = 0; i < 200; i++) t = (t + get(a)) % 1000003;"
      "a.z = 5;" // Transitions the receiver under compiled code.
      "for (var j = 0; j < 200; j++) t = (t + get(a)) % 1000003;"
      "print(t, a.z);";

  std::string Expected;
  {
    Runtime RT;
    RT.evaluate(Source);
    ASSERT_FALSE(RT.hasError()) << RT.errorMessage();
    Expected = RT.output();
  }
  for (bool ShapesOn : {true, false}) {
    Runtime RT;
    RT.setShapesEnabled(ShapesOn);
    Engine E(RT, OptConfig::all());
    E.setCallThreshold(3);
    E.setLoopThreshold(30);
    RT.evaluate(Source);
    ASSERT_FALSE(RT.hasError()) << RT.errorMessage();
    EXPECT_EQ(RT.output(), Expected) << "shapes=" << ShapesOn;
  }
}

} // namespace
