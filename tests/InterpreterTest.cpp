//===- tests/InterpreterTest.cpp - Interpreter semantics ------------------===//
///
/// \file
/// End-to-end semantics of the bytecode interpreter (no JIT attached):
/// arithmetic, control flow, closures, objects, arrays, strings, builtins
/// and error handling.
///
//===----------------------------------------------------------------------===//

#include "vm/Runtime.h"

#include <gtest/gtest.h>

using namespace jitvs;

namespace {

/// Runs \p Source and returns the print output; fails the test on errors.
std::string runOutput(const std::string &Source) {
  Runtime RT;
  RT.evaluate(Source);
  EXPECT_FALSE(RT.hasError()) << RT.errorMessage();
  return RT.output();
}

/// Runs \p Source and returns the runtime error message ("" when none).
std::string runError(const std::string &Source) {
  Runtime RT;
  RT.evaluate(Source);
  return RT.hasError() ? RT.errorMessage() : "";
}

TEST(Interpreter, PrintsNumbers) {
  EXPECT_EQ(runOutput("print(1 + 2);"), "3\n");
  EXPECT_EQ(runOutput("print(10 / 4);"), "2.5\n");
  EXPECT_EQ(runOutput("print(7 % 3);"), "1\n");
  EXPECT_EQ(runOutput("print(2 * 3 + 4);"), "10\n");
  EXPECT_EQ(runOutput("print(2 + 3 * 4);"), "14\n");
  EXPECT_EQ(runOutput("print(-5);"), "-5\n");
  EXPECT_EQ(runOutput("print(1.5 + 1.25);"), "2.75\n");
}

TEST(Interpreter, IntegerOverflowPromotesToDouble) {
  EXPECT_EQ(runOutput("print(2147483647 + 1);"), "2147483648\n");
  EXPECT_EQ(runOutput("print(-2147483648 - 1);"), "-2147483649\n");
  EXPECT_EQ(runOutput("print(100000 * 100000);"), "10000000000\n");
}

TEST(Interpreter, BitwiseOps) {
  EXPECT_EQ(runOutput("print(6 & 3);"), "2\n");
  EXPECT_EQ(runOutput("print(6 | 3);"), "7\n");
  EXPECT_EQ(runOutput("print(6 ^ 3);"), "5\n");
  EXPECT_EQ(runOutput("print(~5);"), "-6\n");
  EXPECT_EQ(runOutput("print(1 << 10);"), "1024\n");
  EXPECT_EQ(runOutput("print(-8 >> 1);"), "-4\n");
  EXPECT_EQ(runOutput("print(-8 >>> 28);"), "15\n");
  // ToInt32 wrapping of doubles.
  EXPECT_EQ(runOutput("print((4294967296 + 5) | 0);"), "5\n");
  EXPECT_EQ(runOutput("print(3.7 | 0);"), "3\n");
}

TEST(Interpreter, Comparisons) {
  EXPECT_EQ(runOutput("print(1 < 2, 2 <= 2, 3 > 4, 4 >= 4);"),
            "true true false true\n");
  EXPECT_EQ(runOutput("print('a' < 'b', 'abc' < 'abd');"), "true true\n");
  EXPECT_EQ(runOutput("print(1 == '1', 1 === 1, 1 === '1');"),
            "true true false\n");
  EXPECT_EQ(runOutput("print(null == undefined, null === undefined);"),
            "true false\n");
  EXPECT_EQ(runOutput("print(NaN == NaN);"), "false\n");
}

TEST(Interpreter, StringOps) {
  EXPECT_EQ(runOutput("print('foo' + 'bar');"), "foobar\n");
  EXPECT_EQ(runOutput("print('x=' + 42);"), "x=42\n");
  EXPECT_EQ(runOutput("print('abc'.length);"), "3\n");
  EXPECT_EQ(runOutput("print('abc'.charCodeAt(1));"), "98\n");
  EXPECT_EQ(runOutput("print('abc'.charAt(2));"), "c\n");
  EXPECT_EQ(runOutput("print('hello'.substring(1, 3));"), "el\n");
  EXPECT_EQ(runOutput("print('hello'.indexOf('ll'));"), "2\n");
  EXPECT_EQ(runOutput("print('a,b,c'.split(','));"), "a,b,c\n");
  EXPECT_EQ(runOutput("print('aBc'.toUpperCase(), 'aBc'.toLowerCase());"),
            "ABC abc\n");
  EXPECT_EQ(runOutput("print(String.fromCharCode(104, 105));"), "hi\n");
  EXPECT_EQ(runOutput("print('abc'[1]);"), "b\n");
}

TEST(Interpreter, ControlFlow) {
  EXPECT_EQ(runOutput("var x = 3; if (x > 2) print('big'); else print('s');"),
            "big\n");
  EXPECT_EQ(runOutput("var s = 0; var i = 0; while (i < 5) { s += i; i++; }"
                      "print(s);"),
            "10\n");
  EXPECT_EQ(runOutput("var s = 0; for (var i = 0; i < 5; i++) s += i;"
                      "print(s);"),
            "10\n");
  EXPECT_EQ(runOutput("var i = 0; do { i++; } while (i < 3); print(i);"),
            "3\n");
  EXPECT_EQ(runOutput("var s = 0; for (var i = 0; i < 10; i++) {"
                      "if (i == 3) continue; if (i == 6) break; s += i; }"
                      "print(s);"),
            "12\n");
  EXPECT_EQ(runOutput("print(1 ? 'a' : 'b', 0 ? 'a' : 'b');"), "a b\n");
}

TEST(Interpreter, LogicalShortCircuit) {
  EXPECT_EQ(runOutput("print(1 && 2, 0 && 2, 1 || 2, 0 || 2);"),
            "2 0 1 2\n");
  EXPECT_EQ(runOutput("var n = 0; function f() { n++; return true; }"
                      "var r = false && f(); print(n);"),
            "0\n");
}

TEST(Interpreter, Functions) {
  EXPECT_EQ(runOutput("function add(a, b) { return a + b; } print(add(2,3));"),
            "5\n");
  EXPECT_EQ(runOutput("function f() {} print(f());"), "undefined\n");
  // Missing arguments become undefined; NaN propagates.
  EXPECT_EQ(runOutput("function f(a, b) { return a + b; } print(isNaN(f(1)));"),
            "true\n");
  EXPECT_EQ(
      runOutput("function fib(n) { if (n < 2) return n;"
                "return fib(n - 1) + fib(n - 2); } print(fib(12));"),
      "144\n");
}

TEST(Interpreter, Closures) {
  EXPECT_EQ(runOutput("function counter() { var n = 0;"
                      "return function() { n++; return n; }; }"
                      "var c = counter(); c(); c(); print(c());"),
            "3\n");
  EXPECT_EQ(runOutput("function make(x) { return function(y) {"
                      "return x + y; }; } var add5 = make(5);"
                      "print(add5(4));"),
            "9\n");
  // Two closures sharing one environment.
  EXPECT_EQ(runOutput(
                "function pair() { var n = 10;"
                "function get() { return n; } function inc() { n++; }"
                "return [get, inc]; } var p = pair();"
                "p[1](); p[1](); print(p[0]());"),
            "12\n");
}

TEST(Interpreter, HigherOrderFunctions) {
  // The paper's running example (Figure 6).
  EXPECT_EQ(runOutput("function inc(x) { return x + 1; }"
                      "function map(s, b, n, f) { var i = b;"
                      "while (i < n) { s[i] = f(s[i]); i++; } return s; }"
                      "print(map(new Array(1, 2, 3, 4, 5), 2, 5, inc));"),
            "1,2,4,5,6\n");
}

TEST(Interpreter, Arrays) {
  EXPECT_EQ(runOutput("var a = [1, 2, 3]; print(a.length, a[0], a[2]);"),
            "3 1 3\n");
  EXPECT_EQ(runOutput("var a = []; a.push(7); a.push(8); print(a.pop(), "
                      "a.length);"),
            "8 1\n");
  EXPECT_EQ(runOutput("var a = new Array(3); print(a.length, a[1]);"),
            "3 undefined\n");
  EXPECT_EQ(runOutput("var a = [1,2]; a[5] = 9; print(a.length, a[3], a[5]);"),
            "6 undefined 9\n");
  EXPECT_EQ(runOutput("print([3,1,2].sort().join('-'));"), "1-2-3\n");
  EXPECT_EQ(runOutput("print([1,2,3].indexOf(2), [1,2,3].indexOf(9));"),
            "1 -1\n");
  EXPECT_EQ(runOutput("print([1,2,3,4].slice(1, 3).join());"), "2,3\n");
  EXPECT_EQ(runOutput("var a = [1,2,3]; a.reverse(); print(a.join());"),
            "3,2,1\n");
  EXPECT_EQ(runOutput("print([0,1].concat([2,3]).length);"), "4\n");
  EXPECT_EQ(runOutput("var a = [4,5,6]; print(a.shift(), a.join());"),
            "4 5,6\n");
}

TEST(Interpreter, Objects) {
  EXPECT_EQ(runOutput("var o = {a: 1, b: 'two'}; print(o.a, o.b);"),
            "1 two\n");
  EXPECT_EQ(runOutput("var o = {}; o.x = 5; o.x += 2; print(o.x);"), "7\n");
  EXPECT_EQ(runOutput("var o = {n: 1}; print(o['n']); o['m'] = 2;"
                      "print(o.m);"),
            "1\n2\n");
  EXPECT_EQ(runOutput("print({}.missing);"), "undefined\n");
}

TEST(Interpreter, MethodsAndThis) {
  EXPECT_EQ(runOutput("var o = { v: 41, get: function() { return this.v; } };"
                      "print(o.get());"),
            "41\n");
  EXPECT_EQ(runOutput("function Point(x, y) { this.x = x; this.y = y; }"
                      "var p = new Point(3, 4);"
                      "print(p.x * p.x + p.y * p.y);"),
            "25\n");
  EXPECT_EQ(runOutput("function T() { this.n = 1; this.bump = function() {"
                      "this.n++; }; } var t = new T(); t.bump(); t.bump();"
                      "print(t.n);"),
            "3\n");
}

TEST(Interpreter, TypeOf) {
  EXPECT_EQ(runOutput("print(typeof 1, typeof 'a', typeof true);"),
            "number string boolean\n");
  EXPECT_EQ(runOutput("print(typeof undefined, typeof null, typeof {});"),
            "undefined object object\n");
  EXPECT_EQ(runOutput("print(typeof [], typeof print);"),
            "object function\n");
}

TEST(Interpreter, IncDec) {
  EXPECT_EQ(runOutput("var i = 5; print(i++, i, ++i, i);"), "5 6 7 7\n");
  EXPECT_EQ(runOutput("var i = 5; print(i--, i, --i, i);"), "5 4 3 3\n");
  EXPECT_EQ(runOutput("var a = [10]; print(a[0]++, a[0], ++a[0]);"),
            "10 11 12\n");
  EXPECT_EQ(runOutput("var o = {n: 1}; o.n++; ++o.n; print(o.n);"), "3\n");
}

TEST(Interpreter, CompoundAssignments) {
  EXPECT_EQ(runOutput("var x = 10; x += 5; x -= 3; x *= 2; print(x);"),
            "24\n");
  EXPECT_EQ(runOutput("var x = 7; x &= 3; print(x);"), "3\n");
  EXPECT_EQ(runOutput("var x = 1; x <<= 4; x >>= 1; print(x);"), "8\n");
  EXPECT_EQ(runOutput("var a = [1]; a[0] += 9; print(a[0]);"), "10\n");
  EXPECT_EQ(runOutput("var o = {n: 2}; o.n *= 8; print(o.n);"), "16\n");
}

TEST(Interpreter, MathBuiltins) {
  EXPECT_EQ(runOutput("print(Math.abs(-3), Math.floor(2.7), Math.ceil(2.1));"),
            "3 2 3\n");
  EXPECT_EQ(runOutput("print(Math.max(1, 9, 4), Math.min(1, 9, 4));"),
            "9 1\n");
  EXPECT_EQ(runOutput("print(Math.pow(2, 10), Math.sqrt(81));"),
            "1024 9\n");
  EXPECT_EQ(runOutput("print(Math.round(2.5), Math.round(-2.5));"), "3 -2\n");
  // Deterministic RNG: value must be in [0, 1).
  EXPECT_EQ(runOutput("var r = Math.random();"
                      "print(r >= 0 && r < 1);"),
            "true\n");
}

TEST(Interpreter, GlobalFunctions) {
  EXPECT_EQ(runOutput("print(parseInt('42'), parseInt('ff', 16));"),
            "42 255\n");
  EXPECT_EQ(runOutput("print(parseFloat('2.5px'));"), "2.5\n");
  EXPECT_EQ(runOutput("print(isNaN(0 / 0), isNaN(1));"), "true false\n");
}

TEST(Interpreter, Errors) {
  EXPECT_NE(runError("var x = null; x.foo;"), "");
  EXPECT_NE(runError("undefinedGlobal();"), "");
  EXPECT_NE(runError("function f() { return f() + 1; } f();"), "");
  EXPECT_EQ(runError("var a = [1]; print(a[99]);"), ""); // OOB is undefined.
}

TEST(Interpreter, ParseErrors) {
  Runtime RT;
  EXPECT_FALSE(RT.load("var = 3;"));
  EXPECT_TRUE(RT.hasError());
  Runtime RT2;
  EXPECT_FALSE(RT2.load("function f( { }"));
  Runtime RT3;
  EXPECT_FALSE(RT3.load("print('unterminated);"));
}

TEST(Interpreter, GCSurvivesCollections) {
  Runtime RT;
  RT.heap().setGCThreshold(64); // Force frequent collections.
  RT.evaluate("var keep = [];"
              "for (var i = 0; i < 500; i++) {"
              "  var s = 'x' + i;"
              "  if (i % 10 == 0) keep.push(s);"
              "  var tmp = [i, i + 1, {k: s}];"
              "}"
              "print(keep.length, keep[49]);"
              "gc();"
              "print(keep[0], keep[49]);");
  EXPECT_FALSE(RT.hasError()) << RT.errorMessage();
  EXPECT_EQ(RT.output(), "50 x490\nx0 x490\n");
  EXPECT_GT(RT.heap().gcCount(), 0u);
}

TEST(Interpreter, TopLevelResult) {
  Runtime RT;
  Value V = RT.evaluate("var x = 1;");
  EXPECT_TRUE(V.isUndefined());
  EXPECT_FALSE(RT.hasError());
}

TEST(Interpreter, CallGlobalFromEmbedder) {
  Runtime RT;
  ASSERT_TRUE(RT.load("function square(x) { return x * x; }"));
  RT.run();
  Value R = RT.callGlobal("square", {Value::int32(12)});
  ASSERT_TRUE(R.isInt32());
  EXPECT_EQ(R.asInt32(), 144);
}

} // namespace
