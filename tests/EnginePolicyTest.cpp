//===- tests/EnginePolicyTest.cpp - Specialization policy edge cases ------===//
///
/// \file
/// The Section 4 policy in detail: threshold behavior, the one-cached-
/// argument-set rule, never-respecializing after a deopt, OSR slot
/// revalidation, bailout-limit code discarding, and the per-function
/// reports that feed the paper's tables.
///
//===----------------------------------------------------------------------===//

#include "jit/Engine.h"
#include "vm/Runtime.h"

#include <gtest/gtest.h>

using namespace jitvs;

namespace {

TEST(Policy, ColdFunctionsStayInterpreted) {
  Runtime RT;
  Engine E(RT, OptConfig::all());
  E.setCallThreshold(100);
  RT.evaluate("function f(x) { return x + 1; }"
              "for (var i = 0; i < 50; i++) f(1);");
  ASSERT_FALSE(RT.hasError());
  EXPECT_EQ(E.stats().Compilations, 0u);
  EXPECT_EQ(E.stats().InterpretedCalls, 50u);
}

TEST(Policy, HotFunctionCompilesOnce) {
  Runtime RT;
  Engine E(RT, OptConfig::all());
  E.setCallThreshold(10);
  E.setLoopThreshold(100000); // Keep top-level code out of the JIT.
  RT.evaluate("function f(x) { return x + 1; }"
              "for (var i = 0; i < 100; i++) f(7);");
  ASSERT_FALSE(RT.hasError());
  EXPECT_EQ(E.stats().Compilations, 1u);
  EXPECT_EQ(E.stats().SpecializedCompiles, 1u);
  EXPECT_EQ(E.stats().Recompilations, 0u);
}

TEST(Policy, NeverRespecializesAfterDeopt) {
  Runtime RT;
  Engine E(RT, OptConfig::all());
  E.setCallThreshold(5);
  RT.evaluate("function f(x) { return x * 2; }"
              "for (var i = 0; i < 10; i++) f(1);" // Specialize on 1.
              "f(2);"                              // Deopt -> generic.
              "for (var i = 0; i < 50; i++) f(3);" // Same new arg 50x...
              "print('done');");
  ASSERT_FALSE(RT.hasError());
  // ...but the paper's policy marks the function: exactly one
  // specialized compile ever, one despecialization, one generic compile.
  EXPECT_EQ(E.stats().SpecializedCompiles, 1u);
  EXPECT_EQ(E.stats().Despecializations, 1u);
  EXPECT_EQ(E.stats().GenericCompiles, 1u);
}

TEST(Policy, CacheKeyIncludesArgCount) {
  Runtime RT;
  Engine E(RT, OptConfig::all());
  E.setCallThreshold(3);
  RT.evaluate("function f(a, b) { return a; }"
              "for (var i = 0; i < 10; i++) f(1, 2);"
              "f(1);" // Same leading arg, different arity: must deopt.
              "print('ok');");
  ASSERT_FALSE(RT.hasError());
  EXPECT_EQ(E.stats().Despecializations, 1u);
}

TEST(Policy, ObjectIdentityIsTheCacheKey) {
  Runtime RT;
  Engine E(RT, OptConfig::all());
  E.setCallThreshold(3);
  RT.evaluate("function len(a) { return a.length; }"
              "var arr = [1, 2, 3];"
              "for (var i = 0; i < 20; i++) len(arr);" // One identity.
              "len([1, 2, 3]);"                        // New identity.
              "print('ok');");
  ASSERT_FALSE(RT.hasError());
  EXPECT_EQ(E.stats().Despecializations, 1u);
}

TEST(Policy, StringContentIsTheCacheKey) {
  Runtime RT;
  Engine E(RT, OptConfig::all());
  E.setCallThreshold(3);
  RT.evaluate("function h(s) { return s.length; }"
              "for (var i = 0; i < 20; i++) h('ab' + 'c');"
              "print('ok');");
  ASSERT_FALSE(RT.hasError());
  // Fresh string objects with equal contents hit the cache.
  EXPECT_EQ(E.stats().Despecializations, 0u);
  EXPECT_GT(E.stats().CacheHits, 10u);
}

TEST(Policy, OsrRevalidatesBakedSlots) {
  Runtime RT;
  Engine E(RT, OptConfig::all());
  E.setLoopThreshold(40);
  // The loop gets OSR-compiled inside the first call with n=200; the
  // second call enters the same loop with different slot values, which
  // must not reuse the baked OSR constants blindly.
  RT.evaluate("function work(n) { var s = 0;"
              "  for (var i = 0; i < n; i++) s = (s + i) % 99991;"
              "  return s; }"
              "print(work(200), work(300));");
  ASSERT_FALSE(RT.hasError());
  Runtime Ref;
  Ref.evaluate("function work(n) { var s = 0;"
               "  for (var i = 0; i < n; i++) s = (s + i) % 99991;"
               "  return s; }"
               "print(work(200), work(300));");
  EXPECT_EQ(RT.output(), Ref.output());
  EXPECT_GT(E.stats().OsrEntries, 0u);
}

TEST(Policy, BailoutLimitDiscardsCode) {
  Runtime RT;
  Engine E(RT, OptConfig::baseline());
  E.setCallThreshold(3);
  E.setBailoutLimit(4);
  // int32 feedback, then persistent double arguments: each call bails
  // until the limit discards the code; the recompile uses the refreshed
  // feedback and stops bailing.
  RT.evaluate("function f(x) { return x + 1; }"
              "for (var i = 0; i < 10; i++) f(1);"
              "var r = 0;"
              "for (var i = 0; i < 20; i++) r = f(0.5);"
              "print(r);");
  ASSERT_FALSE(RT.hasError());
  EXPECT_EQ(RT.output(), "1.5\n");
  EXPECT_GE(E.stats().Bailouts, 1u);
  EXPECT_LE(E.stats().Bailouts, 8u); // Bounded by the limit, not 20.
  EXPECT_GT(E.stats().Recompilations, 0u);
}

TEST(Policy, FunctionReportsClassifyOutcomes) {
  Runtime RT;
  Engine E(RT, OptConfig::all());
  E.setCallThreshold(3);
  RT.evaluate("function stable(x) { return x + 1; }"
              "function flaky(x) { return x * 2; }"
              "for (var i = 0; i < 10; i++) { stable(5); flaky(5); }"
              "flaky(6);"
              "print('ok');");
  ASSERT_FALSE(RT.hasError());
  bool SawStable = false, SawFlaky = false;
  for (const Engine::FunctionReport &R : E.functionReports()) {
    if (R.Name == "stable") {
      SawStable = true;
      EXPECT_TRUE(R.WasSpecialized);
      EXPECT_FALSE(R.Despecialized);
    }
    if (R.Name == "flaky") {
      SawFlaky = true;
      EXPECT_TRUE(R.WasSpecialized);
      EXPECT_TRUE(R.Despecialized);
      EXPECT_GE(R.Compiles, 2u);
    }
    if (R.MinCodeSize != SIZE_MAX) {
      EXPECT_GT(R.MinCodeSize, 0u);
    }
  }
  EXPECT_TRUE(SawStable);
  EXPECT_TRUE(SawFlaky);
}

TEST(Policy, GenericConfigNeverSpecializes) {
  Runtime RT;
  Engine E(RT, OptConfig::baseline());
  E.setCallThreshold(3);
  RT.evaluate("function f(x) { return x + 1; }"
              "for (var i = 0; i < 30; i++) f(1);");
  ASSERT_FALSE(RT.hasError());
  EXPECT_GT(E.stats().Compilations, 0u);
  EXPECT_EQ(E.stats().SpecializedCompiles, 0u);
  EXPECT_EQ(E.stats().CacheHits, 0u);
}

TEST(Policy, CacheDepthTwoKeepsBothSpecializations) {
  Runtime RT;
  Engine E(RT, OptConfig::all());
  E.setCallThreshold(3);
  E.setCacheDepth(2); // The paper's future-work heuristic.
  RT.evaluate("function f(x) { return x * 2; }"
              "for (var i = 0; i < 20; i++) f(5);"   // First slot.
              "for (var i = 0; i < 20; i++) f(9);"   // Second slot.
              "for (var i = 0; i < 20; i++) { f(5); f(9); }" // Both hit.
              "print('ok');");
  ASSERT_FALSE(RT.hasError());
  EXPECT_EQ(E.stats().Despecializations, 0u);
  EXPECT_EQ(E.stats().SpecializedCompiles, 2u);
  EXPECT_GT(E.stats().CacheHits, 60u);
}

TEST(Policy, CacheDepthTwoStillDeoptsOnThirdSet) {
  Runtime RT;
  Engine E(RT, OptConfig::all());
  E.setCallThreshold(3);
  E.setCacheDepth(2);
  RT.evaluate("function f(x) { return x * 2; }"
              "for (var i = 0; i < 10; i++) f(5);"
              "for (var i = 0; i < 10; i++) f(9);"
              "f(1);" // Third distinct set: cache full -> deopt.
              "print(f(7));");
  ASSERT_FALSE(RT.hasError());
  EXPECT_EQ(RT.output(), "14\n");
  EXPECT_EQ(E.stats().Despecializations, 1u);
}

TEST(Policy, CompileTimeIsAccounted) {
  Runtime RT;
  Engine E(RT, OptConfig::all());
  E.setCallThreshold(2);
  RT.evaluate("function f(x) { var s = 0;"
              "  for (var i = 0; i < x; i++) s += i; return s; }"
              "for (var i = 0; i < 10; i++) f(50);");
  ASSERT_FALSE(RT.hasError());
  EXPECT_GT(E.stats().CompileSeconds, 0.0);
}

} // namespace
