//===- examples/web_session.cpp - Specialization on web-like workloads ----===//
///
/// \file
/// Runs the synthetic Alexa-style browsing session (the population the
/// paper's Section 2 study is about) under the JIT with full value
/// specialization and reports how the policy behaves on web-shaped call
/// patterns: how often the specialization cache hits, how many functions
/// despecialize, and what the profiler sees.
///
//===----------------------------------------------------------------------===//

#include "jit/Engine.h"
#include "profiling/CallProfiler.h"
#include "profiling/WebSession.h"
#include "vm/Runtime.h"

#include <cstdio>
#include <cstdlib>

using namespace jitvs;

int main(int argc, char **argv) {
  WebSessionModel Model;
  if (argc > 1)
    Model.NumFunctions = static_cast<unsigned>(std::atoi(argv[1]));

  std::string Source = generateWebSessionProgram(Model, /*Seed=*/42);
  std::printf("generated session: %u functions, %zu bytes of MiniJS\n",
              Model.NumFunctions, Source.size());

  Runtime RT;
  Engine Jit(RT, OptConfig::all());
  Jit.setCallThreshold(4); // Web functions are rarely hot; compile early
                           // so the policy is visible.
  CallProfiler Profiler;
  RT.setCallObserver(&Profiler);

  RT.evaluate(Source);
  if (RT.hasError()) {
    std::fprintf(stderr, "error: %s\n", RT.errorMessage().c_str());
    return 1;
  }

  std::printf("\nprofile: %.2f%% of functions called once, "
              "%.2f%% with a single argument set\n",
              Profiler.fractionCalledOnce() * 100.0,
              Profiler.fractionSingleArgSet() * 100.0);

  const EngineStats &S = Jit.stats();
  std::printf("\nengine under OptConfig::all():\n");
  std::printf("  compilations:      %8llu (%llu specialized, %llu generic)\n",
              static_cast<unsigned long long>(S.Compilations),
              static_cast<unsigned long long>(S.SpecializedCompiles),
              static_cast<unsigned long long>(S.GenericCompiles));
  std::printf("  native calls:      %8llu\n",
              static_cast<unsigned long long>(S.NativeCalls));
  std::printf("  cache hits:        %8llu\n",
              static_cast<unsigned long long>(S.CacheHits));
  std::printf("  despecializations: %8llu\n",
              static_cast<unsigned long long>(S.Despecializations));
  std::printf("  bailouts:          %8llu\n",
              static_cast<unsigned long long>(S.Bailouts));
  std::printf("  compile time:      %8.2f ms\n", S.CompileSeconds * 1e3);

  uint64_t Specialized = 0, Successful = 0;
  for (const Engine::FunctionReport &R : Jit.functionReports()) {
    if (!R.WasSpecialized)
      continue;
    ++Specialized;
    if (!R.Despecialized)
      ++Successful;
  }
  std::printf("\npolicy outcome: %llu functions specialized, %llu kept "
              "their specialization for the whole session (%0.1f%%)\n",
              static_cast<unsigned long long>(Specialized),
              static_cast<unsigned long long>(Successful),
              Specialized ? 100.0 * Successful / Specialized : 0.0);
  std::printf("(the paper's bet: with ~60%% of web functions "
              "monomorphic, most specializations should survive)\n");
  return 0;
}
