//===- examples/run_workload.cpp - Run suite workloads from the CLI -------===//
///
/// \file
/// Command-line driver over the built-in benchmark suites: run one
/// workload (or a whole suite, or a .js file) under a chosen
/// optimization configuration and report runtime plus engine statistics.
///
/// Usage:
///   run_workload                       # list workloads and configs
///   run_workload <name> [config]      # e.g. run_workload math-cordic ALL
///   run_workload suite:<suite> [cfg]   # e.g. run_workload suite:kraken PS
///   run_workload file:<path.js> [cfg] # run your own MiniJS program
///
/// Configs: interp, baseline, or any Figure 9 name (PS, CP, PS+CP, ...,
/// ALL).
///
//===----------------------------------------------------------------------===//

#include "jit/Engine.h"
#include "support/Timer.h"
#include "vm/Runtime.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace jitvs;

namespace {

void listEverything() {
  std::printf("workloads:\n");
  for (const Workload &W : allWorkloads())
    std::printf("  %-12s %s\n", W.Suite, W.Name);
  std::printf("\nconfigs: interp baseline");
  for (const NamedConfig &NC : figure9Configs())
    std::printf(" %s", NC.Name);
  std::printf("\n");
}

bool resolveConfig(const char *Name, bool &UseEngine, OptConfig &Out) {
  if (!std::strcmp(Name, "interp")) {
    UseEngine = false;
    return true;
  }
  UseEngine = true;
  if (!std::strcmp(Name, "baseline")) {
    Out = OptConfig::baseline();
    return true;
  }
  for (const NamedConfig &NC : figure9Configs()) {
    if (!std::strcmp(Name, NC.Name)) {
      Out = NC.Config;
      return true;
    }
  }
  return false;
}

int runOne(const char *Name, const std::string &Source, bool UseEngine,
           const OptConfig &Config) {
  Runtime RT;
  std::unique_ptr<Engine> E;
  if (UseEngine)
    E = std::make_unique<Engine>(RT, Config);

  Timer T;
  RT.evaluate(Source);
  double Seconds = T.seconds();
  if (RT.hasError()) {
    std::fprintf(stderr, "%s: error: %s\n", Name, RT.errorMessage().c_str());
    return 1;
  }

  std::printf("-- %s --\n%s", Name, RT.output().c_str());
  std::printf("time: %.3f ms", Seconds * 1e3);
  if (E) {
    const EngineStats &S = E->stats();
    std::printf("  (compiles=%llu spec=%llu cachehits=%llu despec=%llu "
                "bailouts=%llu osr=%llu compile=%.2fms)",
                static_cast<unsigned long long>(S.Compilations),
                static_cast<unsigned long long>(S.SpecializedCompiles),
                static_cast<unsigned long long>(S.CacheHits),
                static_cast<unsigned long long>(S.Despecializations),
                static_cast<unsigned long long>(S.Bailouts),
                static_cast<unsigned long long>(S.OsrEntries),
                S.CompileSeconds * 1e3);
  }
  std::printf("\n\n");
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2) {
    listEverything();
    return 0;
  }

  bool UseEngine = true;
  OptConfig Config = OptConfig::all();
  if (argc >= 3 && !resolveConfig(argv[2], UseEngine, Config)) {
    std::fprintf(stderr, "unknown config '%s'\n", argv[2]);
    return 1;
  }

  const char *Spec = argv[1];
  if (!std::strncmp(Spec, "suite:", 6)) {
    int Rc = 0;
    for (const Workload &W : suiteWorkloads(Spec + 6))
      Rc |= runOne(W.Name, W.Source, UseEngine, Config);
    return Rc;
  }
  if (!std::strncmp(Spec, "file:", 5)) {
    std::ifstream In(Spec + 5);
    if (!In) {
      std::fprintf(stderr, "cannot open %s\n", Spec + 5);
      return 1;
    }
    std::stringstream SS;
    SS << In.rdbuf();
    return runOne(Spec + 5, SS.str(), UseEngine, Config);
  }

  const Workload *W = findWorkload(Spec);
  if (!W) {
    std::fprintf(stderr, "unknown workload '%s' (run with no arguments "
                         "for the list)\n",
                 Spec);
    return 1;
  }
  return runOne(W->Name, W->Source, UseEngine, Config);
}
