//===- examples/quickstart.cpp - Embedding the library in 40 lines --------===//
///
/// \file
/// The smallest end-to-end use of the public API: create a Runtime,
/// attach a JIT Engine with the paper's full optimization set, run a
/// MiniJS program, call one of its functions from C++, and look at what
/// the engine did.
///
//===----------------------------------------------------------------------===//

#include "jit/Engine.h"
#include "vm/Runtime.h"

#include <cstdio>

using namespace jitvs;

int main() {
  Runtime RT;
  Engine Jit(RT, OptConfig::all()); // PS + CP + LI + DCE + BCE.
  RT.setEchoOutput(true);           // print() goes to stdout too.

  const char *Program = R"JS(
    function inc(x) { return x + 1; }

    function map(s, b, n, f) {
      var i = b;
      while (i < n) {
        s[i] = f(s[i]);
        i++;
      }
      return s;
    }

    // The paper's running example (Figure 6): map is always called with
    // the same array, bounds and closure, so the engine specializes it,
    // inlines `inc`, folds the type guards and drops the dead branches.
    var data = new Array(1, 2, 3, 4, 5);
    for (var round = 0; round < 50; round++)
      map(data, 2, 5, inc);
    print('result:', data.join(','));
  )JS";

  RT.evaluate(Program);
  if (RT.hasError()) {
    std::fprintf(stderr, "error: %s\n", RT.errorMessage().c_str());
    return 1;
  }

  // Call a program function directly from C++.
  Value R = RT.callGlobal("inc", {Value::int32(41)});
  std::printf("inc(41) from C++ = %s\n", R.toDisplayString().c_str());

  const EngineStats &S = Jit.stats();
  std::printf("\nengine: %llu compiles (%llu specialized), "
              "%llu cache hits, %llu despecializations, %llu bailouts\n",
              static_cast<unsigned long long>(S.Compilations),
              static_cast<unsigned long long>(S.SpecializedCompiles),
              static_cast<unsigned long long>(S.CacheHits),
              static_cast<unsigned long long>(S.Despecializations),
              static_cast<unsigned long long>(S.Bailouts));
  return 0;
}
