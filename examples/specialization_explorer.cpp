//===- examples/specialization_explorer.cpp - Watch the paper's pipeline --===//
///
/// \file
/// Reproduces the paper's worked example (Figures 6-8) interactively:
/// compiles the `map` function generically and then specialized to the
/// actual arguments, dumping the MIR graph after every optimization of
/// Section 3 — parameter specialization, closure inlining, constant
/// propagation, loop inversion, dead-code elimination and bounds-check
/// elimination — and finally the native code of both versions with their
/// sizes (the Figure 10 effect, one function at a time).
///
/// Usage: specialization_explorer [file.js function arg...]
///   With no arguments, runs the paper's map/inc example.
///
//===----------------------------------------------------------------------===//

#include "jit/Engine.h"
#include "lir/Codegen.h"
#include "mir/MIRBuilder.h"
#include "passes/Passes.h"
#include "vm/Interpreter.h"
#include "vm/Runtime.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace jitvs;

namespace {

const char *PaperExample = R"JS(
function inc(x) { return x + 1; }

function map(s, b, n, f) {
  var i = b;
  while (i < n) {
    s[i] = f(s[i]);
    i++;
  }
  return s;
}

var data = new Array(1, 2, 3, 4, 5);
map(data, 2, 5, inc);
)JS";

void banner(const char *Title) {
  std::printf("\n===== %s =====\n", Title);
}

void dumpStage(MIRGraph &G, const char *Stage) {
  banner(Stage);
  std::printf("%s", G.toString().c_str());
  std::printf("(%zu instructions, %zu blocks)\n", G.numInstructions(),
              G.numBlocks());
}

} // namespace

int main(int argc, char **argv) {
  Runtime RT;
  std::string Source = PaperExample;
  std::string FuncName = "map";

  if (argc >= 3) {
    std::ifstream In(argv[1]);
    if (!In) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::stringstream SS;
    SS << In.rdbuf();
    Source = SS.str();
    FuncName = argv[2];
  }

  if (!RT.load(Source)) {
    std::fprintf(stderr, "compile error: %s\n", RT.errorMessage().c_str());
    return 1;
  }
  RT.run(); // Gather type feedback and the argument values.
  if (RT.hasError()) {
    std::fprintf(stderr, "runtime error: %s\n", RT.errorMessage().c_str());
    return 1;
  }

  FunctionInfo *Target = nullptr;
  for (size_t I = 0; I != RT.program()->numFunctions(); ++I) {
    FunctionInfo *F = RT.program()->function(static_cast<uint32_t>(I));
    if (F->Name == FuncName)
      Target = F;
  }
  if (!Target) {
    std::fprintf(stderr, "no function named '%s'\n", FuncName.c_str());
    return 1;
  }

  banner("bytecode");
  std::printf("%s", Target->disassemble().c_str());

  // The argument set to specialize on: either from the command line
  // (integers) or the paper example's map(data, 2, 5, inc).
  std::vector<Value> Args;
  if (argc > 3) {
    for (int I = 3; I < argc; ++I)
      Args.push_back(Value::int32(std::atoi(argv[I])));
  } else {
    Args.push_back(RT.global(RT.program()->globalSlot("data")));
    Args.push_back(Value::int32(2));
    Args.push_back(Value::int32(5));
    Args.push_back(RT.global(RT.program()->globalSlot("inc")));
  }

  // --- Generic compilation (what baseline IonMonkey would do). ---
  {
    BuildOptions Opts;
    auto G = buildMIR(Target, Opts);
    dumpStage(*G, "generic MIR (after building, cf. Figure 6)");
    runGVN(*G);
    dumpStage(*G, "generic MIR after GVN (baseline pipeline)");
    CodegenStats CS;
    auto Code = generateCode(*G, &CS);
    banner("generic native code");
    std::printf("%s", Code->disassemble().c_str());
    std::printf("BASE size: %zu instructions, %u vregs, %u spills\n",
                Code->sizeInInstructions(), CS.NumVirtualRegs, CS.NumSpills);
  }

  // --- Specialized compilation (the paper's pipeline). ---
  {
    BuildOptions Opts;
    Opts.SpecializedArgs = Args;
    auto G = buildMIR(Target, Opts);
    dumpStage(*G, "after parameter specialization (Section 3.2, Fig. 7a)");

    OptConfig C = OptConfig::all();
    unsigned Inlined = runClosureInlining(*G, RT, C);
    std::printf("\n(closure inlining: %u call sites inlined, Section 3.7)\n",
                Inlined);
    if (Inlined)
      dumpStage(*G, "after closure inlining (Figure 8c)");

    runGVN(*G);
    runConstantPropagation(*G, RT);
    dumpStage(*G, "after constant propagation (Section 3.3, Fig. 7b)");
    runLoopInversion(*G);
    dumpStage(*G, "after loop inversion (Section 3.4, Fig. 7c)");
    runDeadCodeElimination(*G, RT);
    dumpStage(*G, "after dead-code elimination (Section 3.5, Fig. 8a)");
    runBoundsCheckElimination(*G, false);
    dumpStage(*G, "after bounds-check elimination (Section 3.6, Fig. 8b)");

    CodegenStats CS;
    auto Code = generateCode(*G, &CS);
    banner("specialized native code");
    std::printf("%s", Code->disassemble().c_str());
    std::printf("SPECIALIZED size: %zu instructions, %u vregs, %u spills\n",
                Code->sizeInInstructions(), CS.NumVirtualRegs, CS.NumSpills);
  }

  return 0;
}
