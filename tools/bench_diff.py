#!/usr/bin/env python3
"""Compare two directories of BENCH_*.json files (jitvs-bench-v1).

Usage:
  bench_diff.py BASELINE_DIR CURRENT_DIR [--threshold PCT]
                [--allow-missing] [--verbose]

Only rows whose unit is "seconds" are compared (instruction counts,
function tallies etc. are descriptive, not perf gates). A row regresses
when current/baseline - 1 exceeds --threshold percent. Missing files or
rows are errors unless --allow-missing is given; a row present only in
the current run is always fine (new coverage is not a regression).

Exit status: 0 clean, 1 regression (or missing data), 2 usage/schema
errors.
"""

import argparse
import glob
import json
import os
import sys

SCHEMA = "jitvs-bench-v1"


def load_reports(directory):
    """Returns {bench_name: doc}, validating the schema of every file."""
    reports = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            sys.exit(f"bench_diff: cannot read {path}: {e}")
        for key in ("schema", "bench", "reps", "rows", "metrics"):
            if key not in doc:
                sys.exit(f"bench_diff: {path}: missing key '{key}'")
        if doc["schema"] != SCHEMA:
            sys.exit(f"bench_diff: {path}: schema '{doc['schema']}', "
                     f"expected '{SCHEMA}'")
        for row in doc["rows"]:
            for key in ("workload", "config", "value", "unit"):
                if key not in row:
                    sys.exit(f"bench_diff: {path}: row missing '{key}'")
        reports[doc["bench"]] = doc
    return reports


def seconds_rows(doc):
    """Returns {(workload, config): value} for the timed rows."""
    return {(r["workload"], r["config"]): r["value"]
            for r in doc["rows"] if r["unit"] == "seconds"}


def main():
    ap = argparse.ArgumentParser(
        description="diff BENCH_*.json runs against a baseline")
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="regression threshold in percent (default 10)")
    ap.add_argument("--allow-missing", action="store_true",
                    help="missing benches/rows warn instead of failing")
    ap.add_argument("--verbose", action="store_true",
                    help="print every compared row, not just regressions")
    args = ap.parse_args()

    base = load_reports(args.baseline)
    cur = load_reports(args.current)
    if not base:
        sys.exit(f"bench_diff: no BENCH_*.json in {args.baseline}")
    if not cur:
        sys.exit(f"bench_diff: no BENCH_*.json in {args.current}")

    regressions, missing, compared = [], [], 0
    for bench, bdoc in sorted(base.items()):
        if bench not in cur:
            missing.append(f"bench '{bench}' absent from current run")
            continue
        brows, crows = seconds_rows(bdoc), seconds_rows(cur[bench])
        for key, bval in sorted(brows.items()):
            workload, config = key
            label = f"{bench}: {workload} [{config}]"
            if key not in crows:
                missing.append(f"row {label} absent from current run")
                continue
            cval = crows[key]
            if bval <= 0:
                continue  # Degenerate baseline; nothing to gate on.
            delta_pct = (cval / bval - 1.0) * 100.0
            compared += 1
            line = (f"{label}: {bval * 1e3:.3f}ms -> {cval * 1e3:.3f}ms "
                    f"({delta_pct:+.1f}%)")
            if delta_pct > args.threshold:
                regressions.append(line)
            elif args.verbose:
                print("  ok " + line)

    print(f"bench_diff: compared {compared} seconds-rows across "
          f"{len(base)} benches (threshold +{args.threshold:g}%)")
    for line in missing:
        print(f"  MISSING {line}")
    for line in regressions:
        print(f"  REGRESSION {line}")
    if regressions or (missing and not args.allow_missing):
        return 1
    print("bench_diff: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
