#!/bin/sh
# Fails if a JITVS_* environment variable read anywhere in src/ or
# bench/ is missing from the README "Configuration" table, so the
# runtime-knob documentation cannot silently rot. Wired into ctest as
# `docs_check` (see the top-level CMakeLists.txt).
#
# Usage: docs_check.sh [repo-root]  (default: the script's parent dir)

set -eu

ROOT=${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}
README="$ROOT/README.md"

[ -f "$README" ] || { echo "docs_check: no README at $README" >&2; exit 1; }

# Every getenv("JITVS_...") in the sources.
VARS=$(grep -rhoE 'getenv\("JITVS_[A-Z_]+"\)' "$ROOT/src" "$ROOT/bench" |
       sed 's/getenv("\(JITVS_[A-Z_]*\)")/\1/' | sort -u)

[ -n "$VARS" ] || { echo "docs_check: found no JITVS_* reads" >&2; exit 1; }

# The configuration table: lines of the form "| `JITVS_FOO` | ... |".
MISSING=0
for V in $VARS; do
  if ! grep -q "^| \`$V\`" "$README"; then
    echo "docs_check: $V is read in src/ or bench/ but missing from" \
         "the README Configuration table" >&2
    MISSING=1
  fi
done

if [ "$MISSING" -ne 0 ]; then
  exit 1
fi
echo "docs_check: all $(echo "$VARS" | wc -l | tr -d ' ') JITVS_*" \
     "variables documented"
