#!/bin/sh
# Keeps the docs honest against the tree:
#  1. Every JITVS_* environment variable read anywhere in src/, bench/
#     or tools/ must appear in the README "Configuration" table.
#  2. ARCHITECTURE.md must mention every subdirectory of src/, so the
#     module map cannot silently omit a new subsystem.
# Wired into ctest as `docs_check` (see the top-level CMakeLists.txt).
#
# Usage: docs_check.sh [repo-root]  (default: the script's parent dir)

set -eu

ROOT=${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}
README="$ROOT/README.md"
ARCH="$ROOT/ARCHITECTURE.md"

[ -f "$README" ] || { echo "docs_check: no README at $README" >&2; exit 1; }
[ -f "$ARCH" ] || { echo "docs_check: no ARCHITECTURE.md at $ARCH" >&2; exit 1; }

MISSING=0

# --- 1. Env vars: every getenv("JITVS_...") in the sources. ---
VARS=$(grep -rhoE 'getenv\("JITVS_[A-Z_]+"\)' \
       "$ROOT/src" "$ROOT/bench" "$ROOT/tools" |
       sed 's/getenv("\(JITVS_[A-Z_]*\)")/\1/' | sort -u)

[ -n "$VARS" ] || { echo "docs_check: found no JITVS_* reads" >&2; exit 1; }

# The configuration table: lines of the form "| `JITVS_FOO` | ... |".
for V in $VARS; do
  if ! grep -q "^| \`$V\`" "$README"; then
    echo "docs_check: $V is read in src/, bench/ or tools/ but missing" \
         "from the README Configuration table" >&2
    MISSING=1
  fi
done

# --- 2. Module map: every src/ subdirectory named in ARCHITECTURE.md. ---
SUBDIRS=$(find "$ROOT/src" -mindepth 1 -maxdepth 1 -type d \
          -exec basename {} \; | sort)

[ -n "$SUBDIRS" ] || { echo "docs_check: no src/ subdirectories" >&2; exit 1; }

for D in $SUBDIRS; do
  if ! grep -q "src/$D" "$ARCH"; then
    echo "docs_check: src/$D is not mentioned in ARCHITECTURE.md" >&2
    MISSING=1
  fi
done

if [ "$MISSING" -ne 0 ]; then
  exit 1
fi
echo "docs_check: all $(echo "$VARS" | wc -l | tr -d ' ') JITVS_*" \
     "variables documented;" \
     "all $(echo "$SUBDIRS" | wc -l | tr -d ' ') src/ subsystems mapped"
