//===- tools/fuzz_main.cpp - jitvs_fuzz differential fuzzing CLI ----------===//
///
/// \file
/// Command-line driver for the differential fuzzer.
///
///   jitvs_fuzz --count 2000 --start-seed 1     # sweep (the smoke tier)
///   jitvs_fuzz --seed 1234                     # one seed, full matrix
///   jitvs_fuzz --seed 1234 --dump              # print the program
///   jitvs_fuzz --seed 1234 --minimize          # shrink a divergence
///   jitvs_fuzz --file prog.js                  # diff an external file
///
/// Exit status: 0 = no divergence, 1 = divergence found (the report with
/// the seed and minimized reproducer is printed to stdout), 2 = usage.
///
//===----------------------------------------------------------------------===//

#include "fuzz/DiffRunner.h"
#include "fuzz/Minimizer.h"
#include "fuzz/ProgramGen.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace jitvs;
using namespace jitvs::fuzz;

namespace {

struct Options {
  uint64_t Count = 2000;
  uint64_t StartSeed = 1;
  uint64_t Seed = 0;
  bool HaveSeed = false;
  bool Dump = false;
  bool Minimize = false;
  std::string File;
};

void usage() {
  std::cerr
      << "usage: jitvs_fuzz [--count N] [--start-seed S]\n"
         "       jitvs_fuzz --seed S [--dump | --minimize]\n"
         "       jitvs_fuzz --file PATH\n"
         "Runs seeded random MiniJS programs under the full engine-config\n"
         "matrix and diffs output, errors and completion values against\n"
         "the plain interpreter. Exits 1 on any divergence, printing the\n"
         "seed and a minimized reproducer.\n";
}

bool parseU64(const char *S, uint64_t &Out) {
  char *End = nullptr;
  Out = std::strtoull(S, &End, 0);
  return End && *End == '\0' && End != S;
}

/// Reports (and, for generated programs, minimizes) a divergence.
/// \returns the full report text.
std::string report(const FuzzProgram *Prog, const std::string &Source,
                   uint64_t Seed, DiffResult &Result,
                   const std::vector<EngineSetup> &Matrix, bool Minimize) {
  std::string MinSource = Source;
  if (Prog && Minimize) {
    FuzzProgram Min = minimize(*Prog, [&](const std::string &Candidate) {
      return runMatrix(Candidate, Matrix).diverged();
    });
    MinSource = Min.render();
    // Re-diff the minimized program so the report's expected/actual and
    // telemetry describe the reproducer itself, not its ancestor.
    DiffResult MinResult = runMatrix(MinSource, Matrix);
    if (MinResult.diverged())
      return describeDivergence(MinResult.Divergences.front(), Seed,
                                MinSource);
  }
  return describeDivergence(Result.Divergences.front(), Seed, MinSource);
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opt;
  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    if (!std::strcmp(A, "--count")) {
      const char *V = Next();
      if (!V || !parseU64(V, Opt.Count)) {
        usage();
        return 2;
      }
    } else if (!std::strcmp(A, "--start-seed")) {
      const char *V = Next();
      if (!V || !parseU64(V, Opt.StartSeed)) {
        usage();
        return 2;
      }
    } else if (!std::strcmp(A, "--seed")) {
      const char *V = Next();
      if (!V || !parseU64(V, Opt.Seed)) {
        usage();
        return 2;
      }
      Opt.HaveSeed = true;
    } else if (!std::strcmp(A, "--dump")) {
      Opt.Dump = true;
    } else if (!std::strcmp(A, "--minimize")) {
      Opt.Minimize = true;
    } else if (!std::strcmp(A, "--file")) {
      const char *V = Next();
      if (!V) {
        usage();
        return 2;
      }
      Opt.File = V;
    } else {
      usage();
      return 2;
    }
  }

  std::vector<EngineSetup> Matrix = defaultMatrix();

  if (!Opt.File.empty()) {
    std::ifstream In(Opt.File);
    if (!In) {
      std::cerr << "jitvs_fuzz: cannot read " << Opt.File << "\n";
      return 2;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    std::string Source = SS.str();
    DiffResult Result = runMatrix(Source, Matrix);
    if (Result.diverged()) {
      std::cout << "diverging configs:";
      for (const Divergence &D : Result.Divergences)
        std::cout << " " << D.ConfigName;
      std::cout << "\n";
      std::cout << describeDivergence(Result.Divergences.front(), 0, Source);
      return 1;
    }
    std::cout << "jitvs_fuzz: " << Opt.File << ": all "
              << (Matrix.size() - 1) << " configs match the interpreter\n";
    return 0;
  }

  if (Opt.HaveSeed) {
    FuzzProgram Prog = generateProgram(Opt.Seed);
    std::string Source = Prog.render();
    if (Opt.Dump) {
      std::cout << Source;
      return 0;
    }
    DiffResult Result = runMatrix(Source, Matrix);
    if (Result.diverged()) {
      std::cout << report(&Prog, Source, Opt.Seed, Result, Matrix,
                          Opt.Minimize);
      return 1;
    }
    std::cout << "jitvs_fuzz: seed " << Opt.Seed << ": all "
              << (Matrix.size() - 1) << " configs match the interpreter\n";
    return 0;
  }

  // Sweep mode: Count seeds starting at StartSeed. Stops at the first
  // divergence (after minimizing it) so CI fails fast with a reproducer.
  for (uint64_t S = Opt.StartSeed; S < Opt.StartSeed + Opt.Count; ++S) {
    FuzzProgram Prog = generateProgram(S);
    std::string Source = Prog.render();
    DiffResult Result = runMatrix(Source, Matrix);
    if (Result.diverged()) {
      std::cout << report(&Prog, Source, S, Result, Matrix,
                          /*Minimize=*/true);
      std::cerr << "jitvs_fuzz: divergence at seed " << S << " after "
                << (S - Opt.StartSeed + 1) << " programs\n";
      return 1;
    }
    if ((S - Opt.StartSeed + 1) % 500 == 0)
      std::cerr << "jitvs_fuzz: " << (S - Opt.StartSeed + 1) << "/"
                << Opt.Count << " programs, no divergence\n";
  }
  std::cout << "jitvs_fuzz: " << Opt.Count << " programs x "
            << (Matrix.size() - 1)
            << " configs: no divergence from the interpreter\n";
  return 0;
}
