//===- tools/serve_main.cpp - jitvs_serve: multi-session serving bench ----===//
///
/// \file
/// CLI of the serving harness (serve/ServeHarness.h). Replays a stream
/// of synthetic user sessions against one long-lived engine per
/// configuration, prints the latency/cache table, and emits
/// BENCH_serve.json (jitvs-bench-v1, honoring $JITVS_BENCH_OUT) for
/// tools/bench_diff.py and the CI bench job.
///
/// Default configuration matrix:
///   paper-nocache  — the paper's policy, legacy one-binary dispatch
///   paper-cache    — paper policy + shared SpecSig code cache
///   tiered-cache   — adaptive tier ladder + cache
///   tiered-cache-async — ditto, with two background compile workers
///                    (the compile-queue-depth column is live here)
///
/// Self-checks (always on): session calls must not error, and every
/// cache-enabled config of a big-enough run must show cross-session
/// reuse (hits > 0). Violations exit non-zero, so serve_smoke is a real
/// functional gate, not just a timing sample.
///
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"
#include "serve/ServeHarness.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace jitvs;

namespace {

struct CliOptions {
  ServeOptions Serve;
  size_t CacheBytes = 1u << 20; ///< Budget of the cache-enabled configs.
  bool SingleConfig = false; ///< --config NAME: run one column only.
  std::string ConfigName;
  bool WriteJson = true;
};

struct ServeConfig {
  const char *Name;
  EngineKnobs Knobs;
};

std::vector<ServeConfig> configMatrix(size_t CacheBytes) {
  std::vector<ServeConfig> Cfgs;
  {
    ServeConfig C{"paper-nocache", {}};
    Cfgs.push_back(C);
  }
  {
    ServeConfig C{"paper-cache", {}};
    C.Knobs.CodeCacheBytes = CacheBytes;
    Cfgs.push_back(C);
  }
  {
    ServeConfig C{"tiered-cache", {}};
    C.Knobs.Policy = TierPolicy::Tiered;
    C.Knobs.CodeCacheBytes = CacheBytes;
    Cfgs.push_back(C);
  }
  {
    ServeConfig C{"tiered-cache-async", {}};
    C.Knobs.Policy = TierPolicy::Tiered;
    C.Knobs.CodeCacheBytes = CacheBytes;
    C.Knobs.CompileThreads = 2;
    Cfgs.push_back(C);
  }
  return Cfgs;
}

[[noreturn]] void usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --sessions N      sessions to replay per config (default 10000)\n"
      "  --concurrency N   live-session window width (default 64)\n"
      "  --functions N     site bundle function count (default 96)\n"
      "  --requests N      requests per session (default 4)\n"
      "  --calls N         calls per request (default 8)\n"
      "  --seed N          workload seed (default 1)\n"
      "  --cache-bytes N   budget of the cache configs (default 1048576)\n"
      "  --config NAME     run a single config (paper-nocache, paper-cache,\n"
      "                    tiered-cache, tiered-cache-async)\n"
      "  --no-json         skip BENCH_serve.json emission\n",
      Argv0);
  std::exit(2);
}

unsigned parseUnsigned(const char *Arg, const char *Flag) {
  char *End = nullptr;
  unsigned long V = std::strtoul(Arg, &End, 10);
  if (!End || *End || !V) {
    std::fprintf(stderr, "jitvs_serve: bad value '%s' for %s\n", Arg, Flag);
    std::exit(2);
  }
  return static_cast<unsigned>(V);
}

CliOptions parseArgs(int Argc, char **Argv) {
  CliOptions Opts;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= Argc)
        usage(Argv[0]);
      return Argv[++I];
    };
    if (A == "--sessions")
      Opts.Serve.Sessions = parseUnsigned(Next(), "--sessions");
    else if (A == "--concurrency")
      Opts.Serve.Concurrency = parseUnsigned(Next(), "--concurrency");
    else if (A == "--functions")
      Opts.Serve.Model.NumFunctions = parseUnsigned(Next(), "--functions");
    else if (A == "--requests")
      Opts.Serve.Model.RequestsPerSession =
          parseUnsigned(Next(), "--requests");
    else if (A == "--calls")
      Opts.Serve.Model.CallsPerRequest = parseUnsigned(Next(), "--calls");
    else if (A == "--seed")
      Opts.Serve.Seed = parseUnsigned(Next(), "--seed");
    else if (A == "--cache-bytes")
      Opts.CacheBytes = parseUnsigned(Next(), "--cache-bytes");
    else if (A == "--config") {
      Opts.SingleConfig = true;
      Opts.ConfigName = Next();
    } else if (A == "--no-json")
      Opts.WriteJson = false;
    else
      usage(Argv[0]);
  }
  return Opts;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Cli = parseArgs(Argc, Argv);

  std::vector<ServeConfig> Matrix = configMatrix(Cli.CacheBytes);
  if (Cli.SingleConfig) {
    std::vector<ServeConfig> One;
    for (const ServeConfig &C : Matrix)
      if (Cli.ConfigName == C.Name)
        One.push_back(C);
    if (One.empty()) {
      std::fprintf(stderr, "jitvs_serve: unknown --config '%s'\n",
                   Cli.ConfigName.c_str());
      return 2;
    }
    Matrix = std::move(One);
  }

  std::printf("jitvs_serve: %u sessions x %u configs (window %u, "
              "%u requests x %u calls, %u functions, cache budget %zu)\n\n",
              Cli.Serve.Sessions, static_cast<unsigned>(Matrix.size()),
              Cli.Serve.Concurrency, Cli.Serve.Model.RequestsPerSession,
              Cli.Serve.Model.CallsPerRequest, Cli.Serve.Model.NumFunctions,
              Cli.CacheBytes);
  std::printf("%-20s %9s %9s %9s %8s %7s %9s %10s %7s\n", "config",
              "p50(us)", "p99(us)", "total(s)", "compiles", "queue",
              "hit-rate", "resident", "evict");

  bench::BenchReport Report("serve", 1);
  Report.setMeta("sessions", std::to_string(Cli.Serve.Sessions));
  Report.setMeta("concurrency", std::to_string(Cli.Serve.Concurrency));
  Report.setMeta("cache_budget_bytes", std::to_string(Cli.CacheBytes));
  Report.setMeta("seed", std::to_string(Cli.Serve.Seed));

  bool Failed = false;
  for (const ServeConfig &C : Matrix) {
    ServeResult R = runServe(Cli.Serve, OptConfig::all(), C.Knobs);

    std::printf("%-20s %9.1f %9.1f %9.3f %8llu %7zu %9.3f %10zu %7llu\n",
                C.Name, R.P50Seconds * 1e6, R.P99Seconds * 1e6,
                R.TotalSeconds,
                static_cast<unsigned long long>(R.Engine.Compilations),
                R.MaxQueueDepth, R.CacheHitRate, R.ResidentCodeBytes,
                static_cast<unsigned long long>(R.Cache.Evictions));

    // Timed rows (gated by bench_diff.py against bench/baseline).
    Report.addRow("session_p50", C.Name, R.P50Seconds, "seconds");
    Report.addRow("session_p99", C.Name, R.P99Seconds, "seconds");
    // Descriptive rows: functional shape, not perf gates.
    Report.addRow("cache_hit_rate", C.Name, R.CacheHitRate, "ratio");
    Report.addRow("resident_code_bytes", C.Name,
                  static_cast<double>(R.ResidentCodeBytes), "bytes");
    Report.addRow("cache_evictions", C.Name,
                  static_cast<double>(R.Cache.Evictions), "count");
    Report.addRow("cache_insertions", C.Name,
                  static_cast<double>(R.Cache.Insertions), "count");
    Report.addRow("max_queue_depth", C.Name,
                  static_cast<double>(R.MaxQueueDepth), "count");
    Report.addRow("mean_queue_depth", C.Name, R.MeanQueueDepth, "count");
    Report.addRow("compilations", C.Name,
                  static_cast<double>(R.Engine.Compilations), "count");
    Report.addRow("sessions", C.Name, static_cast<double>(R.Sessions),
                  "count");

    if (R.Errors) {
      std::fprintf(stderr,
                   "jitvs_serve: FAIL %s: %llu session calls errored\n",
                   C.Name, static_cast<unsigned long long>(R.Errors));
      Failed = true;
    }
    if (R.Sessions != Cli.Serve.Sessions) {
      std::fprintf(stderr,
                   "jitvs_serve: FAIL %s: completed %llu of %u sessions\n",
                   C.Name, static_cast<unsigned long long>(R.Sessions),
                   Cli.Serve.Sessions);
      Failed = true;
    }
    // Cross-session reuse is the whole point of the cache configs; a
    // run long enough to warm any function must show hits.
    if (R.CacheEnabled && Cli.Serve.Sessions >= 50 && !R.Cache.Hits) {
      std::fprintf(stderr,
                   "jitvs_serve: FAIL %s: cache enabled but zero hits\n",
                   C.Name);
      Failed = true;
    }
    if (R.CacheEnabled && R.ResidentCodeBytes > R.CacheBudgetBytes) {
      std::fprintf(stderr,
                   "jitvs_serve: FAIL %s: resident %zu exceeds budget %zu\n",
                   C.Name, R.ResidentCodeBytes, R.CacheBudgetBytes);
      Failed = true;
    }
  }

  if (Cli.WriteJson)
    Report.write();
  if (Failed)
    return 1;
  std::printf("\njitvs_serve: ok\n");
  return 0;
}
