//===- tools/prof_main.cpp - jitvs_prof: profile-report CLI ---------------===//
///
/// \file
/// Runs a MiniJS program (a script file, a named workload, or a whole
/// suite) with the metrics layer enabled and prints where the time went:
/// the per-phase self-time breakdown (interpret / compile / native /
/// bailout / GC ...) and a top-N table of the hottest functions with
/// their compile cost, bailouts and guard-fail rate. The same data can
/// be exported as a JSON snapshot (--json) for tooling.
///
/// Usage:
///   jitvs_prof [options] <script.js>
///   jitvs_prof [options] --workload <name>
///   jitvs_prof [options] --suite <sunspider|v8|kraken>
///   jitvs_prof --list
/// Options:
///   --top N          rows in the function table (default 10)
///   --policy P       tier policy: paper | tiered (default: paper)
///   --json PATH      also write the metrics JSON snapshot ('-' = stdout)
///   --no-jit         interpret only (no engine attached)
///
//===----------------------------------------------------------------------===//

#include "jit/Engine.h"
#include "profiling/CallProfiler.h"
#include "telemetry/Metrics.h"
#include "vm/Runtime.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace jitvs;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [options] <script.js>\n"
               "       %s [options] --workload <name>\n"
               "       %s [options] --suite <sunspider|v8|kraken>\n"
               "       %s --list\n"
               "options:\n"
               "  --top N       rows in the function table (default 10)\n"
               "  --policy P    tier policy: paper | tiered\n"
               "  --json PATH   write the metrics JSON snapshot ('-' = "
               "stdout)\n"
               "  --no-jit      interpret only\n",
               Argv0, Argv0, Argv0, Argv0);
  return 2;
}

/// Runs one source program under a fresh runtime + engine, folding the
/// engine's stats into the global metrics registry before teardown.
bool runProgram(const std::string &Source, const char *Label, bool Jit,
                TierPolicy Policy) {
  Runtime RT;
  CallProfiler Profiler;
  RT.setCallObserver(&Profiler);
  std::unique_ptr<Engine> E;
  if (Jit) {
    OptConfig Config = OptConfig::all();
    E = std::make_unique<Engine>(RT, Config);
    E->setTierPolicy(Policy);
    E->setProfiler(&Profiler);
  }
  RT.evaluate(Source);
  if (RT.hasError()) {
    std::fprintf(stderr, "jitvs_prof: %s failed: %s\n", Label,
                 RT.errorMessage().c_str());
    return false;
  }
  return true; // ~Engine publishes into the metrics registry.
}

void printPhaseTable() {
  const Metrics &M = metrics();
  uint64_t TotalSelf = M.totalSelfNs();
  std::printf("Phase breakdown (self time; %% of accounted run)\n");
  std::printf("  %-14s %10s %12s %8s %12s %10s %10s\n", "phase", "spans",
              "self-ms", "self-%", "incl-ms", "p50-us", "p99-us");
  for (size_t I = 0; I != NumPhases; ++I) {
    const Metrics::PhaseStat &P = M.phase(static_cast<Phase>(I));
    if (!P.Count)
      continue;
    double Pct = TotalSelf ? 100.0 * static_cast<double>(P.SelfNs) /
                                 static_cast<double>(TotalSelf)
                           : 0.0;
    std::printf("  %-14s %10llu %12.3f %7.2f%% %12.3f %10.1f %10.1f\n",
                phaseName(static_cast<Phase>(I)),
                static_cast<unsigned long long>(P.Count), P.SelfNs / 1e6,
                Pct, P.TotalNs / 1e6, P.SpanNs.percentile(50) / 1e3,
                P.SpanNs.percentile(99) / 1e3);
  }
  std::printf("  total accounted self time: %.3f ms\n\n", TotalSelf / 1e6);
}

void printFunctionTable(size_t TopN) {
  auto Funcs = metrics().functionsByTicks();
  std::printf("Hottest functions (top %zu of %zu)\n", TopN, Funcs.size());
  std::printf("  %-28s %10s %10s %8s %10s %8s %9s %8s %6s\n", "function",
              "ticks", "native", "compiles", "compile-ms", "bailouts",
              "guard-f%", "hits", "tier-t");
  size_t Shown = 0;
  for (const auto &[Name, FM] : Funcs) {
    if (Shown++ == TopN)
      break;
    std::printf("  %-28s %10llu %10llu %8llu %10.3f %8llu %8.2f%% %8llu "
                "%6llu\n",
                Name.c_str(), static_cast<unsigned long long>(FM.Ticks),
                static_cast<unsigned long long>(FM.NativeRuns),
                static_cast<unsigned long long>(FM.Compiles),
                FM.CompileNs / 1e6,
                static_cast<unsigned long long>(FM.Bailouts),
                FM.guardFailRate() * 100.0,
                static_cast<unsigned long long>(FM.CacheHits),
                static_cast<unsigned long long>(FM.TierTransitions));
  }
  if (Funcs.empty())
    std::printf("  (none recorded)\n");
}

/// Shape and inline-cache section: per-kind IC hit rates, megamorphic
/// site count and transition-tree size (published by ~Runtime from the
/// interpreter ICs; the JIT's shape guards show up as shape-guard
/// bailouts in the function table instead).
void printShapeTable() {
  const Metrics &M = metrics();
  struct Row {
    const char *Name;
    uint64_t Hits, Misses;
  };
  const Row Rows[] = {
      {"getprop", M.counter("ic.get.hits"), M.counter("ic.get.misses")},
      {"setprop", M.counter("ic.set.hits"), M.counter("ic.set.misses")},
      {"callmethod", M.counter("ic.call.hits"), M.counter("ic.call.misses")},
  };
  std::printf("\nInline caches\n");
  std::printf("  %-12s %12s %12s %8s\n", "site kind", "hits", "misses",
              "hit-%");
  for (const Row &R : Rows) {
    uint64_t Total = R.Hits + R.Misses;
    std::printf("  %-12s %12llu %12llu %7.2f%%\n", R.Name,
                static_cast<unsigned long long>(R.Hits),
                static_cast<unsigned long long>(R.Misses),
                Total ? 100.0 * static_cast<double>(R.Hits) /
                            static_cast<double>(Total)
                      : 0.0);
  }
  std::printf("  megamorphic sites: %llu, shapes allocated: %llu\n",
              static_cast<unsigned long long>(
                  M.counter("ic.sites.megamorphic")),
              static_cast<unsigned long long>(M.counter("shape.shapes")));
}

} // namespace

int main(int argc, char **argv) {
  size_t TopN = 10;
  TierPolicy Policy = TierPolicy::Paper;
  bool Jit = true;
  std::string JsonPath;
  std::string ScriptPath, WorkloadName, SuiteName;

  for (int I = 1; I < argc; ++I) {
    const char *A = argv[I];
    auto NeedArg = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "jitvs_prof: %s needs an argument\n", Flag);
        std::exit(2);
      }
      return argv[++I];
    };
    if (!std::strcmp(A, "--list")) {
      for (const Workload &W : allWorkloads())
        std::printf("%-12s %s\n", W.Suite, W.Name);
      return 0;
    }
    if (!std::strcmp(A, "--top")) {
      TopN = static_cast<size_t>(std::atoi(NeedArg("--top")));
    } else if (!std::strcmp(A, "--policy")) {
      const char *P = NeedArg("--policy");
      if (!std::strcmp(P, "tiered"))
        Policy = TierPolicy::Tiered;
      else if (!std::strcmp(P, "paper"))
        Policy = TierPolicy::Paper;
      else {
        std::fprintf(stderr, "jitvs_prof: unknown policy '%s'\n", P);
        return 2;
      }
    } else if (!std::strcmp(A, "--json")) {
      JsonPath = NeedArg("--json");
    } else if (!std::strcmp(A, "--workload")) {
      WorkloadName = NeedArg("--workload");
    } else if (!std::strcmp(A, "--suite")) {
      SuiteName = NeedArg("--suite");
    } else if (!std::strcmp(A, "--no-jit")) {
      Jit = false;
    } else if (A[0] == '-') {
      std::fprintf(stderr, "jitvs_prof: unknown option '%s'\n", A);
      return usage(argv[0]);
    } else {
      ScriptPath = A;
    }
  }

  int Sources = !ScriptPath.empty() + !WorkloadName.empty() +
                !SuiteName.empty();
  if (Sources != 1)
    return usage(argv[0]);

  metrics().enable();

  bool Ok = true;
  if (!ScriptPath.empty()) {
    std::ifstream In(ScriptPath);
    if (!In) {
      std::fprintf(stderr, "jitvs_prof: cannot open %s\n",
                   ScriptPath.c_str());
      return 1;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    Ok = runProgram(SS.str(), ScriptPath.c_str(), Jit, Policy);
  } else if (!WorkloadName.empty()) {
    const Workload *W = findWorkload(WorkloadName);
    if (!W) {
      std::fprintf(stderr,
                   "jitvs_prof: unknown workload '%s' (try --list)\n",
                   WorkloadName.c_str());
      return 1;
    }
    Ok = runProgram(W->Source, W->Name, Jit, Policy);
  } else {
    std::vector<Workload> Works = suiteWorkloads(SuiteName);
    if (Works.empty()) {
      std::fprintf(stderr, "jitvs_prof: unknown suite '%s'\n",
                   SuiteName.c_str());
      return 1;
    }
    for (const Workload &W : Works)
      Ok = runProgram(W.Source, W.Name, Jit, Policy) && Ok;
  }
  if (!Ok)
    return 1;

  printPhaseTable();
  printFunctionTable(TopN);
  printShapeTable();

  if (!JsonPath.empty()) {
    if (JsonPath == "-") {
      metrics().writeJson(std::cout);
      std::cout << "\n";
    } else if (!metrics().writeJsonFile(JsonPath)) {
      return 1;
    }
  }
  return 0;
}
