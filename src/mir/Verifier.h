//===- mir/Verifier.h - MIR graph invariant checking ------------*- C++ -*-===//
///
/// \file
/// Structural verification of MIR graphs, run between passes in debug
/// builds: phi arity matches predecessor counts, terminators are last,
/// operands are live and dominate their uses, successor/predecessor
/// links are symmetric, and resume points reference live definitions.
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_MIR_VERIFIER_H
#define JITVS_MIR_VERIFIER_H

#include <string>

namespace jitvs {

class MIRGraph;

/// Checks the graph's structural invariants.
/// \returns an empty string when the graph is well-formed, otherwise a
/// description of the first violation found.
std::string verifyGraph(MIRGraph &Graph);

} // namespace jitvs

#endif // JITVS_MIR_VERIFIER_H
