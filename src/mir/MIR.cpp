//===- mir/MIR.cpp - MIR instruction implementation -----------------------===//

#include "mir/MIR.h"

#include "mir/MIRGraph.h"
#include "mir/Tier.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

using namespace jitvs;

const char *jitvs::mirTypeName(MIRType T) {
  switch (T) {
  case MIRType::Any:
    return "Value";
  case MIRType::Int32:
    return "Int32";
  case MIRType::Double:
    return "Double";
  case MIRType::Boolean:
    return "Boolean";
  case MIRType::String:
    return "String";
  case MIRType::Object:
    return "Object";
  case MIRType::Array:
    return "Array";
  case MIRType::Function:
    return "Function";
  case MIRType::Undefined:
    return "Undefined";
  case MIRType::Null:
    return "Null";
  case MIRType::None:
    return "None";
  }
  JITVS_UNREACHABLE("bad MIRType");
}

MIRType jitvs::mirTypeOfValue(const Value &V) {
  return mirTypeOfTag(V.tag());
}

MIRType jitvs::mirTypeOfTag(ValueTag Tag) {
  switch (Tag) {
  case ValueTag::Undefined:
    return MIRType::Undefined;
  case ValueTag::Null:
    return MIRType::Null;
  case ValueTag::Boolean:
    return MIRType::Boolean;
  case ValueTag::Int32:
    return MIRType::Int32;
  case ValueTag::Double:
    return MIRType::Double;
  case ValueTag::String:
    return MIRType::String;
  case ValueTag::Object:
    return MIRType::Object;
  case ValueTag::Array:
    return MIRType::Array;
  case ValueTag::Function:
    return MIRType::Function;
  }
  JITVS_UNREACHABLE("bad ValueTag");
}

const char *jitvs::paramTierName(ParamTier T) {
  switch (T) {
  case ParamTier::Generic:
    return "generic";
  case ParamTier::Type:
    return "type";
  case ParamTier::Value:
    return "value";
  }
  JITVS_UNREACHABLE("bad ParamTier");
}

const char *jitvs::mirOpName(MirOp O) {
  switch (O) {
  case MirOp::Start:
    return "start";
  case MirOp::Constant:
    return "constant";
  case MirOp::Parameter:
    return "parameter";
  case MirOp::OsrValue:
    return "osrvalue";
  case MirOp::GetThis:
    return "getthis";
  case MirOp::Phi:
    return "phi";
  case MirOp::Goto:
    return "goto";
  case MirOp::Test:
    return "test";
  case MirOp::Return:
    return "return";
  case MirOp::Unbox:
    return "unbox";
  case MirOp::ToDouble:
    return "todouble";
  case MirOp::TruncateToInt32:
    return "truncatetoint32";
  case MirOp::TypeBarrier:
    return "typebarrier";
  case MirOp::AddI:
    return "addi";
  case MirOp::SubI:
    return "subi";
  case MirOp::MulI:
    return "muli";
  case MirOp::ModI:
    return "modi";
  case MirOp::NegI:
    return "negi";
  case MirOp::AddD:
    return "addd";
  case MirOp::SubD:
    return "subd";
  case MirOp::MulD:
    return "muld";
  case MirOp::DivD:
    return "divd";
  case MirOp::ModD:
    return "modd";
  case MirOp::NegD:
    return "negd";
  case MirOp::BitAnd:
    return "bitand";
  case MirOp::BitOr:
    return "bitor";
  case MirOp::BitXor:
    return "bitxor";
  case MirOp::Shl:
    return "shl";
  case MirOp::Shr:
    return "shr";
  case MirOp::UShr:
    return "ushr";
  case MirOp::BitNot:
    return "bitnot";
  case MirOp::CompareI:
    return "comparei";
  case MirOp::CompareD:
    return "compared";
  case MirOp::CompareS:
    return "compares";
  case MirOp::CompareGeneric:
    return "comparegeneric";
  case MirOp::Not:
    return "not";
  case MirOp::Concat:
    return "concat";
  case MirOp::TypeOf:
    return "typeof";
  case MirOp::CheckOverRecursed:
    return "checkoverrecursed";
  case MirOp::BoundsCheck:
    return "boundscheck";
  case MirOp::GuardArrayLength:
    return "guardarraylength";
  case MirOp::ArrayLength:
    return "arraylength";
  case MirOp::StringLength:
    return "stringlength";
  case MirOp::LoadElement:
    return "loadelement";
  case MirOp::StoreElement:
    return "storeelement";
  case MirOp::FromCharCode:
    return "fromcharcode";
  case MirOp::CharCodeAt:
    return "charcodeat";
  case MirOp::GenericBinop:
    return "genericbinop";
  case MirOp::GenericUnop:
    return "genericunop";
  case MirOp::GenericGetElem:
    return "genericgetelem";
  case MirOp::GenericSetElem:
    return "genericsetelem";
  case MirOp::GenericGetProp:
    return "genericgetprop";
  case MirOp::GenericSetProp:
    return "genericsetprop";
  case MirOp::GetGlobal:
    return "getglobal";
  case MirOp::SetGlobal:
    return "setglobal";
  case MirOp::GetEnvSlot:
    return "getenvslot";
  case MirOp::SetEnvSlot:
    return "setenvslot";
  case MirOp::NewArray:
    return "newarray";
  case MirOp::NewArrayLen:
    return "newarraylen";
  case MirOp::NewObject:
    return "newobject";
  case MirOp::InitProp:
    return "initprop";
  case MirOp::MakeClosure:
    return "makeclosure";
  case MirOp::Call:
    return "call";
  case MirOp::CallMethod:
    return "callmethod";
  case MirOp::New:
    return "new";
  case MirOp::MathFunction:
    return "mathfunction";
  case MirOp::GuardShape:
    return "guardshape";
  case MirOp::LoadSlot:
    return "loadslot";
  case MirOp::StoreSlot:
    return "storeslot";
  case MirOp::AddSlot:
    return "addslot";
  case MirOp::CallWithThis:
    return "callwiththis";
  }
  JITVS_UNREACHABLE("bad MirOp");
}

const char *jitvs::mathIntrinsicName(MathIntrinsic F) {
  switch (F) {
  case MathIntrinsic::Sin:
    return "sin";
  case MathIntrinsic::Cos:
    return "cos";
  case MathIntrinsic::Tan:
    return "tan";
  case MathIntrinsic::Atan:
    return "atan";
  case MathIntrinsic::Sqrt:
    return "sqrt";
  case MathIntrinsic::Abs:
    return "abs";
  case MathIntrinsic::Floor:
    return "floor";
  case MathIntrinsic::Ceil:
    return "ceil";
  case MathIntrinsic::Round:
    return "round";
  case MathIntrinsic::Log:
    return "log";
  case MathIntrinsic::Exp:
    return "exp";
  case MathIntrinsic::Pow:
    return "pow";
  case MathIntrinsic::Atan2:
    return "atan2";
  }
  JITVS_UNREACHABLE("bad MathIntrinsic");
}

//===----------------------------------------------------------------------===//
// Resume points
//===----------------------------------------------------------------------===//

void MResumePoint::appendEntry(MInstr *Def) {
  assert(Def && "null resume point entry");
  Def->addRPUse(this, static_cast<uint32_t>(Entries.size()));
  Entries.push_back(Def);
}

void MResumePoint::replaceEntry(size_t I, MInstr *Def) {
  assert(I < Entries.size() && "bad resume point entry index");
  Entries[I]->removeRPUse(this, static_cast<uint32_t>(I));
  Entries[I] = Def;
  Def->addRPUse(this, static_cast<uint32_t>(I));
}

void MResumePoint::clearEntries() {
  for (size_t I = 0, E = Entries.size(); I != E; ++I)
    Entries[I]->removeRPUse(this, static_cast<uint32_t>(I));
  Entries.clear();
}

//===----------------------------------------------------------------------===//
// Use tracking
//===----------------------------------------------------------------------===//

void MInstr::addUse(MInstr *Consumer, uint32_t Index) {
  Use U;
  U.ConsumerInstr = Consumer;
  U.Index = Index;
  Uses.push_back(U);
}

void MInstr::addRPUse(MResumePoint *Consumer, uint32_t Index) {
  Use U;
  U.ConsumerRP = Consumer;
  U.Index = Index;
  Uses.push_back(U);
}

void MInstr::removeUse(MInstr *Consumer, uint32_t Index) {
  for (size_t I = 0, E = Uses.size(); I != E; ++I) {
    if (Uses[I].ConsumerInstr == Consumer && Uses[I].Index == Index) {
      Uses[I] = Uses.back();
      Uses.pop_back();
      return;
    }
  }
  JITVS_UNREACHABLE("removing unknown instruction use");
}

void MInstr::removeRPUse(MResumePoint *Consumer, uint32_t Index) {
  for (size_t I = 0, E = Uses.size(); I != E; ++I) {
    if (Uses[I].ConsumerRP == Consumer && Uses[I].Index == Index) {
      Uses[I] = Uses.back();
      Uses.pop_back();
      return;
    }
  }
  JITVS_UNREACHABLE("removing unknown resume point use");
}

void MInstr::setOperand(size_t I, MInstr *Def) {
  assert(I < Operands.size() && "operand index out of range");
  if (Operands[I])
    Operands[I]->removeUse(this, static_cast<uint32_t>(I));
  Operands[I] = Def;
  if (Def)
    Def->addUse(this, static_cast<uint32_t>(I));
}

void MInstr::appendOperand(MInstr *Def) {
  assert(Def && "null operand");
  Def->addUse(this, static_cast<uint32_t>(Operands.size()));
  Operands.push_back(Def);
}

void MInstr::clearOperands() {
  for (size_t I = 0, E = Operands.size(); I != E; ++I)
    if (Operands[I])
      Operands[I]->removeUse(this, static_cast<uint32_t>(I));
  Operands.clear();
}

size_t MInstr::numInstrUses() const {
  size_t N = 0;
  for (const Use &U : Uses)
    if (U.ConsumerInstr)
      ++N;
  return N;
}

void MInstr::replaceAllUsesWith(MInstr *Repl) {
  assert(Repl != this && "replacing a definition with itself");
  // Uses mutates as we rewrite; iterate over a snapshot.
  std::vector<Use> Snapshot = Uses;
  for (const Use &U : Snapshot) {
    if (U.ConsumerInstr)
      U.ConsumerInstr->setOperand(U.Index, Repl);
    else
      U.ConsumerRP->replaceEntry(U.Index, Repl);
  }
  assert(Uses.empty() && "stale uses after replaceAllUsesWith");
}

//===----------------------------------------------------------------------===//
// Properties
//===----------------------------------------------------------------------===//

bool MInstr::isGuard() const {
  switch (Op) {
  case MirOp::AddI:
  case MirOp::SubI:
  case MirOp::MulI:
    return AuxB != 1; // AuxB==1: overflow check eliminated.
  case MirOp::Unbox:
  case MirOp::TypeBarrier:
  case MirOp::ModI:
  case MirOp::NegI:
  case MirOp::BoundsCheck:
  case MirOp::GuardArrayLength:
  case MirOp::GuardShape:
    return true;
  default:
    return false;
  }
}

bool MInstr::isEffectful() const {
  switch (Op) {
  case MirOp::StoreElement:
  case MirOp::GenericSetElem:
  case MirOp::GenericSetProp:
  case MirOp::GenericGetElem:  // May report an error (null base).
  case MirOp::GenericGetProp:  // May report an error (null base).
  case MirOp::SetGlobal:
  case MirOp::SetEnvSlot:
  case MirOp::InitProp:
  case MirOp::Call:
  case MirOp::CallMethod:
  case MirOp::CallWithThis:
  case MirOp::New:
  case MirOp::StoreSlot:
  case MirOp::AddSlot:
  case MirOp::CheckOverRecursed:
    return true;
  default:
    return false;
  }
}

bool MInstr::isRemovableIfUnused() const {
  if (isEffectful() || isControl() || isGuard())
    return false;
  switch (Op) {
  case MirOp::Start:
  case MirOp::Parameter: // Kept: they define the frame contract.
  case MirOp::OsrValue:
    return false;
  default:
    return true;
  }
}

bool MInstr::isCongruenceCandidate() const {
  if (isEffectful() || isControl() || isPhi())
    return false;
  switch (Op) {
  case MirOp::Start:
  case MirOp::Parameter:
  case MirOp::OsrValue:
  case MirOp::GetThis:
  case MirOp::NewArray:
  case MirOp::NewArrayLen:
  case MirOp::NewObject:
  case MirOp::MakeClosure: // Distinct identities per evaluation.
  case MirOp::ArrayLength: // Mutable between stores.
  case MirOp::LoadElement:
  case MirOp::GuardShape: // Shapes mutate across effectful ops; a guard
  case MirOp::LoadSlot:   // (and the slot behind it) must not be merged
                          // across a call or store that could transition
                          // the receiver.
  case MirOp::GetGlobal:
  case MirOp::GetEnvSlot:
    return false;
  default:
    return true;
  }
}

bool MInstr::congruentTo(const MInstr *Other) const {
  if (Op != Other->Op || Type != Other->Type || AuxA != Other->AuxA ||
      AuxB != Other->AuxB)
    return false;
  if (Op == MirOp::Constant) {
    // GVN congruence for constants is deliberately not the cache-keying
    // relation (sameSpecializationValue), even though both compare
    // doubles bitwise. Bitwise keying is what guarantees +0 and -0 —
    // distinguishable through 1/x — never merge. NaN constants hash and
    // key equal for specialization-cache purposes, but value numbering
    // refuses to merge them: congruence of constants means "provably the
    // same value", and we keep NaN out of that claim entirely.
    if (ConstVal.isDouble() && std::isnan(ConstVal.asDouble()))
      return false;
    if (!ConstVal.sameSpecializationValue(Other->ConstVal))
      return false;
  }
  if (Operands.size() != Other->Operands.size())
    return false;
  for (size_t I = 0, E = Operands.size(); I != E; ++I)
    if (Operands[I] != Other->Operands[I])
      return false;
  return true;
}

uint64_t MInstr::valueHash() const {
  uint64_t H = static_cast<uint64_t>(Op) * 0x9e3779b97f4a7c15ull;
  auto Mix = [&H](uint64_t X) {
    H ^= X + 0x9e3779b97f4a7c15ull + (H << 6) + (H >> 2);
  };
  Mix(static_cast<uint64_t>(Type));
  Mix(AuxA);
  Mix(AuxB);
  if (Op == MirOp::Constant)
    Mix(ConstVal.specializationHash());
  for (const MInstr *Operand : Operands)
    Mix(Operand->Id);
  return H;
}

std::string MInstr::toString() const {
  char Buf[64];
  std::string Out;
  std::snprintf(Buf, sizeof(Buf), "%u", Id);
  if (Type != MIRType::None) {
    Out += "v";
    Out += Buf;
    Out += " = ";
  }
  Out += mirOpName(Op);
  if (Op == MirOp::Constant) {
    Out += " ";
    Out += ConstVal.toDisplayString();
    Out += " ";
    Out += mirTypeName(mirTypeOfValue(ConstVal));
    return Out;
  }
  for (const MInstr *Operand : Operands) {
    std::snprintf(Buf, sizeof(Buf), " v%u", Operand->Id);
    Out += Buf;
  }
  if (AuxA || AuxB) {
    std::snprintf(Buf, sizeof(Buf), " [%u,%u]", AuxA, AuxB);
    Out += Buf;
  }
  if (numSuccessors() >= 1) {
    std::snprintf(Buf, sizeof(Buf), " -> B%u", Succs[0]->id());
    Out += Buf;
    if (numSuccessors() == 2) {
      std::snprintf(Buf, sizeof(Buf), ", B%u", Succs[1]->id());
      Out += Buf;
    }
  }
  if (Type != MIRType::None && Type != MIRType::Any) {
    Out += " : ";
    Out += mirTypeName(Type);
  }
  return Out;
}
