//===- mir/Dominators.h - Dominator tree over the MIR CFG -------*- C++ -*-===//
///
/// \file
/// Cooper-Harvey-Kennedy dominator computation. Because a MIR graph can
/// have two entry points (function entry + OSR block), the forest is
/// rooted at a virtual node whose children are the entries; dominance
/// queries treat the virtual root as dominating everything.
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_MIR_DOMINATORS_H
#define JITVS_MIR_DOMINATORS_H

#include "mir/MIRGraph.h"

#include <vector>

namespace jitvs {

/// Builds dominator information into the graph's blocks (IDom pointers
/// and preorder ranges for O(1) dominates() queries).
class DominatorTree {
public:
  /// Computes dominators for \p Graph. Invalidated by any CFG mutation.
  static void build(MIRGraph &Graph);
};

/// A natural loop discovered from back edges.
struct NaturalLoop {
  MBasicBlock *Header = nullptr;
  std::vector<MBasicBlock *> BackEdgePreds; ///< Latch blocks.
  std::vector<MBasicBlock *> Body;          ///< Includes the header.

  bool contains(const MBasicBlock *B) const {
    for (const MBasicBlock *X : Body)
      if (X == B)
        return true;
    return false;
  }
};

/// Finds all natural loops (requires a fresh DominatorTree::build).
std::vector<NaturalLoop> findNaturalLoops(MIRGraph &Graph);

} // namespace jitvs

#endif // JITVS_MIR_DOMINATORS_H
