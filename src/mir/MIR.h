//===- mir/MIR.h - SSA middle-level IR --------------------------*- C++ -*-===//
///
/// \file
/// The MIR: a three-address SSA IR mirroring IonMonkey's middle-level
/// representation (Section 3.1 of the paper). Instructions carry a static
/// MIRType; guard instructions (type barriers, bounds checks, overflow-
/// checked int32 arithmetic) reference a resume point describing the
/// interpreter state to reconstruct on bailout.
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_MIR_MIR_H
#define JITVS_MIR_MIR_H

#include "vm/Bytecode.h"
#include "vm/Value.h"

#include <cstdint>
#include <string>
#include <vector>

namespace jitvs {

class MBasicBlock;
class MIRGraph;
class MInstr;

/// Static type of an SSA definition. `Any` is a boxed value of unknown
/// tag; the others assert a known tag (the payload is still a boxed Value
/// in our register machine, but typed ops read payloads unchecked).
enum class MIRType : uint8_t {
  Any,
  Int32,
  Double,
  Boolean,
  String,
  Object,
  Array,
  Function,
  Undefined,
  Null,
  None, ///< Control instructions produce no value.
};

const char *mirTypeName(MIRType T);

/// \returns the MIRType matching a runtime value tag.
MIRType mirTypeOfValue(const Value &V);
MIRType mirTypeOfTag(ValueTag Tag);

/// MIR operation codes.
enum class MirOp : uint8_t {
  // Meta.
  Start,
  Constant,  ///< ConstVal.
  Parameter, ///< AuxA = parameter index.
  OsrValue,  ///< AuxA = frame slot index (read from the OSR frame).
  GetThis,   ///< The frame's `this` value.
  Phi,

  // Control flow (block terminators).
  Goto,
  Test, ///< Operand 0: condition. Successors: [true, false].
  Return,

  // Type conversions and guards.
  Unbox,            ///< AuxA = target MIRType; guard, bails on tag mismatch.
  ToDouble,         ///< Numeric -> unboxed double (int32 widens). Pure.
  TruncateToInt32,  ///< JS ToInt32 on any value. Pure, never bails.
  TypeBarrier,      ///< AuxA = expected ValueTag; guard, passes through.

  // Int32 arithmetic (bails on overflow / invalid).
  AddI,
  SubI,
  MulI,
  ModI,
  NegI,

  // Double arithmetic (pure).
  AddD,
  SubD,
  MulD,
  DivD,
  ModD,
  NegD,

  // Bitwise (int32 in, int32 out; UShr may produce double).
  BitAnd,
  BitOr,
  BitXor,
  Shl,
  Shr,
  UShr,
  BitNot,

  // Comparisons (produce Boolean). AuxA = comparison bytecode Op.
  CompareI,
  CompareD,
  CompareS,
  CompareGeneric,

  Not,    ///< Boolean negation of ToBoolean(operand). Pure.
  Concat, ///< String concatenation (allocates).
  TypeOf, ///< Produces one of the six interned typeof strings.

  CheckOverRecursed, ///< Call-depth guard; reports an error, not a bailout.

  // Arrays and strings.
  BoundsCheck,      ///< Operands: index, array. Guard, bails when OOB.
  GuardArrayLength, ///< AuxA = expected length. Guard on constant arrays
                    ///< whose per-iteration checks were eliminated.
  ArrayLength,
  StringLength,
  LoadElement,  ///< Operands: array, index. In-bounds guaranteed.
  StoreElement, ///< Operands: array, index, value. In-bounds guaranteed.
  FromCharCode, ///< Int32 char code -> 1-char string.
  CharCodeAt,   ///< Operands: string, index (in-bounds). -> Int32.

  // Generic (helper-call) fallbacks. AuxA = bytecode Op where relevant.
  GenericBinop,
  GenericUnop,
  GenericGetElem,
  GenericSetElem,
  GenericGetProp, ///< AuxA = name id.
  GenericSetProp, ///< AuxA = name id.

  // Globals and environments.
  GetGlobal, ///< AuxA = global slot.
  SetGlobal, ///< AuxA = global slot.
  GetEnvSlot, ///< AuxA = slot, AuxB = depth.
  SetEnvSlot, ///< AuxA = slot, AuxB = depth.

  // Allocation.
  NewArray,    ///< Operands: elements.
  NewArrayLen, ///< AuxA = length (new Array(n) fast path).
  NewObject,
  InitProp,    ///< Operands: object, value. AuxA = name id.
  MakeClosure, ///< AuxA = function index.

  // Calls. Operands: callee/recv, then args. AuxA = argc (CallMethod:
  // AuxA = name id, argc = numOperands()-1).
  Call,
  CallMethod,
  New,

  // Inlined Math intrinsics. AuxA = MathIntrinsic.
  MathFunction,

  // Shape-guarded property fast paths (vm/Shape.h). Shapes are referenced
  // through the graph's shape-set table (MIRGraph::addShapeSet) since the
  // MInstr payload has no pointer field.
  GuardShape,   ///< Operand: object. AuxA = graph shape-set index. Guard;
                ///< Object-typed pass-through of its operand.
  LoadSlot,     ///< Operand: object (a GuardShape). AuxA = slot index.
  StoreSlot,    ///< Operands: object, value. AuxA = slot index. Effectful.
  AddSlot,      ///< Operands: object, value. AuxA = shape-set index of the
                ///< transition target, AuxB = appended slot index.
  CallWithThis, ///< Operands: callee, thisv, args... AuxA = argc, AuxB =
                ///< name id (for the not-a-function error message).
};

const char *mirOpName(MirOp O);

/// Inlined Math builtins (deterministic ones only).
enum class MathIntrinsic : uint8_t {
  Sin,
  Cos,
  Tan,
  Atan,
  Sqrt,
  Abs,
  Floor,
  Ceil,
  Round,
  Log,
  Exp,
  Pow,   ///< Two operands.
  Atan2, ///< Two operands.
};

const char *mathIntrinsicName(MathIntrinsic F);

/// A resume point: the interpreter state (bytecode pc plus the values of
/// every frame slot and operand-stack entry) needed to deoptimize back to
/// interpretation. Bailout semantics re-execute the bytecode op at PC.
class MResumePoint {
public:
  MResumePoint(uint32_t PC, uint32_t NumFrameSlots)
      : PC(PC), NumFrameSlots(NumFrameSlots) {}

  uint32_t pc() const { return PC; }
  /// Number of leading entries that are frame slots; the rest is stack.
  uint32_t numFrameSlots() const { return NumFrameSlots; }

  size_t numEntries() const { return Entries.size(); }
  MInstr *entry(size_t I) const { return Entries[I]; }
  void appendEntry(MInstr *Def);
  void replaceEntry(size_t I, MInstr *Def);
  void clearEntries();

  /// Identifier assigned at codegen time.
  uint32_t SnapshotId = ~0u;

  /// One of the guard instructions this resume point belongs to (several
  /// guards created for the same bytecode op share one resume point; all
  /// sharers live in the same block).
  MInstr *Owner = nullptr;

  /// Reference counting: entries are released only when the last sharing
  /// guard is removed.
  void retain() { ++RefCount; }
  void release() {
    assert(RefCount > 0 && "resume point over-released");
    if (--RefCount == 0)
      clearEntries();
  }

private:
  friend class MIRGraph;
  uint32_t PC;
  uint32_t NumFrameSlots;
  uint32_t RefCount = 0;
  std::vector<MInstr *> Entries;
};

/// One SSA instruction. A single concrete class: the operation is the
/// MirOp tag, with a small uniform payload (constant value + two aux
/// words) instead of a per-op class hierarchy.
class MInstr {
public:
  MirOp op() const { return Op; }
  uint32_t id() const { return Id; }
  MIRType type() const { return Type; }
  void setType(MIRType T) { Type = T; }

  MBasicBlock *block() const { return Block; }

  // --- Operands ---
  size_t numOperands() const { return Operands.size(); }
  MInstr *operand(size_t I) const {
    assert(I < Operands.size() && "operand index out of range");
    return Operands[I];
  }
  void setOperand(size_t I, MInstr *Def);
  void appendOperand(MInstr *Def);
  void clearOperands();

  // --- Uses ---
  struct Use {
    MInstr *ConsumerInstr = nullptr;       ///< Either this...
    MResumePoint *ConsumerRP = nullptr;    ///< ...or this is set.
    uint32_t Index = 0;
  };
  const std::vector<Use> &uses() const { return Uses; }
  bool hasUses() const { return !Uses.empty(); }
  /// Number of uses from real instructions (excluding resume points).
  size_t numInstrUses() const;

  /// Rewrites every use of this definition (including resume-point
  /// entries) to use \p Repl instead.
  void replaceAllUsesWith(MInstr *Repl);

  // --- Payload ---
  const Value &constValue() const {
    assert(Op == MirOp::Constant && "not a constant");
    return ConstVal;
  }
  Value ConstVal;
  uint32_t AuxA = 0;
  uint32_t AuxB = 0;

  // --- Control successors (terminators only) ---
  MBasicBlock *successor(size_t I) const {
    assert(I < 2 && Succs[I] && "bad successor");
    return Succs[I];
  }
  size_t numSuccessors() const { return !Succs[0] ? 0 : (!Succs[1] ? 1 : 2); }
  void setSuccessor(size_t I, MBasicBlock *B) { Succs[I] = B; }

  // --- Resume point for bailing instructions ---
  MResumePoint *resumePoint() const { return RP; }
  void setResumePoint(MResumePoint *R) {
    assert(!RP && "instruction already has a resume point");
    RP = R;
    if (R) {
      R->Owner = this;
      R->retain();
    }
  }
  /// Detaches the resume point, releasing its entries when this was the
  /// last sharer.
  void dropResumePoint() {
    if (RP)
      RP->release();
    RP = nullptr;
  }

  // --- Properties ---
  bool isGuard() const;        ///< May bail out to the interpreter.
  bool isEffectful() const;    ///< Observable effect; never removed/moved.
  bool isRemovableIfUnused() const;
  bool isControl() const {
    return Op == MirOp::Goto || Op == MirOp::Test || Op == MirOp::Return;
  }
  bool isPhi() const { return Op == MirOp::Phi; }
  /// Eligible for GVN congruence (pure, or a guard keyed on its operands).
  bool isCongruenceCandidate() const;

  /// Structural equality for GVN: same op, aux payload and operands.
  bool congruentTo(const MInstr *Other) const;
  /// Hash consistent with congruentTo.
  uint64_t valueHash() const;

  std::string toString() const;

  bool isDead() const { return Dead; }

private:
  friend class MIRGraph;
  friend class MBasicBlock;
  friend class MResumePoint;

  explicit MInstr(MirOp Op) : Op(Op) {}

  void addUse(MInstr *Consumer, uint32_t Index);
  void addRPUse(MResumePoint *Consumer, uint32_t Index);
  void removeUse(MInstr *Consumer, uint32_t Index);
  void removeRPUse(MResumePoint *Consumer, uint32_t Index);

  MirOp Op;
  MIRType Type = MIRType::Any;
  uint32_t Id = 0;
  MBasicBlock *Block = nullptr;
  bool Dead = false;
  std::vector<MInstr *> Operands;
  std::vector<Use> Uses;
  MBasicBlock *Succs[2] = {nullptr, nullptr};
  MResumePoint *RP = nullptr;
};

} // namespace jitvs

#endif // JITVS_MIR_MIR_H
