//===- mir/MIRBuilder.h - Bytecode -> SSA MIR translation -------*- C++ -*-===//
///
/// \file
/// Translates stack bytecode into SSA MIR by abstract interpretation of
/// the operand stack, exactly as IonMonkey builds its graphs. This is
/// where the paper's core optimization lives: under parameter
/// specialization (Section 3.2) the builder emits constants in place of
/// parameter definitions — in both the function entry block and the OSR
/// block — at zero additional pipeline cost.
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_MIR_MIRBUILDER_H
#define JITVS_MIR_MIRBUILDER_H

#include "mir/MIRGraph.h"
#include "mir/Tier.h"
#include "vm/Value.h"

#include <memory>
#include <optional>
#include <vector>

namespace jitvs {

struct FunctionInfo;
class FeedbackSnapshot;

/// Options controlling graph construction.
struct BuildOptions {
  /// Parameter specialization: bake these runtime argument values in as
  /// constants (empty optional = generic compilation).
  std::optional<std::vector<Value>> SpecializedArgs;

  /// Per-parameter tier ladder. Empty = every parameter at the Value tier
  /// (the paper's all-or-nothing policy). When set, SpecializedArgs[I]
  /// supplies the constant for Value-tier parameters and the guarded tag
  /// for Type-tier parameters; Generic-tier parameters stay plain
  /// Parameter loads. Only meaningful when SpecializedArgs is present.
  std::vector<ParamTier> ParamTiers;

  /// OSR: build an on-stack-replacement entry targeting this LoopHead
  /// bytecode offset. When specializing, OsrSlotValues carries the live
  /// frame-slot values to bake in (paper Figure 7(a) specializes both
  /// entry points).
  std::optional<uint32_t> OsrPc;
  std::vector<Value> OsrSlotValues;

  /// Per-frame-slot tiers for the OSR entry (parameters first, then
  /// locals). Empty = every slot at the Value tier, matching
  /// OsrSlotValues (the paper's behavior). Type-tier slots load the live
  /// frame value through an OsrValue and guard only its tag.
  std::vector<ParamTier> OsrSlotTiers;

  /// Guard-free mode used for inlined bodies: never emit bailing guards;
  /// fall back to generic helper ops instead. (Bailouts cannot reconstruct
  /// inlined frames, so inlined code must not bail; see DESIGN.md.)
  bool GenericOnly = false;

  /// Emit the CheckOverRecursed entry guard.
  bool EmitEntryChecks = true;

  /// Immutable whole-program feedback snapshot to read instead of the
  /// live FunctionInfo::Feedback maps. Required for background compiles
  /// (the interpreter keeps mutating the live maps); null for
  /// synchronous ones. Stored on the graph so inline builds see it too.
  const FeedbackSnapshot *Feedback = nullptr;
};

/// Result of inline-building a callee into an existing graph.
struct InlineBuildResult {
  MBasicBlock *EntryBlock = nullptr;
  /// Each return site: the block that ends with a Goto that the inliner
  /// must point at the join block, plus the returned definition.
  std::vector<std::pair<MBasicBlock *, MInstr *>> Returns;
  bool Ok = false;
};

/// Builds a fresh MIR graph for \p Info.
std::unique_ptr<MIRGraph> buildMIR(FunctionInfo *Info,
                                   const BuildOptions &Opts);

/// Builds \p Info's body directly into \p Graph for inlining, using
/// \p ArgDefs as the parameter definitions. Always guard-free. Returns
/// Ok=false when the callee is not inlinable (uses environments or
/// `this`-dependent features the inliner does not support).
InlineBuildResult buildInlineMIR(MIRGraph &Graph, FunctionInfo *Info,
                                 const std::vector<MInstr *> &ArgDefs);

/// \returns true if \p Info can be inlined (no environment access, no
/// OSR-relevant constructs required, body within size limits).
bool isInlinableFunction(const FunctionInfo *Info, size_t MaxBytecodeSize);

} // namespace jitvs

#endif // JITVS_MIR_MIRBUILDER_H
