//===- mir/Dominators.cpp - Dominator tree and natural loops --------------===//

#include "mir/Dominators.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

using namespace jitvs;

void DominatorTree::build(MIRGraph &Graph) {
  std::vector<MBasicBlock *> RPO = Graph.reversePostOrder();
  std::unordered_map<const MBasicBlock *, uint32_t> RpoIndex;
  for (uint32_t I = 0, E = static_cast<uint32_t>(RPO.size()); I != E; ++I) {
    RpoIndex[RPO[I]] = I;
    RPO[I]->setImmediateDominator(nullptr);
  }

  // Roots: the entries dominate themselves (IDom == self marks "root").
  // A computed IDom of nullptr means the *virtual* root above both
  // entries, which is distinct from "not processed yet".
  std::vector<bool> Processed(RPO.size(), false);
  MBasicBlock *Entry = Graph.entry();
  MBasicBlock *Osr = Graph.osrBlock();
  if (Entry) {
    Entry->setImmediateDominator(Entry);
    Processed[RpoIndex[Entry]] = true;
  }
  if (Osr && !Osr->isDead()) {
    Osr->setImmediateDominator(Osr);
    Processed[RpoIndex[Osr]] = true;
  }

  auto Intersect = [&](MBasicBlock *A, MBasicBlock *B) -> MBasicBlock * {
    // Walk both fingers up; nullptr means the virtual root.
    while (A != B) {
      if (!A || !B)
        return nullptr;
      uint32_t IA = RpoIndex[A], IB = RpoIndex[B];
      if (IA > IB) {
        MBasicBlock *Up = A->immediateDominator();
        A = (Up == A) ? nullptr : Up; // Root's parent is the virtual root.
      } else if (IB > IA) {
        MBasicBlock *Up = B->immediateDominator();
        B = (Up == B) ? nullptr : Up;
      } else {
        // Equal indices but different nodes cannot happen.
        return nullptr;
      }
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (MBasicBlock *B : RPO) {
      if (B == Entry || B == Osr)
        continue;
      MBasicBlock *NewIDom = nullptr;
      bool First = true;
      bool SawVirtualRoot = false;
      for (MBasicBlock *Pred : B->predecessors()) {
        auto It = RpoIndex.find(Pred);
        if (It == RpoIndex.end())
          continue; // Unreachable predecessor.
        if (!Processed[It->second])
          continue; // Not processed yet.
        if (First) {
          NewIDom = Pred;
          First = false;
        } else if (!SawVirtualRoot) {
          NewIDom = Intersect(NewIDom, Pred);
        }
        if (!First && !NewIDom)
          SawVirtualRoot = true; // Converged to the virtual root.
      }
      if (First)
        continue; // No processed predecessors yet.
      size_t Idx = RpoIndex[B];
      if (!Processed[Idx] || B->immediateDominator() != NewIDom) {
        Processed[Idx] = true;
        B->setImmediateDominator(NewIDom);
        Changed = true;
      }
    }
  }

  // Assign preorder ranges over the dominator forest for O(1) queries.
  // Children lists.
  std::unordered_map<const MBasicBlock *, std::vector<MBasicBlock *>> Kids;
  std::vector<MBasicBlock *> Roots;
  for (MBasicBlock *B : RPO) {
    MBasicBlock *IDom = B->immediateDominator();
    if (!IDom || IDom == B)
      Roots.push_back(B);
    else
      Kids[IDom].push_back(B);
  }
  uint32_t Counter = 0;
  // Iterative preorder with subtree-exit bookkeeping.
  struct Item {
    MBasicBlock *Block;
    size_t NextKid;
  };
  for (MBasicBlock *Root : Roots) {
    std::vector<Item> Stack;
    Root->setDomRange(Counter, Counter);
    ++Counter;
    Stack.push_back({Root, 0});
    while (!Stack.empty()) {
      Item &Top = Stack.back();
      auto &Children = Kids[Top.Block];
      if (Top.NextKid < Children.size()) {
        MBasicBlock *Kid = Children[Top.NextKid++];
        Kid->setDomRange(Counter, Counter);
        ++Counter;
        Stack.push_back({Kid, 0});
        continue;
      }
      // Subtree finished: extend ancestors' last index.
      uint32_t Last = Counter - 1;
      Top.Block->setDomRange(Top.Block->domIndex(), Last);
      Stack.pop_back();
    }
  }
}

std::vector<NaturalLoop> jitvs::findNaturalLoops(MIRGraph &Graph) {
  std::vector<NaturalLoop> Loops;
  std::unordered_map<const MBasicBlock *, size_t> HeaderToLoop;

  for (MBasicBlock *B : Graph.reversePostOrder()) {
    for (size_t S = 0, E = B->numSuccessors(); S != E; ++S) {
      MBasicBlock *H = B->successor(S);
      if (!H->dominates(B))
        continue; // Not a back edge.
      size_t LoopIdx;
      auto It = HeaderToLoop.find(H);
      if (It == HeaderToLoop.end()) {
        LoopIdx = Loops.size();
        HeaderToLoop[H] = LoopIdx;
        Loops.emplace_back();
        Loops[LoopIdx].Header = H;
        Loops[LoopIdx].Body.push_back(H);
      } else {
        LoopIdx = It->second;
      }
      Loops[LoopIdx].BackEdgePreds.push_back(B);

      // Natural loop body: reverse reachability from the latch to the
      // header.
      std::unordered_set<MBasicBlock *> InBody(Loops[LoopIdx].Body.begin(),
                                               Loops[LoopIdx].Body.end());
      std::vector<MBasicBlock *> Work;
      if (!InBody.count(B)) {
        InBody.insert(B);
        Loops[LoopIdx].Body.push_back(B);
        Work.push_back(B);
      }
      while (!Work.empty()) {
        MBasicBlock *X = Work.back();
        Work.pop_back();
        for (MBasicBlock *P : X->predecessors()) {
          if (InBody.count(P))
            continue;
          InBody.insert(P);
          Loops[LoopIdx].Body.push_back(P);
          Work.push_back(P);
        }
      }
    }
  }
  return Loops;
}
