//===- mir/MIRGraph.h - Basic blocks and the MIR control-flow graph -------===//
///
/// \file
/// The MIR CFG. Like IonMonkey's graphs (Figure 6), a graph can have two
/// entry points: the function entry block and an optional on-stack-
/// replacement (OSR) block that the interpreter jumps into when a hot
/// loop is compiled mid-execution.
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_MIR_MIRGRAPH_H
#define JITVS_MIR_MIRGRAPH_H

#include "mir/MIR.h"

#include <functional>
#include <memory>
#include <vector>

namespace jitvs {

struct FunctionInfo;
class FeedbackSnapshot;
class Shape;

/// A basic block: phis, a body of instructions ending in a terminator,
/// and predecessor links (successors live on the terminator).
class MBasicBlock {
public:
  uint32_t id() const { return Id; }

  // --- Phis ---
  const std::vector<MInstr *> &phis() const { return Phis; }
  void addPhi(MInstr *Phi);
  void removePhi(MInstr *Phi);

  // --- Instructions ---
  const std::vector<MInstr *> &instructions() const { return Instrs; }
  void append(MInstr *I);
  /// Inserts \p I immediately before \p Before in this block.
  void insertBefore(MInstr *Before, MInstr *I);
  void remove(MInstr *I);
  MInstr *terminator() const {
    return Instrs.empty() ? nullptr : Instrs.back();
  }

  /// Moves the instructions from index \p FromIdx to the end of this
  /// block into \p Dest (appended), preserving operands and uses. Used
  /// for block splitting.
  void transferTailTo(MBasicBlock *Dest, size_t FromIdx);

  /// Replaces predecessor \p OldPred with \p NewPred in place (keeping
  /// phi operand alignment).
  void replacePredecessor(MBasicBlock *OldPred, MBasicBlock *NewPred);

  // --- CFG ---
  const std::vector<MBasicBlock *> &predecessors() const { return Preds; }
  size_t numPredecessors() const { return Preds.size(); }
  MBasicBlock *predecessor(size_t I) const { return Preds[I]; }
  void addPredecessor(MBasicBlock *Pred) { Preds.push_back(Pred); }
  /// Removes \p Pred and drops the matching phi operand from every phi.
  void removePredecessor(MBasicBlock *Pred);
  /// Index of \p Pred in the predecessor list.
  size_t indexOfPredecessor(const MBasicBlock *Pred) const;

  size_t numSuccessors() const {
    MInstr *T = terminator();
    return T ? T->numSuccessors() : 0;
  }
  MBasicBlock *successor(size_t I) const { return terminator()->successor(I); }

  // --- Loop structure ---
  bool isLoopHeader() const { return LoopHeader; }
  void setLoopHeader(bool B) { LoopHeader = B; }

  /// Entry resume point: interpreter state at the start of this block
  /// (used when instructions in the block need a bail point).
  MResumePoint *entryResumePoint() const { return EntryRP; }
  void setEntryResumePoint(MResumePoint *RP) {
    EntryRP = RP;
    if (RP)
      RP->retain();
  }

  // --- Dominator info (filled by DominatorTree) ---
  MBasicBlock *immediateDominator() const { return IDom; }
  void setImmediateDominator(MBasicBlock *D) { IDom = D; }
  uint32_t domIndex() const { return DomIdx; }    ///< Preorder number.
  uint32_t domLastIndex() const { return DomLast; } ///< Subtree end.
  void setDomRange(uint32_t Idx, uint32_t Last) {
    DomIdx = Idx;
    DomLast = Last;
  }
  /// \returns true if this block dominates \p Other (requires a fresh
  /// DominatorTree::build).
  bool dominates(const MBasicBlock *Other) const {
    return DomIdx <= Other->DomIdx && Other->DomIdx <= DomLast;
  }

  bool isDead() const { return Dead; }

private:
  friend class MIRGraph;
  explicit MBasicBlock(uint32_t Id) : Id(Id) {}

  uint32_t Id;
  std::vector<MInstr *> Phis;
  std::vector<MInstr *> Instrs;
  std::vector<MBasicBlock *> Preds;
  bool LoopHeader = false;
  bool Dead = false;
  MResumePoint *EntryRP = nullptr;
  MBasicBlock *IDom = nullptr;
  uint32_t DomIdx = 0, DomLast = 0;
};

/// The whole-function MIR graph; owns all blocks, instructions and resume
/// points.
class MIRGraph {
public:
  explicit MIRGraph(FunctionInfo *Info) : Info(Info) {}
  MIRGraph(const MIRGraph &) = delete;
  MIRGraph &operator=(const MIRGraph &) = delete;

  FunctionInfo *functionInfo() const { return Info; }

  /// Type-feedback source for graph construction. Null (the default)
  /// means "read the live FunctionInfo::Feedback maps" — correct for
  /// synchronous compiles. Background compiles install an immutable
  /// snapshot here so builders (including inline builds into this graph)
  /// never race the interpreter's feedback writes.
  const FeedbackSnapshot *feedbackOverride() const { return Feedback; }
  void setFeedbackOverride(const FeedbackSnapshot *S) { Feedback = S; }

  // --- Construction ---
  MBasicBlock *createBlock();
  MInstr *create(MirOp Op, MIRType Type);
  MInstr *createConstant(const Value &V);
  MResumePoint *createResumePoint(uint32_t PC, uint32_t NumFrameSlots);

  // --- Entry points ---
  MBasicBlock *entry() const { return Entry; }
  void setEntry(MBasicBlock *B) { Entry = B; }
  MBasicBlock *osrBlock() const { return Osr; }
  void setOsrBlock(MBasicBlock *B) { Osr = B; }

  const std::vector<std::unique_ptr<MBasicBlock>> &blocks() const {
    return Blocks;
  }
  size_t numBlocks() const { return NumLiveBlocks; }

  /// Removes \p B from the graph: unlinks it from successors and marks it
  /// dead (storage persists until the graph dies).
  void removeBlock(MBasicBlock *B);

  /// Reverse-postorder over live blocks reachable from the entry points.
  std::vector<MBasicBlock *> reversePostOrder() const;

  /// All live (reachable-from-entries) blocks in creation order.
  std::vector<MBasicBlock *> liveBlocks() const;

  /// Total number of instructions (incl. phis) in live blocks.
  size_t numInstructions() const;

  /// Values owned by the graph's constants (GC roots while compiling).
  void forEachConstant(const std::function<void(Value &)> &Fn) const;

  std::string toString() const;

  /// Shape sets referenced by GuardShape/AddSlot through AuxA (the MInstr
  /// payload has no pointer field). Shapes outlive the graph: the
  /// Runtime's ShapeTree owns them for the Runtime's lifetime.
  uint32_t addShapeSet(std::vector<const Shape *> Set) {
    ShapeSets.push_back(std::move(Set));
    return static_cast<uint32_t>(ShapeSets.size() - 1);
  }
  const std::vector<const Shape *> &shapeSet(uint32_t I) const {
    assert(I < ShapeSets.size() && "bad shape set index");
    return ShapeSets[I];
  }

  uint32_t nextInstrId() const { return NextId; }

private:
  FunctionInfo *Info;
  const FeedbackSnapshot *Feedback = nullptr;
  std::vector<std::unique_ptr<MBasicBlock>> Blocks;
  std::vector<std::unique_ptr<MInstr>> Instrs;
  std::vector<std::unique_ptr<MResumePoint>> ResumePoints;
  std::vector<std::vector<const Shape *>> ShapeSets;
  MBasicBlock *Entry = nullptr;
  MBasicBlock *Osr = nullptr;
  uint32_t NextId = 0;
  uint32_t NextBlockId = 0;
  size_t NumLiveBlocks = 0;
};

} // namespace jitvs

#endif // JITVS_MIR_MIRGRAPH_H
