//===- mir/Verifier.cpp - MIR invariant checks ------------------------------===//

#include "mir/Verifier.h"

#include "mir/Dominators.h"
#include "mir/MIRGraph.h"

#include <cstdio>
#include <unordered_set>

using namespace jitvs;

namespace {

std::string describe(const MBasicBlock *B, const MInstr *I,
                     const char *Problem) {
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf), "B%u: %s: %s", B->id(),
                I ? I->toString().c_str() : "<block>", Problem);
  return Buf;
}

} // namespace

std::string jitvs::verifyGraph(MIRGraph &Graph) {
  if (!Graph.entry())
    return "graph has no entry block";

  std::vector<MBasicBlock *> Live = Graph.reversePostOrder();
  std::unordered_set<const MBasicBlock *> LiveSet(Live.begin(), Live.end());
  std::unordered_set<const MInstr *> LiveDefs;

  // Collect live definitions first.
  for (MBasicBlock *B : Live) {
    for (MInstr *Phi : B->phis())
      LiveDefs.insert(Phi);
    for (MInstr *I : B->instructions())
      LiveDefs.insert(I);
  }

  for (MBasicBlock *B : Live) {
    // Terminator discipline.
    MInstr *Term = B->terminator();
    if (!Term)
      return describe(B, nullptr, "block has no terminator");
    if (!Term->isControl())
      return describe(B, Term, "last instruction is not a terminator");
    for (MInstr *I : B->instructions())
      if (I->isControl() && I != Term)
        return describe(B, I, "control instruction before block end");

    // Successor/predecessor symmetry.
    for (size_t S = 0, E = Term->numSuccessors(); S != E; ++S) {
      MBasicBlock *Succ = Term->successor(S);
      if (!LiveSet.count(Succ))
        return describe(B, Term, "successor is dead/unreachable");
      bool Linked = false;
      for (MBasicBlock *P : Succ->predecessors())
        if (P == B)
          Linked = true;
      if (!Linked)
        return describe(B, Term, "successor lacks predecessor back-link");
    }
    for (MBasicBlock *P : B->predecessors()) {
      if (!LiveSet.count(P))
        return describe(B, nullptr, "predecessor is dead/unreachable");
      bool Linked = false;
      for (size_t S = 0, E = P->numSuccessors(); S != E; ++S)
        if (P->successor(S) == B)
          Linked = true;
      if (!Linked)
        return describe(B, nullptr, "predecessor lacks successor link");
    }

    // Phi arity and operand liveness.
    for (MInstr *Phi : B->phis()) {
      if (Phi->numOperands() != B->numPredecessors())
        return describe(B, Phi, "phi arity != predecessor count");
      for (size_t I = 0, E = Phi->numOperands(); I != E; ++I) {
        MInstr *Operand = Phi->operand(I);
        if (Operand->isDead() ||
            (!LiveDefs.count(Operand) &&
             Operand->op() != MirOp::Constant))
          return describe(B, Phi, "phi operand is dead");
      }
    }

    // Instruction operands live; guards have resume points.
    for (MInstr *I : B->instructions()) {
      for (size_t OpIdx = 0, E = I->numOperands(); OpIdx != E; ++OpIdx) {
        MInstr *Operand = I->operand(OpIdx);
        if (Operand->isDead())
          return describe(B, I, "operand is a removed instruction");
        if (!LiveDefs.count(Operand))
          return describe(B, I, "operand defined in unreachable code");
        if (Operand->type() == MIRType::None)
          return describe(B, I, "operand has no value (None type)");
      }
      if (I->isGuard() && !I->resumePoint())
        return describe(B, I, "guard without a resume point");
      if (MResumePoint *RP = I->resumePoint()) {
        for (size_t EIdx = 0, E = RP->numEntries(); EIdx != E; ++EIdx) {
          MInstr *Entry = RP->entry(EIdx);
          if (Entry->isDead())
            return describe(B, I, "resume point entry is dead");
        }
      }
    }
  }

  // Dominance of non-phi uses. Constants are rematerialized at use sites
  // by the backend, so they are exempt.
  DominatorTree::build(Graph);
  for (MBasicBlock *B : Live) {
    for (MInstr *I : B->instructions()) {
      for (size_t OpIdx = 0, E = I->numOperands(); OpIdx != E; ++OpIdx) {
        MInstr *Operand = I->operand(OpIdx);
        if (Operand->op() == MirOp::Constant)
          continue;
        MBasicBlock *DefBlock = Operand->block();
        if (!DefBlock || !DefBlock->dominates(B))
          return describe(B, I, "operand does not dominate use");
      }
    }
    // Phi operands must be available at the end of the matching pred.
    for (MInstr *Phi : B->phis()) {
      for (size_t I = 0, E = Phi->numOperands(); I != E; ++I) {
        MInstr *Operand = Phi->operand(I);
        if (Operand->op() == MirOp::Constant || Operand == Phi)
          continue;
        MBasicBlock *Pred = B->predecessor(I);
        MBasicBlock *DefBlock = Operand->block();
        if (!DefBlock || !DefBlock->dominates(Pred))
          return describe(B, Phi,
                          "phi operand not available in predecessor");
      }
    }
  }

  return "";
}
