//===- mir/MIRBuilder.cpp - Bytecode -> SSA translation -------------------===//
///
/// \file
/// Abstract interpretation of the operand stack over bytecode basic
/// blocks, in offset order. Loop headers (LoopHead opcodes, the only
/// back-edge targets our emitter produces) get pessimistic phis for every
/// slot; other merges create phis lazily; trivial phis are pruned at the
/// end. Resume points capture the interpreter state at the start of the
/// bytecode op that created each guard.
///
//===----------------------------------------------------------------------===//

#include "mir/MIRBuilder.h"

#include "support/Assert.h"
#include "vm/Bytecode.h"
#include "vm/Object.h"

#include <algorithm>
#include <map>
#include <unordered_map>

using namespace jitvs;

namespace {

/// Net operand-stack effect of the bytecode op at \p PC.
int stackDelta(const FunctionInfo *Info, uint32_t PC) {
  switch (Info->opAt(PC)) {
  case Op::PushConst:
  case Op::PushInt8:
  case Op::PushUndefined:
  case Op::PushNull:
  case Op::PushTrue:
  case Op::PushFalse:
  case Op::GetSlot:
  case Op::GetEnvSlot:
  case Op::GetGlobal:
  case Op::Dup:
  case Op::NewObject:
  case Op::MakeClosure:
  case Op::GetThis:
    return +1;
  case Op::Dup2:
    return +2;
  case Op::SetSlot:
  case Op::SetEnvSlot:
  case Op::SetGlobal:
  case Op::Pop:
  case Op::JumpIfFalse:
  case Op::JumpIfTrue:
  case Op::Return:
  case Op::InitProp:
  case Op::GetElem:
  case Op::SetProp:
    return -1;
  case Op::Add:
  case Op::Sub:
  case Op::Mul:
  case Op::Div:
  case Op::Mod:
  case Op::BitAnd:
  case Op::BitOr:
  case Op::BitXor:
  case Op::Shl:
  case Op::Shr:
  case Op::UShr:
  case Op::Lt:
  case Op::Le:
  case Op::Gt:
  case Op::Ge:
  case Op::Eq:
  case Op::Ne:
  case Op::StrictEq:
  case Op::StrictNe:
    return -1;
  case Op::SetElem:
    return -2;
  case Op::Call:
  case Op::New:
    return -static_cast<int>(Info->u8At(PC + 1));
  case Op::CallMethod:
    return -static_cast<int>(Info->u8At(PC + 3));
  case Op::NewArray:
    return 1 - static_cast<int>(Info->u16At(PC + 1));
  default:
    return 0;
  }
}

struct BCBlock {
  uint32_t Start = 0;
  uint32_t End = 0; ///< Exclusive.
  bool IsLoopHead = false;
  int EntryDepth = -1; ///< -1 = unreachable.
  MBasicBlock *MBB = nullptr;
  std::vector<MInstr *> EntryState;
  unsigned LinkedPreds = 0;
};

class Builder {
public:
  Builder(MIRGraph &Graph, FunctionInfo *Info, const BuildOptions &Opts,
          bool InlineMode, const std::vector<MInstr *> &InlineArgs)
      : Graph(Graph), Info(Info), Opts(Opts), InlineMode(InlineMode),
        InlineArgs(InlineArgs) {
    LengthNameId = Info->Parent->names().lookup("length");
  }

  bool run();
  InlineBuildResult takeInlineResult() { return std::move(InlineResult); }

private:
  // --- Analysis ---
  void findBlockBoundaries();
  void propagateDepths();
  BCBlock &blockAt(uint32_t Offset) {
    auto It = BlockIndex.find(Offset);
    assert(It != BlockIndex.end() && "no block at offset");
    return BCBlocks[It->second];
  }

  // --- Graph construction helpers ---
  MInstr *ins(MirOp OpC, MIRType T, std::initializer_list<MInstr *> Ops,
              uint32_t AuxA = 0, uint32_t AuxB = 0) {
    MInstr *I = Graph.create(OpC, T);
    for (MInstr *O : Ops)
      I->appendOperand(O);
    I->AuxA = AuxA;
    I->AuxB = AuxB;
    Cur->append(I);
    return I;
  }
  MInstr *guard(MirOp OpC, MIRType T, std::initializer_list<MInstr *> Ops,
                uint32_t AuxA = 0, uint32_t AuxB = 0) {
    assert(!Opts.GenericOnly && "guards are forbidden in generic-only mode");
    MInstr *I = ins(OpC, T, Ops, AuxA, AuxB);
    I->setResumePoint(makeRP());
    return I;
  }
  MInstr *constant(const Value &V) {
    MInstr *I = Graph.createConstant(V);
    Cur->append(I);
    return I;
  }
  MResumePoint *makeRP() {
    if (!CurRP) {
      CurRP = Graph.createResumePoint(CurOpPC, Info->NumSlots);
      for (MInstr *Def : PreOpState)
        CurRP->appendEntry(Def);
    }
    return CurRP;
  }

  // --- State / stack abstraction ---
  MInstr *&slot(size_t I) { return State[I]; }
  void push(MInstr *Def) { State.push_back(Def); }
  MInstr *pop() {
    assert(State.size() > Info->NumSlots && "abstract stack underflow");
    MInstr *Def = State.back();
    State.pop_back();
    return Def;
  }
  MInstr *top() {
    assert(State.size() > Info->NumSlots && "abstract stack underflow");
    return State.back();
  }

  // --- Type knowledge ---
  static bool isNumericType(MIRType T) {
    return T == MIRType::Int32 || T == MIRType::Double;
  }
  MIRType knowledge(MInstr *Def, const TypeSet &FB) const {
    if (Def->type() != MIRType::Any)
      return Def->type();
    if (FB.isOnlyInt32())
      return MIRType::Int32;
    if (FB.isOnlyNumber())
      return MIRType::Double;
    if (FB.isOnlyString())
      return MIRType::String;
    if (FB.isOnlyArray())
      return MIRType::Array;
    if (FB.isOnlyBoolean())
      return MIRType::Boolean;
    return MIRType::Any;
  }

  /// \returns a definition of type \p T from \p Def, emitting ToDouble /
  /// Unbox as needed. Must only be called when allowed (see canUnboxTo).
  MInstr *unboxTo(MIRType T, MInstr *Def) {
    if (Def->type() == T)
      return Def;
    if (T == MIRType::Double && Def->type() == MIRType::Int32)
      return ins(MirOp::ToDouble, MIRType::Double, {Def});
    if (T == MIRType::Double)
      return guard(MirOp::Unbox, MIRType::Double, {Def},
                   static_cast<uint32_t>(MIRType::Double));
    return guard(MirOp::Unbox, T, {Def}, static_cast<uint32_t>(T));
  }

  /// True if unboxTo(T, Def) would not need a bailing guard.
  static bool unboxIsFree(MIRType T, const MInstr *Def) {
    if (Def->type() == T)
      return true;
    return T == MIRType::Double && Def->type() == MIRType::Int32;
  }
  /// Typed paths are permitted when either guards are allowed or all
  /// required unboxings are free.
  bool mayUnbox(MIRType T, const MInstr *Def) const {
    return !Opts.GenericOnly || unboxIsFree(T, Def);
  }

  /// Tier of entry parameter \p I (empty tier vector = all Value, the
  /// paper's policy).
  ParamTier paramTier(uint32_t I) const {
    if (Opts.ParamTiers.empty())
      return ParamTier::Value;
    return I < Opts.ParamTiers.size() ? Opts.ParamTiers[I]
                                      : ParamTier::Value;
  }
  /// Tier of OSR frame slot \p I (empty = all Value, matching
  /// OsrSlotValues; an explicit-but-short vector leaves the tail
  /// dynamic).
  ParamTier osrSlotTier(uint32_t I) const {
    if (Opts.OsrSlotTiers.empty())
      return ParamTier::Value;
    return I < Opts.OsrSlotTiers.size() ? Opts.OsrSlotTiers[I]
                                        : ParamTier::Generic;
  }

  // --- Edges ---
  void linkEdge(MBasicBlock *From, const std::vector<MInstr *> &ExitState,
                BCBlock &Target);

  // --- Prologue / OSR ---
  void buildPrologue();
  void buildOsrEntry(BCBlock &Header);

  // --- Translation ---
  bool translateBlock(BCBlock &B);
  /// Translates one op; returns true if it terminated the block.
  bool translateOp(uint32_t PC, uint32_t Len);
  void translateBinary(Op O);
  void translateCompare(Op O);
  void translateBitop(Op O);
  void translateCall(uint32_t PC);
  void translateCallMethod(uint32_t PC);
  void translateNew(uint32_t PC);
  void translateGetElem(uint32_t PC);
  void translateSetElem(uint32_t PC);

  const SiteFeedback *feedback(uint32_t PC) const {
    // Background compiles must not read the live map the interpreter is
    // mutating; the graph carries the enqueue-time snapshot instead.
    if (const FeedbackSnapshot *S = Graph.feedbackOverride())
      return S->find(Info, PC);
    return Info->Feedback.find(PC);
  }

  /// \returns a still-valid GuardShape of \p Obj for exactly \p Set in
  /// the current block, or null. Scans backward and gives up at any op
  /// that can transition an object's shape — GVN cannot merge shape
  /// guards (no effect barriers there), so redundant guards from
  /// back-to-back property ops on one receiver are reused at build time.
  MInstr *findShapeGuard(MInstr *Obj, const std::vector<const Shape *> &Set) {
    const std::vector<MInstr *> &Instrs = Cur->instructions();
    unsigned Scanned = 0;
    for (size_t I = Instrs.size(); I-- > 0 && Scanned < 64; ++Scanned) {
      MInstr *G = Instrs[I];
      if (G->op() == MirOp::GuardShape) {
        if ((G == Obj || G->operand(0) == Obj) &&
            Graph.shapeSet(G->AuxA) == Set)
          return G;
        continue; // A guard of another receiver is not a hazard.
      }
      switch (G->op()) {
      case MirOp::Call:
      case MirOp::CallMethod:
      case MirOp::CallWithThis:
      case MirOp::New:
      case MirOp::AddSlot:
      case MirOp::InitProp:
      case MirOp::GenericSetProp:
      case MirOp::GenericSetElem:
        return nullptr; // May have transitioned the receiver's shape.
      default:
        break;
      }
    }
    return nullptr;
  }
  /// findShapeGuard, or a fresh guard when no earlier one serves.
  MInstr *guardShape(MInstr *Obj, std::vector<const Shape *> Set) {
    if (MInstr *G = findShapeGuard(Obj, Set))
      return G;
    return guard(MirOp::GuardShape, MIRType::Object, {Obj},
                 Graph.addShapeSet(std::move(Set)));
  }

  // --- Cleanup ---
  void prunePhis();
  void inferPhiTypes();

  MIRGraph &Graph;
  FunctionInfo *Info;
  const BuildOptions &Opts;
  bool InlineMode;
  std::vector<MInstr *> InlineArgs;
  InlineBuildResult InlineResult;

  std::vector<BCBlock> BCBlocks;
  std::map<uint32_t, size_t> BlockIndex;

  MBasicBlock *Cur = nullptr;
  std::vector<MInstr *> State;
  uint32_t CurOpPC = 0;
  std::vector<MInstr *> PreOpState;
  MResumePoint *CurRP = nullptr;
  MInstr *ThisDef = nullptr;

  uint32_t LengthNameId = ~0u;
};

void Builder::findBlockBoundaries() {
  std::vector<uint32_t> Starts;
  Starts.push_back(0);
  const uint32_t Size = static_cast<uint32_t>(Info->Code.size());
  for (uint32_t PC = 0; PC < Size; PC += Info->instructionLength(PC)) {
    switch (Info->opAt(PC)) {
    case Op::Jump:
    case Op::JumpIfFalse:
    case Op::JumpIfTrue:
      Starts.push_back(Info->u32At(PC + 1));
      Starts.push_back(PC + Info->instructionLength(PC));
      break;
    case Op::Return:
    case Op::ReturnUndefined:
      Starts.push_back(PC + Info->instructionLength(PC));
      break;
    case Op::LoopHead:
      Starts.push_back(PC);
      break;
    default:
      break;
    }
  }
  std::sort(Starts.begin(), Starts.end());
  Starts.erase(std::unique(Starts.begin(), Starts.end()), Starts.end());
  while (!Starts.empty() && Starts.back() >= Size)
    Starts.pop_back();

  for (size_t I = 0, E = Starts.size(); I != E; ++I) {
    BCBlock B;
    B.Start = Starts[I];
    B.End = (I + 1 < E) ? Starts[I + 1] : Size;
    B.IsLoopHead = Info->opAt(B.Start) == Op::LoopHead;
    BlockIndex[B.Start] = I;
    BCBlocks.push_back(std::move(B));
  }
}

void Builder::propagateDepths() {
  // Worklist over bytecode blocks starting at offset 0 with depth 0.
  std::vector<size_t> Work;
  BCBlocks[0].EntryDepth = 0;
  Work.push_back(0);
  while (!Work.empty()) {
    size_t Idx = Work.back();
    Work.pop_back();
    BCBlock &B = BCBlocks[Idx];
    int Depth = B.EntryDepth;
    uint32_t PC = B.Start;
    bool Terminated = false;
    auto Flow = [&](uint32_t Target, int D) {
      BCBlock &T = blockAt(Target);
      if (T.EntryDepth < 0) {
        T.EntryDepth = D;
        Work.push_back(BlockIndex[Target]);
      } else {
        assert(T.EntryDepth == D && "inconsistent stack depth at join");
      }
    };
    while (PC < B.End) {
      Op O = Info->opAt(PC);
      uint32_t Len = Info->instructionLength(PC);
      switch (O) {
      case Op::Jump:
        Flow(Info->u32At(PC + 1), Depth);
        Terminated = true;
        break;
      case Op::JumpIfFalse:
      case Op::JumpIfTrue:
        Depth -= 1;
        Flow(Info->u32At(PC + 1), Depth);
        break;
      case Op::Return:
      case Op::ReturnUndefined:
        Terminated = true;
        break;
      default:
        Depth += stackDelta(Info, PC);
        break;
      }
      if (Terminated)
        break;
      PC += Len;
    }
    if (!Terminated && PC < Info->Code.size())
      Flow(PC, Depth);
  }
}

void Builder::linkEdge(MBasicBlock *From,
                       const std::vector<MInstr *> &ExitState,
                       BCBlock &Target) {
  assert(Target.EntryDepth >= 0 && "edge into unreachable block");
  size_t NumSlots = Info->NumSlots + static_cast<size_t>(Target.EntryDepth);
  assert(ExitState.size() == NumSlots && "state size mismatch on edge");

  Target.MBB->addPredecessor(From);

  if (Target.IsLoopHead) {
    if (Target.EntryState.empty()) {
      for (size_t I = 0; I != NumSlots; ++I) {
        MInstr *Phi = Graph.create(MirOp::Phi, MIRType::Any);
        Target.MBB->addPhi(Phi);
        Target.EntryState.push_back(Phi);
      }
    }
    for (size_t I = 0; I != NumSlots; ++I)
      Target.EntryState[I]->appendOperand(ExitState[I]);
    ++Target.LinkedPreds;
    return;
  }

  if (Target.LinkedPreds == 0) {
    Target.EntryState = ExitState;
    ++Target.LinkedPreds;
    return;
  }

  for (size_t I = 0; I != NumSlots; ++I) {
    MInstr *Existing = Target.EntryState[I];
    bool IsLocalPhi =
        Existing->isPhi() && Existing->block() == Target.MBB;
    if (IsLocalPhi) {
      Existing->appendOperand(ExitState[I]);
      continue;
    }
    if (Existing == ExitState[I])
      continue;
    // Diverging values: phi-ify this slot.
    MInstr *Phi = Graph.create(MirOp::Phi, MIRType::Any);
    for (unsigned P = 0; P != Target.LinkedPreds; ++P)
      Phi->appendOperand(Existing);
    Phi->appendOperand(ExitState[I]);
    Target.MBB->addPhi(Phi);
    Target.EntryState[I] = Phi;
  }
  // Slots that stayed identical across the new predecessor are fine, but
  // previously-created local phis for other slots needed the operand
  // appended above. Now account for slots that were equal but already had
  // local phis (handled), and bump the pred count.
  ++Target.LinkedPreds;
}

void Builder::buildPrologue() {
  Cur = Graph.createBlock();
  if (!InlineMode)
    Graph.setEntry(Cur);
  else
    InlineResult.EntryBlock = Cur;

  if (!InlineMode)
    ins(MirOp::Start, MIRType::None, {});

  State.clear();
  MInstr *UndefConst = constant(Value::undefined());

  for (uint32_t I = 0; I != Info->NumSlots; ++I) {
    if (I < Info->NumParams) {
      if (InlineMode) {
        State.push_back(I < InlineArgs.size() ? InlineArgs[I] : UndefConst);
        continue;
      }
      if (Opts.SpecializedArgs && paramTier(I) == ParamTier::Value) {
        const auto &Args = *Opts.SpecializedArgs;
        Value V = I < Args.size() ? Args[I] : Value::undefined();
        State.push_back(constant(V));
        continue;
      }
      // Type-tier parameters load dynamically but carry the guarded tag
      // as their static type, guard-free: the specialization cache keys
      // dispatch on the tag (specSigMatches), so the fact is already
      // validated before the binary is ever entered — exactly as the
      // value tier trusts its baked-in constants. Typed uses therefore
      // need no per-site Unbox.
      MIRType PT = MIRType::Any;
      if (Opts.SpecializedArgs && paramTier(I) == ParamTier::Type) {
        const auto &Args = *Opts.SpecializedArgs;
        Value V = I < Args.size() ? Args[I] : Value::undefined();
        PT = mirTypeOfValue(V);
      }
      MInstr *Param = ins(MirOp::Parameter, PT, {}, I);
      State.push_back(Param);
      continue;
    }
    State.push_back(UndefConst);
  }

  // `this` is never specialized (the cache keys on parameters only).
  if (InlineMode)
    ThisDef = UndefConst;
  else
    ThisDef = ins(MirOp::GetThis, MIRType::Any, {});

  if (!InlineMode && Opts.EmitEntryChecks)
    ins(MirOp::CheckOverRecursed, MIRType::None, {});

  if (!InlineMode) {
    // Record the entry frame state so later passes (bounds-check
    // elimination) can attach entry guards that bail before any side
    // effect has happened.
    MResumePoint *RP = Graph.createResumePoint(/*PC=*/0, Info->NumSlots);
    for (MInstr *Def : State)
      RP->appendEntry(Def);
    Cur->setEntryResumePoint(RP);
  }

  MInstr *Jump = ins(MirOp::Goto, MIRType::None, {});
  Jump->setSuccessor(0, BCBlocks[0].MBB);
  linkEdge(Cur, State, BCBlocks[0]);
}

void Builder::buildOsrEntry(BCBlock &Header) {
  assert(!InlineMode && "no OSR in inlined code");
  assert(Header.EntryDepth == 0 && "operand stack not empty at OSR point");

  MBasicBlock *SaveCur = Cur;
  std::vector<MInstr *> SaveState = State;

  MBasicBlock *OsrMBB = Graph.createBlock();
  Graph.setOsrBlock(OsrMBB);
  Cur = OsrMBB;

  std::vector<MInstr *> OsrState;
  for (uint32_t I = 0; I != Info->NumSlots; ++I) {
    if (Opts.SpecializedArgs && osrSlotTier(I) == ParamTier::Value) {
      // Paper Figure 7(a): OSR inputs are specialized to the live frame
      // values as well.
      Value V = I < Opts.OsrSlotValues.size() ? Opts.OsrSlotValues[I]
                                              : Value::undefined();
      OsrState.push_back(constant(V));
    } else {
      // Type-tier slots load the live frame value but carry its tag as
      // their static type, guard-free: the engine revalidates the OSR
      // signature (specSigMatches on the frame slots) before every
      // OSR entry, mirroring the entry-parameter contract.
      MIRType ST = MIRType::Any;
      if (Opts.SpecializedArgs && osrSlotTier(I) == ParamTier::Type) {
        Value V = I < Opts.OsrSlotValues.size() ? Opts.OsrSlotValues[I]
                                                : Value::undefined();
        ST = mirTypeOfValue(V);
      }
      OsrState.push_back(ins(MirOp::OsrValue, ST, {}, I));
    }
  }

  MResumePoint *RP = Graph.createResumePoint(*Opts.OsrPc, Info->NumSlots);
  for (MInstr *Def : OsrState)
    RP->appendEntry(Def);
  OsrMBB->setEntryResumePoint(RP);

  MInstr *Jump = ins(MirOp::Goto, MIRType::None, {});
  Jump->setSuccessor(0, Header.MBB);
  linkEdge(OsrMBB, OsrState, Header);

  Cur = SaveCur;
  State = std::move(SaveState);
}

bool Builder::translateBlock(BCBlock &B) {
  Cur = B.MBB;
  State = B.EntryState;
  uint32_t PC = B.Start;
  bool Terminated = false;
  while (PC < B.End) {
    CurOpPC = PC;
    CurRP = nullptr;
    PreOpState = State;
    uint32_t Len = Info->instructionLength(PC);
    Terminated = translateOp(PC, Len);
    if (Terminated)
      break;
    PC += Len;
  }
  if (!Terminated) {
    assert(PC < Info->Code.size() && "bytecode fell off the end");
    BCBlock &Next = blockAt(PC);
    MInstr *Jump = ins(MirOp::Goto, MIRType::None, {});
    Jump->setSuccessor(0, Next.MBB);
    linkEdge(Cur, State, Next);
  }
  return true;
}

void Builder::translateBinary(Op O) {
  MInstr *B = pop(), *A = pop();
  const SiteFeedback *FB = feedback(CurOpPC);
  TypeSet Empty;
  MIRType KA = knowledge(A, FB ? FB->A : Empty);
  MIRType KB = knowledge(B, FB ? FB->B : Empty);
  bool OverflowSeen = FB && FB->SawIntOverflow;

  if (O == Op::Div) {
    if (isNumericType(KA) && isNumericType(KB) &&
        mayUnbox(MIRType::Double, A) && mayUnbox(MIRType::Double, B)) {
      MInstr *DA = unboxTo(MIRType::Double, A);
      MInstr *DB = unboxTo(MIRType::Double, B);
      push(ins(MirOp::DivD, MIRType::Double, {DA, DB}));
      return;
    }
    push(ins(MirOp::GenericBinop, MIRType::Any, {A, B},
             static_cast<uint32_t>(O)));
    return;
  }

  MirOp IntOp, DoubleOp;
  switch (O) {
  case Op::Add:
    IntOp = MirOp::AddI;
    DoubleOp = MirOp::AddD;
    break;
  case Op::Sub:
    IntOp = MirOp::SubI;
    DoubleOp = MirOp::SubD;
    break;
  case Op::Mul:
    IntOp = MirOp::MulI;
    DoubleOp = MirOp::MulD;
    break;
  case Op::Mod:
    IntOp = MirOp::ModI;
    DoubleOp = MirOp::ModD;
    break;
  default:
    JITVS_UNREACHABLE("bad binary op");
  }

  // Int32 fast path with overflow guards.
  if (!Opts.GenericOnly && KA == MIRType::Int32 && KB == MIRType::Int32 &&
      !OverflowSeen) {
    MInstr *IA = unboxTo(MIRType::Int32, A);
    MInstr *IB = unboxTo(MIRType::Int32, B);
    push(guard(IntOp, MIRType::Int32, {IA, IB}));
    return;
  }
  // Double path.
  if (isNumericType(KA) && isNumericType(KB) &&
      mayUnbox(MIRType::Double, A) && mayUnbox(MIRType::Double, B)) {
    MInstr *DA = unboxTo(MIRType::Double, A);
    MInstr *DB = unboxTo(MIRType::Double, B);
    push(ins(DoubleOp, MIRType::Double, {DA, DB}));
    return;
  }
  // String concatenation.
  if (O == Op::Add && KA == MIRType::String && KB == MIRType::String &&
      mayUnbox(MIRType::String, A) && mayUnbox(MIRType::String, B)) {
    MInstr *SA = unboxTo(MIRType::String, A);
    MInstr *SB = unboxTo(MIRType::String, B);
    push(ins(MirOp::Concat, MIRType::String, {SA, SB}));
    return;
  }
  push(ins(MirOp::GenericBinop, MIRType::Any, {A, B},
           static_cast<uint32_t>(O)));
}

void Builder::translateCompare(Op O) {
  MInstr *B = pop(), *A = pop();
  const SiteFeedback *FB = feedback(CurOpPC);
  TypeSet Empty;
  MIRType KA = knowledge(A, FB ? FB->A : Empty);
  MIRType KB = knowledge(B, FB ? FB->B : Empty);

  if (KA == MIRType::Int32 && KB == MIRType::Int32 &&
      mayUnbox(MIRType::Int32, A) && mayUnbox(MIRType::Int32, B)) {
    MInstr *IA = unboxTo(MIRType::Int32, A);
    MInstr *IB = unboxTo(MIRType::Int32, B);
    push(ins(MirOp::CompareI, MIRType::Boolean, {IA, IB},
             static_cast<uint32_t>(O)));
    return;
  }
  if (isNumericType(KA) && isNumericType(KB) &&
      mayUnbox(MIRType::Double, A) && mayUnbox(MIRType::Double, B)) {
    MInstr *DA = unboxTo(MIRType::Double, A);
    MInstr *DB = unboxTo(MIRType::Double, B);
    push(ins(MirOp::CompareD, MIRType::Boolean, {DA, DB},
             static_cast<uint32_t>(O)));
    return;
  }
  if (KA == MIRType::String && KB == MIRType::String &&
      mayUnbox(MIRType::String, A) && mayUnbox(MIRType::String, B)) {
    MInstr *SA = unboxTo(MIRType::String, A);
    MInstr *SB = unboxTo(MIRType::String, B);
    push(ins(MirOp::CompareS, MIRType::Boolean, {SA, SB},
             static_cast<uint32_t>(O)));
    return;
  }
  push(ins(MirOp::CompareGeneric, MIRType::Boolean, {A, B},
           static_cast<uint32_t>(O)));
}

void Builder::translateBitop(Op O) {
  MirOp M;
  switch (O) {
  case Op::BitAnd:
    M = MirOp::BitAnd;
    break;
  case Op::BitOr:
    M = MirOp::BitOr;
    break;
  case Op::BitXor:
    M = MirOp::BitXor;
    break;
  case Op::Shl:
    M = MirOp::Shl;
    break;
  case Op::Shr:
    M = MirOp::Shr;
    break;
  case Op::UShr:
    M = MirOp::UShr;
    break;
  default:
    JITVS_UNREACHABLE("bad bitop");
  }
  MInstr *B = pop(), *A = pop();
  // ToInt32 never bails; bit ops are always typed.
  MInstr *IA = A->type() == MIRType::Int32
                   ? A
                   : ins(MirOp::TruncateToInt32, MIRType::Int32, {A});
  MInstr *IB = B->type() == MIRType::Int32
                   ? B
                   : ins(MirOp::TruncateToInt32, MIRType::Int32, {B});
  // UShr can produce values above INT32_MAX; its result is a double.
  MIRType RT = M == MirOp::UShr ? MIRType::Double : MIRType::Int32;
  push(ins(M, RT, {IA, IB}));
}

void Builder::translateGetElem(uint32_t PC) {
  MInstr *Index = pop(), *Obj = pop();
  const SiteFeedback *FB = feedback(PC);
  TypeSet Empty;
  MIRType KO = knowledge(Obj, FB ? FB->A : Empty);
  MIRType KI = knowledge(Index, FB ? FB->B : Empty);
  bool OobSeen = FB && FB->SawOutOfBounds;

  if (!Opts.GenericOnly && KO == MIRType::Array && KI == MIRType::Int32 &&
      !OobSeen) {
    MInstr *Arr = unboxTo(MIRType::Array, Obj);
    MInstr *Idx = unboxTo(MIRType::Int32, Index);
    MInstr *Len = ins(MirOp::ArrayLength, MIRType::Int32, {Arr});
    guard(MirOp::BoundsCheck, MIRType::None, {Idx, Len});
    push(ins(MirOp::LoadElement, MIRType::Any, {Arr, Idx}));
    return;
  }
  push(ins(MirOp::GenericGetElem, MIRType::Any, {Obj, Index}));
}

void Builder::translateSetElem(uint32_t PC) {
  MInstr *V = pop(), *Index = pop(), *Obj = pop();
  const SiteFeedback *FB = feedback(PC);
  TypeSet Empty;
  MIRType KO = knowledge(Obj, FB ? FB->A : Empty);
  MIRType KI = knowledge(Index, FB ? FB->B : Empty);
  bool OobSeen = FB && FB->SawOutOfBounds;

  if (!Opts.GenericOnly && KO == MIRType::Array && KI == MIRType::Int32 &&
      !OobSeen) {
    MInstr *Arr = unboxTo(MIRType::Array, Obj);
    MInstr *Idx = unboxTo(MIRType::Int32, Index);
    MInstr *Len = ins(MirOp::ArrayLength, MIRType::Int32, {Arr});
    guard(MirOp::BoundsCheck, MIRType::None, {Idx, Len});
    ins(MirOp::StoreElement, MIRType::None, {Arr, Idx, V});
    push(V);
    return;
  }
  push(ins(MirOp::GenericSetElem, MIRType::Any, {Obj, Index, V}));
}

void Builder::translateCall(uint32_t PC) {
  uint8_t Argc = Info->u8At(PC + 1);
  std::vector<MInstr *> Args(Argc);
  for (int I = Argc - 1; I >= 0; --I)
    Args[I] = pop();
  MInstr *Callee = pop();

  // new Array(n) / Array(n) fast path when the callee is a known builtin.
  if (Callee->op() == MirOp::Constant && Callee->constValue().isFunction()) {
    JSFunction *F = Callee->constValue().asFunction();
    if (F->isNative() && F->nativeName() == "Array" && Argc == 1 &&
        Args[0]->type() == MIRType::Int32) {
      push(ins(MirOp::NewArrayLen, MIRType::Array, {Args[0]}));
      return;
    }
  }

  MInstr *Call = Graph.create(MirOp::Call, MIRType::Any);
  Call->appendOperand(Callee);
  for (MInstr *A : Args)
    Call->appendOperand(A);
  Call->AuxA = Argc;
  Cur->append(Call);
  push(Call);
}

void Builder::translateCallMethod(uint32_t PC) {
  uint16_t NameId = Info->u16At(PC + 1);
  uint8_t Argc = Info->u8At(PC + 3);
  std::vector<MInstr *> Args(Argc);
  for (int I = Argc - 1; I >= 0; --I)
    Args[I] = pop();
  MInstr *Recv = pop();

  const SiteFeedback *FB = feedback(PC);
  TypeSet Empty;
  MIRType KR = knowledge(Recv, FB ? FB->A : Empty);
  const std::string &Name = Info->Parent->names().name(NameId);

  // Math.* and String.fromCharCode intrinsics on constant receivers.
  // Sound under the standard frozen-builtins assumption (see DESIGN.md).
  if (Recv->op() == MirOp::Constant && Recv->constValue().isObject()) {
    JSObject *Obj = Recv->constValue().asObject();
    Value Prop = Obj->getProperty(NameId);
    if (Prop.isFunction() && Prop.asFunction()->isNative()) {
      const std::string &NN = Prop.asFunction()->nativeName();
      struct IntrinsicDesc {
        const char *Name;
        MathIntrinsic Fn;
        unsigned Arity;
      };
      static const IntrinsicDesc Intrinsics[] = {
          {"sin", MathIntrinsic::Sin, 1},   {"cos", MathIntrinsic::Cos, 1},
          {"tan", MathIntrinsic::Tan, 1},   {"atan", MathIntrinsic::Atan, 1},
          {"sqrt", MathIntrinsic::Sqrt, 1}, {"abs", MathIntrinsic::Abs, 1},
          {"floor", MathIntrinsic::Floor, 1},
          {"ceil", MathIntrinsic::Ceil, 1},
          {"round", MathIntrinsic::Round, 1},
          {"log", MathIntrinsic::Log, 1},   {"exp", MathIntrinsic::Exp, 1},
          {"pow", MathIntrinsic::Pow, 2},
          {"atan2", MathIntrinsic::Atan2, 2},
      };
      for (const IntrinsicDesc &D : Intrinsics) {
        if (NN != D.Name || Argc != D.Arity)
          continue;
        bool AllNumeric = true;
        for (MInstr *A : Args) {
          TypeSet None;
          MIRType K = knowledge(A, None);
          if (!isNumericType(K) || !mayUnbox(MIRType::Double, A)) {
            AllNumeric = false;
            break;
          }
        }
        if (!AllNumeric)
          break;
        MInstr *MF = Graph.create(MirOp::MathFunction, MIRType::Double);
        for (MInstr *A : Args)
          MF->appendOperand(unboxTo(MIRType::Double, A));
        MF->AuxA = static_cast<uint32_t>(D.Fn);
        Cur->append(MF);
        push(MF);
        return;
      }
      if (NN == "fromCharCode" && Argc == 1) {
        MInstr *Code = Args[0]->type() == MIRType::Int32
                           ? Args[0]
                           : ins(MirOp::TruncateToInt32, MIRType::Int32,
                                 {Args[0]});
        push(ins(MirOp::FromCharCode, MIRType::String, {Code}));
        return;
      }
    }
  }

  // String charCodeAt fast path.
  if (!Opts.GenericOnly && KR == MIRType::String && Name == "charCodeAt" &&
      Argc == 1) {
    if (knowledge(Args[0], FB ? FB->B : Empty) == MIRType::Int32 &&
        !(FB && FB->SawOutOfBounds)) {
      MInstr *Str = unboxTo(MIRType::String, Recv);
      MInstr *Idx = unboxTo(MIRType::Int32, Args[0]);
      MInstr *Len = ins(MirOp::StringLength, MIRType::Int32, {Str});
      guard(MirOp::BoundsCheck, MIRType::None, {Idx, Len});
      push(ins(MirOp::CharCodeAt, MIRType::Int32, {Str, Idx}));
      return;
    }
  }

  // Shape-specialized method call: a monomorphic receiver whose cached
  // way holds the method's slot becomes guard + raw slot load + direct
  // call with an explicit `this` (no per-call property lookup).
  if (!Opts.GenericOnly && FB && FB->NumWays == 1 && !FB->Megamorphic &&
      FB->Ways[0].Slot >= 0) {
    const PropICWay &W = FB->Ways[0];
    MInstr *O = guardShape(Recv, {W.S});
    MInstr *Callee = ins(MirOp::LoadSlot, MIRType::Any, {O},
                         static_cast<uint32_t>(W.Slot));
    MInstr *Call = Graph.create(MirOp::CallWithThis, MIRType::Any);
    Call->appendOperand(Callee);
    Call->appendOperand(O);
    for (MInstr *A : Args)
      Call->appendOperand(A);
    Call->AuxA = Argc;
    Call->AuxB = NameId;
    Cur->append(Call);
    push(Call);
    return;
  }

  MInstr *Call = Graph.create(MirOp::CallMethod, MIRType::Any);
  Call->appendOperand(Recv);
  for (MInstr *A : Args)
    Call->appendOperand(A);
  Call->AuxA = NameId;
  Cur->append(Call);
  push(Call);
}

void Builder::translateNew(uint32_t PC) {
  uint8_t Argc = Info->u8At(PC + 1);
  std::vector<MInstr *> Args(Argc);
  for (int I = Argc - 1; I >= 0; --I)
    Args[I] = pop();
  MInstr *Callee = pop();

  if (Callee->op() == MirOp::Constant && Callee->constValue().isFunction()) {
    JSFunction *F = Callee->constValue().asFunction();
    if (F->isNative() && F->nativeName() == "Array" && Argc == 1 &&
        Args[0]->type() == MIRType::Int32) {
      push(ins(MirOp::NewArrayLen, MIRType::Array, {Args[0]}));
      return;
    }
  }

  MInstr *New = Graph.create(MirOp::New, MIRType::Any);
  New->appendOperand(Callee);
  for (MInstr *A : Args)
    New->appendOperand(A);
  New->AuxA = Argc;
  Cur->append(New);
  push(New);
}

bool Builder::translateOp(uint32_t PC, uint32_t Len) {
  Op O = Info->opAt(PC);
  switch (O) {
  case Op::Nop:
    return false;

  case Op::PushConst:
    push(constant(Info->Constants[Info->u16At(PC + 1)]));
    return false;
  case Op::PushInt8:
    push(constant(Value::int32(Info->i8At(PC + 1))));
    return false;
  case Op::PushUndefined:
    push(constant(Value::undefined()));
    return false;
  case Op::PushNull:
    push(constant(Value::null()));
    return false;
  case Op::PushTrue:
    push(constant(Value::boolean(true)));
    return false;
  case Op::PushFalse:
    push(constant(Value::boolean(false)));
    return false;

  case Op::GetSlot:
    push(slot(Info->u16At(PC + 1)));
    return false;
  case Op::SetSlot:
    slot(Info->u16At(PC + 1)) = pop();
    return false;
  case Op::GetEnvSlot:
    push(ins(MirOp::GetEnvSlot, MIRType::Any, {}, Info->u16At(PC + 2),
             Info->u8At(PC + 1)));
    return false;
  case Op::SetEnvSlot: {
    MInstr *V = pop();
    ins(MirOp::SetEnvSlot, MIRType::None, {V}, Info->u16At(PC + 2),
        Info->u8At(PC + 1));
    return false;
  }
  case Op::GetGlobal:
    push(ins(MirOp::GetGlobal, MIRType::Any, {}, Info->u16At(PC + 1)));
    return false;
  case Op::SetGlobal: {
    MInstr *V = pop();
    ins(MirOp::SetGlobal, MIRType::None, {V}, Info->u16At(PC + 1));
    return false;
  }

  case Op::Dup:
    push(top());
    return false;
  case Op::Dup2: {
    MInstr *B = State[State.size() - 1];
    MInstr *A = State[State.size() - 2];
    push(A);
    push(B);
    return false;
  }
  case Op::Pop:
    pop();
    return false;
  case Op::Swap:
    std::swap(State[State.size() - 1], State[State.size() - 2]);
    return false;

  case Op::Add:
  case Op::Sub:
  case Op::Mul:
  case Op::Div:
  case Op::Mod:
    translateBinary(O);
    return false;

  case Op::Neg: {
    MInstr *A = pop();
    const SiteFeedback *FB = feedback(PC);
    TypeSet Empty;
    MIRType K = knowledge(A, FB ? FB->A : Empty);
    if (!Opts.GenericOnly && K == MIRType::Int32 &&
        !(FB && FB->SawIntOverflow)) {
      push(guard(MirOp::NegI, MIRType::Int32, {unboxTo(MIRType::Int32, A)}));
    } else if (isNumericType(K) && mayUnbox(MIRType::Double, A)) {
      push(ins(MirOp::NegD, MIRType::Double, {unboxTo(MIRType::Double, A)}));
    } else {
      push(ins(MirOp::GenericUnop, MIRType::Any, {A},
               static_cast<uint32_t>(O)));
    }
    return false;
  }
  case Op::Pos: {
    MInstr *A = pop();
    const SiteFeedback *FB = feedback(PC);
    TypeSet Empty;
    MIRType K = knowledge(A, FB ? FB->A : Empty);
    if (isNumericType(K) && A->type() != MIRType::Any) {
      push(A); // Already a number; ToNumber is the identity.
    } else if (!Opts.GenericOnly && K == MIRType::Int32) {
      push(unboxTo(MIRType::Int32, A));
    } else if (!Opts.GenericOnly && K == MIRType::Double) {
      push(unboxTo(MIRType::Double, A));
    } else {
      push(ins(MirOp::GenericUnop, MIRType::Any, {A},
               static_cast<uint32_t>(O)));
    }
    return false;
  }
  case Op::Not:
    push(ins(MirOp::Not, MIRType::Boolean, {pop()}));
    return false;
  case Op::BitNot: {
    MInstr *A = pop();
    MInstr *IA = A->type() == MIRType::Int32
                     ? A
                     : ins(MirOp::TruncateToInt32, MIRType::Int32, {A});
    push(ins(MirOp::BitNot, MIRType::Int32, {IA}));
    return false;
  }

  case Op::BitAnd:
  case Op::BitOr:
  case Op::BitXor:
  case Op::Shl:
  case Op::Shr:
  case Op::UShr:
    translateBitop(O);
    return false;

  case Op::Lt:
  case Op::Le:
  case Op::Gt:
  case Op::Ge:
  case Op::Eq:
  case Op::Ne:
  case Op::StrictEq:
  case Op::StrictNe:
    translateCompare(O);
    return false;

  case Op::TypeOf:
    push(ins(MirOp::TypeOf, MIRType::String, {pop()}));
    return false;

  case Op::Jump: {
    BCBlock &T = blockAt(Info->u32At(PC + 1));
    MInstr *J = ins(MirOp::Goto, MIRType::None, {});
    J->setSuccessor(0, T.MBB);
    linkEdge(Cur, State, T);
    return true;
  }
  case Op::JumpIfFalse:
  case Op::JumpIfTrue: {
    MInstr *Cond = pop();
    BCBlock &Target = blockAt(Info->u32At(PC + 1));
    BCBlock &Fall = blockAt(PC + Len);
    BCBlock &TrueB = O == Op::JumpIfTrue ? Target : Fall;
    BCBlock &FalseB = O == Op::JumpIfTrue ? Fall : Target;
    MInstr *T = ins(MirOp::Test, MIRType::None, {Cond});
    T->setSuccessor(0, TrueB.MBB);
    T->setSuccessor(1, FalseB.MBB);
    linkEdge(Cur, State, TrueB);
    linkEdge(Cur, State, FalseB);
    return true;
  }
  case Op::LoopHead:
    Cur->setLoopHeader(true);
    if (Opts.OsrPc && *Opts.OsrPc == PC)
      buildOsrEntry(blockAt(PC));
    return false;

  case Op::Call:
    translateCall(PC);
    return false;
  case Op::CallMethod:
    translateCallMethod(PC);
    return false;
  case Op::New:
    translateNew(PC);
    return false;

  case Op::Return: {
    MInstr *V = pop();
    if (InlineMode) {
      InlineResult.Returns.emplace_back(Cur, V);
      return true;
    }
    ins(MirOp::Return, MIRType::None, {V});
    return true;
  }
  case Op::ReturnUndefined: {
    MInstr *V = constant(Value::undefined());
    if (InlineMode) {
      InlineResult.Returns.emplace_back(Cur, V);
      return true;
    }
    ins(MirOp::Return, MIRType::None, {V});
    return true;
  }

  case Op::NewArray: {
    uint16_t Count = Info->u16At(PC + 1);
    std::vector<MInstr *> Elems(Count);
    for (int I = Count - 1; I >= 0; --I)
      Elems[I] = pop();
    MInstr *Arr = Graph.create(MirOp::NewArray, MIRType::Array);
    for (MInstr *E : Elems)
      Arr->appendOperand(E);
    Cur->append(Arr);
    push(Arr);
    return false;
  }
  case Op::NewObject:
    push(ins(MirOp::NewObject, MIRType::Object, {}));
    return false;
  case Op::InitProp: {
    MInstr *V = pop();
    MInstr *Obj = top();
    ins(MirOp::InitProp, MIRType::None, {Obj, V}, Info->u16At(PC + 1));
    return false;
  }
  case Op::GetElem:
    translateGetElem(PC);
    return false;
  case Op::SetElem:
    translateSetElem(PC);
    return false;
  case Op::GetProp: {
    uint16_t NameId = Info->u16At(PC + 1);
    MInstr *Obj = pop();
    const SiteFeedback *FB = feedback(PC);
    TypeSet Empty;
    MIRType K = knowledge(Obj, FB ? FB->A : Empty);
    if (NameId == LengthNameId && K == MIRType::Array &&
        mayUnbox(MIRType::Array, Obj)) {
      push(ins(MirOp::ArrayLength, MIRType::Int32,
               {unboxTo(MIRType::Array, Obj)}));
      return false;
    }
    if (NameId == LengthNameId && K == MIRType::String &&
        mayUnbox(MIRType::String, Obj)) {
      push(ins(MirOp::StringLength, MIRType::Int32,
               {unboxTo(MIRType::String, Obj)}));
      return false;
    }
    // Shape-specialized load: every cached IC way reads the same present
    // slot, so one guard on the shape set plus a raw slot load serves the
    // whole site (mono- or polymorphic).
    if (!Opts.GenericOnly && FB && FB->NumWays > 0 && !FB->Megamorphic) {
      int32_t Slot = FB->Ways[0].Slot;
      bool Uniform = Slot >= 0;
      std::vector<const Shape *> Set;
      for (unsigned I = 0; I < FB->NumWays && Uniform; ++I) {
        if (FB->Ways[I].Slot != Slot)
          Uniform = false;
        else
          Set.push_back(FB->Ways[I].S);
      }
      if (Uniform) {
        MInstr *O = guardShape(Obj, std::move(Set));
        push(ins(MirOp::LoadSlot, MIRType::Any, {O},
                 static_cast<uint32_t>(Slot)));
        return false;
      }
    }
    push(ins(MirOp::GenericGetProp, MIRType::Any, {Obj}, NameId));
    return false;
  }
  case Op::SetProp: {
    uint16_t NameId = Info->u16At(PC + 1);
    MInstr *V = pop(), *Obj = pop();
    const SiteFeedback *FB = feedback(PC);
    if (!Opts.GenericOnly && FB && FB->NumWays > 0 && !FB->Megamorphic) {
      // Monomorphic: in-place store, or a property add following the
      // site's one cached transition.
      if (FB->NumWays == 1) {
        const PropICWay &W = FB->Ways[0];
        MInstr *O = guardShape(Obj, {W.S});
        if (W.To)
          ins(MirOp::AddSlot, MIRType::None, {O, V},
              Graph.addShapeSet({W.To}), static_cast<uint32_t>(W.Slot));
        else
          ins(MirOp::StoreSlot, MIRType::None, {O, V},
              static_cast<uint32_t>(W.Slot));
        push(V);
        return false;
      }
      // Polymorphic: all ways must be in-place stores to a common slot.
      int32_t Slot = FB->Ways[0].Slot;
      bool Uniform = true;
      std::vector<const Shape *> Set;
      for (unsigned I = 0; I < FB->NumWays; ++I) {
        if (FB->Ways[I].To || FB->Ways[I].Slot != Slot) {
          Uniform = false;
          break;
        }
        Set.push_back(FB->Ways[I].S);
      }
      if (Uniform) {
        MInstr *O = guardShape(Obj, std::move(Set));
        ins(MirOp::StoreSlot, MIRType::None, {O, V},
            static_cast<uint32_t>(Slot));
        push(V);
        return false;
      }
    }
    push(ins(MirOp::GenericSetProp, MIRType::Any, {Obj, V}, NameId));
    return false;
  }

  case Op::MakeClosure:
    assert(!InlineMode && "closures inside inlined bodies are rejected");
    push(ins(MirOp::MakeClosure, MIRType::Function, {},
             Info->u16At(PC + 1)));
    return false;
  case Op::GetThis:
    push(ThisDef);
    return false;
  }
  JITVS_UNREACHABLE("bad bytecode op");
}

void Builder::prunePhis() {
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const auto &BPtr : Graph.blocks()) {
      if (BPtr->isDead())
        continue;
      std::vector<MInstr *> Phis = BPtr->phis();
      for (MInstr *Phi : Phis) {
        MInstr *Unique = nullptr;
        bool Trivial = true;
        for (size_t I = 0, E = Phi->numOperands(); I != E; ++I) {
          MInstr *Operand = Phi->operand(I);
          if (Operand == Phi)
            continue;
          if (!Unique) {
            Unique = Operand;
          } else if (Unique != Operand) {
            Trivial = false;
            break;
          }
        }
        if (!Trivial || !Unique)
          continue;
        Phi->replaceAllUsesWith(Unique);
        // Inline mode records return defs as raw pointers rather than
        // operands of a Return instruction, so replaceAllUsesWith does
        // not see them: forward them by hand, or the inliner would wire
        // the call result to a def that sits in no block (an
        // uninitialized register at runtime).
        for (auto &Ret : InlineResult.Returns)
          if (Ret.second == Phi)
            Ret.second = Unique;
        BPtr->removePhi(Phi);
        Changed = true;
      }
    }
  }
}

void Builder::inferPhiTypes() {
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const auto &BPtr : Graph.blocks()) {
      if (BPtr->isDead())
        continue;
      for (MInstr *Phi : BPtr->phis()) {
        MIRType Unified = MIRType::None;
        for (size_t I = 0, E = Phi->numOperands(); I != E; ++I) {
          MInstr *Operand = Phi->operand(I);
          if (Operand == Phi)
            continue;
          MIRType T = Operand->type();
          if (Unified == MIRType::None)
            Unified = T;
          else if (Unified != T)
            Unified = MIRType::Any;
        }
        if (Unified == MIRType::None)
          Unified = MIRType::Any;
        if (Phi->type() != Unified && Unified != MIRType::Any) {
          // Only narrow monotonically from Any.
          if (Phi->type() == MIRType::Any) {
            Phi->setType(Unified);
            Changed = true;
          }
        }
      }
    }
  }
}

bool Builder::run() {
  findBlockBoundaries();
  propagateDepths();

  // Create machine blocks for reachable bytecode blocks.
  for (BCBlock &B : BCBlocks) {
    if (B.EntryDepth < 0)
      continue;
    B.MBB = Graph.createBlock();
    if (B.IsLoopHead)
      B.MBB->setLoopHeader(true);
  }

  buildPrologue();

  for (BCBlock &B : BCBlocks) {
    if (B.EntryDepth < 0)
      continue;
    translateBlock(B);
  }

  prunePhis();
  inferPhiTypes();
  return true;
}

} // namespace

std::unique_ptr<MIRGraph> jitvs::buildMIR(FunctionInfo *Info,
                                          const BuildOptions &Opts) {
  auto Graph = std::make_unique<MIRGraph>(Info);
  Graph->setFeedbackOverride(Opts.Feedback);
  Builder B(*Graph, Info, Opts, /*InlineMode=*/false, {});
  B.run();
  return Graph;
}

InlineBuildResult jitvs::buildInlineMIR(MIRGraph &Graph, FunctionInfo *Info,
                                        const std::vector<MInstr *> &ArgDefs) {
  InlineBuildResult Bad;
  if (!isInlinableFunction(Info, /*MaxBytecodeSize=*/400))
    return Bad;
  BuildOptions Opts;
  Opts.GenericOnly = true;
  Opts.EmitEntryChecks = false;
  Builder B(Graph, Info, Opts, /*InlineMode=*/true, ArgDefs);
  if (!B.run())
    return Bad;
  InlineBuildResult R = B.takeInlineResult();
  R.Ok = true;
  return R;
}

bool jitvs::isInlinableFunction(const FunctionInfo *Info,
                                size_t MaxBytecodeSize) {
  if (Info->Code.size() > MaxBytecodeSize)
    return false;
  if (Info->UsesEnvironment || Info->NumEnvSlots > 0)
    return false;
  for (uint32_t PC = 0; PC < Info->Code.size();
       PC += Info->instructionLength(PC)) {
    switch (Info->opAt(PC)) {
    case Op::GetEnvSlot:
    case Op::SetEnvSlot:
    case Op::MakeClosure:
      return false;
    default:
      break;
    }
  }
  return true;
}
