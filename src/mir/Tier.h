//===- mir/Tier.h - Per-parameter specialization tiers ----------*- C++ -*-===//
///
/// \file
/// The specialization ladder (see DESIGN.md "Specialization tiers"): each
/// parameter of a compiled function is independently baked at one of three
/// tiers. The paper's policy is the all-Value / all-Generic special case;
/// the Type tier in between specializes on the runtime *tag* only, trading
/// constant folding for reuse across calls whose values flip but whose
/// types stay stable (cf. Chevalier-Boisvert & Feeley's type-driven
/// versioning in PAPERS.md).
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_MIR_TIER_H
#define JITVS_MIR_TIER_H

#include <cstdint>

namespace jitvs {

/// How one parameter is baked into a specialized binary. Ordered from
/// weakest to strongest fact, so despecialization is a monotone walk down
/// the numeric value (Value -> Type -> Generic) and never climbs back up.
enum class ParamTier : uint8_t {
  Generic, ///< Fully dynamic: plain Parameter load, no assumptions.
  Type,    ///< Tag baked in: Parameter + entry type guard, typed uses.
  Value,   ///< Exact value baked in as a compile-time constant (§3.2).
};

/// \returns a stable lower-case name ("generic", "type", "value").
const char *paramTierName(ParamTier T);

} // namespace jitvs

#endif // JITVS_MIR_TIER_H
