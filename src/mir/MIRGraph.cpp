//===- mir/MIRGraph.cpp - CFG implementation ------------------------------===//

#include "mir/MIRGraph.h"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

using namespace jitvs;

void MBasicBlock::addPhi(MInstr *Phi) {
  assert(Phi->isPhi() && "addPhi on non-phi");
  Phi->Block = this;
  Phis.push_back(Phi);
}

void MBasicBlock::removePhi(MInstr *Phi) {
  auto It = std::find(Phis.begin(), Phis.end(), Phi);
  assert(It != Phis.end() && "removing phi not in block");
  Phis.erase(It);
  Phi->clearOperands();
  Phi->Dead = true;
}

void MBasicBlock::append(MInstr *I) {
  assert(!I->isPhi() && "phis go through addPhi");
  I->Block = this;
  Instrs.push_back(I);
}

void MBasicBlock::insertBefore(MInstr *Before, MInstr *I) {
  auto It = std::find(Instrs.begin(), Instrs.end(), Before);
  assert(It != Instrs.end() && "anchor not in block");
  I->Block = this;
  Instrs.insert(It, I);
}

void MBasicBlock::remove(MInstr *I) {
  auto It = std::find(Instrs.begin(), Instrs.end(), I);
  assert(It != Instrs.end() && "removing instruction not in block");
  Instrs.erase(It);
  I->clearOperands();
  I->dropResumePoint();
  I->Dead = true;
}

void MBasicBlock::removePredecessor(MBasicBlock *Pred) {
  size_t Idx = indexOfPredecessor(Pred);
  Preds.erase(Preds.begin() + Idx);
  for (MInstr *Phi : Phis) {
    assert(Phi->numOperands() == Preds.size() + 1 &&
           "phi arity out of sync with predecessors");
    // Drop the operand at Idx, preserving the order of the others so phi
    // operands stay aligned with the (order-preserving) Preds erase.
    for (size_t J = Idx + 1, E = Phi->numOperands(); J != E; ++J)
      Phi->setOperand(J - 1, Phi->operand(J));
    Phi->setOperand(Phi->numOperands() - 1, nullptr);
    Phi->Operands.pop_back();
  }
}

void MBasicBlock::transferTailTo(MBasicBlock *Dest, size_t FromIdx) {
  assert(FromIdx <= Instrs.size() && "bad split index");
  for (size_t I = FromIdx, E = Instrs.size(); I != E; ++I) {
    Instrs[I]->Block = Dest;
    Dest->Instrs.push_back(Instrs[I]);
  }
  Instrs.resize(FromIdx);
}

void MBasicBlock::replacePredecessor(MBasicBlock *OldPred,
                                     MBasicBlock *NewPred) {
  size_t Idx = indexOfPredecessor(OldPred);
  Preds[Idx] = NewPred;
}

size_t MBasicBlock::indexOfPredecessor(const MBasicBlock *Pred) const {
  for (size_t I = 0, E = Preds.size(); I != E; ++I)
    if (Preds[I] == Pred)
      return I;
  JITVS_UNREACHABLE("predecessor not found");
}

MBasicBlock *MIRGraph::createBlock() {
  Blocks.emplace_back(new MBasicBlock(NextBlockId++));
  ++NumLiveBlocks;
  return Blocks.back().get();
}

MInstr *MIRGraph::create(MirOp Op, MIRType Type) {
  Instrs.emplace_back(new MInstr(Op));
  MInstr *I = Instrs.back().get();
  I->Id = NextId++;
  I->Type = Type;
  return I;
}

MInstr *MIRGraph::createConstant(const Value &V) {
  MInstr *I = create(MirOp::Constant, mirTypeOfValue(V));
  I->ConstVal = V;
  return I;
}

MResumePoint *MIRGraph::createResumePoint(uint32_t PC,
                                          uint32_t NumFrameSlots) {
  ResumePoints.emplace_back(new MResumePoint(PC, NumFrameSlots));
  return ResumePoints.back().get();
}

void MIRGraph::removeBlock(MBasicBlock *B) {
  assert(!B->Dead && "removing dead block");
  // Unlink from successors' predecessor lists.
  if (MInstr *T = B->terminator())
    for (size_t I = 0, E = T->numSuccessors(); I != E; ++I)
      T->successor(I)->removePredecessor(B);
  // Drop operand uses so defs in other blocks lose these references.
  for (MInstr *Phi : B->Phis) {
    Phi->clearOperands();
    Phi->Dead = true;
  }
  for (MInstr *I : B->Instrs) {
    I->dropResumePoint();
    I->clearOperands();
    I->Dead = true;
  }
  if (B->EntryRP)
    B->EntryRP->release();
  B->Phis.clear();
  B->Instrs.clear();
  B->Dead = true;
  --NumLiveBlocks;
  if (Osr == B)
    Osr = nullptr;
}

std::vector<MBasicBlock *> MIRGraph::liveBlocks() const {
  std::vector<MBasicBlock *> Out;
  for (const auto &B : Blocks)
    if (!B->Dead)
      Out.push_back(B.get());
  return Out;
}

std::vector<MBasicBlock *> MIRGraph::reversePostOrder() const {
  std::unordered_set<const MBasicBlock *> Visited;

  // Iterative DFS with explicit stack. Each root's RPO segment is placed
  // in order, entry first, so the entry block always leads the layout.
  struct Item {
    MBasicBlock *Block;
    size_t NextSucc;
  };
  std::vector<MBasicBlock *> Out;
  auto DFS = [&](MBasicBlock *Root) {
    if (!Root || Root->isDead() || Visited.count(Root))
      return;
    std::vector<MBasicBlock *> Post;
    std::vector<Item> Stack;
    Visited.insert(Root);
    Stack.push_back({Root, 0});
    while (!Stack.empty()) {
      Item &Top = Stack.back();
      if (Top.NextSucc < Top.Block->numSuccessors()) {
        MBasicBlock *Succ = Top.Block->successor(Top.NextSucc++);
        if (!Visited.count(Succ)) {
          Visited.insert(Succ);
          Stack.push_back({Succ, 0});
        }
        continue;
      }
      Post.push_back(Top.Block);
      Stack.pop_back();
    }
    Out.insert(Out.end(), Post.rbegin(), Post.rend());
  };
  DFS(Entry);
  DFS(Osr);
  return Out;
}

size_t MIRGraph::numInstructions() const {
  size_t N = 0;
  for (const auto &B : Blocks)
    if (!B->Dead)
      N += B->phis().size() + B->instructions().size();
  return N;
}

void MIRGraph::forEachConstant(
    const std::function<void(Value &)> &Fn) const {
  for (const auto &I : Instrs)
    if (I->op() == MirOp::Constant)
      Fn(I->ConstVal);
}

std::string MIRGraph::toString() const {
  std::string Out;
  char Buf[128];
  for (MBasicBlock *B : reversePostOrder()) {
    const char *Marker = "";
    if (B == Entry)
      Marker = "  ; function entry point";
    else if (B == Osr)
      Marker = "  ; on stack replacement";
    else if (B->isLoopHeader())
      Marker = "  ; loop header";
    std::snprintf(Buf, sizeof(Buf), "B%u:%s\n", B->id(), Marker);
    Out += Buf;
    if (B->numPredecessors()) {
      Out += "  ; preds:";
      for (MBasicBlock *P : B->predecessors()) {
        std::snprintf(Buf, sizeof(Buf), " B%u", P->id());
        Out += Buf;
      }
      Out += '\n';
    }
    for (const MInstr *Phi : B->phis()) {
      Out += "  ";
      Out += Phi->toString();
      Out += '\n';
    }
    for (const MInstr *I : B->instructions()) {
      Out += "  ";
      Out += I->toString();
      Out += '\n';
    }
  }
  return Out;
}
