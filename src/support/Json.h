//===- support/Json.h - Minimal JSON writing and parsing --------*- C++ -*-===//
///
/// \file
/// Just enough JSON for the observability layer: an escaping writer
/// shared by the exporters, and a small recursive-descent DOM parser
/// used by the tests (BENCH_*.json schema validation, metrics snapshot
/// round-trips) and the profiling CLI. Not a general-purpose library:
/// no comments, no trailing commas, numbers parsed as double.
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_SUPPORT_JSON_H
#define JITVS_SUPPORT_JSON_H

#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace jitvs::json {

/// Writes \p S as a JSON string literal (quotes, escapes applied).
void writeString(std::ostream &OS, const std::string &S);

/// A parsed JSON document node.
struct Value {
  enum Kind { Null, Bool, Number, String, Array, Object } K = Null;
  bool B = false;
  double Num = 0.0;
  std::string Str;
  std::vector<Value> Arr;
  std::map<std::string, Value> Obj;

  bool isNull() const { return K == Null; }
  bool isBool() const { return K == Bool; }
  bool isNumber() const { return K == Number; }
  bool isString() const { return K == String; }
  bool isArray() const { return K == Array; }
  bool isObject() const { return K == Object; }

  /// Object member access; \returns nullptr when absent or not an object.
  const Value *get(const std::string &Key) const {
    if (K != Object)
      return nullptr;
    auto It = Obj.find(Key);
    return It == Obj.end() ? nullptr : &It->second;
  }
};

/// Parses \p Text. On failure returns nullptr and, when \p ErrorOut is
/// non-null, stores a one-line diagnostic with the byte offset.
std::unique_ptr<Value> parse(const std::string &Text,
                             std::string *ErrorOut = nullptr);

/// Convenience: reads and parses a whole file (nullptr on I/O failure).
std::unique_ptr<Value> parseFile(const std::string &Path,
                                 std::string *ErrorOut = nullptr);

} // namespace jitvs::json

#endif // JITVS_SUPPORT_JSON_H
