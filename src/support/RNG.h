//===- support/RNG.h - Deterministic pseudo-random numbers ------*- C++ -*-===//
///
/// \file
/// A splitmix64-based deterministic RNG. Used for Math.random() inside the
/// VM and for the synthetic web-session workload generator, so every
/// experiment in the repository is reproducible bit-for-bit.
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_SUPPORT_RNG_H
#define JITVS_SUPPORT_RNG_H

#include <cstdint>

namespace jitvs {

/// Deterministic 64-bit PRNG (splitmix64). Not cryptographic.
class RNG {
public:
  explicit RNG(uint64_t Seed = 0x9e3779b97f4a7c15ull) : State(Seed) {}

  /// \returns the next 64-bit pseudo-random value.
  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ull);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

  /// \returns a double uniformly distributed in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// \returns an integer uniformly distributed in [0, Bound).
  uint64_t nextBelow(uint64_t Bound) {
    return Bound == 0 ? 0 : next() % Bound;
  }

private:
  uint64_t State;
};

} // namespace jitvs

#endif // JITVS_SUPPORT_RNG_H
