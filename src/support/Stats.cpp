//===- support/Stats.cpp - Aggregation helpers ----------------------------===//

#include "support/Stats.h"

#include <algorithm>

using namespace jitvs;

double jitvs::median(std::vector<double> Xs) {
  if (Xs.empty())
    return 0.0;
  std::sort(Xs.begin(), Xs.end());
  size_t N = Xs.size();
  if (N % 2 == 1)
    return Xs[N / 2];
  return (Xs[N / 2 - 1] + Xs[N / 2]) / 2.0;
}
