//===- support/Timer.h - Monotonic wall-clock timing ------------*- C++ -*-===//
///
/// \file
/// A tiny monotonic stopwatch used by the benchmark harnesses and by the
/// JIT engine's compile-time accounting.
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_SUPPORT_TIMER_H
#define JITVS_SUPPORT_TIMER_H

#include <chrono>

namespace jitvs {

/// Monotonic stopwatch measuring elapsed seconds as a double.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { Start = Clock::now(); }

  /// \returns seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace jitvs

#endif // JITVS_SUPPORT_TIMER_H
