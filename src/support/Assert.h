//===- support/Assert.h - Fatal errors and unreachable markers -*- C++ -*-===//
///
/// \file
/// Lightweight assertion helpers used across the library: a fatal-error
/// reporter that prints a message and aborts, and an unreachable marker
/// used in fully-covered switches over enumerations.
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_SUPPORT_ASSERT_H
#define JITVS_SUPPORT_ASSERT_H

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace jitvs {

/// Prints \p Msg to stderr and aborts. Used for invariant violations that
/// must be diagnosed even in builds without assertions.
[[noreturn]] inline void reportFatal(const char *Msg) {
  std::fprintf(stderr, "jitvs fatal error: %s\n", Msg);
  std::abort();
}

} // namespace jitvs

/// Marks a point in the code that must never be reached.
#define JITVS_UNREACHABLE(msg)                                                 \
  do {                                                                         \
    ::jitvs::reportFatal("unreachable: " msg);                                 \
  } while (false)

#endif // JITVS_SUPPORT_ASSERT_H
