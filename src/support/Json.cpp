//===- support/Json.cpp - Minimal JSON writer and parser ------------------===//

#include "support/Json.h"

#include <cctype>
#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

using namespace jitvs;

void json::writeString(std::ostream &OS, const std::string &S) {
  OS << '"';
  for (char Ch : S) {
    unsigned char C = static_cast<unsigned char>(Ch);
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    case '\r':
      OS << "\\r";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        OS << Buf;
      } else {
        OS << static_cast<char>(C);
      }
    }
  }
  OS << '"';
}

namespace {

/// Recursive-descent parser over a string. Tracks the offset for
/// diagnostics; depth-limited so malformed deeply-nested input cannot
/// smash the C++ stack.
class Parser {
public:
  Parser(const std::string &Text, std::string *ErrorOut)
      : Text(Text), ErrorOut(ErrorOut) {}

  std::unique_ptr<json::Value> run() {
    auto V = std::make_unique<json::Value>();
    if (!parseValue(*V, 0))
      return nullptr;
    skipWs();
    if (Pos != Text.size()) {
      fail("trailing content after document");
      return nullptr;
    }
    return V;
  }

private:
  static constexpr int MaxDepth = 64;

  bool fail(const std::string &Msg) {
    if (ErrorOut && ErrorOut->empty())
      *ErrorOut = Msg + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() && std::isspace(
                                    static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool literal(const char *Word) {
    size_t N = std::strlen(Word);
    if (Text.compare(Pos, N, Word) != 0)
      return fail(std::string("expected '") + Word + "'");
    Pos += N;
    return true;
  }

  bool parseString(std::string &Out) {
    if (Pos >= Text.size() || Text[Pos] != '"')
      return fail("expected string");
    ++Pos;
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        break;
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'n':
        Out += '\n';
        break;
      case 't':
        Out += '\t';
        break;
      case 'r':
        Out += '\r';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I != 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return fail("bad \\u escape digit");
        }
        // Basic-plane only; encode as UTF-8.
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parseValue(json::Value &V, int Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    skipWs();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    if (C == '{') {
      ++Pos;
      V.K = json::Value::Object;
      skipWs();
      if (Pos < Text.size() && Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      while (true) {
        skipWs();
        std::string Key;
        if (!parseString(Key))
          return false;
        skipWs();
        if (Pos >= Text.size() || Text[Pos] != ':')
          return fail("expected ':'");
        ++Pos;
        if (!parseValue(V.Obj[Key], Depth + 1))
          return false;
        skipWs();
        if (Pos < Text.size() && Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Pos < Text.size() && Text[Pos] == '}') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    if (C == '[') {
      ++Pos;
      V.K = json::Value::Array;
      skipWs();
      if (Pos < Text.size() && Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      while (true) {
        V.Arr.emplace_back();
        if (!parseValue(V.Arr.back(), Depth + 1))
          return false;
        skipWs();
        if (Pos < Text.size() && Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Pos < Text.size() && Text[Pos] == ']') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (C == '"') {
      V.K = json::Value::String;
      return parseString(V.Str);
    }
    if (C == 't') {
      V.K = json::Value::Bool;
      V.B = true;
      return literal("true");
    }
    if (C == 'f') {
      V.K = json::Value::Bool;
      V.B = false;
      return literal("false");
    }
    if (C == 'n') {
      V.K = json::Value::Null;
      return literal("null");
    }
    // Number.
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return fail("expected value");
    char *End = nullptr;
    std::string Num = Text.substr(Start, Pos - Start);
    V.K = json::Value::Number;
    V.Num = std::strtod(Num.c_str(), &End);
    if (!End || *End != '\0')
      return fail("malformed number");
    return true;
  }

  const std::string &Text;
  std::string *ErrorOut;
  size_t Pos = 0;
};

} // namespace

std::unique_ptr<json::Value> json::parse(const std::string &Text,
                                         std::string *ErrorOut) {
  return Parser(Text, ErrorOut).run();
}

std::unique_ptr<json::Value> json::parseFile(const std::string &Path,
                                             std::string *ErrorOut) {
  std::ifstream In(Path);
  if (!In) {
    if (ErrorOut)
      *ErrorOut = "cannot open " + Path;
    return nullptr;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  return parse(SS.str(), ErrorOut);
}
