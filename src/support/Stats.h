//===- support/Stats.h - Arithmetic and geometric aggregates ----*- C++ -*-===//
///
/// \file
/// Aggregation helpers used when reproducing the paper's tables: Figure 9
/// reports both the arithmetic and the geometric mean of per-benchmark
/// speedup percentages.
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_SUPPORT_STATS_H
#define JITVS_SUPPORT_STATS_H

#include <cmath>
#include <vector>

namespace jitvs {

/// \returns the arithmetic mean of \p Xs, or 0 for an empty input.
inline double arithmeticMean(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 0.0;
  double Sum = 0.0;
  for (double X : Xs)
    Sum += X;
  return Sum / static_cast<double>(Xs.size());
}

/// Geometric mean of speedup *percentages*: each entry is interpreted as a
/// ratio (1 + X/100); the result is converted back to a percentage. This is
/// how JIT papers (including ours) aggregate signed speedups, since a plain
/// geometric mean is undefined for negative entries.
inline double geometricMeanPercent(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double X : Xs)
    LogSum += std::log(1.0 + X / 100.0);
  return (std::exp(LogSum / static_cast<double>(Xs.size())) - 1.0) * 100.0;
}

/// \returns the median of \p Xs (input copied; 0 for an empty input).
double median(std::vector<double> Xs);

} // namespace jitvs

#endif // JITVS_SUPPORT_STATS_H
