//===- lir/Codegen.h - MIR -> native code generation ------------*- C++ -*-===//
///
/// \file
/// The backend: lowers MIR to virtual-register LIR, runs liveness
/// analysis and linear-scan register allocation (16 physical registers,
/// spill slots with explicit load/store code), resolves phis into
/// parallel moves on split edges, and emits the final NativeCode with
/// bailout snapshots.
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_LIR_CODEGEN_H
#define JITVS_LIR_CODEGEN_H

#include "native/NativeCode.h"

#include <memory>

namespace jitvs {

class MIRGraph;

/// Statistics from one code generation run.
struct CodegenStats {
  uint32_t NumVirtualRegs = 0;
  uint32_t NumSpills = 0;
  uint32_t NumInstructions = 0;
};

/// Generates executable native code for \p Graph.
std::unique_ptr<NativeCode> generateCode(MIRGraph &Graph,
                                         CodegenStats *Stats = nullptr);

} // namespace jitvs

#endif // JITVS_LIR_CODEGEN_H
