//===- lir/Codegen.cpp - Lowering, regalloc, emission ----------------------===//

#include "lir/Codegen.h"

#include "mir/MIRGraph.h"
#include "support/Assert.h"
#include "vm/Bytecode.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

using namespace jitvs;

namespace {

/// Virtual-register form of a native instruction.
struct LIns {
  NOp Op = NOp::Nop;
  uint32_t A = 0, B = 0, C = 0;
  int32_t Imm = 0;
};

constexpr uint32_t NoReg = ~0u;

/// Whether a value of MIR type \p T can be a GC-managed pointer. Stores
/// whose value operand is provably primitive skip the generational
/// write barrier (the flag rides in the op's spare immediate field).
bool mirTypeMayBeGC(MIRType T) {
  switch (T) {
  case MIRType::Int32:
  case MIRType::Double:
  case MIRType::Boolean:
  case MIRType::Undefined:
  case MIRType::Null:
  case MIRType::None:
    return false;
  case MIRType::Any:
  case MIRType::String:
  case MIRType::Object:
  case MIRType::Array:
  case MIRType::Function:
    return true;
  }
  return true;
}

/// Which fields of an op are register defs/uses (others are immediates).
struct OpInfo {
  bool ADef = false, AUse = false, BUse = false, CUse = false;
  bool HasSnapshot = false;
};

OpInfo opInfo(NOp O) {
  OpInfo I;
  switch (O) {
  case NOp::Nop:
  case NOp::CheckDepth:
  case NOp::Jmp:
    break;
  case NOp::Mov:
  case NOp::TruncToInt32:
  case NOp::ToDouble:
  case NOp::Not:
  case NOp::TypeOfV:
  case NOp::ArrayLen:
  case NOp::StrLen:
  case NOp::FromCharCode:
  case NOp::GenUn:
  case NOp::GenGetProp:
  case NOp::NewArrLen:
  case NOp::CallV:
  case NOp::CallM:
  case NOp::CallT:
  case NOp::LoadSlot:
  case NOp::NewCall:
  case NOp::NegD:
  case NOp::BitNot:
    I.ADef = I.BUse = true;
    break;
  case NOp::LoadConst:
  case NOp::LoadSpill:
  case NOp::LoadParam:
  case NOp::LoadThis:
  case NOp::LoadOsr:
  case NOp::GetGlobal:
  case NOp::GetEnv:
  case NOp::NewArrElems:
  case NOp::NewObj:
  case NOp::MakeClos:
    I.ADef = true;
    break;
  case NOp::StoreSpill:
  case NOp::SetGlobal:
  case NOp::SetEnv:
  case NOp::PushArg:
  case NOp::JTrue:
  case NOp::JFalse:
  case NOp::Ret:
    I.AUse = true;
    break;
  case NOp::AddI:
  case NOp::SubI:
  case NOp::MulI:
  case NOp::ModI:
    I.ADef = I.BUse = I.CUse = true;
    I.HasSnapshot = true;
    break;
  case NOp::NegI:
    I.ADef = I.BUse = true;
    I.HasSnapshot = true;
    break;
  case NOp::AddINoOvf:
  case NOp::SubINoOvf:
  case NOp::MulINoOvf:
  case NOp::AddD:
  case NOp::SubD:
  case NOp::MulD:
  case NOp::DivD:
  case NOp::ModD:
  case NOp::BitAnd:
  case NOp::BitOr:
  case NOp::BitXor:
  case NOp::Shl:
  case NOp::Shr:
  case NOp::UShr:
  case NOp::CmpI:
  case NOp::CmpD:
  case NOp::CmpS:
  case NOp::CmpGeneric:
  case NOp::Concat:
  case NOp::LoadElem:
  case NOp::CharCodeAt:
  case NOp::GenBin:
  case NOp::GenGetElem:
    I.ADef = I.BUse = I.CUse = true;
    break;
  case NOp::MathFn:
    I.ADef = I.BUse = true;
    // CUse handled specially (0xFFFF sentinel for unary intrinsics).
    break;
  case NOp::GuardTag:
    I.AUse = true;
    I.HasSnapshot = true;
    break;
  case NOp::GuardNumber:
  case NOp::GuardShape:
    I.ADef = I.BUse = true;
    I.HasSnapshot = true;
    break;
  case NOp::BoundsCheck:
    I.AUse = I.BUse = true;
    I.HasSnapshot = true;
    break;
  case NOp::GuardArrLen:
    I.AUse = true;
    I.HasSnapshot = true;
    break;
  case NOp::StoreElem:
  case NOp::GenSetElem:
    I.AUse = I.BUse = I.CUse = true;
    break;
  case NOp::InitProp:
  case NOp::GenSetProp:
  case NOp::StoreSlot:
  case NOp::AddSlot:
    I.AUse = I.BUse = true;
    break;
  case NOp::BrCmpII:
  case NOp::BrCmpDD:
  case NOp::AddIImm:
  case NOp::SubIImm:
  case NOp::MulIImm:
  case NOp::AddINoOvfImm:
  case NOp::SubINoOvfImm:
  case NOp::MulINoOvfImm:
  case NOp::AddDImm:
  case NOp::SubDImm:
  case NOp::MulDImm:
  case NOp::DivDImm:
  case NOp::GuardTagMov:
  case NOp::FuseData:
    JITVS_UNREACHABLE("fused macro-ops are created post-regalloc, not in LIR");
  }
  return I;
}

bool mathFnHasSecondArg(const LIns &L) {
  return L.Op == NOp::MathFn && L.C != 0xFFFF;
}

/// Splits edges P->S where P has several successors and S has phis, so
/// phi moves can be placed in a dedicated block.
void splitCriticalEdges(MIRGraph &Graph) {
  std::vector<MBasicBlock *> Blocks = Graph.liveBlocks();
  for (MBasicBlock *P : Blocks) {
    MInstr *T = P->terminator();
    if (!T || T->numSuccessors() < 2)
      continue;
    for (size_t S = 0, E = T->numSuccessors(); S != E; ++S) {
      MBasicBlock *Succ = T->successor(S);
      if (Succ->phis().empty() && Succ->numPredecessors() < 2)
        continue;
      if (Succ->phis().empty())
        continue;
      MBasicBlock *Mid = Graph.createBlock();
      MInstr *J = Graph.create(MirOp::Goto, MIRType::None);
      J->setSuccessor(0, Succ);
      Mid->append(J);
      T->setSuccessor(S, Mid);
      Mid->addPredecessor(P);
      Succ->replacePredecessor(P, Mid);
    }
  }
}

class CodeGenerator {
public:
  CodeGenerator(MIRGraph &Graph) : Graph(Graph) {}

  std::unique_ptr<NativeCode> run(CodegenStats *Stats);

private:
  // --- Lowering ---
  uint32_t newVReg() { return NextVReg++; }
  uint32_t vregOf(MInstr *Def);
  /// Operand use: materializes constants (per block).
  uint32_t use(MInstr *Def);
  /// Materializes both operands of a binary op in fusion-friendly order:
  /// a not-yet-materialized constant is evaluated last, so its LoadConst
  /// lands immediately before the consumer, and for \p Commutative ops a
  /// constant lhs is swapped into the rhs slot — the LoadConst+arith
  /// shape the post-regalloc macro-op fusion pass pairs up.
  std::pair<uint32_t, uint32_t> useBinOperands(MInstr *I, bool Commutative);
  void emit(NOp Op, uint32_t A = 0, uint32_t B = 0, uint32_t C = 0,
            int32_t Imm = 0) {
    LIns L;
    L.Op = Op;
    L.A = A;
    L.B = B;
    L.C = C;
    L.Imm = Imm;
    Lir.push_back(L);
  }
  uint32_t snapshotFor(MResumePoint *RP);
  void lowerBlock(MBasicBlock *B, MBasicBlock *Next);
  void lowerInstr(MInstr *I);
  void lowerPhiMoves(MBasicBlock *B, MBasicBlock *Succ);
  int32_t blockMark(MBasicBlock *B) {
    return static_cast<int32_t>(B->id());
  }

  // --- Liveness & allocation ---
  void computeLiveness();
  void allocateRegisters();

  // --- Final emission ---
  std::unique_ptr<NativeCode> emitFinal(CodegenStats *Stats);

  MIRGraph &Graph;
  std::vector<MBasicBlock *> Order;
  std::vector<LIns> Lir;
  /// LIR index where each block's code begins (by block id).
  std::unordered_map<uint32_t, uint32_t> BlockStartL;
  /// Per-block ranges in LIR indices (by order position).
  std::vector<std::pair<uint32_t, uint32_t>> BlockRangeL;

  uint32_t NextVReg = 0;
  std::unordered_map<MInstr *, uint32_t> VRegs;
  std::unordered_map<MInstr *, uint32_t> BlockConstCache; // Keyed per block.
  MBasicBlock *CurBlock = nullptr;

  std::unique_ptr<NativeCode> Out;
  std::unordered_map<MResumePoint *, uint32_t> SnapshotIds;
  /// Snapshot register entries still holding vregs (rewritten after RA).
  // (Entries are stored in Out->Snapshots with vreg indices.)

  // Liveness.
  struct Interval {
    uint32_t VReg = 0;
    uint32_t Start = ~0u;
    uint32_t End = 0;
    int Reg = -1;
    int Slot = -1;
  };
  std::vector<Interval> Intervals;
  std::vector<int> RegOf;  // vreg -> phys reg or -1
  std::vector<int> SlotOf; // vreg -> spill slot or -1
  uint32_t NumSpills = 0;
};

uint32_t CodeGenerator::vregOf(MInstr *Def) {
  auto It = VRegs.find(Def);
  if (It != VRegs.end())
    return It->second;
  uint32_t V = newVReg();
  VRegs[Def] = V;
  return V;
}

uint32_t CodeGenerator::use(MInstr *Def) {
  if (Def->op() == MirOp::Constant) {
    auto It = BlockConstCache.find(Def);
    if (It != BlockConstCache.end())
      return It->second;
    uint32_t V = newVReg();
    emit(NOp::LoadConst, V, 0, 0, Out->addConstant(Def->constValue()));
    BlockConstCache[Def] = V;
    return V;
  }
  assert(VRegs.count(Def) && "use before definition in lowering order");
  return VRegs[Def];
}

std::pair<uint32_t, uint32_t> CodeGenerator::useBinOperands(MInstr *I,
                                                           bool Commutative) {
  MInstr *L = I->operand(0), *R = I->operand(1);
  auto FreshConst = [this](MInstr *D) {
    return D->op() == MirOp::Constant && !BlockConstCache.count(D);
  };
  if (Commutative && FreshConst(L) && !FreshConst(R)) {
    uint32_t RV = use(R);
    return {RV, use(L)}; // Constant materialized last, in the rhs slot.
  }
  uint32_t LV = use(L);
  return {LV, use(R)};
}

uint32_t CodeGenerator::snapshotFor(MResumePoint *RP) {
  auto It = SnapshotIds.find(RP);
  if (It != SnapshotIds.end())
    return It->second;
  Snapshot S;
  S.PC = RP->pc();
  S.NumFrameSlots = RP->numFrameSlots();
  for (size_t I = 0, E = RP->numEntries(); I != E; ++I) {
    MInstr *Entry = RP->entry(I);
    SnapshotEntry SE;
    if (Entry->op() == MirOp::Constant) {
      SE.IsConst = true;
      SE.Index = Out->addConstant(Entry->constValue());
    } else {
      SE.IsConst = false;
      SE.Index = use(Entry); // vreg; rewritten after allocation.
    }
    S.Entries.push_back(SE);
  }
  uint32_t Id = static_cast<uint32_t>(Out->Snapshots.size());
  Out->Snapshots.push_back(std::move(S));
  SnapshotIds[RP] = Id;
  return Id;
}

void CodeGenerator::lowerPhiMoves(MBasicBlock *B, MBasicBlock *Succ) {
  if (Succ->phis().empty())
    return;
  size_t PredIdx = Succ->indexOfPredecessor(B);

  // Parallel move: (dstVReg <- src) resolved with cycle breaking.
  struct Move {
    uint32_t Dst;
    MInstr *Src;
  };
  std::vector<Move> Moves;
  for (MInstr *Phi : Succ->phis())
    Moves.push_back({vregOf(Phi), Phi->operand(PredIdx)});

  // Resolve. Sources that are constants never participate in cycles.
  std::unordered_map<uint32_t, uint32_t> Renamed; // old vreg -> temp.
  while (!Moves.empty()) {
    bool Progress = false;
    for (size_t I = 0; I < Moves.size(); ++I) {
      uint32_t Dst = Moves[I].Dst;
      // Is Dst a pending source?
      bool Blocked = false;
      for (size_t J = 0; J < Moves.size(); ++J) {
        if (J == I || Moves[J].Src->op() == MirOp::Constant)
          continue;
        uint32_t SrcV = VRegs.count(Moves[J].Src)
                            ? VRegs[Moves[J].Src]
                            : NoReg;
        auto RIt = Renamed.find(SrcV);
        if (RIt != Renamed.end())
          SrcV = RIt->second;
        if (SrcV == Dst) {
          Blocked = true;
          break;
        }
      }
      if (Blocked)
        continue;
      MInstr *Src = Moves[I].Src;
      if (Src->op() == MirOp::Constant) {
        emit(NOp::LoadConst, Dst, 0, 0, Out->addConstant(Src->constValue()));
      } else {
        uint32_t SrcV = use(Src);
        auto RIt = Renamed.find(SrcV);
        if (RIt != Renamed.end())
          SrcV = RIt->second;
        if (SrcV != Dst)
          emit(NOp::Mov, Dst, SrcV);
      }
      Moves[I] = Moves.back();
      Moves.pop_back();
      Progress = true;
      break;
    }
    if (Progress)
      continue;
    // Cycle: save one pending source into a temp.
    MInstr *Src = Moves[0].Src;
    uint32_t SrcV = use(Src);
    auto RIt = Renamed.find(SrcV);
    if (RIt != Renamed.end())
      SrcV = RIt->second;
    uint32_t Temp = newVReg();
    emit(NOp::Mov, Temp, SrcV);
    Renamed[SrcV] = Temp;
  }
}

void CodeGenerator::lowerInstr(MInstr *I) {
  switch (I->op()) {
  case MirOp::Start:
  case MirOp::Constant:
  case MirOp::Phi:
    return;

  case MirOp::Parameter:
    emit(NOp::LoadParam, vregOf(I), 0, 0, static_cast<int32_t>(I->AuxA));
    return;
  case MirOp::OsrValue:
    emit(NOp::LoadOsr, vregOf(I), 0, 0, static_cast<int32_t>(I->AuxA));
    return;
  case MirOp::GetThis:
    emit(NOp::LoadThis, vregOf(I));
    return;

  case MirOp::Goto:
  case MirOp::Test:
  case MirOp::Return:
    JITVS_UNREACHABLE("terminators lowered by lowerBlock");

  case MirOp::Unbox: {
    MIRType Want = static_cast<MIRType>(I->AuxA);
    uint32_t Snap = snapshotFor(I->resumePoint());
    uint32_t Src = use(I->operand(0));
    if (Want == MIRType::Double) {
      emit(NOp::GuardNumber, vregOf(I), Src, 0, Snap);
      return;
    }
    ValueTag Tag;
    switch (Want) {
    case MIRType::Int32:
      Tag = ValueTag::Int32;
      break;
    case MIRType::Boolean:
      Tag = ValueTag::Boolean;
      break;
    case MIRType::String:
      Tag = ValueTag::String;
      break;
    case MIRType::Array:
      Tag = ValueTag::Array;
      break;
    case MIRType::Object:
      Tag = ValueTag::Object;
      break;
    case MIRType::Function:
      Tag = ValueTag::Function;
      break;
    default:
      JITVS_UNREACHABLE("bad unbox target");
    }
    emit(NOp::GuardTag, Src, static_cast<uint32_t>(Tag), 0, Snap);
    emit(NOp::Mov, vregOf(I), Src);
    return;
  }
  case MirOp::TypeBarrier: {
    uint32_t Snap = snapshotFor(I->resumePoint());
    uint32_t Src = use(I->operand(0));
    emit(NOp::GuardTag, Src, I->AuxA, 0, Snap);
    emit(NOp::Mov, vregOf(I), Src);
    return;
  }
  case MirOp::ToDouble:
    emit(NOp::ToDouble, vregOf(I), use(I->operand(0)));
    return;
  case MirOp::TruncateToInt32:
    emit(NOp::TruncToInt32, vregOf(I), use(I->operand(0)));
    return;

#define LOWER_BIN_SNAP(MOP, NOPC, NOPC_NC, COMM)                               \
  case MirOp::MOP: {                                                           \
    auto [LV, RV] = useBinOperands(I, COMM);                                   \
    if (I->AuxB == 1) { /* Overflow check eliminated. */                       \
      emit(NOp::NOPC_NC, vregOf(I), LV, RV);                                   \
      return;                                                                  \
    }                                                                          \
    uint32_t Snap = snapshotFor(I->resumePoint());                             \
    emit(NOp::NOPC, vregOf(I), LV, RV, Snap);                                  \
    return;                                                                    \
  }
    LOWER_BIN_SNAP(AddI, AddI, AddINoOvf, true)
    LOWER_BIN_SNAP(SubI, SubI, SubINoOvf, false)
    LOWER_BIN_SNAP(MulI, MulI, MulINoOvf, true)
    LOWER_BIN_SNAP(ModI, ModI, ModI, false)
#undef LOWER_BIN_SNAP
  case MirOp::NegI:
    emit(NOp::NegI, vregOf(I), use(I->operand(0)), 0,
         snapshotFor(I->resumePoint()));
    return;

#define LOWER_BIN(MOP, NOPC, COMM)                                             \
  case MirOp::MOP: {                                                           \
    auto [LV, RV] = useBinOperands(I, COMM);                                   \
    emit(NOp::NOPC, vregOf(I), LV, RV);                                        \
    return;                                                                    \
  }
    LOWER_BIN(AddD, AddD, true)
    LOWER_BIN(SubD, SubD, false)
    LOWER_BIN(MulD, MulD, true)
    LOWER_BIN(DivD, DivD, false)
    LOWER_BIN(ModD, ModD, false)
    LOWER_BIN(BitAnd, BitAnd, true)
    LOWER_BIN(BitOr, BitOr, true)
    LOWER_BIN(BitXor, BitXor, true)
    LOWER_BIN(Shl, Shl, false)
    LOWER_BIN(Shr, Shr, false)
    LOWER_BIN(UShr, UShr, false)
    LOWER_BIN(Concat, Concat, false)
    LOWER_BIN(LoadElement, LoadElem, false)
    LOWER_BIN(CharCodeAt, CharCodeAt, false)
    LOWER_BIN(GenericGetElem, GenGetElem, false)
#undef LOWER_BIN
  case MirOp::NegD:
    emit(NOp::NegD, vregOf(I), use(I->operand(0)));
    return;
  case MirOp::BitNot:
    emit(NOp::BitNot, vregOf(I), use(I->operand(0)));
    return;

  case MirOp::CompareI:
  case MirOp::CompareD:
  case MirOp::CompareS:
  case MirOp::CompareGeneric: {
    NOp N = I->op() == MirOp::CompareI   ? NOp::CmpI
            : I->op() == MirOp::CompareD ? NOp::CmpD
            : I->op() == MirOp::CompareS ? NOp::CmpS
                                         : NOp::CmpGeneric;
    emit(N, vregOf(I), use(I->operand(0)), use(I->operand(1)),
         static_cast<int32_t>(I->AuxA));
    return;
  }
  case MirOp::Not:
    emit(NOp::Not, vregOf(I), use(I->operand(0)));
    return;
  case MirOp::TypeOf:
    emit(NOp::TypeOfV, vregOf(I), use(I->operand(0)));
    return;

  case MirOp::CheckOverRecursed:
    emit(NOp::CheckDepth);
    return;

  case MirOp::BoundsCheck:
    emit(NOp::BoundsCheck, use(I->operand(0)), use(I->operand(1)), 0,
         snapshotFor(I->resumePoint()));
    return;
  case MirOp::GuardArrayLength:
    emit(NOp::GuardArrLen, use(I->operand(0)), 0,
         Out->addConstant(Value::int32(static_cast<int32_t>(I->AuxA))),
         snapshotFor(I->resumePoint()));
    return;

  case MirOp::ArrayLength:
    emit(NOp::ArrayLen, vregOf(I), use(I->operand(0)));
    return;
  case MirOp::StringLength:
    emit(NOp::StrLen, vregOf(I), use(I->operand(0)));
    return;
  case MirOp::StoreElement:
    emit(NOp::StoreElem, use(I->operand(0)), use(I->operand(1)),
         use(I->operand(2)),
         mirTypeMayBeGC(I->operand(2)->type()) ? 1 : 0);
    return;
  case MirOp::FromCharCode:
    emit(NOp::FromCharCode, vregOf(I), use(I->operand(0)));
    return;

  case MirOp::GenericBinop:
    emit(NOp::GenBin, vregOf(I), use(I->operand(0)), use(I->operand(1)),
         static_cast<int32_t>(I->AuxA));
    return;
  case MirOp::GenericUnop:
    emit(NOp::GenUn, vregOf(I), use(I->operand(0)),
         0, static_cast<int32_t>(I->AuxA));
    return;
  case MirOp::GenericSetElem: {
    uint32_t Val = use(I->operand(2));
    emit(NOp::GenSetElem, use(I->operand(0)), use(I->operand(1)), Val);
    emit(NOp::Mov, vregOf(I), Val);
    return;
  }
  case MirOp::GenericGetProp:
    emit(NOp::GenGetProp, vregOf(I), use(I->operand(0)), 0,
         static_cast<int32_t>(I->AuxA));
    return;
  case MirOp::GenericSetProp: {
    uint32_t Val = use(I->operand(1));
    emit(NOp::GenSetProp, use(I->operand(0)), Val, 0,
         static_cast<int32_t>(I->AuxA));
    emit(NOp::Mov, vregOf(I), Val);
    return;
  }

  case MirOp::GetGlobal:
    emit(NOp::GetGlobal, vregOf(I), 0, 0, static_cast<int32_t>(I->AuxA));
    return;
  case MirOp::SetGlobal:
    emit(NOp::SetGlobal, use(I->operand(0)), 0, 0,
         static_cast<int32_t>(I->AuxA));
    return;
  case MirOp::GetEnvSlot:
    emit(NOp::GetEnv, vregOf(I), I->AuxB, 0, static_cast<int32_t>(I->AuxA));
    return;
  case MirOp::SetEnvSlot:
    emit(NOp::SetEnv, use(I->operand(0)), I->AuxB,
         mirTypeMayBeGC(I->operand(0)->type()) ? 1u : 0u,
         static_cast<int32_t>(I->AuxA));
    return;

  case MirOp::NewArray: {
    for (size_t A = 0, E = I->numOperands(); A != E; ++A)
      emit(NOp::PushArg, use(I->operand(A)));
    emit(NOp::NewArrElems, vregOf(I), 0, 0,
         static_cast<int32_t>(I->numOperands()));
    return;
  }
  case MirOp::NewArrayLen:
    emit(NOp::NewArrLen, vregOf(I), use(I->operand(0)));
    return;
  case MirOp::NewObject:
    emit(NOp::NewObj, vregOf(I));
    return;
  case MirOp::InitProp:
    emit(NOp::InitProp, use(I->operand(0)), use(I->operand(1)),
         mirTypeMayBeGC(I->operand(1)->type()) ? 1u : 0u,
         static_cast<int32_t>(I->AuxA));
    return;
  case MirOp::MakeClosure:
    emit(NOp::MakeClos, vregOf(I), 0, 0, static_cast<int32_t>(I->AuxA));
    return;

  case MirOp::Call: {
    uint32_t Callee = use(I->operand(0));
    for (size_t A = 1, E = I->numOperands(); A != E; ++A)
      emit(NOp::PushArg, use(I->operand(A)));
    emit(NOp::CallV, vregOf(I), Callee, 0,
         static_cast<int32_t>(I->numOperands() - 1));
    return;
  }
  case MirOp::CallMethod: {
    uint32_t Recv = use(I->operand(0));
    for (size_t A = 1, E = I->numOperands(); A != E; ++A)
      emit(NOp::PushArg, use(I->operand(A)));
    emit(NOp::CallM, vregOf(I), Recv,
         static_cast<uint32_t>(I->numOperands() - 1),
         static_cast<int32_t>(I->AuxA));
    return;
  }
  case MirOp::New: {
    uint32_t Callee = use(I->operand(0));
    for (size_t A = 1, E = I->numOperands(); A != E; ++A)
      emit(NOp::PushArg, use(I->operand(A)));
    emit(NOp::NewCall, vregOf(I), Callee, 0,
         static_cast<int32_t>(I->numOperands() - 1));
    return;
  }
  case MirOp::MathFunction: {
    uint32_t A0 = use(I->operand(0));
    uint32_t A1 = I->numOperands() > 1 ? use(I->operand(1)) : 0xFFFFu;
    emit(NOp::MathFn, vregOf(I), A0, A1, static_cast<int32_t>(I->AuxA));
    return;
  }

  case MirOp::GuardShape: {
    // Copy the graph's shape set into the binary's pool as a
    // nullptr-terminated run; C names its base index.
    const std::vector<const Shape *> &Set = Graph.shapeSet(I->AuxA);
    uint16_t Base = Out->addShape(Set[0]);
    for (size_t S = 1, E = Set.size(); S != E; ++S)
      Out->addShape(Set[S]);
    Out->addShape(nullptr);
    emit(NOp::GuardShape, vregOf(I), use(I->operand(0)), Base,
         snapshotFor(I->resumePoint()));
    return;
  }
  case MirOp::LoadSlot:
    emit(NOp::LoadSlot, vregOf(I), use(I->operand(0)), 0,
         static_cast<int32_t>(I->AuxA));
    return;
  case MirOp::StoreSlot:
    emit(NOp::StoreSlot, use(I->operand(0)), use(I->operand(1)),
         mirTypeMayBeGC(I->operand(1)->type()) ? 1u : 0u,
         static_cast<int32_t>(I->AuxA));
    return;
  case MirOp::AddSlot:
    emit(NOp::AddSlot, use(I->operand(0)), use(I->operand(1)),
         Out->addShape(Graph.shapeSet(I->AuxA)[0]),
         static_cast<int32_t>(I->AuxB));
    return;
  case MirOp::CallWithThis: {
    uint32_t Callee = use(I->operand(0));
    for (size_t A = 2, E = I->numOperands(); A != E; ++A)
      emit(NOp::PushArg, use(I->operand(A)));
    emit(NOp::PushArg, use(I->operand(1))); // `this` is staged last.
    emit(NOp::CallT, vregOf(I), Callee,
         static_cast<uint32_t>(I->numOperands() - 2),
         static_cast<int32_t>(I->AuxB));
    return;
  }
  }
  JITVS_UNREACHABLE("bad MirOp in lowering");
}

void CodeGenerator::lowerBlock(MBasicBlock *B, MBasicBlock *Next) {
  CurBlock = B;
  BlockConstCache.clear();
  BlockStartL[B->id()] = static_cast<uint32_t>(Lir.size());

  // Phi destinations need vregs before any predecessor writes them.
  for (MInstr *Phi : B->phis())
    (void)vregOf(Phi);

  MInstr *Term = B->terminator();
  for (MInstr *I : B->instructions()) {
    if (I == Term)
      break;
    lowerInstr(I);
  }

  if (!Term) {
    assert(B->instructions().empty() && "block without terminator");
    return;
  }

  switch (Term->op()) {
  case MirOp::Goto: {
    MBasicBlock *Succ = Term->successor(0);
    lowerPhiMoves(B, Succ);
    if (Succ != Next)
      emit(NOp::Jmp, 0, 0, 0, blockMark(Succ));
    return;
  }
  case MirOp::Test: {
    uint32_t Cond = use(Term->operand(0));
    MBasicBlock *TrueB = Term->successor(0);
    MBasicBlock *FalseB = Term->successor(1);
    assert(TrueB->phis().empty() && FalseB->phis().empty() &&
           "critical edges with phis must have been split");
    if (FalseB == Next) {
      emit(NOp::JTrue, Cond, 0, 0, blockMark(TrueB));
    } else if (TrueB == Next) {
      emit(NOp::JFalse, Cond, 0, 0, blockMark(FalseB));
    } else {
      emit(NOp::JTrue, Cond, 0, 0, blockMark(TrueB));
      emit(NOp::Jmp, 0, 0, 0, blockMark(FalseB));
    }
    return;
  }
  case MirOp::Return:
    emit(NOp::Ret, use(Term->operand(0)));
    return;
  default:
    JITVS_UNREACHABLE("bad terminator");
  }
}

void CodeGenerator::computeLiveness() {
  size_t NumBlocks = Order.size();
  BlockRangeL.resize(NumBlocks);
  for (size_t I = 0; I != NumBlocks; ++I) {
    uint32_t Start = BlockStartL[Order[I]->id()];
    uint32_t End = I + 1 < NumBlocks
                       ? BlockStartL[Order[I + 1]->id()]
                       : static_cast<uint32_t>(Lir.size());
    BlockRangeL[I] = {Start, End};
  }

  auto ForEachUse = [this](const LIns &L, auto Fn) {
    OpInfo OI = opInfo(L.Op);
    if (OI.AUse)
      Fn(L.A);
    if (OI.BUse)
      Fn(L.B);
    if (OI.CUse)
      Fn(L.C);
    if (mathFnHasSecondArg(L))
      Fn(L.C);
    if (OI.HasSnapshot) {
      const Snapshot &S = Out->Snapshots[static_cast<size_t>(L.Imm)];
      for (const SnapshotEntry &E : S.Entries)
        if (!E.IsConst)
          Fn(E.Index);
    }
  };

  // Block-level liveness to a fixed point.
  std::vector<std::unordered_set<uint32_t>> LiveIn(NumBlocks),
      LiveOut(NumBlocks);
  std::unordered_map<uint32_t, size_t> OrderIdx;
  for (size_t I = 0; I != NumBlocks; ++I)
    OrderIdx[Order[I]->id()] = I;

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t BI = NumBlocks; BI-- > 0;) {
      MBasicBlock *B = Order[BI];
      std::unordered_set<uint32_t> Live;
      for (size_t S = 0, E = B->numSuccessors(); S != E; ++S) {
        auto It = OrderIdx.find(B->successor(S)->id());
        if (It == OrderIdx.end())
          continue;
        for (uint32_t V : LiveIn[It->second])
          Live.insert(V);
      }
      if (Live.size() != LiveOut[BI].size()) {
        LiveOut[BI] = Live;
        Changed = true;
      } else if (!(Live == LiveOut[BI])) {
        LiveOut[BI] = Live;
        Changed = true;
      }
      auto [Start, End] = BlockRangeL[BI];
      for (uint32_t P = End; P-- > Start;) {
        const LIns &L = Lir[P];
        OpInfo OI = opInfo(L.Op);
        if (OI.ADef)
          Live.erase(L.A);
        ForEachUse(L, [&Live](uint32_t V) { Live.insert(V); });
      }
      if (!(Live == LiveIn[BI])) {
        LiveIn[BI] = std::move(Live);
        Changed = true;
      }
    }
  }

  // Build conservative intervals.
  Intervals.clear();
  std::unordered_map<uint32_t, size_t> IntervalOf;
  auto Touch = [this, &IntervalOf](uint32_t V, uint32_t Pos) {
    auto [It, Inserted] = IntervalOf.try_emplace(V, Intervals.size());
    if (Inserted) {
      Interval Iv;
      Iv.VReg = V;
      Intervals.push_back(Iv);
    }
    Interval &Iv = Intervals[It->second];
    Iv.Start = std::min(Iv.Start, Pos);
    Iv.End = std::max(Iv.End, Pos);
  };

  for (size_t BI = 0; BI != NumBlocks; ++BI) {
    auto [Start, End] = BlockRangeL[BI];
    for (uint32_t V : LiveIn[BI])
      Touch(V, Start);
    for (uint32_t V : LiveOut[BI])
      Touch(V, End > Start ? End - 1 : Start);
    for (uint32_t P = Start; P != End; ++P) {
      const LIns &L = Lir[P];
      OpInfo OI = opInfo(L.Op);
      if (OI.ADef)
        Touch(L.A, P);
      ForEachUse(L, [&Touch, P](uint32_t V) { Touch(V, P); });
    }
  }
}

void CodeGenerator::allocateRegisters() {
  // Registers 13..15 are reserved as spill scratch.
  constexpr int NumAllocatable = 13;

  std::sort(Intervals.begin(), Intervals.end(),
            [](const Interval &A, const Interval &B) {
              return A.Start < B.Start;
            });

  RegOf.assign(NextVReg, -1);
  SlotOf.assign(NextVReg, -1);

  std::vector<size_t> Active; // Indices into Intervals.
  std::vector<bool> RegUsed(NumAllocatable, false);

  auto Expire = [&](uint32_t Pos) {
    for (size_t I = 0; I < Active.size();) {
      Interval &Iv = Intervals[Active[I]];
      if (Iv.End < Pos) {
        RegUsed[Iv.Reg] = false;
        Active[I] = Active.back();
        Active.pop_back();
      } else {
        ++I;
      }
    }
  };

  for (size_t Idx = 0; Idx != Intervals.size(); ++Idx) {
    Interval &Iv = Intervals[Idx];
    Expire(Iv.Start);
    int Free = -1;
    for (int R = 0; R != NumAllocatable; ++R) {
      if (!RegUsed[R]) {
        Free = R;
        break;
      }
    }
    if (Free >= 0) {
      Iv.Reg = Free;
      RegUsed[Free] = true;
      Active.push_back(Idx);
      continue;
    }
    // Spill the active interval with the furthest end (or this one).
    size_t Victim = Idx;
    size_t VictimActivePos = ~0ull;
    uint32_t MaxEnd = Iv.End;
    for (size_t AI = 0; AI != Active.size(); ++AI) {
      Interval &Cand = Intervals[Active[AI]];
      if (Cand.End > MaxEnd) {
        MaxEnd = Cand.End;
        Victim = Active[AI];
        VictimActivePos = AI;
      }
    }
    if (Victim == Idx) {
      Iv.Slot = static_cast<int>(NumSpills++);
    } else {
      Interval &V = Intervals[Victim];
      Iv.Reg = V.Reg;
      V.Slot = static_cast<int>(NumSpills++);
      V.Reg = -1;
      Active[VictimActivePos] = Idx;
    }
  }

  for (const Interval &Iv : Intervals) {
    RegOf[Iv.VReg] = Iv.Reg;
    SlotOf[Iv.VReg] = Iv.Slot;
  }
}

std::unique_ptr<NativeCode> CodeGenerator::emitFinal(CodegenStats *Stats) {
  // Scratch registers for spilled operands.
  constexpr uint16_t Scratch[3] = {13, 14, 15};

  // First pass: compute the final offset of every LIR index.
  std::vector<uint32_t> FinalOffset(Lir.size() + 1, 0);
  uint32_t Off = 0;
  for (size_t P = 0; P != Lir.size(); ++P) {
    FinalOffset[P] = Off;
    const LIns &L = Lir[P];
    OpInfo OI = opInfo(L.Op);
    unsigned Extra = 0;
    auto CountSpill = [this, &Extra](uint32_t V) {
      if (SlotOf[V] >= 0)
        ++Extra;
    };
    if (OI.AUse)
      CountSpill(L.A);
    if (OI.BUse)
      CountSpill(L.B);
    if (OI.CUse || mathFnHasSecondArg(L))
      CountSpill(L.C);
    if (OI.ADef && SlotOf[L.A] >= 0)
      ++Extra;
    Off += 1 + Extra;
  }
  FinalOffset[Lir.size()] = Off;

  // Map block ids to final offsets.
  std::unordered_map<uint32_t, uint32_t> BlockFinal;
  for (const auto &[BlockId, LIdx] : BlockStartL)
    BlockFinal[BlockId] = FinalOffset[LIdx];

  // Second pass: emit.
  for (size_t P = 0; P != Lir.size(); ++P) {
    LIns L = Lir[P];
    OpInfo OI = opInfo(L.Op);
    unsigned NextScratch = 0;
    auto MapUse = [this, &NextScratch, &Scratch](uint32_t V) -> uint16_t {
      if (RegOf[V] >= 0)
        return static_cast<uint16_t>(RegOf[V]);
      assert(SlotOf[V] >= 0 && "vreg with no location");
      uint16_t S = Scratch[NextScratch++];
      NInstr Load;
      Load.Op = NOp::LoadSpill;
      Load.A = S;
      Load.Imm = SlotOf[V];
      Out->Code.push_back(Load);
      return S;
    };

    NInstr N;
    N.Op = L.Op;
    N.Imm = L.Imm;
    N.B = static_cast<uint16_t>(L.B);
    N.C = static_cast<uint16_t>(L.C);

    // Rewrite jump targets.
    if (L.Op == NOp::Jmp || L.Op == NOp::JTrue || L.Op == NOp::JFalse)
      N.Imm = static_cast<int32_t>(BlockFinal[static_cast<uint32_t>(L.Imm)]);

    if (OI.BUse)
      N.B = MapUse(L.B);
    if (OI.CUse || mathFnHasSecondArg(L))
      N.C = MapUse(L.C);

    // Record a stack map at every runtime-call site: the frame
    // locations the allocator proved live across the call. Operands
    // that die at the call (End == P) and the call's own def are
    // excluded — the executor poisons everything else, so a location
    // omitted here can never smuggle a stale pointer past a moving
    // collection. Keyed by the call's final instruction index (spill
    // reloads for its uses were already emitted above), and emission
    // order keeps StackMaps sorted by PC for mapForPC's binary search.
    if (L.Op == NOp::CallV || L.Op == NOp::CallM || L.Op == NOp::CallT ||
        L.Op == NOp::NewCall) {
      StackMap M;
      M.PC = static_cast<uint32_t>(Out->Code.size());
      for (const Interval &Iv : Intervals) {
        if (Iv.Start > P || Iv.End <= P || Iv.VReg == L.A)
          continue;
        M.Live.push_back(Iv.Reg >= 0
                             ? static_cast<uint16_t>(Iv.Reg)
                             : static_cast<uint16_t>(NumPhysRegs + Iv.Slot));
      }
      std::sort(M.Live.begin(), M.Live.end());
      M.Live.erase(std::unique(M.Live.begin(), M.Live.end()), M.Live.end());
      Out->StackMaps.push_back(std::move(M));
    }

    if (OI.AUse)
      N.A = MapUse(L.A);
    else if (OI.ADef) {
      if (RegOf[L.A] >= 0) {
        N.A = static_cast<uint16_t>(RegOf[L.A]);
        Out->Code.push_back(N);
        continue;
      }
      // Spilled def: write to scratch, then store.
      uint16_t S = Scratch[NextScratch < 3 ? NextScratch : 2];
      N.A = S;
      Out->Code.push_back(N);
      NInstr Store;
      Store.Op = NOp::StoreSpill;
      Store.A = S;
      Store.Imm = SlotOf[L.A];
      Out->Code.push_back(Store);
      continue;
    } else {
      N.A = static_cast<uint16_t>(L.A);
    }
    Out->Code.push_back(N);
  }

  // Rewrite snapshot entries from vregs to final locations.
  for (Snapshot &S : Out->Snapshots) {
    for (SnapshotEntry &E : S.Entries) {
      if (E.IsConst)
        continue;
      uint32_t V = E.Index;
      if (RegOf[V] >= 0)
        E.Index = static_cast<uint32_t>(RegOf[V]);
      else
        E.Index = NumPhysRegs + static_cast<uint32_t>(SlotOf[V]);
    }
  }

  Out->FrameSize = NumPhysRegs + NumSpills;
  Out->EntryOffset = 0;
  if (MBasicBlock *Osr = Graph.osrBlock()) {
    if (!Osr->isDead()) {
      Out->OsrOffset = BlockFinal[Osr->id()];
      if (Osr->entryResumePoint())
        Out->OsrPc = Osr->entryResumePoint()->pc();
    }
  }

  if (Stats) {
    Stats->NumVirtualRegs = NextVReg;
    Stats->NumSpills = NumSpills;
    Stats->NumInstructions = static_cast<uint32_t>(Out->Code.size());
  }
  return std::move(Out);
}

std::unique_ptr<NativeCode> CodeGenerator::run(CodegenStats *Stats) {
  Out = std::make_unique<NativeCode>(Graph.functionInfo());

  splitCriticalEdges(Graph);

  Order = Graph.reversePostOrder();
  assert(!Order.empty() && Order[0] == Graph.entry() &&
         "entry must lead the code layout");

  for (size_t I = 0, E = Order.size(); I != E; ++I)
    lowerBlock(Order[I], I + 1 < E ? Order[I + 1] : nullptr);

  computeLiveness();
  allocateRegisters();
  return emitFinal(Stats);
}

} // namespace

std::unique_ptr<NativeCode> jitvs::generateCode(MIRGraph &Graph,
                                                CodegenStats *Stats) {
  CodeGenerator CG(Graph);
  return CG.run(Stats);
}
