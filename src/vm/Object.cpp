//===- vm/Object.cpp - Heap object tracing and helpers --------------------===//

#include "vm/Object.h"

#include "vm/Bytecode.h"

using namespace jitvs;

std::string JSFunction::displayName() const {
  if (isNative())
    return NativeName;
  return Info ? Info->Name : "<anonymous>";
}

void jitvs::traceObject(GCObject *Obj, GCMarker &Marker) {
  switch (Obj->kind()) {
  case GCKind::String:
    return;
  case GCKind::Array: {
    auto *A = static_cast<JSArray *>(Obj);
    for (const Value &V : A->elements())
      Marker.mark(V);
    return;
  }
  case GCKind::Object: {
    // The shape is not a GC object (the Runtime's ShapeTree owns it for
    // the Runtime's lifetime); only the slot values are traced.
    auto *O = static_cast<JSObject *>(Obj);
    for (const Value &V : O->slots())
      Marker.mark(V);
    return;
  }
  case GCKind::Function: {
    auto *F = static_cast<JSFunction *>(Obj);
    if (F->environment())
      Marker.mark(static_cast<GCObject *>(F->environment()));
    return;
  }
  case GCKind::Environment: {
    auto *E = static_cast<Environment *>(Obj);
    if (E->parent())
      Marker.mark(static_cast<GCObject *>(E->parent()));
    for (size_t I = 0, N = E->numSlots(); I != N; ++I)
      Marker.mark(E->getSlot(I));
    return;
  }
  }
  JITVS_UNREACHABLE("bad GCKind");
}
