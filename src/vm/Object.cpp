//===- vm/Object.cpp - Heap object tracing and helpers --------------------===//

#include "vm/Object.h"

#include "vm/Bytecode.h"

using namespace jitvs;

std::string JSFunction::displayName() const {
  if (isNative())
    return NativeName;
  return Info ? Info->Name : "<anonymous>";
}

void jitvs::traceObject(GCObject *Obj, GCVisitor &Visitor) {
  switch (Obj->kind()) {
  case GCKind::String:
    return;
  case GCKind::Array: {
    auto *A = static_cast<JSArray *>(Obj);
    for (Value &V : A->Elems)
      Visitor.visit(V);
    return;
  }
  case GCKind::Object: {
    // The shape is not a GC object (the Runtime's ShapeTree owns it for
    // the Runtime's lifetime); only the slot values are traced.
    auto *O = static_cast<JSObject *>(Obj);
    for (Value &V : O->Slots)
      Visitor.visit(V);
    return;
  }
  case GCKind::Function: {
    auto *F = static_cast<JSFunction *>(Obj);
    Visitor.visitPtr(F->Env);
    return;
  }
  case GCKind::Environment: {
    auto *E = static_cast<Environment *>(Obj);
    Visitor.visitPtr(E->Parent);
    for (Value &V : E->Slots)
      Visitor.visit(V);
    return;
  }
  }
  JITVS_UNREACHABLE("bad GCKind");
}

void jitvs::destroyObject(GCObject *Obj) {
  switch (Obj->kind()) {
  case GCKind::String:
    static_cast<JSString *>(Obj)->~JSString();
    return;
  case GCKind::Array:
    static_cast<JSArray *>(Obj)->~JSArray();
    return;
  case GCKind::Object:
    static_cast<JSObject *>(Obj)->~JSObject();
    return;
  case GCKind::Function:
    static_cast<JSFunction *>(Obj)->~JSFunction();
    return;
  case GCKind::Environment:
    static_cast<Environment *>(Obj)->~Environment();
    return;
  }
  JITVS_UNREACHABLE("bad GCKind");
}

void jitvs::deleteObject(GCObject *Obj) {
  switch (Obj->kind()) {
  case GCKind::String:
    delete static_cast<JSString *>(Obj);
    return;
  case GCKind::Array:
    delete static_cast<JSArray *>(Obj);
    return;
  case GCKind::Object:
    delete static_cast<JSObject *>(Obj);
    return;
  case GCKind::Function:
    delete static_cast<JSFunction *>(Obj);
    return;
  case GCKind::Environment:
    delete static_cast<Environment *>(Obj);
    return;
  }
  JITVS_UNREACHABLE("bad GCKind");
}
