//===- vm/GC.h - Mark-sweep heap for MiniJS objects -------------*- C++ -*-===//
///
/// \file
/// A precise stop-the-world mark-sweep collector. Roots are enumerated
/// through RootSource objects that register with the heap for their
/// lifetime (interpreter frames, native executor frames, the runtime's
/// global table, and temporary root scopes around allocation windows).
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_VM_GC_H
#define JITVS_VM_GC_H

#include "vm/Value.h"

#include <cstddef>
#include <vector>

namespace jitvs {

class Heap;

/// Kind discriminator for heap objects (hand-rolled RTTI).
enum class GCKind : uint8_t {
  String,
  Array,
  Object,
  Function,
  Environment,
};

/// Base class of every heap-allocated VM object.
class GCObject {
public:
  GCKind kind() const { return Kind; }

protected:
  explicit GCObject(GCKind K) : Kind(K) {}

private:
  friend class Heap;
  friend class GCMarker;
  GCObject *Next = nullptr;
  GCKind Kind;
  bool Marked = false;
};

/// Visitor handed to root sources and to object tracing during marking.
class GCMarker {
public:
  explicit GCMarker(std::vector<GCObject *> &Stack) : Stack(Stack) {}

  /// Marks \p Obj live and schedules it for tracing.
  void mark(GCObject *Obj) {
    if (!Obj || Obj->Marked)
      return;
    Obj->Marked = true;
    Stack.push_back(Obj);
  }

  /// Marks the GC thing held by \p V, if any.
  void mark(const Value &V) {
    if (V.isGCThing())
      mark(V.asGCThing());
  }

private:
  std::vector<GCObject *> &Stack;
};

/// Anything that can hold live values across a collection. Sources
/// register themselves with the heap for their lifetime.
class RootSource {
public:
  virtual ~RootSource();
  /// Reports every live value/object this source holds.
  virtual void markRoots(GCMarker &Marker) = 0;
};

/// RAII list of temporary roots protecting values during windows where
/// they are held only on the C++ stack (e.g. popped operands that are
/// still needed while allocating their result).
class TempRoots final : public RootSource {
public:
  explicit TempRoots(Heap &H);
  ~TempRoots() override;

  void add(const Value &V) { Values.push_back(V); }
  void markRoots(GCMarker &Marker) override {
    for (const Value &V : Values)
      Marker.mark(V);
  }

private:
  Heap &TheHeap;
  std::vector<Value> Values;
};

/// The mark-sweep heap. Allocation may trigger a collection when the
/// number of live allocations since the last GC crosses a threshold.
class Heap {
public:
  Heap() = default;
  ~Heap();
  Heap(const Heap &) = delete;
  Heap &operator=(const Heap &) = delete;

  /// Allocates a T (must derive from GCObject). May collect first.
  template <typename T, typename... Args> T *allocate(Args &&...As) {
    maybeCollect();
    T *Obj = new T(std::forward<Args>(As)...);
    Obj->Next = Head;
    Head = Obj;
    ++NumObjects;
    ++AllocationsSinceGC;
    return Obj;
  }

  void addRootSource(RootSource *Source);
  void removeRootSource(RootSource *Source);

  /// Runs a full collection immediately.
  void collect();

  // --- Cross-heap object donation -------------------------------------
  //
  // Compile workers fold constants on a private heap; the objects a
  // finished compile references from its constant pool are donated to
  // the main heap when the code is published (GC is non-moving, so the
  // pointers stay valid). The protocol: capture allocationMark() before
  // the work, detachAllocatedSince() after, hand the chain across the
  // publication fence, adoptChain() on the receiving heap. All three
  // calls must run on the thread owning their respective heap.

  /// Opaque handle to a detached singly-linked run of objects.
  struct DetachedChain {
    GCObject *Head = nullptr;
    GCObject *Tail = nullptr;
    size_t Count = 0;
    bool empty() const { return Head == nullptr; }
  };

  /// Current newest-allocation marker (allocation prepends, so objects
  /// allocated later sit strictly in front of this node).
  GCObject *allocationMark() const { return Head; }

  /// Unlinks and returns every object allocated since \p Mark was
  /// captured. \p Mark must be a previous allocationMark() of this heap
  /// and no collection may have run in between.
  DetachedChain detachAllocatedSince(GCObject *Mark);

  /// Splices a donated chain into this heap's object list. The objects
  /// become subject to this heap's collections (unrooted ones die at the
  /// next GC, exactly like fresh garbage).
  void adoptChain(const DetachedChain &Chain);

  /// Frees a chain that will never be adopted (e.g. its compile was
  /// discarded as stale).
  static void freeChain(const DetachedChain &Chain);

  /// Number of collections performed so far.
  size_t gcCount() const { return NumCollections; }
  /// Number of objects currently on the heap.
  size_t objectCount() const { return NumObjects; }

  /// Sets how many allocations are allowed between collections.
  void setGCThreshold(size_t N) { Threshold = N; }

private:
  void maybeCollect() {
    if (AllocationsSinceGC >= Threshold)
      collect();
  }

  GCObject *Head = nullptr;
  std::vector<RootSource *> Sources;
  size_t NumObjects = 0;
  size_t AllocationsSinceGC = 0;
  size_t Threshold = 1 << 18;
  size_t NumCollections = 0;
};

} // namespace jitvs

#endif // JITVS_VM_GC_H
