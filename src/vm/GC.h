//===- vm/GC.h - Generational heap for MiniJS objects -----------*- C++ -*-===//
///
/// \file
/// A two-space generational collector. New objects are bump-allocated in
/// a fixed-size nursery and evacuated by copying minor collections into
/// the old generation, which the original mark-sweep collector still
/// manages. Old-to-young edges are tracked by an object-granular
/// remembered set fed by write barriers at every mutating store site
/// (interpreter IC stores, generic set-prop/set-elem helpers, array
/// builtins, and the native backend's StoreSlot/AddSlot/StoreElem/
/// SetEnv/InitProp handlers).
///
/// Collections are safepoint-deferred: Heap::allocate NEVER collects.
/// A full nursery (or JITVS_GC_STRESS) merely arms a request flag; the
/// collection itself runs at the next Heap::safepoint(), which the
/// engine places at dispatch boundaries only — Runtime::callValue entry,
/// the interpreter's LoopHead handler, and the native dispatch loop's
/// back-edge polls. At those points every live value is reachable from a
/// registered RootSource, so the copying collector can move objects and
/// re-point the roots in place. This ordering also makes it structurally
/// impossible for a collection triggered mid-allocate to reclaim (or
/// move) the partially-constructed object before the caller stores it.
///
/// Roots are enumerated through RootSource objects that register with
/// the heap for their lifetime (interpreter frames, native executor
/// frames with per-call stack maps, the runtime's global table, engine
/// code pools, and temporary root scopes around call windows). Root
/// tracing uses an *updating* visitor: a minor collection rewrites every
/// root slot that referenced a moved object.
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_VM_GC_H
#define JITVS_VM_GC_H

#include "vm/Value.h"

#include <cstddef>
#include <memory>
#include <new>
#include <vector>

namespace jitvs {

class Heap;
class GCVisitor;

/// Kind discriminator for heap objects (hand-rolled RTTI).
enum class GCKind : uint8_t {
  String,
  Array,
  Object,
  Function,
  Environment,
};

/// Base class of every heap-allocated VM object. No virtual functions:
/// tracing and destruction dispatch on Kind (traceObject/destroyObject
/// in vm/Object.{h,cpp}), keeping the header to one pointer plus two
/// bytes.
class GCObject {
public:
  GCKind kind() const { return Kind; }

protected:
  explicit GCObject(GCKind K) : Kind(K) {}

  /// Copy/move construction starts a fresh heap identity: the list link,
  /// mark bit and remembered-set state never travel with the payload
  /// (promotion move-constructs the old-space copy from the nursery
  /// original).
  GCObject(const GCObject &O) : Kind(O.Kind) {}

  /// Whole-object assignment is a heap-corruption footgun: the implicit
  /// base assignment would overwrite the intrusive list link / forwarding
  /// pointer of the destination. Replace contents member-wise instead
  /// (e.g. JSArray::replaceElements).
  GCObject &operator=(const GCObject &) = delete;

private:
  friend class Heap;
  friend class GCVisitor;
  friend class GCMarker;

  enum : uint8_t {
    MarkedFlag = 1 << 0,     ///< Mark-sweep liveness (old space).
    ForwardedFlag = 1 << 1,  ///< Nursery object already evacuated; Next
                             ///< holds the forwarding pointer.
    RememberedFlag = 1 << 2, ///< Old-space object in the remembered set.
  };

  /// Intrusive old-space list link; during a minor collection, the
  /// forwarding pointer of an evacuated nursery object.
  GCObject *Next = nullptr;
  GCKind Kind;
  uint8_t Flags = 0;
};

/// Visitor handed to root sources and to object tracing. The pointer
/// hook may *update* the reference (copying minor collections re-point
/// references to the promoted copy); the mark-sweep marker leaves it
/// unchanged. Value/typed-pointer wrappers write back only when the
/// pointer actually changed, so tracing data that is immutable by
/// contract (e.g. enqueued compile-task snapshots read by worker
/// threads, which the engine tenures before publication) never stores.
class GCVisitor {
public:
  virtual ~GCVisitor() = default;

  /// Visits one object reference; may rewrite it.
  virtual void visitObj(GCObject *&Obj) = 0;

  /// Visits the GC thing held by \p V, if any, updating the payload when
  /// the object moved.
  void visit(Value &V) {
    if (!V.isGCThing())
      return;
    GCObject *Obj = V.asGCThing();
    GCObject *Orig = Obj;
    visitObj(Obj);
    if (Obj != Orig)
      V.setGCThing(Obj);
  }

  /// Visits a typed object pointer (Environment*, JSObject*...).
  template <typename T> void visitPtr(T *&P) {
    if (!P)
      return;
    GCObject *Obj = P;
    visitObj(Obj);
    if (Obj != P)
      P = static_cast<T *>(Obj);
  }
};

/// The mark phase's visitor: marks and schedules for tracing, never
/// moves.
class GCMarker final : public GCVisitor {
public:
  explicit GCMarker(std::vector<GCObject *> &Stack) : Stack(Stack) {}

  void visitObj(GCObject *&Obj) override {
    if (!Obj || (Obj->Flags & GCObject::MarkedFlag))
      return;
    Obj->Flags |= GCObject::MarkedFlag;
    Stack.push_back(Obj);
  }

private:
  std::vector<GCObject *> &Stack;
};

/// Anything that can hold live values across a collection. Sources
/// register themselves with the heap for their lifetime.
class RootSource {
public:
  virtual ~RootSource();
  /// Visits every live value/object this source holds. The visitor may
  /// update the visited slots (moving minor collections), so sources
  /// must report their *storage*, not copies.
  virtual void traceRoots(GCVisitor &Visitor) = 0;
};

/// RAII list of temporary roots protecting values that live only on the
/// C++ stack across a safepoint (a callValue window: sort's scratch
/// buffers, construct's `this`, the entry closure in Runtime::run).
/// Holds *pointers* to the values so a moving collection updates the
/// caller's actual storage; add() therefore requires lvalues that
/// outlive this scope.
class TempRoots final : public RootSource {
public:
  explicit TempRoots(Heap &H);
  ~TempRoots() override;

  void add(Value &V) { Values.push_back(&V); }
  /// Roots every element of \p Vec, tracking the vector itself so
  /// resizes between safepoints stay safe.
  void addVector(std::vector<Value> &Vec) { Vectors.push_back(&Vec); }

  void traceRoots(GCVisitor &Visitor) override {
    for (Value *V : Values)
      Visitor.visit(*V);
    for (std::vector<Value> *Vec : Vectors)
      for (Value &V : *Vec)
        Visitor.visit(V);
  }

private:
  Heap &TheHeap;
  std::vector<Value *> Values;
  std::vector<std::vector<Value> *> Vectors;
};

/// The generational heap: bump-allocated nursery in front of the
/// original mark-sweep old space.
class Heap {
public:
  Heap();
  ~Heap();
  Heap(const Heap &) = delete;
  Heap &operator=(const Heap &) = delete;

  /// Default nursery size (overridden by JITVS_NURSERY_KB; 0 disables
  /// the nursery and restores pure mark-sweep behavior).
  static constexpr size_t DefaultNurseryBytes = 256 * 1024;

  /// Allocates a T (must derive from GCObject). NEVER collects: a full
  /// nursery overflow-allocates into the old space (pre-remembered, so
  /// its barrier-less initialization stores are still scanned) and arms
  /// the minor-collection request served by the next safepoint().
  template <typename T, typename... Args> T *allocate(Args &&...As) {
    if (StressGC)
      MinorRequested = true;
    if (NurseryEnabled) {
      size_t Size = (sizeof(T) + NurseryAlign - 1) & ~(NurseryAlign - 1);
      if (static_cast<size_t>(NurseryEnd - NurseryTop) >= Size) {
        T *Obj = new (NurseryTop) T(std::forward<Args>(As)...);
        NurseryTop += Size;
        NurseryObjs.push_back(Obj);
        return Obj;
      }
      MinorRequested = true;
      T *Obj = allocateTenured<T>(std::forward<Args>(As)...);
      // Initialization stores into an overflow-tenured object skip the
      // write barrier (the object "looks" old the moment it is born), so
      // conservatively remember it for the next minor collection.
      rememberObject(Obj);
      return Obj;
    }
    return allocateTenured<T>(std::forward<Args>(As)...);
  }

  void addRootSource(RootSource *Source);
  void removeRootSource(RootSource *Source);

  // --- Safepoints ------------------------------------------------------

  /// True when a collection is pending; the native back-edge poll reads
  /// this directly so the fast path is one load and branch.
  bool collectionRequested() const { return MinorRequested || MajorRequested; }

  /// Dispatch-boundary collection point: runs whatever collection has
  /// been requested since the last one. Every registered RootSource must
  /// be accurate here — this is the only place objects move.
  void safepoint() {
    if (MinorRequested || MajorRequested)
      safepointSlow();
  }

  /// Runs a full collection immediately: nursery evacuation, then
  /// mark-sweep over the old space. Callers must be at a point where all
  /// roots are registered (the gc() builtin qualifies: its caller sits
  /// in callValue with call roots and frame sources live).
  void collect();

  /// Runs a minor collection immediately: evacuates every nursery
  /// survivor into the old generation and resets the bump pointer. Also
  /// the engine's tenuring primitive — after this, every previously
  /// allocated object is pointer-stable for its lifetime.
  void minorCollect();

  /// Turns the nursery on or off. Disabling first evacuates any current
  /// nursery residents so no stale young objects survive un-barriered
  /// (compile-worker fold Runtimes run nursery-off: their allocations
  /// must be pointer-stable and delete-able for chain donation).
  void setNurseryEnabled(bool Enabled);
  bool nurseryEnabled() const { return NurseryEnabled; }

  /// Collect-at-every-safepoint stress mode (JITVS_GC_STRESS): every
  /// allocation arms the minor-GC request, so each safepoint moves the
  /// whole nursery. Maximizes exposure of unrooted temporaries and
  /// missing write barriers.
  void setGCStress(bool Enabled) { StressGC = Enabled; }
  bool gcStress() const { return StressGC; }

  // --- Write barrier ---------------------------------------------------

  /// Post-write barrier for `Owner.field = V`: records \p Owner in the
  /// remembered set when the store created an old-to-young edge. Called
  /// unconditionally at store sites; filters internally.
  void writeBarrier(GCObject *Owner, const Value &V) {
    if (!NurseryEnabled || !V.isGCThing())
      return;
    if (!inNursery(V.asGCThing()) || inNursery(Owner))
      return;
    rememberObject(Owner);
  }

  /// Barrier for whole-contents replacement (array shift / length
  /// truncation): conservatively remembers \p Owner without inspecting
  /// the new contents.
  void writeBarrierAll(GCObject *Owner) {
    if (!NurseryEnabled || inNursery(Owner))
      return;
    rememberObject(Owner);
  }

  /// True when \p Obj lives in the nursery's bump buffer.
  bool inNursery(const GCObject *Obj) const {
    const char *P = reinterpret_cast<const char *>(Obj);
    return P >= NurseryBase && P < NurseryEnd;
  }

  // --- Cross-heap object donation -------------------------------------
  //
  // Compile workers fold constants on a private heap; the objects a
  // finished compile references from its constant pool are donated to
  // the main heap when the code is published. Worker heaps run with the
  // nursery disabled, so every donated object is an ordinary old-space
  // allocation: pointer-stable (the pool's baked-in pointers stay valid)
  // and adopted directly into the receiving heap's old generation, where
  // it promotes/collects exactly like a native old-space object. The
  // protocol: capture allocationMark() before the work,
  // detachAllocatedSince() after, hand the chain across the publication
  // fence, adoptChain() on the receiving heap. All three calls must run
  // on the thread owning their respective heap.

  /// Opaque handle to a detached singly-linked run of objects.
  struct DetachedChain {
    GCObject *Head = nullptr;
    GCObject *Tail = nullptr;
    size_t Count = 0;
    bool empty() const { return Head == nullptr; }
  };

  /// Current newest-allocation marker (allocation prepends, so objects
  /// allocated later sit strictly in front of this node). Only
  /// meaningful on nursery-disabled heaps, where every allocation lands
  /// on the old-space list.
  GCObject *allocationMark() const { return Head; }

  /// Unlinks and returns every object allocated since \p Mark was
  /// captured. \p Mark must be a previous allocationMark() of this heap
  /// and no collection may have run in between. Requires the nursery to
  /// be disabled (worker fold heaps).
  DetachedChain detachAllocatedSince(GCObject *Mark);

  /// Splices a donated chain into this heap's old generation. The
  /// objects become subject to this heap's collections (unrooted ones
  /// die at the next major GC, exactly like fresh garbage).
  void adoptChain(const DetachedChain &Chain);

  /// Frees a chain that will never be adopted (e.g. its compile was
  /// discarded as stale).
  static void freeChain(const DetachedChain &Chain);

  // --- Statistics ------------------------------------------------------

  /// Number of full (major) collections performed so far.
  size_t gcCount() const { return NumCollections; }
  /// Number of minor (nursery) collections performed so far.
  size_t minorCount() const { return NumMinorCollections; }
  /// Number of objects promoted into the old generation, cumulative.
  size_t promotedCount() const { return NumPromoted; }
  /// Number of objects currently in the old generation.
  size_t objectCount() const { return NumObjects; }
  /// Number of objects currently in the nursery.
  size_t nurseryCount() const { return NurseryObjs.size(); }
  size_t nurseryCapacityBytes() const {
    return static_cast<size_t>(NurseryEnd - NurseryBase);
  }

  /// Sets how many old-space allocations (tenured allocations plus
  /// promotions) are allowed between major collections.
  void setGCThreshold(size_t N) { Threshold = N; }

private:
  static constexpr size_t NurseryAlign = 16;

  template <typename T, typename... Args> T *allocateTenured(Args &&...As) {
    T *Obj = new T(std::forward<Args>(As)...);
    Obj->Next = Head;
    Head = Obj;
    ++NumObjects;
    if (++AllocationsSinceGC >= Threshold)
      MajorRequested = true;
    return Obj;
  }

  void rememberObject(GCObject *Obj) {
    if (Obj->Flags & GCObject::RememberedFlag)
      return;
    Obj->Flags |= GCObject::RememberedFlag;
    RememberedSet.push_back(Obj);
  }

  void safepointSlow();
  /// Copies one nursery object into the old generation (or returns the
  /// existing copy) and returns the new address.
  GCObject *evacuate(GCObject *Obj);
  void markAndSweepOld();

  friend class NurseryEvacuator;

  // Old generation: intrusive singly-linked list, mark-sweep.
  GCObject *Head = nullptr;
  std::vector<RootSource *> Sources;
  size_t NumObjects = 0;
  size_t AllocationsSinceGC = 0;
  size_t Threshold = 1 << 18;
  size_t NumCollections = 0;

  // Nursery: fixed bump buffer plus a side list for destructor sweeps.
  std::unique_ptr<char[]> NurseryMem;
  char *NurseryBase = nullptr;
  char *NurseryTop = nullptr;
  char *NurseryEnd = nullptr;
  bool NurseryEnabled = false;
  std::vector<GCObject *> NurseryObjs;
  std::vector<GCObject *> RememberedSet;
  std::vector<GCObject *> EvacScanList; ///< Minor-GC transitive worklist.

  bool MinorRequested = false;
  bool MajorRequested = false;
  bool StressGC = false;

  size_t NumMinorCollections = 0;
  size_t NumPromoted = 0;
};

} // namespace jitvs

#endif // JITVS_VM_GC_H
