//===- vm/Object.h - Heap object kinds of the MiniJS VM ---------*- C++ -*-===//
///
/// \file
/// The concrete GC object kinds: immutable strings, growable arrays,
/// property-map objects, function closures (user functions and native
/// builtins) and closure environments. Property names are interned to
/// integer ids by the runtime's name table, so property maps compare ids
/// instead of strings.
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_VM_OBJECT_H
#define JITVS_VM_OBJECT_H

#include "vm/GC.h"
#include "vm/Value.h"

#include <string>
#include <utility>
#include <vector>

namespace jitvs {

class Runtime;
struct FunctionInfo;

/// Immutable string payload.
class JSString final : public GCObject {
public:
  explicit JSString(std::string Str)
      : GCObject(GCKind::String), Str(std::move(Str)) {}

  const std::string &str() const { return Str; }
  size_t length() const { return Str.size(); }

private:
  std::string Str;
};

/// A growable dense array of boxed values. Out-of-bounds stores grow the
/// array (filling holes with undefined), matching JavaScript semantics for
/// dense arrays; out-of-bounds loads yield undefined.
class JSArray final : public GCObject {
public:
  JSArray() : GCObject(GCKind::Array) {}
  explicit JSArray(std::vector<Value> Elems)
      : GCObject(GCKind::Array), Elems(std::move(Elems)) {}

  size_t length() const { return Elems.size(); }

  /// In-range read; callers must have bounds-checked.
  const Value &getDense(size_t I) const {
    assert(I < Elems.size() && "dense array read out of bounds");
    return Elems[I];
  }
  /// In-range write; callers must have bounds-checked.
  void setDense(size_t I, const Value &V) {
    assert(I < Elems.size() && "dense array write out of bounds");
    Elems[I] = V;
  }

  /// Generic indexed read: undefined when out of range or negative.
  Value getElement(int64_t I) const {
    if (I < 0 || static_cast<size_t>(I) >= Elems.size())
      return Value::undefined();
    return Elems[I];
  }
  /// Generic indexed write: grows the array for indices past the end.
  void setElement(int64_t I, const Value &V) {
    if (I < 0)
      return;
    if (static_cast<size_t>(I) >= Elems.size())
      Elems.resize(static_cast<size_t>(I) + 1);
    Elems[I] = V;
  }

  void push(const Value &V) { Elems.push_back(V); }
  Value pop() {
    if (Elems.empty())
      return Value::undefined();
    Value V = Elems.back();
    Elems.pop_back();
    return V;
  }

  const std::vector<Value> &elements() const { return Elems; }

private:
  std::vector<Value> Elems;
};

/// A plain object: a small flat property map keyed by interned name id.
class JSObject final : public GCObject {
public:
  JSObject() : GCObject(GCKind::Object) {}

  /// \returns the property value, or undefined when absent.
  Value getProperty(uint32_t NameId) const {
    for (const auto &[Id, V] : Props)
      if (Id == NameId)
        return V;
    return Value::undefined();
  }

  /// \returns true if the property exists.
  bool hasProperty(uint32_t NameId) const {
    for (const auto &[Id, V] : Props)
      if (Id == NameId)
        return true;
    return false;
  }

  /// Creates or overwrites the property.
  void setProperty(uint32_t NameId, const Value &V) {
    for (auto &[Id, Slot] : Props) {
      if (Id == NameId) {
        Slot = V;
        return;
      }
    }
    Props.emplace_back(NameId, V);
  }

  const std::vector<std::pair<uint32_t, Value>> &properties() const {
    return Props;
  }

private:
  std::vector<std::pair<uint32_t, Value>> Props;
};

/// A closure environment: boxed slots for locals captured by inner
/// functions, chained through the lexical parent.
class Environment final : public GCObject {
public:
  Environment(Environment *Parent, size_t NumSlots)
      : GCObject(GCKind::Environment), Parent(Parent), Slots(NumSlots) {}

  Environment *parent() const { return Parent; }

  const Value &getSlot(size_t I) const {
    assert(I < Slots.size() && "environment slot out of range");
    return Slots[I];
  }
  void setSlot(size_t I, const Value &V) {
    assert(I < Slots.size() && "environment slot out of range");
    Slots[I] = V;
  }
  size_t numSlots() const { return Slots.size(); }

  /// Walks \p Depth lexical levels up from this environment.
  Environment *hop(unsigned Depth) {
    Environment *E = this;
    while (Depth--) {
      assert(E->Parent && "environment chain too short");
      E = E->Parent;
    }
    return E;
  }

private:
  friend class Heap;
  Environment *Parent;
  std::vector<Value> Slots;
};

/// Signature of native builtin functions.
using NativeFn = Value (*)(Runtime &RT, const Value &ThisV, const Value *Args,
                           size_t NumArgs);

/// A callable value: either a user function (bytecode FunctionInfo plus
/// the captured environment) or a native builtin.
class JSFunction final : public GCObject {
public:
  JSFunction(FunctionInfo *Info, Environment *Env)
      : GCObject(GCKind::Function), Info(Info), Env(Env) {}
  JSFunction(NativeFn Fn, std::string Name)
      : GCObject(GCKind::Function), Native(Fn), NativeName(std::move(Name)) {}

  bool isNative() const { return Native != nullptr; }
  FunctionInfo *info() const { return Info; }
  Environment *environment() const { return Env; }
  NativeFn native() const { return Native; }
  const std::string &nativeName() const { return NativeName; }

  /// \returns a printable function name.
  std::string displayName() const;

private:
  FunctionInfo *Info = nullptr;
  Environment *Env = nullptr;
  NativeFn Native = nullptr;
  std::string NativeName;
};

/// Traces the outgoing references of \p Obj during marking.
void traceObject(GCObject *Obj, GCMarker &Marker);

} // namespace jitvs

#endif // JITVS_VM_OBJECT_H
