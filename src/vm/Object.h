//===- vm/Object.h - Heap object kinds of the MiniJS VM ---------*- C++ -*-===//
///
/// \file
/// The concrete GC object kinds: immutable strings, growable arrays,
/// property-map objects, function closures (user functions and native
/// builtins) and closure environments. Property names are interned to
/// integer ids by the runtime's name table, so property maps compare ids
/// instead of strings.
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_VM_OBJECT_H
#define JITVS_VM_OBJECT_H

#include "vm/GC.h"
#include "vm/Shape.h"
#include "vm/Value.h"

#include <string>
#include <utility>
#include <vector>

namespace jitvs {

class Runtime;
struct FunctionInfo;

/// Immutable string payload.
class JSString final : public GCObject {
public:
  explicit JSString(std::string Str)
      : GCObject(GCKind::String), Str(std::move(Str)) {}

  const std::string &str() const { return Str; }
  size_t length() const { return Str.size(); }

private:
  std::string Str;
};

/// A growable dense array of boxed values. Out-of-bounds stores grow the
/// array (filling holes with undefined), matching JavaScript semantics for
/// dense arrays; out-of-bounds loads yield undefined.
class JSArray final : public GCObject {
public:
  JSArray() : GCObject(GCKind::Array) {}
  explicit JSArray(std::vector<Value> Elems)
      : GCObject(GCKind::Array), Elems(std::move(Elems)) {}

  size_t length() const { return Elems.size(); }

  /// In-range read; callers must have bounds-checked.
  const Value &getDense(size_t I) const {
    assert(I < Elems.size() && "dense array read out of bounds");
    return Elems[I];
  }
  /// In-range write; callers must have bounds-checked.
  void setDense(size_t I, const Value &V) {
    assert(I < Elems.size() && "dense array write out of bounds");
    Elems[I] = V;
  }

  /// Generic indexed read: undefined when out of range or negative.
  Value getElement(int64_t I) const {
    if (I < 0 || static_cast<size_t>(I) >= Elems.size())
      return Value::undefined();
    return Elems[I];
  }
  /// Dense-growth ceiling: a store past this index is dropped instead of
  /// materializing gigabytes of undefined filler (`a[1e9] = x` used to
  /// resize the backing vector to a billion entries). Reads past the end
  /// already yield undefined, and both execution tiers share this path,
  /// so the clamp is observably identical across configurations.
  static constexpr int64_t MaxDenseLength = int64_t(1) << 20;

  /// Generic indexed write: grows the array for indices past the end, up
  /// to MaxDenseLength; negative or huge indices are dropped.
  void setElement(int64_t I, const Value &V) {
    if (I < 0 || I >= MaxDenseLength)
      return;
    if (static_cast<size_t>(I) >= Elems.size())
      Elems.resize(static_cast<size_t>(I) + 1);
    Elems[I] = V;
  }

  void push(const Value &V) { Elems.push_back(V); }
  Value pop() {
    if (Elems.empty())
      return Value::undefined();
    Value V = Elems.back();
    Elems.pop_back();
    return V;
  }

  const std::vector<Value> &elements() const { return Elems; }

  /// Swaps in a whole new element vector (shift, length truncation).
  /// Callers on the mutator side must pair this with
  /// Heap::writeBarrierAll — the new contents are not inspected here.
  void replaceElements(std::vector<Value> Els) { Elems = std::move(Els); }

private:
  friend void traceObject(GCObject *, GCVisitor &);
  std::vector<Value> Elems;
};

/// A plain object: a hidden-class shape describing the layout (which
/// interned name id lives in which slot) plus a flat slot vector with
/// the property values. Objects built by the same sequence of property
/// adds share a shape, so property access sites can cache a shape
/// pointer and read/write the slot directly (vm/Shape.h).
class JSObject final : public GCObject {
public:
  explicit JSObject(const Shape *S) : GCObject(GCKind::Object), S(S) {}

  const Shape *shape() const { return S; }

  /// Direct slot access for shape-guarded fast paths: the caller has
  /// already matched shape() against a cached shape.
  const Value &slotAt(uint32_t I) const {
    assert(I < Slots.size() && "object slot out of range");
    return Slots[I];
  }
  void setSlotAt(uint32_t I, const Value &V) {
    assert(I < Slots.size() && "object slot out of range");
    Slots[I] = V;
  }

  /// Shape-guarded property add: transitions to \p To (the cached child
  /// shape) and appends the value to its new slot.
  void addSlot(const Shape *To, const Value &V) {
    assert(To->parent() == S && To->numSlots() == Slots.size() + 1 &&
           "addSlot target is not a direct transition of this shape");
    S = To;
    Slots.push_back(V);
  }

  /// \returns the property value, or undefined when absent.
  Value getProperty(uint32_t NameId) const {
    int32_t Slot = S->lookup(NameId);
    return Slot < 0 ? Value::undefined() : Slots[Slot];
  }

  /// \returns true if the property exists.
  bool hasProperty(uint32_t NameId) const { return S->lookup(NameId) >= 0; }

  /// Creates or overwrites the property; new properties transition the
  /// shape through \p Tree.
  void setProperty(ShapeTree &Tree, uint32_t NameId, const Value &V) {
    int32_t Slot = S->lookup(NameId);
    if (Slot >= 0) {
      Slots[Slot] = V;
      return;
    }
    addSlot(Tree.transition(S, NameId), V);
  }

  const std::vector<Value> &slots() const { return Slots; }

private:
  friend void traceObject(GCObject *, GCVisitor &);
  const Shape *S;
  std::vector<Value> Slots;
};

/// A closure environment: boxed slots for locals captured by inner
/// functions, chained through the lexical parent.
class Environment final : public GCObject {
public:
  Environment(Environment *Parent, size_t NumSlots)
      : GCObject(GCKind::Environment), Parent(Parent), Slots(NumSlots) {}

  Environment *parent() const { return Parent; }

  const Value &getSlot(size_t I) const {
    assert(I < Slots.size() && "environment slot out of range");
    return Slots[I];
  }
  void setSlot(size_t I, const Value &V) {
    assert(I < Slots.size() && "environment slot out of range");
    Slots[I] = V;
  }
  size_t numSlots() const { return Slots.size(); }

  /// Walks \p Depth lexical levels up from this environment.
  Environment *hop(unsigned Depth) {
    Environment *E = this;
    while (Depth--) {
      assert(E->Parent && "environment chain too short");
      E = E->Parent;
    }
    return E;
  }

private:
  friend class Heap;
  friend void traceObject(GCObject *, GCVisitor &);
  Environment *Parent;
  std::vector<Value> Slots;
};

/// Signature of native builtin functions.
using NativeFn = Value (*)(Runtime &RT, const Value &ThisV, const Value *Args,
                           size_t NumArgs);

/// A callable value: either a user function (bytecode FunctionInfo plus
/// the captured environment) or a native builtin.
class JSFunction final : public GCObject {
public:
  JSFunction(FunctionInfo *Info, Environment *Env)
      : GCObject(GCKind::Function), Info(Info), Env(Env) {}
  JSFunction(NativeFn Fn, std::string Name)
      : GCObject(GCKind::Function), Native(Fn), NativeName(std::move(Name)) {}

  bool isNative() const { return Native != nullptr; }
  FunctionInfo *info() const { return Info; }
  Environment *environment() const { return Env; }
  NativeFn native() const { return Native; }
  const std::string &nativeName() const { return NativeName; }

  /// \returns a printable function name.
  std::string displayName() const;

private:
  friend void traceObject(GCObject *, GCVisitor &);
  FunctionInfo *Info = nullptr;
  Environment *Env = nullptr;
  NativeFn Native = nullptr;
  std::string NativeName;
};

/// Visits the outgoing references of \p Obj; the visitor may update them
/// (moving minor collections) or just mark them (the old-space sweep).
void traceObject(GCObject *Obj, GCVisitor &Visitor);

/// Kind-dispatched destruction. GCObject deliberately has no virtual
/// destructor (no vtable word per object), so deleting through the base
/// pointer would never run the derived destructors — the seed collector
/// leaked every string/vector payload it swept this way.
void destroyObject(GCObject *Obj); ///< Destructor only (nursery storage).
void deleteObject(GCObject *Obj);  ///< Destructor plus operator delete.

} // namespace jitvs

#endif // JITVS_VM_OBJECT_H
