//===- vm/Shape.h - Hidden-class object shapes ------------------*- C++ -*-===//
///
/// \file
/// Hidden-class shapes for JSObject ("Extending Basic Block Versioning
/// with Typed Object Shapes", Chevalier-Boisvert & Feeley). A Shape
/// describes one object layout: which property name ids an object has
/// and which slot index each one occupies. Objects built by the same
/// sequence of property adds share a shape, so a property access
/// becomes a pointer compare (shape guard) plus a direct slot load.
///
/// Shapes form a transition tree rooted at the empty shape: adding
/// property P to an object with shape S moves it to the unique child
/// S.transition(P), created on first use. The describing fields of a
/// Shape (parent, property id, slot, id) are immutable after
/// construction, so lookups walk the parent chain lock-free from any
/// thread — background compile workers read shapes recorded in
/// feedback snapshots while the mutator keeps transitioning. Only the
/// per-shape transition map mutates, and every access to it goes
/// through the owning ShapeTree's single mutex.
///
/// Shapes are not GC objects: the ShapeTree (owned by the Runtime)
/// keeps every shape it ever created alive for the Runtime's lifetime.
/// That is what makes `const Shape *` safe to embed in inline caches,
/// feedback snapshots, MIR graphs and native-code shape pools without
/// any rooting protocol — a shape pointer can never dangle while any
/// code that could mention it can still run.
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_VM_SHAPE_H
#define JITVS_VM_SHAPE_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace jitvs {

class ShapeTree;

/// One object layout. Immutable except for the transition map, which is
/// only touched under the owning ShapeTree's mutex.
class Shape {
public:
  /// Property name id this shape added relative to its parent (the root
  /// shape has none).
  static constexpr uint32_t NoProp = ~0u;

  const Shape *parent() const { return Parent; }
  uint32_t propId() const { return PropId; }
  /// Slot index PropId occupies (valid when PropId != NoProp).
  uint32_t slot() const { return Slot; }
  /// Total slot count of objects with this shape.
  uint32_t numSlots() const { return NumSlots; }
  /// Dense id, stable for the tree's lifetime (root is 0).
  uint32_t id() const { return Id; }

  /// Slot index of \p NameId, or -1 when absent. Walks the immutable
  /// parent chain: safe from any thread without locking.
  int32_t lookup(uint32_t NameId) const {
    for (const Shape *S = this; S->PropId != NoProp; S = S->Parent)
      if (S->PropId == NameId)
        return static_cast<int32_t>(S->Slot);
    return -1;
  }

private:
  friend class ShapeTree;
  Shape(const Shape *Parent, uint32_t PropId, uint32_t Slot,
        uint32_t NumSlots, uint32_t Id)
      : Parent(Parent), PropId(PropId), Slot(Slot), NumSlots(NumSlots),
        Id(Id) {}

  const Shape *Parent;
  const uint32_t PropId;
  const uint32_t Slot;
  const uint32_t NumSlots;
  const uint32_t Id;
  /// NameId -> child shape. Guarded by ShapeTree::Mu.
  std::unordered_map<uint32_t, Shape *> Transitions;
};

/// Owns every shape of one Runtime. Transition lookup/creation is
/// serialized by a single mutex; everything a reader needs afterwards
/// lives in the immutable part of Shape.
class ShapeTree {
public:
  ShapeTree();
  ShapeTree(const ShapeTree &) = delete;
  ShapeTree &operator=(const ShapeTree &) = delete;

  /// The empty shape every fresh object starts with.
  const Shape *root() const { return Root; }

  /// The child of \p From that adds \p NameId, created on first use.
  /// \p From must not already contain \p NameId.
  const Shape *transition(const Shape *From, uint32_t NameId);

  /// Number of shapes ever created (telemetry).
  size_t size() const;

private:
  mutable std::mutex Mu;
  std::vector<std::unique_ptr<Shape>> Shapes;
  Shape *Root;
};

} // namespace jitvs

#endif // JITVS_VM_SHAPE_H
