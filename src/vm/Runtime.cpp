//===- vm/Runtime.cpp - Execution environment and generic operations ------===//

#include "vm/Runtime.h"

#include "parser/Emitter.h"
#include "telemetry/Metrics.h"
#include "telemetry/Telemetry.h"
#include "vm/Interpreter.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace jitvs;

ExecutionHooks::~ExecutionHooks() = default;
CallObserver::~CallObserver() = default;

/// Roots owned by the runtime: globals, internal values and every
/// constant-pool entry of the loaded program.
class Runtime::GlobalRoots final : public RootSource {
public:
  explicit GlobalRoots(Runtime &RT) : RT(RT) { RT.TheHeap.addRootSource(this); }
  ~GlobalRoots() override { RT.TheHeap.removeRootSource(this); }

  void traceRoots(GCVisitor &Visitor) override {
    for (Value &V : RT.Globals)
      Visitor.visit(V);
    for (Value &V : RT.InternalRoots)
      Visitor.visit(V);
    if (RT.TypeofStringsReady)
      for (Value &V : RT.TypeofStrings)
        Visitor.visit(V);
    // Program constants are tenured at load() (compile workers read them
    // lock-free), so visiting them here never writes after that point.
    if (Program *P = RT.Prog.get())
      for (size_t I = 0, E = P->numFunctions(); I != E; ++I)
        for (Value &C : P->function(static_cast<uint32_t>(I))->Constants)
          Visitor.visit(C);
  }

private:
  Runtime &RT;
};

Runtime::Runtime() {
  Roots = std::make_unique<GlobalRoots>(*this);
  // Shape/IC knobs are ambient-environment seeded like the dispatch-mode
  // default: harnesses that need per-instance control (the fuzz matrix)
  // override through the setters after construction.
  if (const char *E = std::getenv("JITVS_SHAPES"))
    ShapesOn = !(std::strcmp(E, "off") == 0 || std::strcmp(E, "0") == 0);
  if (const char *E = std::getenv("JITVS_IC_WAYS"))
    setICWays(static_cast<unsigned>(std::strtoul(E, nullptr, 10)));
}

Runtime::~Runtime() {
  if (metricsEnabled())
    publishShapeMetrics();
}

void Runtime::setICWays(unsigned N) {
  ICWays = std::max(1u, std::min(N, SiteFeedback::MaxICWays));
}

void Runtime::publishShapeMetrics() {
  // Publish-once: the destructor path must not double-count a harness's
  // explicit publish.
  if (!metricsEnabled() || ShapeMetricsPublished)
    return;
  ShapeMetricsPublished = true;
  Metrics &M = metrics();
  M.addCounter("shape.shapes", Shapes.size());
  M.addCounter("ic.get.hits", TheICStats.GetHits);
  M.addCounter("ic.get.misses", TheICStats.GetMisses);
  M.addCounter("ic.set.hits", TheICStats.SetHits);
  M.addCounter("ic.set.misses", TheICStats.SetMisses);
  M.addCounter("ic.call.hits", TheICStats.CallHits);
  M.addCounter("ic.call.misses", TheICStats.CallMisses);
  M.addCounter("ic.sites.megamorphic", TheICStats.MegamorphicSites);
}

void Runtime::printLine(const std::string &S) {
  Output += S;
  Output += '\n';
  if (EchoOutput)
    std::fwrite((S + "\n").data(), 1, S.size() + 1, stdout);
}

//===----------------------------------------------------------------------===//
// Conversions
//===----------------------------------------------------------------------===//

double Runtime::toNumber(const Value &V) {
  switch (V.tag()) {
  case ValueTag::Undefined:
    return std::nan("");
  case ValueTag::Null:
    return 0.0;
  case ValueTag::Boolean:
    return V.asBoolean() ? 1.0 : 0.0;
  case ValueTag::Int32:
    return V.asInt32();
  case ValueTag::Double:
    return V.asDouble();
  case ValueTag::String: {
    const std::string &S = V.asString()->str();
    size_t Begin = S.find_first_not_of(" \t\n\r");
    if (Begin == std::string::npos)
      return 0.0;
    size_t End = S.find_last_not_of(" \t\n\r");
    std::string Trimmed = S.substr(Begin, End - Begin + 1);
    char *EndPtr = nullptr;
    double D = std::strtod(Trimmed.c_str(), &EndPtr);
    if (EndPtr != Trimmed.c_str() + Trimmed.size())
      return std::nan("");
    return D;
  }
  case ValueTag::Object:
  case ValueTag::Array:
  case ValueTag::Function:
    return std::nan("");
  }
  JITVS_UNREACHABLE("bad ValueTag");
}

int32_t Runtime::toInt32(double D) {
  if (std::isnan(D) || std::isinf(D))
    return 0;
  // ECMAScript ToInt32: truncate, then wrap modulo 2^32 into signed range.
  double T = std::trunc(D);
  double M = std::fmod(T, 4294967296.0);
  if (M < 0)
    M += 4294967296.0;
  uint32_t U = static_cast<uint32_t>(M);
  return static_cast<int32_t>(U);
}

double Runtime::jsMathRound(double D) {
  if (!std::isfinite(D))
    return D;
  // floor-then-adjust: computing D + 0.5 first can round up through a
  // double-rounding (0.49999999999999994 + 0.5 == 1.0). JS rounds halves
  // toward +inf, so bump when the fractional part is >= 0.5 exactly.
  double R = std::floor(D);
  if (D - R >= 0.5)
    R += 1.0;
  // Math.round is -0 for x in [-0.5, 0), but the +1.0 bump above lands
  // those inputs on +0.
  if (R == 0.0 && D < 0.0)
    return -0.0;
  return R;
}

static int32_t valueToInt32(const Value &V) {
  if (V.isInt32())
    return V.asInt32();
  return Runtime::toInt32(Runtime::toNumber(V));
}

//===----------------------------------------------------------------------===//
// Generic arithmetic
//===----------------------------------------------------------------------===//

Value Runtime::genericAdd(const Value &A, const Value &B) {
  if (A.isInt32() && B.isInt32()) {
    int32_t R;
    if (!__builtin_add_overflow(A.asInt32(), B.asInt32(), &R))
      return Value::int32(R);
    IntOverflowFlag = true;
    return Value::makeDouble(static_cast<double>(A.asInt32()) +
                             static_cast<double>(B.asInt32()));
  }
  if (A.isString() || B.isString()) {
    // Allocation never collects (safepoint-deferred GC), so A and B need
    // no rooting across newStringValue.
    return newStringValue(A.toDisplayString() + B.toDisplayString());
  }
  return Value::number(toNumber(A) + toNumber(B));
}

Value Runtime::genericSub(const Value &A, const Value &B) {
  if (A.isInt32() && B.isInt32()) {
    int32_t R;
    if (!__builtin_sub_overflow(A.asInt32(), B.asInt32(), &R))
      return Value::int32(R);
    IntOverflowFlag = true;
    return Value::makeDouble(static_cast<double>(A.asInt32()) -
                             static_cast<double>(B.asInt32()));
  }
  return Value::number(toNumber(A) - toNumber(B));
}

Value Runtime::genericMul(const Value &A, const Value &B) {
  if (A.isInt32() && B.isInt32()) {
    int32_t R;
    if (!__builtin_mul_overflow(A.asInt32(), B.asInt32(), &R)) {
      // Preserve -0: int path cannot represent it.
      if (R != 0 || (A.asInt32() >= 0 && B.asInt32() >= 0))
        return Value::int32(R);
    }
    IntOverflowFlag = true;
    return Value::makeDouble(static_cast<double>(A.asInt32()) *
                             static_cast<double>(B.asInt32()));
  }
  return Value::number(toNumber(A) * toNumber(B));
}

Value Runtime::genericDiv(const Value &A, const Value &B) {
  return Value::number(toNumber(A) / toNumber(B));
}

Value Runtime::genericMod(const Value &A, const Value &B) {
  if (A.isInt32() && B.isInt32()) {
    int32_t L = A.asInt32(), R = B.asInt32();
    if (R != 0 && !(L == INT32_MIN && R == -1) && !(L < 0 && L % R == 0))
      return Value::int32(L % R);
  }
  return Value::number(std::fmod(toNumber(A), toNumber(B)));
}

Value Runtime::genericNeg(const Value &A) {
  if (A.isInt32()) {
    int32_t I = A.asInt32();
    if (I != 0 && I != INT32_MIN)
      return Value::int32(-I);
  }
  return Value::makeDouble(-toNumber(A));
}

Value Runtime::genericBitOp(Op O, const Value &A, const Value &B) {
  int32_t L = valueToInt32(A);
  int32_t R = valueToInt32(B);
  switch (O) {
  case Op::BitAnd:
    return Value::int32(L & R);
  case Op::BitOr:
    return Value::int32(L | R);
  case Op::BitXor:
    return Value::int32(L ^ R);
  case Op::Shl:
    return Value::int32(L << (R & 31));
  case Op::Shr:
    return Value::int32(L >> (R & 31));
  case Op::UShr: {
    // Always a Double, even when the result fits int32: the MIR type of
    // UShr is Double (the result range exceeds int32), so the
    // interpreter, the constant folder and the native backend must agree
    // on the representation a UShr yields.
    uint32_t U = static_cast<uint32_t>(L) >> (R & 31);
    return Value::makeDouble(static_cast<double>(U));
  }
  default:
    JITVS_UNREACHABLE("not a bitwise op");
  }
}

Value Runtime::genericBitNot(const Value &A) {
  return Value::int32(~valueToInt32(A));
}

bool Runtime::genericLess(const Value &A, const Value &B) {
  if (A.isString() && B.isString())
    return A.asString()->str() < B.asString()->str();
  return toNumber(A) < toNumber(B);
}

bool Runtime::genericLessEq(const Value &A, const Value &B) {
  if (A.isString() && B.isString())
    return A.asString()->str() <= B.asString()->str();
  return toNumber(A) <= toNumber(B);
}

bool Runtime::genericLooseEquals(const Value &A, const Value &B) {
  if (A.tag() == B.tag() || (A.isNumber() && B.isNumber()))
    return A.strictEquals(B);
  // null == undefined.
  if ((A.isNull() && B.isUndefined()) || (A.isUndefined() && B.isNull()))
    return true;
  // Numeric coercion for number/boolean/string mixes.
  bool ANum = A.isNumber() || A.isBoolean() || A.isString();
  bool BNum = B.isNumber() || B.isBoolean() || B.isString();
  if (ANum && BNum)
    return toNumber(A) == toNumber(B);
  return false;
}

//===----------------------------------------------------------------------===//
// Elements and properties
//===----------------------------------------------------------------------===//

/// \returns the integer index of \p V, or -1 when it is not an exact
/// non-negative integer index.
static int64_t asElementIndex(const Value &V) {
  if (V.isInt32())
    return V.asInt32() < 0 ? -1 : V.asInt32();
  if (V.isDouble()) {
    double D = V.asDouble();
    int64_t I = static_cast<int64_t>(D);
    if (static_cast<double>(I) == D && I >= 0)
      return I;
  }
  return -1;
}

Value Runtime::genericGetElem(const Value &Obj, const Value &Index) {
  switch (Obj.tag()) {
  case ValueTag::Array: {
    JSArray *A = Obj.asArray();
    int64_t I = asElementIndex(Index);
    if (I < 0 || static_cast<size_t>(I) >= A->length()) {
      OutOfBoundsFlag = true;
      return Value::undefined();
    }
    return A->getDense(static_cast<size_t>(I));
  }
  case ValueTag::String: {
    JSString *S = Obj.asString();
    int64_t I = asElementIndex(Index);
    if (I < 0 || static_cast<size_t>(I) >= S->length()) {
      OutOfBoundsFlag = true;
      return Value::undefined();
    }
    return newStringValue(std::string(1, S->str()[static_cast<size_t>(I)]));
  }
  case ValueTag::Object: {
    std::string Key = Index.toDisplayString();
    uint32_t Id = Prog->names().intern(Key);
    return Obj.asObject()->getProperty(Id);
  }
  case ValueTag::Undefined:
  case ValueTag::Null:
    fail("cannot read element of " + std::string(Obj.typeOfString()));
    return Value::undefined();
  default:
    return Value::undefined();
  }
}

Value Runtime::genericSetElem(const Value &Obj, const Value &Index,
                              const Value &V) {
  switch (Obj.tag()) {
  case ValueTag::Array: {
    JSArray *A = Obj.asArray();
    int64_t I = asElementIndex(Index);
    if (I < 0) {
      OutOfBoundsFlag = true;
      return V; // Negative / non-index keys on arrays are ignored.
    }
    if (static_cast<size_t>(I) >= A->length())
      OutOfBoundsFlag = true;
    A->setElement(I, V);
    TheHeap.writeBarrier(A, V);
    return V;
  }
  case ValueTag::Object: {
    std::string Key = Index.toDisplayString();
    uint32_t Id = Prog->names().intern(Key);
    Obj.asObject()->setProperty(Shapes, Id, V);
    TheHeap.writeBarrier(Obj.asObject(), V);
    return V;
  }
  case ValueTag::Undefined:
  case ValueTag::Null:
    fail("cannot set element of " + std::string(Obj.typeOfString()));
    return Value::undefined();
  default:
    return V;
  }
}

Value Runtime::genericGetProp(const Value &Obj, uint32_t NameId) {
  switch (Obj.tag()) {
  case ValueTag::Object:
    return Obj.asObject()->getProperty(NameId);
  case ValueTag::Array:
    if (NameId == LengthId)
      return Value::number(static_cast<double>(Obj.asArray()->length()));
    return Value::undefined();
  case ValueTag::String:
    if (NameId == LengthId)
      return Value::number(static_cast<double>(Obj.asString()->length()));
    return Value::undefined();
  case ValueTag::Undefined:
  case ValueTag::Null:
    fail("cannot read property '" + nameOf(NameId) + "' of " +
         std::string(Obj.typeOfString()));
    return Value::undefined();
  default:
    return Value::undefined();
  }
}

Value Runtime::genericSetProp(const Value &Obj, uint32_t NameId,
                              const Value &V) {
  switch (Obj.tag()) {
  case ValueTag::Object:
    Obj.asObject()->setProperty(Shapes, NameId, V);
    TheHeap.writeBarrier(Obj.asObject(), V);
    return V;
  case ValueTag::Array:
    if (NameId == LengthId) {
      int64_t NewLen = asElementIndex(V);
      if (NewLen >= 0) {
        // Resizing through the generic path; shrink or grow with holes.
        // Growth honors the same dense ceiling as setElement: a stray
        // `a.length = 1e9` must not materialize gigabytes of filler.
        NewLen = std::min(NewLen, JSArray::MaxDenseLength);
        JSArray *A = Obj.asArray();
        std::vector<Value> Elems = A->elements();
        Elems.resize(static_cast<size_t>(NewLen));
        // NOT `*A = JSArray(...)`: whole-object assignment would clobber
        // the GC header (GCObject::operator= is deleted for exactly this
        // reason — the seed's assignment here truncated the heap list).
        A->replaceElements(std::move(Elems));
        TheHeap.writeBarrierAll(A);
      }
    }
    return V;
  case ValueTag::Undefined:
  case ValueTag::Null:
    fail("cannot set property '" + nameOf(NameId) + "' of " +
         std::string(Obj.typeOfString()));
    return Value::undefined();
  default:
    return V;
  }
}

Value Runtime::typeOfValue(const Value &V) {
  // Cache the six result strings; indexes match the order below.
  static const char *const Names[6] = {"undefined", "object",  "boolean",
                                       "number",    "string",  "function"};
  if (!TypeofStringsReady) {
    for (unsigned I = 0; I != 6; ++I)
      TypeofStrings[I] = newStringValue(Names[I]);
    TypeofStringsReady = true;
  }
  unsigned Idx;
  switch (V.tag()) {
  case ValueTag::Undefined:
    Idx = 0;
    break;
  case ValueTag::Null:
  case ValueTag::Object:
  case ValueTag::Array:
    Idx = 1;
    break;
  case ValueTag::Boolean:
    Idx = 2;
    break;
  case ValueTag::Int32:
  case ValueTag::Double:
    Idx = 3;
    break;
  case ValueTag::String:
    Idx = 4;
    break;
  case ValueTag::Function:
    Idx = 5;
    break;
  default:
    JITVS_UNREACHABLE("bad ValueTag");
  }
  return TypeofStrings[Idx];
}

//===----------------------------------------------------------------------===//
// Method dispatch (array and string builtin methods)
//===----------------------------------------------------------------------===//

Value Runtime::callMethod(const Value &Recv, uint32_t NameId,
                          const Value *Args, size_t NumArgs) {
  if (Recv.isObject()) {
    Value Callee = Recv.asObject()->getProperty(NameId);
    if (!Callee.isFunction()) {
      fail("'" + nameOf(NameId) + "' is not a function");
      return Value::undefined();
    }
    return callValue(Callee, Recv, Args, NumArgs);
  }

  const std::string &Name = nameOf(NameId);

  if (Recv.isArray()) {
    JSArray *A = Recv.asArray();
    if (Name == "push") {
      for (size_t I = 0; I != NumArgs; ++I) {
        A->push(Args[I]);
        TheHeap.writeBarrier(A, Args[I]);
      }
      return Value::number(static_cast<double>(A->length()));
    }
    if (Name == "pop")
      return A->pop();
    if (Name == "join") {
      std::string Sep = NumArgs > 0 ? Args[0].toDisplayString() : ",";
      std::string Out;
      for (size_t I = 0, E = A->length(); I != E; ++I) {
        if (I)
          Out += Sep;
        const Value &Elem = A->getDense(I);
        if (!Elem.isUndefined() && !Elem.isNull())
          Out += Elem.toDisplayString();
      }
      return newStringValue(std::move(Out));
    }
    if (Name == "indexOf") {
      if (NumArgs == 0)
        return Value::int32(-1);
      for (size_t I = 0, E = A->length(); I != E; ++I)
        if (A->getDense(I).strictEquals(Args[0]))
          return Value::number(static_cast<double>(I));
      return Value::int32(-1);
    }
    if (Name == "slice") {
      int64_t Len = static_cast<int64_t>(A->length());
      int64_t Begin = NumArgs > 0 ? static_cast<int64_t>(toNumber(Args[0])) : 0;
      int64_t End = NumArgs > 1 ? static_cast<int64_t>(toNumber(Args[1])) : Len;
      if (Begin < 0)
        Begin += Len;
      if (End < 0)
        End += Len;
      Begin = std::clamp<int64_t>(Begin, 0, Len);
      End = std::clamp<int64_t>(End, Begin, Len);
      std::vector<Value> Elems(A->elements().begin() + Begin,
                               A->elements().begin() + End);
      return Value::array(TheHeap.allocate<JSArray>(std::move(Elems)));
    }
    if (Name == "reverse") {
      std::vector<Value> Elems = A->elements();
      std::reverse(Elems.begin(), Elems.end());
      for (size_t I = 0, E = Elems.size(); I != E; ++I)
        A->setDense(I, Elems[I]);
      return Recv;
    }
    if (Name == "shift") {
      if (A->length() == 0)
        return Value::undefined();
      Value First = A->getDense(0);
      std::vector<Value> Elems(A->elements().begin() + 1,
                               A->elements().end());
      // replaceElements, not `*A = JSArray(...)`: whole-object assignment
      // would clobber the GC header (see GCObject::operator=).
      A->replaceElements(std::move(Elems));
      TheHeap.writeBarrierAll(A);
      return First;
    }
    if (Name == "concat") {
      std::vector<Value> Elems = A->elements();
      for (size_t I = 0; I != NumArgs; ++I) {
        if (Args[I].isArray()) {
          const auto &More = Args[I].asArray()->elements();
          Elems.insert(Elems.end(), More.begin(), More.end());
        } else {
          Elems.push_back(Args[I]);
        }
      }
      return Value::array(TheHeap.allocate<JSArray>(std::move(Elems)));
    }
    if (Name == "sort") {
      TempRoots Roots(TheHeap);
      Value RecvRoot = Recv;
      Roots.add(RecvRoot);
      std::vector<Value> Elems = A->elements();
      Roots.addVector(Elems);
      if (NumArgs > 0 && Args[0].isFunction()) {
        // Hand-rolled bottom-up stable merge sort. std::stable_sort
        // would hold unrooted Value temporaries inside the algorithm
        // while the user comparator runs (and callValue is a safepoint
        // where the collector moves objects), so every value the sort
        // touches must live in the two rooted vectors.
        Value Cmp = Args[0];
        Roots.add(Cmp);
        std::vector<Value> Aux(Elems.size());
        Roots.addVector(Aux);
        auto Less = [this, &Cmp](const Value &X, const Value &Y) {
          if (hasError())
            return false;
          Value Pair[2] = {X, Y};
          Value R = callValue(Cmp, Value::undefined(), Pair, 2);
          return toNumber(R) < 0;
        };
        size_t N = Elems.size();
        for (size_t Width = 1; Width < N; Width *= 2) {
          for (size_t Lo = 0; Lo + Width < N; Lo += 2 * Width) {
            size_t Mid = Lo + Width;
            size_t Hi = std::min(Lo + 2 * Width, N);
            size_t L = Lo, R = Mid, O = Lo;
            while (L < Mid && R < Hi) {
              // Stable: take the left run's element unless right < left.
              if (Less(Elems[R], Elems[L]))
                Aux[O++] = Elems[R++];
              else
                Aux[O++] = Elems[L++];
            }
            while (L < Mid)
              Aux[O++] = Elems[L++];
            while (R < Hi)
              Aux[O++] = Elems[R++];
            for (size_t I = Lo; I < Hi; ++I)
              Elems[I] = Aux[I];
          }
        }
      } else {
        // No user code runs in this comparator, so no safepoint can
        // interleave with the algorithm's internal temporaries.
        std::stable_sort(Elems.begin(), Elems.end(),
                         [](const Value &X, const Value &Y) {
                           return X.toDisplayString() < Y.toDisplayString();
                         });
      }
      // The comparator may have run a moving collection: re-derive the
      // array from the rooted receiver before writing back.
      JSArray *Arr = RecvRoot.asArray();
      for (size_t I = 0, E = Elems.size(); I != E; ++I)
        Arr->setDense(I, Elems[I]);
      TheHeap.writeBarrierAll(Arr);
      return RecvRoot;
    }
    fail("array has no method '" + Name + "'");
    return Value::undefined();
  }

  if (Recv.isString()) {
    const std::string &S = Recv.asString()->str();
    int64_t Len = static_cast<int64_t>(S.size());
    if (Name == "charCodeAt") {
      int64_t I = NumArgs > 0 ? static_cast<int64_t>(toNumber(Args[0])) : 0;
      if (I < 0 || I >= Len)
        return Value::makeDouble(std::nan(""));
      return Value::int32(static_cast<unsigned char>(S[I]));
    }
    if (Name == "charAt") {
      int64_t I = NumArgs > 0 ? static_cast<int64_t>(toNumber(Args[0])) : 0;
      if (I < 0 || I >= Len)
        return newStringValue("");
      return newStringValue(std::string(1, S[I]));
    }
    if (Name == "substring" || Name == "slice") {
      int64_t Begin = NumArgs > 0 ? static_cast<int64_t>(toNumber(Args[0])) : 0;
      int64_t End = NumArgs > 1 ? static_cast<int64_t>(toNumber(Args[1])) : Len;
      if (Name == "slice") {
        if (Begin < 0)
          Begin += Len;
        if (End < 0)
          End += Len;
      }
      Begin = std::clamp<int64_t>(Begin, 0, Len);
      End = std::clamp<int64_t>(End, 0, Len);
      if (Name == "substring" && Begin > End)
        std::swap(Begin, End);
      if (Begin > End)
        return newStringValue("");
      return newStringValue(S.substr(Begin, End - Begin));
    }
    if (Name == "indexOf") {
      if (NumArgs == 0)
        return Value::int32(-1);
      size_t P = S.find(Args[0].toDisplayString());
      return Value::int32(P == std::string::npos ? -1
                                                 : static_cast<int32_t>(P));
    }
    if (Name == "split") {
      std::string Sep = NumArgs > 0 ? Args[0].toDisplayString() : "";
      // No rooting needed: allocation never collects, and nothing below
      // reaches a safepoint, so Out and the pushed strings stay put.
      JSArray *Out = TheHeap.allocate<JSArray>();
      if (Sep.empty()) {
        for (char C : S)
          Out->push(newStringValue(std::string(1, C)));
      } else {
        size_t Pos = 0;
        while (true) {
          size_t Next = S.find(Sep, Pos);
          if (Next == std::string::npos) {
            Out->push(newStringValue(S.substr(Pos)));
            break;
          }
          Out->push(newStringValue(S.substr(Pos, Next - Pos)));
          Pos = Next + Sep.size();
        }
      }
      return Value::array(Out);
    }
    if (Name == "toUpperCase" || Name == "toLowerCase") {
      std::string Out = S;
      for (char &C : Out)
        C = Name[2] == 'U' ? static_cast<char>(std::toupper(
                                 static_cast<unsigned char>(C)))
                           : static_cast<char>(std::tolower(
                                 static_cast<unsigned char>(C)));
      return newStringValue(std::move(Out));
    }
    fail("string has no method '" + Name + "'");
    return Value::undefined();
  }

  fail("cannot call method '" + Name + "' on " +
       std::string(Recv.typeOfString()));
  return Value::undefined();
}

//===----------------------------------------------------------------------===//
// Call dispatch
//===----------------------------------------------------------------------===//

namespace {

/// Roots one call's callee, receiver and argument span for the call's
/// duration. Callee/this are rooted as private copies (the caller's
/// originals may be unrooted temporaries); the argument span is rooted
/// *in place* — every callValue caller passes arguments backed by
/// updatable storage (the interpreter's value stack, the native
/// executor's ArgStage, callGlobal's vector, or builtin stack arrays),
/// so a moving collection rewrites the storage the callee will read.
class CallRoots final : public RootSource {
public:
  CallRoots(Heap &H, const Value &Callee, const Value &ThisV,
            const Value *Args, size_t NumArgs)
      : TheHeap(H), Callee(Callee), ThisV(ThisV),
        Args(const_cast<Value *>(Args)), NumArgs(NumArgs) {
    TheHeap.addRootSource(this);
  }
  ~CallRoots() override { TheHeap.removeRootSource(this); }

  void traceRoots(GCVisitor &Visitor) override {
    Visitor.visit(Callee);
    Visitor.visit(ThisV);
    for (size_t I = 0; I != NumArgs; ++I)
      Visitor.visit(Args[I]);
  }

  Value Callee; ///< Rooted copy; use instead of the ctor argument.
  Value ThisV;  ///< Rooted copy; use instead of the ctor argument.

private:
  Heap &TheHeap;
  Value *Args;
  size_t NumArgs;
};

} // namespace

Value Runtime::callValue(const Value &Callee, const Value &ThisV,
                         const Value *Args, size_t NumArgs) {
  if (hasError())
    return Value::undefined();
  if (!Callee.isFunction()) {
    fail(Callee.toDisplayString() + " is not a function");
    return Value::undefined();
  }
  if (!enterCall())
    return Value::undefined();

  // Call entry is a safepoint: with the call's inputs rooted just above,
  // any collection requested since the last dispatch boundary runs here,
  // before the callee pointer is materialized.
  CallRoots Roots(TheHeap, Callee, ThisV, Args, NumArgs);
  TheHeap.safepoint();
  JSFunction *F = Roots.Callee.asFunction();

  Value Result;
  if (F->isNative()) {
    Result = F->native()(*this, Roots.ThisV, Args, NumArgs);
  } else {
    ++NumCalls;
    FunctionInfo *Info = F->info();
    ++Info->CallCount;
    if (metricsEnabled())
      metrics().functionTick(Info->Name);
    if (Observer)
      Observer->recordCall(Info, Args, NumArgs);
    bool Handled = false;
    if (Hooks)
      Handled = Hooks->onCall(F, Roots.ThisV, Args, NumArgs, Result);
    if (!Handled) {
      // The hook may have run a moving collection (it tenures compile
      // -task snapshots); re-derive the callee from its rooted slot.
      F = Roots.Callee.asFunction();
      Result = interpretCall(F, Roots.ThisV, Args, NumArgs);
    }
  }
  leaveCall();
  return Result;
}

Value Runtime::construct(const Value &Callee, const Value *Args,
                         size_t NumArgs) {
  if (!Callee.isFunction()) {
    fail(Callee.toDisplayString() + " is not a constructor");
    return Value::undefined();
  }
  JSFunction *F = Callee.asFunction();
  if (F->isNative())
    return F->native()(*this, Value::undefined(), Args, NumArgs);

  JSObject *Obj = TheHeap.allocate<JSObject>(Shapes.root());
  TempRoots Roots(TheHeap);
  Value ThisV = Value::object(Obj);
  Roots.add(ThisV);
  Value R = callValue(Callee, ThisV, Args, NumArgs);
  if (R.isObject() || R.isArray() || R.isFunction())
    return R;
  return ThisV;
}

Value Runtime::interpretCall(JSFunction *Callee, const Value &ThisV,
                             const Value *Args, size_t NumArgs) {
  Interpreter Interp(*this);
  return Interp.invoke(Callee, ThisV, Args, NumArgs);
}

Value Runtime::resumeFrame(InterpFrame &Frame) {
  Interpreter Interp(*this);
  return Interp.execute(Frame);
}

//===----------------------------------------------------------------------===//
// Builtins
//===----------------------------------------------------------------------===//

namespace {

Value builtinPrint(Runtime &RT, const Value &, const Value *Args,
                   size_t NumArgs) {
  std::string Line;
  for (size_t I = 0; I != NumArgs; ++I) {
    if (I)
      Line += ' ';
    Line += Args[I].toDisplayString();
  }
  RT.printLine(Line);
  return Value::undefined();
}

Value builtinArray(Runtime &RT, const Value &, const Value *Args,
                   size_t NumArgs) {
  if (NumArgs == 1 && Args[0].isNumber()) {
    int64_t N = static_cast<int64_t>(Runtime::toNumber(Args[0]));
    if (N < 0) {
      RT.fail("invalid array length");
      return Value::undefined();
    }
    std::vector<Value> Elems(static_cast<size_t>(N));
    return Value::array(RT.heap().allocate<JSArray>(std::move(Elems)));
  }
  std::vector<Value> Elems(Args, Args + NumArgs);
  return Value::array(RT.heap().allocate<JSArray>(std::move(Elems)));
}

Value builtinFromCharCode(Runtime &RT, const Value &, const Value *Args,
                          size_t NumArgs) {
  std::string S;
  for (size_t I = 0; I != NumArgs; ++I)
    S += static_cast<char>(Runtime::toInt32(Runtime::toNumber(Args[I])) & 0xFF);
  return RT.newStringValue(std::move(S));
}

Value builtinIsNaN(Runtime &RT, const Value &, const Value *Args,
                   size_t NumArgs) {
  double D = NumArgs > 0 ? Runtime::toNumber(Args[0]) : std::nan("");
  return Value::boolean(std::isnan(D));
}

Value builtinParseInt(Runtime &RT, const Value &, const Value *Args,
                      size_t NumArgs) {
  if (NumArgs == 0)
    return Value::makeDouble(std::nan(""));
  std::string S = Args[0].toDisplayString();
  int Radix = NumArgs > 1 ? Runtime::toInt32(Runtime::toNumber(Args[1])) : 10;
  if (Radix == 0)
    Radix = 10;
  char *End = nullptr;
  long long V = std::strtoll(S.c_str(), &End, Radix);
  if (End == S.c_str())
    return Value::makeDouble(std::nan(""));
  return Value::number(static_cast<double>(V));
}

Value builtinParseFloat(Runtime &RT, const Value &, const Value *Args,
                        size_t NumArgs) {
  if (NumArgs == 0)
    return Value::makeDouble(std::nan(""));
  std::string S = Args[0].toDisplayString();
  char *End = nullptr;
  double V = std::strtod(S.c_str(), &End);
  if (End == S.c_str())
    return Value::makeDouble(std::nan(""));
  return Value::number(V);
}

Value builtinGC(Runtime &RT, const Value &, const Value *, size_t) {
  RT.heap().collect();
  return Value::undefined();
}

double arg0(const Value *Args, size_t NumArgs) {
  return NumArgs > 0 ? Runtime::toNumber(Args[0]) : std::nan("");
}
double arg1(const Value *Args, size_t NumArgs) {
  return NumArgs > 1 ? Runtime::toNumber(Args[1]) : std::nan("");
}

Value mathSin(Runtime &, const Value &, const Value *A, size_t N) {
  return Value::makeDouble(std::sin(arg0(A, N)));
}
Value mathCos(Runtime &, const Value &, const Value *A, size_t N) {
  return Value::makeDouble(std::cos(arg0(A, N)));
}
Value mathTan(Runtime &, const Value &, const Value *A, size_t N) {
  return Value::makeDouble(std::tan(arg0(A, N)));
}
Value mathAtan(Runtime &, const Value &, const Value *A, size_t N) {
  return Value::makeDouble(std::atan(arg0(A, N)));
}
Value mathAtan2(Runtime &, const Value &, const Value *A, size_t N) {
  return Value::makeDouble(std::atan2(arg0(A, N), arg1(A, N)));
}
Value mathSqrt(Runtime &, const Value &, const Value *A, size_t N) {
  return Value::makeDouble(std::sqrt(arg0(A, N)));
}
Value mathAbs(Runtime &, const Value &, const Value *A, size_t N) {
  if (N > 0 && A[0].isInt32() && A[0].asInt32() != INT32_MIN)
    return Value::int32(std::abs(A[0].asInt32()));
  return Value::makeDouble(std::fabs(arg0(A, N)));
}
Value mathFloor(Runtime &, const Value &, const Value *A, size_t N) {
  if (N > 0 && A[0].isInt32())
    return A[0];
  return Value::number(std::floor(arg0(A, N)));
}
Value mathCeil(Runtime &, const Value &, const Value *A, size_t N) {
  if (N > 0 && A[0].isInt32())
    return A[0];
  return Value::number(std::ceil(arg0(A, N)));
}
Value mathRound(Runtime &, const Value &, const Value *A, size_t N) {
  if (N > 0 && A[0].isInt32())
    return A[0];
  return Value::number(Runtime::jsMathRound(arg0(A, N)));
}
Value mathPow(Runtime &, const Value &, const Value *A, size_t N) {
  return Value::number(std::pow(arg0(A, N), arg1(A, N)));
}
Value mathLog(Runtime &, const Value &, const Value *A, size_t N) {
  return Value::makeDouble(std::log(arg0(A, N)));
}
Value mathExp(Runtime &, const Value &, const Value *A, size_t N) {
  return Value::makeDouble(std::exp(arg0(A, N)));
}
Value mathMin(Runtime &, const Value &, const Value *A, size_t N) {
  double Best = std::numeric_limits<double>::infinity();
  for (size_t I = 0; I != N; ++I)
    Best = std::min(Best, Runtime::toNumber(A[I]));
  return Value::number(Best);
}
Value mathMax(Runtime &, const Value &, const Value *A, size_t N) {
  double Best = -std::numeric_limits<double>::infinity();
  for (size_t I = 0; I != N; ++I)
    Best = std::max(Best, Runtime::toNumber(A[I]));
  return Value::number(Best);
}
Value mathRandom(Runtime &RT, const Value &, const Value *, size_t) {
  return Value::makeDouble(RT.rng().nextDouble());
}

} // namespace

void Runtime::installGlobals() {
  Globals.assign(Prog->numGlobals(), Value::undefined());
  LengthId = Prog->names().intern("length");

  auto DefineFn = [this](const std::string &Name, NativeFn Fn) {
    Value V = Value::function(TheHeap.allocate<JSFunction>(Fn, Name));
    InternalRoots.push_back(V);
    return V;
  };

  for (uint32_t Slot = 0; Slot != Prog->numGlobals(); ++Slot) {
    const std::string &Name = Prog->globalName(Slot);
    if (Name == "print")
      Globals[Slot] = DefineFn("print", builtinPrint);
    else if (Name == "Array")
      Globals[Slot] = DefineFn("Array", builtinArray);
    else if (Name == "isNaN")
      Globals[Slot] = DefineFn("isNaN", builtinIsNaN);
    else if (Name == "parseInt")
      Globals[Slot] = DefineFn("parseInt", builtinParseInt);
    else if (Name == "parseFloat")
      Globals[Slot] = DefineFn("parseFloat", builtinParseFloat);
    else if (Name == "gc")
      Globals[Slot] = DefineFn("gc", builtinGC);
    else if (Name == "Infinity")
      Globals[Slot] = Value::makeDouble(std::numeric_limits<double>::infinity());
    else if (Name == "NaN")
      Globals[Slot] = Value::makeDouble(std::nan(""));
    else if (Name == "Math") {
      JSObject *Math = TheHeap.allocate<JSObject>(Shapes.root());
      Value MathV = Value::object(Math);
      InternalRoots.push_back(MathV);
      auto Def = [&](const char *N, NativeFn Fn) {
        Math->setProperty(Shapes, Prog->names().intern(N), DefineFn(N, Fn));
      };
      Def("sin", mathSin);
      Def("cos", mathCos);
      Def("tan", mathTan);
      Def("atan", mathAtan);
      Def("atan2", mathAtan2);
      Def("sqrt", mathSqrt);
      Def("abs", mathAbs);
      Def("floor", mathFloor);
      Def("ceil", mathCeil);
      Def("round", mathRound);
      Def("pow", mathPow);
      Def("log", mathLog);
      Def("exp", mathExp);
      Def("min", mathMin);
      Def("max", mathMax);
      Def("random", mathRandom);
      Math->setProperty(Shapes, Prog->names().intern("PI"),
                        Value::makeDouble(3.141592653589793));
      Math->setProperty(Shapes, Prog->names().intern("E"),
                        Value::makeDouble(2.718281828459045));
      Globals[Slot] = MathV;
    } else if (Name == "String") {
      JSObject *Str = TheHeap.allocate<JSObject>(Shapes.root());
      Value StrV = Value::object(Str);
      InternalRoots.push_back(StrV);
      Str->setProperty(Shapes, Prog->names().intern("fromCharCode"),
                       DefineFn("fromCharCode", builtinFromCharCode));
      Globals[Slot] = StrV;
    }
  }
}

//===----------------------------------------------------------------------===//
// Top-level entry points
//===----------------------------------------------------------------------===//

bool Runtime::load(const std::string &Source) {
  clearError();
  CompileResult CR = compileSource(Source, TheHeap);
  if (!CR.ok()) {
    fail("compile error: " + CR.Error);
    return false;
  }
  Prog = std::move(CR.Prog);
  installGlobals();
  // Tenure everything allocated so far — the program's constant-pool
  // strings/functions and the builtins just installed. Compile workers
  // read the constant pool lock-free, so nothing reachable from it may
  // sit in the (moving) nursery once compiles can start.
  if (TheHeap.nurseryEnabled())
    TheHeap.minorCollect();
  return true;
}

Value Runtime::run() {
  if (!Prog) {
    fail("no program loaded");
    return Value::undefined();
  }
  FunctionInfo *Main = Prog->main();
  // Top-level code runs as a closure with no environment.
  JSFunction *MainFn = TheHeap.allocate<JSFunction>(Main, nullptr);
  TempRoots Roots(TheHeap);
  Value MainV = Value::function(MainFn);
  Roots.add(MainV);
  if (!enterCall())
    return Value::undefined();
  Value R = interpretCall(MainV.asFunction(), Value::undefined(), nullptr, 0);
  leaveCall();
  return R;
}

Value Runtime::evaluate(const std::string &Source) {
  MetricsPhaseTimer ScriptPhase(Phase::Script);
  if (!telemetryEnabled(TelScript)) {
    if (!load(Source))
      return Value::undefined();
    return run();
  }
  uint64_t StartNs = telemetry().nowNs();
  Value R = load(Source) ? run() : Value::undefined();
  TelemetryEvent E;
  E.Kind = TelemetryEventKind::Script;
  E.setDetail("evaluate");
  E.DurNs = telemetry().nowNs() - StartNs;
  telemetry().record(E);
  return R;
}

Value Runtime::callGlobal(const std::string &Name,
                          const std::vector<Value> &Args) {
  if (!Prog) {
    fail("no program loaded");
    return Value::undefined();
  }
  uint32_t Slot = Prog->globalSlot(Name);
  if (Slot >= Globals.size()) {
    fail("unknown global '" + Name + "'");
    return Value::undefined();
  }
  return callValue(Globals[Slot], Value::undefined(),
                   Args.empty() ? nullptr : Args.data(), Args.size());
}
