//===- vm/Shape.cpp - Hidden-class object shapes --------------------------===//

#include "vm/Shape.h"

#include <cassert>

using namespace jitvs;

ShapeTree::ShapeTree() {
  Shapes.emplace_back(
      new Shape(nullptr, Shape::NoProp, 0, 0, /*Id=*/0));
  Root = Shapes.back().get();
}

const Shape *ShapeTree::transition(const Shape *From, uint32_t NameId) {
  assert(From->lookup(NameId) < 0 && "transition on an existing property");
  std::lock_guard<std::mutex> Lock(Mu);
  // The immutable fields of From never change, but its transition map is
  // shared mutable state: find-or-create under the tree mutex.
  Shape *Mutable = const_cast<Shape *>(From);
  auto It = Mutable->Transitions.find(NameId);
  if (It != Mutable->Transitions.end())
    return It->second;
  Shapes.emplace_back(new Shape(From, NameId, From->NumSlots,
                                From->NumSlots + 1,
                                static_cast<uint32_t>(Shapes.size())));
  Shape *Child = Shapes.back().get();
  Mutable->Transitions.emplace(NameId, Child);
  return Child;
}

size_t ShapeTree::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Shapes.size();
}
