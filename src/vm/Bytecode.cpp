//===- vm/Bytecode.cpp - Bytecode metadata and disassembly ----------------===//

#include "vm/Bytecode.h"

#include <cstdio>

using namespace jitvs;

const char *jitvs::opName(Op O) {
  switch (O) {
  case Op::Nop:
    return "nop";
  case Op::PushConst:
    return "pushconst";
  case Op::PushInt8:
    return "pushint8";
  case Op::PushUndefined:
    return "pushundefined";
  case Op::PushNull:
    return "pushnull";
  case Op::PushTrue:
    return "pushtrue";
  case Op::PushFalse:
    return "pushfalse";
  case Op::GetSlot:
    return "getslot";
  case Op::SetSlot:
    return "setslot";
  case Op::GetEnvSlot:
    return "getenvslot";
  case Op::SetEnvSlot:
    return "setenvslot";
  case Op::GetGlobal:
    return "getglobal";
  case Op::SetGlobal:
    return "setglobal";
  case Op::Dup:
    return "dup";
  case Op::Dup2:
    return "dup2";
  case Op::Pop:
    return "pop";
  case Op::Swap:
    return "swap";
  case Op::Add:
    return "add";
  case Op::Sub:
    return "sub";
  case Op::Mul:
    return "mul";
  case Op::Div:
    return "div";
  case Op::Mod:
    return "mod";
  case Op::Neg:
    return "neg";
  case Op::Pos:
    return "pos";
  case Op::Not:
    return "not";
  case Op::BitNot:
    return "bitnot";
  case Op::BitAnd:
    return "bitand";
  case Op::BitOr:
    return "bitor";
  case Op::BitXor:
    return "bitxor";
  case Op::Shl:
    return "shl";
  case Op::Shr:
    return "shr";
  case Op::UShr:
    return "ushr";
  case Op::Lt:
    return "lt";
  case Op::Le:
    return "le";
  case Op::Gt:
    return "gt";
  case Op::Ge:
    return "ge";
  case Op::Eq:
    return "eq";
  case Op::Ne:
    return "ne";
  case Op::StrictEq:
    return "stricteq";
  case Op::StrictNe:
    return "strictne";
  case Op::TypeOf:
    return "typeof";
  case Op::Jump:
    return "jump";
  case Op::JumpIfFalse:
    return "jumpiffalse";
  case Op::JumpIfTrue:
    return "jumpiftrue";
  case Op::LoopHead:
    return "loophead";
  case Op::Call:
    return "call";
  case Op::CallMethod:
    return "callmethod";
  case Op::New:
    return "new";
  case Op::Return:
    return "return";
  case Op::ReturnUndefined:
    return "returnundefined";
  case Op::NewArray:
    return "newarray";
  case Op::NewObject:
    return "newobject";
  case Op::InitProp:
    return "initprop";
  case Op::GetElem:
    return "getelem";
  case Op::SetElem:
    return "setelem";
  case Op::GetProp:
    return "getprop";
  case Op::SetProp:
    return "setprop";
  case Op::MakeClosure:
    return "makeclosure";
  case Op::GetThis:
    return "getthis";
  }
  JITVS_UNREACHABLE("bad Op");
}

uint32_t FunctionInfo::instructionLength(uint32_t PC) const {
  switch (opAt(PC)) {
  case Op::PushInt8:
    return 2;
  case Op::PushConst:
  case Op::GetSlot:
  case Op::SetSlot:
  case Op::GetGlobal:
  case Op::SetGlobal:
  case Op::NewArray:
  case Op::InitProp:
  case Op::GetProp:
  case Op::SetProp:
  case Op::MakeClosure:
    return 3;
  case Op::GetEnvSlot:
  case Op::SetEnvSlot:
    return 4; // opcode + u8 depth + u16 slot
  case Op::Jump:
  case Op::JumpIfFalse:
  case Op::JumpIfTrue:
    return 5;
  case Op::Call:
  case Op::New:
    return 2;
  case Op::CallMethod:
    return 4; // opcode + u16 name + u8 argc
  default:
    return 1;
  }
}

std::string FunctionInfo::disassemble() const {
  std::string Out;
  char Buf[128];
  std::snprintf(Buf, sizeof(Buf), "function %s (params=%u slots=%u env=%u)\n",
                Name.c_str(), NumParams, NumSlots, NumEnvSlots);
  Out += Buf;
  for (uint32_t PC = 0; PC < Code.size(); PC += instructionLength(PC)) {
    Op O = opAt(PC);
    std::snprintf(Buf, sizeof(Buf), "  %5u: %-14s", PC, opName(O));
    Out += Buf;
    switch (O) {
    case Op::PushInt8:
      std::snprintf(Buf, sizeof(Buf), " %d", i8At(PC + 1));
      Out += Buf;
      break;
    case Op::PushConst: {
      uint16_t Idx = u16At(PC + 1);
      std::snprintf(Buf, sizeof(Buf), " #%u  ; %s", Idx,
                    Constants[Idx].toDisplayString().c_str());
      Out += Buf;
      break;
    }
    case Op::GetSlot:
    case Op::SetSlot:
    case Op::GetGlobal:
    case Op::SetGlobal:
    case Op::NewArray:
    case Op::MakeClosure:
      std::snprintf(Buf, sizeof(Buf), " %u", u16At(PC + 1));
      Out += Buf;
      break;
    case Op::InitProp:
    case Op::GetProp:
    case Op::SetProp: {
      uint16_t NameId = u16At(PC + 1);
      std::snprintf(Buf, sizeof(Buf), " %u  ; %s", NameId,
                    Parent ? Parent->names().name(NameId).c_str() : "?");
      Out += Buf;
      break;
    }
    case Op::GetEnvSlot:
    case Op::SetEnvSlot:
      std::snprintf(Buf, sizeof(Buf), " depth=%u slot=%u", u8At(PC + 1),
                    u16At(PC + 2));
      Out += Buf;
      break;
    case Op::Jump:
    case Op::JumpIfFalse:
    case Op::JumpIfTrue:
      std::snprintf(Buf, sizeof(Buf), " -> %u", u32At(PC + 1));
      Out += Buf;
      break;
    case Op::Call:
    case Op::New:
      std::snprintf(Buf, sizeof(Buf), " argc=%u", u8At(PC + 1));
      Out += Buf;
      break;
    case Op::CallMethod:
      std::snprintf(Buf, sizeof(Buf), " name=%u argc=%u", u16At(PC + 1),
                    u8At(PC + 3));
      Out += Buf;
      break;
    default:
      break;
    }
    Out += '\n';
  }
  return Out;
}

FunctionInfo *Program::createFunction(std::string Name) {
  auto Info = std::make_unique<FunctionInfo>();
  Info->Name = std::move(Name);
  Info->Id = static_cast<uint32_t>(Functions.size());
  Info->Parent = this;
  Functions.push_back(std::move(Info));
  return Functions.back().get();
}

uint32_t NameTable::intern(const std::string &Name) {
  auto [It, Inserted] =
      Ids.try_emplace(Name, static_cast<uint32_t>(Names.size()));
  if (Inserted)
    Names.push_back(Name);
  return It->second;
}

uint32_t NameTable::lookup(const std::string &Name) const {
  auto It = Ids.find(Name);
  return It == Ids.end() ? ~0u : It->second;
}

uint32_t Program::globalSlot(const std::string &Name) {
  auto [It, Inserted] =
      GlobalSlots.try_emplace(Name, static_cast<uint32_t>(GlobalNames.size()));
  if (Inserted)
    GlobalNames.push_back(Name);
  return It->second;
}
