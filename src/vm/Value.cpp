//===- vm/Value.cpp - Boxed value operations ------------------------------===//

#include "vm/Value.h"

#include "vm/Object.h"

#include <cinttypes>
#include <cmath>
#include <cstring>

using namespace jitvs;

const char *jitvs::valueTagName(ValueTag Tag) {
  switch (Tag) {
  case ValueTag::Undefined:
    return "undefined";
  case ValueTag::Null:
    return "null";
  case ValueTag::Boolean:
    return "boolean";
  case ValueTag::Int32:
    return "int32";
  case ValueTag::Double:
    return "double";
  case ValueTag::String:
    return "string";
  case ValueTag::Object:
    return "object";
  case ValueTag::Array:
    return "array";
  case ValueTag::Function:
    return "function";
  }
  JITVS_UNREACHABLE("bad ValueTag");
}

Value Value::number(double D) {
  int32_t I = static_cast<int32_t>(D);
  // Canonicalize to Int32 when exactly representable; keep -0.0 a double.
  if (static_cast<double>(I) == D && !(D == 0.0 && std::signbit(D)))
    return int32(I);
  return makeDouble(D);
}

Value Value::string(JSString *S) {
  assert(S && "null string payload");
  Value V;
  V.Tag = ValueTag::String;
  V.Payload.Obj = S;
  return V;
}

Value Value::array(JSArray *A) {
  assert(A && "null array payload");
  Value V;
  V.Tag = ValueTag::Array;
  V.Payload.Obj = A;
  return V;
}

Value Value::object(JSObject *O) {
  assert(O && "null object payload");
  Value V;
  V.Tag = ValueTag::Object;
  V.Payload.Obj = O;
  return V;
}

Value Value::function(JSFunction *F) {
  assert(F && "null function payload");
  Value V;
  V.Tag = ValueTag::Function;
  V.Payload.Obj = F;
  return V;
}

JSString *Value::asString() const {
  assert(isString() && "not a string");
  return static_cast<JSString *>(Payload.Obj);
}

JSArray *Value::asArray() const {
  assert(isArray() && "not an array");
  return static_cast<JSArray *>(Payload.Obj);
}

JSObject *Value::asObject() const {
  assert(isObject() && "not an object");
  return static_cast<JSObject *>(Payload.Obj);
}

JSFunction *Value::asFunction() const {
  assert(isFunction() && "not a function");
  return static_cast<JSFunction *>(Payload.Obj);
}

bool Value::toBoolean() const {
  switch (Tag) {
  case ValueTag::Undefined:
  case ValueTag::Null:
    return false;
  case ValueTag::Boolean:
    return Payload.B;
  case ValueTag::Int32:
    return Payload.I != 0;
  case ValueTag::Double:
    return Payload.D != 0.0 && !std::isnan(Payload.D);
  case ValueTag::String:
    return asString()->length() != 0;
  case ValueTag::Object:
  case ValueTag::Array:
  case ValueTag::Function:
    return true;
  }
  JITVS_UNREACHABLE("bad ValueTag");
}

bool Value::strictEquals(const Value &Other) const {
  if (isNumber() && Other.isNumber())
    return asNumber() == Other.asNumber();
  if (Tag != Other.Tag)
    return false;
  switch (Tag) {
  case ValueTag::Undefined:
  case ValueTag::Null:
    return true;
  case ValueTag::Boolean:
    return Payload.B == Other.Payload.B;
  case ValueTag::String:
    return asString()->str() == Other.asString()->str();
  case ValueTag::Object:
  case ValueTag::Array:
  case ValueTag::Function:
    return Payload.Obj == Other.Payload.Obj;
  case ValueTag::Int32:
  case ValueTag::Double:
    break; // Handled by the numeric fast path above.
  }
  JITVS_UNREACHABLE("bad ValueTag");
}

bool Value::sameSpecializationValue(const Value &Other) const {
  if (Tag != Other.Tag)
    return false;
  switch (Tag) {
  case ValueTag::Undefined:
  case ValueTag::Null:
    return true;
  case ValueTag::Boolean:
    return Payload.B == Other.Payload.B;
  case ValueTag::Int32:
    return Payload.I == Other.Payload.I;
  case ValueTag::Double: {
    // Bitwise so that NaN == NaN for caching purposes.
    uint64_t A, B;
    std::memcpy(&A, &Payload.D, sizeof(A));
    std::memcpy(&B, &Other.Payload.D, sizeof(B));
    return A == B;
  }
  case ValueTag::String:
    return asString()->str() == Other.asString()->str();
  case ValueTag::Object:
  case ValueTag::Array:
  case ValueTag::Function:
    return Payload.Obj == Other.Payload.Obj;
  }
  JITVS_UNREACHABLE("bad ValueTag");
}

uint64_t Value::specializationHash() const {
  uint64_t H = static_cast<uint64_t>(Tag) * 0x9e3779b97f4a7c15ull;
  auto Mix = [&H](uint64_t X) {
    H ^= X + 0x9e3779b97f4a7c15ull + (H << 6) + (H >> 2);
  };
  switch (Tag) {
  case ValueTag::Undefined:
  case ValueTag::Null:
    break;
  case ValueTag::Boolean:
    Mix(Payload.B ? 1 : 2);
    break;
  case ValueTag::Int32:
    Mix(static_cast<uint64_t>(static_cast<uint32_t>(Payload.I)));
    break;
  case ValueTag::Double: {
    uint64_t Bits;
    std::memcpy(&Bits, &Payload.D, sizeof(Bits));
    Mix(Bits);
    break;
  }
  case ValueTag::String: {
    uint64_t SH = 1469598103934665603ull;
    for (char C : asString()->str()) {
      SH ^= static_cast<unsigned char>(C);
      SH *= 1099511628211ull;
    }
    Mix(SH);
    break;
  }
  case ValueTag::Object:
  case ValueTag::Array:
  case ValueTag::Function:
    Mix(reinterpret_cast<uint64_t>(Payload.Obj));
    break;
  }
  return H;
}

const char *Value::typeOfString() const {
  switch (Tag) {
  case ValueTag::Undefined:
    return "undefined";
  case ValueTag::Null:
    return "object";
  case ValueTag::Boolean:
    return "boolean";
  case ValueTag::Int32:
  case ValueTag::Double:
    return "number";
  case ValueTag::String:
    return "string";
  case ValueTag::Object:
  case ValueTag::Array:
    return "object";
  case ValueTag::Function:
    return "function";
  }
  JITVS_UNREACHABLE("bad ValueTag");
}

/// Renders \p D the way our `print` builtin does: integral doubles print
/// without a decimal point, others with up to 12 significant digits. This
/// only needs to be *deterministic* across optimization configurations,
/// not identical to ECMAScript's shortest round-trip algorithm.
static std::string formatNumber(double D) {
  if (std::isnan(D))
    return "NaN";
  if (std::isinf(D))
    return D > 0 ? "Infinity" : "-Infinity";
  if (D == static_cast<int64_t>(D) && std::fabs(D) < 1e15) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%" PRId64, static_cast<int64_t>(D));
    return Buf;
  }
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.12g", D);
  return Buf;
}

std::string Value::toDisplayString() const {
  switch (Tag) {
  case ValueTag::Undefined:
    return "undefined";
  case ValueTag::Null:
    return "null";
  case ValueTag::Boolean:
    return Payload.B ? "true" : "false";
  case ValueTag::Int32: {
    char Buf[16];
    std::snprintf(Buf, sizeof(Buf), "%d", Payload.I);
    return Buf;
  }
  case ValueTag::Double:
    return formatNumber(Payload.D);
  case ValueTag::String:
    return asString()->str();
  case ValueTag::Array: {
    // Arrays print as comma-joined elements, like Array.prototype.toString.
    std::string Out;
    const JSArray *A = asArray();
    for (size_t I = 0, E = A->length(); I != E; ++I) {
      if (I)
        Out += ',';
      const Value &Elem = A->getDense(I);
      if (!Elem.isUndefined() && !Elem.isNull())
        Out += Elem.toDisplayString();
    }
    return Out;
  }
  case ValueTag::Object:
    return "[object Object]";
  case ValueTag::Function:
    return "[function " + asFunction()->displayName() + "]";
  }
  JITVS_UNREACHABLE("bad ValueTag");
}
