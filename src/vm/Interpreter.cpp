//===- vm/Interpreter.cpp - Bytecode interpreter dispatch loop ------------===//

#include "vm/Interpreter.h"

#include "support/Assert.h"
#include "telemetry/Metrics.h"

using namespace jitvs;

InterpFrame::InterpFrame(Runtime &RT, FunctionInfo *Info)
    : RT(RT), Info(Info) {
  Slots.resize(Info->NumSlots);
  Stack.reserve(Info->MaxStackDepth);
  RT.heap().addRootSource(this);
}

InterpFrame::~InterpFrame() { RT.heap().removeRootSource(this); }

void InterpFrame::traceRoots(GCVisitor &Visitor) {
  for (Value &V : Slots)
    Visitor.visit(V);
  for (Value &V : Stack)
    Visitor.visit(V);
  for (Value &V : OrigArgs)
    Visitor.visit(V);
  Visitor.visit(ThisV);
  Visitor.visitPtr(Env);
  Visitor.visitPtr(ClosureEnv);
}

Value Interpreter::invoke(JSFunction *Callee, const Value &ThisV,
                          const Value *Args, size_t NumArgs) {
  FunctionInfo *Info = Callee->info();
  assert(Info && "invoke() requires a user function");

  InterpFrame Frame(RT, Info);
  Frame.ThisV = ThisV;
  Frame.ClosureEnv = Callee->environment();
  Frame.OrigArgs.assign(Args, Args + NumArgs);
  for (size_t I = 0, E = std::min<size_t>(NumArgs, Info->NumParams); I != E;
       ++I)
    Frame.Slots[I] = Args[I];
  if (Info->NumEnvSlots > 0) {
    Frame.Env =
        RT.heap().allocate<Environment>(Frame.ClosureEnv, Info->NumEnvSlots);
    for (auto [ParamSlot, EnvSlot] : Info->CapturedParams)
      Frame.Env->setSlot(EnvSlot, Frame.Slots[ParamSlot]);
  }
  return execute(Frame);
}

Value Interpreter::execute(InterpFrame &Frame) {
  MetricsPhaseTimer InterpPhase(Phase::Interpret);
  FunctionInfo *Info = Frame.Info;
  std::vector<Value> &Stack = Frame.Stack;
  std::vector<Value> &Slots = Frame.Slots;
  uint32_t PC = Frame.PC;

  auto Push = [&Stack](const Value &V) { Stack.push_back(V); };
  auto Pop = [&Stack]() {
    assert(!Stack.empty() && "operand stack underflow");
    Value V = Stack.back();
    Stack.pop_back();
    return V;
  };
  auto Top = [&Stack]() -> Value & {
    assert(!Stack.empty() && "operand stack underflow");
    return Stack.back();
  };

  // Records operand tags for a two-operand site.
  auto Feedback2 = [Info](uint32_t SitePC, const Value &A, const Value &B) {
    SiteFeedback &FB = Info->Feedback.at(SitePC);
    FB.A.add(A.tag());
    FB.B.add(B.tag());
  };
  auto Feedback1 = [Info](uint32_t SitePC, const Value &A) {
    Info->Feedback.at(SitePC).A.add(A.tag());
  };

  while (true) {
    if (RT.hasError())
      return Value::undefined();
    assert(PC < Info->Code.size() && "pc ran off the end of the bytecode");
    uint32_t OpPC = PC;
    Op O = Info->opAt(PC);
    PC += Info->instructionLength(PC);

    switch (O) {
    case Op::Nop:
      break;

    case Op::PushConst:
      Push(Info->Constants[Info->u16At(OpPC + 1)]);
      break;
    case Op::PushInt8:
      Push(Value::int32(Info->i8At(OpPC + 1)));
      break;
    case Op::PushUndefined:
      Push(Value::undefined());
      break;
    case Op::PushNull:
      Push(Value::null());
      break;
    case Op::PushTrue:
      Push(Value::boolean(true));
      break;
    case Op::PushFalse:
      Push(Value::boolean(false));
      break;

    case Op::GetSlot:
      Push(Slots[Info->u16At(OpPC + 1)]);
      break;
    case Op::SetSlot:
      Slots[Info->u16At(OpPC + 1)] = Pop();
      break;
    case Op::GetEnvSlot: {
      Environment *E = Frame.currentEnv()->hop(Info->u8At(OpPC + 1));
      Push(E->getSlot(Info->u16At(OpPC + 2)));
      break;
    }
    case Op::SetEnvSlot: {
      Environment *E = Frame.currentEnv()->hop(Info->u8At(OpPC + 1));
      Value V = Pop();
      E->setSlot(Info->u16At(OpPC + 2), V);
      RT.heap().writeBarrier(E, V);
      break;
    }
    case Op::GetGlobal:
      Push(RT.global(Info->u16At(OpPC + 1)));
      break;
    case Op::SetGlobal:
      RT.global(Info->u16At(OpPC + 1)) = Pop();
      break;

    case Op::Dup:
      Push(Top());
      break;
    case Op::Dup2: {
      assert(Stack.size() >= 2 && "dup2 underflow");
      Value B = Stack[Stack.size() - 1];
      Value A = Stack[Stack.size() - 2];
      Push(A);
      Push(B);
      break;
    }
    case Op::Pop:
      Pop();
      break;
    case Op::Swap: {
      assert(Stack.size() >= 2 && "swap underflow");
      std::swap(Stack[Stack.size() - 1], Stack[Stack.size() - 2]);
      break;
    }

    case Op::Add: {
      Value B = Pop(), A = Pop();
      Feedback2(OpPC, A, B);
      Value R = RT.genericAdd(A, B);
      if (RT.tookIntOverflow())
        Info->Feedback.at(OpPC).SawIntOverflow = true;
      Push(R);
      break;
    }
    case Op::Sub: {
      Value B = Pop(), A = Pop();
      Feedback2(OpPC, A, B);
      Value R = RT.genericSub(A, B);
      if (RT.tookIntOverflow())
        Info->Feedback.at(OpPC).SawIntOverflow = true;
      Push(R);
      break;
    }
    case Op::Mul: {
      Value B = Pop(), A = Pop();
      Feedback2(OpPC, A, B);
      Value R = RT.genericMul(A, B);
      if (RT.tookIntOverflow())
        Info->Feedback.at(OpPC).SawIntOverflow = true;
      Push(R);
      break;
    }
    case Op::Div: {
      Value B = Pop(), A = Pop();
      Feedback2(OpPC, A, B);
      Push(RT.genericDiv(A, B));
      break;
    }
    case Op::Mod: {
      Value B = Pop(), A = Pop();
      Feedback2(OpPC, A, B);
      Push(RT.genericMod(A, B));
      break;
    }
    case Op::Neg: {
      Value A = Pop();
      Feedback1(OpPC, A);
      Push(RT.genericNeg(A));
      break;
    }
    case Op::Pos: {
      Value A = Pop();
      Feedback1(OpPC, A);
      Push(Value::number(Runtime::toNumber(A)));
      break;
    }
    case Op::Not:
      Top() = Value::boolean(!Top().toBoolean());
      break;
    case Op::BitNot: {
      Value A = Pop();
      Feedback1(OpPC, A);
      Push(RT.genericBitNot(A));
      break;
    }
    case Op::BitAnd:
    case Op::BitOr:
    case Op::BitXor:
    case Op::Shl:
    case Op::Shr:
    case Op::UShr: {
      Value B = Pop(), A = Pop();
      Feedback2(OpPC, A, B);
      Push(RT.genericBitOp(O, A, B));
      break;
    }

    case Op::Lt: {
      Value B = Pop(), A = Pop();
      Feedback2(OpPC, A, B);
      Push(Value::boolean(RT.genericLess(A, B)));
      break;
    }
    case Op::Le: {
      Value B = Pop(), A = Pop();
      Feedback2(OpPC, A, B);
      Push(Value::boolean(RT.genericLessEq(A, B)));
      break;
    }
    case Op::Gt: {
      Value B = Pop(), A = Pop();
      Feedback2(OpPC, A, B);
      Push(Value::boolean(RT.genericLess(B, A)));
      break;
    }
    case Op::Ge: {
      Value B = Pop(), A = Pop();
      Feedback2(OpPC, A, B);
      Push(Value::boolean(RT.genericLessEq(B, A)));
      break;
    }
    case Op::Eq: {
      Value B = Pop(), A = Pop();
      Feedback2(OpPC, A, B);
      Push(Value::boolean(RT.genericLooseEquals(A, B)));
      break;
    }
    case Op::Ne: {
      Value B = Pop(), A = Pop();
      Feedback2(OpPC, A, B);
      Push(Value::boolean(!RT.genericLooseEquals(A, B)));
      break;
    }
    case Op::StrictEq: {
      Value B = Pop(), A = Pop();
      Feedback2(OpPC, A, B);
      Push(Value::boolean(A.strictEquals(B)));
      break;
    }
    case Op::StrictNe: {
      Value B = Pop(), A = Pop();
      Feedback2(OpPC, A, B);
      Push(Value::boolean(!A.strictEquals(B)));
      break;
    }

    case Op::TypeOf: {
      Value A = Pop();
      Push(RT.typeOfValue(A));
      break;
    }

    case Op::Jump:
      PC = Info->u32At(OpPC + 1);
      break;
    case Op::JumpIfFalse: {
      Value C = Pop();
      if (!C.toBoolean())
        PC = Info->u32At(OpPC + 1);
      break;
    }
    case Op::JumpIfTrue: {
      Value C = Pop();
      if (C.toBoolean())
        PC = Info->u32At(OpPC + 1);
      break;
    }
    case Op::LoopHead: {
      ++Info->BackEdgeCount;
      // GC safepoint: allocation never collects, so loops that allocate
      // without calling out still have to reach a point where the frame's
      // roots are complete. The operand stack is empty here and every
      // live value sits in Slots/Stack/Env — all traced by this frame.
      RT.heap().safepoint();
      // Safepoint: this hook (with the call hook in Runtime::callValue)
      // is a dispatch boundary — the engine publishes finished
      // background compiles and ticks the code-reclamation epoch inside
      // it. The operand stack is empty and Frame.PC names a resumable
      // bytecode, so a newly installed body can be OSR-entered here.
      if (ExecutionHooks *H = RT.hooks()) {
        assert(Stack.empty() && "operand stack must be empty at loop head");
        Frame.PC = OpPC;
        Value Result;
        if (H->onLoopHead(Frame, OpPC, Result))
          return Result;
        // The hook may have compiled but declined to enter; continue.
        PC = Frame.PC + Info->instructionLength(Frame.PC);
      }
      break;
    }

    case Op::Call: {
      uint8_t Argc = Info->u8At(OpPC + 1);
      assert(Stack.size() >= Argc + 1u && "call stack underflow");
      size_t Base = Stack.size() - Argc;
      Value Callee = Stack[Base - 1];
      Value R = RT.callValue(Callee, Value::undefined(),
                             Argc ? &Stack[Base] : nullptr, Argc);
      Stack.resize(Base - 1);
      Info->Feedback.at(OpPC).Result.add(R.tag());
      Push(R);
      break;
    }
    case Op::CallMethod: {
      uint16_t NameId = Info->u16At(OpPC + 1);
      uint8_t Argc = Info->u8At(OpPC + 3);
      assert(Stack.size() >= Argc + 1u && "callmethod stack underflow");
      size_t Base = Stack.size() - Argc;
      Value Recv = Stack[Base - 1];
      {
        SiteFeedback &FB = Info->Feedback.at(OpPC);
        FB.A.add(Recv.tag());
        if (Argc > 0)
          FB.B.add(Stack[Base].tag()); // First argument (intrinsics).
      }
      Value R;
      bool Done = false;
      // Method-call inline cache: shape compare -> slot load -> call.
      // The callee *value* is not cached (a slot overwrite must be
      // seen), only its slot; a non-function slot value falls back to
      // the generic path for the canonical error.
      if (RT.shapesEnabled() && Recv.isObject()) {
        SiteFeedback &FB = Info->Feedback.at(OpPC);
        JSObject *O = Recv.asObject();
        const Shape *S = O->shape();
        if (const PropICWay *W = FB.findWay(S)) {
          ++RT.icStats().CallHits;
          if (W->Slot >= 0) {
            Value Callee = O->slotAt(static_cast<uint32_t>(W->Slot));
            if (Callee.isFunction()) {
              R = RT.callValue(Callee, Recv, Argc ? &Stack[Base] : nullptr,
                               Argc);
              Done = true;
            }
          }
        } else {
          ++RT.icStats().CallMisses;
          bool WasMega = FB.Megamorphic;
          if (!FB.addWay(S, nullptr, S->lookup(NameId), RT.icWays()) &&
              !WasMega)
            ++RT.icStats().MegamorphicSites;
        }
      }
      if (!Done)
        R = RT.callMethod(Recv, NameId, Argc ? &Stack[Base] : nullptr, Argc);
      Stack.resize(Base - 1);
      Info->Feedback.at(OpPC).Result.add(R.tag());
      Push(R);
      break;
    }
    case Op::New: {
      uint8_t Argc = Info->u8At(OpPC + 1);
      assert(Stack.size() >= Argc + 1u && "new stack underflow");
      size_t Base = Stack.size() - Argc;
      Value Callee = Stack[Base - 1];
      Value R = RT.construct(Callee, Argc ? &Stack[Base] : nullptr, Argc);
      Stack.resize(Base - 1);
      Push(R);
      break;
    }
    case Op::Return:
      return Pop();
    case Op::ReturnUndefined:
      return Value::undefined();

    case Op::NewArray: {
      uint16_t Count = Info->u16At(OpPC + 1);
      assert(Stack.size() >= Count && "newarray stack underflow");
      // Allocate before popping so the elements stay rooted via the stack.
      JSArray *A = RT.heap().allocate<JSArray>();
      size_t Base = Stack.size() - Count;
      for (size_t I = 0; I != Count; ++I)
        A->push(Stack[Base + I]);
      Stack.resize(Base);
      Push(Value::array(A));
      break;
    }
    case Op::NewObject:
      Push(Value::object(RT.heap().allocate<JSObject>(RT.shapes().root())));
      break;
    case Op::InitProp: {
      Value V = Pop();
      Value Obj = Top();
      assert(Obj.isObject() && "initprop on non-object");
      Obj.asObject()->setProperty(RT.shapes(), Info->u16At(OpPC + 1), V);
      RT.heap().writeBarrier(Obj.asObject(), V);
      break;
    }
    case Op::GetElem: {
      Value Index = Pop(), Obj = Pop();
      Feedback2(OpPC, Obj, Index);
      Value R = RT.genericGetElem(Obj, Index);
      if (RT.tookOutOfBounds())
        Info->Feedback.at(OpPC).SawOutOfBounds = true;
      Push(R);
      break;
    }
    case Op::SetElem: {
      Value V = Pop(), Index = Pop(), Obj = Pop();
      Feedback2(OpPC, Obj, Index);
      Value R = RT.genericSetElem(Obj, Index, V);
      if (RT.tookOutOfBounds())
        Info->Feedback.at(OpPC).SawOutOfBounds = true;
      Push(R);
      break;
    }
    case Op::GetProp: {
      Value Obj = Pop();
      uint16_t NameId = Info->u16At(OpPC + 1);
      SiteFeedback &FB = Info->Feedback.at(OpPC);
      FB.A.add(Obj.tag());
      // Inline cache: shape compare -> direct slot load. Misses install
      // a new way until the way limit, then the site goes megamorphic
      // and stays on the generic path. The recorded ways double as the
      // shape feedback MIRBuilder specializes against.
      if (RT.shapesEnabled() && Obj.isObject()) {
        JSObject *O = Obj.asObject();
        const Shape *S = O->shape();
        if (const PropICWay *W = FB.findWay(S)) {
          ++RT.icStats().GetHits;
          Push(W->Slot < 0 ? Value::undefined() : O->slotAt(W->Slot));
          break;
        }
        ++RT.icStats().GetMisses;
        bool WasMega = FB.Megamorphic;
        if (!FB.addWay(S, nullptr, S->lookup(NameId), RT.icWays()) &&
            !WasMega)
          ++RT.icStats().MegamorphicSites;
        Push(O->getProperty(NameId));
        break;
      }
      Push(RT.genericGetProp(Obj, NameId));
      break;
    }
    case Op::SetProp: {
      Value V = Pop(), Obj = Pop();
      uint16_t NameId = Info->u16At(OpPC + 1);
      SiteFeedback &FB = Info->Feedback.at(OpPC);
      FB.A.add(Obj.tag());
      if (RT.shapesEnabled() && Obj.isObject()) {
        JSObject *O = Obj.asObject();
        const Shape *S = O->shape();
        if (const PropICWay *W = FB.findWay(S)) {
          ++RT.icStats().SetHits;
          // To != null caches the property-add transition; otherwise the
          // write is in-place.
          if (W->To)
            O->addSlot(W->To, V);
          else
            O->setSlotAt(static_cast<uint32_t>(W->Slot), V);
          RT.heap().writeBarrier(O, V);
          Push(V);
          break;
        }
        ++RT.icStats().SetMisses;
        int32_t Slot = S->lookup(NameId);
        const Shape *To = nullptr;
        if (Slot < 0) {
          To = RT.shapes().transition(S, NameId);
          Slot = static_cast<int32_t>(To->slot());
        }
        bool WasMega = FB.Megamorphic;
        if (!FB.addWay(S, To, Slot, RT.icWays()) && !WasMega)
          ++RT.icStats().MegamorphicSites;
        if (To)
          O->addSlot(To, V);
        else
          O->setSlotAt(static_cast<uint32_t>(Slot), V);
        RT.heap().writeBarrier(O, V);
        Push(V);
        break;
      }
      Push(RT.genericSetProp(Obj, NameId, V));
      break;
    }

    case Op::MakeClosure: {
      FunctionInfo *Inner = RT.program()->function(Info->u16At(OpPC + 1));
      JSFunction *F =
          RT.heap().allocate<JSFunction>(Inner, Frame.currentEnv());
      Push(Value::function(F));
      break;
    }
    case Op::GetThis:
      Push(Frame.ThisV);
      break;
    }
  }
}
