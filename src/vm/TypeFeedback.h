//===- vm/TypeFeedback.h - Interpreter type feedback ------------*- C++ -*-===//
///
/// \file
/// Per-bytecode-site type feedback recorded while interpreting and
/// consulted by the MIR builder to pick specialized instruction forms
/// (int32 arithmetic with overflow guards, double arithmetic, string
/// concatenation, generic VM calls). This is the analogue of the type
/// inference / observed-type-sets machinery IonMonkey relies on.
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_VM_TYPEFEEDBACK_H
#define JITVS_VM_TYPEFEEDBACK_H

#include "vm/Value.h"

#include <cstdint>
#include <unordered_map>

namespace jitvs {

class Shape;

/// A small set of observed value tags, one bit per ValueTag.
class TypeSet {
public:
  TypeSet() = default;

  void add(ValueTag Tag) { Bits |= bit(Tag); }
  bool has(ValueTag Tag) const { return Bits & bit(Tag); }
  bool empty() const { return Bits == 0; }

  /// \returns true if every observed tag is Int32.
  bool isOnlyInt32() const { return Bits != 0 && Bits == bit(ValueTag::Int32); }
  /// \returns true if every observed tag is Int32 or Double.
  bool isOnlyNumber() const {
    uint16_t NumBits = bit(ValueTag::Int32) | bit(ValueTag::Double);
    return Bits != 0 && (Bits & ~NumBits) == 0;
  }
  /// \returns true if every observed tag is String.
  bool isOnlyString() const {
    return Bits != 0 && Bits == bit(ValueTag::String);
  }
  /// \returns true if every observed tag is Array.
  bool isOnlyArray() const { return Bits != 0 && Bits == bit(ValueTag::Array); }
  /// \returns true if every observed tag is Boolean.
  bool isOnlyBoolean() const {
    return Bits != 0 && Bits == bit(ValueTag::Boolean);
  }
  /// \returns true if exactly the single tag \p Tag was observed.
  bool isOnly(ValueTag Tag) const { return Bits != 0 && Bits == bit(Tag); }

  uint16_t rawBits() const { return Bits; }

private:
  static uint16_t bit(ValueTag Tag) {
    return static_cast<uint16_t>(1u << static_cast<unsigned>(Tag));
  }
  uint16_t Bits = 0;
};

/// One way of a property-site inline cache: a receiver shape plus what
/// the site does for it. Shape pointers stay valid for the Runtime's
/// lifetime (vm/Shape.h), so copying ways into FeedbackSnapshot is safe.
struct PropICWay {
  const Shape *S = nullptr;  ///< Receiver shape this way matches.
  /// SetProp only: the child shape a property-add transitions to;
  /// nullptr when the write is in-place (the property already existed).
  const Shape *To = nullptr;
  /// Slot index: the slot to load/store, the appended slot for a
  /// transitioning SetProp, or -1 for a GetProp of an absent property.
  int32_t Slot = -1;
};

/// Feedback recorded for one bytecode site.
struct SiteFeedback {
  TypeSet A;      ///< First operand (or receiver / sole operand).
  TypeSet B;      ///< Second operand, when present.
  TypeSet Result; ///< Observed results (used for call return values).

  // Deoptimization hints fed back by native-code bailouts.
  bool SawIntOverflow = false; ///< Int32 arithmetic overflowed.
  bool SawOutOfBounds = false; ///< Element access was out of bounds / grew.
  bool SawNonInt32Index = false;

  // --- Property-site inline cache (GetProp / SetProp / CallMethod) ---
  /// Hard ceiling on the way count (JITVS_IC_WAYS clamps within this).
  static constexpr unsigned MaxICWays = 4;
  PropICWay Ways[MaxICWays];
  uint8_t NumWays = 0;
  /// The site saw more distinct receiver shapes than the way limit:
  /// stop recording and stay on the generic path for good.
  bool Megamorphic = false;

  /// \returns the way matching \p S, or nullptr on an IC miss.
  const PropICWay *findWay(const Shape *S) const {
    for (unsigned I = 0; I < NumWays; ++I)
      if (Ways[I].S == S)
        return &Ways[I];
    return nullptr;
  }

  /// Installs a new way after a miss (first \p Limit ways win; beyond
  /// that the site goes megamorphic). \returns the installed way, or
  /// nullptr when the site is (or just went) megamorphic.
  PropICWay *addWay(const Shape *S, const Shape *To, int32_t Slot,
                    unsigned Limit) {
    if (Megamorphic)
      return nullptr;
    if (NumWays >= Limit || NumWays >= MaxICWays) {
      Megamorphic = true;
      return nullptr;
    }
    Ways[NumWays] = {S, To, Slot};
    return &Ways[NumWays++];
  }
};

/// Feedback for a whole function, keyed by bytecode offset.
class FeedbackMap {
public:
  SiteFeedback &at(uint32_t PC) { return Sites[PC]; }

  /// \returns the feedback for \p PC, or nullptr when never recorded.
  const SiteFeedback *find(uint32_t PC) const {
    auto It = Sites.find(PC);
    return It == Sites.end() ? nullptr : &It->second;
  }

  void clear() { Sites.clear(); }
  size_t size() const { return Sites.size(); }

private:
  std::unordered_map<uint32_t, SiteFeedback> Sites;
};

struct FunctionInfo;

/// An immutable whole-program copy of type feedback, captured on the
/// main thread when a compile job is enqueued. Background compiles read
/// the snapshot instead of the live `FunctionInfo::Feedback` maps the
/// interpreter keeps mutating; it covers every function because inlining
/// reads callee feedback too. Once built it is never modified, so worker
/// threads may read it without synchronization.
class FeedbackSnapshot {
public:
  void add(const FunctionInfo *Info, const FeedbackMap &Map) {
    ByFunc.emplace(Info, Map);
  }

  /// \returns the snapshotted feedback for \p PC in \p Info, or nullptr
  /// when the site (or the whole function) was never recorded.
  const SiteFeedback *find(const FunctionInfo *Info, uint32_t PC) const {
    auto It = ByFunc.find(Info);
    return It == ByFunc.end() ? nullptr : It->second.find(PC);
  }

private:
  std::unordered_map<const FunctionInfo *, FeedbackMap> ByFunc;
};

} // namespace jitvs

#endif // JITVS_VM_TYPEFEEDBACK_H
