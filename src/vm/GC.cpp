//===- vm/GC.cpp - Mark-sweep collection ----------------------------------===//

#include "vm/GC.h"

#include "telemetry/Metrics.h"
#include "vm/Object.h"

#include <algorithm>

using namespace jitvs;

RootSource::~RootSource() = default;

TempRoots::TempRoots(Heap &H) : TheHeap(H) { TheHeap.addRootSource(this); }

TempRoots::~TempRoots() { TheHeap.removeRootSource(this); }

Heap::~Heap() {
  GCObject *Obj = Head;
  while (Obj) {
    GCObject *Next = Obj->Next;
    delete Obj;
    Obj = Next;
  }
}

Heap::DetachedChain Heap::detachAllocatedSince(GCObject *Mark) {
  DetachedChain Chain;
  if (Head == Mark)
    return Chain;
  Chain.Head = Head;
  GCObject *Obj = Head;
  while (true) {
    ++Chain.Count;
    if (Obj->Next == Mark)
      break;
    Obj = Obj->Next;
    assert(Obj && "allocation mark not found on the heap's object list");
  }
  Chain.Tail = Obj;
  Obj->Next = nullptr;
  Head = Mark;
  NumObjects -= Chain.Count;
  AllocationsSinceGC -= std::min(AllocationsSinceGC, Chain.Count);
  return Chain;
}

void Heap::adoptChain(const DetachedChain &Chain) {
  if (Chain.empty())
    return;
  Chain.Tail->Next = Head;
  Head = Chain.Head;
  NumObjects += Chain.Count;
  AllocationsSinceGC += Chain.Count;
}

void Heap::freeChain(const DetachedChain &Chain) {
  GCObject *Obj = Chain.Head;
  while (Obj) {
    GCObject *Next = Obj->Next;
    delete Obj;
    Obj = Next;
  }
}

void Heap::addRootSource(RootSource *Source) { Sources.push_back(Source); }

void Heap::removeRootSource(RootSource *Source) {
  // Sources nest like a stack (frames, temp-root scopes), so the match is
  // almost always at the back.
  auto It = std::find(Sources.rbegin(), Sources.rend(), Source);
  assert(It != Sources.rend() && "removing unregistered root source");
  Sources.erase(std::next(It).base());
}

void Heap::collect() {
  MetricsPhaseTimer GCPhase(Phase::GC);
  AllocationsSinceGC = 0;
  ++NumCollections;
  size_t Before = NumObjects;

  // Mark phase.
  std::vector<GCObject *> Stack;
  GCMarker Marker(Stack);
  for (RootSource *Source : Sources)
    Source->markRoots(Marker);
  while (!Stack.empty()) {
    GCObject *Obj = Stack.back();
    Stack.pop_back();
    traceObject(Obj, Marker);
  }

  // Sweep phase.
  GCObject **Link = &Head;
  while (GCObject *Obj = *Link) {
    if (Obj->Marked) {
      Obj->Marked = false;
      Link = &Obj->Next;
      continue;
    }
    *Link = Obj->Next;
    delete Obj;
    --NumObjects;
  }

  if (metricsEnabled()) {
    metrics().addCounter("gc.collections");
    metrics().addCounter("gc.objects_swept", Before - NumObjects);
    metrics().setGauge("gc.objects_live", static_cast<double>(NumObjects));
  }
}
