//===- vm/GC.cpp - Generational collection --------------------------------===//

#include "vm/GC.h"

#include "telemetry/Metrics.h"
#include "vm/Object.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

using namespace jitvs;

RootSource::~RootSource() = default;

TempRoots::TempRoots(Heap &H) : TheHeap(H) { TheHeap.addRootSource(this); }

TempRoots::~TempRoots() { TheHeap.removeRootSource(this); }

Heap::Heap() {
  size_t NurseryBytes = DefaultNurseryBytes;
  if (const char *Env = std::getenv("JITVS_NURSERY_KB"))
    NurseryBytes = static_cast<size_t>(std::strtoull(Env, nullptr, 10)) * 1024;
  if (const char *Env = std::getenv("JITVS_GC_STRESS"))
    StressGC = *Env && std::strcmp(Env, "0") != 0 && std::strcmp(Env, "off") != 0;
  if (NurseryBytes) {
    NurseryMem = std::make_unique<char[]>(NurseryBytes);
    NurseryBase = NurseryMem.get();
    NurseryTop = NurseryBase;
    NurseryEnd = NurseryBase + NurseryBytes;
    NurseryEnabled = true;
  }
}

Heap::~Heap() {
  // Nursery residents were placement-constructed in the bump buffer: run
  // their destructors by hand, then free the old-space list.
  for (GCObject *Obj : NurseryObjs)
    destroyObject(Obj);
  GCObject *Obj = Head;
  while (Obj) {
    GCObject *Next = Obj->Next;
    deleteObject(Obj);
    Obj = Next;
  }
}

Heap::DetachedChain Heap::detachAllocatedSince(GCObject *Mark) {
  assert(!NurseryEnabled &&
         "donation requires a nursery-disabled (worker) heap: nursery "
         "objects are not on the old-space list and are not pointer-stable");
  DetachedChain Chain;
  if (Head == Mark)
    return Chain;
  Chain.Head = Head;
  GCObject *Obj = Head;
  while (true) {
    ++Chain.Count;
    if (Obj->Next == Mark)
      break;
    Obj = Obj->Next;
    assert(Obj && "allocation mark not found on the heap's object list");
  }
  Chain.Tail = Obj;
  Obj->Next = nullptr;
  Head = Mark;
  NumObjects -= Chain.Count;
  AllocationsSinceGC -= std::min(AllocationsSinceGC, Chain.Count);
  return Chain;
}

void Heap::adoptChain(const DetachedChain &Chain) {
  if (Chain.empty())
    return;
  Chain.Tail->Next = Head;
  Head = Chain.Head;
  NumObjects += Chain.Count;
  AllocationsSinceGC += Chain.Count;
  if (AllocationsSinceGC >= Threshold)
    MajorRequested = true;
}

void Heap::freeChain(const DetachedChain &Chain) {
  GCObject *Obj = Chain.Head;
  while (Obj) {
    GCObject *Next = Obj->Next;
    deleteObject(Obj);
    Obj = Next;
  }
}

void Heap::addRootSource(RootSource *Source) { Sources.push_back(Source); }

void Heap::removeRootSource(RootSource *Source) {
  // Sources nest like a stack (frames, temp-root scopes), so the match is
  // almost always at the back.
  auto It = std::find(Sources.rbegin(), Sources.rend(), Source);
  assert(It != Sources.rend() && "removing unregistered root source");
  Sources.erase(std::next(It).base());
}

void Heap::setNurseryEnabled(bool Enabled) {
  if (NurseryEnabled && !Enabled && !NurseryObjs.empty())
    minorCollect(); // Tenure current residents before stores stop
                    // being barriered.
  if (Enabled && !NurseryMem) {
    NurseryMem = std::make_unique<char[]>(DefaultNurseryBytes);
    NurseryBase = NurseryMem.get();
    NurseryTop = NurseryBase;
    NurseryEnd = NurseryBase + DefaultNurseryBytes;
  }
  NurseryEnabled = Enabled;
}

void Heap::safepointSlow() {
  if (MajorRequested)
    collect();
  else
    minorCollect();
}

namespace jitvs {

/// The minor collection's visitor: evacuates nursery referents into the
/// old generation and rewrites the visited slot to the new address.
class NurseryEvacuator final : public GCVisitor {
public:
  explicit NurseryEvacuator(Heap &H) : H(H) {}

  void visitObj(GCObject *&Obj) override {
    if (!Obj || !H.inNursery(Obj))
      return;
    Obj = H.evacuate(Obj);
  }

private:
  Heap &H;
};

} // namespace jitvs

GCObject *Heap::evacuate(GCObject *Obj) {
  if (Obj->Flags & GCObject::ForwardedFlag)
    return Obj->Next;
  GCObject *Copy = nullptr;
  switch (Obj->Kind) {
  case GCKind::String:
    Copy = new JSString(std::move(*static_cast<JSString *>(Obj)));
    break;
  case GCKind::Array:
    Copy = new JSArray(std::move(*static_cast<JSArray *>(Obj)));
    break;
  case GCKind::Object:
    Copy = new JSObject(std::move(*static_cast<JSObject *>(Obj)));
    break;
  case GCKind::Function:
    Copy = new JSFunction(std::move(*static_cast<JSFunction *>(Obj)));
    break;
  case GCKind::Environment:
    Copy = new Environment(std::move(*static_cast<Environment *>(Obj)));
    break;
  }
  // Promote into the old generation (counts toward the major-GC
  // threshold like any other tenured allocation).
  Copy->Next = Head;
  Head = Copy;
  ++NumObjects;
  ++NumPromoted;
  if (++AllocationsSinceGC >= Threshold)
    MajorRequested = true;
  // Leave a forwarding pointer in the hollowed-out original.
  Obj->Flags |= GCObject::ForwardedFlag;
  Obj->Next = Copy;
  EvacScanList.push_back(Copy);
  return Copy;
}

void Heap::minorCollect() {
  MetricsPhaseTimer GCPhase(Phase::GC);
  MinorRequested = false;
  ++NumMinorCollections;
  size_t NurseryBefore = NurseryObjs.size();
  size_t PromotedBefore = NumPromoted;

  NurseryEvacuator Evac(*this);

  // Roots: every registered source, with slots updated in place.
  for (RootSource *Source : Sources)
    Source->traceRoots(Evac);

  // Remembered set: old objects holding (or suspected of holding) young
  // edges. Their contents are rewritten to the promoted copies.
  for (GCObject *Obj : RememberedSet) {
    Obj->Flags &= ~GCObject::RememberedFlag;
    traceObject(Obj, Evac);
  }
  RememberedSet.clear();

  // Transitive closure over everything the survivors reference.
  while (!EvacScanList.empty()) {
    GCObject *Obj = EvacScanList.back();
    EvacScanList.pop_back();
    traceObject(Obj, Evac);
  }

  // Every nursery original is now either dead or a moved-from shell:
  // run destructors and reset the bump pointer. (NumObjects counts the
  // old generation only; survivors entered it at promotion.)
  for (GCObject *Obj : NurseryObjs)
    destroyObject(Obj);
  NurseryObjs.clear();
  NurseryTop = NurseryBase;

  if (metricsEnabled()) {
    metrics().addCounter("gc.minor_collections");
    metrics().addCounter("gc.minor_promoted", NumPromoted - PromotedBefore);
    metrics().addCounter("gc.minor_swept",
                         NurseryBefore - (NumPromoted - PromotedBefore));
    metrics().setGauge("gc.objects_live", static_cast<double>(NumObjects));
  }
}

void Heap::collect() {
  // Evacuate the nursery first so the mark-sweep phase sees a single
  // (old) generation; promoted survivors are immediately marked through
  // the same roots.
  if (NurseryEnabled)
    minorCollect(); // Also drains the remembered set, so the sweep
                    // below cannot leave it dangling.
  MinorRequested = false;
  MajorRequested = false;
  markAndSweepOld();
}

void Heap::markAndSweepOld() {
  MetricsPhaseTimer GCPhase(Phase::GC);
  AllocationsSinceGC = 0;
  ++NumCollections;
  size_t Before = NumObjects;

  // Mark phase.
  std::vector<GCObject *> Stack;
  GCMarker Marker(Stack);
  for (RootSource *Source : Sources)
    Source->traceRoots(Marker);
  while (!Stack.empty()) {
    GCObject *Obj = Stack.back();
    Stack.pop_back();
    traceObject(Obj, Marker);
  }

  // Sweep phase. Remembered objects stay pinned regardless of marks:
  // the remembered set holds raw pointers that the next minor collection
  // will dereference. (Entries are rare and short-lived — the set is
  // drained at every minor collection.)
  GCObject **Link = &Head;
  while (GCObject *Obj = *Link) {
    if (Obj->Flags & (GCObject::MarkedFlag | GCObject::RememberedFlag)) {
      Obj->Flags &= ~GCObject::MarkedFlag;
      Link = &Obj->Next;
      continue;
    }
    *Link = Obj->Next;
    deleteObject(Obj);
    --NumObjects;
  }

  if (metricsEnabled()) {
    metrics().addCounter("gc.collections");
    metrics().addCounter("gc.objects_swept", Before - NumObjects);
    metrics().setGauge("gc.objects_live", static_cast<double>(NumObjects));
  }
}
