//===- vm/GC.cpp - Mark-sweep collection ----------------------------------===//

#include "vm/GC.h"

#include "telemetry/Metrics.h"
#include "vm/Object.h"

#include <algorithm>

using namespace jitvs;

RootSource::~RootSource() = default;

TempRoots::TempRoots(Heap &H) : TheHeap(H) { TheHeap.addRootSource(this); }

TempRoots::~TempRoots() { TheHeap.removeRootSource(this); }

Heap::~Heap() {
  GCObject *Obj = Head;
  while (Obj) {
    GCObject *Next = Obj->Next;
    delete Obj;
    Obj = Next;
  }
}

void Heap::addRootSource(RootSource *Source) { Sources.push_back(Source); }

void Heap::removeRootSource(RootSource *Source) {
  // Sources nest like a stack (frames, temp-root scopes), so the match is
  // almost always at the back.
  auto It = std::find(Sources.rbegin(), Sources.rend(), Source);
  assert(It != Sources.rend() && "removing unregistered root source");
  Sources.erase(std::next(It).base());
}

void Heap::collect() {
  MetricsPhaseTimer GCPhase(Phase::GC);
  AllocationsSinceGC = 0;
  ++NumCollections;
  size_t Before = NumObjects;

  // Mark phase.
  std::vector<GCObject *> Stack;
  GCMarker Marker(Stack);
  for (RootSource *Source : Sources)
    Source->markRoots(Marker);
  while (!Stack.empty()) {
    GCObject *Obj = Stack.back();
    Stack.pop_back();
    traceObject(Obj, Marker);
  }

  // Sweep phase.
  GCObject **Link = &Head;
  while (GCObject *Obj = *Link) {
    if (Obj->Marked) {
      Obj->Marked = false;
      Link = &Obj->Next;
      continue;
    }
    *Link = Obj->Next;
    delete Obj;
    --NumObjects;
  }

  if (metricsEnabled()) {
    metrics().addCounter("gc.collections");
    metrics().addCounter("gc.objects_swept", Before - NumObjects);
    metrics().setGauge("gc.objects_live", static_cast<double>(NumObjects));
  }
}
