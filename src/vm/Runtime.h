//===- vm/Runtime.h - MiniJS execution environment --------------*- C++ -*-===//
///
/// \file
/// The Runtime owns the heap, the loaded program, global variables and
/// builtins, and routes every call through a single dispatch point so the
/// JIT engine (through ExecutionHooks) and the call profiler can observe
/// and intercept execution — the analogue of the SpiderMonkey /
/// IonMonkey interplay in Figure 5 of the paper.
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_VM_RUNTIME_H
#define JITVS_VM_RUNTIME_H

#include "support/RNG.h"
#include "vm/Bytecode.h"
#include "vm/GC.h"
#include "vm/Object.h"
#include "vm/Shape.h"
#include "vm/Value.h"

#include <memory>
#include <string>
#include <vector>

namespace jitvs {

class Runtime;
struct InterpFrame;

/// Interface the JIT engine implements to intercept execution.
class ExecutionHooks {
public:
  virtual ~ExecutionHooks();

  /// Called for every user-function invocation before interpreting. If the
  /// hook fully executes the call (native code, possibly with bailouts), it
  /// stores the result in \p Result and returns true.
  virtual bool onCall(JSFunction *Callee, const Value &ThisV,
                      const Value *Args, size_t NumArgs, Value &Result) = 0;

  /// Called by the interpreter at each LoopHead. If the hook performs
  /// on-stack replacement and finishes the frame natively, it stores the
  /// frame's return value in \p Result and returns true.
  virtual bool onLoopHead(InterpFrame &Frame, uint32_t PC, Value &Result) = 0;
};

/// Interface for observing calls (Section 2 instrumentation: invocation
/// histograms, argument-set histograms, parameter types).
class CallObserver {
public:
  virtual ~CallObserver();
  virtual void recordCall(FunctionInfo *Callee, const Value *Args,
                          size_t NumArgs) = 0;
};

/// The MiniJS execution environment.
class Runtime {
public:
  Runtime();
  ~Runtime();
  Runtime(const Runtime &) = delete;
  Runtime &operator=(const Runtime &) = delete;

  /// Compiles \p Source and loads it (installing globals and builtins).
  /// \returns false and sets the error message on compile errors.
  bool load(const std::string &Source);

  /// Runs the loaded program's top-level code.
  /// \returns the completion value, or undefined on error (check
  /// hasError()).
  Value run();

  /// Convenience: load + run.
  Value evaluate(const std::string &Source);

  /// Calls a global function by name with the given arguments.
  Value callGlobal(const std::string &Name, const std::vector<Value> &Args);

  // --- Call dispatch (used by interpreter, native code and embedders) ---

  /// Calls \p Callee with \p ThisV and arguments. Reports an error for
  /// non-callable values.
  Value callValue(const Value &Callee, const Value &ThisV, const Value *Args,
                  size_t NumArgs);

  /// `new Callee(args...)`.
  Value construct(const Value &Callee, const Value *Args, size_t NumArgs);

  // --- Error handling (no exceptions; MiniJS has no try/catch) ---
  void fail(const std::string &Msg) {
    if (!HadError) {
      HadError = true;
      ErrorMsg = Msg;
    }
  }
  bool hasError() const { return HadError; }
  const std::string &errorMessage() const { return ErrorMsg; }
  void clearError() {
    HadError = false;
    ErrorMsg.clear();
  }

  // --- Services used by the interpreter and native code ---
  Heap &heap() { return TheHeap; }
  Program *program() { return Prog.get(); }
  RNG &rng() { return Rand; }

  // --- Hidden-class shapes and property inline caches (vm/Shape.h) ---
  ShapeTree &shapes() { return Shapes; }

  /// Master switch for the shape-guarded fast paths: interpreter inline
  /// caches and (because disabling also stops IC way recording) the
  /// JIT's shape-specialized property MIR. Objects always carry shapes —
  /// this gates the optimization, not the storage model. Env escape
  /// hatch: JITVS_SHAPES=off|0.
  bool shapesEnabled() const { return ShapesOn; }
  void setShapesEnabled(bool On) { ShapesOn = On; }

  /// Distinct receiver shapes a property site caches before going
  /// megamorphic (1..SiteFeedback::MaxICWays; env: JITVS_IC_WAYS).
  unsigned icWays() const { return ICWays; }
  void setICWays(unsigned N);

  /// Aggregate inline-cache counters across all sites (telemetry).
  struct ICStats {
    uint64_t GetHits = 0, GetMisses = 0;
    uint64_t SetHits = 0, SetMisses = 0;
    uint64_t CallHits = 0, CallMisses = 0;
    uint64_t MegamorphicSites = 0; ///< Sites that exhausted the way limit.
  };
  ICStats &icStats() { return TheICStats; }
  const ICStats &icStats() const { return TheICStats; }
  /// Folds IC counters and the shape count into the global metrics
  /// registry under "shape.*" / "ic.*" (no-op when metrics are off).
  void publishShapeMetrics();

  Value &global(uint32_t Slot) {
    assert(Slot < Globals.size() && "bad global slot");
    return Globals[Slot];
  }

  JSString *newString(std::string S) {
    return TheHeap.allocate<JSString>(std::move(S));
  }
  Value newStringValue(std::string S) {
    return Value::string(newString(std::move(S)));
  }

  /// Interns \p Name in the loaded program's name table.
  uint32_t internName(const std::string &Name) {
    return Prog->names().intern(Name);
  }
  const std::string &nameOf(uint32_t Id) const {
    return Prog->names().name(Id);
  }

  /// Pre-interned ids for hot property/method names (~0u when the program
  /// never mentions them and nothing interned them yet).
  uint32_t lengthNameId() const { return LengthId; }

  // --- Output of the print builtin ---
  void printLine(const std::string &S);
  const std::string &output() const { return Output; }
  void clearOutput() { Output.clear(); }
  void setEchoOutput(bool Echo) { EchoOutput = Echo; }

  // --- Hooks ---
  void setHooks(ExecutionHooks *H) { Hooks = H; }
  ExecutionHooks *hooks() { return Hooks; }
  void setCallObserver(CallObserver *O) { Observer = O; }

  // --- Call depth guard (checkoverrecursed) ---
  bool enterCall() {
    if (++CallDepth > MaxCallDepth) {
      fail("too much recursion");
      --CallDepth;
      return false;
    }
    return true;
  }
  void leaveCall() { --CallDepth; }

  // --- Generic operation helpers (shared by interpreter and native) ---
  // Each reports errors through fail(); results are undefined on error.
  Value genericAdd(const Value &A, const Value &B);
  Value genericSub(const Value &A, const Value &B);
  Value genericMul(const Value &A, const Value &B);
  Value genericDiv(const Value &A, const Value &B);
  Value genericMod(const Value &A, const Value &B);
  Value genericNeg(const Value &A);
  Value genericBitOp(Op O, const Value &A, const Value &B);
  Value genericBitNot(const Value &A);
  bool genericLess(const Value &A, const Value &B);      ///< A < B
  bool genericLessEq(const Value &A, const Value &B);    ///< A <= B
  bool genericLooseEquals(const Value &A, const Value &B);
  Value genericGetElem(const Value &Obj, const Value &Index);
  Value genericSetElem(const Value &Obj, const Value &Index, const Value &V);
  Value genericGetProp(const Value &Obj, uint32_t NameId);
  Value genericSetProp(const Value &Obj, uint32_t NameId, const Value &V);
  Value callMethod(const Value &Recv, uint32_t NameId, const Value *Args,
                   size_t NumArgs);
  Value typeOfValue(const Value &V);

  /// Read-and-clear: last int32 arithmetic helper overflowed into a
  /// double result (feedback for type specialization).
  bool tookIntOverflow() {
    bool F = IntOverflowFlag;
    IntOverflowFlag = false;
    return F;
  }
  /// Read-and-clear: last element access was out of bounds or grew the
  /// array (feedback telling the JIT to avoid the in-bounds fast path).
  bool tookOutOfBounds() {
    bool F = OutOfBoundsFlag;
    OutOfBoundsFlag = false;
    return F;
  }

  /// ECMAScript-style ToNumber on our value subset.
  static double toNumber(const Value &V);
  /// ECMAScript ToInt32 (truncate modulo 2^32, signed).
  static int32_t toInt32(double D);
  /// ECMAScript Math.round. floor(x + 0.5) is wrong twice over: the
  /// addition double-rounds (0.49999999999999994 + 0.5 == 1.0), and JS
  /// rounds half toward +inf while preserving -0 for x in [-0.5, 0).
  static double jsMathRound(double D);

  /// Interprets a user function call (bypassing hooks). Used by the call
  /// dispatch path and by the engine when it declines to run native code.
  Value interpretCall(JSFunction *Callee, const Value &ThisV,
                      const Value *Args, size_t NumArgs);

  /// Resumes interpretation of a reconstructed frame (deoptimization).
  Value resumeFrame(InterpFrame &Frame);

  /// Statistics: total user-function calls dispatched.
  uint64_t totalCalls() const { return NumCalls; }

private:
  friend class Interpreter;

  void installGlobals();

  Heap TheHeap;
  std::unique_ptr<Program> Prog;
  std::vector<Value> Globals;
  RNG Rand;

  /// Owns every shape of this Runtime; never shrinks, so Shape pointers
  /// cached in ICs, feedback and native code stay valid for the
  /// Runtime's (and thus any attached Engine's) whole lifetime.
  ShapeTree Shapes;
  bool ShapesOn = true;
  unsigned ICWays = SiteFeedback::MaxICWays;
  ICStats TheICStats;
  bool ShapeMetricsPublished = false;

  bool HadError = false;
  std::string ErrorMsg;

  std::string Output;
  bool EchoOutput = false;

  ExecutionHooks *Hooks = nullptr;
  CallObserver *Observer = nullptr;

  uint32_t CallDepth = 0;
  uint32_t MaxCallDepth = 512;
  uint64_t NumCalls = 0;

  uint32_t LengthId = ~0u;

  bool IntOverflowFlag = false;
  bool OutOfBoundsFlag = false;

  /// Values the runtime itself must keep alive (builtin functions and
  /// container objects).
  std::vector<Value> InternalRoots;
  /// Cached typeof result strings (allocated on first use).
  Value TypeofStrings[6];
  bool TypeofStringsReady = false;

  /// Roots: globals + program constants.
  class GlobalRoots;
  std::unique_ptr<GlobalRoots> Roots;
};

} // namespace jitvs

#endif // JITVS_VM_RUNTIME_H
