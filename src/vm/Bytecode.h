//===- vm/Bytecode.h - Stack bytecode and function metadata -----*- C++ -*-===//
///
/// \file
/// The stack-based bytecode the MiniJS interpreter executes, playing the
/// role of SpiderMonkey's bytecode in the paper's pipeline (Figure 5):
/// source is parsed to bytecode, interpreted with hotness counters and
/// type feedback, and hot functions are translated to MIR by the JIT.
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_VM_BYTECODE_H
#define JITVS_VM_BYTECODE_H

#include "vm/TypeFeedback.h"
#include "vm/Value.h"

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace jitvs {

/// Bytecode operation codes. Operand widths are documented per opcode;
/// multi-byte operands are little-endian. Jump targets are absolute
/// bytecode offsets (u32).
enum class Op : uint8_t {
  Nop,

  // Constants and immediates.
  PushConst,     ///< u16 constant-pool index
  PushInt8,      ///< i8 immediate
  PushUndefined,
  PushNull,
  PushTrue,
  PushFalse,

  // Frame slots: [0, NumParams) are arguments, then locals.
  GetSlot, ///< u16 slot
  SetSlot, ///< u16 slot

  // Closure environment slots.
  GetEnvSlot, ///< u8 depth, u16 slot
  SetEnvSlot, ///< u8 depth, u16 slot

  // Globals.
  GetGlobal, ///< u16 global index
  SetGlobal, ///< u16 global index

  // Stack manipulation.
  Dup,
  Dup2, ///< [a, b] -> [a, b, a, b]
  Pop,
  Swap,

  // Arithmetic / logic. All pop operands and push the result.
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Neg,
  Pos,
  Not,
  BitNot,
  BitAnd,
  BitOr,
  BitXor,
  Shl,
  Shr,
  UShr,

  // Comparisons.
  Lt,
  Le,
  Gt,
  Ge,
  Eq,
  Ne,
  StrictEq,
  StrictNe,

  TypeOf,

  // Control flow.
  Jump,        ///< u32 target
  JumpIfFalse, ///< u32 target (pops the condition)
  JumpIfTrue,  ///< u32 target (pops the condition)
  LoopHead,    ///< marks a loop header; interpreter hotness + OSR point

  // Calls. Stack layout before: callee, arg0..argN-1 (CallMethod:
  // receiver, arg0..argN-1).
  Call,       ///< u8 argc
  CallMethod, ///< u16 property name id, u8 argc
  New,        ///< u8 argc
  Return,
  ReturnUndefined,

  // Aggregates.
  NewArray,  ///< u16 element count (pops them)
  NewObject, ///< fresh empty object
  InitProp,  ///< u16 name id; [obj, value] -> [obj]
  GetElem,   ///< [obj, index] -> [value]
  SetElem,   ///< [obj, index, value] -> [value]
  GetProp,   ///< u16 name id; [obj] -> [value]
  SetProp,   ///< u16 name id; [obj, value] -> [value]

  MakeClosure, ///< u16 function index; captures the current environment
  GetThis,
};

/// \returns the mnemonic for \p O.
const char *opName(Op O);

class Program;

/// Compiled metadata for one MiniJS function: bytecode, constants, frame
/// shape, closure-capture layout, type feedback and JIT bookkeeping.
struct FunctionInfo {
  std::string Name;
  uint32_t Id = 0; ///< Index of this function inside its Program.
  Program *Parent = nullptr;

  uint32_t NumParams = 0;
  /// Total frame slots: parameters first, then locals.
  uint32_t NumSlots = 0;
  /// Slots of the heap environment this function allocates at entry for
  /// locals captured by inner closures (0 = no environment needed).
  uint32_t NumEnvSlots = 0;
  /// Parameters that must be copied into the environment at entry:
  /// (parameter slot, environment slot) pairs.
  std::vector<std::pair<uint16_t, uint16_t>> CapturedParams;
  /// Frame slots (beyond parameters) that live in the environment instead
  /// of the frame. Stored for diagnostics; access goes through
  /// Get/SetEnvSlot.
  bool UsesEnvironment = false;

  std::vector<uint8_t> Code;
  std::vector<Value> Constants;

  /// Max operand-stack depth, computed by the emitter.
  uint32_t MaxStackDepth = 0;

  /// Per-site type feedback recorded by the interpreter, consulted by the
  /// MIR builder for type specialization.
  FeedbackMap Feedback;

  // --- JIT bookkeeping (owned logically by jit::Engine) ---
  uint32_t CallCount = 0;
  uint32_t BackEdgeCount = 0;

  // --- Bytecode reading helpers ---
  Op opAt(uint32_t PC) const { return static_cast<Op>(Code[PC]); }
  uint8_t u8At(uint32_t PC) const { return Code[PC]; }
  int8_t i8At(uint32_t PC) const { return static_cast<int8_t>(Code[PC]); }
  uint16_t u16At(uint32_t PC) const {
    return static_cast<uint16_t>(Code[PC]) |
           (static_cast<uint16_t>(Code[PC + 1]) << 8);
  }
  uint32_t u32At(uint32_t PC) const {
    return static_cast<uint32_t>(Code[PC]) |
           (static_cast<uint32_t>(Code[PC + 1]) << 8) |
           (static_cast<uint32_t>(Code[PC + 2]) << 16) |
           (static_cast<uint32_t>(Code[PC + 3]) << 24);
  }

  /// \returns the full instruction length (opcode + operands) at \p PC.
  uint32_t instructionLength(uint32_t PC) const;

  /// Disassembles the bytecode for debugging and golden tests.
  std::string disassemble() const;
};

/// Interns property and identifier names to dense integer ids.
class NameTable {
public:
  /// Interns \p Name, returning its stable id.
  uint32_t intern(const std::string &Name);
  /// \returns the id of \p Name or ~0u when not interned.
  uint32_t lookup(const std::string &Name) const;
  /// \returns the name for \p Id.
  const std::string &name(uint32_t Id) const {
    assert(Id < Names.size() && "bad name id");
    return Names[Id];
  }
  size_t size() const { return Names.size(); }

private:
  std::vector<std::string> Names;
  std::unordered_map<std::string, uint32_t> Ids;
};

/// A compiled MiniJS program: all functions (index 0 is top-level code),
/// the interned name table and the global variable layout.
class Program {
public:
  Program() = default;
  Program(const Program &) = delete;
  Program &operator=(const Program &) = delete;

  /// Creates a new empty function; returns its id.
  FunctionInfo *createFunction(std::string Name);

  FunctionInfo *function(uint32_t Id) {
    assert(Id < Functions.size() && "bad function id");
    return Functions[Id].get();
  }
  const FunctionInfo *function(uint32_t Id) const {
    assert(Id < Functions.size() && "bad function id");
    return Functions[Id].get();
  }
  size_t numFunctions() const { return Functions.size(); }

  /// Top-level code (always function 0).
  FunctionInfo *main() { return function(0); }

  NameTable &names() { return Names; }
  const NameTable &names() const { return Names; }

  /// Declares (or finds) a global variable slot for \p Name.
  uint32_t globalSlot(const std::string &Name);
  /// \returns the number of global slots.
  size_t numGlobals() const { return GlobalNames.size(); }
  const std::string &globalName(uint32_t Slot) const {
    assert(Slot < GlobalNames.size() && "bad global slot");
    return GlobalNames[Slot];
  }

private:
  std::vector<std::unique_ptr<FunctionInfo>> Functions;
  NameTable Names;
  std::vector<std::string> GlobalNames;
  std::unordered_map<std::string, uint32_t> GlobalSlots;
};

} // namespace jitvs

#endif // JITVS_VM_BYTECODE_H
