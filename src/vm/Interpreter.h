//===- vm/Interpreter.h - Bytecode interpreter ------------------*- C++ -*-===//
///
/// \file
/// The stack-bytecode interpreter. Frames are GC root sources; the frame
/// layout (slots + operand stack + pc) is exactly what native-code
/// bailout snapshots reconstruct, so a deoptimized native frame resumes
/// here mid-function.
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_VM_INTERPRETER_H
#define JITVS_VM_INTERPRETER_H

#include "vm/Bytecode.h"
#include "vm/GC.h"
#include "vm/Object.h"
#include "vm/Runtime.h"

#include <vector>

namespace jitvs {

/// An interpreter activation. Registers itself as a GC root source.
struct InterpFrame final : public RootSource {
  InterpFrame(Runtime &RT, FunctionInfo *Info);
  ~InterpFrame() override;

  void traceRoots(GCVisitor &Visitor) override;

  Runtime &RT;
  FunctionInfo *Info;
  std::vector<Value> Slots; ///< Parameters then locals (then scratch).
  std::vector<Value> Stack; ///< Operand stack.
  /// The arguments as passed at entry (parameter slots are mutable, but
  /// OSR specialization of the function-entry path needs the originals).
  std::vector<Value> OrigArgs;
  uint32_t PC = 0;
  Value ThisV;
  Environment *Env = nullptr;        ///< Own environment (if created).
  Environment *ClosureEnv = nullptr; ///< Environment captured at closure
                                     ///< creation.

  /// The environment visible to Get/SetEnvSlot at depth 0.
  Environment *currentEnv() const { return Env ? Env : ClosureEnv; }
};

/// Executes bytecode frames. Stateless apart from the runtime reference.
class Interpreter {
public:
  explicit Interpreter(Runtime &RT) : RT(RT) {}

  /// Standard call path: builds a frame for \p Callee and runs it.
  Value invoke(JSFunction *Callee, const Value &ThisV, const Value *Args,
               size_t NumArgs);

  /// Runs \p Frame from its current pc until return or error. Used both
  /// by invoke() and to resume deoptimized native frames.
  Value execute(InterpFrame &Frame);

private:
  Runtime &RT;
};

} // namespace jitvs

#endif // JITVS_VM_INTERPRETER_H
