//===- vm/Value.h - Tagged JavaScript-style values --------------*- C++ -*-===//
///
/// \file
/// The boxed value representation of the MiniJS virtual machine. Mirrors
/// the SpiderMonkey split between Int32 and Double numbers: JavaScript
/// numbers are doubles, but values representable as 32-bit integers carry
/// the Int32 tag so the JIT can emit integer arithmetic guarded by
/// overflow checks (the "type specialization" baseline the paper builds
/// on).
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_VM_VALUE_H
#define JITVS_VM_VALUE_H

#include "support/Assert.h"

#include <cstdint>
#include <string>

namespace jitvs {

class GCObject;
class JSString;
class JSArray;
class JSObject;
class JSFunction;

/// Runtime type tag of a boxed value.
enum class ValueTag : uint8_t {
  Undefined,
  Null,
  Boolean,
  Int32,
  Double,
  String,
  Object,
  Array,
  Function,
};

/// \returns a printable name for \p Tag ("int32", "string", ...).
const char *valueTagName(ValueTag Tag);

/// A boxed MiniJS value: a tag plus a payload word.
class Value {
public:
  Value() : Tag(ValueTag::Undefined) { Payload.Bits = 0; }

  static Value undefined() { return Value(); }
  static Value null() {
    Value V;
    V.Tag = ValueTag::Null;
    return V;
  }
  static Value boolean(bool B) {
    Value V;
    V.Tag = ValueTag::Boolean;
    V.Payload.Bits = 0;
    V.Payload.B = B;
    return V;
  }
  static Value int32(int32_t I) {
    Value V;
    V.Tag = ValueTag::Int32;
    V.Payload.Bits = 0;
    V.Payload.I = I;
    return V;
  }
  static Value makeDouble(double D) {
    Value V;
    V.Tag = ValueTag::Double;
    V.Payload.D = D;
    return V;
  }
  /// Boxes \p D as Int32 when exactly representable (and not -0), following
  /// the engine convention that canonical numbers prefer the Int32 tag.
  static Value number(double D);
  static Value string(JSString *S);
  static Value array(JSArray *A);
  static Value object(JSObject *O);
  static Value function(JSFunction *F);

  ValueTag tag() const { return Tag; }
  bool isUndefined() const { return Tag == ValueTag::Undefined; }
  bool isNull() const { return Tag == ValueTag::Null; }
  bool isBoolean() const { return Tag == ValueTag::Boolean; }
  bool isInt32() const { return Tag == ValueTag::Int32; }
  bool isDouble() const { return Tag == ValueTag::Double; }
  bool isNumber() const { return isInt32() || isDouble(); }
  bool isString() const { return Tag == ValueTag::String; }
  bool isArray() const { return Tag == ValueTag::Array; }
  bool isObject() const { return Tag == ValueTag::Object; }
  bool isFunction() const { return Tag == ValueTag::Function; }
  bool isGCThing() const { return Tag >= ValueTag::String; }

  bool asBoolean() const {
    assert(isBoolean() && "not a boolean");
    return Payload.B;
  }
  int32_t asInt32() const {
    assert(isInt32() && "not an int32");
    return Payload.I;
  }
  double asDouble() const {
    assert(isDouble() && "not a double");
    return Payload.D;
  }
  /// \returns the numeric payload of an Int32 or Double value.
  double asNumber() const {
    assert(isNumber() && "not a number");
    return isInt32() ? static_cast<double>(Payload.I) : Payload.D;
  }
  JSString *asString() const;
  JSArray *asArray() const;
  JSObject *asObject() const;
  JSFunction *asFunction() const;
  GCObject *asGCThing() const {
    assert(isGCThing() && "not a GC thing");
    return Payload.Obj;
  }
  /// Re-points a GC value at the moved copy of its object, keeping the
  /// tag. Only the moving collector's visitor should call this.
  void setGCThing(GCObject *Obj) {
    assert(isGCThing() && Obj && "not a GC thing");
    Payload.Obj = Obj;
  }

  /// JavaScript truthiness: false, +-0, NaN, "", null and undefined are
  /// falsy; everything else is truthy.
  bool toBoolean() const;

  /// Strict equality (===): same tag class and same payload; Int32 and
  /// Double compare numerically; strings compare by content; GC things by
  /// identity.
  bool strictEquals(const Value &Other) const;

  /// Identity used by the specialization cache to decide whether a call
  /// carries "the same arguments" as the cached specialization: primitives
  /// and strings by content, objects/arrays/functions by pointer.
  bool sameSpecializationValue(const Value &Other) const;

  /// Hash consistent with sameSpecializationValue.
  uint64_t specializationHash() const;

  /// \returns the result of the typeof operator for this value.
  const char *typeOfString() const;

  /// Debug/print rendering (what the `print` builtin emits).
  std::string toDisplayString() const;

private:
  ValueTag Tag;
  union {
    bool B;
    int32_t I;
    double D;
    GCObject *Obj;
    uint64_t Bits;
  } Payload;
};

} // namespace jitvs

#endif // JITVS_VM_VALUE_H
