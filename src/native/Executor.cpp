//===- native/Executor.cpp - Register machine dispatch loop ----------------===//

#include "native/Executor.h"

#include "mir/MIR.h" // MathIntrinsic.
#include "support/Assert.h"
#include "vm/Bytecode.h"
#include "vm/Runtime.h"

#include <cmath>

using namespace jitvs;

namespace {

/// Default reason classification from the failing guard's opcode. Sites
/// that can distinguish further (e.g. -0 vs overflow) pass an explicit
/// reason instead.
BailoutReason bailoutReasonForOp(NOp Op) {
  switch (Op) {
  case NOp::AddI:
  case NOp::SubI:
  case NOp::MulI:
  case NOp::ModI:
  case NOp::NegI:
    return BailoutReason::IntOverflow;
  case NOp::GuardTag:
    return BailoutReason::TypeGuard;
  case NOp::GuardNumber:
    return BailoutReason::NumberGuard;
  case NOp::BoundsCheck:
    return BailoutReason::BoundsCheck;
  case NOp::GuardArrLen:
    return BailoutReason::ArrayLengthGuard;
  default:
    return BailoutReason::Unknown;
  }
}

} // namespace

namespace {

/// GC root source covering a native activation.
struct NativeFrame final : public RootSource {
  NativeFrame(Runtime &RT, size_t FrameSize) : RT(RT) {
    Regs.resize(FrameSize);
    RT.heap().addRootSource(this);
  }
  ~NativeFrame() override { RT.heap().removeRootSource(this); }

  void markRoots(GCMarker &Marker) override {
    for (const Value &V : Regs)
      Marker.mark(V);
    for (const Value &V : ArgStage)
      Marker.mark(V);
    for (const Value &V : Args)
      Marker.mark(V);
    for (const Value &V : OsrSlots)
      Marker.mark(V);
    Marker.mark(ThisV);
    if (Env)
      Marker.mark(static_cast<GCObject *>(Env));
    if (ClosureEnv)
      Marker.mark(static_cast<GCObject *>(ClosureEnv));
  }

  Runtime &RT;
  std::vector<Value> Regs;
  std::vector<Value> ArgStage;
  std::vector<Value> Args;
  std::vector<Value> OsrSlots;
  Value ThisV;
  Environment *Env = nullptr;
  Environment *ClosureEnv = nullptr;
};

double mathApply(MathIntrinsic F, double A, double B) {
  switch (F) {
  case MathIntrinsic::Sin:
    return std::sin(A);
  case MathIntrinsic::Cos:
    return std::cos(A);
  case MathIntrinsic::Tan:
    return std::tan(A);
  case MathIntrinsic::Atan:
    return std::atan(A);
  case MathIntrinsic::Sqrt:
    return std::sqrt(A);
  case MathIntrinsic::Abs:
    return std::fabs(A);
  case MathIntrinsic::Floor:
    return std::floor(A);
  case MathIntrinsic::Ceil:
    return std::ceil(A);
  case MathIntrinsic::Round:
    return std::floor(A + 0.5);
  case MathIntrinsic::Log:
    return std::log(A);
  case MathIntrinsic::Exp:
    return std::exp(A);
  case MathIntrinsic::Pow:
    return std::pow(A, B);
  case MathIntrinsic::Atan2:
    return std::atan2(A, B);
  }
  JITVS_UNREACHABLE("bad MathIntrinsic");
}

} // namespace

ExecResult Executor::run(const NativeCode &Code, const Value &ThisV,
                         const Value *Args, size_t NumArgs, bool AtOsr,
                         const Value *OsrSlots, size_t NumOsrSlots,
                         Environment *Env, Environment *ClosureEnv) {
  NativeFrame F(RT, Code.FrameSize);
  F.ThisV = ThisV;
  F.ClosureEnv = ClosureEnv;
  F.Env = Env;
  F.Args.assign(Args, Args + NumArgs);
  if (OsrSlots)
    F.OsrSlots.assign(OsrSlots, OsrSlots + NumOsrSlots);

  FunctionInfo *Info = Code.Info;
  if (!AtOsr && Info->NumEnvSlots > 0) {
    F.Env = RT.heap().allocate<Environment>(ClosureEnv, Info->NumEnvSlots);
    for (auto [ParamSlot, EnvSlot] : Info->CapturedParams)
      F.Env->setSlot(EnvSlot,
                     ParamSlot < F.Args.size() ? F.Args[ParamSlot]
                                               : Value::undefined());
  }
  Environment *CurEnv = F.Env ? F.Env : F.ClosureEnv;

  std::vector<Value> &R = F.Regs;
  const std::vector<Value> &Pool = Code.ConstPool;
  uint32_t PC = AtOsr ? Code.OsrOffset : Code.EntryOffset;
  assert(PC != ~0u && "entering code without the requested entry point");

  auto Bail = [&](uint32_t Snap, NOp Op,
                  BailoutReason Reason = BailoutReason::Unknown) {
    ExecResult Res;
    Res.K = ExecResult::Bailout;
    Res.SnapshotId = Snap;
    Res.BailOp = Op;
    Res.BailReason =
        Reason != BailoutReason::Unknown ? Reason : bailoutReasonForOp(Op);
    Res.BailPc = PC - 1; // PC already advanced past the failing guard.
    Res.RegsAtBail = R;
    Res.EnvAtBail = F.Env;
    return Res;
  };
  auto Fail = [] {
    ExecResult Res;
    Res.K = ExecResult::Error;
    return Res;
  };

  while (true) {
    assert(PC < Code.Code.size() && "native pc out of range");
    const NInstr &N = Code.Code[PC];
    ++PC;

    switch (N.Op) {
    case NOp::Nop:
    case NOp::CheckDepth:
      break;

    case NOp::Mov:
      R[N.A] = R[N.B];
      break;
    case NOp::LoadConst:
      R[N.A] = Pool[N.Imm];
      break;
    case NOp::LoadSpill:
      R[N.A] = R[NumPhysRegs + N.Imm];
      break;
    case NOp::StoreSpill:
      R[NumPhysRegs + N.Imm] = R[N.A];
      break;
    case NOp::LoadParam:
      R[N.A] = static_cast<size_t>(N.Imm) < F.Args.size()
                   ? F.Args[N.Imm]
                   : Value::undefined();
      break;
    case NOp::LoadThis:
      R[N.A] = F.ThisV;
      break;
    case NOp::LoadOsr:
      assert(static_cast<size_t>(N.Imm) < F.OsrSlots.size() &&
             "OSR slot out of range");
      R[N.A] = F.OsrSlots[N.Imm];
      break;

    case NOp::AddI: {
      int32_t Out;
      if (__builtin_add_overflow(R[N.B].asInt32(), R[N.C].asInt32(), &Out))
        return Bail(N.Imm, N.Op);
      R[N.A] = Value::int32(Out);
      break;
    }
    case NOp::SubI: {
      int32_t Out;
      if (__builtin_sub_overflow(R[N.B].asInt32(), R[N.C].asInt32(), &Out))
        return Bail(N.Imm, N.Op);
      R[N.A] = Value::int32(Out);
      break;
    }
    case NOp::MulI: {
      int32_t L = R[N.B].asInt32(), Rhs = R[N.C].asInt32();
      int32_t Out;
      if (__builtin_mul_overflow(L, Rhs, &Out))
        return Bail(N.Imm, N.Op);
      if (Out == 0 && (L < 0 || Rhs < 0)) // -0: let the interpreter
        return Bail(N.Imm, N.Op, BailoutReason::NegativeZero); // produce it.
      R[N.A] = Value::int32(Out);
      break;
    }
    case NOp::ModI: {
      int32_t L = R[N.B].asInt32(), Rhs = R[N.C].asInt32();
      if (Rhs <= 0 || L < 0)
        return Bail(N.Imm, N.Op);
      R[N.A] = Value::int32(L % Rhs);
      break;
    }
    case NOp::NegI: {
      int32_t V = R[N.B].asInt32();
      if (V == 0 || V == INT32_MIN)
        return Bail(N.Imm, N.Op,
                    V == 0 ? BailoutReason::NegativeZero
                           : BailoutReason::IntOverflow);
      R[N.A] = Value::int32(-V);
      break;
    }

    case NOp::AddINoOvf:
      R[N.A] = Value::int32(R[N.B].asInt32() + R[N.C].asInt32());
      break;
    case NOp::SubINoOvf:
      R[N.A] = Value::int32(R[N.B].asInt32() - R[N.C].asInt32());
      break;
    case NOp::MulINoOvf:
      R[N.A] = Value::int32(R[N.B].asInt32() * R[N.C].asInt32());
      break;

    case NOp::AddD:
      R[N.A] = Value::makeDouble(R[N.B].asDouble() + R[N.C].asDouble());
      break;
    case NOp::SubD:
      R[N.A] = Value::makeDouble(R[N.B].asDouble() - R[N.C].asDouble());
      break;
    case NOp::MulD:
      R[N.A] = Value::makeDouble(R[N.B].asDouble() * R[N.C].asDouble());
      break;
    case NOp::DivD:
      // Keep the Double tag: downstream Double-typed ops read the payload
      // unchecked (canonicalizing to Int32 would break them).
      R[N.A] = Value::makeDouble(R[N.B].asDouble() / R[N.C].asDouble());
      break;
    case NOp::ModD:
      R[N.A] = Value::makeDouble(std::fmod(R[N.B].asDouble(),
                                           R[N.C].asDouble()));
      break;
    case NOp::NegD:
      R[N.A] = Value::makeDouble(-R[N.B].asDouble());
      break;

    case NOp::BitAnd:
      R[N.A] = Value::int32(R[N.B].asInt32() & R[N.C].asInt32());
      break;
    case NOp::BitOr:
      R[N.A] = Value::int32(R[N.B].asInt32() | R[N.C].asInt32());
      break;
    case NOp::BitXor:
      R[N.A] = Value::int32(R[N.B].asInt32() ^ R[N.C].asInt32());
      break;
    case NOp::Shl:
      R[N.A] = Value::int32(R[N.B].asInt32() << (R[N.C].asInt32() & 31));
      break;
    case NOp::Shr:
      R[N.A] = Value::int32(R[N.B].asInt32() >> (R[N.C].asInt32() & 31));
      break;
    case NOp::UShr: {
      uint32_t U = static_cast<uint32_t>(R[N.B].asInt32()) >>
                   (R[N.C].asInt32() & 31);
      R[N.A] = Value::makeDouble(static_cast<double>(U));
      break;
    }
    case NOp::BitNot:
      R[N.A] = Value::int32(~R[N.B].asInt32());
      break;

    case NOp::TruncToInt32:
      R[N.A] = Value::int32(R[N.B].isInt32()
                                ? R[N.B].asInt32()
                                : Runtime::toInt32(Runtime::toNumber(R[N.B])));
      break;
    case NOp::ToDouble:
      R[N.A] = Value::makeDouble(R[N.B].asNumber());
      break;

    case NOp::CmpI: {
      int32_t L = R[N.B].asInt32(), Rhs = R[N.C].asInt32();
      bool Out;
      switch (static_cast<Op>(N.Imm)) {
      case Op::Lt:
        Out = L < Rhs;
        break;
      case Op::Le:
        Out = L <= Rhs;
        break;
      case Op::Gt:
        Out = L > Rhs;
        break;
      case Op::Ge:
        Out = L >= Rhs;
        break;
      case Op::Eq:
      case Op::StrictEq:
        Out = L == Rhs;
        break;
      case Op::Ne:
      case Op::StrictNe:
        Out = L != Rhs;
        break;
      default:
        JITVS_UNREACHABLE("bad comparison op");
      }
      R[N.A] = Value::boolean(Out);
      break;
    }
    case NOp::CmpD: {
      double L = R[N.B].asDouble(), Rhs = R[N.C].asDouble();
      bool Out;
      switch (static_cast<Op>(N.Imm)) {
      case Op::Lt:
        Out = L < Rhs;
        break;
      case Op::Le:
        Out = L <= Rhs;
        break;
      case Op::Gt:
        Out = L > Rhs;
        break;
      case Op::Ge:
        Out = L >= Rhs;
        break;
      case Op::Eq:
      case Op::StrictEq:
        Out = L == Rhs;
        break;
      case Op::Ne:
      case Op::StrictNe:
        Out = L != Rhs;
        break;
      default:
        JITVS_UNREACHABLE("bad comparison op");
      }
      R[N.A] = Value::boolean(Out);
      break;
    }
    case NOp::CmpS: {
      const std::string &L = R[N.B].asString()->str();
      const std::string &Rhs = R[N.C].asString()->str();
      bool Out;
      switch (static_cast<Op>(N.Imm)) {
      case Op::Lt:
        Out = L < Rhs;
        break;
      case Op::Le:
        Out = L <= Rhs;
        break;
      case Op::Gt:
        Out = L > Rhs;
        break;
      case Op::Ge:
        Out = L >= Rhs;
        break;
      case Op::Eq:
      case Op::StrictEq:
        Out = L == Rhs;
        break;
      case Op::Ne:
      case Op::StrictNe:
        Out = L != Rhs;
        break;
      default:
        JITVS_UNREACHABLE("bad comparison op");
      }
      R[N.A] = Value::boolean(Out);
      break;
    }
    case NOp::CmpGeneric: {
      const Value &L = R[N.B], &Rhs = R[N.C];
      bool Out;
      switch (static_cast<Op>(N.Imm)) {
      case Op::Lt:
        Out = RT.genericLess(L, Rhs);
        break;
      case Op::Le:
        Out = RT.genericLessEq(L, Rhs);
        break;
      case Op::Gt:
        Out = RT.genericLess(Rhs, L);
        break;
      case Op::Ge:
        Out = RT.genericLessEq(Rhs, L);
        break;
      case Op::Eq:
        Out = RT.genericLooseEquals(L, Rhs);
        break;
      case Op::Ne:
        Out = !RT.genericLooseEquals(L, Rhs);
        break;
      case Op::StrictEq:
        Out = L.strictEquals(Rhs);
        break;
      case Op::StrictNe:
        Out = !L.strictEquals(Rhs);
        break;
      default:
        JITVS_UNREACHABLE("bad comparison op");
      }
      R[N.A] = Value::boolean(Out);
      break;
    }

    case NOp::Not:
      R[N.A] = Value::boolean(!R[N.B].toBoolean());
      break;
    case NOp::Concat: {
      TempRoots Roots(RT.heap());
      Roots.add(R[N.B]);
      Roots.add(R[N.C]);
      R[N.A] = RT.newStringValue(R[N.B].asString()->str() +
                                 R[N.C].asString()->str());
      break;
    }
    case NOp::TypeOfV:
      R[N.A] = RT.typeOfValue(R[N.B]);
      break;

    case NOp::GuardTag:
      if (R[N.A].tag() != static_cast<ValueTag>(N.B))
        return Bail(N.Imm, N.Op);
      break;
    case NOp::GuardNumber:
      if (!R[N.B].isNumber())
        return Bail(N.Imm, N.Op);
      R[N.A] = Value::makeDouble(R[N.B].asNumber());
      break;
    case NOp::BoundsCheck: {
      int32_t Idx = R[N.A].asInt32(), Len = R[N.B].asInt32();
      if (Idx < 0 || Idx >= Len)
        return Bail(N.Imm, N.Op);
      break;
    }
    case NOp::GuardArrLen:
      if (static_cast<int64_t>(R[N.A].asArray()->length()) !=
          Pool[N.C].asInt32())
        return Bail(N.Imm, N.Op);
      break;

    case NOp::ArrayLen:
      R[N.A] =
          Value::number(static_cast<double>(R[N.B].asArray()->length()));
      break;
    case NOp::StrLen:
      R[N.A] =
          Value::number(static_cast<double>(R[N.B].asString()->length()));
      break;
    case NOp::LoadElem:
      R[N.A] = R[N.B].asArray()->getDense(
          static_cast<size_t>(R[N.C].asInt32()));
      break;
    case NOp::StoreElem:
      R[N.A].asArray()->setDense(static_cast<size_t>(R[N.B].asInt32()),
                                 R[N.C]);
      break;
    case NOp::CharCodeAt:
      R[N.A] = Value::int32(static_cast<unsigned char>(
          R[N.B].asString()->str()[static_cast<size_t>(
              R[N.C].asInt32())]));
      break;
    case NOp::FromCharCode: {
      std::string S(1, static_cast<char>(R[N.B].asInt32() & 0xFF));
      R[N.A] = RT.newStringValue(std::move(S));
      break;
    }

    case NOp::GenBin: {
      Value Out;
      switch (static_cast<Op>(N.Imm)) {
      case Op::Add:
        Out = RT.genericAdd(R[N.B], R[N.C]);
        break;
      case Op::Sub:
        Out = RT.genericSub(R[N.B], R[N.C]);
        break;
      case Op::Mul:
        Out = RT.genericMul(R[N.B], R[N.C]);
        break;
      case Op::Div:
        Out = RT.genericDiv(R[N.B], R[N.C]);
        break;
      case Op::Mod:
        Out = RT.genericMod(R[N.B], R[N.C]);
        break;
      default:
        JITVS_UNREACHABLE("bad generic binop");
      }
      R[N.A] = Out;
      break;
    }
    case NOp::GenUn:
      if (static_cast<Op>(N.Imm) == Op::Neg)
        R[N.A] = RT.genericNeg(R[N.B]);
      else
        R[N.A] = Value::number(Runtime::toNumber(R[N.B]));
      break;
    case NOp::GenGetElem:
      R[N.A] = RT.genericGetElem(R[N.B], R[N.C]);
      if (RT.hasError())
        return Fail();
      break;
    case NOp::GenSetElem:
      RT.genericSetElem(R[N.A], R[N.B], R[N.C]);
      if (RT.hasError())
        return Fail();
      break;
    case NOp::GenGetProp:
      R[N.A] = RT.genericGetProp(R[N.B], static_cast<uint32_t>(N.Imm));
      if (RT.hasError())
        return Fail();
      break;
    case NOp::GenSetProp:
      RT.genericSetProp(R[N.A], static_cast<uint32_t>(N.Imm), R[N.B]);
      if (RT.hasError())
        return Fail();
      break;

    case NOp::GetGlobal:
      R[N.A] = RT.global(static_cast<uint32_t>(N.Imm));
      break;
    case NOp::SetGlobal:
      RT.global(static_cast<uint32_t>(N.Imm)) = R[N.A];
      break;
    case NOp::GetEnv:
      R[N.A] = CurEnv->hop(N.B)->getSlot(static_cast<size_t>(N.Imm));
      break;
    case NOp::SetEnv:
      CurEnv->hop(N.B)->setSlot(static_cast<size_t>(N.Imm), R[N.A]);
      break;

    case NOp::NewArrElems: {
      size_t Count = static_cast<size_t>(N.Imm);
      assert(F.ArgStage.size() >= Count && "arg stage underflow");
      size_t Base = F.ArgStage.size() - Count;
      JSArray *Arr = RT.heap().allocate<JSArray>(std::vector<Value>(
          F.ArgStage.begin() + Base, F.ArgStage.end()));
      F.ArgStage.resize(Base);
      R[N.A] = Value::array(Arr);
      break;
    }
    case NOp::NewArrLen: {
      int32_t Len = R[N.B].asInt32();
      if (Len < 0) {
        RT.fail("invalid array length");
        return Fail();
      }
      std::vector<Value> Elems(static_cast<size_t>(Len));
      R[N.A] = Value::array(RT.heap().allocate<JSArray>(std::move(Elems)));
      break;
    }
    case NOp::NewObj:
      R[N.A] = Value::object(RT.heap().allocate<JSObject>());
      break;
    case NOp::InitProp:
      R[N.A].asObject()->setProperty(static_cast<uint32_t>(N.Imm), R[N.B]);
      break;
    case NOp::MakeClos: {
      FunctionInfo *Inner =
          RT.program()->function(static_cast<uint32_t>(N.Imm));
      R[N.A] = Value::function(
          RT.heap().allocate<JSFunction>(Inner, CurEnv));
      break;
    }

    case NOp::PushArg:
      F.ArgStage.push_back(R[N.A]);
      break;
    case NOp::CallV: {
      size_t Argc = static_cast<size_t>(N.Imm);
      assert(F.ArgStage.size() >= Argc && "arg stage underflow");
      size_t Base = F.ArgStage.size() - Argc;
      Value Out =
          RT.callValue(R[N.B], Value::undefined(),
                       Argc ? &F.ArgStage[Base] : nullptr, Argc);
      F.ArgStage.resize(Base);
      if (RT.hasError())
        return Fail();
      R[N.A] = Out;
      break;
    }
    case NOp::CallM: {
      size_t Argc = N.C;
      assert(F.ArgStage.size() >= Argc && "arg stage underflow");
      size_t Base = F.ArgStage.size() - Argc;
      Value Out = RT.callMethod(R[N.B], static_cast<uint32_t>(N.Imm),
                                Argc ? &F.ArgStage[Base] : nullptr, Argc);
      F.ArgStage.resize(Base);
      if (RT.hasError())
        return Fail();
      R[N.A] = Out;
      break;
    }
    case NOp::NewCall: {
      size_t Argc = static_cast<size_t>(N.Imm);
      assert(F.ArgStage.size() >= Argc && "arg stage underflow");
      size_t Base = F.ArgStage.size() - Argc;
      Value Out = RT.construct(R[N.B],
                               Argc ? &F.ArgStage[Base] : nullptr, Argc);
      F.ArgStage.resize(Base);
      if (RT.hasError())
        return Fail();
      R[N.A] = Out;
      break;
    }

    case NOp::MathFn: {
      double A = R[N.B].asDouble();
      double B = N.C != 0xFFFF ? R[N.C].asDouble() : 0.0;
      R[N.A] = Value::makeDouble(
          mathApply(static_cast<MathIntrinsic>(N.Imm), A, B));
      break;
    }

    case NOp::Jmp:
      PC = static_cast<uint32_t>(N.Imm);
      break;
    case NOp::JTrue:
      if (R[N.A].toBoolean())
        PC = static_cast<uint32_t>(N.Imm);
      break;
    case NOp::JFalse:
      if (!R[N.A].toBoolean())
        PC = static_cast<uint32_t>(N.Imm);
      break;
    case NOp::Ret: {
      ExecResult Res;
      Res.K = ExecResult::Ok;
      Res.Result = R[N.A];
      return Res;
    }
    }
  }
}
