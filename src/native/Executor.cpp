//===- native/Executor.cpp - Register machine dispatch loop ----------------===//
//
// The instruction handlers live in DispatchLoop.inc, textually included
// twice below: once as a portable while+switch loop and once as a
// computed-goto threaded loop (GCC/Clang `&&label`). Threaded dispatch
// gives each handler its own indirect jump, so the branch predictor keys
// on the current opcode's successor distribution instead of one shared
// dispatch branch — the Ertl & Gregg result macro-op fusion builds on.
//
//===----------------------------------------------------------------------===//

#include "native/Executor.h"

#include "mir/MIR.h" // MathIntrinsic.
#include "support/Assert.h"
#include "telemetry/Metrics.h"
#include "vm/Bytecode.h"
#include "vm/Runtime.h"

#include <cmath>
#include <cstdlib>
#include <cstring>

using namespace jitvs;

/// Computed-goto threaded dispatch needs the GNU `&&label` extension.
#if defined(__GNUC__) || defined(__clang__)
#define JITVS_HAVE_COMPUTED_GOTO 1
#else
#define JITVS_HAVE_COMPUTED_GOTO 0
#endif

bool Executor::hasComputedGoto() { return JITVS_HAVE_COMPUTED_GOTO != 0; }

DispatchMode Executor::defaultDispatchMode() {
  static const DispatchMode Resolved = [] {
    if (const char *E = std::getenv("JITVS_DISPATCH")) {
      if (std::strcmp(E, "switch") == 0)
        return DispatchMode::Switch;
      if (std::strcmp(E, "goto") == 0 && hasComputedGoto())
        return DispatchMode::Goto;
    }
    return hasComputedGoto() ? DispatchMode::Goto : DispatchMode::Switch;
  }();
  return Resolved;
}

namespace {

/// Shared comparison kernel for CmpI/CmpD/CmpS and the fused BrCmp forms.
template <typename T> bool orderedCompare(Op O, const T &L, const T &R) {
  switch (O) {
  case Op::Lt:
    return L < R;
  case Op::Le:
    return L <= R;
  case Op::Gt:
    return L > R;
  case Op::Ge:
    return L >= R;
  case Op::Eq:
  case Op::StrictEq:
    return L == R;
  case Op::Ne:
  case Op::StrictNe:
    return L != R;
  default:
    JITVS_UNREACHABLE("bad comparison op");
  }
}

/// Default reason classification from the failing guard's opcode. Sites
/// that can distinguish further (e.g. -0 vs overflow) pass an explicit
/// reason instead. Fused handlers bail under the original opcode, so the
/// fused forms never reach this.
BailoutReason bailoutReasonForOp(NOp Op) {
  switch (Op) {
  case NOp::AddI:
  case NOp::SubI:
  case NOp::MulI:
  case NOp::ModI:
  case NOp::NegI:
    return BailoutReason::IntOverflow;
  case NOp::GuardTag:
    return BailoutReason::TypeGuard;
  case NOp::GuardNumber:
    return BailoutReason::NumberGuard;
  case NOp::BoundsCheck:
    return BailoutReason::BoundsCheck;
  case NOp::GuardArrLen:
    return BailoutReason::ArrayLengthGuard;
  case NOp::GuardShape:
    return BailoutReason::ShapeGuard;
  default:
    return BailoutReason::Unknown;
  }
}

/// GC root source covering a native activation.
///
/// Register visitation has two precision levels. At runtime-call sites
/// (CallV/CallM/CallT/NewCall and the slow-path helpers) the handler
/// publishes the call's stack map in CurMap, and tracing visits exactly
/// the registers the register allocator proved live across the call —
/// the rest are *poisoned* to undefined. At back-edge safepoint polls no
/// map is in effect (CurMap == nullptr) and every register is visited
/// conservatively; poisoning at the precise sites is what keeps that
/// sound — a dead register can never carry a stale pointer into a later
/// conservative visit after the referent was swept. It also converts a
/// wrong stack map into a deterministic observable divergence under GC
/// stress instead of silent heap corruption.
struct NativeFrame final : public RootSource {
  NativeFrame(Runtime &RT, size_t FrameSize) : RT(RT) {
    Regs.resize(FrameSize);
    RT.heap().addRootSource(this);
  }
  ~NativeFrame() override { RT.heap().removeRootSource(this); }

  void traceRoots(GCVisitor &Visitor) override {
    if (CurMap) {
      // CurMap->Live is sorted ascending; walk it and poison the gaps.
      size_t Next = 0;
      for (uint16_t Reg : CurMap->Live) {
        for (; Next < Reg && Next < Regs.size(); ++Next)
          if (Regs[Next].isGCThing())
            Regs[Next] = Value::undefined();
        if (Reg < Regs.size())
          Visitor.visit(Regs[Reg]);
        Next = static_cast<size_t>(Reg) + 1;
      }
      for (; Next < Regs.size(); ++Next)
        if (Regs[Next].isGCThing())
          Regs[Next] = Value::undefined();
    } else {
      for (Value &V : Regs)
        Visitor.visit(V);
    }
    for (Value &V : ArgStage)
      Visitor.visit(V);
    for (Value &V : Args)
      Visitor.visit(V);
    for (Value &V : OsrSlots)
      Visitor.visit(V);
    Visitor.visit(ThisV);
    Visitor.visitPtr(Env);
    Visitor.visitPtr(ClosureEnv);
  }

  /// The environment visible to GetEnv/SetEnv/MakeClos. Computed on
  /// demand (not cached in a local) because a moving collection updates
  /// Env/ClosureEnv in place.
  Environment *curEnv() const { return Env ? Env : ClosureEnv; }

  Runtime &RT;
  std::vector<Value> Regs;
  std::vector<Value> ArgStage;
  std::vector<Value> Args;
  std::vector<Value> OsrSlots;
  Value ThisV;
  Environment *Env = nullptr;
  Environment *ClosureEnv = nullptr;
  const StackMap *CurMap = nullptr; ///< Live-register map while a
                                    ///< runtime call is in flight.
};

double mathApply(MathIntrinsic F, double A, double B) {
  switch (F) {
  case MathIntrinsic::Sin:
    return std::sin(A);
  case MathIntrinsic::Cos:
    return std::cos(A);
  case MathIntrinsic::Tan:
    return std::tan(A);
  case MathIntrinsic::Atan:
    return std::atan(A);
  case MathIntrinsic::Sqrt:
    return std::sqrt(A);
  case MathIntrinsic::Abs:
    return std::fabs(A);
  case MathIntrinsic::Floor:
    return std::floor(A);
  case MathIntrinsic::Ceil:
    return std::ceil(A);
  case MathIntrinsic::Round:
    return Runtime::jsMathRound(A);
  case MathIntrinsic::Log:
    return std::log(A);
  case MathIntrinsic::Exp:
    return std::exp(A);
  case MathIntrinsic::Pow:
    return std::pow(A, B);
  case MathIntrinsic::Atan2:
    return std::atan2(A, B);
  }
  JITVS_UNREACHABLE("bad MathIntrinsic");
}

} // namespace

ExecResult Executor::run(const NativeCode &Code, const Value &ThisV,
                         const Value *Args, size_t NumArgs, bool AtOsr,
                         const Value *OsrSlots, size_t NumOsrSlots,
                         Environment *Env, Environment *ClosureEnv) {
  // Lifetime: \p Code is borrowed for the whole run. The engine's
  // execute() pins it with a strong shared_ptr, so a background
  // recompile that unlinks this body at a reentrant dispatch boundary
  // (a Call handler below re-enters Engine::onCall, which may publish a
  // replacement and retire this one) cannot reclaim it under us — the
  // deferred-reclamation list only frees code whose use count has
  // dropped to the list's own reference.
  MetricsPhaseTimer NativePhase(Phase::NativeExec);
  NativeFrame F(RT, Code.FrameSize);
  F.ThisV = ThisV;
  F.ClosureEnv = ClosureEnv;
  F.Env = Env;
  F.Args.assign(Args, Args + NumArgs);
  if (OsrSlots)
    F.OsrSlots.assign(OsrSlots, OsrSlots + NumOsrSlots);

  FunctionInfo *Info = Code.Info;
  if (!AtOsr && Info->NumEnvSlots > 0) {
    F.Env = RT.heap().allocate<Environment>(ClosureEnv, Info->NumEnvSlots);
    for (auto [ParamSlot, EnvSlot] : Info->CapturedParams)
      F.Env->setSlot(EnvSlot,
                     ParamSlot < F.Args.size() ? F.Args[ParamSlot]
                                               : Value::undefined());
  }
  std::vector<Value> &R = F.Regs;
  const std::vector<Value> &Pool = Code.ConstPool;
  uint32_t PC = AtOsr ? Code.OsrOffset : Code.EntryOffset;
  assert(PC != ~0u && "entering code without the requested entry point");

  auto Bail = [&](uint32_t Snap, NOp Op,
                  BailoutReason Reason = BailoutReason::Unknown) {
    ExecResult Res;
    Res.K = ExecResult::Bailout;
    Res.SnapshotId = Snap;
    Res.BailOp = Op;
    Res.BailReason =
        Reason != BailoutReason::Unknown ? Reason : bailoutReasonForOp(Op);
    Res.BailPc = PC - 1; // PC already advanced past the failing guard.
    Res.RegsAtBail = R;
    Res.EnvAtBail = F.Env;
    return Res;
  };
  auto Fail = [] {
    ExecResult Res;
    Res.K = ExecResult::Error;
    return Res;
  };

#if JITVS_HAVE_COMPUTED_GOTO
  if (Mode == DispatchMode::Goto) {
    // Threaded dispatch: a per-function static table of handler label
    // addresses, indexed by opcode; each handler ends in its own
    // indirect jump. Table order is generated from JITVS_FOREACH_NOP,
    // so it matches the NOp enum by construction.
#define JITVS_DISPATCH_ENTRY(Name, Str) &&Lbl_##Name,
#define JITVS_LOOP_BEGIN                                                       \
  static const void *const Table[] = {                                         \
      JITVS_FOREACH_NOP(JITVS_DISPATCH_ENTRY)};                                \
  static_assert(sizeof(Table) / sizeof(Table[0]) == NumNOps);                  \
  const NInstr *N;                                                             \
  JITVS_NEXT();
#define JITVS_OP(Name) Lbl_##Name:
#define JITVS_NEXT()                                                           \
  do {                                                                         \
    assert(PC < Code.Code.size() && "native pc out of range");                 \
    N = &Code.Code[PC];                                                        \
    ++PC;                                                                      \
    goto *Table[static_cast<size_t>(N->Op)];                                   \
  } while (false)
#define JITVS_LOOP_END

#include "native/DispatchLoop.inc"

#undef JITVS_DISPATCH_ENTRY
#undef JITVS_LOOP_BEGIN
#undef JITVS_OP
#undef JITVS_NEXT
#undef JITVS_LOOP_END
  }
#endif // JITVS_HAVE_COMPUTED_GOTO

  // Portable switch dispatch: the fallback (and the default on compilers
  // without `&&label`). The switch covers every opcode, so -Wswitch
  // keeps the handler set in sync with the op list.
  {
#define JITVS_LOOP_BEGIN                                                       \
  while (true) {                                                               \
    assert(PC < Code.Code.size() && "native pc out of range");                 \
    const NInstr *N = &Code.Code[PC];                                          \
    ++PC;                                                                      \
    switch (N->Op) {
#define JITVS_OP(Name) case NOp::Name:
#define JITVS_NEXT() break
#define JITVS_LOOP_END                                                         \
    }                                                                          \
  }

#include "native/DispatchLoop.inc"

#undef JITVS_LOOP_BEGIN
#undef JITVS_OP
#undef JITVS_NEXT
#undef JITVS_LOOP_END
  }
}
