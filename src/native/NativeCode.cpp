//===- native/NativeCode.cpp - Disassembly --------------------------------===//

#include "native/NativeCode.h"

#include "support/Assert.h"
#include "vm/Bytecode.h"

#include <cstdio>

using namespace jitvs;

const char *jitvs::nopName(NOp O) {
  switch (O) {
  case NOp::Nop:
    return "nop";
  case NOp::Mov:
    return "mov";
  case NOp::LoadConst:
    return "loadconst";
  case NOp::LoadSpill:
    return "loadspill";
  case NOp::StoreSpill:
    return "storespill";
  case NOp::LoadParam:
    return "loadparam";
  case NOp::LoadThis:
    return "loadthis";
  case NOp::LoadOsr:
    return "loadosr";
  case NOp::AddI:
    return "addi";
  case NOp::SubI:
    return "subi";
  case NOp::MulI:
    return "muli";
  case NOp::ModI:
    return "modi";
  case NOp::NegI:
    return "negi";
  case NOp::AddINoOvf:
    return "addi.nc";
  case NOp::SubINoOvf:
    return "subi.nc";
  case NOp::MulINoOvf:
    return "muli.nc";
  case NOp::AddD:
    return "addd";
  case NOp::SubD:
    return "subd";
  case NOp::MulD:
    return "muld";
  case NOp::DivD:
    return "divd";
  case NOp::ModD:
    return "modd";
  case NOp::NegD:
    return "negd";
  case NOp::BitAnd:
    return "bitand";
  case NOp::BitOr:
    return "bitor";
  case NOp::BitXor:
    return "bitxor";
  case NOp::Shl:
    return "shl";
  case NOp::Shr:
    return "shr";
  case NOp::UShr:
    return "ushr";
  case NOp::BitNot:
    return "bitnot";
  case NOp::TruncToInt32:
    return "trunctoint32";
  case NOp::ToDouble:
    return "todouble";
  case NOp::CmpI:
    return "cmpi";
  case NOp::CmpD:
    return "cmpd";
  case NOp::CmpS:
    return "cmps";
  case NOp::CmpGeneric:
    return "cmpgeneric";
  case NOp::Not:
    return "not";
  case NOp::Concat:
    return "concat";
  case NOp::TypeOfV:
    return "typeof";
  case NOp::GuardTag:
    return "guardtag";
  case NOp::GuardNumber:
    return "guardnumber";
  case NOp::BoundsCheck:
    return "boundscheck";
  case NOp::GuardArrLen:
    return "guardarrlen";
  case NOp::CheckDepth:
    return "checkdepth";
  case NOp::ArrayLen:
    return "arraylen";
  case NOp::StrLen:
    return "strlen";
  case NOp::LoadElem:
    return "loadelem";
  case NOp::StoreElem:
    return "storeelem";
  case NOp::CharCodeAt:
    return "charcodeat";
  case NOp::FromCharCode:
    return "fromcharcode";
  case NOp::GenBin:
    return "genbin";
  case NOp::GenUn:
    return "genun";
  case NOp::GenGetElem:
    return "gengetelem";
  case NOp::GenSetElem:
    return "gensetelem";
  case NOp::GenGetProp:
    return "gengetprop";
  case NOp::GenSetProp:
    return "gensetprop";
  case NOp::GetGlobal:
    return "getglobal";
  case NOp::SetGlobal:
    return "setglobal";
  case NOp::GetEnv:
    return "getenv";
  case NOp::SetEnv:
    return "setenv";
  case NOp::NewArrElems:
    return "newarrelems";
  case NOp::NewArrLen:
    return "newarrlen";
  case NOp::NewObj:
    return "newobj";
  case NOp::InitProp:
    return "initprop";
  case NOp::MakeClos:
    return "makeclos";
  case NOp::PushArg:
    return "pusharg";
  case NOp::CallV:
    return "callv";
  case NOp::CallM:
    return "callm";
  case NOp::NewCall:
    return "newcall";
  case NOp::MathFn:
    return "mathfn";
  case NOp::Jmp:
    return "jmp";
  case NOp::JTrue:
    return "jtrue";
  case NOp::JFalse:
    return "jfalse";
  case NOp::Ret:
    return "ret";
  }
  JITVS_UNREACHABLE("bad NOp");
}

size_t NativeCode::guardCount() const {
  size_t N = 0;
  for (const NInstr &I : Code) {
    switch (I.Op) {
    case NOp::GuardTag:
    case NOp::GuardNumber:
    case NOp::BoundsCheck:
    case NOp::GuardArrLen:
    case NOp::AddI:
    case NOp::SubI:
    case NOp::MulI:
    case NOp::ModI:
    case NOp::NegI:
      ++N;
      break;
    default:
      break;
    }
  }
  return N;
}

std::string NativeCode::disassemble() const {
  std::string Out;
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "native %s: %zu instrs, frame=%u, osr@%d\n",
                Info ? Info->Name.c_str() : "?", Code.size(), FrameSize,
                OsrOffset == ~0u ? -1 : static_cast<int>(OsrOffset));
  Out += Buf;
  for (size_t I = 0, E = Code.size(); I != E; ++I) {
    const NInstr &N = Code[I];
    std::snprintf(Buf, sizeof(Buf), "  %4zu: %-13s r%u, r%u, r%u, %d", I,
                  nopName(N.Op), N.A, N.B, N.C, N.Imm);
    Out += Buf;
    if (N.Op == NOp::LoadConst && static_cast<size_t>(N.Imm) <
                                      ConstPool.size()) {
      Out += "  ; ";
      Out += ConstPool[N.Imm].toDisplayString();
    }
    Out += '\n';
  }
  return Out;
}
