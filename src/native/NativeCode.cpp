//===- native/NativeCode.cpp - Disassembly --------------------------------===//

#include "native/NativeCode.h"

#include "support/Assert.h"
#include "vm/Bytecode.h"

#include <cstdio>

using namespace jitvs;

const char *jitvs::nopName(NOp O) {
  static const char *const Names[] = {
#define JITVS_NOP_NAME(Name, Str) Str,
      JITVS_FOREACH_NOP(JITVS_NOP_NAME)
#undef JITVS_NOP_NAME
  };
  static_assert(sizeof(Names) / sizeof(Names[0]) == NumNOps);
  assert(static_cast<size_t>(O) < NumNOps && "bad NOp");
  return Names[static_cast<size_t>(O)];
}

size_t NativeCode::guardCount() const {
  size_t N = 0;
  for (const NInstr &I : Code) {
    switch (I.Op) {
    case NOp::GuardTag:
    case NOp::GuardNumber:
    case NOp::BoundsCheck:
    case NOp::GuardArrLen:
    case NOp::GuardShape:
    case NOp::AddI:
    case NOp::SubI:
    case NOp::MulI:
    case NOp::ModI:
    case NOp::NegI:
    // Fused forms that still carry a bailout point: the guard did not go
    // away, it was folded into the macro-op, so the tier-cost tables stay
    // monotone across a fusion on/off toggle.
    case NOp::AddIImm:
    case NOp::SubIImm:
    case NOp::MulIImm:
    case NOp::GuardTagMov:
      ++N;
      break;
    default:
      break;
    }
  }
  return N;
}

std::string NativeCode::disassemble() const {
  std::string Out;
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "native %s: %zu instrs, frame=%u, osr@%d\n",
                Info ? Info->Name.c_str() : "?", Code.size(), FrameSize,
                OsrOffset == ~0u ? -1 : static_cast<int>(OsrOffset));
  Out += Buf;
  for (size_t I = 0, E = Code.size(); I != E; ++I) {
    const NInstr &N = Code[I];
    std::snprintf(Buf, sizeof(Buf), "  %4zu: %-13s r%u, r%u, r%u, %d", I,
                  nopName(N.Op), N.A, N.B, N.C, N.Imm);
    Out += Buf;
    if (N.Op == NOp::LoadConst && static_cast<size_t>(N.Imm) <
                                      ConstPool.size()) {
      Out += "  ; ";
      Out += ConstPool[N.Imm].toDisplayString();
    }
    Out += '\n';
  }
  return Out;
}
