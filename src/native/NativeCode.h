//===- native/NativeCode.h - The "native" register machine -----*- C++ -*-===//
///
/// \file
/// The compiled-code format our backend targets: a dense register-machine
/// instruction stream executed by a threaded dispatch loop. It stands in
/// for IonMonkey's x86 output (see DESIGN.md for why this substitution
/// preserves what the paper measures): instruction count is the code-size
/// metric of Figure 10, and fewer instructions/guards directly shorten
/// execution.
///
/// Instructions address 16 physical registers; values spilled by the
/// linear-scan allocator live in spill slots reachable only through
/// LoadSpill/StoreSpill. Bailout snapshots map interpreter frame slots to
/// registers/spill slots/constants so a guard failure can reconstruct the
/// interpreter frame mid-function.
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_NATIVE_NATIVECODE_H
#define JITVS_NATIVE_NATIVECODE_H

#include "vm/Value.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace jitvs {

struct FunctionInfo;
class Shape;

/// Number of addressable physical registers (instruction operands).
constexpr unsigned NumPhysRegs = 16;

/// X-macro over every native opcode: M(EnumName, "display-name"). The
/// NOp enum, nopName() and the executor's computed-goto dispatch table
/// are all generated from this list, so the three can never drift out of
/// enum order. Field conventions are documented per op below.
///
/// The trailing block lists the fused macro-ops produced by the
/// post-regalloc peephole pass (native/Fusion.cpp). A fused pair keeps
/// both code slots: slot 1 holds the fused opcode with the first
/// instruction's fields, slot 2 becomes FuseData and keeps the second
/// instruction's fields. Handlers read both slots and advance past the
/// pair in one dispatch, so jump targets, snapshot metadata and the
/// Figure-10 code-size metric are all preserved exactly.
#define JITVS_FOREACH_NOP(M)                                                   \
  M(Nop, "nop")                                                                \
  /* Moves and materialization. */                                             \
  M(Mov, "mov")               /* A=dst, B=src. */                              \
  M(LoadConst, "loadconst")   /* A=dst, Imm=constant pool index. */            \
  M(LoadSpill, "loadspill")   /* A=dst, Imm=spill slot. */                     \
  M(StoreSpill, "storespill") /* A=src, Imm=spill slot. */                     \
  M(LoadParam, "loadparam")   /* A=dst, Imm=param index (undef if absent). */  \
  M(LoadThis, "loadthis")     /* A=dst. */                                     \
  M(LoadOsr, "loadosr")       /* A=dst, Imm=frame slot of the OSR frame. */    \
  /* Int32 arithmetic; Imm = snapshot id (bails on overflow / corners). */     \
  M(AddI, "addi")                                                              \
  M(SubI, "subi")                                                              \
  M(MulI, "muli")                                                              \
  M(ModI, "modi")                                                              \
  M(NegI, "negi") /* A=dst, B=src, Imm=snapshot. */                            \
  /* Unchecked int32 arithmetic: overflow-check elimination proved the */      \
  /* result range fits (paper conclusion / Sol et al.). */                     \
  M(AddINoOvf, "addi.nc")                                                      \
  M(SubINoOvf, "subi.nc")                                                      \
  M(MulINoOvf, "muli.nc")                                                      \
  /* Double arithmetic (pure). A=dst, B=lhs, C=rhs. */                         \
  M(AddD, "addd")                                                              \
  M(SubD, "subd")                                                              \
  M(MulD, "muld")                                                              \
  M(DivD, "divd")                                                              \
  M(ModD, "modd")                                                              \
  M(NegD, "negd") /* A=dst, B=src. */                                          \
  /* Bitwise; operands int32, result int32 (UShr: double). */                  \
  M(BitAnd, "bitand")                                                          \
  M(BitOr, "bitor")                                                            \
  M(BitXor, "bitxor")                                                          \
  M(Shl, "shl")                                                                \
  M(Shr, "shr")                                                                \
  M(UShr, "ushr")                                                              \
  M(BitNot, "bitnot")           /* A=dst, B=src. */                            \
  M(TruncToInt32, "trunctoint32") /* A=dst, B=src (ECMAScript ToInt32). */     \
  M(ToDouble, "todouble")       /* A=dst, B=src (int32 or double). */          \
  /* Comparisons; A=dst(bool), B=lhs, C=rhs, Imm=comparison bytecode Op. */    \
  M(CmpI, "cmpi")                                                              \
  M(CmpD, "cmpd")                                                              \
  M(CmpS, "cmps")                                                              \
  M(CmpGeneric, "cmpgeneric")                                                  \
  M(Not, "not")       /* A=dst, B=src (boolean negation of ToBoolean). */      \
  M(Concat, "concat") /* A=dst, B=lhs, C=rhs (strings). */                     \
  M(TypeOfV, "typeof") /* A=dst, B=src. */                                     \
  /* Guards; Imm = snapshot id. */                                             \
  M(GuardTag, "guardtag")       /* A=src, B=expected ValueTag. */              \
  M(GuardNumber, "guardnumber") /* A=dst, B=src; result double. */             \
  M(BoundsCheck, "boundscheck") /* A=index(int32), B=length(int32). */         \
  M(GuardArrLen, "guardarrlen") /* A=array, C=pool index of exp. length. */    \
  M(CheckDepth, "checkdepth")   /* Recursion guard; error, no bail. */         \
  /* Arrays / strings (in-bounds guaranteed by earlier guards). */             \
  M(ArrayLen, "arraylen")         /* A=dst, B=array. */                        \
  M(StrLen, "strlen")             /* A=dst, B=string. */                       \
  M(LoadElem, "loadelem")         /* A=dst, B=array, C=index. */               \
  M(StoreElem, "storeelem")       /* A=array, B=index, C=value, Imm=GC */      \
                                  /* write-barrier flag. */                    \
  M(CharCodeAt, "charcodeat")     /* A=dst, B=string, C=index. */              \
  M(FromCharCode, "fromcharcode") /* A=dst, B=code(int32). */                  \
  /* Generic helper calls. Imm carries the bytecode op / name id. */           \
  M(GenBin, "genbin")         /* A=dst, B=lhs, C=rhs, Imm=bytecode Op. */      \
  M(GenUn, "genun")           /* A=dst, B=src, Imm=bytecode Op. */             \
  M(GenGetElem, "gengetelem") /* A=dst, B=obj, C=index. */                     \
  M(GenSetElem, "gensetelem") /* A=obj, B=index, C=value. */                   \
  M(GenGetProp, "gengetprop") /* A=dst, B=obj, Imm=name id. */                 \
  M(GenSetProp, "gensetprop") /* A=obj, B=value, Imm=name id. */               \
  /* Shape-guarded property fast paths (vm/Shape.h). GuardShape scans a */     \
  /* nullptr-terminated run of ShapePool starting at C; AddSlot's C names */   \
  /* the single pool entry holding the transition-target shape. */             \
  M(GuardShape, "guardshape") /* A=dst, B=obj, C=pool run, Imm=snapshot. */    \
  M(LoadSlot, "loadslot")     /* A=dst, B=obj, Imm=slot index. */              \
  M(StoreSlot, "storeslot")   /* A=obj, B=value, C=barrier flag, Imm=slot. */  \
  M(AddSlot, "addslot")       /* A=obj, B=value, C=pool idx, Imm=slot */       \
                              /* (no free field: always barriers). */          \
  M(GetGlobal, "getglobal")   /* A=dst, Imm=global slot. */                    \
  M(SetGlobal, "setglobal")   /* A=src, Imm=global slot. */                    \
  M(GetEnv, "getenv")         /* A=dst, B=depth, Imm=env slot. */              \
  M(SetEnv, "setenv")         /* A=src, B=depth, C=barrier flag, Imm=slot. */  \
  /* Allocation. */                                                            \
  M(NewArrElems, "newarrelems") /* A=dst, Imm=count (staged args). */          \
  M(NewArrLen, "newarrlen")     /* A=dst, B=length(int32). */                  \
  M(NewObj, "newobj")           /* A=dst. */                                   \
  M(InitProp, "initprop") /* A=obj, B=value, C=barrier flag, Imm=name id. */   \
  M(MakeClos, "makeclos")       /* A=dst, Imm=function index. */               \
  /* Calls (arguments staged with PushArg). */                                 \
  M(PushArg, "pusharg") /* A=src. */                                           \
  M(CallV, "callv")     /* A=dst, B=callee, Imm=argc. */                       \
  M(CallM, "callm")     /* A=dst, B=receiver, C=argc, Imm=name id. */          \
  M(CallT, "callt")     /* A=dst, B=callee, C=argc, Imm=name id (for the */    \
                        /* not-a-function error); args then `this` staged. */  \
  M(NewCall, "newcall") /* A=dst, B=callee, Imm=argc. */                       \
  M(MathFn, "mathfn") /* A=dst, B=arg0, C=arg1 or 0xFFFF, Imm=intrinsic. */    \
  /* Control flow. Imm = code offset. */                                       \
  M(Jmp, "jmp")                                                                \
  M(JTrue, "jtrue")   /* A=cond. */                                            \
  M(JFalse, "jfalse") /* A=cond. */                                            \
  M(Ret, "ret")       /* A=value. */                                           \
  /* --- Fused macro-ops (native/Fusion.cpp; see the header comment). --- */   \
  /* Compare+branch. Slot1: CmpI/CmpD fields. Slot2: FuseData with the */      \
  /* branch fields (A=cond, Imm=target) plus B=1 for JTrue, 0 for JFalse. */   \
  M(BrCmpII, "brcmpii")                                                        \
  M(BrCmpDD, "brcmpdd")                                                        \
  /* Constant+arithmetic. Slot1: LoadConst fields (A=const dst, Imm=pool */    \
  /* index). Slot2: FuseData with the arithmetic fields (A=dst, B=lhs, */      \
  /* C=const reg, Imm=snapshot for the checked forms). */                      \
  M(AddIImm, "addii")                                                          \
  M(SubIImm, "subii")                                                          \
  M(MulIImm, "mulii")                                                          \
  M(AddINoOvfImm, "addii.nc")                                                  \
  M(SubINoOvfImm, "subii.nc")                                                  \
  M(MulINoOvfImm, "mulii.nc")                                                  \
  M(AddDImm, "adddi")                                                          \
  M(SubDImm, "subdi")                                                          \
  M(MulDImm, "muldi")                                                          \
  M(DivDImm, "divdi")                                                          \
  /* Checked unbox: GuardTag+Mov. Slot1: GuardTag fields (A=src, B=tag, */     \
  /* Imm=snapshot). Slot2: FuseData with the Mov fields (A=dst, B=src). */     \
  M(GuardTagMov, "guardtag.mov")                                               \
  /* The preserved second slot of a fused pair: holds operand fields for */    \
  /* the fused handler, never dispatched (executes as a nop if it is). */      \
  M(FuseData, "fusedata")

enum class NOp : uint8_t {
#define JITVS_NOP_ENUM(Name, Str) Name,
  JITVS_FOREACH_NOP(JITVS_NOP_ENUM)
#undef JITVS_NOP_ENUM
};

/// Number of native opcodes (dispatch-table size).
#define JITVS_NOP_COUNT_ONE(Name, Str) +1
constexpr size_t NumNOps = 0 JITVS_FOREACH_NOP(JITVS_NOP_COUNT_ONE);
#undef JITVS_NOP_COUNT_ONE

const char *nopName(NOp O);

/// One native instruction (fixed width).
struct NInstr {
  NOp Op = NOp::Nop;
  uint16_t A = 0, B = 0, C = 0;
  int32_t Imm = 0;
};

/// Where a snapshot entry's value lives.
struct SnapshotEntry {
  bool IsConst = false;
  uint32_t Index = 0; ///< Register/spill index, or constant pool index.
};

/// Interpreter-state description for one bailout point.
struct Snapshot {
  uint32_t PC = 0; ///< Bytecode offset to re-execute from.
  std::vector<SnapshotEntry> Entries; ///< Frame slots then operand stack.
  uint32_t NumFrameSlots = 0;
};

/// Precise GC liveness for one runtime-call site: the frame locations
/// (physical registers and NumPhysRegs+spill slots) whose values are
/// live across the call, per the register allocator's intervals —
/// including values kept alive only by bailout resume points, whose uses
/// the allocator already folds into the same intervals. The executor
/// publishes the current call's map while the call is in flight; tracing
/// visits exactly these locations and poisons the rest.
struct StackMap {
  uint32_t PC = 0;            ///< Instruction index of the call.
  std::vector<uint16_t> Live; ///< Live frame locations, sorted ascending.
};

/// A compiled function binary.
class NativeCode {
public:
  explicit NativeCode(FunctionInfo *Info) : Info(Info) {}

  FunctionInfo *Info;
  std::vector<NInstr> Code;
  std::vector<Value> ConstPool; ///< GC-rooted by the engine.
  /// Shapes referenced by GuardShape (nullptr-terminated runs) and
  /// AddSlot (single entries). Not GC-rooted: shapes live as long as the
  /// Runtime's ShapeTree, which outlives any compiled code.
  std::vector<const Shape *> ShapePool;
  std::vector<Snapshot> Snapshots;
  /// Per-call-site GC liveness, sorted by PC (codegen emits call sites
  /// in instruction order).
  std::vector<StackMap> StackMaps;

  uint32_t EntryOffset = 0;
  uint32_t OsrOffset = ~0u; ///< ~0 = no OSR entry.
  uint32_t OsrPc = ~0u;     ///< Bytecode LoopHead this OSR entry serves.
  /// Total frame size: NumPhysRegs + spill slots.
  uint32_t FrameSize = NumPhysRegs;

  /// Number of adjacent pairs combined by the macro-op fusion pass.
  /// Fusion keeps both slots of a pair (slot 2 becomes FuseData), so
  /// Code.size() — and with it the Figure 10 metric — is unchanged.
  uint32_t FusedPairs = 0;

  /// Code size in instructions — the Figure 10 metric. Reported from the
  /// pre-fusion stream; fusion preserves it by construction (see
  /// FusedPairs), so this is valid whether or not fusion ran.
  size_t sizeInInstructions() const { return Code.size(); }

  /// Dispatched instruction count after fusion: each fused pair executes
  /// as one macro-op, so the dynamic stream is FusedPairs shorter.
  size_t sizeInInstructionsPostFusion() const {
    return Code.size() - FusedPairs;
  }

  /// Number of instructions that can bail to the interpreter (tag/number
  /// guards, bounds/length checks, overflow-checked int32 arithmetic) —
  /// the tier-policy bench's second axis: the type tier should sit
  /// between value-specialized and generic code on this metric too.
  size_t guardCount() const;

  uint16_t addConstant(const Value &V) {
    ConstPool.push_back(V);
    return static_cast<uint16_t>(ConstPool.size() - 1);
  }

  uint16_t addShape(const Shape *S) {
    ShapePool.push_back(S);
    return static_cast<uint16_t>(ShapePool.size() - 1);
  }

  /// \returns the stack map for the call instruction at \p PC, or
  /// nullptr when none was recorded (the frame then traces every
  /// register conservatively, which is always sound — maps only tighten
  /// liveness).
  const StackMap *mapForPC(uint32_t PC) const {
    size_t Lo = 0, Hi = StackMaps.size();
    while (Lo < Hi) {
      size_t Mid = Lo + (Hi - Lo) / 2;
      if (StackMaps[Mid].PC < PC)
        Lo = Mid + 1;
      else
        Hi = Mid;
    }
    return Lo < StackMaps.size() && StackMaps[Lo].PC == PC ? &StackMaps[Lo]
                                                           : nullptr;
  }

  std::string disassemble() const;
};

/// Deferred reclamation of unlinked binaries. When the engine replaces a
/// function's code, in-flight native frames may still be executing the
/// old body (each execution pins its binary with a shared_ptr), and its
/// constant pool must stay GC-rooted until those frames drain through
/// their bailout/resume points. Retired code therefore parks here; the
/// engine ticks the epoch at dispatch boundaries (interpreter call /
/// loop-head hooks — natural safepoints where no native frame of a
/// *newly* retired body can be mid-flight without holding its pin), and
/// an entry is freed only once it is at least two epochs old *and* the
/// reclaimer holds the last reference. Single-threaded: main thread only.
class CodeReclaimer {
public:
  void retire(std::shared_ptr<NativeCode> Code) {
    if (Code)
      Retired.push_back({std::move(Code), Epoch});
  }

  /// Advances the epoch and frees every eligible entry.
  void tick() {
    ++Epoch;
    for (size_t I = 0; I != Retired.size();) {
      if (Epoch >= Retired[I].RetiredAtEpoch + 2 &&
          Retired[I].Code.use_count() == 1) {
        Retired[I] = std::move(Retired.back());
        Retired.pop_back();
      } else {
        ++I;
      }
    }
  }

  size_t pending() const { return Retired.size(); }
  uint64_t epoch() const { return Epoch; }

  /// Visits every binary still parked (GC rooting of constant pools).
  template <typename Fn> void forEachRetained(Fn F) const {
    for (const Entry &E : Retired)
      F(*E.Code);
  }

private:
  struct Entry {
    std::shared_ptr<NativeCode> Code;
    uint64_t RetiredAtEpoch = 0;
  };
  std::vector<Entry> Retired;
  uint64_t Epoch = 0;
};

} // namespace jitvs

#endif // JITVS_NATIVE_NATIVECODE_H
