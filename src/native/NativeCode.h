//===- native/NativeCode.h - The "native" register machine -----*- C++ -*-===//
///
/// \file
/// The compiled-code format our backend targets: a dense register-machine
/// instruction stream executed by a threaded dispatch loop. It stands in
/// for IonMonkey's x86 output (see DESIGN.md for why this substitution
/// preserves what the paper measures): instruction count is the code-size
/// metric of Figure 10, and fewer instructions/guards directly shorten
/// execution.
///
/// Instructions address 16 physical registers; values spilled by the
/// linear-scan allocator live in spill slots reachable only through
/// LoadSpill/StoreSpill. Bailout snapshots map interpreter frame slots to
/// registers/spill slots/constants so a guard failure can reconstruct the
/// interpreter frame mid-function.
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_NATIVE_NATIVECODE_H
#define JITVS_NATIVE_NATIVECODE_H

#include "vm/Value.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace jitvs {

struct FunctionInfo;

/// Number of addressable physical registers (instruction operands).
constexpr unsigned NumPhysRegs = 16;

enum class NOp : uint8_t {
  Nop,

  // Moves and materialization.
  Mov,        ///< A=dst, B=src.
  LoadConst,  ///< A=dst, Imm=constant pool index.
  LoadSpill,  ///< A=dst, Imm=spill slot.
  StoreSpill, ///< A=src, Imm=spill slot.
  LoadParam,  ///< A=dst, Imm=parameter index (undefined when absent).
  LoadThis,   ///< A=dst.
  LoadOsr,    ///< A=dst, Imm=frame slot of the OSR frame.

  // Int32 arithmetic; Imm = snapshot id (bails on overflow / corner
  // cases).
  AddI,
  SubI,
  MulI,
  ModI,
  NegI, ///< A=dst, B=src, Imm=snapshot.

  // Unchecked int32 arithmetic: the overflow-check elimination pass
  // proved the result range fits (paper conclusion / Sol et al.).
  AddINoOvf,
  SubINoOvf,
  MulINoOvf,

  // Double arithmetic (pure). A=dst, B=lhs, C=rhs.
  AddD,
  SubD,
  MulD,
  DivD,
  ModD,
  NegD, ///< A=dst, B=src.

  // Bitwise; operands int32, result int32 (UShr: double).
  BitAnd,
  BitOr,
  BitXor,
  Shl,
  Shr,
  UShr,
  BitNot, ///< A=dst, B=src.

  TruncToInt32, ///< A=dst, B=src (any value; ECMAScript ToInt32).
  ToDouble,     ///< A=dst, B=src (int32 or double).

  // Comparisons; A=dst(bool), B=lhs, C=rhs, Imm=comparison bytecode Op.
  CmpI,
  CmpD,
  CmpS,
  CmpGeneric,

  Not,    ///< A=dst, B=src (boolean negation of ToBoolean).
  Concat, ///< A=dst, B=lhs, C=rhs (strings).
  TypeOfV,///< A=dst, B=src.

  // Guards; Imm = snapshot id.
  GuardTag,      ///< A=src, B=expected ValueTag.
  GuardNumber,   ///< A=dst, B=src; bails unless number, result double.
  BoundsCheck,   ///< A=index(int32), B=length(int32).
  GuardArrLen,   ///< A=array, C=const pool index of expected length.
  CheckDepth,    ///< Recursion guard; reports an error (no bail).

  // Arrays / strings (in-bounds guaranteed by earlier guards).
  ArrayLen,     ///< A=dst, B=array.
  StrLen,       ///< A=dst, B=string.
  LoadElem,     ///< A=dst, B=array, C=index.
  StoreElem,    ///< A=array, B=index, C=value.
  CharCodeAt,   ///< A=dst, B=string, C=index.
  FromCharCode, ///< A=dst, B=code(int32).

  // Generic helper calls. Imm carries the bytecode op / name id.
  GenBin,     ///< A=dst, B=lhs, C=rhs, Imm=bytecode Op.
  GenUn,      ///< A=dst, B=src, Imm=bytecode Op.
  GenGetElem, ///< A=dst, B=obj, C=index.
  GenSetElem, ///< A=obj, B=index, C=value.
  GenGetProp, ///< A=dst, B=obj, Imm=name id.
  GenSetProp, ///< A=obj, B=value, Imm=name id.

  GetGlobal, ///< A=dst, Imm=global slot.
  SetGlobal, ///< A=src, Imm=global slot.
  GetEnv,    ///< A=dst, B=depth, Imm=env slot.
  SetEnv,    ///< A=src, B=depth, Imm=env slot.

  // Allocation.
  NewArrElems, ///< A=dst, Imm=count (consumes staged arguments).
  NewArrLen,   ///< A=dst, B=length(int32).
  NewObj,      ///< A=dst.
  InitProp,    ///< A=obj, B=value, Imm=name id.
  MakeClos,    ///< A=dst, Imm=function index.

  // Calls (arguments staged with PushArg).
  PushArg, ///< A=src.
  CallV,   ///< A=dst, B=callee, Imm=argc.
  CallM,   ///< A=dst, B=receiver, C=argc, Imm=name id.
  NewCall, ///< A=dst, B=callee, Imm=argc.

  MathFn, ///< A=dst, B=arg0, C=arg1 or 0xFFFF, Imm=MathIntrinsic.

  // Control flow. Imm = code offset.
  Jmp,
  JTrue,  ///< A=cond.
  JFalse, ///< A=cond.
  Ret,    ///< A=value.
};

const char *nopName(NOp O);

/// One native instruction (fixed width).
struct NInstr {
  NOp Op = NOp::Nop;
  uint16_t A = 0, B = 0, C = 0;
  int32_t Imm = 0;
};

/// Where a snapshot entry's value lives.
struct SnapshotEntry {
  bool IsConst = false;
  uint32_t Index = 0; ///< Register/spill index, or constant pool index.
};

/// Interpreter-state description for one bailout point.
struct Snapshot {
  uint32_t PC = 0; ///< Bytecode offset to re-execute from.
  std::vector<SnapshotEntry> Entries; ///< Frame slots then operand stack.
  uint32_t NumFrameSlots = 0;
};

/// A compiled function binary.
class NativeCode {
public:
  explicit NativeCode(FunctionInfo *Info) : Info(Info) {}

  FunctionInfo *Info;
  std::vector<NInstr> Code;
  std::vector<Value> ConstPool; ///< GC-rooted by the engine.
  std::vector<Snapshot> Snapshots;

  uint32_t EntryOffset = 0;
  uint32_t OsrOffset = ~0u; ///< ~0 = no OSR entry.
  uint32_t OsrPc = ~0u;     ///< Bytecode LoopHead this OSR entry serves.
  /// Total frame size: NumPhysRegs + spill slots.
  uint32_t FrameSize = NumPhysRegs;

  /// Code size in instructions — the Figure 10 metric.
  size_t sizeInInstructions() const { return Code.size(); }

  /// Number of instructions that can bail to the interpreter (tag/number
  /// guards, bounds/length checks, overflow-checked int32 arithmetic) —
  /// the tier-policy bench's second axis: the type tier should sit
  /// between value-specialized and generic code on this metric too.
  size_t guardCount() const;

  uint16_t addConstant(const Value &V) {
    ConstPool.push_back(V);
    return static_cast<uint16_t>(ConstPool.size() - 1);
  }

  std::string disassemble() const;
};

} // namespace jitvs

#endif // JITVS_NATIVE_NATIVECODE_H
