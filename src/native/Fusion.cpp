//===- native/Fusion.cpp - Post-regalloc macro-op fusion ------------------===//

#include "native/Fusion.h"

#include "native/NativeCode.h"

#include <vector>

using namespace jitvs;

namespace {

/// Maps a fusible second-slot arithmetic op to its fused form, or
/// NOp::Nop when the op does not participate in const+arith fusion.
NOp fusedArithForm(NOp O) {
  switch (O) {
  case NOp::AddI:
    return NOp::AddIImm;
  case NOp::SubI:
    return NOp::SubIImm;
  case NOp::MulI:
    return NOp::MulIImm;
  case NOp::AddINoOvf:
    return NOp::AddINoOvfImm;
  case NOp::SubINoOvf:
    return NOp::SubINoOvfImm;
  case NOp::MulINoOvf:
    return NOp::MulINoOvfImm;
  case NOp::AddD:
    return NOp::AddDImm;
  case NOp::SubD:
    return NOp::SubDImm;
  case NOp::MulD:
    return NOp::MulDImm;
  case NOp::DivD:
    return NOp::DivDImm;
  default:
    return NOp::Nop;
  }
}

bool isCommutativeArith(NOp O) {
  return O == NOp::AddI || O == NOp::MulI || O == NOp::AddINoOvf ||
         O == NOp::MulINoOvf || O == NOp::AddD || O == NOp::MulD;
}

/// Slots a branch may land on. The second slot of a fused pair must not
/// be one: FuseData is not independently executable with the original
/// semantics, so a targeted instruction has to stay unfused.
std::vector<bool> collectJumpTargets(const NativeCode &Code) {
  std::vector<bool> Target(Code.Code.size(), false);
  auto Mark = [&](uint32_t Off) {
    if (Off < Target.size())
      Target[Off] = true;
  };
  Mark(Code.EntryOffset);
  if (Code.OsrOffset != ~0u)
    Mark(Code.OsrOffset);
  for (size_t I = 0, E = Code.Code.size(); I != E; ++I) {
    const NInstr &N = Code.Code[I];
    switch (N.Op) {
    case NOp::Jmp:
    case NOp::JTrue:
    case NOp::JFalse:
      Mark(static_cast<uint32_t>(N.Imm));
      break;
    // Already-fused branches keep their target in the FuseData slot;
    // idempotence if the pass is ever run twice.
    case NOp::BrCmpII:
    case NOp::BrCmpDD:
      if (I + 1 < E)
        Mark(static_cast<uint32_t>(Code.Code[I + 1].Imm));
      break;
    default:
      break;
    }
  }
  return Target;
}

} // namespace

unsigned jitvs::fuseMacroOps(NativeCode &Code, FusionStats *Stats) {
  FusionStats Local;
  FusionStats &S = Stats ? *Stats : Local;
  if (Stats)
    *Stats = FusionStats();

  std::vector<NInstr> &C = Code.Code;
  if (C.size() < 2)
    return 0;
  const std::vector<bool> IsTarget = collectJumpTargets(Code);

  unsigned Fused = 0;
  for (size_t I = 0; I + 1 < C.size(); /* step in body */) {
    // A branch landing on slot 2 must still execute it alone.
    if (IsTarget[I + 1]) {
      ++I;
      continue;
    }
    NInstr &First = C[I];
    NInstr &Second = C[I + 1];
    NOp FusedOp = NOp::Nop;

    // Compare + branch on the freshly-computed flag.
    if ((First.Op == NOp::CmpI || First.Op == NOp::CmpD) &&
        (Second.Op == NOp::JTrue || Second.Op == NOp::JFalse) &&
        Second.A == First.A) {
      FusedOp = First.Op == NOp::CmpI ? NOp::BrCmpII : NOp::BrCmpDD;
      // Record the branch sense in the spare B field of the data slot so
      // the handler need not re-inspect the original opcode.
      Second.B = Second.Op == NOp::JTrue ? 1 : 0;
      ++S.CmpBranch;
    }

    // Constant materialization + arithmetic consuming it.
    if (FusedOp == NOp::Nop && First.Op == NOp::LoadConst) {
      NOp Form = fusedArithForm(Second.Op);
      if (Form != NOp::Nop) {
        if (Second.C == First.A) {
          FusedOp = Form;
        } else if (Second.B == First.A && isCommutativeArith(Second.Op)) {
          // Normalize the constant to the rhs; legal for commutative ops.
          std::swap(Second.B, Second.C);
          FusedOp = Form;
        }
        if (FusedOp != NOp::Nop)
          ++S.ConstArith;
      }
    }

    // Tag guard + unbox move of the guarded value (Unbox lowering).
    if (FusedOp == NOp::Nop && First.Op == NOp::GuardTag &&
        Second.Op == NOp::Mov && Second.B == First.A) {
      FusedOp = NOp::GuardTagMov;
      ++S.GuardMov;
    }

    if (FusedOp == NOp::Nop) {
      ++I;
      continue;
    }
    // Slot-preserving rewrite: slot 1 keeps its fields under the fused
    // opcode, slot 2 keeps its fields under FuseData.
    First.Op = FusedOp;
    Second.Op = NOp::FuseData;
    ++Fused;
    I += 2;
  }

  Code.FusedPairs += Fused;
  return Fused;
}
