//===- native/Fusion.h - Post-regalloc macro-op fusion ----------*- C++ -*-===//
///
/// \file
/// Peephole pass combining hot adjacent NInstr pairs into fused macro-ops
/// so the threaded dispatch loop executes them in one dispatch (the
/// superinstruction technique of Ertl & Gregg). Fusion is slot-preserving:
/// the pair keeps both code slots — slot 1 gets the fused opcode with the
/// first instruction's fields, slot 2 becomes NOp::FuseData and keeps the
/// second instruction's fields. Consequences, all by construction:
///
///  - jump targets and the OSR/entry offsets stay valid (no instruction
///    moves or disappears);
///  - snapshots and the bailout PC convention (BailPc = slot-1 offset)
///    are untouched, so deoptimization reconstruction is unchanged;
///  - Code.size(), the paper's Figure 10 code-size metric, is identical
///    pre- and post-fusion (NativeCode::FusedPairs records the dynamic
///    win separately).
///
/// A pair is never fused when slot 2 is a jump target: a branch landing
/// there must still execute the second instruction alone, and FuseData is
/// not independently executable with the original semantics.
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_NATIVE_FUSION_H
#define JITVS_NATIVE_FUSION_H

namespace jitvs {

class NativeCode;

/// Per-pattern counts from one fusion run (telemetry / tests).
struct FusionStats {
  unsigned CmpBranch = 0;  ///< CmpI/CmpD + JTrue/JFalse -> BrCmpII/DD.
  unsigned ConstArith = 0; ///< LoadConst + int/double arith -> *Imm.
  unsigned GuardMov = 0;   ///< GuardTag + Mov -> GuardTagMov.
  unsigned total() const { return CmpBranch + ConstArith + GuardMov; }
};

/// Rewrites fusible pairs in \p Code in place and returns the number of
/// pairs fused (also recorded in Code.FusedPairs, accumulating if run
/// more than once). \p Stats, when given, receives per-pattern counts.
unsigned fuseMacroOps(NativeCode &Code, FusionStats *Stats = nullptr);

} // namespace jitvs

#endif // JITVS_NATIVE_FUSION_H
