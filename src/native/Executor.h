//===- native/Executor.h - Native-code execution ----------------*- C++ -*-===//
///
/// \file
/// The dispatch loop for NativeCode. Guard failures surface as Bailout
/// results carrying a snapshot id plus the live register file, from which
/// the JIT engine reconstructs an interpreter frame (deoptimization).
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_NATIVE_EXECUTOR_H
#define JITVS_NATIVE_EXECUTOR_H

#include "native/NativeCode.h"
#include "telemetry/BailoutReason.h"
#include "vm/GC.h"
#include "vm/Object.h"

#include <vector>

namespace jitvs {

class Runtime;

/// Outcome of a native execution.
struct ExecResult {
  enum Kind { Ok, Bailout, Error } K = Ok;
  Value Result;
  uint32_t SnapshotId = 0;
  NOp BailOp = NOp::Nop;
  /// Why the guard failed, classified at the bail site (the taxonomy the
  /// engine's per-reason counters and telemetry events report under).
  BailoutReason BailReason = BailoutReason::Unknown;
  /// Native code offset of the failing guard: with the function identity
  /// this keys the per-site bailout counters.
  uint32_t BailPc = 0;
  /// Live register file at the bailout point (FrameSize entries).
  std::vector<Value> RegsAtBail;
  /// Environment the native frame was using at the bailout point (either
  /// adopted from the OSR frame or created by the native prologue).
  Environment *EnvAtBail = nullptr;
};

/// How the dispatch loop advances from one instruction to the next.
enum class DispatchMode {
  Switch, ///< Portable while+switch loop (works on any compiler).
  Goto,   ///< Computed-goto threaded dispatch (GCC/Clang `&&label`).
};

/// Executes native code frames.
class Executor {
public:
  explicit Executor(Runtime &RT) : RT(RT), Mode(defaultDispatchMode()) {}

  /// True when this build supports computed-goto dispatch.
  static bool hasComputedGoto();

  /// Mode selected by `JITVS_DISPATCH=goto|switch` (read once); defaults
  /// to Goto where supported and silently falls back to Switch elsewhere.
  static DispatchMode defaultDispatchMode();

  void setDispatchMode(DispatchMode M) {
    Mode = M == DispatchMode::Goto && !hasComputedGoto() ? DispatchMode::Switch
                                                         : M;
  }
  DispatchMode dispatchMode() const { return Mode; }

  /// Runs \p Code. Entering at the OSR offset requires \p OsrSlots (the
  /// interpreter frame slots) and the frame's environments.
  ExecResult run(const NativeCode &Code, const Value &ThisV,
                 const Value *Args, size_t NumArgs, bool AtOsr,
                 const Value *OsrSlots, size_t NumOsrSlots,
                 Environment *Env, Environment *ClosureEnv);

private:
  Runtime &RT;
  DispatchMode Mode;
};

} // namespace jitvs

#endif // JITVS_NATIVE_EXECUTOR_H
