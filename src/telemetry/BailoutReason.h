//===- telemetry/BailoutReason.h - Why native code deoptimized --*- C++ -*-===//
///
/// \file
/// The bailout-reason taxonomy. Every guard failure that deoptimizes
/// native code back to the interpreter is classified into one of these
/// reasons at the bail site (native/Executor.cpp) and carried through
/// ExecResult into the engine's per-reason counters and the telemetry
/// event stream. Mirrors IonMonkey's BailoutKind: attributing a deopt to
/// its reason *and* site is what makes policy regressions diagnosable
/// (e.g. "despecializations spiked because MulI overflow guards started
/// failing in kraken-crypto").
///
/// This header is dependency-free so both the native layer and the
/// telemetry layer can include it.
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_TELEMETRY_BAILOUTREASON_H
#define JITVS_TELEMETRY_BAILOUTREASON_H

#include <cstddef>
#include <cstdint>

namespace jitvs {

/// Why a native frame bailed out (deoptimized) to the interpreter.
enum class BailoutReason : uint8_t {
  Unknown = 0,      ///< Classification missing (should not happen).
  IntOverflow,      ///< Checked int32 arithmetic overflowed (AddI/SubI/...).
  NegativeZero,     ///< Int32 op would produce -0; interpreter redoes it.
  TypeGuard,        ///< GuardTag: value had an unexpected tag.
  NumberGuard,      ///< GuardNumber: value was not a number.
  BoundsCheck,      ///< Array/string index out of bounds.
  ArrayLengthGuard, ///< Specialized-on array length changed.
  OsrRevalidation,  ///< OSR entry: baked-in frame values no longer match.
  ShapeGuard,       ///< GuardShape: receiver shape not in the cached set.
  Count             ///< Number of reasons (array sizing), not a reason.
};

constexpr size_t NumBailoutReasons = static_cast<size_t>(BailoutReason::Count);

/// \returns a stable lower-case name for \p R ("int-overflow", ...).
inline const char *bailoutReasonName(BailoutReason R) {
  switch (R) {
  case BailoutReason::Unknown:
    return "unknown";
  case BailoutReason::IntOverflow:
    return "int-overflow";
  case BailoutReason::NegativeZero:
    return "negative-zero";
  case BailoutReason::TypeGuard:
    return "type-guard";
  case BailoutReason::NumberGuard:
    return "number-guard";
  case BailoutReason::BoundsCheck:
    return "bounds-check";
  case BailoutReason::ArrayLengthGuard:
    return "array-length-guard";
  case BailoutReason::OsrRevalidation:
    return "osr-revalidation";
  case BailoutReason::ShapeGuard:
    return "shape-guard";
  case BailoutReason::Count:
    break;
  }
  return "invalid";
}

} // namespace jitvs

#endif // JITVS_TELEMETRY_BAILOUTREASON_H
