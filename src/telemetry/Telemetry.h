//===- telemetry/Telemetry.h - Structured JIT event tracing -----*- C++ -*-===//
///
/// \file
/// The engine's observability layer: a bounded ring buffer of typed,
/// timestamped JIT events (compiles, per-pass metrics, bailouts, cache
/// hits, despecializations, OSR entries, discards), an IonMonkey-style
/// category-filtered spew channel, per-site bailout counters, and
/// exporters producing raw JSON or Chrome trace-event JSON
/// (chrome://tracing / Perfetto "traceEvents" format).
///
/// Cost model: every instrumentation site is guarded by
/// `telemetryEnabled(category)` — a single load-and-test of a global mask
/// — so the disabled-by-default cost is one predictable branch per event.
/// Building with -DJITVS_TELEMETRY_ENABLED=0 folds even that branch away.
///
/// Activation (either works, both compose):
///  - environment: `JITVS_SPEW=compile,bailout` echoes matching events to
///    stderr as they happen; `JITVS_TRACE=out.json` records everything
///    and writes a Chrome trace at process exit; `JITVS_TRACE_JSON=f`
///    writes the raw event list instead.
///  - programmatic: `telemetry().configure(TelCompile | TelBailout)` then
///    `telemetry().writeChromeTrace(OS)`.
///
/// The recorder is process-global and thread-safe: compile workers emit
/// compile/pass events concurrently with the main thread, so the ring
/// and the per-site counters are guarded by a mutex (taken only when a
/// category is enabled — the disabled path is still one branch).
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_TELEMETRY_TELEMETRY_H
#define JITVS_TELEMETRY_TELEMETRY_H

#include "telemetry/BailoutReason.h"

#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

/// Compile-time gate: 0 compiles every instrumentation branch away.
#ifndef JITVS_TELEMETRY_ENABLED
#define JITVS_TELEMETRY_ENABLED 1
#endif

namespace jitvs {

/// Event categories (bitmask). These are also the `JITVS_SPEW` spellings:
/// `compile`, `pass`, `bailout`, `cache`, `osr`, `script`, `bench`, `all`.
enum TelemetryCategory : uint32_t {
  TelCompile = 1u << 0, ///< Compile start/end spans.
  TelPass = 1u << 1,    ///< Per-optimization-pass metrics.
  TelBailout = 1u << 2, ///< Guard-failure deoptimizations.
  TelCache = 1u << 3,   ///< Cache hits, despecializations, discards.
  TelOsr = 1u << 4,     ///< On-stack-replacement entries.
  TelScript = 1u << 5,  ///< Runtime::evaluate spans.
  TelBench = 1u << 6,   ///< Bench-harness workload-run spans.
  TelAll = (1u << 7) - 1,
};

/// \returns the spew spelling of a single category bit ("compile", ...).
const char *telemetryCategoryName(uint32_t CategoryBit);

/// \returns the bitmask for a `JITVS_SPEW`-style comma-separated list
/// ("compile,bailout"; "all"; unknown words are ignored).
uint32_t parseTelemetryCategories(const char *Spec);

/// As above, but also collects every word that did not name a category
/// into \p UnknownOut (may be null), so callers can warn about typos
/// instead of silently spewing nothing.
uint32_t parseTelemetryCategories(const char *Spec,
                                  std::vector<std::string> *UnknownOut);

/// What happened. Each kind belongs to a fixed category and documents its
/// payload-field conventions (A..D below).
enum class TelemetryEventKind : uint8_t {
  CompileStart, ///< [compile] A=1 if specialized, B=1 if OSR compile.
  CompileEnd,   ///< [compile] span; A/B as above, C=code size (instrs).
  Pass,         ///< [pass] span; A=instrs before, B=instrs after,
                ///<        C=guards removed, D=blocks after.
  CacheHit,     ///< [cache] specialized binary reused with same args.
  Despecialize, ///< [cache] Detail=cause (different-args|osr-revalidation).
  Discard,      ///< [cache] binary dropped; Detail=cause (bailout-limit).
  TierTransition, ///< [cache] a parameter moved down the specialization
                  ///< ladder; Detail=edge ("value->type"|"type->generic"),
                  ///< A=parameter index.
  Bailout,      ///< [bailout] Reason set; A=native pc, B=bytecode pc.
  OsrEntry,     ///< [osr] A=loop-head bytecode pc.
  Script,       ///< [script] span; one Runtime::evaluate.
  BenchRun,     ///< [bench] span; Func=workload, Detail=config.
};

const char *telemetryEventKindName(TelemetryEventKind K);

/// \returns the category a kind reports under.
uint32_t telemetryEventCategory(TelemetryEventKind K);

/// One recorded event. Fixed-size and allocation-free so the ring buffer
/// is cheap to write and trivially copyable; names are truncated into
/// inline storage rather than heap-allocated.
struct TelemetryEvent {
  TelemetryEventKind Kind = TelemetryEventKind::CompileStart;
  BailoutReason Reason = BailoutReason::Unknown;
  uint64_t TimeNs = 0; ///< Monotonic, relative to the telemetry epoch.
  uint64_t DurNs = 0;  ///< Span kinds only; 0 for instants.
  uint64_t A = 0, B = 0, C = 0, D = 0; ///< Kind-specific (see the enum).
  char Func[40] = {};   ///< Function (or workload) identity.
  char Detail[24] = {}; ///< Kind-specific short string (pass, cause, ...).

  void setFunc(const std::string &S) { copyInto(Func, sizeof(Func), S); }
  void setDetail(const std::string &S) {
    copyInto(Detail, sizeof(Detail), S);
  }

private:
  static void copyInto(char *Dst, size_t Cap, const std::string &S) {
    size_t N = S.size() < Cap - 1 ? S.size() : Cap - 1;
    std::memcpy(Dst, S.data(), N);
    Dst[N] = '\0';
  }
};

namespace telemetry_detail {
/// Categories currently recorded (and/or spewed). Read on the hot path;
/// written only via Telemetry::configure / setSpewMask.
extern uint32_t ActiveMask;
} // namespace telemetry_detail

/// The hot-path gate: one load + test. Call before building an event.
inline bool telemetryEnabled(uint32_t Category) {
#if JITVS_TELEMETRY_ENABLED
  return (telemetry_detail::ActiveMask & Category) != 0;
#else
  (void)Category;
  return false;
#endif
}

/// The process-global event recorder.
class Telemetry {
public:
  static constexpr size_t DefaultCapacity = 1 << 16;

  static Telemetry &instance();

  /// Sets which categories are recorded (TelAll, TelCompile|TelBailout,
  /// ...; 0 disables recording) and optionally resizes the ring. Keeps
  /// the spew mask. Clears previously buffered events when \p Capacity
  /// changes.
  void configure(uint32_t CategoryMask, size_t Capacity = 0);

  /// Categories additionally echoed to stderr as they happen. Spewed
  /// categories are implicitly recorded.
  void setSpewMask(uint32_t CategoryMask);

  uint32_t categoryMask() const { return Mask; }
  uint32_t spewMask() const { return Spew; }

  /// Drops all buffered events and per-site counters (masks unchanged).
  void clear();

  /// Records \p E (timestamping it if E.TimeNs == 0) when its category is
  /// enabled; spews it when its category is spew-enabled. Bailout events
  /// also feed the per-site counter table.
  void record(TelemetryEvent E);

  /// Nanoseconds since the telemetry epoch (process start, monotonic).
  uint64_t nowNs() const;

  // --- Ring access (oldest first) ---
  size_t size() const { return Count; }
  size_t capacity() const { return Ring.size(); }
  /// Events overwritten because the ring wrapped.
  uint64_t dropped() const { return Dropped; }
  /// \returns buffered events, oldest first.
  std::vector<TelemetryEvent> events() const;

  // --- Per-site bailout counters: (function, native pc) -> reasons ---
  struct BailoutSite {
    std::string Func;
    uint32_t NativePc = 0;
    uint32_t BytecodePc = 0;
    uint64_t Total = 0;
    uint64_t ByReason[NumBailoutReasons] = {};
  };
  /// \returns all sites, hottest first.
  std::vector<BailoutSite> bailoutSites() const;

  // --- Exporters ---
  /// Raw event list: {"events":[...], "dropped":N, "bailoutSites":[...]}.
  void writeJson(std::ostream &OS) const;
  /// Chrome trace-event format ({"traceEvents":[...]}): load the file in
  /// chrome://tracing or https://ui.perfetto.dev.
  void writeChromeTrace(std::ostream &OS) const;
  /// File-writing wrappers; \returns false (with a stderr note) on I/O
  /// failure.
  bool writeJsonFile(const std::string &Path) const;
  bool writeChromeTraceFile(const std::string &Path) const;

private:
  Telemetry();

  void spewEvent(const TelemetryEvent &E) const;

  /// Guards the ring, per-site counters and mask updates.
  mutable std::mutex Mu;
  uint32_t Mask = 0;
  uint32_t Spew = 0;
  std::vector<TelemetryEvent> Ring;
  size_t Head = 0;  ///< Next write position.
  size_t Count = 0; ///< Buffered events (<= capacity).
  uint64_t Dropped = 0;
  uint64_t EpochNs = 0;

  std::unordered_map<std::string, BailoutSite> Sites; ///< "func@pc" keys.
};

/// Shorthand for Telemetry::instance().
inline Telemetry &telemetry() { return Telemetry::instance(); }

} // namespace jitvs

#endif // JITVS_TELEMETRY_TELEMETRY_H
