//===- telemetry/Telemetry.cpp - Event recording and exporters ------------===//

#include "telemetry/Telemetry.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <ostream>

using namespace jitvs;

uint32_t jitvs::telemetry_detail::ActiveMask = 0;

const char *jitvs::telemetryCategoryName(uint32_t CategoryBit) {
  switch (CategoryBit) {
  case TelCompile:
    return "compile";
  case TelPass:
    return "pass";
  case TelBailout:
    return "bailout";
  case TelCache:
    return "cache";
  case TelOsr:
    return "osr";
  case TelScript:
    return "script";
  case TelBench:
    return "bench";
  default:
    return "?";
  }
}

uint32_t jitvs::parseTelemetryCategories(const char *Spec) {
  return parseTelemetryCategories(Spec, nullptr);
}

uint32_t
jitvs::parseTelemetryCategories(const char *Spec,
                                std::vector<std::string> *UnknownOut) {
  if (!Spec)
    return 0;
  uint32_t Mask = 0;
  std::string Word;
  auto Apply = [&Mask, UnknownOut](const std::string &W) {
    if (W.empty())
      return;
    if (W == "all") {
      Mask |= TelAll;
      return;
    }
    for (uint32_t Bit = 1; Bit < TelAll; Bit <<= 1)
      if (W == telemetryCategoryName(Bit)) {
        Mask |= Bit;
        return;
      }
    if (UnknownOut)
      UnknownOut->push_back(W);
  };
  for (const char *P = Spec;; ++P) {
    if (*P == ',' || *P == '\0') {
      Apply(Word);
      Word.clear();
      if (*P == '\0')
        break;
    } else if (*P != ' ') {
      Word += *P;
    }
  }
  return Mask;
}

const char *jitvs::telemetryEventKindName(TelemetryEventKind K) {
  switch (K) {
  case TelemetryEventKind::CompileStart:
    return "compile-start";
  case TelemetryEventKind::CompileEnd:
    return "compile";
  case TelemetryEventKind::Pass:
    return "pass";
  case TelemetryEventKind::CacheHit:
    return "cache-hit";
  case TelemetryEventKind::Despecialize:
    return "despecialize";
  case TelemetryEventKind::Discard:
    return "discard";
  case TelemetryEventKind::TierTransition:
    return "tier-transition";
  case TelemetryEventKind::Bailout:
    return "bailout";
  case TelemetryEventKind::OsrEntry:
    return "osr-entry";
  case TelemetryEventKind::Script:
    return "script";
  case TelemetryEventKind::BenchRun:
    return "bench-run";
  }
  return "?";
}

uint32_t jitvs::telemetryEventCategory(TelemetryEventKind K) {
  switch (K) {
  case TelemetryEventKind::CompileStart:
  case TelemetryEventKind::CompileEnd:
    return TelCompile;
  case TelemetryEventKind::Pass:
    return TelPass;
  case TelemetryEventKind::CacheHit:
  case TelemetryEventKind::Despecialize:
  case TelemetryEventKind::Discard:
  case TelemetryEventKind::TierTransition:
    return TelCache;
  case TelemetryEventKind::Bailout:
    return TelBailout;
  case TelemetryEventKind::OsrEntry:
    return TelOsr;
  case TelemetryEventKind::Script:
    return TelScript;
  case TelemetryEventKind::BenchRun:
    return TelBench;
  }
  return 0;
}

namespace {

uint64_t monotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
void writeJsonString(std::ostream &OS, const char *S) {
  OS << '"';
  for (; *S; ++S) {
    unsigned char C = static_cast<unsigned char>(*S);
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    case '\r':
      OS << "\\r";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        OS << Buf;
      } else {
        OS << static_cast<char>(C);
      }
    }
  }
  OS << '"';
}

bool isSpanKind(TelemetryEventKind K) {
  switch (K) {
  case TelemetryEventKind::CompileEnd:
  case TelemetryEventKind::Pass:
  case TelemetryEventKind::Script:
  case TelemetryEventKind::BenchRun:
    return true;
  default:
    return false;
  }
}

} // namespace

Telemetry::Telemetry() : EpochNs(monotonicNowNs()) {
  Ring.resize(DefaultCapacity);
}

Telemetry &Telemetry::instance() {
  static Telemetry T;
  return T;
}

uint64_t Telemetry::nowNs() const { return monotonicNowNs() - EpochNs; }

void Telemetry::configure(uint32_t CategoryMask, size_t Capacity) {
  std::lock_guard<std::mutex> Lock(Mu);
  Mask = CategoryMask;
  if (Capacity != 0 && Capacity != Ring.size()) {
    Ring.assign(Capacity, TelemetryEvent());
    Head = Count = 0;
    Dropped = 0;
  }
  telemetry_detail::ActiveMask = Mask | Spew;
}

void Telemetry::setSpewMask(uint32_t CategoryMask) {
  std::lock_guard<std::mutex> Lock(Mu);
  Spew = CategoryMask;
  telemetry_detail::ActiveMask = Mask | Spew;
}

void Telemetry::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Head = Count = 0;
  Dropped = 0;
  Sites.clear();
}

void Telemetry::record(TelemetryEvent E) {
  std::lock_guard<std::mutex> Lock(Mu);
  uint32_t Cat = telemetryEventCategory(E.Kind);
  if (!((Mask | Spew) & Cat))
    return;
  if (E.TimeNs == 0)
    E.TimeNs = nowNs();

  if (Spew & Cat)
    spewEvent(E);
  if (!(Mask & Cat))
    return;

  if (E.Kind == TelemetryEventKind::Bailout) {
    std::string Key = std::string(E.Func) + '@' + std::to_string(E.A);
    BailoutSite &S = Sites[Key];
    if (S.Total == 0) {
      S.Func = E.Func;
      S.NativePc = static_cast<uint32_t>(E.A);
      S.BytecodePc = static_cast<uint32_t>(E.B);
    }
    ++S.Total;
    ++S.ByReason[static_cast<size_t>(E.Reason)];
  }

  Ring[Head] = E;
  Head = (Head + 1) % Ring.size();
  if (Count < Ring.size())
    ++Count;
  else
    ++Dropped;
}

std::vector<TelemetryEvent> Telemetry::events() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<TelemetryEvent> Out;
  Out.reserve(Count);
  size_t Start = (Head + Ring.size() - Count) % Ring.size();
  for (size_t I = 0; I != Count; ++I)
    Out.push_back(Ring[(Start + I) % Ring.size()]);
  return Out;
}

std::vector<Telemetry::BailoutSite> Telemetry::bailoutSites() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<BailoutSite> Out;
  Out.reserve(Sites.size());
  for (const auto &[Key, S] : Sites)
    Out.push_back(S);
  std::sort(Out.begin(), Out.end(),
            [](const BailoutSite &A, const BailoutSite &B) {
              if (A.Total != B.Total)
                return A.Total > B.Total;
              if (A.Func != B.Func)
                return A.Func < B.Func;
              return A.NativePc < B.NativePc;
            });
  return Out;
}

void Telemetry::spewEvent(const TelemetryEvent &E) const {
  const char *Cat = telemetryCategoryName(telemetryEventCategory(E.Kind));
  switch (E.Kind) {
  case TelemetryEventKind::CompileStart:
    std::fprintf(stderr, "[jitvs %s] start %s (%s%s%s)\n", Cat, E.Func,
                 E.A ? "specialized" : "generic", E.B ? ", osr" : "",
                 E.Detail[0] ? E.Detail : "");
    break;
  case TelemetryEventKind::CompileEnd:
    std::fprintf(stderr,
                 "[jitvs %s] end   %s: %llu instrs, %.3f ms (%s%s)\n", Cat,
                 E.Func, static_cast<unsigned long long>(E.C),
                 static_cast<double>(E.DurNs) / 1e6,
                 E.A ? "specialized" : "generic", E.B ? ", osr" : "");
    break;
  case TelemetryEventKind::Pass:
    std::fprintf(stderr,
                 "[jitvs %s] %s: %s %llu->%llu instrs, %llu guards "
                 "removed, %llu blocks, %.3f ms\n",
                 Cat, E.Func, E.Detail, static_cast<unsigned long long>(E.A),
                 static_cast<unsigned long long>(E.B),
                 static_cast<unsigned long long>(E.C),
                 static_cast<unsigned long long>(E.D),
                 static_cast<double>(E.DurNs) / 1e6);
    break;
  case TelemetryEventKind::CacheHit:
    std::fprintf(stderr, "[jitvs %s] hit %s (same arguments)\n", Cat,
                 E.Func);
    break;
  case TelemetryEventKind::Despecialize:
    std::fprintf(stderr, "[jitvs %s] despecialize %s (%s)\n", Cat, E.Func,
                 E.Detail);
    break;
  case TelemetryEventKind::Discard:
    std::fprintf(stderr, "[jitvs %s] discard %s (%s)\n", Cat, E.Func,
                 E.Detail);
    break;
  case TelemetryEventKind::TierTransition:
    std::fprintf(stderr, "[jitvs %s] tier %s param %llu: %s\n", Cat, E.Func,
                 static_cast<unsigned long long>(E.A), E.Detail);
    break;
  case TelemetryEventKind::Bailout:
    std::fprintf(stderr, "[jitvs %s] %s: %s at npc=%llu (bytecode pc=%llu)\n",
                 Cat, E.Func, bailoutReasonName(E.Reason),
                 static_cast<unsigned long long>(E.A),
                 static_cast<unsigned long long>(E.B));
    break;
  case TelemetryEventKind::OsrEntry:
    std::fprintf(stderr, "[jitvs %s] enter %s at loop pc=%llu\n", Cat,
                 E.Func, static_cast<unsigned long long>(E.A));
    break;
  case TelemetryEventKind::Script:
    std::fprintf(stderr, "[jitvs %s] evaluate: %.3f ms\n", Cat,
                 static_cast<double>(E.DurNs) / 1e6);
    break;
  case TelemetryEventKind::BenchRun:
    std::fprintf(stderr, "[jitvs %s] run %s [%s]: %.3f ms\n", Cat, E.Func,
                 E.Detail, static_cast<double>(E.DurNs) / 1e6);
    break;
  }
}

void Telemetry::writeJson(std::ostream &OS) const {
  OS << "{\"dropped\":" << Dropped << ",\"events\":[";
  bool First = true;
  for (const TelemetryEvent &E : events()) {
    if (!First)
      OS << ',';
    First = false;
    OS << "{\"kind\":";
    writeJsonString(OS, telemetryEventKindName(E.Kind));
    OS << ",\"cat\":";
    writeJsonString(OS,
                    telemetryCategoryName(telemetryEventCategory(E.Kind)));
    OS << ",\"tNs\":" << E.TimeNs;
    if (E.DurNs)
      OS << ",\"durNs\":" << E.DurNs;
    if (E.Func[0]) {
      OS << ",\"func\":";
      writeJsonString(OS, E.Func);
    }
    if (E.Detail[0]) {
      OS << ",\"detail\":";
      writeJsonString(OS, E.Detail);
    }
    if (E.Kind == TelemetryEventKind::Bailout) {
      OS << ",\"reason\":";
      writeJsonString(OS, bailoutReasonName(E.Reason));
    }
    OS << ",\"a\":" << E.A << ",\"b\":" << E.B << ",\"c\":" << E.C
       << ",\"d\":" << E.D << '}';
  }
  OS << "],\"bailoutSites\":[";
  First = true;
  for (const BailoutSite &S : bailoutSites()) {
    if (!First)
      OS << ',';
    First = false;
    OS << "{\"func\":";
    writeJsonString(OS, S.Func.c_str());
    OS << ",\"nativePc\":" << S.NativePc
       << ",\"bytecodePc\":" << S.BytecodePc << ",\"total\":" << S.Total
       << ",\"byReason\":{";
    bool FirstR = true;
    for (size_t R = 0; R != NumBailoutReasons; ++R) {
      if (!S.ByReason[R])
        continue;
      if (!FirstR)
        OS << ',';
      FirstR = false;
      writeJsonString(OS,
                      bailoutReasonName(static_cast<BailoutReason>(R)));
      OS << ':' << S.ByReason[R];
    }
    OS << "}}";
  }
  OS << "]}";
}

void Telemetry::writeChromeTrace(std::ostream &OS) const {
  OS << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  // Metadata events first, so Perfetto/chrome://tracing labels the track
  // instead of showing bare pid/tid numbers.
  OS << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
        "\"args\":{\"name\":\"jitvs\"}},"
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
        "\"args\":{\"name\":\"engine\"}}";
  bool First = false;
  auto WriteTsUs = [&OS](uint64_t Ns) {
    char Buf[40];
    std::snprintf(Buf, sizeof(Buf), "%llu.%03llu",
                  static_cast<unsigned long long>(Ns / 1000),
                  static_cast<unsigned long long>(Ns % 1000));
    OS << Buf; // ns -> fractional microseconds.
  };
  auto Common = [&](const TelemetryEvent &E, const char *Name) {
    if (!First)
      OS << ',';
    First = false;
    OS << "{\"name\":";
    writeJsonString(OS, Name);
    OS << ",\"cat\":";
    writeJsonString(OS,
                    telemetryCategoryName(telemetryEventCategory(E.Kind)));
    OS << ",\"pid\":1,\"tid\":1,\"ts\":";
    // Events are stamped when recorded, i.e. at span *end*; Chrome wants
    // a complete event's ts at the span start.
    uint64_t Start = isSpanKind(E.Kind) && E.TimeNs >= E.DurNs
                         ? E.TimeNs - E.DurNs
                         : E.TimeNs;
    WriteTsUs(Start);
  };
  // Running totals rendered as a counter track alongside the spans.
  uint64_t Compiles = 0, Bailouts = 0, CacheHits = 0;
  auto Counter = [&](uint64_t TsNs) {
    OS << ",{\"name\":\"engine totals\",\"ph\":\"C\",\"pid\":1,\"ts\":";
    WriteTsUs(TsNs);
    OS << ",\"args\":{\"compiles\":" << Compiles
       << ",\"bailouts\":" << Bailouts << ",\"cacheHits\":" << CacheHits
       << "}}";
  };
  for (const TelemetryEvent &E : events()) {
    // CompileStart is subsumed by the CompileEnd span in a timeline view.
    if (E.Kind == TelemetryEventKind::CompileStart)
      continue;
    std::string Name = telemetryEventKindName(E.Kind);
    if (E.Kind == TelemetryEventKind::Pass)
      Name = E.Detail;
    if (E.Func[0]) {
      Name += ' ';
      Name += E.Func;
    }
    Common(E, Name.c_str());
    if (isSpanKind(E.Kind)) {
      OS << ",\"ph\":\"X\",\"dur\":";
      WriteTsUs(E.DurNs);
    } else {
      OS << ",\"ph\":\"i\",\"s\":\"t\"";
    }
    OS << ",\"args\":{";
    bool FirstA = true;
    auto Arg = [&](const char *K, const std::string &V, bool Quote) {
      if (!FirstA)
        OS << ',';
      FirstA = false;
      writeJsonString(OS, K);
      OS << ':';
      if (Quote)
        writeJsonString(OS, V.c_str());
      else
        OS << V;
    };
    if (E.Detail[0] && E.Kind != TelemetryEventKind::Pass)
      Arg("detail", E.Detail, true);
    if (E.Kind == TelemetryEventKind::Bailout) {
      Arg("reason", bailoutReasonName(E.Reason), true);
      Arg("nativePc", std::to_string(E.A), false);
      Arg("bytecodePc", std::to_string(E.B), false);
    } else if (E.Kind == TelemetryEventKind::Pass) {
      Arg("instrsBefore", std::to_string(E.A), false);
      Arg("instrsAfter", std::to_string(E.B), false);
      Arg("guardsRemoved", std::to_string(E.C), false);
      Arg("blocks", std::to_string(E.D), false);
    } else if (E.Kind == TelemetryEventKind::CompileEnd) {
      Arg("specialized", E.A ? "true" : "false", false);
      Arg("osr", E.B ? "true" : "false", false);
      Arg("codeSizeInstrs", std::to_string(E.C), false);
    } else if (E.Kind == TelemetryEventKind::OsrEntry) {
      Arg("loopPc", std::to_string(E.A), false);
    } else if (E.Kind == TelemetryEventKind::TierTransition) {
      Arg("paramIndex", std::to_string(E.A), false);
    }
    OS << "}}";
    switch (E.Kind) {
    case TelemetryEventKind::CompileEnd:
      ++Compiles;
      Counter(E.TimeNs);
      break;
    case TelemetryEventKind::Bailout:
      ++Bailouts;
      Counter(E.TimeNs);
      break;
    case TelemetryEventKind::CacheHit:
      ++CacheHits;
      Counter(E.TimeNs);
      break;
    default:
      break;
    }
  }
  OS << "]}";
}

namespace {

bool writeFile(const std::string &Path,
               const std::function<void(std::ostream &)> &Fn) {
  std::ofstream OS(Path);
  if (!OS) {
    std::fprintf(stderr, "jitvs telemetry: cannot open '%s' for writing\n",
                 Path.c_str());
    return false;
  }
  Fn(OS);
  OS.flush();
  return static_cast<bool>(OS);
}

} // namespace

bool Telemetry::writeJsonFile(const std::string &Path) const {
  return writeFile(Path, [this](std::ostream &OS) { writeJson(OS); });
}

bool Telemetry::writeChromeTraceFile(const std::string &Path) const {
  return writeFile(Path,
                   [this](std::ostream &OS) { writeChromeTrace(OS); });
}

// --- Environment activation -------------------------------------------------
//
// JITVS_SPEW=cat,cat   echo matching events to stderr as they happen.
// JITVS_TRACE=f.json   record all categories; Chrome trace written at exit.
// JITVS_TRACE_JSON=f   record all categories; raw JSON written at exit.

namespace {

struct TelemetryEnvInit {
  TelemetryEnvInit() {
#if JITVS_TELEMETRY_ENABLED
    Telemetry &T = Telemetry::instance();
    if (const char *SpewSpec = std::getenv("JITVS_SPEW")) {
      std::vector<std::string> Unknown;
      T.setSpewMask(parseTelemetryCategories(SpewSpec, &Unknown));
      for (const std::string &W : Unknown) {
        std::fprintf(stderr,
                     "jitvs telemetry: unknown JITVS_SPEW category '%s' "
                     "(valid:",
                     W.c_str());
        for (uint32_t Bit = 1; Bit < TelAll; Bit <<= 1)
          std::fprintf(stderr, " %s", telemetryCategoryName(Bit));
        std::fprintf(stderr, " all)\n");
      }
    }
    bool WantDump = std::getenv("JITVS_TRACE") != nullptr ||
                    std::getenv("JITVS_TRACE_JSON") != nullptr;
    if (WantDump) {
      T.configure(TelAll);
      std::atexit([] {
        Telemetry &T = Telemetry::instance();
        if (const char *Path = std::getenv("JITVS_TRACE"))
          if (T.writeChromeTraceFile(Path))
            std::fprintf(stderr, "jitvs telemetry: Chrome trace written to "
                                 "%s (%zu events, %llu dropped)\n",
                         Path, T.size(),
                         static_cast<unsigned long long>(T.dropped()));
        if (const char *Path = std::getenv("JITVS_TRACE_JSON"))
          if (T.writeJsonFile(Path))
            std::fprintf(stderr,
                         "jitvs telemetry: JSON written to %s\n", Path);
      });
    }
#endif
  }
};

TelemetryEnvInit InitTelemetryFromEnv;

} // namespace
