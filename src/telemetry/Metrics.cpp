//===- telemetry/Metrics.cpp - Aggregation, percentiles, exporters --------===//

#include "telemetry/Metrics.h"

#include "support/Json.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <ostream>
#include <sstream>

using namespace jitvs;

bool jitvs::metrics_detail::Enabled = false;

const char *jitvs::phaseName(Phase P) {
  switch (P) {
  case Phase::Script:
    return "script";
  case Phase::Interpret:
    return "interpret";
  case Phase::ProfileCalls:
    return "profile-calls";
  case Phase::Compile:
    return "compile";
  case Phase::MIRBuild:
    return "mir-build";
  case Phase::OptPass:
    return "opt-pass";
  case Phase::Codegen:
    return "codegen";
  case Phase::Fusion:
    return "fusion";
  case Phase::NativeExec:
    return "native-exec";
  case Phase::Bailout:
    return "bailout";
  case Phase::GC:
    return "gc";
  case Phase::CompileQueue:
    return "compile-queue";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// LogHistogram
//===----------------------------------------------------------------------===//

size_t LogHistogram::bucketFor(uint64_t V) {
  return V == 0 ? 0 : static_cast<size_t>(std::bit_width(V));
}

uint64_t LogHistogram::bucketLo(size_t B) {
  return B == 0 ? 0 : uint64_t(1) << (B - 1);
}

uint64_t LogHistogram::bucketHi(size_t B) {
  if (B == 0)
    return 0;
  if (B >= NumBuckets - 1)
    return UINT64_MAX;
  return (uint64_t(1) << B) - 1;
}

void LogHistogram::record(uint64_t V) {
  size_t B = bucketFor(V);
  if (B >= NumBuckets)
    B = NumBuckets - 1;
  ++Buckets[B];
  ++Count;
  // Saturate the sum: a pegged total reads as "too big", a wrapped one
  // reads as a reset.
  Sum = Sum + V < Sum ? UINT64_MAX : Sum + V;
  MinV = std::min(MinV, V);
  MaxV = std::max(MaxV, V);
}

uint64_t LogHistogram::percentile(double P) const {
  if (Count == 0)
    return 0;
  P = std::clamp(P, 0.0, 100.0);
  // Rank of the target sample, 1-based; ceil so p0 -> first sample and
  // p100 -> last.
  uint64_t Rank = static_cast<uint64_t>(P / 100.0 *
                                        static_cast<double>(Count));
  if (Rank == 0)
    Rank = 1;
  if (Rank > Count)
    Rank = Count;
  uint64_t Seen = 0;
  for (size_t B = 0; B != NumBuckets; ++B) {
    if (Buckets[B] == 0)
      continue;
    if (Seen + Buckets[B] < Rank) {
      Seen += Buckets[B];
      continue;
    }
    // Interpolate linearly inside the bucket by the rank's position.
    uint64_t Lo = bucketLo(B), Hi = bucketHi(B);
    uint64_t InBucket = Rank - Seen; // 1..Buckets[B]
    double Frac = static_cast<double>(InBucket) /
                  static_cast<double>(Buckets[B]);
    uint64_t Est =
        Lo + static_cast<uint64_t>(static_cast<double>(Hi - Lo) * Frac);
    // Never report outside the observed range.
    return std::clamp(Est, min(), max());
  }
  return max();
}

//===----------------------------------------------------------------------===//
// Metrics registry
//===----------------------------------------------------------------------===//

namespace {

uint64_t monotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace

Metrics &Metrics::instance() {
  static Metrics M;
  return M;
}

void Metrics::enable(bool On) {
#if JITVS_TELEMETRY_ENABLED
  metrics_detail::Enabled = On;
#else
  (void)On;
#endif
}

namespace {

/// Per-thread phase-attribution stack: a compile worker's nested spans
/// (CompileQueue > Compile > MIRBuild > ...) never interleave with the
/// main thread's.
thread_local std::vector<Metrics::StackEntry> PhaseStack;

} // namespace

void Metrics::reset() {
  std::lock_guard<std::mutex> Lock(Mu);
  for (PhaseStat &S : Phases)
    S = PhaseStat();
  Counters.clear();
  Gauges.clear();
  PassHist.clear();
  ValueHist.clear();
  Funcs.clear();
}

void Metrics::addCounter(const std::string &Name, uint64_t Delta) {
  std::lock_guard<std::mutex> Lock(Mu);
  uint64_t &V = Counters[Name];
  V = V + Delta < V ? UINT64_MAX : V + Delta;
}

void Metrics::setGauge(const std::string &Name, double V) {
  std::lock_guard<std::mutex> Lock(Mu);
  Gauges[Name] = V;
}

uint64_t Metrics::counter(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second;
}

double Metrics::gauge(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Gauges.find(Name);
  return It == Gauges.end() ? 0.0 : It->second;
}

void Metrics::enterPhase(Phase P) {
  PhaseStack.push_back({P, monotonicNowNs(), 0});
}

void Metrics::exitPhase(Phase P) {
  if (PhaseStack.empty())
    return; // Unbalanced exit: drop rather than corrupt.
  StackEntry E = PhaseStack.back();
  PhaseStack.pop_back();
  if (E.P != P)
    return;
  uint64_t Now = monotonicNowNs();
  uint64_t Incl = Now >= E.StartNs ? Now - E.StartNs : 0;
  uint64_t Self = Incl >= E.ChildNs ? Incl - E.ChildNs : 0;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    PhaseStat &S = Phases[static_cast<size_t>(P)];
    ++S.Count;
    S.SelfNs += Self;
    S.TotalNs += Incl;
    S.SpanNs.record(Incl);
  }
  if (!PhaseStack.empty())
    PhaseStack.back().ChildNs += Incl;
}

Metrics::PhaseStat Metrics::phase(Phase P) const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Phases[static_cast<size_t>(P)];
}

uint64_t Metrics::totalSelfNs() const {
  std::lock_guard<std::mutex> Lock(Mu);
  uint64_t Total = 0;
  for (const PhaseStat &S : Phases)
    Total += S.SelfNs;
  return Total;
}

void Metrics::recordPass(const std::string &PassName, uint64_t DurNs) {
  std::lock_guard<std::mutex> Lock(Mu);
  PassHist[PassName].record(DurNs);
}

std::map<std::string, LogHistogram> Metrics::passes() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return PassHist;
}

void Metrics::recordValue(const std::string &Name, uint64_t V) {
  std::lock_guard<std::mutex> Lock(Mu);
  ValueHist[Name].record(V);
}

LogHistogram Metrics::valueHistogram(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = ValueHist.find(Name);
  return It == ValueHist.end() ? LogHistogram() : It->second;
}

void Metrics::functionTick(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  ++Funcs[Name].Ticks;
}

std::map<std::string, Metrics::FunctionMetrics> Metrics::functions() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Funcs;
}

void Metrics::mergeFunction(const std::string &Name,
                            const FunctionMetrics &Delta) {
  std::lock_guard<std::mutex> Lock(Mu);
  FunctionMetrics &M = Funcs[Name];
  M.Ticks += Delta.Ticks;
  M.NativeRuns += Delta.NativeRuns;
  M.Compiles += Delta.Compiles;
  M.CompileNs += Delta.CompileNs;
  M.Bailouts += Delta.Bailouts;
  M.CacheHits += Delta.CacheHits;
  M.TierTransitions += Delta.TierTransitions;
  M.Despecializations += Delta.Despecializations;
}

std::vector<std::pair<std::string, Metrics::FunctionMetrics>>
Metrics::functionsByTicks() const {
  std::map<std::string, FunctionMetrics> Snapshot = functions();
  std::vector<std::pair<std::string, FunctionMetrics>> Out(Snapshot.begin(),
                                                           Snapshot.end());
  std::sort(Out.begin(), Out.end(), [](const auto &A, const auto &B) {
    if (A.second.Ticks != B.second.Ticks)
      return A.second.Ticks > B.second.Ticks;
    if (A.second.CompileNs != B.second.CompileNs)
      return A.second.CompileNs > B.second.CompileNs;
    return A.first < B.first;
  });
  return Out;
}

//===----------------------------------------------------------------------===//
// Exporters
//===----------------------------------------------------------------------===//

namespace {

void writeHistogramJson(std::ostream &OS, const LogHistogram &H) {
  OS << "{\"count\":" << H.count() << ",\"sumNs\":" << H.sum()
     << ",\"minNs\":" << H.min() << ",\"maxNs\":" << H.max()
     << ",\"p50Ns\":" << H.percentile(50) << ",\"p90Ns\":" << H.percentile(90)
     << ",\"p99Ns\":" << H.percentile(99) << "}";
}

} // namespace

void Metrics::writeJson(std::ostream &OS) const {
  // Snapshot everything up front so the writer never holds the registry
  // lock while doing stream I/O (functionsByTicks locks internally).
  auto Sorted = functionsByTicks();
  std::unique_lock<std::mutex> Lock(Mu);

  OS << "{\"schema\":\"" << JsonSchema << "\"";

  OS << ",\"counters\":{";
  bool First = true;
  for (const auto &[Name, V] : Counters) {
    if (!First)
      OS << ',';
    First = false;
    json::writeString(OS, Name);
    OS << ':' << V;
  }
  OS << "},\"gauges\":{";
  First = true;
  for (const auto &[Name, V] : Gauges) {
    if (!First)
      OS << ',';
    First = false;
    json::writeString(OS, Name);
    OS << ':' << V;
  }

  OS << "},\"phases\":[";
  First = true;
  for (size_t I = 0; I != NumPhases; ++I) {
    const PhaseStat &S = Phases[I];
    if (S.Count == 0)
      continue;
    if (!First)
      OS << ',';
    First = false;
    OS << "{\"phase\":";
    json::writeString(OS, phaseName(static_cast<Phase>(I)));
    OS << ",\"count\":" << S.Count << ",\"selfNs\":" << S.SelfNs
       << ",\"totalNs\":" << S.TotalNs << ",\"spans\":";
    writeHistogramJson(OS, S.SpanNs);
    OS << '}';
  }

  OS << "],\"passes\":[";
  First = true;
  for (const auto &[Name, H] : PassHist) {
    if (!First)
      OS << ',';
    First = false;
    OS << "{\"pass\":";
    json::writeString(OS, Name);
    OS << ",\"spans\":";
    writeHistogramJson(OS, H);
    OS << '}';
  }

  OS << "],\"histograms\":[";
  First = true;
  for (const auto &[Name, H] : ValueHist) {
    if (!First)
      OS << ',';
    First = false;
    OS << "{\"name\":";
    json::writeString(OS, Name);
    OS << ",\"values\":";
    writeHistogramJson(OS, H);
    OS << '}';
  }

  OS << "],\"functions\":[";
  First = true;
  for (const auto &[Name, M] : Sorted) {
    if (!First)
      OS << ',';
    First = false;
    OS << "{\"name\":";
    json::writeString(OS, Name);
    OS << ",\"ticks\":" << M.Ticks << ",\"nativeRuns\":" << M.NativeRuns
       << ",\"compiles\":" << M.Compiles << ",\"compileNs\":" << M.CompileNs
       << ",\"bailouts\":" << M.Bailouts << ",\"cacheHits\":" << M.CacheHits
       << ",\"tierTransitions\":" << M.TierTransitions
       << ",\"despecializations\":" << M.Despecializations
       << ",\"guardFailRate\":" << M.guardFailRate() << '}';
  }
  OS << "]}";
}

namespace {

/// Prometheus label values: escape backslash, quote and newline.
std::string promEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '\\' || C == '"')
      Out += '\\';
    if (C == '\n') {
      Out += "\\n";
      continue;
    }
    Out += C;
  }
  return Out;
}

} // namespace

void Metrics::writePrometheus(std::ostream &OS) const {
  char Buf[160];
  std::unique_lock<std::mutex> Lock(Mu);

  OS << "# TYPE jitvs_counter_total counter\n";
  for (const auto &[Name, V] : Counters) {
    std::snprintf(Buf, sizeof(Buf), "jitvs_counter_total{name=\"%s\"} %llu\n",
                  promEscape(Name).c_str(),
                  static_cast<unsigned long long>(V));
    OS << Buf;
  }

  OS << "# TYPE jitvs_gauge gauge\n";
  for (const auto &[Name, V] : Gauges) {
    std::snprintf(Buf, sizeof(Buf), "jitvs_gauge{name=\"%s\"} %.9g\n",
                  promEscape(Name).c_str(), V);
    OS << Buf;
  }

  OS << "# TYPE jitvs_phase_spans_total counter\n"
     << "# TYPE jitvs_phase_self_seconds_total counter\n"
     << "# TYPE jitvs_phase_span_seconds summary\n";
  for (size_t I = 0; I != NumPhases; ++I) {
    const PhaseStat &S = Phases[I];
    if (S.Count == 0)
      continue;
    const char *P = phaseName(static_cast<Phase>(I));
    std::snprintf(Buf, sizeof(Buf),
                  "jitvs_phase_spans_total{phase=\"%s\"} %llu\n", P,
                  static_cast<unsigned long long>(S.Count));
    OS << Buf;
    std::snprintf(Buf, sizeof(Buf),
                  "jitvs_phase_self_seconds_total{phase=\"%s\"} %.9f\n", P,
                  static_cast<double>(S.SelfNs) / 1e9);
    OS << Buf;
    for (double Q : {0.5, 0.9, 0.99}) {
      std::snprintf(
          Buf, sizeof(Buf),
          "jitvs_phase_span_seconds{phase=\"%s\",quantile=\"%g\"} %.9f\n", P,
          Q, static_cast<double>(S.SpanNs.percentile(Q * 100)) / 1e9);
      OS << Buf;
    }
  }

  OS << "# TYPE jitvs_pass_span_seconds summary\n";
  for (const auto &[Name, H] : PassHist) {
    for (double Q : {0.5, 0.9, 0.99}) {
      std::snprintf(
          Buf, sizeof(Buf),
          "jitvs_pass_span_seconds{pass=\"%s\",quantile=\"%g\"} %.9f\n",
          promEscape(Name).c_str(), Q,
          static_cast<double>(H.percentile(Q * 100)) / 1e9);
      OS << Buf;
    }
    std::snprintf(Buf, sizeof(Buf),
                  "jitvs_pass_span_seconds_count{pass=\"%s\"} %llu\n",
                  promEscape(Name).c_str(),
                  static_cast<unsigned long long>(H.count()));
    OS << Buf;
  }

  OS << "# TYPE jitvs_value_summary summary\n";
  for (const auto &[Name, H] : ValueHist) {
    for (double Q : {0.5, 0.9, 0.99}) {
      std::snprintf(Buf, sizeof(Buf),
                    "jitvs_value_summary{name=\"%s\",quantile=\"%g\"} %llu\n",
                    promEscape(Name).c_str(), Q,
                    static_cast<unsigned long long>(H.percentile(Q * 100)));
      OS << Buf;
    }
    std::snprintf(Buf, sizeof(Buf),
                  "jitvs_value_summary_count{name=\"%s\"} %llu\n",
                  promEscape(Name).c_str(),
                  static_cast<unsigned long long>(H.count()));
    OS << Buf;
  }

  OS << "# TYPE jitvs_function_ticks_total counter\n"
     << "# TYPE jitvs_function_compiles_total counter\n"
     << "# TYPE jitvs_function_bailouts_total counter\n"
     << "# TYPE jitvs_function_compile_seconds_total counter\n";
  for (const auto &[Name, M] : Funcs) {
    std::string L = promEscape(Name);
    std::snprintf(Buf, sizeof(Buf),
                  "jitvs_function_ticks_total{function=\"%s\"} %llu\n",
                  L.c_str(), static_cast<unsigned long long>(M.Ticks));
    OS << Buf;
    std::snprintf(Buf, sizeof(Buf),
                  "jitvs_function_compiles_total{function=\"%s\"} %llu\n",
                  L.c_str(), static_cast<unsigned long long>(M.Compiles));
    OS << Buf;
    std::snprintf(Buf, sizeof(Buf),
                  "jitvs_function_bailouts_total{function=\"%s\"} %llu\n",
                  L.c_str(), static_cast<unsigned long long>(M.Bailouts));
    OS << Buf;
    std::snprintf(
        Buf, sizeof(Buf),
        "jitvs_function_compile_seconds_total{function=\"%s\"} %.9f\n",
        L.c_str(), static_cast<double>(M.CompileNs) / 1e9);
    OS << Buf;
  }
}

namespace {

bool writeToFile(const std::string &Path,
                 const std::function<void(std::ostream &)> &Fn) {
  std::ofstream OS(Path);
  if (!OS) {
    std::fprintf(stderr, "jitvs metrics: cannot open '%s' for writing\n",
                 Path.c_str());
    return false;
  }
  Fn(OS);
  OS.flush();
  return static_cast<bool>(OS);
}

} // namespace

bool Metrics::writeJsonFile(const std::string &Path) const {
  return writeToFile(Path, [this](std::ostream &OS) { writeJson(OS); });
}

bool Metrics::writePrometheusFile(const std::string &Path) const {
  return writeToFile(Path,
                     [this](std::ostream &OS) { writePrometheus(OS); });
}

// --- Environment activation -------------------------------------------------
//
// JITVS_METRICS=1       collect (snapshot available programmatically).
// JITVS_STATS=path|-    collect and dump the snapshot at process exit;
//                       `-` writes JSON to stdout, a path ending in
//                       `.prom` selects Prometheus text exposition.

namespace {

bool endsWith(const char *S, const char *Suffix) {
  size_t N = std::strlen(S), M = std::strlen(Suffix);
  return N >= M && std::strcmp(S + (N - M), Suffix) == 0;
}

struct MetricsEnvInit {
  MetricsEnvInit() {
#if JITVS_TELEMETRY_ENABLED
    if (const char *On = std::getenv("JITVS_METRICS"))
      if (std::strcmp(On, "0") != 0 && std::strcmp(On, "off") != 0)
        Metrics::instance().enable();
    if (std::getenv("JITVS_STATS")) {
      Metrics::instance().enable();
      std::atexit([] {
        const char *Path = std::getenv("JITVS_STATS");
        if (!Path)
          return;
        Metrics &M = Metrics::instance();
        if (std::strcmp(Path, "-") == 0) {
          std::ostringstream SS;
          M.writeJson(SS);
          std::fputs(SS.str().c_str(), stdout);
          std::fputc('\n', stdout);
          return;
        }
        bool Ok = endsWith(Path, ".prom") ? M.writePrometheusFile(Path)
                                          : M.writeJsonFile(Path);
        if (Ok)
          std::fprintf(stderr, "jitvs metrics: snapshot written to %s\n",
                       Path);
      });
    }
#endif
  }
};

MetricsEnvInit InitMetricsFromEnv;

} // namespace
