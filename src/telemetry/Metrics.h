//===- telemetry/Metrics.h - Aggregate engine metrics -----------*- C++ -*-===//
///
/// \file
/// The aggregation half of the observability layer. Where Telemetry.h
/// records *events* (a bounded ring of what happened, in order), this
/// subsystem answers *aggregate* questions: where do the milliseconds go
/// per engine phase, what is the p99 compile latency, which function
/// bails out most. It provides:
///
///  - saturating counters and gauges, registered by name;
///  - log2-bucketed histograms with p50/p90/p99 queries (constant
///    memory, one increment per sample);
///  - a phase-attribution stack: RAII MetricsPhaseTimer spans plumbed
///    through the interpreter, the profiler, every compiler stage,
///    native execution, bailout handling and GC. Nested spans attribute
///    *self* time correctly (a bailout inside native execution inside a
///    script does not triple-count);
///  - per-function profiles (ticks, compiles, compile-ns, bailouts,
///    cache hits, tier transitions), fed live by the runtime and folded
///    in from Engine reports at engine destruction;
///  - exporters: a schema-versioned JSON snapshot and Prometheus text
///    exposition.
///
/// Cost model: identical to Telemetry.h — every instrumentation site is
/// guarded by `metricsEnabled()`, a single load-and-test of a global
/// flag, so the disabled-by-default cost is one predictable branch per
/// site. Building with -DJITVS_TELEMETRY_ENABLED=0 folds even that away.
///
/// Activation (either works, both compose):
///  - environment: `JITVS_METRICS=1` collects; `JITVS_STATS=<path|->`
///    collects and dumps the JSON snapshot at process exit (`-` means
///    stdout; a path ending in `.prom` selects Prometheus exposition).
///  - programmatic: `metrics().enable()` then `metrics().writeJson(OS)`.
///
/// Like the tracer, the registry is process-global. It is thread-safe:
/// compile workers record phases, passes and histograms concurrently
/// with the main thread. The phase-attribution stack is thread-local
/// (each thread nests its own spans); the aggregated tables are guarded
/// by one registry mutex, taken only when metrics are enabled.
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_TELEMETRY_METRICS_H
#define JITVS_TELEMETRY_METRICS_H

#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

/// Shares the telemetry compile-time gate: 0 folds every site away.
#ifndef JITVS_TELEMETRY_ENABLED
#define JITVS_TELEMETRY_ENABLED 1
#endif

namespace jitvs {

/// Engine phases the time-attribution stack accounts. The phases nest
/// (Script > Interpret > NativeExec > Bailout > Interpret ...); self
/// time subtracts nested children so the per-phase totals answer "where
/// do the milliseconds go" without double counting.
enum class Phase : uint8_t {
  Script,       ///< One Runtime::evaluate (load + top-level run).
  Interpret,    ///< Bytecode interpreter frames.
  ProfileCalls, ///< CallProfiler::recordCall bookkeeping.
  Compile,      ///< One Engine::compile (whole MIR->LIR->native job).
  MIRBuild,     ///< Bytecode -> MIR graph construction.
  OptPass,      ///< One optimization pass (per-pass split: passes()).
  Codegen,      ///< MIR -> LIR -> native code emission.
  Fusion,       ///< Post-regalloc macro-op fusion.
  NativeExec,   ///< Native-code execution (Executor::run).
  Bailout,      ///< Deoptimization: snapshot decode + frame rebuild.
  GC,           ///< Mark-sweep collection cycles.
  CompileQueue, ///< Background compile job (worker-thread wall clock).
};
constexpr size_t NumPhases = 12;

/// \returns a stable lower-case name ("script", "interpret", ...).
const char *phaseName(Phase P);

/// Log2-bucketed histogram of uint64 samples (nanoseconds, usually).
/// Bucket B >= 1 covers [2^(B-1), 2^B); bucket 0 holds zeros. Constant
/// memory, one array increment per sample, percentile queries by linear
/// interpolation inside the winning bucket — the classic HdrHistogram
/// trade: values are exact to within 2x, ranks are exact.
class LogHistogram {
public:
  static constexpr size_t NumBuckets = 64;

  void record(uint64_t V);

  uint64_t count() const { return Count; }
  uint64_t sum() const { return Sum; }
  uint64_t min() const { return Count ? MinV : 0; }
  uint64_t max() const { return MaxV; }
  double mean() const {
    return Count ? static_cast<double>(Sum) / static_cast<double>(Count) : 0;
  }

  /// Value at percentile \p P in [0,100]: the smallest V such that at
  /// least P% of samples are <= V, interpolated within its bucket (and
  /// clamped to the observed min/max). 0 for an empty histogram.
  uint64_t percentile(double P) const;

  /// \returns the bucket index \p V lands in (0 for 0, else bit width).
  static size_t bucketFor(uint64_t V);
  /// Inclusive value bounds of bucket \p B.
  static uint64_t bucketLo(size_t B);
  static uint64_t bucketHi(size_t B);
  uint64_t bucketCount(size_t B) const { return Buckets[B]; }

private:
  uint64_t Buckets[NumBuckets] = {};
  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t MinV = UINT64_MAX;
  uint64_t MaxV = 0;
};

namespace metrics_detail {
/// The hot-path flag. Read on every instrumentation site; written only
/// by Metrics::enable.
extern bool Enabled;
} // namespace metrics_detail

/// The hot-path gate: one load + test. Call before touching the registry.
inline bool metricsEnabled() {
#if JITVS_TELEMETRY_ENABLED
  return metrics_detail::Enabled;
#else
  return false;
#endif
}

/// The process-global metrics registry.
class Metrics {
public:
  static Metrics &instance();

  void enable(bool On = true);
  /// Drops all recorded data (counters, phases, functions); keeps the
  /// enabled flag and any in-flight phase stack.
  void reset();

  // --- Counters and gauges (registered by name) ---

  /// Adds \p Delta to counter \p Name, saturating at UINT64_MAX instead
  /// of wrapping (a monitoring value that jumps to ~0 after overflow
  /// reads as a reset; pegging at max reads as "too big", the truth).
  void addCounter(const std::string &Name, uint64_t Delta = 1);
  void setGauge(const std::string &Name, double V);
  /// \returns the counter's value (0 when never written).
  uint64_t counter(const std::string &Name) const;
  double gauge(const std::string &Name) const;

  // --- Phase time attribution ---

  struct PhaseStat {
    uint64_t Count = 0;   ///< Completed spans.
    uint64_t SelfNs = 0;  ///< Time attributed to this phase alone.
    uint64_t TotalNs = 0; ///< Inclusive span time (children included;
                          ///< recursive nesting counts each level).
    LogHistogram SpanNs;  ///< Inclusive durations -> p50/p90/p99.
  };

  /// Prefer MetricsPhaseTimer; these are the raw stack operations. The
  /// span stack is thread-local, so worker threads nest their own phases
  /// without interleaving with the main thread's attribution.
  void enterPhase(Phase P);
  void exitPhase(Phase P);
  /// Snapshot of one phase's aggregate (copy, for thread-safety).
  PhaseStat phase(Phase P) const;
  /// Sum of self time over all phases (the denominator for "% of run").
  uint64_t totalSelfNs() const;

  // --- Per-pass compile-time split (finer than Phase::OptPass) ---
  void recordPass(const std::string &PassName, uint64_t DurNs);
  std::map<std::string, LogHistogram> passes() const;

  // --- Named value histograms (latencies outside the phase stack) ---

  /// Records \p V into the named histogram (e.g. "compile_queue.wait_ns"
  /// = enqueue-to-install latency, "compile_queue.stall_hidden_ns" =
  /// compile wall time overlapped with interpretation).
  void recordValue(const std::string &Name, uint64_t V);
  /// Snapshot of one named histogram (copy; empty if never recorded).
  LogHistogram valueHistogram(const std::string &Name) const;

  // --- Per-function profiles ---

  struct FunctionMetrics {
    uint64_t Ticks = 0;       ///< Calls observed (any execution tier).
    uint64_t NativeRuns = 0;  ///< Executions entered in native code.
    uint64_t Compiles = 0;
    uint64_t CompileNs = 0;
    uint64_t Bailouts = 0;
    uint64_t CacheHits = 0;
    uint64_t TierTransitions = 0;
    uint64_t Despecializations = 0;
    /// Guard failures per native execution (0 when never run natively).
    double guardFailRate() const {
      return NativeRuns ? static_cast<double>(Bailouts) /
                              static_cast<double>(NativeRuns)
                        : 0.0;
    }
  };

  /// Live tick from the runtime's call dispatch.
  void functionTick(const std::string &Name);
  /// Folds \p Delta into \p Name's profile (Engine::publishMetrics).
  void mergeFunction(const std::string &Name, const FunctionMetrics &Delta);
  std::map<std::string, FunctionMetrics> functions() const;
  /// Profiles sorted hottest first (by ticks, then compile time).
  std::vector<std::pair<std::string, FunctionMetrics>>
  functionsByTicks() const;

  // --- Exporters ---

  /// Schema identifier embedded in every JSON snapshot.
  static constexpr const char *JsonSchema = "jitvs-metrics-v1";

  /// {"schema":..., "counters":{...}, "gauges":{...}, "phases":[...],
  ///  "passes":[...], "functions":[...]}.
  void writeJson(std::ostream &OS) const;
  /// Prometheus text exposition (counters, gauges, phase times with
  /// quantiles, per-function series).
  void writePrometheus(std::ostream &OS) const;
  /// File wrappers; \returns false (with a stderr note) on I/O failure.
  bool writeJsonFile(const std::string &Path) const;
  bool writePrometheusFile(const std::string &Path) const;

  /// One in-flight span on a thread's attribution stack (public only so
  /// the thread-local stack in Metrics.cpp can name it).
  struct StackEntry {
    Phase P;
    uint64_t StartNs;
    uint64_t ChildNs;
  };

private:
  Metrics() = default;

  /// Guards every aggregate table below. The phase stack itself is
  /// thread-local (see Metrics.cpp) and needs no lock.
  mutable std::mutex Mu;
  PhaseStat Phases[NumPhases];
  std::map<std::string, uint64_t> Counters;
  std::map<std::string, double> Gauges;
  std::map<std::string, LogHistogram> PassHist;
  std::map<std::string, LogHistogram> ValueHist;
  std::map<std::string, FunctionMetrics> Funcs;
};

/// Shorthand for Metrics::instance().
inline Metrics &metrics() { return Metrics::instance(); }

/// RAII phase span. Free when metrics are disabled (one branch in the
/// constructor, one in the destructor); otherwise pushes/pops the
/// attribution stack. The enabled decision is latched at construction so
/// a mid-span enable() cannot unbalance the stack.
class MetricsPhaseTimer {
public:
  explicit MetricsPhaseTimer(Phase P) : P(P), Active(metricsEnabled()) {
    if (Active)
      Metrics::instance().enterPhase(P);
  }
  ~MetricsPhaseTimer() {
    if (Active)
      Metrics::instance().exitPhase(P);
  }
  /// Ends the span now (the destructor becomes a no-op). For spans whose
  /// natural end is mid-scope, e.g. bailout handling that tail-calls back
  /// into the interpreter.
  void stop() {
    if (Active)
      Metrics::instance().exitPhase(P);
    Active = false;
  }
  MetricsPhaseTimer(const MetricsPhaseTimer &) = delete;
  MetricsPhaseTimer &operator=(const MetricsPhaseTimer &) = delete;

private:
  Phase P;
  bool Active;
};

} // namespace jitvs

#endif // JITVS_TELEMETRY_METRICS_H
