//===- workloads/SunSpider.cpp - SunSpider-style integer/bit kernels ------===//
///
/// \file
/// Models of the SunSpider 1.0 programs the paper evaluates: bit
/// manipulation, integer math, simple numeric loops, string hashing and
/// recursion. The shapes match the originals (e.g. bitops-bits-in-byte
/// passes the kernel *as a function argument* to a timing driver —
/// exactly the closure-inlining opportunity of Section 3.7 that gave the
/// paper its 49% best case).
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace jitvs;

const Workload workloads_detail::SunSpiderWorkloads[] = {
    {"sunspider", "bitops-bits-in-byte",
     R"JS(
// Kernel counts the set bits of a byte; the driver receives it as a
// parameter, so parameter specialization turns the call into a constant
// callee and inlines it.
function bitsinbyte(b) {
  var m = 1, c = 0;
  while (m < 0x100) {
    if (b & m) c++;
    m <<= 1;
  }
  return c;
}

function TimeFunc(func) {
  var sum = 0;
  for (var y = 0; y < 60; y++)
    for (var x = 0; x < 256; x++)
      sum += func(x);
  return sum;
}

print('bits-in-byte', TimeFunc(bitsinbyte));
)JS"},

    {"sunspider", "bitops-bitwise-and",
     R"JS(
var bitwiseAndValue = 4294967296;
for (var i = 0; i < 60000; i++)
  bitwiseAndValue = bitwiseAndValue & i;
print('bitwise-and', bitwiseAndValue);
)JS"},

    {"sunspider", "bitops-nsieve-bits",
     R"JS(
function primes(isPrime, n) {
  var count = 0, m = 10000 << n, size = m + 31 >> 5;
  for (var i = 0; i < size; i++) isPrime[i] = 0xffffffff | 0;
  for (var i = 2; i < m; i++)
    if (isPrime[i >> 5] & (1 << (i & 31))) {
      for (var j = i + i; j < m; j += i)
        isPrime[j >> 5] = isPrime[j >> 5] & ~(1 << (j & 31));
      count++;
    }
  return count;
}

function sieve() {
  var sum = 0;
  for (var i = 0; i <= 2; i++) {
    var isPrime = new Array((10000 << i) + 31 >> 5);
    sum += primes(isPrime, i);
  }
  return sum;
}

print('nsieve-bits', sieve());
)JS"},

    {"sunspider", "math-cordic",
     R"JS(
var AG_CONST = 0.6072529350;

function FIXED(X) { return X * 65536.0; }
function FLOAT(X) { return X / 65536.0; }
function DEG2RAD(X) { return 0.017453 * X; }

var Angles = [
  FIXED(45.0), FIXED(26.565), FIXED(14.0362), FIXED(7.12502),
  FIXED(3.57633), FIXED(1.78991), FIXED(0.895174), FIXED(0.447614),
  FIXED(0.223811), FIXED(0.111906), FIXED(0.055953), FIXED(0.027977)
];

var Target = 28.027;

function cordicsincos(Target) {
  var X = FIXED(AG_CONST);
  var Y = 0;
  var TargetAngle = FIXED(Target);
  var CurrAngle = 0;
  for (var Step = 0; Step < 12; Step++) {
    var NewX;
    if (TargetAngle > CurrAngle) {
      NewX = X - (Y >> Step);
      Y = (X >> Step) + Y;
      X = NewX;
      CurrAngle += Angles[Step];
    } else {
      NewX = X + (Y >> Step);
      Y = -(X >> Step) + Y;
      X = NewX;
      CurrAngle -= Angles[Step];
    }
  }
  return FLOAT(X) * FLOAT(Y);
}

function cordic(runs) {
  var total = 0;
  for (var i = 0; i < runs; i++)
    total += cordicsincos(Target);
  return total;
}

print('cordic', Math.floor(cordic(4000)));
)JS"},

    {"sunspider", "math-partial-sums",
     R"JS(
function partial(n) {
  var a1 = 0, a2 = 0, a3 = 0, a4 = 0, a5 = 0;
  var twothirds = 2.0 / 3.0;
  var alt = -1.0;
  for (var k = 1; k <= n; k++) {
    var k2 = k * k, k3 = k2 * k;
    var sk = Math.sin(k), ck = Math.cos(k);
    alt = -alt;
    a1 += Math.pow(twothirds, k - 1);
    a2 += 1.0 / (k * k3);
    a3 += 1.0 / (k3 * sk * sk);
    a4 += 1.0 / (k3 * ck * ck);
    a5 += alt / k;
  }
  return a1 + a2 + a3 + a4 + a5;
}

var total = 0;
for (var i = 1024; i <= 4096; i *= 2)
  total += partial(i);
print('partial-sums', Math.floor(total * 1000));
)JS"},

    {"sunspider", "access-nsieve",
     R"JS(
function pad(number, width) {
  var s = number + '';
  while (s.length < width) s = ' ' + s;
  return s;
}

function nsieve(m, isPrime) {
  var count = 0;
  for (var i = 2; i <= m; i++) isPrime[i] = true;
  for (var i = 2; i <= m; i++)
    if (isPrime[i]) {
      for (var k = i + i; k <= m; k += i) isPrime[k] = false;
      count++;
    }
  return count;
}

function sieve() {
  var sum = 0;
  for (var i = 1; i <= 2; i++) {
    var m = (1 << i) * 2500;
    var flags = new Array(m + 1);
    sum += nsieve(m, flags);
  }
  return sum;
}

print('nsieve', sieve());
)JS"},

    {"sunspider", "access-fannkuch",
     R"JS(
function fannkuch(n) {
  var check = 0;
  var perm = new Array(n);
  var perm1 = new Array(n);
  var count = new Array(n);
  var maxPerm = new Array(n);
  var maxFlipsCount = 0;
  var m = n - 1;

  for (var i = 0; i < n; i++) perm1[i] = i;
  var r = n;

  while (true) {
    while (r != 1) { count[r - 1] = r; r--; }
    if (!(perm1[0] == 0 || perm1[m] == m)) {
      for (var i = 0; i < n; i++) perm[i] = perm1[i];
      var flipsCount = 0;
      var k;
      while (!((k = perm[0]) == 0)) {
        var k2 = (k + 1) >> 1;
        for (var i = 0; i < k2; i++) {
          var temp = perm[i]; perm[i] = perm[k - i]; perm[k - i] = temp;
        }
        flipsCount++;
      }
      if (flipsCount > maxFlipsCount) {
        maxFlipsCount = flipsCount;
        for (var i = 0; i < n; i++) maxPerm[i] = perm1[i];
      }
    }
    while (true) {
      if (r == n) return maxFlipsCount;
      var perm0 = perm1[0];
      var i = 0;
      while (i < r) {
        var j = i + 1;
        perm1[i] = perm1[j];
        i = j;
      }
      perm1[r] = perm0;
      count[r] = count[r] - 1;
      if (count[r] > 0) break;
      r++;
    }
  }
}

print('fannkuch', fannkuch(7));
)JS"},

    {"sunspider", "controlflow-recursive",
     R"JS(
// The paper notes recursive kernels are called with *different*
// parameters every time: the despecialization stress case.
function ack(m, n) {
  if (m == 0) return n + 1;
  if (n == 0) return ack(m - 1, 1);
  return ack(m - 1, ack(m, n - 1));
}
function fib(n) {
  if (n < 2) return n;
  return fib(n - 2) + fib(n - 1);
}
function tak(x, y, z) {
  if (y >= x) return z;
  return tak(tak(x - 1, y, z), tak(y - 1, z, x), tak(z - 1, x, y));
}

var result = 0;
for (var i = 2; i <= 4; i++)
  result += ack(2, i) + fib(2 + i * 2) + tak(i * 2, i, i - 1);
print('recursive', result);
)JS"},

    {"sunspider", "string-hash",
     R"JS(
// String workload: charCodeAt-driven hashing of generated text, like the
// inner loops of string-unpack-code.
function makeText(n) {
  var words = ['function', 'var', 'return', 'while', 'typeof', 'new'];
  var text = '';
  for (var i = 0; i < n; i++)
    text = text + words[i % 6] + ' ';
  return text;
}

function hashOf(s, seed) {
  var h = seed;
  for (var i = 0; i < s.length; i++)
    h = (h * 31 + s.charCodeAt(i)) % 16777213;
  return h;
}

var text = makeText(160);
var total = 0;
for (var round = 0; round < 120; round++)
  total = (total + hashOf(text, total)) % 16777213;
print('string-hash', total, text.length);
)JS"},

    {"sunspider", "crypto-xor-stream",
     R"JS(
// Models crypto-md5's structure: rounds of bitwise mixing over a message
// expanded into an integer array, with per-round helper functions that
// receive the same state arrays every call.
function expand(msg, blocks) {
  var words = new Array(blocks * 16);
  for (var i = 0; i < words.length; i++)
    words[i] = (msg.charCodeAt(i % msg.length) * (i + 17)) & 0xffff;
  return words;
}

function mixRound(words, k) {
  var acc = k | 0;
  for (var i = 0; i < words.length; i++) {
    acc = (acc + words[i]) & 0xffffff;
    acc = (acc << 3 | acc >>> 21) & 0xffffff;
    words[i] = (words[i] ^ acc) & 0xffff;
  }
  return acc;
}

var words = expand('jitvs: just-in-time value specialization', 24);
var digest = 0;
for (var round = 0; round < 160; round++)
  digest = (digest + mixRound(words, round)) & 0xffffff;
print('crypto-xor', digest);
)JS"},

    {"sunspider", "3d-morph",
     R"JS(
function morph(a, f) {
  var PI2nx = Math.PI * 8 / 120;
  var sin = Math.sin;
  var f30 = -(50 * sin(f * Math.PI * 2));
  for (var i = 0; i < 120; i++)
    a[i] = sin((i - 60) * PI2nx) * f30;
}

var a = new Array(120);
for (var i = 0; i < 120; i++) a[i] = 0;
for (var i = 0; i < 80; i++)
  morph(a, i / 80);

var sum = 0;
for (var i = 0; i < 120; i++) sum += Math.abs(a[i]);
print('3d-morph', Math.floor(sum));
)JS"},
};

const size_t workloads_detail::NumSunSpiderWorkloads =
    sizeof(workloads_detail::SunSpiderWorkloads) /
    sizeof(workloads_detail::SunSpiderWorkloads[0]);
