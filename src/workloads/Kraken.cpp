//===- workloads/Kraken.cpp - Kraken-style numeric array processing -------===//
///
/// \file
/// Models of Kraken 1.1: audio DSP (FFT, oscillator), imaging kernels
/// (gaussian blur, desaturate) and crypto stream processing — all
/// dominated by numeric loops over arrays whose base pointers and sizes
/// are loop-invariant call arguments, the paper's best case for
/// parameter-based specialization.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace jitvs;

const Workload workloads_detail::KrakenWorkloads[] = {
    {"kraken", "audio-fft-lite",
     R"JS(
// Iterative radix-2 FFT over fixed-size arrays: the transform is called
// repeatedly with the same array objects and size.
function fft(re, im, n) {
  // Bit-reversal permutation.
  var j = 0;
  for (var i = 0; i < n - 1; i++) {
    if (i < j) {
      var tr = re[i]; re[i] = re[j]; re[j] = tr;
      var ti = im[i]; im[i] = im[j]; im[j] = ti;
    }
    var m = n >> 1;
    while (m >= 1 && j >= m) { j -= m; m >>= 1; }
    j += m;
  }
  // Butterflies.
  for (var len = 2; len <= n; len <<= 1) {
    var ang = -2.0 * Math.PI / len;
    var wr = Math.cos(ang), wi = Math.sin(ang);
    for (var i = 0; i < n; i += len) {
      var cr = 1.0, ci = 0.0;
      for (var k = 0; k < (len >> 1); k++) {
        var a = i + k, b = i + k + (len >> 1);
        var xr = re[b] * cr - im[b] * ci;
        var xi = re[b] * ci + im[b] * cr;
        re[b] = re[a] - xr; im[b] = im[a] - xi;
        re[a] = re[a] + xr; im[a] = im[a] + xi;
        var ncr = cr * wr - ci * wi;
        ci = cr * wi + ci * wr;
        cr = ncr;
      }
    }
  }
}

var N = 128;
var re = new Array(N), im = new Array(N);
var check = 0.0;
for (var round = 0; round < 20; round++) {
  for (var i = 0; i < N; i++) {
    re[i] = Math.sin(i * 0.3) + 0.5 * Math.sin(i * 1.7);
    im[i] = 0.0;
  }
  fft(re, im, N);
  for (var i = 0; i < N; i++)
    check += Math.abs(re[i]) + Math.abs(im[i]);
}
print('fft', Math.floor(check));
)JS"},

    {"kraken", "audio-oscillator",
     R"JS(
function generate(buf, freq, phase) {
  var step = freq * 2.0 * Math.PI / 44100.0;
  for (var i = 0; i < buf.length; i++)
    buf[i] = Math.sin(phase + i * step) * 0.7
           + Math.sin((phase + i * step) * 2.0) * 0.3;
  return phase + buf.length * step;
}

var buf = new Array(512);
var phase = 0.0;
var acc = 0.0;
for (var block = 0; block < 40; block++) {
  phase = generate(buf, 440.0, phase);
  for (var i = 0; i < buf.length; i += 16)
    acc += buf[i];
}
print('oscillator', Math.floor(acc * 1000));
)JS"},

    {"kraken", "imaging-gaussian-blur-lite",
     R"JS(
// Separable 5-tap blur over a grayscale "image": fixed kernel, fixed
// dimensions, same buffers every call.
function blurPass(src, dst, w, h) {
  for (var y = 0; y < h; y++) {
    var row = y * w;
    for (var x = 2; x < w - 2; x++) {
      var v = src[row + x - 2] * 1 + src[row + x - 1] * 4 +
              src[row + x] * 6 + src[row + x + 1] * 4 +
              src[row + x + 2] * 1;
      dst[row + x] = (v / 16) | 0;
    }
  }
}

var W = 64, H = 48;
var a = new Array(W * H), b = new Array(W * H);
for (var i = 0; i < W * H; i++) { a[i] = (i * 37) & 255; b[i] = 0; }

for (var round = 0; round < 14; round++) {
  blurPass(a, b, W, H);
  blurPass(b, a, W, H);
}

var check = 0;
for (var i = 0; i < W * H; i++) check = (check + a[i]) % 999983;
print('gaussian-blur', check);
)JS"},

    {"kraken", "imaging-desaturate",
     R"JS(
function desaturate(rgb, out) {
  for (var i = 0; i < out.length; i++) {
    var r = rgb[i * 3], g = rgb[i * 3 + 1], bl = rgb[i * 3 + 2];
    out[i] = (r * 77 + g * 151 + bl * 28) >> 8;
  }
}

var N = 4096;
var rgb = new Array(N * 3), gray = new Array(N);
for (var i = 0; i < N * 3; i++) rgb[i] = (i * 131) & 255;

for (var round = 0; round < 25; round++)
  desaturate(rgb, gray);

var check = 0;
for (var i = 0; i < N; i++) check = (check + gray[i]) % 999983;
print('desaturate', check);
)JS"},

    {"kraken", "stanford-crypto-ccm-lite",
     R"JS(
// Counter-mode stream cipher sketch: the paper notes Kraken's most-called
// function is an anonymous one here, invoked with varying counters.
var mix = function(block, counter, key) {
  var acc = counter ^ key;
  for (var i = 0; i < block.length; i++) {
    acc = (acc * 1103515245 + 12345) & 0x3fffffff;
    block[i] = (block[i] ^ (acc & 255)) & 255;
  }
  return acc;
};

function encrypt(data, key) {
  var mac = 0;
  var block = new Array(16);
  for (var c = 0; c < data.length; c += 16) {
    for (var i = 0; i < 16; i++) block[i] = data[c + i];
    mac = (mac + mix(block, c >> 4, key)) & 0x3fffffff;
    for (var i = 0; i < 16; i++) data[c + i] = block[i];
  }
  return mac;
}

var data = new Array(2048);
for (var i = 0; i < data.length; i++) data[i] = (i * 7) & 255;

var mac = 0;
for (var round = 0; round < 12; round++)
  mac = (mac + encrypt(data, 0x1234 + round)) & 0x3fffffff;
print('ccm', mac);
)JS"},

    {"kraken", "ai-astar-lite",
     R"JS(
// Grid flood-fill distance propagation in the style of ai-astar: array
// reads/writes with computed indices, a frontier queue, fixed grid.
function propagate(grid, dist, w, h, queue) {
  var head = 0;
  while (head < queue.length) {
    var cur = queue[head];
    head++;
    var d = dist[cur] + 1;
    var x = cur % w;
    var neighbors = [cur - w, cur + w, cur - 1, cur + 1];
    for (var i = 0; i < 4; i++) {
      var nb = neighbors[i];
      if (nb < 0 || nb >= w * h) continue;
      if (i == 2 && x == 0) continue;
      if (i == 3 && x == w - 1) continue;
      if (grid[nb] == 1) continue;
      if (dist[nb] >= 0) continue;
      dist[nb] = d;
      queue.push(nb);
    }
  }
  return head;
}

var W = 40, H = 30;
var grid = new Array(W * H);
for (var i = 0; i < W * H; i++)
  grid[i] = ((i * 2654435761) & 7) == 0 ? 1 : 0;
grid[0] = 0;

var total = 0;
for (var round = 0; round < 25; round++) {
  var dist = new Array(W * H);
  for (var i = 0; i < W * H; i++) dist[i] = -1;
  dist[0] = 0;
  var queue = [0];
  total += propagate(grid, dist, W, H, queue);
}
print('astar', total);
)JS"},
};

const size_t workloads_detail::NumKrakenWorkloads =
    sizeof(workloads_detail::KrakenWorkloads) /
    sizeof(workloads_detail::KrakenWorkloads[0]);
