//===- workloads/Workloads.h - Benchmark suites in MiniJS -------*- C++ -*-===//
///
/// \file
/// The three benchmark suites the paper evaluates on, re-created as
/// MiniJS programs with the same workload archetypes: SunSpider-style
/// integer/bit kernels, V8-style object/closure programs, Kraken-style
/// numeric array processing (see DESIGN.md for the substitution
/// rationale). Every workload is deterministic and prints a checksum so
/// differential tests can verify every optimization configuration.
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_WORKLOADS_WORKLOADS_H
#define JITVS_WORKLOADS_WORKLOADS_H

#include <string>
#include <vector>

namespace jitvs {

/// One benchmark program.
struct Workload {
  const char *Suite; ///< "sunspider", "v8" or "kraken".
  const char *Name;
  const char *Source;
};

/// All workloads across the three suites.
const std::vector<Workload> &allWorkloads();

/// The workloads of one suite.
std::vector<Workload> suiteWorkloads(const std::string &Suite);

/// \returns the workload with the given name, or nullptr.
const Workload *findWorkload(const std::string &Name);

/// Suite names in paper order.
inline const char *const SuiteNames[3] = {"sunspider", "v8", "kraken"};
inline const char *const SuiteTitles[3] = {"SunSpider 1.0 (model)",
                                           "V8 version 6 (model)",
                                           "Kraken 1.1 (model)"};

namespace workloads_detail {
extern const Workload SunSpiderWorkloads[];
extern const size_t NumSunSpiderWorkloads;
extern const Workload V8Workloads[];
extern const size_t NumV8Workloads;
extern const Workload KrakenWorkloads[];
extern const size_t NumKrakenWorkloads;
} // namespace workloads_detail

} // namespace jitvs

#endif // JITVS_WORKLOADS_WORKLOADS_H
