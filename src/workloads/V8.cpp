//===- workloads/V8.cpp - V8-style object and closure programs ------------===//
///
/// \file
/// Models of the V8 version 6 benchmarks: object-oriented task scheduling
/// (richards), bignum-ish modular arithmetic (crypto), object-based
/// vector math (raytrace), binary trees with varied keys (splay) and
/// dense double-array stencils (navier-stokes).
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace jitvs;

const Workload workloads_detail::V8Workloads[] = {
    {"v8", "richards-lite",
     R"JS(
// A miniature task scheduler: objects with methods, queue rotation.
function Task(id, priority) {
  this.id = id;
  this.priority = priority;
  this.work = 0;
}

function Scheduler(n) {
  this.tasks = new Array(n);
  for (var i = 0; i < n; i++)
    this.tasks[i] = new Task(i, (i * 7) % 5);
  this.released = 0;
}

function step(sched, rounds) {
  var tasks = sched.tasks;
  var total = 0;
  for (var r = 0; r < rounds; r++) {
    for (var i = 0; i < tasks.length; i++) {
      var t = tasks[i];
      t.work = t.work + t.priority + 1;
      if (t.work > 50) {
        sched.released = sched.released + 1;
        t.work = 0;
      }
      total = (total + t.work) % 999983;
    }
  }
  return total;
}

var sched = new Scheduler(24);
var checksum = 0;
for (var k = 0; k < 30; k++)
  checksum = (checksum + step(sched, 40)) % 999983;
print('richards', checksum, sched.released);
)JS"},

    {"v8", "crypto-lite",
     R"JS(
// Modular exponentiation over a digit array, modeled on v8-crypto's
// bignum inner loops: index arithmetic, carries, helper functions that
// always receive the same arrays.
function mulmod(digits, multiplier, mod) {
  var carry = 0;
  for (var i = 0; i < digits.length; i++) {
    var v = digits[i] * multiplier + carry;
    digits[i] = v % mod;
    carry = Math.floor(v / mod);
  }
  return carry % mod;
}

function fold(digits) {
  var acc = 0;
  for (var i = 0; i < digits.length; i++)
    acc = (acc * 31 + digits[i]) % 16777213;
  return acc;
}

var digits = new Array(48);
for (var i = 0; i < 48; i++) digits[i] = (i * i + 3) % 10000;

var check = 0;
for (var e = 0; e < 300; e++) {
  mulmod(digits, 7 + (e & 3), 10000);
  check = (check + fold(digits)) % 16777213;
}
print('crypto', check);
)JS"},

    {"v8", "raytrace-lite",
     R"JS(
// Object-based 3D vector math with constructor functions and methods —
// the object-heavy style the paper observed on the real web.
function Vec(x, y, z) {
  this.x = x; this.y = y; this.z = z;
}

function dot(a, b) { return a.x * b.x + a.y * b.y + a.z * b.z; }
function sub(a, b) { return new Vec(a.x - b.x, a.y - b.y, a.z - b.z); }
function scale(a, s) { return new Vec(a.x * s, a.y * s, a.z * s); }

function hitSphere(orig, dir, center, radius) {
  var oc = sub(orig, center);
  var b = 2.0 * dot(oc, dir);
  var c = dot(oc, oc) - radius * radius;
  var disc = b * b - 4.0 * c;
  if (disc < 0) return -1.0;
  return (-b - Math.sqrt(disc)) / 2.0;
}

var origin = new Vec(0, 0, 0);
var center = new Vec(0, 0, -5);
var hits = 0;
var distSum = 0.0;
for (var py = 0; py < 48; py++) {
  for (var px = 0; px < 48; px++) {
    var dx = (px - 24) / 24.0;
    var dy = (py - 24) / 24.0;
    var len = Math.sqrt(dx * dx + dy * dy + 1.0);
    var dir = scale(new Vec(dx, dy, -1.0), 1.0 / len);
    var t = hitSphere(origin, dir, center, 2.0);
    if (t > 0) { hits++; distSum += t; }
  }
}
print('raytrace', hits, Math.floor(distSum * 100));
)JS"},

    {"v8", "splay-lite",
     R"JS(
// Binary search tree with insert/find on pseudo-random keys: pointer
// chasing over objects, functions called with different arguments every
// time (the paper's "most varied" case).
function Node(key) {
  this.key = key;
  this.left = null;
  this.right = null;
}

function insert(root, key) {
  if (root == null) return new Node(key);
  var n = root;
  while (true) {
    if (key < n.key) {
      if (n.left == null) { n.left = new Node(key); break; }
      n = n.left;
    } else if (key > n.key) {
      if (n.right == null) { n.right = new Node(key); break; }
      n = n.right;
    } else {
      break;
    }
  }
  return root;
}

function find(root, key) {
  var n = root;
  var depth = 0;
  while (n != null) {
    depth++;
    if (key == n.key) return depth;
    n = key < n.key ? n.left : n.right;
  }
  return -depth;
}

var seed = 49734321;
function rand() {
  seed = (seed * 1103515245 + 12345) & 0x3fffffff;
  return seed % 4096;
}

var root = null;
for (var i = 0; i < 700; i++) root = insert(root, rand());
var sum = 0;
for (var i = 0; i < 1800; i++) sum += find(root, rand());
print('splay', sum);
)JS"},

    {"v8", "navier-stokes-lite",
     R"JS(
// Dense double-array stencil sweeps, modeled on navier-stokes' lin_solve:
// the helpers always receive the same arrays and sizes.
function linSolve(x, x0, n, a, c) {
  var invC = 1.0 / c;
  for (var k = 0; k < 8; k++) {
    for (var j = 1; j < n - 1; j++) {
      for (var i = 1; i < n - 1; i++) {
        var idx = j * n + i;
        x[idx] = (x0[idx] + a * (x[idx - 1] + x[idx + 1] +
                                 x[idx - n] + x[idx + n])) * invC;
      }
    }
  }
}

function checksum(x) {
  var s = 0.0;
  for (var i = 0; i < x.length; i++) s += x[i];
  return s;
}

var n = 26;
var x = new Array(n * n);
var x0 = new Array(n * n);
for (var i = 0; i < n * n; i++) { x[i] = 0.0; x0[i] = (i % 17) * 0.25; }

for (var iter = 0; iter < 12; iter++)
  linSolve(x, x0, n, 0.3, 2.2);

print('navier-stokes', Math.floor(checksum(x) * 1000));
)JS"},

    {"v8", "earley-lite",
     R"JS(
// Closure-driven list processing in the style of earley-boyer's Scheme
// runtime: cons cells as closures, higher-order map/filter/fold.
function cons(a, b) {
  return function(which) { return which == 0 ? a : b; };
}
function car(p) { return p(0); }
function cdr(p) { return p(1); }

function buildList(n) {
  var l = null;
  for (var i = n; i > 0; i--) l = cons(i, l);
  return l;
}

function foldList(l, acc) {
  while (l != null) {
    acc = (acc * 3 + car(l)) % 999983;
    l = cdr(l);
  }
  return acc;
}

var total = 0;
var list = buildList(60);
for (var r = 0; r < 150; r++)
  total = foldList(list, total);
print('earley', total);
)JS"},
};

const size_t workloads_detail::NumV8Workloads =
    sizeof(workloads_detail::V8Workloads) /
    sizeof(workloads_detail::V8Workloads[0]);
