//===- workloads/Workloads.cpp - Workload registry -------------------------===//

#include "workloads/Workloads.h"

using namespace jitvs;
using namespace jitvs::workloads_detail;

const std::vector<Workload> &jitvs::allWorkloads() {
  static const std::vector<Workload> All = [] {
    std::vector<Workload> V;
    for (size_t I = 0; I != NumSunSpiderWorkloads; ++I)
      V.push_back(SunSpiderWorkloads[I]);
    for (size_t I = 0; I != NumV8Workloads; ++I)
      V.push_back(V8Workloads[I]);
    for (size_t I = 0; I != NumKrakenWorkloads; ++I)
      V.push_back(KrakenWorkloads[I]);
    return V;
  }();
  return All;
}

std::vector<Workload> jitvs::suiteWorkloads(const std::string &Suite) {
  std::vector<Workload> Out;
  for (const Workload &W : allWorkloads())
    if (Suite == W.Suite)
      Out.push_back(W);
  return Out;
}

const Workload *jitvs::findWorkload(const std::string &Name) {
  for (const Workload &W : allWorkloads())
    if (Name == W.Name)
      return &W;
  return nullptr;
}
