//===- profiling/WebSession.cpp - Synthetic web session generator ----------===//

#include "profiling/WebSession.h"

#include "support/Assert.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

using namespace jitvs;

unsigned jitvs::sampleZipf(RNG &Rand, double Alpha, unsigned Max) {
  // Cache the normalization constants per (alpha, max).
  static std::map<std::pair<double, unsigned>, std::vector<double>> CdfCache;
  auto Key = std::make_pair(Alpha, Max);
  auto It = CdfCache.find(Key);
  if (It == CdfCache.end()) {
    std::vector<double> Cdf(Max);
    double Sum = 0.0;
    for (unsigned K = 1; K <= Max; ++K) {
      Sum += 1.0 / std::pow(static_cast<double>(K), Alpha);
      Cdf[K - 1] = Sum;
    }
    for (double &C : Cdf)
      C /= Sum;
    It = CdfCache.emplace(Key, std::move(Cdf)).first;
  }
  const std::vector<double> &Cdf = It->second;
  double U = Rand.nextDouble();
  // Binary search for the first bucket with CDF >= U.
  size_t Lo = 0, Hi = Cdf.size() - 1;
  while (Lo < Hi) {
    size_t Mid = (Lo + Hi) / 2;
    if (Cdf[Mid] < U)
      Lo = Mid + 1;
    else
      Hi = Mid;
  }
  return static_cast<unsigned>(Lo + 1);
}

namespace {

enum class ParamKind {
  Object,
  String,
  Int,
  Double,
  Bool,
  Undefined,
  Array,
  Function,
  Null
};

ParamKind sampleKind(RNG &Rand, const WebSessionModel &M) {
  double U = Rand.nextDouble();
  double Acc = M.PObject;
  if (U < Acc)
    return ParamKind::Object;
  if (U < (Acc += M.PString))
    return ParamKind::String;
  if (U < (Acc += M.PInt))
    return ParamKind::Int;
  if (U < (Acc += M.PDouble))
    return ParamKind::Double;
  if (U < (Acc += M.PBool))
    return ParamKind::Bool;
  if (U < (Acc += M.PUndefined))
    return ParamKind::Undefined;
  if (U < (Acc += M.PArray))
    return ParamKind::Array;
  if (U < (Acc += M.PFunction))
    return ParamKind::Function;
  return ParamKind::Null;
}

const char *poolName(ParamKind K) {
  switch (K) {
  case ParamKind::Object:
    return "pool_obj";
  case ParamKind::String:
    return "pool_str";
  case ParamKind::Int:
    return "pool_int";
  case ParamKind::Double:
    return "pool_dbl";
  case ParamKind::Bool:
    return "pool_bool";
  case ParamKind::Undefined:
    return "pool_undef";
  case ParamKind::Array:
    return "pool_arr";
  case ParamKind::Function:
    return "pool_fn";
  case ParamKind::Null:
    return "pool_null";
  }
  JITVS_UNREACHABLE("bad ParamKind");
}

/// Number of distinguishable values a kind can supply.
unsigned kindCardinality(ParamKind K, unsigned PoolSize) {
  switch (K) {
  case ParamKind::Bool:
    return 2;
  case ParamKind::Undefined:
  case ParamKind::Null:
    return 1;
  default:
    return PoolSize;
  }
}

} // namespace

std::string jitvs::generateWebSessionProgram(const WebSessionModel &Model,
                                             uint64_t Seed) {
  RNG Rand(Seed);
  std::string Out;
  Out.reserve(1 << 20);
  char Buf[160];

  constexpr unsigned PoolSize = 64;

  // Argument pools: distinct identities/contents per entry.
  Out += "var pool_obj = [];\n"
         "var pool_arr = [];\n"
         "var pool_fn = [];\n"
         "var pool_str = [];\n"
         "var pool_int = [];\n"
         "var pool_dbl = [];\n";
  std::snprintf(Buf, sizeof(Buf), "for (var i = 0; i < %u; i++) {\n",
                PoolSize);
  Out += Buf;
  Out += "  pool_obj.push({id: i});\n"
         "  pool_arr.push([i]);\n"
         "  pool_fn.push(function() { return 0; });\n"
         "  pool_str.push('s' + i);\n"
         "  pool_int.push(i * 3 + 1);\n"
         "  pool_dbl.push(i + 0.5);\n"
         "}\n";
  Out += "var pool_bool = [true, false];\n"
         "var pool_undef = [undefined];\n"
         "var pool_null = [null];\n"
         "var sink = 0;\n";

  // Function population.
  struct FuncPlan {
    ParamKind Kind;
    unsigned Calls;
    unsigned DistinctArgs;
  };
  std::vector<FuncPlan> Plans(Model.NumFunctions);
  for (unsigned F = 0; F != Model.NumFunctions; ++F) {
    FuncPlan &P = Plans[F];
    P.Kind = sampleKind(Rand, Model);
    P.Calls = sampleZipf(Rand, Model.CallZipfAlpha, Model.MaxCalls);
    unsigned Card = kindCardinality(P.Kind, PoolSize);
    if (P.Calls == 1 ||
        Rand.nextDouble() < Model.MonomorphicGivenMultiCall) {
      P.DistinctArgs = 1;
    } else {
      unsigned MaxDistinct = std::min(P.Calls, Card);
      if (MaxDistinct <= 1)
        P.DistinctArgs = 1;
      else
        P.DistinctArgs = std::min(
            1 + sampleZipf(Rand, Model.ArgZipfAlpha, MaxDistinct - 1),
            MaxDistinct);
    }

    std::snprintf(Buf, sizeof(Buf),
                  "function wf%u(p) { sink = sink + 1; return p; }\n", F);
    Out += Buf;
  }

  // The session: each function's calls, the first distinct value taking
  // the bulk, one call for each further distinct value (a power-law-ish
  // within-function distribution, matching how event handlers behave).
  for (unsigned F = 0; F != Model.NumFunctions; ++F) {
    const FuncPlan &P = Plans[F];
    unsigned BulkCalls = P.Calls - (P.DistinctArgs - 1);
    unsigned BaseIdx = Rand.nextBelow(PoolSize);
    const char *Pool = poolName(P.Kind);
    unsigned Card = kindCardinality(P.Kind, PoolSize);
    if (BulkCalls == 1) {
      std::snprintf(Buf, sizeof(Buf), "wf%u(%s[%u]);\n", F, Pool,
                    BaseIdx % Card);
      Out += Buf;
    } else {
      std::snprintf(Buf, sizeof(Buf),
                    "for (var i = 0; i < %u; i++) wf%u(%s[%u]);\n",
                    BulkCalls, F, Pool, BaseIdx % Card);
      Out += Buf;
    }
    for (unsigned D = 1; D < P.DistinctArgs; ++D) {
      std::snprintf(Buf, sizeof(Buf), "wf%u(%s[%u]);\n", F, Pool,
                    (BaseIdx + D) % Card);
      Out += Buf;
    }
  }

  Out += "print('session done', sink);\n";
  return Out;
}
