//===- profiling/WebSession.h - Synthetic Alexa-top-100 session -*- C++ -*-===//
///
/// \file
/// The paper instrumented Firefox over the Alexa top-100 websites
/// (23,002 functions; 48.88% called once; 59.91% always called with the
/// same arguments; parameters dominated by objects and strings). We
/// cannot crawl 2012's web, so this module generates a MiniJS program
/// whose function population is drawn from the same distributions
/// (documented substitution — see DESIGN.md), then the normal
/// CallProfiler instruments it for Figures 1, 2 and 4.
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_PROFILING_WEBSESSION_H
#define JITVS_PROFILING_WEBSESSION_H

#include "support/RNG.h"

#include <string>

namespace jitvs {

/// Parameters of the synthetic session model, calibrated against the
/// numbers the paper reports for the Alexa top-100 crawl.
struct WebSessionModel {
  /// Number of distinct functions (the paper saw 23,002; default scaled
  /// down so the session runs in milliseconds).
  unsigned NumFunctions = 2500;
  /// Zipf exponent for per-function call counts; 1.75 yields ~49% of
  /// functions called exactly once, matching Figure 1.
  double CallZipfAlpha = 1.75;
  /// Probability that a function called more than once still always sees
  /// the same arguments. Calibrated so the *overall* monomorphic share
  /// lands at the paper's 59.91% given ~49% called-once functions:
  /// (0.5991 - 0.4888) / (1 - 0.4888).
  double MonomorphicGivenMultiCall = 0.216;
  /// Zipf exponent for the distinct-argument-set tail of polymorphic
  /// functions (Figure 2's slow descent: 8.71% two sets, 4.60% three).
  double ArgZipfAlpha = 1.3;
  /// Cap for sampled counts (the paper's most-called function: 1,956).
  unsigned MaxCalls = 2000;

  // Parameter-type mix from Figure 4's WEB bars.
  double PObject = 0.356;
  double PString = 0.330;
  double PInt = 0.064;
  double PDouble = 0.075;
  double PBool = 0.055;
  double PUndefined = 0.045;
  double PArray = 0.040;
  double PFunction = 0.020;
  // Remainder: null.
};

/// Generates the MiniJS source of one synthetic browsing session.
std::string generateWebSessionProgram(const WebSessionModel &Model,
                                      uint64_t Seed);

/// Samples a Zipf-distributed value in [1, Max].
unsigned sampleZipf(RNG &Rand, double Alpha, unsigned Max);

} // namespace jitvs

#endif // JITVS_PROFILING_WEBSESSION_H
