//===- profiling/CallProfiler.cpp - Call instrumentation -------------------===//

#include "profiling/CallProfiler.h"

#include "telemetry/Metrics.h"

#include <algorithm>
#include <cstdio>

using namespace jitvs;

void CallProfiler::recordCall(FunctionInfo *Callee, const Value *Args,
                              size_t NumArgs) {
  MetricsPhaseTimer ProfilePhase(Phase::ProfileCalls);
  FuncProfile &P = Profiles[{CurrentUnit, Callee}];
  if (P.Calls == 0) {
    P.Name = Callee->Name;
    for (size_t I = 0; I != NumArgs; ++I)
      P.FirstArgTags.push_back(Args[I].tag());
  }
  ++P.Calls;
  ++TotalCalls;

  uint64_t H = 1469598103934665603ull ^ NumArgs;
  for (size_t I = 0; I != NumArgs; ++I) {
    H ^= Args[I].specializationHash();
    H *= 1099511628211ull;
  }
  P.ArgSetHashes.insert(H);

  // Per-slot stability counters (the tier policy's input).
  if (P.Params.size() < NumArgs)
    P.Params.resize(NumArgs);
  for (size_t I = 0; I != NumArgs; ++I) {
    ParamStats &S = P.Params[I];
    S.TagMask |= 1u << static_cast<uint32_t>(Args[I].tag());
    if (S.ValuesSaturated)
      continue;
    uint64_t VH = Args[I].specializationHash();
    if (S.ValueHashes.size() >= MaxTrackedValuesPerParam &&
        !S.ValueHashes.count(VH))
      S.ValuesSaturated = true;
    else
      S.ValueHashes.insert(VH);
  }

  publishStability(Callee, P);
}

static uint32_t popcount32(uint32_t Mask) {
  uint32_t N = 0;
  while (Mask) {
    ++N;
    Mask &= Mask - 1;
  }
  return N;
}

void CallProfiler::publishStability(const FunctionInfo *Info,
                                    const FuncProfile &P) {
  StabilityCell *Cell;
  {
    std::shared_lock<std::shared_mutex> Read(CellsMu);
    auto It = Cells.find({CurrentUnit, Info});
    Cell = It == Cells.end() ? nullptr : It->second.get();
  }
  if (!Cell) {
    std::unique_lock<std::shared_mutex> Write(CellsMu);
    auto &Slot = Cells[{CurrentUnit, Info}];
    if (!Slot)
      Slot = std::make_unique<StabilityCell>();
    Cell = Slot.get();
  }

  // Seqlock write: odd sequence while the counters are torn, even when
  // consistent again. Single writer (the main thread), so a plain
  // read-modify-write of Seq is fine.
  uint32_t S = Cell->Seq.load(std::memory_order_relaxed);
  Cell->Seq.store(S + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  size_t N = std::min(P.Params.size(), StabilityCell::MaxSlots);
  Cell->NumSlots.store(static_cast<uint32_t>(N), std::memory_order_relaxed);
  for (size_t I = 0; I != N; ++I) {
    const ParamStats &PS = P.Params[I];
    uint32_t Distinct = static_cast<uint32_t>(PS.ValueHashes.size()) +
                        (PS.ValuesSaturated ? 1 : 0);
    Cell->Values[I].store(Distinct, std::memory_order_relaxed);
    Cell->Tags[I].store(popcount32(PS.TagMask), std::memory_order_relaxed);
  }
  Cell->Seq.store(S + 2, std::memory_order_release);
}

std::vector<ParamStability>
CallProfiler::paramStabilitySnapshot(const FunctionInfo *Info) const {
  const StabilityCell *Cell;
  {
    std::shared_lock<std::shared_mutex> Read(CellsMu);
    auto It = Cells.find({CurrentUnit, Info});
    if (It == Cells.end())
      return {};
    Cell = It->second.get();
  }
  std::vector<ParamStability> Out;
  for (;;) {
    Out.clear();
    uint32_t S1 = Cell->Seq.load(std::memory_order_acquire);
    if (S1 & 1)
      continue; // Write in progress; retry.
    uint32_t N = Cell->NumSlots.load(std::memory_order_relaxed);
    for (uint32_t I = 0; I != N && I != StabilityCell::MaxSlots; ++I) {
      ParamStability PS;
      PS.DistinctValues = Cell->Values[I].load(std::memory_order_relaxed);
      PS.DistinctTags = Cell->Tags[I].load(std::memory_order_relaxed);
      Out.push_back(PS);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (Cell->Seq.load(std::memory_order_relaxed) == S1)
      return Out;
  }
}

std::vector<ParamStability>
CallProfiler::paramStability(const FunctionInfo *Info) const {
  std::vector<ParamStability> Out;
  auto It = Profiles.find({CurrentUnit, Info});
  if (It == Profiles.end())
    return Out;
  for (const ParamStats &S : It->second.Params) {
    ParamStability PS;
    PS.DistinctValues = static_cast<uint32_t>(S.ValueHashes.size()) +
                        (S.ValuesSaturated ? 1 : 0);
    uint32_t Mask = S.TagMask;
    while (Mask) {
      ++PS.DistinctTags;
      Mask &= Mask - 1;
    }
    Out.push_back(PS);
  }
  return Out;
}

static FractionHistogram
buildHistogram(const std::vector<uint64_t> &Values, uint32_t MaxBucket) {
  FractionHistogram Hist;
  Hist.MaxBucket = MaxBucket;
  Hist.TotalFunctions = Values.size();
  Hist.Fractions.assign(MaxBucket, 0.0);
  if (Values.empty())
    return Hist;
  for (uint64_t V : Values) {
    if (V >= 1 && V <= MaxBucket)
      Hist.Fractions[V - 1] += 1.0;
    else if (V > MaxBucket)
      Hist.TailFraction += 1.0;
  }
  for (double &F : Hist.Fractions)
    F /= static_cast<double>(Values.size());
  Hist.TailFraction /= static_cast<double>(Values.size());
  return Hist;
}

FractionHistogram
CallProfiler::callCountHistogram(uint32_t MaxBucket) const {
  std::vector<uint64_t> Counts;
  for (const auto &[Key, P] : Profiles)
    Counts.push_back(P.Calls);
  return buildHistogram(Counts, MaxBucket);
}

FractionHistogram CallProfiler::argSetHistogram(uint32_t MaxBucket) const {
  std::vector<uint64_t> Counts;
  for (const auto &[Key, P] : Profiles)
    Counts.push_back(P.ArgSetHashes.size());
  return buildHistogram(Counts, MaxBucket);
}

double CallProfiler::fractionCalledOnce() const {
  if (Profiles.empty())
    return 0.0;
  size_t N = 0;
  for (const auto &[Key, P] : Profiles)
    if (P.Calls == 1)
      ++N;
  return static_cast<double>(N) / static_cast<double>(Profiles.size());
}

double CallProfiler::fractionSingleArgSet() const {
  if (Profiles.empty())
    return 0.0;
  size_t N = 0;
  for (const auto &[Key, P] : Profiles)
    if (P.ArgSetHashes.size() == 1)
      ++N;
  return static_cast<double>(N) / static_cast<double>(Profiles.size());
}

TypeDistribution CallProfiler::monomorphicParamTypes() const {
  TypeDistribution D;
  for (const auto &[Key, P] : Profiles) {
    if (P.ArgSetHashes.size() != 1)
      continue;
    for (ValueTag Tag : P.FirstArgTags) {
      size_t Idx;
      switch (Tag) {
      case ValueTag::Array:
        Idx = 0;
        break;
      case ValueTag::Boolean:
        Idx = 1;
        break;
      case ValueTag::Double:
        Idx = 2;
        break;
      case ValueTag::Function:
        Idx = 3;
        break;
      case ValueTag::Int32:
        Idx = 4;
        break;
      case ValueTag::Null:
        Idx = 5;
        break;
      case ValueTag::Object:
        Idx = 6;
        break;
      case ValueTag::String:
        Idx = 7;
        break;
      case ValueTag::Undefined:
        Idx = 8;
        break;
      default:
        continue;
      }
      D.Fractions[Idx] += 1.0;
      ++D.TotalParams;
    }
  }
  if (D.TotalParams)
    for (double &F : D.Fractions)
      F /= static_cast<double>(D.TotalParams);
  return D;
}

std::pair<std::string, uint64_t> CallProfiler::mostCalled() const {
  std::pair<std::string, uint64_t> Best{"", 0};
  for (const auto &[Key, P] : Profiles)
    if (P.Calls > Best.second)
      Best = {P.Name, P.Calls};
  return Best;
}

std::pair<std::string, uint64_t> CallProfiler::mostVaried() const {
  std::pair<std::string, uint64_t> Best{"", 0};
  for (const auto &[Key, P] : Profiles)
    if (P.ArgSetHashes.size() > Best.second)
      Best = {P.Name, P.ArgSetHashes.size()};
  return Best;
}

const char *TypeDistribution::categoryName(size_t I) {
  static const char *const Names[9] = {"array",  "bool",   "double",
                                       "function", "int",  "null",
                                       "object", "string", "undefined"};
  return Names[I];
}

std::string TypeDistribution::toTable() const {
  std::string Out;
  char Buf[64];
  for (size_t I = 0; I != 9; ++I) {
    std::snprintf(Buf, sizeof(Buf), "  %-10s %6.2f%%\n", categoryName(I),
                  Fractions[I] * 100.0);
    Out += Buf;
  }
  return Out;
}

std::string FractionHistogram::toTable(const char *MetricName) const {
  std::string Out;
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "  %-6s  %% of functions (total %llu)\n",
                MetricName, static_cast<unsigned long long>(TotalFunctions));
  Out += Buf;
  for (size_t I = 0; I != Fractions.size(); ++I) {
    if (Fractions[I] == 0.0)
      continue;
    std::string Bar(static_cast<size_t>(Fractions[I] * 100.0), '#');
    std::snprintf(Buf, sizeof(Buf), "  %-6zu  %6.2f%%  %s\n", I + 1,
                  Fractions[I] * 100.0, Bar.c_str());
    Out += Buf;
  }
  if (TailFraction > 0.0) {
    std::snprintf(Buf, sizeof(Buf), "  >%-5u  %6.2f%%\n", MaxBucket,
                  TailFraction * 100.0);
    Out += Buf;
  }
  return Out;
}
