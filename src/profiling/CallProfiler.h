//===- profiling/CallProfiler.h - Section 2 instrumentation -----*- C++ -*-===//
///
/// \file
/// Reproduces the paper's Section 2 instrumentation of the Firefox
/// browser: per-function invocation counts (Figure 1/3-top), distinct
/// argument-set counts (Figure 2/3-bottom) and the parameter-type mix of
/// functions always called with one argument set (Figure 4).
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_PROFILING_CALLPROFILER_H
#define JITVS_PROFILING_CALLPROFILER_H

#include "vm/Runtime.h"

#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace jitvs {

/// Aggregated histogram: Fraction[n] = share of functions with metric
/// value n (1-based); the tail beyond MaxBucket is combined, as in the
/// paper's figures.
struct FractionHistogram {
  std::vector<double> Fractions; ///< Index 0 -> value 1, etc.
  double TailFraction = 0.0;
  uint32_t MaxBucket = 30;
  uint64_t TotalFunctions = 0;

  std::string toTable(const char *MetricName) const;
};

/// Parameter-type distribution (Figure 4 categories).
struct TypeDistribution {
  // Order mirrors Figure 4: array, bool, double, function, int, null,
  // object, string, undefined.
  std::array<double, 9> Fractions = {};
  uint64_t TotalParams = 0;

  static const char *categoryName(size_t I);
  std::string toTable() const;
};

/// Per-parameter stability facts, the input to the engine's tier policy
/// (value -> type -> generic ladder): how many distinct values and how
/// many distinct tags one argument slot has been observed to carry.
struct ParamStability {
  /// Distinct specialization values seen in this slot. Tracking is capped
  /// (CallProfiler::MaxTrackedValuesPerParam); once more values than the
  /// cap have been seen this saturates at cap + 1.
  uint32_t DistinctValues = 0;
  /// Distinct value tags seen in this slot (exact, never saturates).
  uint32_t DistinctTags = 0;
};

/// Observes every user-function call through Runtime's CallObserver hook.
class CallProfiler final : public CallObserver {
public:
  /// Per-parameter distinct-value tracking cap: beyond this many values a
  /// slot is unambiguously value-unstable, so exact counting stops.
  static constexpr uint32_t MaxTrackedValuesPerParam = 8;

  /// Starts a new profiling unit (one program/Runtime). Function
  /// identities are per-unit: fresh runtimes reuse heap addresses, so raw
  /// FunctionInfo pointers are only unique within a unit.
  void beginUnit() { ++CurrentUnit; }

  void recordCall(FunctionInfo *Callee, const Value *Args,
                  size_t NumArgs) override;

  /// Figure 1 / Figure 3 (top): how many functions were called n times.
  FractionHistogram callCountHistogram(uint32_t MaxBucket = 30) const;

  /// Figure 2 / Figure 3 (bottom): how many functions were called with n
  /// distinct argument sets.
  FractionHistogram argSetHistogram(uint32_t MaxBucket = 30) const;

  /// Figure 4: the types of the parameters of functions that were always
  /// called with a single argument set.
  TypeDistribution monomorphicParamTypes() const;

  /// Share of functions called exactly once / with exactly one arg set.
  double fractionCalledOnce() const;
  double fractionSingleArgSet() const;

  size_t numFunctions() const { return Profiles.size(); }
  uint64_t totalCalls() const { return TotalCalls; }

  /// Most-called function (name, calls) — the paper quotes these.
  std::pair<std::string, uint64_t> mostCalled() const;
  /// Function with the most distinct argument sets.
  std::pair<std::string, uint64_t> mostVaried() const;

  /// Per-parameter stability of \p Info in the current unit. Index I
  /// describes argument slot I. Empty when the function has not been
  /// observed (callers should then assume nothing and stay optimistic).
  /// Main-thread only: walks the live profile tables.
  std::vector<ParamStability> paramStability(const FunctionInfo *Info) const;

  /// Thread-safe variant for background compile workers: reads a
  /// seqlock-published copy of the same counters, so it never touches
  /// the hash sets recordCall mutates. Returns the same numbers as
  /// paramStability (possibly one call stale — the tier policy tolerates
  /// staleness; a wrong guess despecializes like any other miss).
  std::vector<ParamStability>
  paramStabilitySnapshot(const FunctionInfo *Info) const;

private:
  struct ParamStats {
    std::unordered_set<uint64_t> ValueHashes; ///< Capped.
    uint32_t TagMask = 0; ///< Bit per ValueTag.
    bool ValuesSaturated = false;
  };

  /// Seqlock-published mirror of one function's per-slot counters.
  /// Single writer (recordCall, main thread), any number of lock-free
  /// readers (compile workers). Data fields are relaxed atomics so the
  /// torn intermediate states a seqlock retries through are still
  /// data-race-free; Seq's acquire/release pairing makes a verified
  /// even-to-even read a consistent snapshot.
  struct StabilityCell {
    static constexpr size_t MaxSlots = 16;
    std::atomic<uint32_t> Seq{0};
    std::atomic<uint32_t> NumSlots{0};
    std::atomic<uint32_t> Values[MaxSlots] = {};
    std::atomic<uint32_t> Tags[MaxSlots] = {};
  };

  struct FuncProfile {
    std::string Name;
    uint64_t Calls = 0;
    std::unordered_set<uint64_t> ArgSetHashes;
    /// Tags of the first call's arguments (used for Figure 4 when the
    /// function stays monomorphic).
    std::vector<ValueTag> FirstArgTags;
    bool FirstArgIsInt = false;
    /// Per-argument-slot stability counters for the tier policy.
    std::vector<ParamStats> Params;
  };

  /// Mirrors \p P's per-slot counters into the function's StabilityCell
  /// under the seqlock write protocol (creating the cell on first call).
  void publishStability(const FunctionInfo *Info, const FuncProfile &P);

  std::map<std::pair<uint64_t, const FunctionInfo *>, FuncProfile> Profiles;
  /// Seqlock cells mirrored from Profiles. The map itself is guarded by
  /// CellsMu (writer inserts under an exclusive lock, readers look up
  /// under a shared one); the cells' contents need no lock.
  mutable std::shared_mutex CellsMu;
  std::map<std::pair<uint64_t, const FunctionInfo *>,
           std::unique_ptr<StabilityCell>>
      Cells;
  uint64_t CurrentUnit = 0;
  uint64_t TotalCalls = 0;
};

} // namespace jitvs

#endif // JITVS_PROFILING_CALLPROFILER_H
