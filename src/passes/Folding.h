//===- passes/Folding.h - Shared compile-time evaluation --------*- C++ -*-===//
///
/// \file
/// Compile-time evaluation of pure MIR instructions over constant
/// operand values, shared by constant propagation (Section 3.3) and by
/// dead-code elimination's branch folding (Section 3.5, which must
/// evaluate the wrapping conditional loop inversion introduces even when
/// the full constant-propagation pass is not in the configuration).
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_PASSES_FOLDING_H
#define JITVS_PASSES_FOLDING_H

#include "mir/MIR.h"

#include <functional>
#include <optional>

namespace jitvs {

class Runtime;

/// Evaluates \p I given operand values supplied by \p OperandValue.
/// \returns the folded value, or nullopt when the op does not fold (or an
/// operand value is unavailable). Uses the runtime's generic helpers so
/// compile-time results match interpreter semantics exactly; may allocate
/// (string concatenation), so callers must keep graph constants rooted.
std::optional<Value> evaluatePureInstr(
    const MInstr *I, Runtime &RT,
    const std::function<std::optional<Value>(const MInstr *)> &OperandValue);

/// Transitively evaluates \p Def to a constant, following pure
/// instructions whose operands themselves evaluate to constants, up to
/// \p MaxDepth instructions deep. Used by DCE to decide constant branch
/// conditions without rewriting the graph.
std::optional<Value> evaluateToConstant(const MInstr *Def, Runtime &RT,
                                        unsigned MaxDepth = 8);

} // namespace jitvs

#endif // JITVS_PASSES_FOLDING_H
