//===- passes/Inliner.cpp - Guard-free closure inlining --------------------===//
///
/// \file
/// Section 3.7: "We inline functions passed as arguments, whenever
/// possible... We inline a closure as soon as we compile the host
/// function, and we do not use guards. In case the function is called
/// again [with different arguments], our entire code will be discarded;
/// hence, these guards would not be necessary."
///
/// A call is inlined when its callee is a *constant* user function —
/// which is exactly what parameter specialization produces for closures
/// passed as arguments. The callee body is built directly into the host
/// graph in guard-free mode (inlined frames cannot be reconstructed on
/// bailout, so inlined code never bails; generic helper ops are used
/// where a guard would be needed; see DESIGN.md). The call block is
/// split and returns merge through a phi.
///
//===----------------------------------------------------------------------===//

#include "passes/Passes.h"

#include "mir/MIRBuilder.h"
#include "vm/Bytecode.h"
#include "vm/Object.h"
#include "vm/Runtime.h"

using namespace jitvs;

namespace {

/// Inlines one call site whose callee resolved to \p Callee.
/// \returns true on success.
bool inlineCallSite(MIRGraph &Graph, MInstr *Call, FunctionInfo *Callee,
                    const OptConfig &Config) {
  if (!isInlinableFunction(Callee, Config.InlineMaxBytecode))
    return false;

  MBasicBlock *B = Call->block();

  std::vector<MInstr *> Args;
  for (size_t I = 1, E = Call->numOperands(); I != E; ++I)
    Args.push_back(Call->operand(I));

  InlineBuildResult Built = buildInlineMIR(Graph, Callee, Args);
  if (!Built.Ok || Built.Returns.empty())
    return false;

  // Split B after the call.
  const std::vector<MInstr *> &Body = B->instructions();
  size_t CallPos = 0;
  while (CallPos < Body.size() && Body[CallPos] != Call)
    ++CallPos;
  assert(CallPos < Body.size() && "call not found in its block");

  MBasicBlock *After = Graph.createBlock();
  B->transferTailTo(After, CallPos + 1);

  // Successors of the moved terminator now flow from After.
  if (MInstr *Term = After->terminator())
    for (size_t S = 0, E = Term->numSuccessors(); S != E; ++S)
      Term->successor(S)->replacePredecessor(B, After);

  // B jumps into the inlined entry.
  B->remove(Call); // Detach the call (uses rewritten below).
  MInstr *EnterJ = Graph.create(MirOp::Goto, MIRType::None);
  EnterJ->setSuccessor(0, Built.EntryBlock);
  B->append(EnterJ);
  Built.EntryBlock->addPredecessor(B);

  // Return sites jump to After; the merged value replaces the call.
  MInstr *Result = nullptr;
  if (Built.Returns.size() == 1) {
    auto &[RetBlock, RetDef] = Built.Returns.front();
    MInstr *J = Graph.create(MirOp::Goto, MIRType::None);
    J->setSuccessor(0, After);
    RetBlock->append(J);
    After->addPredecessor(RetBlock);
    Result = RetDef;
  } else {
    MInstr *Phi = Graph.create(MirOp::Phi, MIRType::Any);
    for (auto &[RetBlock, RetDef] : Built.Returns) {
      MInstr *J = Graph.create(MirOp::Goto, MIRType::None);
      J->setSuccessor(0, After);
      RetBlock->append(J);
      After->addPredecessor(RetBlock);
      Phi->appendOperand(RetDef);
    }
    After->addPhi(Phi);
    Result = Phi;
  }

  Call->replaceAllUsesWith(Result);
  return true;
}

/// \returns the callee FunctionInfo when \p Call is an inlinable direct
/// call to a constant user function.
FunctionInfo *constantCallee(MIRGraph &Graph, MInstr *Call) {
  if (Call->op() != MirOp::Call)
    return nullptr;
  MInstr *Callee = Call->operand(0);
  if (Callee->op() != MirOp::Constant || !Callee->constValue().isFunction())
    return nullptr;
  JSFunction *F = Callee->constValue().asFunction();
  if (F->isNative())
    return nullptr;
  if (F->info() == Graph.functionInfo())
    return nullptr; // No self-inlining.
  return F->info();
}

} // namespace

unsigned jitvs::runClosureInlining(MIRGraph &Graph, Runtime &RT,
                                   const OptConfig &Config) {
  unsigned TotalInlined = 0;
  for (unsigned Depth = 0; Depth < Config.InlineMaxDepth; ++Depth) {
    bool Any = false;
    // Snapshot the live blocks: inlining adds blocks mid-iteration.
    std::vector<MBasicBlock *> Blocks = Graph.liveBlocks();
    for (MBasicBlock *B : Blocks) {
      if (B->isDead())
        continue;
      std::vector<MInstr *> Body = B->instructions();
      for (MInstr *I : Body) {
        if (I->isDead() || I->block() != B)
          continue; // Moved by a previous split in this block.
        FunctionInfo *Callee = constantCallee(Graph, I);
        if (!Callee)
          continue;
        if (inlineCallSite(Graph, I, Callee, Config)) {
          ++TotalInlined;
          Any = true;
          break; // Block was split; restart from the snapshot.
        }
      }
    }
    if (!Any)
      break;
  }
  return TotalInlined;
}
