//===- passes/Passes.h - MIR optimization passes ----------------*- C++ -*-===//
///
/// \file
/// The optimization pipeline: IonMonkey's baseline global value numbering
/// plus the paper's five value-specialization-enabled optimizations
/// (Sections 3.2-3.7). OptConfig mirrors the configuration matrix of
/// Figure 9.
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_PASSES_PASSES_H
#define JITVS_PASSES_PASSES_H

#include "mir/MIRGraph.h"

#include <string>

namespace jitvs {

class Runtime;

/// Which optimizations to run (Figure 9's configuration axes).
struct OptConfig {
  /// §3.2: replace parameters by their runtime values (and §3.7: inline
  /// closures passed as constants — the paper's PARAMETERSPEC column
  /// always pairs them).
  bool ParameterSpecialization = false;
  /// §3.3: constant propagation (Aho-style; no branch information).
  bool ConstantPropagation = false;
  /// §3.4: loop inversion (while -> do-while with wrapping conditional).
  bool LoopInversion = false;
  /// §3.5: dead-code elimination (branch folding + unreachable blocks).
  bool DeadCodeElim = false;
  /// §3.6: array-bounds-check elimination on induction-variable patterns.
  bool BoundsCheckElim = false;
  /// Relaxed BCE aliasing (ablation): allow in-bounds StoreElement in the
  /// graph (the paper's rule rejects any store).
  bool RelaxedBCEAliasing = false;
  /// Extension from the paper's conclusion: range-analysis-based
  /// overflow-check elimination (Sol et al.), most effective under
  /// parameter specialization. Not part of the Figure 9 matrix.
  bool OverflowCheckElim = false;
  /// Baseline IonMonkey pass, always on in the paper's comparisons.
  bool GlobalValueNumbering = true;

  /// Inlining budget for §3.7 (bytecode bytes).
  uint32_t InlineMaxBytecode = 400;
  uint32_t InlineMaxDepth = 3;

  static OptConfig baseline() { return OptConfig(); }
  static OptConfig all() {
    OptConfig C;
    C.ParameterSpecialization = true;
    C.ConstantPropagation = true;
    C.LoopInversion = true;
    C.DeadCodeElim = true;
    C.BoundsCheckElim = true;
    return C;
  }

  std::string describe() const;
};

/// The ten configurations of Figure 9 (see DESIGN.md for the
/// reconstruction of the bullet matrix).
struct NamedConfig {
  const char *Name;
  OptConfig Config;
};
std::vector<NamedConfig> figure9Configs();

/// Runs the configured pipeline (after graph construction / inlining).
void runOptimizationPipeline(MIRGraph &Graph, Runtime &RT,
                             const OptConfig &Config);

// Individual passes (exposed for unit tests and the pass-order ablation).
void runGVN(MIRGraph &Graph);
void runConstantPropagation(MIRGraph &Graph, Runtime &RT);
void runLoopInversion(MIRGraph &Graph);
void runDeadCodeElimination(MIRGraph &Graph, Runtime &RT);
void runBoundsCheckElimination(MIRGraph &Graph, bool RelaxedAliasing);
/// Extension (paper conclusion): removes overflow bailouts from int32
/// arithmetic whose result range provably fits. \returns checks removed.
unsigned runOverflowCheckElimination(MIRGraph &Graph);
/// §3.7: inlines calls whose callee is a constant user function (arises
/// from parameter specialization). \returns number of call sites inlined.
unsigned runClosureInlining(MIRGraph &Graph, Runtime &RT,
                            const OptConfig &Config);

/// Removes instructions that are unused and removable. Shared by DCE and
/// tests. \returns number removed.
unsigned removeUnusedInstructions(MIRGraph &Graph);

} // namespace jitvs

#endif // JITVS_PASSES_PASSES_H
