//===- passes/Folding.cpp - Compile-time evaluation ------------------------===//

#include "passes/Folding.h"

#include "vm/Object.h"
#include "vm/Runtime.h"

#include <cmath>

using namespace jitvs;

std::optional<Value> jitvs::evaluatePureInstr(
    const MInstr *I, Runtime &RT,
    const std::function<std::optional<Value>(const MInstr *)>
        &OperandValue) {
  // Gather operand values up front; bail out when any is unavailable.
  auto Get = [&](size_t Idx) { return OperandValue(I->operand(Idx)); };
  auto C = [&](size_t Idx) { return *OperandValue(I->operand(Idx)); };
  for (size_t Idx = 0, E = I->numOperands(); Idx != E; ++Idx)
    if (!Get(Idx))
      return std::nullopt;
  if (I->numOperands() == 0)
    return std::nullopt;

  std::optional<Value> Result;
  switch (I->op()) {
  case MirOp::AddI:
  case MirOp::AddD:
    Result = RT.genericAdd(C(0), C(1));
    break;
  case MirOp::SubI:
  case MirOp::SubD:
    Result = RT.genericSub(C(0), C(1));
    break;
  case MirOp::MulI:
  case MirOp::MulD:
    Result = RT.genericMul(C(0), C(1));
    break;
  case MirOp::DivD:
    Result = RT.genericDiv(C(0), C(1));
    break;
  case MirOp::ModI:
  case MirOp::ModD:
    Result = RT.genericMod(C(0), C(1));
    break;
  case MirOp::NegI:
  case MirOp::NegD:
    Result = RT.genericNeg(C(0));
    break;

  case MirOp::GenericBinop: {
    switch (static_cast<Op>(I->AuxA)) {
    case Op::Add:
      Result = RT.genericAdd(C(0), C(1));
      break;
    case Op::Sub:
      Result = RT.genericSub(C(0), C(1));
      break;
    case Op::Mul:
      Result = RT.genericMul(C(0), C(1));
      break;
    case Op::Div:
      Result = RT.genericDiv(C(0), C(1));
      break;
    case Op::Mod:
      Result = RT.genericMod(C(0), C(1));
      break;
    default:
      return std::nullopt;
    }
    break;
  }
  case MirOp::GenericUnop: {
    Op O = static_cast<Op>(I->AuxA);
    if (O == Op::Neg)
      Result = RT.genericNeg(C(0));
    else if (O == Op::Pos)
      Result = Value::number(Runtime::toNumber(C(0)));
    else
      return std::nullopt;
    break;
  }

  case MirOp::BitAnd:
    Result = RT.genericBitOp(Op::BitAnd, C(0), C(1));
    break;
  case MirOp::BitOr:
    Result = RT.genericBitOp(Op::BitOr, C(0), C(1));
    break;
  case MirOp::BitXor:
    Result = RT.genericBitOp(Op::BitXor, C(0), C(1));
    break;
  case MirOp::Shl:
    Result = RT.genericBitOp(Op::Shl, C(0), C(1));
    break;
  case MirOp::Shr:
    Result = RT.genericBitOp(Op::Shr, C(0), C(1));
    break;
  case MirOp::UShr:
    Result = RT.genericBitOp(Op::UShr, C(0), C(1));
    break;
  case MirOp::BitNot:
    Result = RT.genericBitNot(C(0));
    break;
  case MirOp::TruncateToInt32:
    Result = Value::int32(Runtime::toInt32(Runtime::toNumber(C(0))));
    break;
  case MirOp::ToDouble:
    Result = Value::makeDouble(Runtime::toNumber(C(0)));
    break;

  case MirOp::CompareI:
  case MirOp::CompareD:
  case MirOp::CompareS:
  case MirOp::CompareGeneric: {
    const Value &A = C(0), &B = C(1);
    switch (static_cast<Op>(I->AuxA)) {
    case Op::Lt:
      Result = Value::boolean(RT.genericLess(A, B));
      break;
    case Op::Le:
      Result = Value::boolean(RT.genericLessEq(A, B));
      break;
    case Op::Gt:
      Result = Value::boolean(RT.genericLess(B, A));
      break;
    case Op::Ge:
      Result = Value::boolean(RT.genericLessEq(B, A));
      break;
    case Op::Eq:
      Result = Value::boolean(RT.genericLooseEquals(A, B));
      break;
    case Op::Ne:
      Result = Value::boolean(!RT.genericLooseEquals(A, B));
      break;
    case Op::StrictEq:
      Result = Value::boolean(A.strictEquals(B));
      break;
    case Op::StrictNe:
      Result = Value::boolean(!A.strictEquals(B));
      break;
    default:
      return std::nullopt;
    }
    break;
  }

  case MirOp::Not:
    Result = Value::boolean(!C(0).toBoolean());
    break;
  case MirOp::Concat:
    Result = RT.genericAdd(C(0), C(1));
    break;
  case MirOp::TypeOf:
    Result = RT.typeOfValue(C(0));
    break;

  case MirOp::Unbox: {
    MIRType Want = static_cast<MIRType>(I->AuxA);
    const Value &V = C(0);
    if (Want == MIRType::Double && V.isNumber())
      Result = Value::makeDouble(V.asNumber());
    else if (mirTypeOfValue(V) == Want)
      Result = V;
    else
      return std::nullopt; // Guard would bail at runtime.
    break;
  }
  case MirOp::TypeBarrier: {
    if (C(0).tag() == static_cast<ValueTag>(I->AuxA))
      Result = C(0);
    else
      return std::nullopt;
    break;
  }

  // The string/array/math folds below never assume operand tags: a
  // specialized parameter constant can have any tag, and reading the
  // wrong payload would fold a garbage constant. Unexpected tags (and
  // out-of-range indices, which must reach the runtime bounds check or
  // the interpreter's NaN path) simply decline to fold.
  case MirOp::StringLength: {
    if (!C(0).isString())
      return std::nullopt;
    Result = Value::int32(static_cast<int32_t>(C(0).asString()->length()));
    break;
  }
  case MirOp::CharCodeAt: {
    if (!C(0).isString() || !C(1).isInt32())
      return std::nullopt;
    const std::string &S = C(0).asString()->str();
    int32_t Idx = C(1).asInt32();
    if (Idx < 0 || static_cast<size_t>(Idx) >= S.size())
      return std::nullopt;
    Result = Value::int32(static_cast<unsigned char>(S[Idx]));
    break;
  }
  case MirOp::FromCharCode:
    if (!C(0).isInt32())
      return std::nullopt;
    Result =
        RT.newStringValue(std::string(1, static_cast<char>(
                                             C(0).asInt32() & 0xFF)));
    break;

  case MirOp::MathFunction: {
    if (!C(0).isNumber() ||
        (I->numOperands() > 1 && !C(1).isNumber()))
      return std::nullopt;
    MathIntrinsic F = static_cast<MathIntrinsic>(I->AuxA);
    double A = C(0).asNumber();
    double B = I->numOperands() > 1 ? C(1).asNumber() : 0.0;
    double R;
    switch (F) {
    case MathIntrinsic::Sin:
      R = std::sin(A);
      break;
    case MathIntrinsic::Cos:
      R = std::cos(A);
      break;
    case MathIntrinsic::Tan:
      R = std::tan(A);
      break;
    case MathIntrinsic::Atan:
      R = std::atan(A);
      break;
    case MathIntrinsic::Sqrt:
      R = std::sqrt(A);
      break;
    case MathIntrinsic::Abs:
      R = std::fabs(A);
      break;
    case MathIntrinsic::Floor:
      R = std::floor(A);
      break;
    case MathIntrinsic::Ceil:
      R = std::ceil(A);
      break;
    case MathIntrinsic::Round:
      R = Runtime::jsMathRound(A);
      break;
    case MathIntrinsic::Log:
      R = std::log(A);
      break;
    case MathIntrinsic::Exp:
      R = std::exp(A);
      break;
    case MathIntrinsic::Pow:
      R = std::pow(A, B);
      break;
    case MathIntrinsic::Atan2:
      R = std::atan2(A, B);
      break;
    default:
      return std::nullopt;
    }
    Result = Value::makeDouble(R);
    break;
  }

  default:
    return std::nullopt;
  }

  // Clear helper side flags tripped during compile-time evaluation.
  (void)RT.tookIntOverflow();
  (void)RT.tookOutOfBounds();
  return Result;
}

std::optional<Value> jitvs::evaluateToConstant(const MInstr *Def, Runtime &RT,
                                               unsigned MaxDepth) {
  if (Def->op() == MirOp::Constant)
    return Def->constValue();
  if (MaxDepth == 0 || Def->isEffectful() || Def->isPhi() ||
      Def->isControl())
    return std::nullopt;
  return evaluatePureInstr(
      Def, RT, [&RT, MaxDepth](const MInstr *Operand) {
        return evaluateToConstant(Operand, RT, MaxDepth - 1);
      });
}
