//===- passes/OverflowCheckElim.cpp - Remove provably-safe overflow guards -===//
///
/// \file
/// The extension named in the paper's conclusion: "It is our intention
/// to re-implement other classic compiler optimizations such as
/// loop-unrolling and overflow-check elimination in the context of
/// runtime-value specialization", building on Sol et al.'s range
/// analysis (CC'11), which the same group showed becomes far more
/// effective when runtime values are known.
///
/// A deliberately simple range analysis in that spirit: ranges come from
/// int32 constants (which parameter specialization produces in
/// abundance), from induction phis bounded by constant loop tests (the
/// same pattern Section 3.6 recognizes), and from one level of
/// arithmetic over those. Int32 add/sub/mul whose result range provably
/// fits in int32 lose their overflow bailout (AuxB = 1 marks the
/// unchecked form; codegen emits the guard-free instruction and drops
/// the snapshot).
///
//===----------------------------------------------------------------------===//

#include "passes/Passes.h"

#include "mir/Dominators.h"

#include <algorithm>

#include <unordered_map>

using namespace jitvs;

namespace {

struct Range {
  bool Known = false;
  int64_t Lo = 0;
  int64_t Hi = 0;
};

Range makeRange(int64_t Lo, int64_t Hi) {
  Range R;
  R.Known = true;
  R.Lo = Lo;
  R.Hi = Hi;
  return R;
}

bool fitsInt32(int64_t V) { return V >= INT32_MIN && V <= INT32_MAX; }

/// Range of the induction phi \p Phi within \p Loop, using the Section
/// 3.6 pattern: phi(const init, AddI(phi, positive const step)) bounded
/// by a loop-controlling CompareI(Lt/Le) against a constant.
Range inductionRange(MInstr *Phi, const NaturalLoop &Loop) {
  if (!Phi->isPhi() || Phi->block() != Loop.Header)
    return {};

  MInstr *Inc = nullptr;
  int64_t InitLo = INT64_MAX, InitHi = INT64_MIN;
  int64_t Step = 0;
  for (size_t I = 0, E = Phi->numOperands(); I != E; ++I) {
    MInstr *Operand = Phi->operand(I);
    if (Operand->op() == MirOp::Constant &&
        Operand->constValue().isInt32()) {
      int32_t C = Operand->constValue().asInt32();
      InitLo = std::min<int64_t>(InitLo, C);
      InitHi = std::max<int64_t>(InitHi, C);
      continue;
    }
    if (Operand->op() == MirOp::AddI &&
        (Operand->operand(0) == Phi || Operand->operand(1) == Phi)) {
      MInstr *StepDef = Operand->operand(0) == Phi ? Operand->operand(1)
                                                   : Operand->operand(0);
      if (StepDef->op() != MirOp::Constant ||
          !StepDef->constValue().isInt32() ||
          StepDef->constValue().asInt32() < 1)
        return {};
      if (Inc && Inc != Operand)
        return {};
      Inc = Operand;
      Step = StepDef->constValue().asInt32();
      continue;
    }
    return {};
  }
  if (!Inc || InitLo == INT64_MAX)
    return {};

  // The loop-continuation test bounds the phi (or its increment).
  int64_t Bound = INT64_MIN;
  for (MBasicBlock *B : Loop.Body) {
    MInstr *T = B->terminator();
    if (!T || T->op() != MirOp::Test)
      continue;
    MInstr *Cond = T->operand(0);
    if (Cond->op() != MirOp::CompareI)
      continue;
    if (Cond->operand(0) != Phi && Cond->operand(0) != Inc)
      continue;
    MInstr *Limit = Cond->operand(1);
    if (Limit->op() != MirOp::Constant || !Limit->constValue().isInt32())
      continue;
    // Only a genuinely loop-controlling test bounds the phi: taking the
    // branch must stay in the loop AND failing it must exit. An inner
    // `if (phi < K)` whose false side stays in the loop proves nothing —
    // iterations keep running (and incrementing phi) after it fails, so
    // treating it as a bound would drop overflow checks on an unbounded
    // induction variable and silently wrap.
    if (!Loop.contains(T->successor(0)) || Loop.contains(T->successor(1)))
      continue;
    Op CmpOp = static_cast<Op>(Cond->AuxA);
    int64_t L = Limit->constValue().asInt32();
    if (CmpOp == Op::Lt)
      Bound = std::max(Bound, L);
    else if (CmpOp == Op::Le)
      Bound = std::max(Bound, L + 1);
  }
  if (Bound == INT64_MIN)
    return {};
  // Phi ranges over [init, bound-1]; the increment may reach
  // bound-1+step before the test, which callers see via the AddI range.
  return makeRange(InitLo, std::max(InitHi, Bound - 1 + Step));
}

} // namespace

unsigned jitvs::runOverflowCheckElimination(MIRGraph &Graph) {
  DominatorTree::build(Graph);
  std::vector<NaturalLoop> Loops = findNaturalLoops(Graph);

  std::unordered_map<const MInstr *, Range> Ranges;
  auto RangeOf = [&](MInstr *Def) -> Range {
    auto It = Ranges.find(Def);
    if (It != Ranges.end())
      return It->second;
    Range R;
    if (Def->op() == MirOp::Constant && Def->constValue().isInt32()) {
      int32_t C = Def->constValue().asInt32();
      R = makeRange(C, C);
    } else if (Def->isPhi()) {
      for (const NaturalLoop &Loop : Loops) {
        if (Def->block() == Loop.Header) {
          R = inductionRange(Def, Loop);
          break;
        }
      }
    }
    Ranges[Def] = R;
    return R;
  };

  unsigned Removed = 0;
  // One forward pass in RPO: arithmetic over known ranges extends the
  // map, so chains like (i + 1) * 2 resolve in order.
  for (MBasicBlock *B : Graph.reversePostOrder()) {
    for (MInstr *I : B->instructions()) {
      MirOp Op = I->op();
      if (Op != MirOp::AddI && Op != MirOp::SubI && Op != MirOp::MulI)
        continue;
      if (I->AuxB == 1)
        continue; // Already unchecked.
      Range A = RangeOf(I->operand(0));
      Range Bv = RangeOf(I->operand(1));
      if (!A.Known || !Bv.Known)
        continue;
      int64_t Lo, Hi;
      switch (Op) {
      case MirOp::AddI:
        Lo = A.Lo + Bv.Lo;
        Hi = A.Hi + Bv.Hi;
        break;
      case MirOp::SubI:
        Lo = A.Lo - Bv.Hi;
        Hi = A.Hi - Bv.Lo;
        break;
      case MirOp::MulI: {
        int64_t Products[4] = {A.Lo * Bv.Lo, A.Lo * Bv.Hi, A.Hi * Bv.Lo,
                               A.Hi * Bv.Hi};
        Lo = *std::min_element(Products, Products + 4);
        Hi = *std::max_element(Products, Products + 4);
        // Keep the -0 bailout: a zero result with negative inputs must
        // still go through the checked path.
        if (Lo <= 0 && (A.Lo < 0 || Bv.Lo < 0))
          continue;
        break;
      }
      default:
        continue;
      }
      if (!fitsInt32(Lo) || !fitsInt32(Hi))
        continue;
      // Provably in range: drop the guard.
      I->AuxB = 1;
      I->dropResumePoint();
      Ranges[I] = makeRange(Lo, Hi);
      ++Removed;
    }
  }
  return Removed;
}
