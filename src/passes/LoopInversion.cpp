//===- passes/LoopInversion.cpp - while -> do-while rotation ---------------===//
///
/// \file
/// Section 3.4: replaces a while loop (test at the header) by a repeat
/// loop (test at the latch) plus a wrapping conditional that protects the
/// zero-iteration case. Under parameter specialization the wrapper's
/// condition is frequently constant, so a subsequent dead-code
/// elimination removes it — "our parameter specialization often lets us
/// know, at code generation time, that a loop will be executed at least
/// once". When the loop has an OSR predecessor, the OSR edge is
/// retargeted into the rotated body through a shim block, exactly as in
/// the paper's Figure 7(c).
///
/// Shape requirements (loops that do not match are left alone):
///   - single latch ending in an unconditional Goto to the header;
///   - one non-loop predecessor (plus, optionally, the OSR block);
///   - the header's instructions are all duplicable (pure or guards);
///   - body entry and exit blocks have the header as sole predecessor;
///   - no header phi takes a header *instruction* as its back-edge value.
///
//===----------------------------------------------------------------------===//

#include "passes/Passes.h"

#include "mir/Dominators.h"

#include <algorithm>

#include <unordered_map>
#include <unordered_set>

using namespace jitvs;

namespace {

using SubstMap = std::unordered_map<MInstr *, MInstr *>;

MInstr *mapped(const SubstMap &Subst, MInstr *D) {
  auto It = Subst.find(D);
  return It != Subst.end() ? It->second : D;
}

/// Clones the non-phi, non-terminator instructions of \p Header into
/// \p Dest, resolving operands and resume-point entries through
/// \p Subst; extends Subst with the clones and records them in
/// \p CloneSet.
void cloneHeaderBody(MIRGraph &Graph, MBasicBlock *Header, MBasicBlock *Dest,
                     SubstMap &Subst,
                     std::unordered_set<MInstr *> &CloneSet) {
  for (MInstr *I : Header->instructions()) {
    if (I->isControl())
      continue;
    assert(!I->isEffectful() && "cloning an effectful header instruction");
    MInstr *Clone = Graph.create(I->op(), I->type());
    Clone->ConstVal = I->ConstVal;
    Clone->AuxA = I->AuxA;
    Clone->AuxB = I->AuxB;
    for (size_t OpIdx = 0, E = I->numOperands(); OpIdx != E; ++OpIdx)
      Clone->appendOperand(mapped(Subst, I->operand(OpIdx)));
    if (MResumePoint *RP = I->resumePoint()) {
      MResumePoint *NewRP =
          Graph.createResumePoint(RP->pc(), RP->numFrameSlots());
      for (size_t EIdx = 0, E = RP->numEntries(); EIdx != E; ++EIdx)
        NewRP->appendEntry(mapped(Subst, RP->entry(EIdx)));
      Clone->setResumePoint(NewRP);
    }
    Dest->append(Clone);
    Subst[I] = Clone;
    CloneSet.insert(Clone);
  }
}

bool invertLoop(MIRGraph &Graph, const NaturalLoop &Loop) {
  MBasicBlock *H = Loop.Header;

  if (Loop.BackEdgePreds.size() != 1)
    return false;
  MBasicBlock *Latch = Loop.BackEdgePreds[0];
  MInstr *LatchTerm = Latch->terminator();
  if (!LatchTerm || LatchTerm->op() != MirOp::Goto || Latch == H)
    return false;

  MInstr *T = H->terminator();
  if (!T || T->op() != MirOp::Test)
    return false;
  MBasicBlock *SuccTrue = T->successor(0);
  MBasicBlock *SuccFalse = T->successor(1);
  bool TrueInLoop = Loop.contains(SuccTrue);
  bool FalseInLoop = Loop.contains(SuccFalse);
  if (TrueInLoop == FalseInLoop)
    return false;
  MBasicBlock *Body = TrueInLoop ? SuccTrue : SuccFalse;
  MBasicBlock *Exit = TrueInLoop ? SuccFalse : SuccTrue;

  if (Body->numPredecessors() != 1 || Exit->numPredecessors() != 1)
    return false;
  if (Body == H || Exit == H || Body == Exit)
    return false;
  assert(Body->phis().empty() && Exit->phis().empty() &&
         "single-predecessor blocks cannot have phis");

  // Outside predecessors.
  MBasicBlock *Pre = nullptr;
  MBasicBlock *OsrPred = nullptr;
  for (MBasicBlock *P : H->predecessors()) {
    if (P == Latch)
      continue;
    if (P == Graph.osrBlock()) {
      OsrPred = P;
      continue;
    }
    if (Pre)
      return false;
    Pre = P;
  }
  if (!Pre)
    return false;
  MInstr *PreTerm = Pre->terminator();
  if (!PreTerm)
    return false;

  // Header instructions must be duplicable.
  for (MInstr *I : H->instructions())
    if (I->isEffectful())
      return false;

  // No header phi may carry a header instruction on its back edge (the
  // clone-resolution order cannot handle it; rare shape, skip).
  const std::vector<MInstr *> HeaderPhis = H->phis();
  size_t PreIdx = H->indexOfPredecessor(Pre);
  size_t LatchIdx = H->indexOfPredecessor(Latch);
  size_t OsrIdx = OsrPred ? H->indexOfPredecessor(OsrPred) : 0;
  for (MInstr *Phi : HeaderPhis) {
    MInstr *Back = Phi->operand(LatchIdx);
    if (!Back->isPhi() && Back->block() == H)
      return false;
  }

  // --- 1. Rewire Body/Exit predecessor lists (before adding phis). ---
  Body->removePredecessor(H);
  Exit->removePredecessor(H);

  MBasicBlock *W = Graph.createBlock();
  MBasicBlock *OsrShim = OsrPred ? Graph.createBlock() : nullptr;

  Body->addPredecessor(W);
  Body->addPredecessor(Latch);
  if (OsrShim)
    Body->addPredecessor(OsrShim);
  Exit->addPredecessor(W);
  Exit->addPredecessor(Latch);
  if (OsrShim)
    Exit->addPredecessor(OsrShim);

  // --- 2. Create the rotated-loop phis (operands filled later). ---
  std::vector<MInstr *> HeaderDefs;
  for (MInstr *Phi : HeaderPhis)
    HeaderDefs.push_back(Phi);
  for (MInstr *I : H->instructions())
    if (!I->isControl())
      HeaderDefs.push_back(I);

  SubstMap BodyPhiOf, ExitPhiOf;
  for (MInstr *D : HeaderDefs) {
    MInstr *BP = Graph.create(MirOp::Phi, D->type());
    Body->addPhi(BP);
    BodyPhiOf[D] = BP;
    MInstr *XP = Graph.create(MirOp::Phi, D->type());
    Exit->addPhi(XP);
    ExitPhiOf[D] = XP;
  }

  // --- 3. Clone the header computation three ways. ---
  // Wrapper: over the loop-entry values.
  std::unordered_set<MInstr *> CloneSet;
  SubstMap WSubst;
  for (MInstr *Phi : HeaderPhis)
    WSubst[Phi] = Phi->operand(PreIdx);
  cloneHeaderBody(Graph, H, W, WSubst, CloneSet);

  // Latch: over the next-iteration values. A back-edge value that is
  // itself a header phi evaluates to that phi's current-iteration value,
  // i.e. the corresponding body phi.
  SubstMap LSubst;
  for (MInstr *Phi : HeaderPhis) {
    MInstr *Back = Phi->operand(LatchIdx);
    if (Back->isPhi() && Back->block() == H)
      LSubst[Phi] = BodyPhiOf[Back];
    else if (Back == Phi)
      LSubst[Phi] = BodyPhiOf[Phi];
    else
      LSubst[Phi] = Back;
  }
  Latch->remove(LatchTerm);
  cloneHeaderBody(Graph, H, Latch, LSubst, CloneSet);

  // OSR shim: over the OSR frame values.
  SubstMap OSubst;
  if (OsrShim) {
    for (MInstr *Phi : HeaderPhis)
      OSubst[Phi] = Phi->operand(OsrIdx);
    cloneHeaderBody(Graph, H, OsrShim, OSubst, CloneSet);
  }

  // --- 4. Fill the phi operands (pred order: W, Latch, OsrShim). ---
  for (MInstr *D : HeaderDefs) {
    MInstr *BP = BodyPhiOf[D];
    BP->appendOperand(mapped(WSubst, D));
    BP->appendOperand(mapped(LSubst, D));
    if (OsrShim)
      BP->appendOperand(mapped(OSubst, D));
    MInstr *XP = ExitPhiOf[D];
    XP->appendOperand(mapped(WSubst, D));
    XP->appendOperand(mapped(LSubst, D));
    if (OsrShim)
      XP->appendOperand(mapped(OSubst, D));
  }

  // --- 5. Rewrite remaining uses of the header defs: everything except
  // the original header (which dies) and the fresh clones (whose operands
  // were resolved at clone time).
  std::unordered_set<MBasicBlock *> LoopBlocks(Loop.Body.begin(),
                                               Loop.Body.end());
  auto ReplFor = [&](MInstr *D, MBasicBlock *UseBlock) {
    return LoopBlocks.count(UseBlock) ? BodyPhiOf[D] : ExitPhiOf[D];
  };
  for (MInstr *D : HeaderDefs) {
    std::vector<MInstr::Use> Snapshot = D->uses();
    for (const MInstr::Use &U : Snapshot) {
      if (U.ConsumerInstr) {
        MInstr *User = U.ConsumerInstr;
        if (User->block() == H || CloneSet.count(User))
          continue;
        User->setOperand(U.Index, ReplFor(D, User->block()));
      } else {
        MResumePoint *RP = U.ConsumerRP;
        MInstr *Owner = RP->Owner;
        if (Owner && (Owner->block() == H || CloneSet.count(Owner)))
          continue;
        MBasicBlock *UseBlock = Owner ? Owner->block() : Body;
        RP->replaceEntry(U.Index, ReplFor(D, UseBlock));
      }
    }
  }

  // --- 6. Control flow. ---
  for (size_t S = 0, E = PreTerm->numSuccessors(); S != E; ++S)
    if (PreTerm->successor(S) == H)
      PreTerm->setSuccessor(S, W);
  W->addPredecessor(Pre);

  MInstr *WTest = Graph.create(MirOp::Test, MIRType::None);
  WTest->appendOperand(mapped(WSubst, T->operand(0)));
  WTest->setSuccessor(0, TrueInLoop ? Body : Exit);
  WTest->setSuccessor(1, TrueInLoop ? Exit : Body);
  W->append(WTest);

  MInstr *LTest = Graph.create(MirOp::Test, MIRType::None);
  LTest->appendOperand(mapped(LSubst, T->operand(0)));
  LTest->setSuccessor(0, TrueInLoop ? Body : Exit);
  LTest->setSuccessor(1, TrueInLoop ? Exit : Body);
  Latch->append(LTest);

  if (OsrShim) {
    MInstr *OsrTerm = OsrPred->terminator();
    for (size_t S = 0, E = OsrTerm->numSuccessors(); S != E; ++S)
      if (OsrTerm->successor(S) == H)
        OsrTerm->setSuccessor(S, OsrShim);
    OsrShim->addPredecessor(OsrPred);
    // The shim must re-test the condition over the OSR frame values: OSR
    // can trigger on exactly the header visit where the loop condition is
    // false (e.g. an inner loop whose trip counter crossed the threshold
    // across outer iterations), and jumping straight into the rotated
    // body would then execute one extra iteration.
    MInstr *OTest = Graph.create(MirOp::Test, MIRType::None);
    OTest->appendOperand(mapped(OSubst, T->operand(0)));
    OTest->setSuccessor(0, TrueInLoop ? Body : Exit);
    OTest->setSuccessor(1, TrueInLoop ? Exit : Body);
    OsrShim->append(OTest);
  }

  // --- 7. Delete the old header. H's pred links to Pre/Latch/Osr are
  // stale but die with the block; its successor links were rewired above,
  // so clear the terminator's successors before removeBlock unlinks them
  // a second time.
  T->setSuccessor(0, nullptr);
  T->setSuccessor(1, nullptr);
  Graph.removeBlock(H);

  Body->setLoopHeader(true);
  return true;
}

} // namespace

void jitvs::runLoopInversion(MIRGraph &Graph) {
  // Loop structure is re-analyzed after every successful rotation:
  // inverting an inner loop restructures the blocks an enclosing loop's
  // analysis referred to. Innermost (smallest-body) loops go first.
  std::unordered_set<uint32_t> Attempted;
  bool Changed = false;
  while (true) {
    DominatorTree::build(Graph);
    std::vector<NaturalLoop> Loops = findNaturalLoops(Graph);
    std::sort(Loops.begin(), Loops.end(),
              [](const NaturalLoop &A, const NaturalLoop &B) {
                return A.Body.size() < B.Body.size();
              });
    const NaturalLoop *Next = nullptr;
    for (const NaturalLoop &Loop : Loops) {
      if (Loop.Header->isDead() || Attempted.count(Loop.Header->id()))
        continue;
      Next = &Loop;
      break;
    }
    if (!Next)
      break;
    Attempted.insert(Next->Header->id());
    Changed |= invertLoop(Graph, *Next);
  }
  if (!Changed)
    return;

  // Clean up after the rotation: the merge phis created for header defs
  // that have no remaining uses would otherwise become per-iteration
  // parallel moves. Removing them (and any header-computation clones that
  // became unused) is part of the transformation, not of the separate
  // dead-code-elimination pass.
  bool Pruned = true;
  while (Pruned) {
    Pruned = false;
    for (MBasicBlock *B : Graph.liveBlocks()) {
      std::vector<MInstr *> Phis = B->phis();
      for (MInstr *Phi : Phis) {
        bool OnlySelfUses = true;
        for (const MInstr::Use &U : Phi->uses()) {
          if (U.ConsumerInstr != Phi) {
            OnlySelfUses = false;
            break;
          }
        }
        if (!OnlySelfUses)
          continue;
        B->removePhi(Phi);
        Pruned = true;
      }
    }
  }
  removeUnusedInstructions(Graph);
}
