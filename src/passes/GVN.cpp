//===- passes/GVN.cpp - Global value numbering ----------------------------===//
///
/// \file
/// Hash-based global value numbering in the style of Alpern, Wegman and
/// Zadeck — the baseline IonMonkey optimization the paper compares
/// against ("IonMonkey's global value numbering already eliminates most
/// of the constants in the scripts"). Walks blocks in reverse postorder
/// and replaces each congruent instruction with an earlier, dominating
/// equivalent. Guards are deduplicated too: a dominating identical check
/// already established the property on the same SSA value.
///
//===----------------------------------------------------------------------===//

#include "passes/Passes.h"

#include "mir/Dominators.h"

#include <unordered_map>

using namespace jitvs;

void jitvs::runGVN(MIRGraph &Graph) {
  DominatorTree::build(Graph);

  // Array lengths are congruence-eligible when nothing in the graph can
  // change a length during this activation: in-bounds StoreElement cannot
  // resize, but generic element/property writes and calls can. This is
  // the same crude-but-sound aliasing discipline the paper's Section 3.6
  // uses.
  bool LengthsStable = true;
  for (const auto &BPtr : Graph.blocks()) {
    if (BPtr->isDead() || !LengthsStable)
      continue;
    for (const MInstr *I : BPtr->instructions()) {
      switch (I->op()) {
      case MirOp::GenericSetElem:
      case MirOp::GenericSetProp:
      case MirOp::Call:
      case MirOp::CallMethod:
      case MirOp::New:
        LengthsStable = false;
        break;
      default:
        break;
      }
      if (!LengthsStable)
        break;
    }
  }

  std::unordered_map<uint64_t, std::vector<MInstr *>> Table;

  for (MBasicBlock *B : Graph.reversePostOrder()) {
    // Take a snapshot: we remove instructions while iterating.
    std::vector<MInstr *> Body = B->instructions();
    for (MInstr *I : Body) {
      // Typed-identity simplification: an unbox whose operand is already
      // statically known to have the target type is a no-op (this arises
      // after phi typing and inlining). IonMonkey folds these in GVN too.
      if (I->op() == MirOp::Unbox &&
          I->operand(0)->type() == static_cast<MIRType>(I->AuxA) &&
          static_cast<MIRType>(I->AuxA) != MIRType::Double) {
        MInstr *Operand = I->operand(0);
        I->replaceAllUsesWith(Operand);
        B->remove(I);
        continue;
      }
      if (I->op() == MirOp::ToDouble &&
          I->operand(0)->type() == MIRType::Double) {
        MInstr *Operand = I->operand(0);
        I->replaceAllUsesWith(Operand);
        B->remove(I);
        continue;
      }
      bool Eligible = I->isCongruenceCandidate() ||
                      (LengthsStable && I->op() == MirOp::ArrayLength);
      if (!Eligible)
        continue;
      uint64_t H = I->valueHash();
      auto &Bucket = Table[H];
      MInstr *Found = nullptr;
      for (MInstr *Cand : Bucket) {
        if (Cand->isDead() || !Cand->congruentTo(I))
          continue;
        if (!Cand->block()->dominates(B))
          continue;
        Found = Cand;
        break;
      }
      if (Found) {
        I->replaceAllUsesWith(Found);
        B->remove(I);
        continue;
      }
      Bucket.push_back(I);
    }
  }
}
