//===- passes/Pipeline.cpp - Pass ordering and Figure 9 configs -----------===//

#include "passes/Passes.h"

#include "support/Timer.h"
#include "telemetry/Metrics.h"
#include "telemetry/Telemetry.h"

using namespace jitvs;

namespace {

/// Guards still in the graph — the per-pass "guards removed" metric
/// attributes Figure-10-style code-size wins to the pass that earned
/// them.
size_t countGuards(const MIRGraph &Graph) {
  size_t N = 0;
  for (MBasicBlock *B : Graph.liveBlocks())
    for (const MInstr *I : B->instructions())
      if (I->isGuard())
        ++N;
  return N;
}

/// Runs one pass, surrounding it with the [pass] telemetry span (wall
/// time plus instruction/block/guard deltas) and, independently, the
/// Phase::OptPass metrics span with a per-pass duration histogram.
template <typename Fn>
void runInstrumented(MIRGraph &Graph, const char *Name, Fn &&Run) {
  bool Tel = telemetryEnabled(TelPass);
  bool Met = metricsEnabled();
  if (!Tel && !Met) {
    Run();
    return;
  }
  MetricsPhaseTimer PassPhase(Phase::OptPass);
  size_t InstrsBefore = Tel ? Graph.numInstructions() : 0;
  size_t GuardsBefore = Tel ? countGuards(Graph) : 0;
  Timer T;
  Run();
  uint64_t DurNs = static_cast<uint64_t>(T.seconds() * 1e9);
  if (Met)
    metrics().recordPass(Name, DurNs);
  if (!Tel)
    return;
  TelemetryEvent E;
  E.Kind = TelemetryEventKind::Pass;
  E.DurNs = DurNs;
  E.setFunc(Graph.functionInfo()->Name);
  E.setDetail(Name);
  E.A = InstrsBefore;
  E.B = Graph.numInstructions();
  size_t GuardsAfter = countGuards(Graph);
  E.C = GuardsBefore > GuardsAfter ? GuardsBefore - GuardsAfter : 0;
  E.D = Graph.numBlocks();
  telemetry().record(E);
}

} // namespace

std::string OptConfig::describe() const {
  std::string S;
  auto Add = [&S](const char *N) {
    if (!S.empty())
      S += "+";
    S += N;
  };
  if (ParameterSpecialization)
    Add("PS");
  if (ConstantPropagation)
    Add("CP");
  if (LoopInversion)
    Add("LI");
  if (DeadCodeElim)
    Add("DCE");
  if (BoundsCheckElim)
    Add("BCE");
  if (S.empty())
    S = "baseline";
  return S;
}

std::vector<NamedConfig> jitvs::figure9Configs() {
  auto Make = [](bool PS, bool CP, bool LI, bool DCE, bool BCE) {
    OptConfig C;
    C.ParameterSpecialization = PS;
    C.ConstantPropagation = CP;
    C.LoopInversion = LI;
    C.DeadCodeElim = DCE;
    C.BoundsCheckElim = BCE;
    return C;
  };
  return {
      {"PS", Make(true, false, false, false, false)},
      {"CP", Make(false, true, false, false, false)},
      {"PS+CP", Make(true, true, false, false, false)},
      {"PS+LI", Make(true, false, true, false, false)},
      {"PS+CP+DCE", Make(true, true, false, true, false)},
      {"PS+CP+LI", Make(true, true, true, false, false)},
      {"PS+BCE", Make(true, false, false, false, true)},
      {"PS+CP+LI+DCE", Make(true, true, true, true, false)},
      {"PS+CP+DCE+BCE", Make(true, true, false, true, true)},
      {"ALL", Make(true, true, true, true, true)},
  };
}

void jitvs::runOptimizationPipeline(MIRGraph &Graph, Runtime &RT,
                                    const OptConfig &Config) {
  // Thread-safety contract (audited for the background compiler): this
  // pipeline may run concurrently on multiple compile workers. Every
  // pass confines its mutable state to \p Graph and \p RT — callers off
  // the main thread MUST pass a worker-private Runtime (constant folding
  // allocates from RT's heap). No pass keeps function-local statics or
  // globals; the only shared sinks are telemetry() and metrics(), which
  // are internally synchronized, and Phase attribution, which is
  // per-thread (thread_local phase stack).
  //
  // Closure inlining happens before the pipeline (it needs the builder);
  // see jit::Engine. Pass order follows the paper: GVN (baseline), then
  // CP -> LI -> DCE -> BCE.
  if (Config.GlobalValueNumbering)
    runInstrumented(Graph, "GVN", [&] { runGVN(Graph); });
  if (Config.ConstantPropagation)
    runInstrumented(Graph, "ConstantPropagation",
                    [&] { runConstantPropagation(Graph, RT); });
  if (Config.LoopInversion)
    runInstrumented(Graph, "LoopInversion", [&] { runLoopInversion(Graph); });
  if (Config.DeadCodeElim)
    runInstrumented(Graph, "DCE",
                    [&] { runDeadCodeElimination(Graph, RT); });
  if (Config.BoundsCheckElim)
    runInstrumented(Graph, "BoundsCheckElim", [&] {
      runBoundsCheckElimination(Graph, Config.RelaxedBCEAliasing);
    });
  if (Config.OverflowCheckElim)
    runInstrumented(Graph, "OverflowCheckElim",
                    [&] { runOverflowCheckElimination(Graph); });
}
