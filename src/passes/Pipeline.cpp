//===- passes/Pipeline.cpp - Pass ordering and Figure 9 configs -----------===//

#include "passes/Passes.h"

using namespace jitvs;

std::string OptConfig::describe() const {
  std::string S;
  auto Add = [&S](const char *N) {
    if (!S.empty())
      S += "+";
    S += N;
  };
  if (ParameterSpecialization)
    Add("PS");
  if (ConstantPropagation)
    Add("CP");
  if (LoopInversion)
    Add("LI");
  if (DeadCodeElim)
    Add("DCE");
  if (BoundsCheckElim)
    Add("BCE");
  if (S.empty())
    S = "baseline";
  return S;
}

std::vector<NamedConfig> jitvs::figure9Configs() {
  auto Make = [](bool PS, bool CP, bool LI, bool DCE, bool BCE) {
    OptConfig C;
    C.ParameterSpecialization = PS;
    C.ConstantPropagation = CP;
    C.LoopInversion = LI;
    C.DeadCodeElim = DCE;
    C.BoundsCheckElim = BCE;
    return C;
  };
  return {
      {"PS", Make(true, false, false, false, false)},
      {"CP", Make(false, true, false, false, false)},
      {"PS+CP", Make(true, true, false, false, false)},
      {"PS+LI", Make(true, false, true, false, false)},
      {"PS+CP+DCE", Make(true, true, false, true, false)},
      {"PS+CP+LI", Make(true, true, true, false, false)},
      {"PS+BCE", Make(true, false, false, false, true)},
      {"PS+CP+LI+DCE", Make(true, true, true, true, false)},
      {"PS+CP+DCE+BCE", Make(true, true, false, true, true)},
      {"ALL", Make(true, true, true, true, true)},
  };
}

void jitvs::runOptimizationPipeline(MIRGraph &Graph, Runtime &RT,
                                    const OptConfig &Config) {
  // Closure inlining happens before the pipeline (it needs the builder);
  // see jit::Engine. Pass order follows the paper: GVN (baseline), then
  // CP -> LI -> DCE -> BCE.
  if (Config.GlobalValueNumbering)
    runGVN(Graph);
  if (Config.ConstantPropagation)
    runConstantPropagation(Graph, RT);
  if (Config.LoopInversion)
    runLoopInversion(Graph);
  if (Config.DeadCodeElim)
    runDeadCodeElimination(Graph, RT);
  if (Config.BoundsCheckElim)
    runBoundsCheckElimination(Graph, Config.RelaxedBCEAliasing);
  if (Config.OverflowCheckElim)
    runOverflowCheckElimination(Graph);
}
