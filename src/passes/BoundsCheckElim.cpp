//===- passes/BoundsCheckElim.cpp - Array bounds check elimination ---------===//
///
/// \file
/// Section 3.6: removes BoundsCheck guards for indices that are induction
/// variables of the paper's pattern i0 = c; i1 = phi(i0, i2); i2 = i1 + c2
/// whose loop bound is a compile-time constant not exceeding the length
/// of a compile-time-constant array (a specialized parameter).
///
/// Aliasing follows the paper's deliberately crude rule: "if there exists
/// any store instruction in the script being compiled, the elimination of
/// bound check instructions is considered unsafe and is not performed".
/// The relaxed mode (an ablation) additionally tolerates in-bounds
/// StoreElement instructions, which cannot change any array's length.
///
/// Because a specialized binary may be re-entered on a later call after
/// other code mutated the array, each eliminated check is covered by one
/// GuardArrayLength at both entry points, validating the compile-time
/// length before any side effect happens (bailing there re-runs the whole
/// call in the interpreter).
///
//===----------------------------------------------------------------------===//

#include "passes/Passes.h"

#include "mir/Dominators.h"
#include "vm/Object.h"

#include <unordered_set>

using namespace jitvs;

namespace {

/// Induction-variable facts for one BoundsCheck index.
struct IndexRange {
  bool Known = false;
  int32_t Min = 0;
  int32_t Max = 0; ///< Inclusive.
};

/// Matches the paper's induction pattern on \p Idx inside \p Loop:
/// Idx = phi(c0, AddI(Idx, step)) with step >= 1 and a loop-controlling
/// CompareI(Lt/Le) against a constant bound. Returns the value range the
/// index can take at the check.
IndexRange analyzeInductionIndex(MInstr *Idx, const NaturalLoop &Loop) {
  IndexRange R;
  if (!Idx->isPhi() || Idx->block() != Loop.Header)
    return R;
  if (Idx->numOperands() < 2)
    return R;

  // Identify the increment operand and the constant initial value(s).
  MInstr *Inc = nullptr;
  int64_t InitMin = INT64_MAX, InitMax = INT64_MIN;
  for (size_t I = 0, E = Idx->numOperands(); I != E; ++I) {
    MInstr *Operand = Idx->operand(I);
    if (Operand->op() == MirOp::Constant &&
        Operand->constValue().isInt32()) {
      int32_t C = Operand->constValue().asInt32();
      InitMin = std::min<int64_t>(InitMin, C);
      InitMax = std::max<int64_t>(InitMax, C);
      continue;
    }
    if (Operand->op() == MirOp::AddI &&
        (Operand->operand(0) == Idx || Operand->operand(1) == Idx)) {
      MInstr *Step = Operand->operand(0) == Idx ? Operand->operand(1)
                                                : Operand->operand(0);
      if (Step->op() != MirOp::Constant || !Step->constValue().isInt32() ||
          Step->constValue().asInt32() < 1)
        return R;
      if (Inc && Inc != Operand)
        return R;
      Inc = Operand;
      continue;
    }
    return R; // Unknown operand shape.
  }
  if (!Inc || InitMin == INT64_MAX || InitMin < 0)
    return R;

  // Find the loop-controlling comparison: a CompareI(Lt/Le) on Idx or Inc
  // against a constant, feeding a Test whose in-loop side is the
  // comparison's true side. We accept the test in the header (while
  // shape) or in a latch (inverted shape); either bounds Idx by the same
  // limit (the wrapper conditional of an inverted loop protects the first
  // iteration).
  int64_t Bound = INT64_MIN; // Exclusive upper bound on Idx.
  for (MBasicBlock *B : Loop.Body) {
    MInstr *T = B->terminator();
    if (!T || T->op() != MirOp::Test)
      continue;
    MInstr *Cond = T->operand(0);
    if (Cond->op() != MirOp::CompareI)
      continue;
    bool OnIdx = Cond->operand(0) == Idx;
    bool OnInc = Cond->operand(0) == Inc;
    if (!OnIdx && !OnInc)
      continue;
    MInstr *Limit = Cond->operand(1);
    if (Limit->op() != MirOp::Constant || !Limit->constValue().isInt32())
      continue;
    // The in-loop ("continue iterating") side must be the true side.
    if (!Loop.contains(T->successor(0)))
      continue;
    Op CmpOp = static_cast<Op>(Cond->AuxA);
    int64_t L = Limit->constValue().asInt32();
    int64_t ThisBound;
    if (CmpOp == Op::Lt)
      ThisBound = L; // idx < L  (or next < L, same bound for idx).
    else if (CmpOp == Op::Le)
      ThisBound = L + 1;
    else
      continue;
    Bound = std::max(Bound, ThisBound);
  }
  if (Bound == INT64_MIN || Bound > INT32_MAX)
    return R;
  // First iteration: Idx == Init, which must itself be below the bound;
  // a wrapper/header test guarantees the loop body only runs when the
  // condition held, so Init < Bound whenever the check executes.
  R.Known = true;
  R.Min = static_cast<int32_t>(InitMin);
  R.Max = static_cast<int32_t>(Bound - 1);
  return R;
}

/// \returns the compile-time length limit of the BoundsCheck's length
/// operand, and (for arrays) the constant array that needs an entry
/// guard. Strings are immutable, so no guard is needed for them.
struct LengthFact {
  bool Known = false;
  int32_t Length = 0;
  MInstr *GuardArrayConst = nullptr; ///< Constant array needing a guard.
};

LengthFact analyzeLength(MInstr *Len) {
  LengthFact F;
  if (Len->op() == MirOp::Constant && Len->constValue().isInt32()) {
    F.Known = true;
    F.Length = Len->constValue().asInt32();
    return F;
  }
  if (Len->op() == MirOp::ArrayLength) {
    MInstr *Arr = Len->operand(0);
    if (Arr->op() == MirOp::Constant && Arr->constValue().isArray()) {
      F.Known = true;
      F.Length =
          static_cast<int32_t>(Arr->constValue().asArray()->length());
      F.GuardArrayConst = Arr;
      return F;
    }
    return F;
  }
  if (Len->op() == MirOp::StringLength) {
    MInstr *Str = Len->operand(0);
    if (Str->op() == MirOp::Constant && Str->constValue().isString()) {
      F.Known = true;
      F.Length =
          static_cast<int32_t>(Str->constValue().asString()->length());
      return F;
    }
  }
  return F;
}

/// The paper's alias rule. \returns true when elimination is allowed.
bool graphPermitsElimination(MIRGraph &Graph, bool Relaxed) {
  for (MBasicBlock *B : Graph.liveBlocks()) {
    for (MInstr *I : B->instructions()) {
      switch (I->op()) {
      case MirOp::StoreElement:
        if (!Relaxed)
          return false; // Any store => unsafe (paper rule).
        break;           // In-bounds stores cannot change lengths.
      case MirOp::GenericSetElem:
      case MirOp::GenericSetProp:
      case MirOp::InitProp:
      case MirOp::SetGlobal:
      case MirOp::SetEnvSlot:
      case MirOp::Call:
      case MirOp::CallMethod:
      case MirOp::New:
        return false; // May mutate arrays (directly or via callees).
      default:
        break;
      }
    }
  }
  return true;
}

/// Inserts a GuardArrayLength for \p ArrConst at the end of \p B (before
/// the terminator), reusing the block's entry resume point: bailing at an
/// entry point re-runs the call (or resumes at the OSR loop head) before
/// any side effect has happened.
void insertEntryGuard(MIRGraph &Graph, MBasicBlock *B, MInstr *ArrConst,
                      int32_t ExpectedLen) {
  MResumePoint *RP = B->entryResumePoint();
  assert(RP && "entry block lacks an entry resume point");
  MInstr *Guard = Graph.create(MirOp::GuardArrayLength, MIRType::None);
  Guard->appendOperand(ArrConst);
  Guard->AuxA = static_cast<uint32_t>(ExpectedLen);
  Guard->setResumePoint(RP);
  MInstr *Term = B->terminator();
  assert(Term && "entry block without terminator");
  B->insertBefore(Term, Guard);
}

} // namespace

void jitvs::runBoundsCheckElimination(MIRGraph &Graph, bool RelaxedAliasing) {
  if (!graphPermitsElimination(Graph, RelaxedAliasing))
    return;

  DominatorTree::build(Graph);
  std::vector<NaturalLoop> Loops = findNaturalLoops(Graph);
  if (Loops.empty())
    return;

  std::unordered_set<MInstr *> GuardedArrays;

  for (const NaturalLoop &Loop : Loops) {
    for (MBasicBlock *B : Loop.Body) {
      std::vector<MInstr *> Body = B->instructions();
      for (MInstr *I : Body) {
        if (I->op() != MirOp::BoundsCheck)
          continue;
        MInstr *Idx = I->operand(0);
        MInstr *Len = I->operand(1);

        LengthFact LF = analyzeLength(Len);
        if (!LF.Known)
          continue;

        IndexRange IR = analyzeInductionIndex(Idx, Loop);
        if (!IR.Known)
          continue;
        if (IR.Min < 0 || IR.Max >= LF.Length)
          continue;

        // Safe: drop the per-iteration check.
        if (I->resumePoint())
          I->resumePoint()->clearEntries();
        B->remove(I);

        // Revalidate mutable array lengths at the entry points (once per
        // array).
        if (LF.GuardArrayConst &&
            GuardedArrays.insert(LF.GuardArrayConst).second) {
          insertEntryGuard(Graph, Graph.entry(), LF.GuardArrayConst,
                           LF.Length);
          if (MBasicBlock *Osr = Graph.osrBlock())
            insertEntryGuard(Graph, Osr, LF.GuardArrayConst, LF.Length);
        }
      }
    }
  }
}
