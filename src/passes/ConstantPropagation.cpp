//===- passes/ConstantPropagation.cpp - Constant propagation & folding ----===//
///
/// \file
/// The paper's Section 3.3: the classic Aho et al. constant propagation,
/// deliberately without conditional-branch information (contrast with
/// Wegman-Zadeck SCCP). On SSA this is a worklist to a fixed point:
/// whenever every operand of a foldable instruction is constant, the
/// instruction is evaluated at compile time and folded; phis whose
/// operands agree on one constant value fold as well. Folding uses the
/// runtime's own generic helpers so compile-time evaluation matches
/// interpreter semantics bit for bit. Guards whose property is statically
/// true (type barriers, unboxes, in-range bounds checks) fold away — this
/// is what eliminates the "two type guards in block L3" of Figure 7(b).
///
//===----------------------------------------------------------------------===//

#include "passes/Passes.h"

#include "passes/Folding.h"
#include "vm/Interpreter.h"
#include "vm/Object.h"
#include "vm/Runtime.h"

#include <cmath>
#include <optional>

using namespace jitvs;

namespace {

bool isConst(const MInstr *I) { return I->op() == MirOp::Constant; }

/// \returns true when every operand of \p I is a constant.
bool allOperandsConstant(const MInstr *I) {
  if (I->numOperands() == 0)
    return false;
  for (size_t Idx = 0, E = I->numOperands(); Idx != E; ++Idx)
    if (!isConst(I->operand(Idx)))
      return false;
  return true;
}

} // namespace

void jitvs::runConstantPropagation(MIRGraph &Graph, Runtime &RT) {
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (MBasicBlock *B : Graph.reversePostOrder()) {
      // Phis: meet over operands; c ^ c = c, anything else = top.
      std::vector<MInstr *> Phis = B->phis();
      for (MInstr *Phi : Phis) {
        if (Phi->numOperands() == 0)
          continue;
        bool AllSameConst = true;
        Value First;
        bool HaveFirst = false;
        for (size_t I = 0, E = Phi->numOperands(); I != E; ++I) {
          MInstr *Operand = Phi->operand(I);
          if (Operand == Phi)
            continue;
          if (!isConst(Operand)) {
            AllSameConst = false;
            break;
          }
          if (!HaveFirst) {
            First = Operand->constValue();
            HaveFirst = true;
          } else if (!First.sameSpecializationValue(
                         Operand->constValue())) {
            AllSameConst = false;
            break;
          }
        }
        if (!AllSameConst || !HaveFirst)
          continue;
        // Place a fresh constant in this block so it dominates all uses.
        MInstr *NewConst = Graph.createConstant(First);
        if (B->instructions().empty())
          B->append(NewConst);
        else
          B->insertBefore(B->instructions().front(), NewConst);
        Phi->replaceAllUsesWith(NewConst);
        B->removePhi(Phi);
        Changed = true;
      }

      std::vector<MInstr *> Body = B->instructions();
      for (MInstr *I : Body) {
        if (I->isDead() || isConst(I))
          continue;

        // Foldable guards with no produced value (bounds checks).
        if (I->op() == MirOp::BoundsCheck && allOperandsConstant(I)) {
          // Both constants must actually be int32s: a Double-tagged index
          // (or length) would read a garbage payload here and could
          // delete a bounds check that must bail at runtime.
          const Value &IdxV = I->operand(0)->constValue();
          const Value &LenV = I->operand(1)->constValue();
          if (IdxV.isInt32() && LenV.isInt32()) {
            int32_t Idx = IdxV.asInt32();
            int32_t Len = LenV.asInt32();
            if (Idx >= 0 && Idx < Len) {
              B->remove(I);
              Changed = true;
            }
          }
          continue;
        }

        // Type-only facts, distinct from value-constants: a guard whose
        // guarded property is already proven by its operand's *static
        // type* is redundant even though the operand's value is unknown.
        // Type-tier parameters arrive with their dispatch-validated tag
        // as static type and no baked value; these folds are what let
        // them shed the per-use Unbox/TypeBarrier guards generic code
        // must keep.
        if (I->op() == MirOp::TypeBarrier) {
          MInstr *Src = I->operand(0);
          if (Src->type() != MIRType::Any &&
              Src->type() ==
                  mirTypeOfTag(static_cast<ValueTag>(I->AuxA))) {
            I->replaceAllUsesWith(Src);
            B->remove(I);
            Changed = true;
            continue;
          }
        }
        if (I->op() == MirOp::Unbox) {
          MInstr *Src = I->operand(0);
          MIRType Want = static_cast<MIRType>(I->AuxA);
          if (Want != MIRType::Any && Src->type() == Want) {
            I->replaceAllUsesWith(Src);
            B->remove(I);
            Changed = true;
            continue;
          }
        }

        if (!allOperandsConstant(I))
          continue;
        std::optional<Value> Folded = evaluatePureInstr(
            I, RT, [](const MInstr *Operand) -> std::optional<Value> {
              if (Operand->op() == MirOp::Constant)
                return Operand->constValue();
              return std::nullopt;
            });
        if (!Folded)
          continue;
        // The folded value must be representable in the instruction's
        // static type: Double-typed instructions keep the Double tag, and
        // an Int32-typed op whose folding overflowed (the guard would
        // have bailed at runtime) is left alone so it deoptimizes.
        if (I->type() == MIRType::Double && Folded->isNumber())
          Folded = Value::makeDouble(Folded->asNumber());
        else if (I->type() == MIRType::Int32 && !Folded->isInt32())
          continue;
        else if (I->type() != MIRType::Any &&
                 mirTypeOfValue(*Folded) != I->type())
          continue;

        MInstr *NewConst = Graph.createConstant(*Folded);
        B->insertBefore(I, NewConst);
        I->replaceAllUsesWith(NewConst);
        B->remove(I);
        Changed = true;
      }
    }
  }
}
