//===- passes/DCE.cpp - Dead-code elimination ------------------------------===//
///
/// \file
/// Section 3.5: runs after constant propagation so that folded branch
/// conditions turn conditional jumps into gotos; blocks that become
/// unreachable are removed. The function entry block is always kept even
/// when the OSR path is the only live one — the engine caches binaries
/// and re-enters through the function entry on a later call with the same
/// arguments (see the paper's discussion of Figure 8(a)). A final sweep
/// removes pure instructions with no remaining uses.
///
//===----------------------------------------------------------------------===//

#include "passes/Passes.h"

#include "passes/Folding.h"
#include "vm/Runtime.h"

#include <unordered_set>

using namespace jitvs;

namespace {

/// Turns Tests with compile-time-decidable conditions into Gotos. The
/// condition need not be a literal Constant: after loop inversion the
/// wrapping conditional computes over the loop's initial values, and
/// evaluating that chain here is what lets DCE "remove the wrapping
/// conditional" as the paper describes (Section 3.4/3.5) even when the
/// constant-propagation pass is not part of the configuration.
bool foldBranches(MIRGraph &Graph, Runtime &RT) {
  bool Changed = false;
  for (MBasicBlock *B : Graph.liveBlocks()) {
    MInstr *T = B->terminator();
    if (!T || T->op() != MirOp::Test)
      continue;
    MInstr *Cond = T->operand(0);
    std::optional<Value> CondValue = evaluateToConstant(Cond, RT);
    if (!CondValue)
      continue;
    bool Taken = CondValue->toBoolean();
    MBasicBlock *Kept = T->successor(Taken ? 0 : 1);
    MBasicBlock *Dropped = T->successor(Taken ? 1 : 0);

    B->remove(T);
    MInstr *J = Graph.create(MirOp::Goto, MIRType::None);
    J->setSuccessor(0, Kept);
    B->append(J);
    if (Dropped != Kept)
      Dropped->removePredecessor(B);
    Changed = true;
  }
  return Changed;
}

/// Removes blocks unreachable from the entry points. The function entry
/// block and the OSR block are both roots.
bool removeUnreachableBlocks(MIRGraph &Graph) {
  std::unordered_set<MBasicBlock *> Reachable;
  std::vector<MBasicBlock *> Work;
  auto Root = [&](MBasicBlock *B) {
    if (B && !B->isDead() && Reachable.insert(B).second)
      Work.push_back(B);
  };
  Root(Graph.entry());
  Root(Graph.osrBlock());
  while (!Work.empty()) {
    MBasicBlock *B = Work.back();
    Work.pop_back();
    for (size_t I = 0, E = B->numSuccessors(); I != E; ++I)
      Root(B->successor(I));
  }

  bool Changed = false;
  for (MBasicBlock *B : Graph.liveBlocks()) {
    if (Reachable.count(B))
      continue;
    Graph.removeBlock(B);
    Changed = true;
  }
  return Changed;
}

/// Replaces single-operand phis left behind by edge removal.
bool pruneDegeneratePhis(MIRGraph &Graph) {
  bool Changed = false;
  for (MBasicBlock *B : Graph.liveBlocks()) {
    std::vector<MInstr *> Phis = B->phis();
    for (MInstr *Phi : Phis) {
      MInstr *Unique = nullptr;
      bool Trivial = true;
      for (size_t I = 0, E = Phi->numOperands(); I != E; ++I) {
        MInstr *Operand = Phi->operand(I);
        if (Operand == Phi)
          continue;
        if (!Unique)
          Unique = Operand;
        else if (Unique != Operand) {
          Trivial = false;
          break;
        }
      }
      if (!Trivial || !Unique)
        continue;
      Phi->replaceAllUsesWith(Unique);
      B->removePhi(Phi);
      Changed = true;
    }
  }
  return Changed;
}

} // namespace

unsigned jitvs::removeUnusedInstructions(MIRGraph &Graph) {
  unsigned Removed = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (MBasicBlock *B : Graph.liveBlocks()) {
      std::vector<MInstr *> Body = B->instructions();
      // Walk backwards so use-chains collapse in one sweep.
      for (auto It = Body.rbegin(), E = Body.rend(); It != E; ++It) {
        MInstr *I = *It;
        if (I->isDead() || I->hasUses() || !I->isRemovableIfUnused())
          continue;
        B->remove(I);
        ++Removed;
        Changed = true;
      }
      std::vector<MInstr *> Phis = B->phis();
      for (MInstr *Phi : Phis) {
        // A phi is dead when its only uses (if any) are itself.
        bool OnlySelfUses = true;
        for (const MInstr::Use &U : Phi->uses()) {
          if (U.ConsumerInstr != Phi) {
            OnlySelfUses = false;
            break;
          }
        }
        if (!OnlySelfUses)
          continue;
        B->removePhi(Phi);
        ++Removed;
        Changed = true;
      }
    }
  }
  return Removed;
}

void jitvs::runDeadCodeElimination(MIRGraph &Graph, Runtime &RT) {
  bool Changed = true;
  while (Changed) {
    Changed = false;
    Changed |= foldBranches(Graph, RT);
    Changed |= removeUnreachableBlocks(Graph);
    Changed |= pruneDegeneratePhis(Graph);
  }
  removeUnusedInstructions(Graph);
}
