//===- jit/CompileQueue.h - Background compilation job queue ----*- C++ -*-===//
///
/// \file
/// A bounded priority queue of CompileTasks drained by N worker threads.
/// Tasks are keyed by (FunctionInfo, entry/OSR): enqueueing a key that is
/// already pending coalesces into the existing job (promoting its
/// priority if the new request is more urgent) instead of compiling the
/// same function twice. Workers run the compile callback the engine
/// supplies; results travel back through each task's atomic Result slot
/// and are collected by the main thread via takeCompleted() at dispatch
/// boundaries. hasCompleted() is a lock-free fast path so an idle pump
/// costs one acquire load.
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_JIT_COMPILEQUEUE_H
#define JITVS_JIT_COMPILEQUEUE_H

#include "jit/CompileTask.h"

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace jitvs {

class CompileQueue {
public:
  /// Runs one task on a worker thread. \p WorkerIdx in [0, numThreads())
  /// identifies the calling worker so the engine can hand each worker
  /// its own private fold Runtime. The callback must release-store the
  /// task's Result before returning.
  using CompileFn = std::function<void(CompileTask &Task, unsigned WorkerIdx)>;

  /// Starts \p NumThreads workers. \p Bound caps the pending backlog;
  /// enqueues beyond it are rejected (the caller keeps interpreting and
  /// retries at the next hot trigger).
  CompileQueue(unsigned NumThreads, size_t Bound, CompileFn Fn);
  ~CompileQueue(); ///< shutdown() if the caller has not already.

  enum class EnqueueResult {
    Queued,    ///< Accepted as a new job.
    Coalesced, ///< Folded into a pending job with the same key.
    Full,      ///< Backlog at the bound; rejected.
  };
  EnqueueResult enqueue(std::shared_ptr<CompileTask> Task);

  /// Pending (not yet picked up) jobs.
  size_t depth() const;

  /// Blocks until no job is pending or running. Completed results still
  /// await takeCompleted() — draining publishes, it does not install.
  void drain();

  /// Stops the workers: pending jobs are dropped (counted), the running
  /// ones finish and are joined. Idempotent.
  void shutdown();

  /// Lock-free check for the dispatch-boundary pump: true iff
  /// takeCompleted() would return something.
  bool hasCompleted() const {
    return CompletedFlag.load(std::memory_order_acquire);
  }
  std::vector<std::shared_ptr<CompileTask>> takeCompleted();

  struct Counters {
    uint64_t Enqueued = 0;
    uint64_t Coalesced = 0;
    uint64_t RejectedFull = 0;
    uint64_t Compiled = 0;
    uint64_t DroppedAtShutdown = 0;
  };
  Counters counters() const;

  unsigned numThreads() const {
    return static_cast<unsigned>(Workers.size());
  }

  /// Visits every task the queue still references — pending, running and
  /// completed — under the queue lock. Main-thread only; used to GC-root
  /// the value snapshots tasks carry. The task is mutable so tracing can
  /// rewrite moved pointers, but a running task's snapshots are read
  /// concurrently by its worker — the engine tenures them at enqueue so
  /// a minor collection never actually relocates them (the visitor only
  /// writes when a pointer moved). Result stays worker-owned.
  void forEachTask(const std::function<void(CompileTask &)> &Fn) const;

private:
  void workerLoop(unsigned Idx);
  /// Pops the best pending task (lowest priority value, then FIFO).
  /// Caller holds Mu and has checked Pending is non-empty.
  std::shared_ptr<CompileTask> popBestLocked();

  mutable std::mutex Mu;
  std::condition_variable WorkCV; ///< Workers wait here for jobs.
  std::condition_variable IdleCV; ///< drain() waits here.
  std::vector<std::shared_ptr<CompileTask>> Pending;
  std::vector<std::shared_ptr<CompileTask>> Running;
  std::vector<std::shared_ptr<CompileTask>> Completed;
  /// Mirrors !Completed.empty() for the lock-free pump fast path.
  std::atomic<bool> CompletedFlag{false};
  uint64_t NextSeq = 1;
  size_t Bound;
  CompileFn Fn;
  bool Stop = false;
  unsigned Busy = 0; ///< Workers currently running a job.
  Counters Stats;
  std::vector<std::thread> Workers;
};

} // namespace jitvs

#endif // JITVS_JIT_COMPILEQUEUE_H
