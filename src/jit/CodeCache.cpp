//===- jit/CodeCache.cpp - Shared SpecSig-keyed specialization cache ------===//

#include "jit/CodeCache.h"

using namespace jitvs;

size_t CodeCache::codeBytes(const NativeCode &Code) {
  size_t Bytes = sizeof(NativeCode);
  Bytes += Code.Code.size() * sizeof(Code.Code[0]);
  Bytes += Code.ConstPool.size() * sizeof(Value);
  for (const Snapshot &Snap : Code.Snapshots)
    Bytes += sizeof(Snap) + Snap.Entries.size() * sizeof(SnapshotEntry);
  return Bytes;
}

std::shared_ptr<NativeCode> CodeCache::lookup(const FunctionInfo *Info,
                                              uint32_t Generation,
                                              const Value *Args,
                                              size_t NumArgs,
                                              CodeReclaimer &Reclaimer,
                                              const SpecSig **SigOut) {
  auto It = Map.find(Info);
  if (It == Map.end())
    return nullptr;
  std::vector<Entry> &Vec = It->second;
  for (size_t I = 0; I != Vec.size();) {
    Entry &E = Vec[I];
    if (E.Generation != Generation) {
      // A generation bump slipped past an invalidate() — retire the
      // stale body here so it can never be dispatched but stays rooted
      // (via the reclaimer) for any in-flight frame still pinning it.
      ++Counters.StaleGenerationDrops;
      removeEntry(Vec, I, Reclaimer);
      continue;
    }
    if (specSigMatches(E.Sig, Args, NumArgs)) {
      ++Counters.Hits;
      E.LastUse = ++Clock;
      if (SigOut)
        *SigOut = &E.Sig;
      return E.Code;
    }
    ++I;
  }
  return nullptr;
}

bool CodeCache::insert(const FunctionInfo *Info, uint32_t Generation,
                       SpecSig Sig, std::shared_ptr<NativeCode> Code,
                       CodeReclaimer &Reclaimer) {
  size_t CodeSize = codeBytes(*Code);
  if (CodeSize > Budget) {
    ++Counters.RejectedOversize;
    Reclaimer.retire(std::move(Code));
    return false;
  }
  Entry E;
  E.Sig = std::move(Sig);
  E.Generation = Generation;
  E.Bytes = CodeSize;
  E.LastUse = ++Clock;
  const NativeCode *Keep = Code.get();
  E.Code = std::move(Code);
  Map[Info].push_back(std::move(E));
  Bytes += CodeSize;
  ++Count;
  ++Counters.Insertions;
  if (Bytes > Budget)
    evictToBudget(Keep, Reclaimer);
  return true;
}

void CodeCache::evictToBudget(const NativeCode *Keep,
                              CodeReclaimer &Reclaimer) {
  while (Bytes > Budget && Count > 1) {
    // Victim maximizes staleness * bytes so big idle bodies go first.
    std::vector<Entry> *BestVec = nullptr;
    size_t BestIdx = 0;
    uint64_t BestScore = 0;
    bool Found = false;
    for (auto &KV : Map) {
      std::vector<Entry> &Vec = KV.second;
      for (size_t I = 0; I != Vec.size(); ++I) {
        if (Vec[I].Code.get() == Keep)
          continue;
        uint64_t Staleness = Clock - Vec[I].LastUse + 1;
        uint64_t Score = Staleness * (uint64_t)Vec[I].Bytes;
        if (!Found || Score > BestScore) {
          Found = true;
          BestScore = Score;
          BestVec = &Vec;
          BestIdx = I;
        }
      }
    }
    if (!Found)
      break;
    ++Counters.Evictions;
    removeEntry(*BestVec, BestIdx, Reclaimer);
  }
}

void CodeCache::removeEntry(std::vector<Entry> &Vec, size_t Idx,
                            CodeReclaimer &Reclaimer) {
  Entry &E = Vec[Idx];
  Bytes -= E.Bytes;
  --Count;
  Reclaimer.retire(std::move(E.Code));
  Vec.erase(Vec.begin() + Idx);
}

void CodeCache::invalidate(const FunctionInfo *Info, CodeReclaimer &Reclaimer) {
  auto It = Map.find(Info);
  if (It == Map.end())
    return;
  std::vector<Entry> &Vec = It->second;
  for (Entry &E : Vec) {
    ++Counters.Invalidations;
    Bytes -= E.Bytes;
    --Count;
    Reclaimer.retire(std::move(E.Code));
  }
  Map.erase(It);
}

size_t CodeCache::entriesFor(const FunctionInfo *Info) const {
  auto It = Map.find(Info);
  return It == Map.end() ? 0 : It->second.size();
}

void CodeCache::forEachEntry(const std::function<void(Entry &)> &Fn) {
  for (auto &KV : Map)
    for (Entry &E : KV.second)
      Fn(E);
}
