//===- jit/CodeCache.h - Shared SpecSig-keyed specialization cache -*- C++ -*-===//
///
/// \file
/// The shared specialization code cache: every specialized entry body the
/// engine compiles is published here, keyed by (function, SpecSig), so a
/// later call — from the same caller, a different call site, or a
/// different serving session replayed against the same long-lived engine
/// — with an equivalent signature reuses the binary instead of paying
/// the despecialize-and-recompile tax. This is the interprocedural
/// analogue of type-specialized entry points (Chevalier-Boisvert &
/// Feeley, PAPERS.md), generalized to the paper's value tier.
///
/// Memory discipline:
///  - an explicit byte budget (EngineKnobs::CodeCacheBytes /
///    JITVS_CODE_CACHE_BYTES) bounds resident compiled code;
///  - going over budget evicts by cost-aware LRU: the victim maximizes
///    staleness * bytes, so a huge body idle for a while goes before a
///    small one touched at the same time;
///  - evicted (and invalidated) bodies are NOT freed here: they are
///    retired through the engine's CodeReclaimer, whose dispatch-boundary
///    epochs guarantee no in-flight native frame still running the body
///    can observe the free (the discipline of Flückiger et al.,
///    "Correctness of Speculative Optimizations", PAPERS.md);
///  - every entry is stamped with the function's policy generation at
///    insert; a despecialization decision or bailout-limit discard bumps
///    the generation and invalidates the function's entries, and lookup
///    double-checks the stamp so a stale body can never be dispatched
///    even if an invalidation was missed.
///
/// Single-threaded by design: lookups, inserts and eviction all happen on
/// the main thread at dispatch boundaries (background compiles publish
/// through CompileQueue and are inserted at install time, also on the
/// main thread), so no locking is needed and the TSan matrix stays clean.
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_JIT_CODECACHE_H
#define JITVS_JIT_CODECACHE_H

#include "jit/SpecSig.h"
#include "native/NativeCode.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

namespace jitvs {

struct FunctionInfo;

class CodeCache {
public:
  explicit CodeCache(size_t BudgetBytes) : Budget(BudgetBytes) {}

  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0; ///< Compile-eligible lookups that found nothing.
    uint64_t Insertions = 0;
    uint64_t Evictions = 0; ///< Budget-driven cost-aware-LRU removals.
    uint64_t Invalidations = 0; ///< Entries dropped by invalidate().
    uint64_t StaleGenerationDrops = 0; ///< Caught by the lookup stamp check.
    uint64_t RejectedOversize = 0; ///< Bodies larger than the whole budget.
  };

  /// One cached binary. Sig value-tier entries and the body's constant
  /// pool are GC-rooted by the engine walking forEachEntry().
  struct Entry {
    SpecSig Sig;
    uint32_t Generation = 0; ///< FuncState generation at insert.
    std::shared_ptr<NativeCode> Code;
    size_t Bytes = 0;
    uint64_t LastUse = 0; ///< Cache clock at the last hit (or insert).
  };

  /// Finds a body for \p Args under the function's current \p Generation.
  /// A hit refreshes the entry's LRU clock and returns the binary (with
  /// \p SigOut pointing at the matching signature, valid until the next
  /// mutating call); a mismatching generation stamp retires the entry
  /// through \p Reclaimer on the spot. Does NOT count misses — the
  /// engine reports a miss only for compile-eligible calls, via
  /// noteMiss(), so the hit rate is not diluted by cold functions that
  /// were never candidates.
  std::shared_ptr<NativeCode> lookup(const FunctionInfo *Info,
                                     uint32_t Generation, const Value *Args,
                                     size_t NumArgs, CodeReclaimer &Reclaimer,
                                     const SpecSig **SigOut = nullptr);

  /// Records one compile-eligible lookup failure (the hit-rate
  /// denominator).
  void noteMiss() { ++Counters.Misses; }

  /// Publishes a freshly compiled body. May evict (through \p Reclaimer)
  /// to get back under budget; the new entry itself is never the victim
  /// of its own insert. \returns false when the body alone exceeds the
  /// whole budget — the caller still executes it once, routing it
  /// straight to the reclaimer so its pool stays rooted until the frame
  /// drains.
  bool insert(const FunctionInfo *Info, uint32_t Generation, SpecSig Sig,
              std::shared_ptr<NativeCode> Code, CodeReclaimer &Reclaimer);

  /// Drops every entry of \p Info (despecialization decision or
  /// bailout-limit discard bumped its generation). Bodies are retired
  /// through \p Reclaimer, never freed inline: in-flight frames may
  /// still be executing them.
  void invalidate(const FunctionInfo *Info, CodeReclaimer &Reclaimer);

  size_t residentBytes() const { return Bytes; }
  size_t budgetBytes() const { return Budget; }
  size_t size() const { return Count; }
  size_t entriesFor(const FunctionInfo *Info) const;
  const Stats &stats() const { return Counters; }

  /// Visits every live entry (GC rooting; main thread only). The entry
  /// is mutable so a moving collection can rewrite the pointers baked
  /// into value-tier signatures in place.
  void forEachEntry(const std::function<void(Entry &)> &Fn);

  /// Byte-cost estimate of one binary: instructions, constant pool and
  /// snapshot metadata. This is what the budget and the resident-bytes
  /// gauge count.
  static size_t codeBytes(const NativeCode &Code);

private:
  /// Evicts highest (staleness * bytes) entries until Bytes <= Budget,
  /// never touching \p Keep (the just-inserted body).
  void evictToBudget(const NativeCode *Keep, CodeReclaimer &Reclaimer);
  void removeEntry(std::vector<Entry> &Vec, size_t Idx,
                   CodeReclaimer &Reclaimer);

  std::unordered_map<const FunctionInfo *, std::vector<Entry>> Map;
  size_t Budget;
  size_t Bytes = 0;
  size_t Count = 0;
  uint64_t Clock = 0;
  Stats Counters;
};

} // namespace jitvs

#endif // JITVS_JIT_CODECACHE_H
