//===- jit/CompileQueue.cpp - Background compilation job queue ------------===//

#include "jit/CompileQueue.h"

#include <algorithm>

#ifdef __linux__
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

using namespace jitvs;

/// Drops the calling thread to the lowest scheduling priority. Compile
/// workers must never preempt the mutator: on a loaded machine the whole
/// point of the background pipeline is that dispatch latency stays flat,
/// and a default-priority worker woken by enqueue() can steal the
/// caller's core for exactly the compile it was supposed to hide. At
/// nice 19 the workers soak idle CPU only (free on multicore, graceful
/// degradation on one core: compiles land late, never in a call's tail).
static void deprioritizeCurrentThread() {
#ifdef __linux__
  // setpriority is per-thread on Linux (NPTL); best-effort elsewhere.
  setpriority(PRIO_PROCESS, static_cast<id_t>(syscall(SYS_gettid)), 19);
#endif
}

CompileQueue::CompileQueue(unsigned NumThreads, size_t Bound, CompileFn Fn)
    : Bound(Bound), Fn(std::move(Fn)) {
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

CompileQueue::~CompileQueue() { shutdown(); }

CompileQueue::EnqueueResult
CompileQueue::enqueue(std::shared_ptr<CompileTask> Task) {
  std::unique_lock<std::mutex> Lock(Mu);
  if (Stop)
    return EnqueueResult::Full;
  // Dedup/coalesce: one outstanding job per (function, entry/OSR) key.
  // The newer request folds into the pending one; if it is more urgent,
  // the pending job inherits the urgency (safe pre-pop: workers read
  // task fields only after popping, which serializes on Mu).
  for (auto &P : Pending) {
    if (P->Info == Task->Info && P->IsOsr == Task->IsOsr) {
      P->Priority = std::min(P->Priority, Task->Priority);
      ++Stats.Coalesced;
      return EnqueueResult::Coalesced;
    }
  }
  for (auto &R : Running) {
    if (R->Info == Task->Info && R->IsOsr == Task->IsOsr) {
      ++Stats.Coalesced;
      return EnqueueResult::Coalesced;
    }
  }
  if (Pending.size() >= Bound) {
    ++Stats.RejectedFull;
    return EnqueueResult::Full;
  }
  Task->Seq = NextSeq++;
  Pending.push_back(std::move(Task));
  ++Stats.Enqueued;
  Lock.unlock();
  WorkCV.notify_one();
  return EnqueueResult::Queued;
}

std::shared_ptr<CompileTask> CompileQueue::popBestLocked() {
  size_t Best = 0;
  for (size_t I = 1; I != Pending.size(); ++I) {
    const CompileTask &A = *Pending[I];
    const CompileTask &B = *Pending[Best];
    if (A.Priority < B.Priority ||
        (A.Priority == B.Priority && A.Seq < B.Seq))
      Best = I;
  }
  std::shared_ptr<CompileTask> Task = std::move(Pending[Best]);
  Pending.erase(Pending.begin() + static_cast<ptrdiff_t>(Best));
  return Task;
}

void CompileQueue::workerLoop(unsigned Idx) {
  deprioritizeCurrentThread();
  for (;;) {
    std::shared_ptr<CompileTask> Task;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      WorkCV.wait(Lock, [this] { return Stop || !Pending.empty(); });
      if (Stop)
        return;
      Task = popBestLocked();
      Running.push_back(Task);
      ++Busy;
    }
    Fn(*Task, Idx);
    {
      std::lock_guard<std::mutex> Lock(Mu);
      auto It = std::find(Running.begin(), Running.end(), Task);
      if (It != Running.end())
        Running.erase(It);
      Completed.push_back(std::move(Task));
      CompletedFlag.store(true, std::memory_order_release);
      ++Stats.Compiled;
      --Busy;
      if (Pending.empty() && Busy == 0)
        IdleCV.notify_all();
    }
  }
}

size_t CompileQueue::depth() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Pending.size();
}

void CompileQueue::drain() {
  std::unique_lock<std::mutex> Lock(Mu);
  IdleCV.wait(Lock, [this] {
    return Stop || (Pending.empty() && Busy == 0);
  });
}

void CompileQueue::shutdown() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Stop)
      return;
    Stop = true;
    Stats.DroppedAtShutdown += Pending.size();
    Pending.clear();
  }
  WorkCV.notify_all();
  IdleCV.notify_all();
  for (std::thread &W : Workers)
    if (W.joinable())
      W.join();
}

std::vector<std::shared_ptr<CompileTask>> CompileQueue::takeCompleted() {
  std::lock_guard<std::mutex> Lock(Mu);
  CompletedFlag.store(false, std::memory_order_release);
  std::vector<std::shared_ptr<CompileTask>> Out;
  Out.swap(Completed);
  return Out;
}

CompileQueue::Counters CompileQueue::counters() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Stats;
}

void CompileQueue::forEachTask(
    const std::function<void(CompileTask &)> &Fn) const {
  std::lock_guard<std::mutex> Lock(Mu);
  for (const auto &T : Pending)
    Fn(*T);
  for (const auto &T : Running)
    Fn(*T);
  for (const auto &T : Completed)
    Fn(*T);
}
