//===- jit/SpecSig.h - Specialization signatures and matching ---*- C++ -*-===//
///
/// \file
/// The dispatch key of one specialized binary: what each parameter (or,
/// for OSR signatures, each frame slot) must look like for the binary to
/// be reusable. Shared between the engine's per-function dispatch and
/// the SpecSig-keyed shared code cache (jit/CodeCache.h), which reuses
/// the exact same matching rules so a body compiled for one caller — or
/// one serving session — answers any later call with an equivalent
/// signature.
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_JIT_SPECSIG_H
#define JITVS_JIT_SPECSIG_H

#include "mir/Tier.h"
#include "vm/Value.h"

#include <vector>

namespace jitvs {

/// One parameter's slice of a specialization signature: the tier plus the
/// fact the binary depends on at that tier (exact value, or tag only).
struct ParamSig {
  ParamTier Tier = ParamTier::Value;
  /// Value tier only: the baked-in value (GC-rooted by whoever owns the
  /// signature — EngineRoots for engine/cache signatures). Undefined for
  /// the other tiers so dead objects are not kept alive.
  Value V = Value::undefined();
  /// Type tier only: the guarded tag.
  ValueTag Tag = ValueTag::Undefined;
};

/// An all-Value signature is the paper's policy.
using SpecSig = std::vector<ParamSig>;

/// Builds the dispatch signature for \p Args under \p Tiers (nullptr =
/// all value-tier, the paper's behavior). Value entries keep the value;
/// type entries keep only the tag.
SpecSig makeSpecSig(const std::vector<ParamTier> *Tiers, const Value *Args,
                    size_t NumArgs);

/// \returns true when \p Args satisfy \p Sig (value entries compare by
/// Value::sameSpecializationValue, type entries by tag, generic entries
/// always match).
bool specSigMatches(const SpecSig &Sig, const Value *Args, size_t NumArgs);

/// Strongest tier present in \p Sig (Value beats Type beats Generic);
/// classifies a binary for the hit-split counters. The degenerate
/// zero-parameter signature counts as Generic here; callers treat it as
/// (vacuously) value-specialized where the paper policy does.
ParamTier specSigTier(const SpecSig &Sig);

} // namespace jitvs

#endif // JITVS_JIT_SPECSIG_H
