//===- jit/CompileTask.h - One unit of background compilation ---*- C++ -*-===//
///
/// \file
/// The job format of the off-thread compilation pipeline. A CompileTask
/// carries an immutable snapshot of everything one compile needs — the
/// specialized argument values, tier vectors, OSR frame slots and a
/// whole-program type-feedback snapshot — so a worker thread can run
/// MIR -> LIR -> native without touching any state the main thread
/// mutates. The finished binary is published through a single atomic
/// result slot: the worker release-stores a CompileOutcome, the main
/// thread acquire-loads it at a dispatch boundary and links the code in.
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_JIT_COMPILETASK_H
#define JITVS_JIT_COMPILETASK_H

#include "mir/Tier.h"
#include "vm/GC.h"
#include "vm/TypeFeedback.h"
#include "vm/Value.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace jitvs {

struct FunctionInfo;
class NativeCode;

/// Queue ordering: despecialization/generic recompiles outrank first
/// compiles — a function that lost its binary is interpreting *now*,
/// while a first compile merely upgrades code that was never native.
enum class CompilePriority : uint8_t {
  Recompile = 0,    ///< Replaces a body the policy just invalidated.
  FirstCompile = 1, ///< A function's (or loop's) first binary.
};

/// What a worker hands back: the binary plus everything the main thread
/// needs to install it. Owned by the task's result slot; destroying an
/// outcome whose donated allocations were never adopted frees them on
/// the spot (the install was skipped, so nothing else references them).
struct CompileOutcome {
  CompileOutcome() = default;
  CompileOutcome(const CompileOutcome &) = delete;
  CompileOutcome &operator=(const CompileOutcome &) = delete;
  ~CompileOutcome() {
    if (!Donated.empty())
      Heap::freeChain(Donated);
  }

  std::shared_ptr<NativeCode> Code;
  /// Worker wall-clock spent in the pipeline (EngineStats::CompileSeconds
  /// counts this; it is *not* main-thread stall).
  double Seconds = 0.0;
  /// Macro-op pairs fused (folded into EngineStats at install).
  unsigned Fused = 0;

  /// Whether the binary actually specializes (a worker-side tier choice
  /// may conclude all-generic even when the task asked to specialize).
  bool Specialized = false;
  /// Entry tiers the build used; meaningful when HaveTiers (otherwise
  /// the all-value default applied). The install path rebuilds the
  /// dispatch signature from these plus the task's argument snapshot.
  bool HaveTiers = false;
  std::vector<ParamTier> Tiers;
  /// OSR frame-slot tiers, same convention.
  bool HaveSlotTiers = false;
  std::vector<ParamTier> SlotTiers;

  /// Objects constant folding allocated in the worker's private heap
  /// (ConstPool entries may point into this chain). The install path
  /// splices them into the main heap (Heap::adoptChain) directly into
  /// the old generation — worker heaps run with the nursery disabled,
  /// so every donated object is pointer-stable and the addresses baked
  /// into the pool stay valid across minor collections.
  Heap::DetachedChain Donated;
};

/// One queued compilation. All input fields are immutable once the task
/// is enqueued; Result is the only field written afterwards (by exactly
/// one worker, with a release store).
struct CompileTask {
  CompileTask() = default;
  CompileTask(const CompileTask &) = delete;
  CompileTask &operator=(const CompileTask &) = delete;
  ~CompileTask() { delete Result.load(std::memory_order_acquire); }

  FunctionInfo *Info = nullptr;
  /// Dedup key second component: one outstanding entry task and one
  /// outstanding OSR task per function at most.
  bool IsOsr = false;
  CompilePriority Priority = CompilePriority::FirstCompile;
  /// FIFO tiebreak within a priority class (assigned by the queue).
  uint64_t Seq = 0;
  /// FuncState generation at enqueue. The install path drops the result
  /// when the function's policy state moved on (bailout discard,
  /// despecialization decision) while the compile was in flight.
  uint32_t Generation = 0;

  // --- Immutable compile inputs ---
  bool Specialized = false;
  std::vector<Value> SpecArgs; ///< GC-rooted via CompileQueue::forEachTask.
  bool HaveTiers = false;
  std::vector<ParamTier> Tiers;
  /// Tiered policy first compiles: the worker picks tiers itself from
  /// the profiler's seqlock-published stability snapshot (reading the
  /// live profile tables off-thread would race the interpreter).
  bool ChooseTiersOnWorker = false;

  /// The result is destined for the shared SpecSig code cache
  /// (jit/CodeCache.h) instead of the function's primary slot: the
  /// install path inserts the specialized body as a cache entry and
  /// leaves FuncState::Code alone (a worker-side all-generic tier choice
  /// still installs normally — generic bodies are never cache entries).
  bool ForCodeCache = false;

  bool HasOsr = false;
  uint32_t OsrPc = 0;
  std::vector<Value> OsrSlots; ///< GC-rooted via CompileQueue::forEachTask.
  bool HaveOsrTiers = false;
  std::vector<ParamTier> OsrTiers;

  /// Whole-program feedback snapshot captured at enqueue; the builder
  /// reads this instead of the live FunctionInfo::Feedback maps.
  std::shared_ptr<const FeedbackSnapshot> Feedback;
  uint64_t EnqueueNs = 0; ///< For the compile-wait histogram.

  /// Publication slot: null until the worker release-stores the finished
  /// outcome; the main thread's pump acquire-loads it exactly once.
  std::atomic<CompileOutcome *> Result{nullptr};
};

} // namespace jitvs

#endif // JITVS_JIT_COMPILETASK_H
