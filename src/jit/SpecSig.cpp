//===- jit/SpecSig.cpp - Specialization-signature construction/matching ---===//

#include "jit/SpecSig.h"

#include <algorithm>

using namespace jitvs;

SpecSig jitvs::makeSpecSig(const std::vector<ParamTier> *Tiers,
                           const Value *Args, size_t NumArgs) {
  SpecSig Sig(NumArgs);
  for (size_t I = 0; I != NumArgs; ++I) {
    ParamTier T = !Tiers                ? ParamTier::Value
                  : I < Tiers->size()   ? (*Tiers)[I]
                                        : ParamTier::Value;
    Sig[I].Tier = T;
    if (T == ParamTier::Value)
      Sig[I].V = Args[I];
    else if (T == ParamTier::Type)
      Sig[I].Tag = Args[I].tag();
  }
  return Sig;
}

bool jitvs::specSigMatches(const SpecSig &Sig, const Value *Args,
                           size_t NumArgs) {
  if (Sig.size() != NumArgs)
    return false;
  for (size_t I = 0; I != NumArgs; ++I) {
    const ParamSig &P = Sig[I];
    switch (P.Tier) {
    case ParamTier::Value:
      if (!P.V.sameSpecializationValue(Args[I]))
        return false;
      break;
    case ParamTier::Type:
      if (P.Tag != Args[I].tag())
        return false;
      break;
    case ParamTier::Generic:
      break;
    }
  }
  return true;
}

ParamTier jitvs::specSigTier(const SpecSig &Sig) {
  ParamTier T = ParamTier::Generic;
  for (const ParamSig &P : Sig)
    T = std::max(T, P.Tier);
  return T;
}
