//===- jit/Engine.h - The JIT engine and specialization policy --*- C++ -*-===//
///
/// \file
/// The engine ties everything together, implementing the paper's policy
/// (Section 4, "Specialization policy"):
///
///  - hot functions (by call count or loop back-edge count) are compiled;
///  - under parameter specialization, the actual arguments are baked into
///    the binary and cached; a later call with the *same* arguments
///    reuses the binary;
///  - a call with *different* arguments discards the binary, recompiles a
///    generic version, and marks the function so it is never specialized
///    again;
///  - guard failures (overflow, type, bounds) bail out: the interpreter
///    frame is reconstructed from the snapshot and execution resumes in
///    the interpreter; repeated bailouts discard the binary so the next
///    compile uses the refreshed type feedback.
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_JIT_ENGINE_H
#define JITVS_JIT_ENGINE_H

#include "native/Executor.h"
#include "native/NativeCode.h"
#include "passes/Passes.h"
#include "telemetry/BailoutReason.h"
#include "vm/Runtime.h"

#include <array>
#include <memory>
#include <unordered_map>
#include <vector>

namespace jitvs {

/// Aggregate engine statistics (Figure 9/10 and the Section 4 numbers).
struct EngineStats {
  uint64_t Compilations = 0;
  uint64_t Recompilations = 0; ///< Compiles beyond a function's first.
  uint64_t SpecializedCompiles = 0;
  uint64_t GenericCompiles = 0;
  uint64_t Despecializations = 0; ///< Different-arguments deopts.
  uint64_t CacheHits = 0;  ///< Specialized code reused with same args.
  uint64_t Bailouts = 0;
  /// Bailouts split by the taxonomy of telemetry/BailoutReason.h; sums
  /// to Bailouts. Index with static_cast<size_t>(BailoutReason).
  std::array<uint64_t, NumBailoutReasons> BailoutsByReason{};
  uint64_t OsrEntries = 0;
  uint64_t NativeCalls = 0;      ///< Calls executed in native code.
  uint64_t InterpretedCalls = 0; ///< Calls the engine left to the interp.
  double CompileSeconds = 0.0;
};

/// Why a function lost its specialized binary (per-function reporting;
/// the aggregate counter is EngineStats::Despecializations).
enum class DespecializeCause : uint8_t {
  None,          ///< Still specialized (or never was).
  DifferentArgs, ///< Called with arguments other than the cached set.
  OsrRevalidation, ///< OSR re-entry found baked-in frame values stale.
};

/// \returns a stable lower-case name ("different-args", ...).
const char *despecializeCauseName(DespecializeCause C);

/// Per-function code-size record for Figure 10 (the paper reports the
/// smallest version each compilation mode produced per function).
struct CodeSizeRecord {
  std::string Name;
  size_t MinSize = SIZE_MAX;
  uint32_t Compiles = 0;
};

/// The JIT engine. Attach to a Runtime via Runtime::setHooks.
class Engine final : public ExecutionHooks {
public:
  Engine(Runtime &RT, const OptConfig &Config);
  ~Engine() override;

  bool onCall(JSFunction *Callee, const Value &ThisV, const Value *Args,
              size_t NumArgs, Value &Result) override;
  bool onLoopHead(InterpFrame &Frame, uint32_t PC, Value &Result) override;

  const EngineStats &stats() const { return Stats; }
  const OptConfig &config() const { return Config; }

  /// Hotness thresholds.
  void setCallThreshold(uint32_t N) { CallThreshold = N; }
  void setLoopThreshold(uint32_t N) { LoopThreshold = N; }
  void setBailoutLimit(uint32_t N) { BailoutLimit = N; }

  /// Future-work knob from the paper's conclusion: how many specialized
  /// binaries (argument sets) to cache per function. The paper uses 1
  /// ("we cache only one binary per function. Thus, we can specialize
  /// only two different parameter sets" — the specialized one plus the
  /// generic fallback); with depth N, a call whose arguments miss all N
  /// cached sets either fills a free slot or triggers the usual
  /// despecialize-to-generic policy.
  void setCacheDepth(uint32_t N) { CacheDepth = std::max(1u, N); }

  /// Per-function facts for the reports.
  struct FunctionReport {
    std::string Name;
    bool WasSpecialized = false;
    bool Despecialized = false;
    DespecializeCause Cause = DespecializeCause::None;
    uint32_t Compiles = 0;
    uint32_t Bailouts = 0;  ///< Lifetime total (not reset by discards).
    uint32_t CacheHits = 0; ///< Specialized-binary same-args reuses.
    size_t MinCodeSize = SIZE_MAX;
  };
  std::vector<FunctionReport> functionReports() const;

  /// Compiles \p Info immediately (test/bench hook). Returns the code (or
  /// nullptr on unsupported shapes). \p Args non-null => specialized.
  NativeCode *compileNow(FunctionInfo *Info, const std::vector<Value> *Args);

private:
  struct FuncState {
    /// Shared: in-flight executions (including recursive ones) keep the
    /// binary alive after the engine discards it.
    std::shared_ptr<NativeCode> Code;
    bool Specialized = false;
    bool NeverSpecialize = false;
    bool EverSpecialized = false;
    bool EverDespecialized = false;
    std::vector<Value> CachedArgs;     ///< GC-rooted via EngineRoots.
    std::vector<Value> CachedOsrSlots; ///< For OSR-entry revalidation.
    /// Extra specialized binaries when the cache depth exceeds 1 (the
    /// paper's future-work heuristic). Each entry pairs an argument set
    /// with its binary.
    std::vector<std::pair<std::vector<Value>, std::shared_ptr<NativeCode>>>
        ExtraSpecializations;
    uint32_t Compiles = 0;
    uint32_t Bailouts = 0; ///< Since the last discard (policy counter).
    uint32_t TotalBailouts = 0; ///< Lifetime total (reporting).
    uint32_t CacheHits = 0;
    DespecializeCause Cause = DespecializeCause::None;
    size_t MinCodeSize = SIZE_MAX;
  };

  FuncState &state(FunctionInfo *Info);

  /// Compiles \p Info. \p SpecArgs non-null => parameter specialization.
  /// \p OsrPc/\p OsrSlots build an OSR entry.
  std::shared_ptr<NativeCode>
  compile(FunctionInfo *Info, const std::vector<Value> *SpecArgs,
          const uint32_t *OsrPc, const std::vector<Value> *OsrSlots);

  /// Runs FS.Code (or \p CodeOverride), handling bailouts
  /// (deoptimization to the interpreter).
  Value execute(FuncState &FS, FunctionInfo *Info, const Value &ThisV,
                const Value *Args, size_t NumArgs, bool AtOsr,
                const std::vector<Value> *OsrSlots, Environment *Env,
                Environment *ClosureEnv,
                std::shared_ptr<NativeCode> CodeOverride = nullptr);

  bool argsMatch(const std::vector<Value> &Cached, const Value *Args,
                 size_t NumArgs) const;

  Runtime &RT;
  OptConfig Config;
  Executor Exec;
  std::unordered_map<FunctionInfo *, FuncState> States;
  /// Every binary ever produced: keeps constant pools GC-rooted for the
  /// lifetime of any in-flight execution and feeds the code-size tables.
  std::vector<std::shared_ptr<NativeCode>> AllCode;
  EngineStats Stats;

  uint32_t CallThreshold = 8;
  uint32_t LoopThreshold = 100;
  uint32_t BailoutLimit = 12;
  uint32_t CacheDepth = 1; ///< The paper's policy.

  class EngineRoots;
  std::unique_ptr<EngineRoots> Roots;
};

} // namespace jitvs

#endif // JITVS_JIT_ENGINE_H
