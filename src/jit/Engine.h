//===- jit/Engine.h - The JIT engine and specialization policy --*- C++ -*-===//
///
/// \file
/// The engine ties everything together, implementing the paper's policy
/// (Section 4, "Specialization policy"):
///
///  - hot functions (by call count or loop back-edge count) are compiled;
///  - under parameter specialization, the actual arguments are baked into
///    the binary and cached; a later call with the *same* arguments
///    reuses the binary;
///  - a call with *different* arguments discards the binary, recompiles a
///    generic version, and marks the function so it is never specialized
///    again;
///  - guard failures (overflow, type, bounds) bail out: the interpreter
///    frame is reconstructed from the snapshot and execution resumes in
///    the interpreter; repeated bailouts discard the binary so the next
///    compile uses the refreshed type feedback.
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_JIT_ENGINE_H
#define JITVS_JIT_ENGINE_H

#include "jit/CompileQueue.h"
#include "jit/SpecSig.h"
#include "mir/Tier.h"
#include "native/Executor.h"
#include "native/NativeCode.h"
#include "passes/Passes.h"
#include "telemetry/BailoutReason.h"
#include "vm/Runtime.h"

#include <array>
#include <memory>
#include <unordered_map>
#include <vector>

namespace jitvs {

class CallProfiler;
class CodeCache;
struct ParamStability;

/// How the engine specializes and reacts to specialization misses.
enum class TierPolicy : uint8_t {
  /// The paper's Section 4 policy: specialize every parameter on its
  /// exact value; one miss discards the binary, recompiles generic, and
  /// marks the function NeverSpecialize.
  Paper,
  /// The adaptive ladder: each parameter sits on its own tier
  /// (value -> type -> generic). A value miss demotes just the offending
  /// parameters to the type tier; only a type miss forces generic. The
  /// function falls back to a fully generic binary (and NeverSpecialize)
  /// only when every parameter has been demoted to Generic.
  Tiered,
};

const char *tierPolicyName(TierPolicy P);

/// Aggregate engine statistics (Figure 9/10 and the Section 4 numbers).
struct EngineStats {
  uint64_t Compilations = 0;
  uint64_t Recompilations = 0; ///< Compiles beyond a function's first.
  uint64_t SpecializedCompiles = 0;
  uint64_t GenericCompiles = 0;
  uint64_t Despecializations = 0; ///< Different-arguments deopts.
  uint64_t CacheHits = 0;  ///< Specialized code reused (sum of the two
                           ///< tier-split counters below).
  uint64_t ValueTierHits = 0; ///< Hits on binaries baking >=1 exact value.
  uint64_t TypeTierHits = 0;  ///< Hits on type-guard-only binaries.
  /// Tiered policy: parameters demoted value->type / (value|type)->generic.
  uint64_t TierDemotionsValueToType = 0;
  uint64_t TierDemotionsToGeneric = 0;
  /// Tiered policy: functions that exhausted the ladder and recompiled a
  /// fully generic binary (the only path that sets NeverSpecialize).
  uint64_t GenericFallbacks = 0;
  uint64_t Bailouts = 0;
  /// Bailouts split by the taxonomy of telemetry/BailoutReason.h; sums
  /// to Bailouts. Index with static_cast<size_t>(BailoutReason).
  std::array<uint64_t, NumBailoutReasons> BailoutsByReason{};
  uint64_t OsrEntries = 0;
  uint64_t NativeCalls = 0;      ///< Calls executed in native code.
  uint64_t InterpretedCalls = 0; ///< Calls the engine left to the interp.
  /// Macro-op pairs fused across all compiles (native/Fusion.cpp).
  uint64_t FusedOps = 0;
  /// Total compile wall-clock, wherever it ran: synchronous compiles on
  /// the main thread plus background compiles on worker threads.
  double CompileSeconds = 0.0;
  /// The subset of compile time that actually blocked the main thread:
  /// all of CompileSeconds in synchronous mode, only explicit
  /// drainCompiles() waits in background mode. The gap between the two
  /// is the stall the off-thread pipeline hid.
  double CompileStallSeconds = 0.0;
};

/// Why a function lost its specialized binary (per-function reporting;
/// the aggregate counter is EngineStats::Despecializations).
enum class DespecializeCause : uint8_t {
  None,          ///< Still specialized (or never was).
  DifferentArgs, ///< Called with arguments other than the cached set.
  OsrRevalidation, ///< OSR re-entry found baked-in frame values stale.
  ValueMismatch, ///< Tiered: a value-tier parameter saw a new value
                 ///< (same tag) and was demoted to the type tier.
  TypeMismatch,  ///< Tiered: a parameter saw a new tag and was demoted
                 ///< to generic.
};

/// \returns a stable lower-case name ("different-args", ...).
const char *despecializeCauseName(DespecializeCause C);

// ParamSig / SpecSig — the dispatch key of one specialized binary — live
// in jit/SpecSig.h, shared with the SpecSig-keyed code cache.

/// Fully programmatic engine configuration. The default Engine
/// constructor seeds its knobs from the JITVS_* environment (convenient
/// for ad-hoc runs), which makes engines constructed inside one process
/// all agree with the ambient environment — exactly wrong for the
/// differential fuzzer's config-matrix runner, where many engines with
/// deliberately different knobs must coexist regardless of what the
/// harness process inherited. Constructing with EngineKnobs bypasses the
/// environment entirely: what you specify is what you get.
struct EngineKnobs {
  TierPolicy Policy = TierPolicy::Paper;
  bool Fusion = true;
  DispatchMode Dispatch = DispatchMode::Goto; ///< Falls back where unsupported.
  uint32_t CallThreshold = 8;
  uint32_t LoopThreshold = 100;
  uint32_t BailoutLimit = 12;
  uint32_t CacheDepth = 1;
  uint32_t ValueStabilityMax = 1;
  /// Background compilation workers. 0 (the default) is the legacy
  /// synchronous pipeline, bit-for-bit identical to pre-queue behavior;
  /// N >= 1 compiles off-thread while the caller keeps interpreting.
  /// Env: JITVS_COMPILE_THREADS (a number, or "auto" = hw_concurrency-1).
  uint32_t CompileThreads = 0;
  /// Deterministic mode for differential testing: block on the queue
  /// right after every enqueue, so compiles land at the same trigger
  /// points as the synchronous pipeline while still exercising the
  /// cross-thread publication machinery. Env: JITVS_COMPILE_DRAIN=1.
  bool CompileDrain = false;
  /// Byte budget of the shared SpecSig-keyed code cache (jit/CodeCache.h).
  /// 0 (the default) disables the cache entirely — dispatch is bit-for-bit
  /// the legacy one-binary-per-function policy. Non-zero enables
  /// cross-session reuse of specialized bodies under cost-aware LRU
  /// eviction. Env: JITVS_CODE_CACHE_BYTES.
  size_t CodeCacheBytes = 0;
};

/// Per-function code-size record for Figure 10 (the paper reports the
/// smallest version each compilation mode produced per function).
struct CodeSizeRecord {
  std::string Name;
  size_t MinSize = SIZE_MAX;
  uint32_t Compiles = 0;
};

/// The JIT engine. Attach to a Runtime via Runtime::setHooks.
class Engine final : public ExecutionHooks {
public:
  /// Environment-seeded construction (JITVS_TIER_POLICY, JITVS_FUSION,
  /// JITVS_DISPATCH and friends override the defaults).
  Engine(Runtime &RT, const OptConfig &Config);
  /// Environment-independent construction: every knob comes from \p
  /// Knobs, nothing is read from getenv.
  Engine(Runtime &RT, const OptConfig &Config, const EngineKnobs &Knobs);
  ~Engine() override;

  bool onCall(JSFunction *Callee, const Value &ThisV, const Value *Args,
              size_t NumArgs, Value &Result) override;
  bool onLoopHead(InterpFrame &Frame, uint32_t PC, Value &Result) override;

  const EngineStats &stats() const { return Stats; }
  const OptConfig &config() const { return Config; }

  /// Hotness thresholds.
  void setCallThreshold(uint32_t N) { CallThreshold = N; }
  void setLoopThreshold(uint32_t N) { LoopThreshold = N; }
  void setBailoutLimit(uint32_t N) { BailoutLimit = N; }

  /// Future-work knob from the paper's conclusion: how many specialized
  /// binaries (argument sets) to cache per function. The paper uses 1
  /// ("we cache only one binary per function. Thus, we can specialize
  /// only two different parameter sets" — the specialized one plus the
  /// generic fallback); with depth N, a call whose arguments miss all N
  /// cached sets either fills a free slot or triggers the usual
  /// despecialize-to-generic policy.
  void setCacheDepth(uint32_t N) { CacheDepth = std::max(1u, N); }

  /// Selects the specialization policy (default: the paper's). Also
  /// settable via the environment: JITVS_TIER_POLICY=tiered|paper.
  void setTierPolicy(TierPolicy P) { Policy = P; }
  TierPolicy tierPolicy() const { return Policy; }

  /// Tiered policy: a parameter slot whose profile shows at most this
  /// many distinct values starts at the value tier; more values but a
  /// single tag starts at the type tier; otherwise generic. Also settable
  /// via JITVS_TIER_VALUE_MAX.
  void setValueStabilityMax(uint32_t N) { ValueStabilityMax = N; }

  /// Optional profile feed for the tiered policy's initial tier choice.
  /// Without one, every parameter starts optimistically at Value and the
  /// ladder demotes on misses. Not owned; must outlive the engine.
  void setProfiler(const CallProfiler *P) { Profiler = P; }

  /// Post-regalloc macro-op fusion (default on; env: JITVS_FUSION=0|off
  /// disables). Applies to compiles after the call.
  void setFusion(bool On) { FusionEnabled = On; }
  bool fusionEnabled() const { return FusionEnabled; }

  /// Dispatch-loop selection for this engine's executor (env default:
  /// JITVS_DISPATCH; see Executor::defaultDispatchMode).
  void setDispatchMode(DispatchMode M) { Exec.setDispatchMode(M); }
  DispatchMode dispatchMode() const { return Exec.dispatchMode(); }

  /// Off-thread compilation (fixed at construction; see
  /// EngineKnobs::CompileThreads). 0 = synchronous legacy pipeline.
  unsigned compileThreads() const { return CompileThreadCount; }
  bool compileDrainMode() const { return CompileDrainMode; }
  /// Blocks until every queued compile has finished, then installs the
  /// results. The wait is accounted to EngineStats::CompileStallSeconds.
  /// No-op in synchronous mode.
  void drainCompiles();
  /// Queued-but-unstarted background compiles (0 in synchronous mode).
  size_t pendingCompiles() const { return Queue ? Queue->depth() : 0; }
  /// The deferred-reclamation parking lot for unlinked binaries
  /// (test/introspection hook; populated in background and cache modes).
  const CodeReclaimer &codeReclaimer() const { return Reclaimer; }

  /// The shared SpecSig-keyed code cache, or nullptr when disabled
  /// (EngineKnobs::CodeCacheBytes == 0). Test/harness introspection:
  /// hit/miss/eviction counters, resident bytes.
  const CodeCache *codeCache() const { return Cache.get(); }

  /// Distinct specialized signatures the cache will hold per function
  /// before the miss policy falls back to a generic binary (and stops
  /// specializing that function) — the multi-signature analogue of the
  /// paper's one-miss despecialization rule.
  static constexpr uint32_t CodeCacheSigLimit = 8;

  /// Per-function facts for the reports.
  struct FunctionReport {
    std::string Name;
    bool WasSpecialized = false;
    bool Despecialized = false;
    DespecializeCause Cause = DespecializeCause::None;
    uint32_t Compiles = 0;
    double CompileSeconds = 0.0; ///< Total spent compiling this function.
    uint64_t NativeRuns = 0; ///< Native executions entered (any binary).
    uint32_t Bailouts = 0;  ///< Lifetime total (not reset by discards).
    uint32_t TierTransitions = 0; ///< Ladder demotion steps recorded.
    uint32_t CacheHits = 0; ///< Specialized-binary reuses (sum of below).
    uint32_t ValueTierHits = 0; ///< Reuses of value-baking binaries.
    uint32_t TypeTierHits = 0;  ///< Reuses of type-guard-only binaries.
    size_t MinCodeSize = SIZE_MAX;
    /// Smallest dispatched-instruction count after fusion (equals
    /// MinCodeSize with fusion off; the static Figure 10 metric is
    /// always MinCodeSize — fusion does not change Code.size()).
    size_t MinCodeSizePostFusion = SIZE_MAX;
    uint32_t FusedOps = 0; ///< Pairs fused across this function's compiles.
  };
  std::vector<FunctionReport> functionReports() const;

  /// Folds this engine's aggregate stats and per-function reports into
  /// the global metrics registry (telemetry/Metrics.h): EngineStats
  /// counters land under "engine.*", function reports merge into the
  /// per-function profiles. Called automatically (once) from the
  /// destructor when metrics are enabled, so `JITVS_STATS` dumps include
  /// engine aggregates without any embedder cooperation; harnesses that
  /// snapshot before teardown call it explicitly.
  void publishMetrics();

  /// Compiles \p Info immediately (test/bench hook). Returns the code (or
  /// nullptr on unsupported shapes). \p Args non-null => specialized;
  /// \p Tiers (paired with Args) selects per-parameter tiers, nullptr =
  /// all value-tier (paper behavior).
  NativeCode *compileNow(FunctionInfo *Info, const std::vector<Value> *Args,
                         const std::vector<ParamTier> *Tiers = nullptr);

private:
  struct FuncState {
    /// Shared: in-flight executions (including recursive ones) keep the
    /// binary alive after the engine discards it.
    std::shared_ptr<NativeCode> Code;
    bool Specialized = false;
    bool NeverSpecialize = false;
    bool EverSpecialized = false;
    bool EverDespecialized = false;
    SpecSig Sig;    ///< Entry signature (value entries GC-rooted).
    SpecSig OsrSig; ///< Frame-slot signature for OSR revalidation.
    /// Extra specialized binaries when the cache depth exceeds 1 (the
    /// paper's future-work heuristic). Each entry pairs a signature with
    /// its binary.
    std::vector<std::pair<SpecSig, std::shared_ptr<NativeCode>>>
        ExtraSpecializations;
    uint32_t Compiles = 0;
    double CompileSeconds = 0.0; ///< Summed over this function's compiles.
    uint64_t NativeRuns = 0; ///< Native executions entered.
    uint32_t Bailouts = 0; ///< Since the last discard (policy counter).
    uint32_t TotalBailouts = 0; ///< Lifetime total (reporting).
    uint32_t TierTransitions = 0; ///< Ladder demotion steps.
    uint32_t CacheHits = 0;
    uint32_t ValueTierHits = 0;
    uint32_t TypeTierHits = 0;
    DespecializeCause Cause = DespecializeCause::None;
    size_t MinCodeSize = SIZE_MAX;
    size_t MinCodeSizePostFusion = SIZE_MAX;
    uint32_t FusedOps = 0;
    // --- Background-compilation state (unused in synchronous mode) ---
    /// Bumped whenever the policy state an in-flight compile was built
    /// against is invalidated (despecialization decision, bailout-limit
    /// discard). A finished task whose stamped generation no longer
    /// matches is dropped at publication time instead of installed.
    uint32_t Generation = 0;
    /// A queued/running compile exists for this function; gates
    /// re-enqueueing and policy re-decisions until it publishes.
    bool CompilePending = false;
  };

  FuncState &state(FunctionInfo *Info);

  /// Compiles \p Info synchronously on the main thread. \p SpecArgs
  /// non-null => parameter specialization with per-parameter \p Tiers
  /// (nullptr = all value-tier). \p OsrPc/\p OsrSlots/\p OsrTiers build
  /// an OSR entry. \p ForCache skips the AllCode pin — the body's
  /// lifetime (and its pool's rooting) is owned by a CodeCache entry or
  /// the reclaimer instead, so the cache's byte budget can actually free
  /// memory.
  std::shared_ptr<NativeCode>
  compile(FunctionInfo *Info, const std::vector<Value> *SpecArgs,
          const std::vector<ParamTier> *Tiers, const uint32_t *OsrPc,
          const std::vector<Value> *OsrSlots,
          const std::vector<ParamTier> *OsrTiers = nullptr,
          bool ForCache = false);

  /// The thread-agnostic middle of compile(): build -> inline ->
  /// optimize -> verify -> codegen -> fuse. Touches no engine state;
  /// \p FoldRT supplies the heap/helpers constant folding uses (the
  /// engine's own Runtime on the main thread, a worker-private one
  /// off-thread), \p Feedback overrides the live feedback maps for
  /// background builds, and \p OnMainThread gates the GraphRoots
  /// registration (worker fold allocations are instead kept alive by
  /// the worker heap's disabled GC).
  struct PipelineOut {
    std::shared_ptr<NativeCode> Code;
    double Seconds = 0.0;
    unsigned Fused = 0;
  };
  PipelineOut runCompilePipeline(FunctionInfo *Info,
                                 const std::vector<Value> *SpecArgs,
                                 const std::vector<ParamTier> *Tiers,
                                 const uint32_t *OsrPc,
                                 const std::vector<Value> *OsrSlots,
                                 const std::vector<ParamTier> *OsrTiers,
                                 Runtime &FoldRT,
                                 const FeedbackSnapshot *Feedback,
                                 bool OnMainThread);

  // --- Off-thread compilation (tentpole of the background pipeline) ---
  /// Spawns the worker pool + per-worker fold Runtimes (no-op when
  /// CompileThreadCount is 0).
  void initCompileQueue();
  /// Runs one task on a worker thread: optional profiler-driven tier
  /// choice, the pipeline against \p FoldRT, then release-publication
  /// of the outcome into the task's result slot.
  void workerCompile(CompileTask &Task, Runtime &FoldRT);
  /// Dispatch-boundary safepoint: ticks the reclamation epoch and
  /// installs every finished compile (or drops stale ones).
  void pumpCompileQueue();
  void installCompleted(CompileTask &Task);
  /// Unlinks a replaced binary. Background mode parks it on the
  /// reclaimer (in-flight frames may still run it and its pool must
  /// stay rooted); synchronous mode just drops the reference (AllCode
  /// keeps the pool rooted, exactly the legacy behavior).
  void retireCode(std::shared_ptr<NativeCode> Code);
  /// Builds + enqueues an entry/OSR task; sets FS.CompilePending unless
  /// the queue rejected it (backlog full — retried at the next trigger).
  void enqueueCompileTask(FunctionInfo *Info, FuncState &FS,
                          std::unique_ptr<CompileTask> Task);
  /// Immutable whole-program feedback copy for one background build.
  std::shared_ptr<const FeedbackSnapshot> captureFeedback(FunctionInfo *Info);
  /// Async twins of the dispatch hooks, used when a queue exists. They
  /// mirror the synchronous policy decisions but never compile inline:
  /// the caller keeps interpreting while the compile is in flight.
  bool onCallAsync(JSFunction *Callee, const Value &ThisV, const Value *Args,
                   size_t NumArgs, Value &Result);
  bool onLoopHeadAsync(InterpFrame &Frame, uint32_t PC, Value &Result);

  // Signature construction/matching (makeSpecSig, specSigMatches,
  // specSigTier) are free functions in jit/SpecSig.h, shared with the
  // code cache.

  /// Tiered policy: initial per-parameter tiers for \p Info, consulting
  /// the profiler when attached (all-Value otherwise). Main-thread only
  /// (reads the live profile tables).
  std::vector<ParamTier> chooseTiers(FunctionInfo *Info, size_t NumArgs);

  /// Worker-safe variant: reads the profiler's seqlock-published
  /// stability snapshot instead of the live tables.
  std::vector<ParamTier> chooseTiersFromSnapshot(const FunctionInfo *Info,
                                                 size_t NumArgs) const;

  /// Shared ladder mapping from per-slot stability to initial tiers.
  std::vector<ParamTier>
  tiersFromStability(const std::vector<ParamStability> &Stab,
                     size_t NumArgs) const;

  /// Tiered policy: the demotion step. Computes the post-miss tier of
  /// every signature entry given the observed \p Args, records demotion
  /// stats + telemetry, and reports whether any entry type-mismatched.
  /// \returns the new tier vector (all-Generic => caller falls back to a
  /// fully generic binary).
  std::vector<ParamTier> demoteTiers(FunctionInfo *Info, const SpecSig &Sig,
                                     const Value *Args, size_t NumArgs,
                                     bool &SawTypeMismatch);

  void recordCacheHit(FuncState &FS, const SpecSig &Sig,
                      const FunctionInfo *Info);

  /// Runs FS.Code (or \p CodeOverride), handling bailouts
  /// (deoptimization to the interpreter).
  Value execute(FuncState &FS, FunctionInfo *Info, const Value &ThisV,
                const Value *Args, size_t NumArgs, bool AtOsr,
                const std::vector<Value> *OsrSlots, Environment *Env,
                Environment *ClosureEnv,
                std::shared_ptr<NativeCode> CodeOverride = nullptr);

  Runtime &RT;
  OptConfig Config;
  Executor Exec;
  std::unordered_map<FunctionInfo *, FuncState> States;
  /// Every binary ever produced: keeps constant pools GC-rooted for the
  /// lifetime of any in-flight execution and feeds the code-size tables.
  std::vector<std::shared_ptr<NativeCode>> AllCode;
  EngineStats Stats;
  const CallProfiler *Profiler = nullptr;

  uint32_t CallThreshold = 8;
  uint32_t LoopThreshold = 100;
  uint32_t BailoutLimit = 12;
  uint32_t CacheDepth = 1; ///< The paper's policy.
  TierPolicy Policy = TierPolicy::Paper;
  uint32_t ValueStabilityMax = 1;
  bool FusionEnabled = true;
  bool MetricsPublished = false; ///< publishMetrics ran (at most once).

  // --- Off-thread compilation ---
  unsigned CompileThreadCount = 0; ///< 0 = synchronous legacy pipeline.
  bool CompileDrainMode = false;
  /// One private Runtime per worker: constant folding's heap and helper
  /// state without racing the main heap. GC is disabled on these heaps
  /// (fold temporaries are unrooted there); allocations that survive to
  /// a constant pool are donated to the main heap at install.
  std::vector<std::unique_ptr<Runtime>> WorkerRTs;
  /// Declared after WorkerRTs so workers are joined (queue destroyed)
  /// before the Runtimes they fold against go away.
  std::unique_ptr<CompileQueue> Queue;
  CodeReclaimer Reclaimer;
  /// Shared SpecSig-keyed code cache; nullptr when disabled (the
  /// default). See EngineKnobs::CodeCacheBytes.
  std::unique_ptr<CodeCache> Cache;

  class EngineRoots;
  std::unique_ptr<EngineRoots> Roots;
};

} // namespace jitvs

#endif // JITVS_JIT_ENGINE_H
